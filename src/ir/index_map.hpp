#pragma once
// IndexMap: the per-dimension rational-affine index transform applied by a
// GridRead.  Reading grid g through map M at iteration point i accesses
//   g[ (num_d * i_d + off_d) / den_d  for each dimension d ].
//
// Ordinary stencil neighbours are pure offsets (num=den=1).  Restriction
// reads fine data at 2i+c (num=2); interpolation reads coarse data at
// (i+c)/2 from parity-strided domains (den=2).  These multiplicative /
// divisive maps are the generality the paper claims over additive-offset
// DSLs (Section VI, SDSL discussion).  Division must be exact over the
// stencil's domain; the validator enforces this with the domain algebra.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/layout.hpp"

namespace snowflake {

struct DimMap {
  std::int64_t num = 1;  // >= 1
  std::int64_t off = 0;
  std::int64_t den = 1;  // >= 1

  bool is_identity() const { return num == 1 && off == 0 && den == 1; }
  bool is_pure_offset() const { return num == 1 && den == 1; }

  /// Apply to a single coordinate (exact division asserted).
  std::int64_t apply(std::int64_t i) const;

  friend bool operator==(const DimMap& a, const DimMap& b) {
    return a.num == b.num && a.off == b.off && a.den == b.den;
  }
};

class IndexMap {
public:
  IndexMap() = default;
  explicit IndexMap(std::vector<DimMap> dims);

  /// Pure-offset map (the common case): i -> i + offset.
  static IndexMap offset(const Index& offsets);

  /// Identity map of the given rank.
  static IndexMap identity(int rank);

  /// i -> factor*i + offset (e.g. restriction reading fine at 2i+c).
  static IndexMap scale(const Index& factor, const Index& offsets);

  /// i -> (i + offset) / divisor (e.g. interpolation reading coarse).
  static IndexMap divide(const Index& divisor, const Index& offsets);

  int rank() const { return static_cast<int>(dims_.size()); }
  const std::vector<DimMap>& dims() const { return dims_; }
  const DimMap& dim(int d) const;

  bool is_identity() const;
  bool is_pure_offset() const;

  /// Offsets of a pure-offset map (requires is_pure_offset()).
  Index pure_offsets() const;

  /// Apply to an iteration point.
  Index apply(const Index& point) const;

  std::string to_string() const;

  friend bool operator==(const IndexMap& a, const IndexMap& b) {
    return a.dims_ == b.dims_;
  }

private:
  std::vector<DimMap> dims_;
};

}  // namespace snowflake
