#include "ir/expr.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/string_util.hpp"

namespace snowflake {

// --- ConstantExpr -----------------------------------------------------------

bool ConstantExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::Constant) return false;
  const auto& o = static_cast<const ConstantExpr&>(other);
  // Bitwise-ish equality: 0.0 == -0.0 is fine here, NaN never equals.
  return value_ == o.value_;
}

void ConstantExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{0}).add(value_);
}

std::string ConstantExpr::to_string() const { return format_double(value_); }

// --- ParamExpr --------------------------------------------------------------

ParamExpr::ParamExpr(std::string name) : Expr(ExprKind::Param), name_(std::move(name)) {
  SF_REQUIRE(is_identifier(name_), "parameter name '" + name_ + "' is not a valid identifier");
}

bool ParamExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::Param) return false;
  return name_ == static_cast<const ParamExpr&>(other).name_;
}

void ParamExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{1}).add(name_);
}

std::string ParamExpr::to_string() const { return "$" + name_; }

// --- GridReadExpr -----------------------------------------------------------

GridReadExpr::GridReadExpr(std::string grid, IndexMap map)
    : Expr(ExprKind::GridRead), grid_(std::move(grid)), map_(std::move(map)) {
  SF_REQUIRE(is_identifier(grid_), "grid name '" + grid_ + "' is not a valid identifier");
}

bool GridReadExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::GridRead) return false;
  const auto& o = static_cast<const GridReadExpr&>(other);
  return grid_ == o.grid_ && map_ == o.map_;
}

void GridReadExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{2}).add(grid_);
  for (const auto& d : map_.dims()) {
    hs.add(d.num).add(d.off).add(d.den);
  }
}

std::string GridReadExpr::to_string() const { return grid_ + map_.to_string(); }

// --- BinaryExpr -------------------------------------------------------------

BinaryExpr::BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
    : Expr(ExprKind::Binary), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  SF_REQUIRE(lhs_ != nullptr && rhs_ != nullptr, "BinaryExpr operands must be non-null");
}

bool BinaryExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::Binary) return false;
  const auto& o = static_cast<const BinaryExpr&>(other);
  return op_ == o.op_ && lhs_->equals(*o.lhs_) && rhs_->equals(*o.rhs_);
}

void BinaryExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{3}).add(static_cast<std::int64_t>(op_));
  lhs_->hash_into(hs);
  rhs_->hash_into(hs);
}

namespace {
const char* binary_op_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
  }
  return "?";
}
}  // namespace

std::string BinaryExpr::to_string() const {
  return "(" + lhs_->to_string() + " " + binary_op_symbol(op_) + " " +
         rhs_->to_string() + ")";
}

// --- UnaryExpr --------------------------------------------------------------

UnaryExpr::UnaryExpr(UnaryOp op, ExprPtr operand)
    : Expr(ExprKind::Unary), op_(op), operand_(std::move(operand)) {
  SF_REQUIRE(operand_ != nullptr, "UnaryExpr operand must be non-null");
}

bool UnaryExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::Unary) return false;
  const auto& o = static_cast<const UnaryExpr&>(other);
  return op_ == o.op_ && operand_->equals(*o.operand_);
}

void UnaryExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{4}).add(static_cast<std::int64_t>(op_));
  operand_->hash_into(hs);
}

std::string UnaryExpr::to_string() const {
  return "(-" + operand_->to_string() + ")";
}

// --- ReduceExpr -------------------------------------------------------------

ReduceExpr::ReduceExpr(ReduceOp op, ExprPtr body, std::string anchor)
    : Expr(ExprKind::Reduce), op_(op), body_(std::move(body)),
      anchor_(std::move(anchor)) {
  SF_REQUIRE(body_ != nullptr, "ReduceExpr body must be non-null");
  SF_REQUIRE(is_identifier(anchor_),
             "reduction anchor grid '" + anchor_ + "' is not a valid identifier");
}

bool ReduceExpr::equals(const Expr& other) const {
  if (other.kind() != ExprKind::Reduce) return false;
  const auto& o = static_cast<const ReduceExpr&>(other);
  return op_ == o.op_ && anchor_ == o.anchor_ && body_->equals(*o.body_);
}

void ReduceExpr::hash_into(HashStream& hs) const {
  hs.add(std::int64_t{5}).add(static_cast<std::int64_t>(op_)).add(anchor_);
  body_->hash_into(hs);
}

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Max: return "max";
    case ReduceOp::Dot: return "dot";
  }
  return "?";
}

std::string ReduceExpr::to_string() const {
  return std::string(reduce_op_name(op_)) + "@" + anchor_ + "(" +
         body_->to_string() + ")";
}

// --- Builders ---------------------------------------------------------------

ExprPtr constant(double value) { return std::make_shared<ConstantExpr>(value); }

ExprPtr param(const std::string& name) { return std::make_shared<ParamExpr>(name); }

ExprPtr read(const std::string& grid, const Index& offsets) {
  return std::make_shared<GridReadExpr>(grid, IndexMap::offset(offsets));
}

ExprPtr read_mapped(const std::string& grid, IndexMap map) {
  return std::make_shared<GridReadExpr>(grid, std::move(map));
}

ExprPtr reduce_sum(ExprPtr body, const std::string& anchor) {
  return std::make_shared<ReduceExpr>(ReduceOp::Sum, std::move(body), anchor);
}

ExprPtr reduce_max(ExprPtr body, const std::string& anchor) {
  return std::make_shared<ReduceExpr>(ReduceOp::Max, std::move(body), anchor);
}

ExprPtr reduce_dot(ExprPtr body, const std::string& anchor) {
  return std::make_shared<ReduceExpr>(ReduceOp::Dot, std::move(body), anchor);
}

namespace {
ExprPtr binary(BinaryOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(op, std::move(a), std::move(b));
}
}  // namespace

ExprPtr operator+(const ExprPtr& a, const ExprPtr& b) { return binary(BinaryOp::Add, a, b); }
ExprPtr operator-(const ExprPtr& a, const ExprPtr& b) { return binary(BinaryOp::Sub, a, b); }
ExprPtr operator*(const ExprPtr& a, const ExprPtr& b) { return binary(BinaryOp::Mul, a, b); }
ExprPtr operator/(const ExprPtr& a, const ExprPtr& b) { return binary(BinaryOp::Div, a, b); }
ExprPtr operator-(const ExprPtr& a) { return std::make_shared<UnaryExpr>(UnaryOp::Neg, a); }
ExprPtr operator+(const ExprPtr& a, double b) { return a + constant(b); }
ExprPtr operator+(double a, const ExprPtr& b) { return constant(a) + b; }
ExprPtr operator-(const ExprPtr& a, double b) { return a - constant(b); }
ExprPtr operator-(double a, const ExprPtr& b) { return constant(a) - b; }
ExprPtr operator*(const ExprPtr& a, double b) { return a * constant(b); }
ExprPtr operator*(double a, const ExprPtr& b) { return constant(a) * b; }
ExprPtr operator/(const ExprPtr& a, double b) { return a / constant(b); }

// --- Traversal --------------------------------------------------------------

void visit(const ExprPtr& expr, const std::function<void(const Expr&)>& fn) {
  SF_REQUIRE(expr != nullptr, "visit on null expression");
  fn(*expr);
  switch (expr->kind()) {
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      visit(b.lhs(), fn);
      visit(b.rhs(), fn);
      break;
    }
    case ExprKind::Unary:
      visit(static_cast<const UnaryExpr&>(*expr).operand(), fn);
      break;
    case ExprKind::Reduce:
      // Footprint/dependence analyses must see the body's reads.
      visit(static_cast<const ReduceExpr&>(*expr).body(), fn);
      break;
    default:
      break;
  }
}

std::vector<const GridReadExpr*> collect_reads(const ExprPtr& expr) {
  std::vector<const GridReadExpr*> out;
  visit(expr, [&](const Expr& node) {
    if (node.kind() == ExprKind::GridRead) {
      out.push_back(static_cast<const GridReadExpr*>(&node));
    }
  });
  return out;
}

std::set<std::string> grids_read(const ExprPtr& expr) {
  std::set<std::string> out;
  for (const auto* r : collect_reads(expr)) out.insert(r->grid());
  return out;
}

std::set<std::string> params_used(const ExprPtr& expr) {
  std::set<std::string> out;
  visit(expr, [&](const Expr& node) {
    if (node.kind() == ExprKind::Param) {
      out.insert(static_cast<const ParamExpr&>(node).name());
    }
  });
  return out;
}

int expr_rank(const ExprPtr& expr) {
  int rank = 0;
  for (const auto* r : collect_reads(expr)) {
    if (rank == 0) {
      rank = r->map().rank();
    } else {
      SF_REQUIRE(r->map().rank() == rank,
                 "expression mixes reads of rank " + std::to_string(rank) +
                     " and rank " + std::to_string(r->map().rank()));
    }
  }
  return rank;
}

bool expr_equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->equals(*b);
}

std::uint64_t expr_hash(const ExprPtr& expr) {
  SF_REQUIRE(expr != nullptr, "expr_hash on null expression");
  HashStream hs;
  expr->hash_into(hs);
  return hs.digest();
}

bool is_constant(const ExprPtr& expr, double value) {
  return expr != nullptr && expr->kind() == ExprKind::Constant &&
         static_cast<const ConstantExpr&>(*expr).value() == value;
}

}  // namespace snowflake
