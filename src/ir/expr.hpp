#pragma once
// Expression IR for stencil bodies.
//
// A stencil assigns out[i] = E(i) at every domain point i.  E is an
// immutable tree whose leaves are constants, named scalar parameters, and
// GridRead nodes (a grid name plus an IndexMap).  Components and
// WeightArrays (weights.hpp) are front-end sugar that expand into sums of
// weight * GridRead products, mirroring the paper's Table I.
//
// Nodes are shared immutable values (ExprPtr = shared_ptr<const Expr>), so
// sub-expressions like the paper's Figure 4 `top`/`bot`/`left`/`right`
// coefficients can be freely reused across stencils at no cost.

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/index_map.hpp"

namespace snowflake {

enum class ExprKind { Constant, Param, GridRead, Binary, Unary, Reduce };

enum class BinaryOp { Add, Sub, Mul, Div };
enum class UnaryOp { Neg };

/// Associative combiner of a ReduceExpr.  Dot is a sum whose body must be a
/// top-level product — it names the BLAS-1 intent so backends may emit a
/// fused multiply-accumulate loop, but combines exactly like Sum.
enum class ReduceOp { Sum, Max, Dot };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Structural equality.
  virtual bool equals(const Expr& other) const = 0;

  /// Structural hash (stable across processes; feeds JIT cache keys).
  virtual void hash_into(class HashStream& hs) const = 0;

  /// Human-readable rendering.
  virtual std::string to_string() const = 0;

protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

private:
  ExprKind kind_;
};

class ConstantExpr final : public Expr {
public:
  explicit ConstantExpr(double value) : Expr(ExprKind::Constant), value_(value) {}
  double value() const { return value_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  double value_;
};

/// A named scalar supplied at kernel-call time (e.g. a smoothing weight or
/// h^-2 that varies per multigrid level).  Parameters avoid re-JITting when
/// only scalars change.
class ParamExpr final : public Expr {
public:
  explicit ParamExpr(std::string name);
  const std::string& name() const { return name_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  std::string name_;
};

class GridReadExpr final : public Expr {
public:
  GridReadExpr(std::string grid, IndexMap map);
  const std::string& grid() const { return grid_; }
  const IndexMap& map() const { return map_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  std::string grid_;
  IndexMap map_;
};

class BinaryExpr final : public Expr {
public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class UnaryExpr final : public Expr {
public:
  UnaryExpr(UnaryOp op, ExprPtr operand);
  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// A whole-domain reduction: combine body(i) over every point i of the
/// stencil's domain with an associative op, writing the scalar result into
/// the stencil's one-cell output grid.  Only valid as the ROOT of a stencil
/// expression (validate.cpp enforces this); the stencil's domain is resolved
/// against the shape of `anchor` — the full-size grid the body iterates
/// over — since the output grid is a single cell and cannot anchor bounds.
class ReduceExpr final : public Expr {
public:
  ReduceExpr(ReduceOp op, ExprPtr body, std::string anchor);
  ReduceOp op() const { return op_; }
  const ExprPtr& body() const { return body_; }
  /// Grid whose shape anchors the iteration domain.
  const std::string& anchor() const { return anchor_; }

  bool equals(const Expr& other) const override;
  void hash_into(HashStream& hs) const override;
  std::string to_string() const override;

private:
  ReduceOp op_;
  ExprPtr body_;
  std::string anchor_;
};

// --- Builders -------------------------------------------------------------

ExprPtr constant(double value);
ExprPtr param(const std::string& name);
/// Read `grid` at the pure offset `offsets` from the iteration point.
ExprPtr read(const std::string& grid, const Index& offsets);
/// Read `grid` through an arbitrary rational-affine index map.
ExprPtr read_mapped(const std::string& grid, IndexMap map);
/// Sum of `body` over the stencil domain, anchored on `anchor`'s shape.
ExprPtr reduce_sum(ExprPtr body, const std::string& anchor);
/// Maximum of `body` over the stencil domain (combined with fmax).
ExprPtr reduce_max(ExprPtr body, const std::string& anchor);
/// Dot-product reduction: body must be a top-level Mul (a(i) * b(i)).
ExprPtr reduce_dot(ExprPtr body, const std::string& anchor);

/// Name of a reduce op ("sum" / "max" / "dot").
const char* reduce_op_name(ReduceOp op);

ExprPtr operator+(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator-(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator*(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator/(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator-(const ExprPtr& a);
ExprPtr operator+(const ExprPtr& a, double b);
ExprPtr operator+(double a, const ExprPtr& b);
ExprPtr operator-(const ExprPtr& a, double b);
ExprPtr operator-(double a, const ExprPtr& b);
ExprPtr operator*(const ExprPtr& a, double b);
ExprPtr operator*(double a, const ExprPtr& b);
ExprPtr operator/(const ExprPtr& a, double b);

// --- Traversal helpers ------------------------------------------------------

/// Visit every node in the tree (pre-order).
void visit(const ExprPtr& expr, const std::function<void(const Expr&)>& fn);

/// All GridRead nodes in the tree, in visit order.
std::vector<const GridReadExpr*> collect_reads(const ExprPtr& expr);

/// Sorted distinct grid names read by the expression.
std::set<std::string> grids_read(const ExprPtr& expr);

/// Sorted distinct parameter names used by the expression.
std::set<std::string> params_used(const ExprPtr& expr);

/// Common rank of every IndexMap in the tree; 0 if the tree has no reads.
/// Throws InvalidArgument on mixed ranks.
int expr_rank(const ExprPtr& expr);

/// True if a == b structurally (handles null as equal-to-null).
bool expr_equal(const ExprPtr& a, const ExprPtr& b);

/// Stable structural hash of an expression.
std::uint64_t expr_hash(const ExprPtr& expr);

/// True for a ConstantExpr with exactly this value.
bool is_constant(const ExprPtr& expr, double value);

}  // namespace snowflake
