#pragma once
// WeightArray / SparseArray / Component — the paper's Table I front end.
//
// A WeightArray is an N-d array of weights with odd extents; the middle
// element corresponds to the stencil centre, so element index e denotes
// offset e - center.  Weights are full expressions (ExprPtr), not just
// numbers: the paper's Figure 4 builds a variable-coefficient operator by
// using Components of the beta arrays as the weights of a mesh Component.
//
// A SparseArray is the hashmap form: offset vector -> weight expression.
//
// component(grid, W) expands to Σ_off W[off] * grid[i + off], skipping
// literal-zero weights and eliding multiplications by literal one.

#include <map>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace snowflake {

class SparseArray;

class WeightArray {
public:
  /// `shape` extents must all be odd; `flat` is row-major and must have
  /// exactly prod(shape) entries.  Null entries are treated as zero.
  WeightArray(Index shape, std::vector<ExprPtr> flat);

  /// Numeric convenience: weights from doubles.
  static WeightArray from_values(Index shape, const std::vector<double>& flat);

  /// 1x..x1 array holding a single weight (a "point" component).
  static WeightArray point(int rank, ExprPtr weight);
  static WeightArray point(int rank, double weight);

  int rank() const { return static_cast<int>(shape_.size()); }
  const Index& shape() const { return shape_; }
  /// Center element index (shape/2 in each dim).
  Index center() const;

  /// Weight at an element index (0-based within the array).
  const ExprPtr& at(const Index& element) const;

  /// Weight at a center-relative offset; null if outside the array.
  ExprPtr at_offset(const Index& offset) const;

  /// All (offset, weight) pairs with non-null, non-literal-zero weight.
  std::vector<std::pair<Index, ExprPtr>> entries() const;

  SparseArray to_sparse() const;

  std::string to_string() const;

private:
  Index shape_;
  Index strides_;
  std::vector<ExprPtr> flat_;
};

class SparseArray {
public:
  explicit SparseArray(int rank);
  SparseArray(int rank, std::map<Index, ExprPtr> entries);

  int rank() const { return rank_; }
  const std::map<Index, ExprPtr>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Set the weight at a center-relative offset (replaces any existing).
  SparseArray& set(const Index& offset, ExprPtr weight);
  SparseArray& set(const Index& offset, double weight);

  /// Weight at an offset; null if absent.
  ExprPtr at(const Index& offset) const;

  /// Elementwise sum (offsets united; shared offsets' weights added).
  SparseArray operator+(const SparseArray& other) const;

  /// Every weight multiplied by `factor`.
  SparseArray scaled(const ExprPtr& factor) const;
  SparseArray scaled(double factor) const;

  /// Densify to the minimal odd-extent WeightArray containing all offsets.
  WeightArray to_weight_array() const;

  std::string to_string() const;

private:
  int rank_;
  std::map<Index, ExprPtr> entries_;
};

/// Expand a Component to its expression: Σ_off W[off] * grid[i+off].
ExprPtr component(const std::string& grid, const WeightArray& weights);
ExprPtr component(const std::string& grid, const SparseArray& weights);

}  // namespace snowflake
