#include "ir/stencil.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/string_util.hpp"

namespace snowflake {

Stencil::Stencil(std::string name, ExprPtr expr, std::string output, DomainUnion domain)
    : name_(std::move(name)),
      expr_(std::move(expr)),
      output_(std::move(output)),
      domain_(std::move(domain)) {
  SF_REQUIRE(expr_ != nullptr, "Stencil expression must be non-null");
  SF_REQUIRE(is_identifier(output_), "output grid name '" + output_ + "' is not a valid identifier");
  SF_REQUIRE(!domain_.empty(), "Stencil requires a non-empty domain");
  if (name_.empty()) name_ = "stencil";
}

Stencil::Stencil(ExprPtr expr, std::string output, DomainUnion domain)
    : Stencil("stencil", std::move(expr), std::move(output), std::move(domain)) {}

bool Stencil::is_in_place() const {
  return grids_read(expr_).count(output_) != 0;
}

const ReduceExpr& Stencil::reduction() const {
  SF_REQUIRE(is_reduction(), "stencil '" + name_ + "' is not a reduction");
  return static_cast<const ReduceExpr&>(*expr_);
}

std::set<std::string> Stencil::grids() const {
  std::set<std::string> out = inputs();
  out.insert(output_);
  return out;
}

std::string Stencil::to_string() const {
  std::ostringstream os;
  os << name_ << ": " << output_ << "[i] = " << expr_->to_string() << "  over  "
     << domain_.to_string();
  return os.str();
}

std::uint64_t Stencil::structural_hash() const {
  HashStream hs;
  hs.add(output_);
  expr_->hash_into(hs);
  for (const auto& rect : domain_.rects()) {
    for (const auto& dim : rect.dims()) {
      hs.add(dim.start).add(dim.stop).add(dim.stride);
    }
    hs.add(std::int64_t{-1});  // rect separator
  }
  return hs.digest();
}

StencilGroup::StencilGroup(std::vector<Stencil> stencils)
    : stencils_(std::move(stencils)) {}

StencilGroup::StencilGroup(const Stencil& stencil) : stencils_({stencil}) {}

StencilGroup& StencilGroup::append(Stencil stencil) {
  stencils_.push_back(std::move(stencil));
  return *this;
}

StencilGroup& StencilGroup::append(const StencilGroup& other) {
  for (const auto& s : other.stencils_) stencils_.push_back(s);
  return *this;
}

std::set<std::string> StencilGroup::grids() const {
  std::set<std::string> out;
  for (const auto& s : stencils_) {
    auto g = s.grids();
    out.insert(g.begin(), g.end());
  }
  return out;
}

std::set<std::string> StencilGroup::params() const {
  std::set<std::string> out;
  for (const auto& s : stencils_) {
    auto p = s.params();
    out.insert(p.begin(), p.end());
  }
  return out;
}

int StencilGroup::rank() const {
  SF_REQUIRE(!stencils_.empty(), "rank() of an empty StencilGroup");
  int r = stencils_[0].rank();
  for (const auto& s : stencils_) {
    SF_REQUIRE(s.rank() == r, "StencilGroup mixes ranks " + std::to_string(r) +
                                  " and " + std::to_string(s.rank()));
  }
  return r;
}

std::string StencilGroup::to_string() const {
  std::ostringstream os;
  os << "StencilGroup[" << stencils_.size() << "]:\n";
  for (const auto& s : stencils_) os << "  " << s.to_string() << "\n";
  return os.str();
}

std::uint64_t StencilGroup::structural_hash() const {
  HashStream hs;
  for (const auto& s : stencils_) {
    hs.add(static_cast<std::int64_t>(s.structural_hash()));
  }
  return hs.digest();
}

}  // namespace snowflake
