#pragma once
// Stencil and StencilGroup (paper Table I).
//
// A Stencil associates an expression, an output grid, and a domain: for
// every point i of the resolved domain, out[i] = expr(i).  The output grid
// may appear in the expression (in-place stencils such as GSRB).
//
// A StencilGroup is an ordered list of stencils with *sequential* semantics;
// the dependence analysis (src/analysis) recovers the parallelism that the
// sequential order over-specifies, and backends compile a group as one
// kernel with barriers only where the analysis requires them.

#include <set>
#include <string>
#include <vector>

#include "domain/domain_union.hpp"
#include "ir/expr.hpp"

namespace snowflake {

class Stencil {
public:
  /// `name` labels the stencil in diagnostics and generated code comments.
  Stencil(std::string name, ExprPtr expr, std::string output, DomainUnion domain);
  Stencil(ExprPtr expr, std::string output, DomainUnion domain);

  const std::string& name() const { return name_; }
  const ExprPtr& expr() const { return expr_; }
  const std::string& output() const { return output_; }
  const DomainUnion& domain() const { return domain_; }

  /// Domain rank (== rank of every IndexMap in expr; checked by validate).
  int rank() const { return domain_.rank(); }

  /// True if the output grid is also read (e.g. GSRB).
  bool is_in_place() const;

  /// True if the expression root is a ReduceExpr (whole-domain reduction
  /// into a one-cell output grid).
  bool is_reduction() const { return expr_->kind() == ExprKind::Reduce; }

  /// The root ReduceExpr; throws unless is_reduction().
  const ReduceExpr& reduction() const;

  /// Sorted distinct grid names read by the expression.
  std::set<std::string> inputs() const { return grids_read(expr_); }

  /// inputs() ∪ {output}.
  std::set<std::string> grids() const;

  /// Sorted distinct scalar parameter names.
  std::set<std::string> params() const { return params_used(expr_); }

  std::string to_string() const;

  /// Stable structural hash (expression + output + domain).
  std::uint64_t structural_hash() const;

private:
  std::string name_;
  ExprPtr expr_;
  std::string output_;
  DomainUnion domain_;
};

class StencilGroup {
public:
  StencilGroup() = default;
  explicit StencilGroup(std::vector<Stencil> stencils);
  /// A group of one (so backends accept either form).
  StencilGroup(const Stencil& stencil);  // NOLINT(google-explicit-constructor)

  const std::vector<Stencil>& stencils() const { return stencils_; }
  size_t size() const { return stencils_.size(); }
  bool empty() const { return stencils_.empty(); }
  const Stencil& operator[](size_t i) const { return stencils_[i]; }

  StencilGroup& append(Stencil stencil);
  StencilGroup& append(const StencilGroup& other);

  /// Sorted distinct grid names across all member stencils.
  std::set<std::string> grids() const;
  std::set<std::string> params() const;

  /// Common rank of all members (throws on mixed ranks or empty group).
  int rank() const;

  std::string to_string() const;
  std::uint64_t structural_hash() const;

private:
  std::vector<Stencil> stencils_;
};

}  // namespace snowflake
