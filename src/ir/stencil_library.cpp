#include "ir/stencil_library.hpp"

#include <cmath>

#include "ir/weights.hpp"
#include "support/error.hpp"

namespace snowflake::lib {

namespace {

/// Unit vector offset ±e_dim of the given rank.
Index unit(int rank, int dim, std::int64_t value) {
  Index v(static_cast<size_t>(rank), 0);
  v[static_cast<size_t>(dim)] = value;
  return v;
}

/// Enumerate all members of {0,1}^rank.
std::vector<Index> corners(int rank) {
  std::vector<Index> out;
  const size_t n = size_t{1} << rank;
  out.reserve(n);
  for (size_t mask = 0; mask < n; ++mask) {
    Index c(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) c[static_cast<size_t>(d)] = (mask >> d) & 1;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::string axis_name(int dim) {
  static const char* names[] = {"x", "y", "z", "u", "v", "w"};
  SF_REQUIRE(dim >= 0 && dim < 6, "axis_name supports dims 0..5");
  return names[dim];
}

std::string beta_name(const std::string& prefix, int dim) {
  return prefix + "_" + axis_name(dim);
}

// --- Domains ----------------------------------------------------------------

DomainUnion interior(int rank) {
  SF_REQUIRE(rank >= 1, "interior requires rank >= 1");
  return DomainUnion(RectDomain(Index(static_cast<size_t>(rank), 1),
                                Index(static_cast<size_t>(rank), -1)));
}

DomainUnion interior_margin(int rank, std::int64_t margin) {
  SF_REQUIRE(rank >= 1 && margin >= 0, "interior_margin requires rank >= 1, margin >= 0");
  return DomainUnion(RectDomain(Index(static_cast<size_t>(rank), margin),
                                Index(static_cast<size_t>(rank), -margin)));
}

DomainUnion colored_interior(int rank, int color) {
  SF_REQUIRE(rank >= 1, "colored_interior requires rank >= 1");
  SF_REQUIRE(color == 0 || color == 1, "colored_interior color must be 0 or 1");
  std::vector<RectDomain> rects;
  for (const Index& c : corners(rank)) {
    std::int64_t sum = 0;
    Index start(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) {
      start[static_cast<size_t>(d)] = 1 + c[static_cast<size_t>(d)];
      sum += start[static_cast<size_t>(d)];
    }
    if (sum % 2 != color) continue;
    rects.emplace_back(start, Index(static_cast<size_t>(rank), -1),
                       Index(static_cast<size_t>(rank), 2));
  }
  return DomainUnion(std::move(rects));
}

DomainUnion colored_2d(int colors, int color) {
  SF_REQUIRE(colors >= 1, "colored_2d requires colors >= 1");
  SF_REQUIRE(color >= 0 && color < colors * colors, "colored_2d color out of range");
  const std::int64_t a = color / colors;
  const std::int64_t b = color % colors;
  // Each product-congruence class is a single strided rect (unlike parity
  // coloring, which needs a union) — paper Figure 3b.
  return DomainUnion(RectDomain({1 + a, 1 + b}, {-1, -1}, {colors, colors}));
}

DomainUnion face(int rank, int dim, bool high) {
  SF_REQUIRE(rank >= 1 && dim >= 0 && dim < rank, "face dimension out of range");
  Index start(static_cast<size_t>(rank), 1);
  Index stop(static_cast<size_t>(rank), -1);
  Index stride(static_cast<size_t>(rank), 1);
  start[static_cast<size_t>(dim)] = high ? -1 : 0;
  stride[static_cast<size_t>(dim)] = 0;  // degenerate: single plane
  return DomainUnion(RectDomain(std::move(start), std::move(stop), std::move(stride)));
}

// --- Expressions ------------------------------------------------------------

ExprPtr cc_laplacian_expr(int rank, const std::string& x) {
  ExprPtr acc = constant(-2.0 * rank) * read(x, Index(static_cast<size_t>(rank), 0));
  for (int d = 0; d < rank; ++d) {
    acc = acc + read(x, unit(rank, d, +1)) + read(x, unit(rank, d, -1));
  }
  return acc;
}

ExprPtr cc_ax_expr(int rank, const std::string& x) {
  // A = -h2inv * laplacian; expand as h2inv * (2*rank*x0 - Σ neighbours) to
  // keep the tree shallow.
  ExprPtr acc = constant(2.0 * rank) * read(x, Index(static_cast<size_t>(rank), 0));
  for (int d = 0; d < rank; ++d) {
    acc = acc - read(x, unit(rank, d, +1)) - read(x, unit(rank, d, -1));
  }
  return param("h2inv") * acc;
}

ExprPtr cc_laplacian_ho4_expr(int rank, const std::string& x) {
  // Per-dim weights (-1/12, 4/3, -5/2, 4/3, -1/12); the centre accumulates
  // -5/2 per dimension.
  ExprPtr acc = constant(-2.5 * rank) * read(x, Index(static_cast<size_t>(rank), 0));
  for (int d = 0; d < rank; ++d) {
    acc = acc +
          constant(4.0 / 3.0) * (read(x, unit(rank, d, +1)) + read(x, unit(rank, d, -1))) -
          constant(1.0 / 12.0) * (read(x, unit(rank, d, +2)) + read(x, unit(rank, d, -2)));
  }
  return acc;
}

ExprPtr cc_laplacian_9pt_expr(const std::string& x) {
  return component(x, WeightArray::from_values(
                          {3, 3}, {1.0 / 6, 4.0 / 6, 1.0 / 6,
                                   4.0 / 6, -20.0 / 6, 4.0 / 6,
                                   1.0 / 6, 4.0 / 6, 1.0 / 6}));
}

ExprPtr vc_ax_expr(int rank, const std::string& x, const std::string& beta_prefix) {
  const Index zero(static_cast<size_t>(rank), 0);
  ExprPtr x0 = read(x, zero);
  ExprPtr acc;
  for (int d = 0; d < rank; ++d) {
    const std::string beta = beta_name(beta_prefix, d);
    ExprPtr bhi = read(beta, unit(rank, d, +1));
    ExprPtr blo = read(beta, zero);
    ExprPtr term = bhi * (x0 - read(x, unit(rank, d, +1))) +
                   blo * (x0 - read(x, unit(rank, d, -1)));
    acc = acc == nullptr ? term : acc + term;
  }
  return param("h2inv") * acc;
}

ExprPtr vc_diag_expr(int rank, const std::string& beta_prefix) {
  const Index zero(static_cast<size_t>(rank), 0);
  ExprPtr acc;
  for (int d = 0; d < rank; ++d) {
    const std::string beta = beta_name(beta_prefix, d);
    ExprPtr term = read(beta, unit(rank, d, +1)) + read(beta, zero);
    acc = acc == nullptr ? term : acc + term;
  }
  return param("h2inv") * acc;
}

// --- Stencils ---------------------------------------------------------------

Stencil cc_apply(int rank, const std::string& x, const std::string& out) {
  return Stencil("cc_apply", cc_ax_expr(rank, x), out, interior(rank));
}

Stencil cc_jacobi(int rank, const std::string& x, const std::string& rhs,
                  const std::string& dinv, const std::string& out) {
  const Index zero(static_cast<size_t>(rank), 0);
  ExprPtr update = read(x, zero) + param("weight") * read(dinv, zero) *
                                       (read(rhs, zero) - cc_ax_expr(rank, x));
  return Stencil("cc_jacobi", update, out, interior(rank));
}

Stencil cc_dinv_setup(int rank, const std::string& dinv) {
  return Stencil("cc_dinv_setup",
                 constant(1.0 / (2.0 * rank)) / param("h2inv"), dinv,
                 interior(rank));
}

Stencil cc_residual(int rank, const std::string& x, const std::string& rhs,
                    const std::string& out) {
  const Index zero(static_cast<size_t>(rank), 0);
  return Stencil("cc_residual", read(rhs, zero) - cc_ax_expr(rank, x), out,
                 interior(rank));
}

Stencil cc_apply_ho4(int rank, const std::string& x, const std::string& out) {
  return Stencil("cc_apply_ho4",
                 constant(-1.0) * param("h2inv") * cc_laplacian_ho4_expr(rank, x),
                 out, interior_margin(rank, 2));
}

Stencil gs4_sweep_9pt(const std::string& x, const std::string& rhs, int color) {
  const Index zero{0, 0};
  // A = -h2inv * lap9; diag(A) = (20/6) h2inv.
  ExprPtr ax = constant(-1.0) * param("h2inv") * cc_laplacian_9pt_expr(x);
  ExprPtr dinv = constant(6.0 / 20.0) / param("h2inv");
  ExprPtr update =
      read(x, zero) + param("weight") * dinv * (read(rhs, zero) - ax);
  return Stencil("gs4_c" + std::to_string(color), update, x,
                 colored_2d(2, color));
}

Stencil vc_apply(int rank, const std::string& x, const std::string& out,
                 const std::string& beta_prefix) {
  return Stencil("vc_apply", vc_ax_expr(rank, x, beta_prefix), out,
                 interior(rank));
}

Stencil vc_gsrb_sweep(int rank, const std::string& x, const std::string& rhs,
                      const std::string& lambda, const std::string& beta_prefix,
                      int color) {
  const Index zero(static_cast<size_t>(rank), 0);
  ExprPtr update = read(x, zero) +
                   read(lambda, zero) *
                       (read(rhs, zero) - vc_ax_expr(rank, x, beta_prefix));
  return Stencil(color == 0 ? "gsrb_red" : "gsrb_black", update, x,
                 colored_interior(rank, color));
}

Stencil vc_residual(int rank, const std::string& x, const std::string& rhs,
                    const std::string& out, const std::string& beta_prefix) {
  const Index zero(static_cast<size_t>(rank), 0);
  return Stencil("vc_residual",
                 read(rhs, zero) - vc_ax_expr(rank, x, beta_prefix), out,
                 interior(rank));
}

Stencil vc_chebyshev_step(int rank, const std::string& x,
                          const std::string& x_prev, const std::string& rhs,
                          const std::string& lambda,
                          const std::string& x_next,
                          const std::string& beta_prefix) {
  const Index zero(static_cast<size_t>(rank), 0);
  ExprPtr x0 = read(x, zero);
  ExprPtr update =
      x0 + param("cheby_beta") * (x0 - read(x_prev, zero)) +
      param("cheby_alpha") * read(lambda, zero) *
          (read(rhs, zero) - vc_ax_expr(rank, x, beta_prefix));
  return Stencil("chebyshev", update, x_next, interior(rank));
}

Stencil vc_lambda_setup(int rank, const std::string& lambda,
                        const std::string& beta_prefix) {
  return Stencil("vc_lambda_setup",
                 constant(1.0) / vc_diag_expr(rank, beta_prefix), lambda,
                 interior(rank));
}

Stencil dirichlet_face(int rank, const std::string& x, int dim, bool high) {
  // ghost = -x[first interior cell inward]: forces the face value (the
  // average of ghost and inside) to zero under a linear operator.
  ExprPtr ghost = -read(x, unit(rank, dim, high ? -1 : +1));
  return Stencil("dirichlet_" + axis_name(dim) + (high ? "_hi" : "_lo"),
                 ghost, x, face(rank, dim, high));
}

StencilGroup dirichlet_boundary(int rank, const std::string& x) {
  StencilGroup group;
  for (int d = 0; d < rank; ++d) {
    group.append(dirichlet_face(rank, x, d, /*high=*/false));
    group.append(dirichlet_face(rank, x, d, /*high=*/true));
  }
  return group;
}

Stencil neumann_face(int rank, const std::string& x, int dim, bool high) {
  ExprPtr ghost = read(x, unit(rank, dim, high ? -1 : +1));
  return Stencil("neumann_" + axis_name(dim) + (high ? "_hi" : "_lo"), ghost,
                 x, face(rank, dim, high));
}

StencilGroup neumann_boundary(int rank, const std::string& x) {
  StencilGroup group;
  for (int d = 0; d < rank; ++d) {
    group.append(neumann_face(rank, x, d, /*high=*/false));
    group.append(neumann_face(rank, x, d, /*high=*/true));
  }
  return group;
}

Stencil dirichlet_quadratic_face(int rank, const std::string& x, int dim,
                                 bool high) {
  const int s = high ? -1 : +1;
  ExprPtr ghost = constant(-2.0) * read(x, unit(rank, dim, s)) +
                  constant(1.0 / 3.0) * read(x, unit(rank, dim, 2 * s));
  return Stencil("dirichlet2_" + axis_name(dim) + (high ? "_hi" : "_lo"),
                 ghost, x, face(rank, dim, high));
}

StencilGroup dirichlet_quadratic_boundary(int rank, const std::string& x) {
  StencilGroup group;
  for (int d = 0; d < rank; ++d) {
    group.append(dirichlet_quadratic_face(rank, x, d, /*high=*/false));
    group.append(dirichlet_quadratic_face(rank, x, d, /*high=*/true));
  }
  return group;
}

Stencil restriction_fw(int rank, const std::string& fine, const std::string& coarse) {
  // coarse cell i covers fine cells 2i-1 and 2i per dim (interiors 1-based).
  ExprPtr acc;
  for (const Index& c : corners(rank)) {
    Index off(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) off[static_cast<size_t>(d)] = c[static_cast<size_t>(d)] - 1;
    ExprPtr term = read_mapped(fine, IndexMap::scale(Index(static_cast<size_t>(rank), 2), off));
    acc = acc == nullptr ? term : acc + term;
  }
  acc = constant(std::pow(0.5, rank)) * acc;
  return Stencil("restriction_fw", acc, coarse, interior(rank));
}

namespace {

/// Strided domain of the fine-parity class `p` (p_d == 1 means odd coords).
RectDomain parity_rect(int rank, const Index& p) {
  Index start(static_cast<size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    start[static_cast<size_t>(d)] = p[static_cast<size_t>(d)] == 1 ? 1 : 2;
  }
  return RectDomain(std::move(start), Index(static_cast<size_t>(rank), -1),
                    Index(static_cast<size_t>(rank), 2));
}

std::string parity_suffix(const Index& p) {
  std::string s;
  for (auto v : p) s += (v == 1 ? 'o' : 'e');
  return s;
}

}  // namespace

StencilGroup interpolation_pc(int rank, const std::string& coarse,
                              const std::string& fine, bool add) {
  StencilGroup group;
  const Index zero(static_cast<size_t>(rank), 0);
  for (const Index& p : corners(rank)) {
    // Fine cell i (odd: coarse (i+1)/2, even: coarse i/2).
    std::vector<DimMap> dims;
    dims.reserve(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) {
      dims.push_back(DimMap{1, p[static_cast<size_t>(d)] == 1 ? 1 : 0, 2});
    }
    ExprPtr value = read_mapped(coarse, IndexMap(std::move(dims)));
    if (add) value = read(fine, zero) + value;
    group.append(Stencil("interp_pc_" + parity_suffix(p), value, fine,
                         parity_rect(rank, p)));
  }
  return group;
}

StencilGroup interpolation_pl(int rank, const std::string& coarse,
                              const std::string& fine, bool add) {
  StencilGroup group;
  const Index zero(static_cast<size_t>(rank), 0);
  for (const Index& p : corners(rank)) {
    // Per-dim linear weights: 3/4 on the containing coarse cell, 1/4 on the
    // neighbour toward the fine cell's position within it.
    ExprPtr acc;
    for (const Index& s : corners(rank)) {  // s_d == 1 selects the far cell
      double weight = 1.0;
      std::vector<DimMap> dims;
      dims.reserve(static_cast<size_t>(rank));
      for (int d = 0; d < rank; ++d) {
        const bool odd = p[static_cast<size_t>(d)] == 1;
        const bool far = s[static_cast<size_t>(d)] == 1;
        weight *= far ? 0.25 : 0.75;
        // odd fine i: near (i+1)/2, far (i-1)/2; even: near i/2, far (i+2)/2.
        std::int64_t off = odd ? (far ? -1 : 1) : (far ? 2 : 0);
        dims.push_back(DimMap{1, off, 2});
      }
      ExprPtr term = constant(weight) * read_mapped(coarse, IndexMap(std::move(dims)));
      acc = acc == nullptr ? term : acc + term;
    }
    if (add) acc = read(fine, zero) + acc;
    group.append(Stencil("interp_pl_" + parity_suffix(p), acc, fine,
                         parity_rect(rank, p)));
  }
  return group;
}

Stencil zero_fill(int rank, const std::string& x) {
  return Stencil("zero_fill", constant(0.0), x,
                 DomainUnion(RectDomain(Index(static_cast<size_t>(rank), 0),
                                        Index(static_cast<size_t>(rank), 0))));
}

Stencil axpby(int rank, double a, const std::string& x, double b,
              const std::string& y, const std::string& out) {
  const Index zero(static_cast<size_t>(rank), 0);
  return Stencil("axpby", constant(a) * read(x, zero) + constant(b) * read(y, zero),
                 out, interior(rank));
}

StencilGroup figure4_complex_smoother() {
  // The paper's Figure 4 (2D variable-coefficient red-black smoother with
  // Dirichlet boundaries), assembled from the same pieces the listing uses:
  // difference = rhs - Ax; final = mesh + lambda * difference; red/black
  // strided unions; rotationally-equivalent Dirichlet edge stencils.
  const int rank = 2;
  StencilGroup group;
  group.append(dirichlet_boundary(rank, "mesh"));
  group.append(vc_gsrb_sweep(rank, "mesh", "rhs", "lambda", "beta", 0));
  group.append(dirichlet_boundary(rank, "mesh"));
  group.append(vc_gsrb_sweep(rank, "mesh", "rhs", "lambda", "beta", 1));
  return group;
}

}  // namespace snowflake::lib
