#include "ir/index_map.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {

std::int64_t DimMap::apply(std::int64_t i) const {
  const std::int64_t v = num * i + off;
  SF_ASSERT(v % den == 0, "IndexMap division is not exact at i=" + std::to_string(i));
  return v / den;
}

IndexMap::IndexMap(std::vector<DimMap> dims) : dims_(std::move(dims)) {
  SF_REQUIRE(!dims_.empty(), "IndexMap requires rank >= 1");
  for (const auto& d : dims_) {
    SF_REQUIRE(d.num >= 1, "IndexMap num must be >= 1");
    SF_REQUIRE(d.den >= 1, "IndexMap den must be >= 1");
  }
}

IndexMap IndexMap::offset(const Index& offsets) {
  std::vector<DimMap> dims;
  dims.reserve(offsets.size());
  for (auto o : offsets) dims.push_back(DimMap{1, o, 1});
  return IndexMap(std::move(dims));
}

IndexMap IndexMap::identity(int rank) {
  SF_REQUIRE(rank >= 1, "IndexMap::identity requires rank >= 1");
  return IndexMap(std::vector<DimMap>(static_cast<size_t>(rank), DimMap{}));
}

IndexMap IndexMap::scale(const Index& factor, const Index& offsets) {
  SF_REQUIRE(factor.size() == offsets.size(), "IndexMap::scale rank mismatch");
  std::vector<DimMap> dims;
  dims.reserve(factor.size());
  for (size_t d = 0; d < factor.size(); ++d) {
    dims.push_back(DimMap{factor[d], offsets[d], 1});
  }
  return IndexMap(std::move(dims));
}

IndexMap IndexMap::divide(const Index& divisor, const Index& offsets) {
  SF_REQUIRE(divisor.size() == offsets.size(), "IndexMap::divide rank mismatch");
  std::vector<DimMap> dims;
  dims.reserve(divisor.size());
  for (size_t d = 0; d < divisor.size(); ++d) {
    dims.push_back(DimMap{1, offsets[d], divisor[d]});
  }
  return IndexMap(std::move(dims));
}

const DimMap& IndexMap::dim(int d) const {
  SF_REQUIRE(d >= 0 && d < rank(), "IndexMap::dim out of range");
  return dims_[static_cast<size_t>(d)];
}

bool IndexMap::is_identity() const {
  for (const auto& d : dims_) {
    if (!d.is_identity()) return false;
  }
  return true;
}

bool IndexMap::is_pure_offset() const {
  for (const auto& d : dims_) {
    if (!d.is_pure_offset()) return false;
  }
  return true;
}

Index IndexMap::pure_offsets() const {
  SF_REQUIRE(is_pure_offset(), "IndexMap is not a pure offset map");
  Index out;
  out.reserve(dims_.size());
  for (const auto& d : dims_) out.push_back(d.off);
  return out;
}

Index IndexMap::apply(const Index& point) const {
  SF_REQUIRE(static_cast<int>(point.size()) == rank(), "IndexMap::apply rank mismatch");
  Index out(point.size());
  for (size_t d = 0; d < point.size(); ++d) out[d] = dims_[d].apply(point[d]);
  return out;
}

std::string IndexMap::to_string() const {
  std::ostringstream os;
  os << "(";
  for (int d = 0; d < rank(); ++d) {
    if (d != 0) os << ", ";
    const DimMap& m = dims_[static_cast<size_t>(d)];
    if (m.is_pure_offset()) {
      if (m.off == 0) {
        os << "i" << d;
      } else if (m.off > 0) {
        os << "i" << d << "+" << m.off;
      } else {
        os << "i" << d << m.off;
      }
      continue;
    }
    os << "(";
    if (m.num != 1) os << m.num << "*";
    os << "i" << d;
    if (m.off > 0) os << "+" << m.off;
    if (m.off < 0) os << m.off;
    os << ")";
    if (m.den != 1) os << "/" << m.den;
  }
  os << ")";
  return os.str();
}

}  // namespace snowflake
