#pragma once
// Canonical stencils and domains used throughout the paper's evaluation:
// constant-coefficient 7-point Laplacian, weighted Jacobi, variable-
// coefficient Gauss-Seidel Red-Black, Dirichlet ghost-cell boundaries,
// residual, restriction and interpolation (the HPGMG operator set), plus
// the paper's Figure 4 complex-smoothing example.
//
// Grid-size conventions: problems allocate (N+2)^d boxes with one ghost
// layer; the interior is 1..N in every dimension and boundary stencils
// write the ghost faces.  All domains below use grid-relative bounds so the
// same stencil objects apply unchanged across every multigrid level.
//
// All operators are rank-generic (2D, 3D, ... up to rank 6) — the paper's
// "arbitrary dimension" claim.

#include <string>

#include "domain/domain_union.hpp"
#include "ir/stencil.hpp"

namespace snowflake::lib {

/// Axis-name suffix for face-centered coefficient grids ("x","y","z",...).
std::string axis_name(int dim);
/// "<prefix>_<axis>", e.g. beta_name("beta", 0) == "beta_x".
std::string beta_name(const std::string& prefix, int dim);

// --- Domains ---------------------------------------------------------------

/// Unit-stride interior (1..-1)^rank.
DomainUnion interior(int rank);

/// Unit-stride interior with margin m: (m..-m)^rank.  Radius-2 operators
/// iterate (2..-2) so every read stays inside the box when only one ghost
/// layer is allocated.
DomainUnion interior_margin(int rank, std::int64_t margin);

/// Red-black parity class of the interior: points with coordinate-sum
/// parity == color (0 = "red" = even).  A union of 2^(rank-1) strided rects
/// (paper Figure 3a).
DomainUnion colored_interior(int rank, int color);

/// 2D multi-color tiling with `colors` x `colors` classes (paper Figure 3b
/// shows the 4-color case, colors == 2).  `color` in [0, colors^2).
DomainUnion colored_2d(int colors, int color);

/// Ghost face of dimension `dim` (low: index 0; high: index extent-1),
/// spanning the interior in all other dimensions.
DomainUnion face(int rank, int dim, bool high);

// --- Expressions ------------------------------------------------------------

/// Σ_dir x[i±e_dir] - 2*rank*x[i]  (the unscaled CC Laplacian).
ExprPtr cc_laplacian_expr(int rank, const std::string& x);

/// A_cc x = -$h2inv * laplacian(x): the constant-coefficient operator.
ExprPtr cc_ax_expr(int rank, const std::string& x);

/// Fourth-order constant-coefficient Laplacian (radius-2 star: per-dim
/// weights (-1/12, 4/3, -5/2, 4/3, -1/12)/h²) — the "higher-order
/// operators (larger stencils)" of the paper's abstract.
ExprPtr cc_laplacian_ho4_expr(int rank, const std::string& x);

/// 2D compact 9-point Laplacian (weights (1,4,1; 4,-20,4; 1,4,1)/6h²):
/// the operator whose diagonal reads make red-black coloring UNSAFE and
/// demand the 4-color tiling of the paper's Figure 3b.
ExprPtr cc_laplacian_9pt_expr(const std::string& x);

/// A_vc x = $h2inv * Σ_d [β_d[i+e_d](x[i]-x[i+e_d]) + β_d[i](x[i]-x[i-e_d])]
/// with face-centered β grids named beta_name(beta_prefix, d); this is
/// -div(β grad x) discretized at second order (the HPGMG operator).
ExprPtr vc_ax_expr(int rank, const std::string& x, const std::string& beta_prefix);

/// diag(A_vc) at a point: $h2inv * Σ_d (β_d[i+e_d] + β_d[i]).
ExprPtr vc_diag_expr(int rank, const std::string& beta_prefix);

// --- Stencils ---------------------------------------------------------------

/// out = A_cc x over the interior (params: h2inv).
Stencil cc_apply(int rank, const std::string& x, const std::string& out);

/// Weighted Jacobi step (out-of-place):
/// out = x + $weight * dinv[i] * (rhs - A_cc x).
/// `dinv` holds the precomputed inverse diagonal (HPGMG stores D^-1 as a
/// mesh, which is also what gives the paper's 40 B/stencil traffic).
Stencil cc_jacobi(int rank, const std::string& x, const std::string& rhs,
                  const std::string& dinv, const std::string& out);

/// dinv = 1/(2*rank*$h2inv) over the interior (constant-coefficient D^-1).
Stencil cc_dinv_setup(int rank, const std::string& dinv);

/// res = rhs - A_cc x over the interior.
Stencil cc_residual(int rank, const std::string& x, const std::string& rhs,
                    const std::string& out);

/// out = -$h2inv * laplacian_ho4(x) over the margin-2 interior.
Stencil cc_apply_ho4(int rank, const std::string& x, const std::string& out);

/// One 4-color Gauss-Seidel half-sweep for the 2D 9-point operator
/// (in-place): x += $weight * (6/(20*$h2inv)) * (rhs + $h2inv*lap9(x)/...)
/// over color class `color` of the 2x2 product coloring.  All points of
/// one class update concurrently (Figure 3b); parity coloring would not be
/// safe for this operator.
Stencil gs4_sweep_9pt(const std::string& x, const std::string& rhs, int color);

/// out = A_vc x over the interior (params: h2inv).
Stencil vc_apply(int rank, const std::string& x, const std::string& out,
                 const std::string& beta_prefix);

/// One GSRB half-sweep (in-place): x += lambda * (rhs - A_vc x) over the
/// given color class.  `lambda` holds precomputed 1/diag(A_vc).
Stencil vc_gsrb_sweep(int rank, const std::string& x, const std::string& rhs,
                      const std::string& lambda, const std::string& beta_prefix,
                      int color);

/// res = rhs - A_vc x over the interior.
Stencil vc_residual(int rank, const std::string& x, const std::string& rhs,
                    const std::string& out, const std::string& beta_prefix);

/// One Chebyshev smoother step (the paper's §II example of an update that
/// is "common in techniques such as ... Chebyshev smoothing"; reads THREE
/// meshes and writes a fourth):
///   x_next = x + $cheby_beta*(x - x_prev)
///              + $cheby_alpha * lambda * (rhs - A_vc x)
/// The caller drives the alpha/beta recurrence and rotates grids.
Stencil vc_chebyshev_step(int rank, const std::string& x,
                          const std::string& x_prev, const std::string& rhs,
                          const std::string& lambda,
                          const std::string& x_next,
                          const std::string& beta_prefix);

/// lambda = 1 / diag(A_vc) over the interior (run once per level).
Stencil vc_lambda_setup(int rank, const std::string& lambda,
                        const std::string& beta_prefix);

/// Linear (reflecting) Dirichlet ghost update for one face:
/// ghost = -x[inward neighbour] (paper Figure 4 lines 16-17).
Stencil dirichlet_face(int rank, const std::string& x, int dim, bool high);

/// All 2*rank Dirichlet face stencils.
StencilGroup dirichlet_boundary(int rank, const std::string& x);

/// Homogeneous Neumann (zero normal flux) ghost update: ghost = x[inward]
/// (reflection), for one face / all faces.
Stencil neumann_face(int rank, const std::string& x, int dim, bool high);
StencilGroup neumann_boundary(int rank, const std::string& x);

/// Second-order Dirichlet ghost update (HPGMG's quadratic BC): fit the
/// parabola through the face value 0 and the first two interior cell
/// centres, evaluate at the ghost centre: ghost = -2*u1 + u2/3.
Stencil dirichlet_quadratic_face(int rank, const std::string& x, int dim,
                                 bool high);
StencilGroup dirichlet_quadratic_boundary(int rank, const std::string& x);

/// Full-weighting (2^rank cell average) restriction:
/// coarse[i] = 2^-rank * Σ_{c∈{0,1}^rank} fine[2i-1+c] over the coarse
/// interior.  Uses multiplicative (num=2) index maps.
Stencil restriction_fw(int rank, const std::string& fine, const std::string& coarse);

/// Piecewise-constant interpolation, one stencil per fine-parity class
/// (2^rank stencils over strided domains, divisive den=2 index maps):
/// fine[i] (+)= coarse[cell containing i].
StencilGroup interpolation_pc(int rank, const std::string& coarse,
                              const std::string& fine, bool add);

/// Piecewise-linear interpolation (weights 3/4, 1/4 per dimension), one
/// stencil per fine-parity class.  Requires valid coarse ghost values.
StencilGroup interpolation_pl(int rank, const std::string& coarse,
                              const std::string& fine, bool add);

/// x = 0 over the whole box (used to zero initial guesses).
Stencil zero_fill(int rank, const std::string& x);

/// out = a*x + b*y over the interior.
Stencil axpby(int rank, double a, const std::string& x, double b,
              const std::string& y, const std::string& out);

/// The paper's Figure 4 example, corrected: a 2D variable-coefficient
/// red-black Jacobi-style smoother with Dirichlet boundaries, as a group
/// [boundary, red, boundary, black].  Grids: mesh, rhs, lambda_w (scalar
/// weight grid "lambda" in the paper), beta_x, beta_y; params: h2inv.
StencilGroup figure4_complex_smoother();

}  // namespace snowflake::lib
