#include "ir/validate.hpp"

#include "domain/domain_algebra.hpp"
#include "grid/grid_set.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake {

ShapeMap shapes_of(const GridSet& grids) {
  ShapeMap shapes;
  for (const auto& name : grids.names()) {
    shapes[name] = grids.at(name).shape();
  }
  return shapes;
}

void validate_stencil(const Stencil& stencil) {
  const int domain_rank = stencil.domain().rank();
  const int read_rank = expr_rank(stencil.expr());
  if (read_rank != 0) {
    SF_REQUIRE(read_rank == domain_rank,
               "stencil '" + stencil.name() + "': expression rank " +
                   std::to_string(read_rank) + " != domain rank " +
                   std::to_string(domain_rank));
  }
}

namespace {

const Index& shape_for(const ShapeMap& shapes, const std::string& grid,
                       const std::string& stencil_name) {
  auto it = shapes.find(grid);
  if (it == shapes.end()) {
    throw LookupError("stencil '" + stencil_name + "' references grid '" + grid +
                      "' which has no shape binding");
  }
  return it->second;
}

}  // namespace

void validate_resolved(const Stencil& stencil, const ShapeMap& shapes) {
  validate_stencil(stencil);
  const Index& out_shape = shape_for(shapes, stencil.output(), stencil.name());
  SF_REQUIRE(static_cast<int>(out_shape.size()) == stencil.rank(),
             "stencil '" + stencil.name() + "': output grid rank " +
                 std::to_string(out_shape.size()) + " != domain rank " +
                 std::to_string(stencil.rank()));
  const ResolvedUnion domain = stencil.domain().resolve(out_shape);

  for (const auto* r : collect_reads(stencil.expr())) {
    const Index& in_shape = shape_for(shapes, r->grid(), stencil.name());
    SF_REQUIRE(static_cast<int>(in_shape.size()) == stencil.rank(),
               "stencil '" + stencil.name() + "': grid '" + r->grid() +
                   "' rank mismatch");
    Index num(in_shape.size()), off(in_shape.size()), den(in_shape.size());
    for (int d = 0; d < r->map().rank(); ++d) {
      num[static_cast<size_t>(d)] = r->map().dim(d).num;
      off[static_cast<size_t>(d)] = r->map().dim(d).off;
      den[static_cast<size_t>(d)] = r->map().dim(d).den;
    }
    for (const auto& rect : domain.rects()) {
      if (rect.empty()) continue;
      ResolvedRect image;
      try {
        image = affine_image(rect, num, off, den);
      } catch (const InvalidArgument& e) {
        throw InvalidArgument("stencil '" + stencil.name() + "': read " +
                              r->to_string() + " over " + rect.to_string() +
                              ": " + e.what());
      }
      for (int d = 0; d < image.rank(); ++d) {
        const ResolvedRange& range = image.range(d);
        if (range.empty()) continue;
        SF_REQUIRE(
            range.lo >= 0 && range.last() < in_shape[static_cast<size_t>(d)],
            "stencil '" + stencil.name() + "': read " + r->to_string() +
                " accesses grid '" + r->grid() + "' out of bounds in dim " +
                std::to_string(d) + " (touches " + std::to_string(range.lo) +
                ".." + std::to_string(range.last()) + ", extent " +
                std::to_string(in_shape[static_cast<size_t>(d)]) + ")");
      }
    }
  }
}

void validate_group(const StencilGroup& group, const ShapeMap& shapes) {
  trace::Span span("ir:validate", "compile");
  span.counter("stencils", static_cast<double>(group.size()));
  SF_REQUIRE(!group.empty(), "cannot validate an empty StencilGroup");
  for (const auto& s : group.stencils()) validate_resolved(s, shapes);
}

}  // namespace snowflake
