#include "ir/validate.hpp"

#include "domain/domain_algebra.hpp"
#include "grid/grid_set.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake {

ShapeMap shapes_of(const GridSet& grids) {
  ShapeMap shapes;
  for (const auto& name : grids.names()) {
    shapes[name] = grids.at(name).shape();
  }
  return shapes;
}

namespace {

/// Count ReduceExpr nodes anywhere in the tree.
int count_reduces(const ExprPtr& expr) {
  int n = 0;
  visit(expr, [&](const Expr& node) { n += node.kind() == ExprKind::Reduce; });
  return n;
}

void validate_reduction_shape(const Stencil& stencil) {
  const auto& red = stencil.reduction();
  SF_REQUIRE(count_reduces(red.body()) == 0,
             "stencil '" + stencil.name() +
                 "': reductions cannot nest — the body of a ReduceExpr must "
                 "be reduction-free");
  SF_REQUIRE(grids_read(red.body()).count(stencil.output()) == 0,
             "stencil '" + stencil.name() + "': reduction body reads the "
                 "result grid '" + stencil.output() + "'");
  if (red.op() == ReduceOp::Dot) {
    const bool mul_root =
        red.body()->kind() == ExprKind::Binary &&
        static_cast<const BinaryExpr&>(*red.body()).op() == BinaryOp::Mul;
    SF_REQUIRE(mul_root, "stencil '" + stencil.name() +
                             "': dot reduction body must be a top-level "
                             "product a(i) * b(i)");
  }
}

}  // namespace

void validate_stencil(const Stencil& stencil) {
  const int domain_rank = stencil.domain().rank();
  const int read_rank = expr_rank(stencil.expr());
  if (read_rank != 0) {
    SF_REQUIRE(read_rank == domain_rank,
               "stencil '" + stencil.name() + "': expression rank " +
                   std::to_string(read_rank) + " != domain rank " +
                   std::to_string(domain_rank));
  }
  if (stencil.is_reduction()) {
    validate_reduction_shape(stencil);
  } else {
    SF_REQUIRE(count_reduces(stencil.expr()) == 0,
               "stencil '" + stencil.name() +
                   "': a ReduceExpr is only valid as the root of a stencil "
                   "expression");
  }
}

namespace {

const Index& shape_for(const ShapeMap& shapes, const std::string& grid,
                       const std::string& stencil_name) {
  auto it = shapes.find(grid);
  if (it == shapes.end()) {
    throw LookupError("stencil '" + stencil_name + "' references grid '" + grid +
                      "' which has no shape binding");
  }
  return it->second;
}

}  // namespace

void validate_resolved(const Stencil& stencil, const ShapeMap& shapes) {
  validate_stencil(stencil);
  const Index& out_shape = shape_for(shapes, stencil.output(), stencil.name());
  SF_REQUIRE(static_cast<int>(out_shape.size()) == stencil.rank(),
             "stencil '" + stencil.name() + "': output grid rank " +
                 std::to_string(out_shape.size()) + " != domain rank " +
                 std::to_string(stencil.rank()));
  Index domain_anchor_shape = out_shape;
  if (stencil.is_reduction()) {
    // The scalar result grid is a single cell of matching rank; the
    // iteration domain is anchored on the named full-size grid.
    for (size_t d = 0; d < out_shape.size(); ++d) {
      SF_REQUIRE(out_shape[d] == 1,
                 "stencil '" + stencil.name() + "': reduction result grid '" +
                     stencil.output() + "' must be one cell (extent " +
                     std::to_string(out_shape[d]) + " in dim " +
                     std::to_string(d) + ")");
    }
    const std::string& anchor = stencil.reduction().anchor();
    const Index& anchor_shape = shape_for(shapes, anchor, stencil.name());
    SF_REQUIRE(static_cast<int>(anchor_shape.size()) == stencil.rank(),
               "stencil '" + stencil.name() + "': anchor grid '" + anchor +
                   "' rank " + std::to_string(anchor_shape.size()) +
                   " != domain rank " + std::to_string(stencil.rank()));
    domain_anchor_shape = anchor_shape;
  }
  const ResolvedUnion domain = stencil.domain().resolve(domain_anchor_shape);

  for (const auto* r : collect_reads(stencil.expr())) {
    const Index& in_shape = shape_for(shapes, r->grid(), stencil.name());
    SF_REQUIRE(static_cast<int>(in_shape.size()) == stencil.rank(),
               "stencil '" + stencil.name() + "': grid '" + r->grid() +
                   "' rank mismatch");
    Index num(in_shape.size()), off(in_shape.size()), den(in_shape.size());
    for (int d = 0; d < r->map().rank(); ++d) {
      num[static_cast<size_t>(d)] = r->map().dim(d).num;
      off[static_cast<size_t>(d)] = r->map().dim(d).off;
      den[static_cast<size_t>(d)] = r->map().dim(d).den;
    }
    for (const auto& rect : domain.rects()) {
      if (rect.empty()) continue;
      ResolvedRect image;
      try {
        image = affine_image(rect, num, off, den);
      } catch (const InvalidArgument& e) {
        throw InvalidArgument("stencil '" + stencil.name() + "': read " +
                              r->to_string() + " over " + rect.to_string() +
                              ": " + e.what());
      }
      for (int d = 0; d < image.rank(); ++d) {
        const ResolvedRange& range = image.range(d);
        if (range.empty()) continue;
        SF_REQUIRE(
            range.lo >= 0 && range.last() < in_shape[static_cast<size_t>(d)],
            "stencil '" + stencil.name() + "': read " + r->to_string() +
                " accesses grid '" + r->grid() + "' out of bounds in dim " +
                std::to_string(d) + " (touches " + std::to_string(range.lo) +
                ".." + std::to_string(range.last()) + ", extent " +
                std::to_string(in_shape[static_cast<size_t>(d)]) + ")");
      }
    }
  }
}

void validate_group(const StencilGroup& group, const ShapeMap& shapes) {
  trace::Span span("ir:validate", "compile");
  span.counter("stencils", static_cast<double>(group.size()));
  SF_REQUIRE(!group.empty(), "cannot validate an empty StencilGroup");
  for (const auto& s : group.stencils()) validate_resolved(s, shapes);
  // A reduction's scalar result is only meaningful once its wave completes;
  // consuming (or clobbering) it later in the same group would need a
  // scalar-broadcast read the IR cannot express, so the group must be split
  // at the reduction boundary and the result fed to the next group.
  for (size_t i = 0; i < group.size(); ++i) {
    if (!group[i].is_reduction()) continue;
    const std::string& result = group[i].output();
    for (size_t j = i + 1; j < group.size(); ++j) {
      SF_REQUIRE(group[j].inputs().count(result) == 0 &&
                     group[j].output() != result,
                 "stencil '" + group[j].name() + "' uses reduction result '" +
                     result + "' produced earlier in the same group; split "
                     "the group at the reduction boundary");
    }
  }
}

}  // namespace snowflake
