#include "ir/weights.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace snowflake {

namespace {
std::int64_t product(const Index& v) {
  std::int64_t p = 1;
  for (auto x : v) p *= x;
  return p;
}
}  // namespace

// --- WeightArray ------------------------------------------------------------

WeightArray::WeightArray(Index shape, std::vector<ExprPtr> flat)
    : shape_(std::move(shape)), flat_(std::move(flat)) {
  SF_REQUIRE(!shape_.empty(), "WeightArray requires rank >= 1");
  for (auto e : shape_) {
    SF_REQUIRE(e >= 1 && e % 2 == 1,
               "WeightArray extents must be odd and positive, got " + std::to_string(e));
  }
  SF_REQUIRE(static_cast<std::int64_t>(flat_.size()) == product(shape_),
             "WeightArray element count does not match shape");
  strides_.assign(shape_.size(), 1);
  std::int64_t acc = 1;
  for (int d = rank() - 1; d >= 0; --d) {
    strides_[static_cast<size_t>(d)] = acc;
    acc *= shape_[static_cast<size_t>(d)];
  }
}

WeightArray WeightArray::from_values(Index shape, const std::vector<double>& flat) {
  std::vector<ExprPtr> exprs;
  exprs.reserve(flat.size());
  for (double v : flat) exprs.push_back(v == 0.0 ? nullptr : constant(v));
  return WeightArray(std::move(shape), std::move(exprs));
}

WeightArray WeightArray::point(int rank, ExprPtr weight) {
  SF_REQUIRE(rank >= 1, "WeightArray::point requires rank >= 1");
  return WeightArray(Index(static_cast<size_t>(rank), 1), {std::move(weight)});
}

WeightArray WeightArray::point(int rank, double weight) {
  return point(rank, constant(weight));
}

Index WeightArray::center() const {
  Index c(shape_.size());
  for (size_t d = 0; d < shape_.size(); ++d) c[d] = shape_[d] / 2;
  return c;
}

const ExprPtr& WeightArray::at(const Index& element) const {
  SF_REQUIRE(static_cast<int>(element.size()) == rank(), "WeightArray::at rank mismatch");
  std::int64_t flat = 0;
  for (size_t d = 0; d < element.size(); ++d) {
    SF_REQUIRE(element[d] >= 0 && element[d] < shape_[d],
               "WeightArray::at element out of range");
    flat += element[d] * strides_[d];
  }
  return flat_[static_cast<size_t>(flat)];
}

ExprPtr WeightArray::at_offset(const Index& offset) const {
  SF_REQUIRE(static_cast<int>(offset.size()) == rank(),
             "WeightArray::at_offset rank mismatch");
  Index element(offset.size());
  for (size_t d = 0; d < offset.size(); ++d) {
    element[d] = offset[d] + shape_[d] / 2;
    if (element[d] < 0 || element[d] >= shape_[d]) return nullptr;
  }
  return at(element);
}

std::vector<std::pair<Index, ExprPtr>> WeightArray::entries() const {
  std::vector<std::pair<Index, ExprPtr>> out;
  const Index c = center();
  Index element(shape_.size(), 0);
  for (size_t flat = 0; flat < flat_.size(); ++flat) {
    const ExprPtr& w = flat_[flat];
    if (w != nullptr && !is_constant(w, 0.0)) {
      Index offset(element.size());
      for (size_t d = 0; d < element.size(); ++d) offset[d] = element[d] - c[d];
      out.emplace_back(std::move(offset), w);
    }
    for (int d = rank() - 1; d >= 0; --d) {
      if (++element[static_cast<size_t>(d)] < shape_[static_cast<size_t>(d)]) break;
      element[static_cast<size_t>(d)] = 0;
    }
  }
  return out;
}

SparseArray WeightArray::to_sparse() const {
  SparseArray out(rank());
  for (auto& [offset, weight] : entries()) out.set(offset, weight);
  return out;
}

std::string WeightArray::to_string() const {
  return to_sparse().to_string();
}

// --- SparseArray ------------------------------------------------------------

SparseArray::SparseArray(int rank) : rank_(rank) {
  SF_REQUIRE(rank_ >= 1, "SparseArray requires rank >= 1");
}

SparseArray::SparseArray(int rank, std::map<Index, ExprPtr> entries)
    : rank_(rank), entries_(std::move(entries)) {
  SF_REQUIRE(rank_ >= 1, "SparseArray requires rank >= 1");
  for (const auto& [offset, weight] : entries_) {
    SF_REQUIRE(static_cast<int>(offset.size()) == rank_, "SparseArray offset rank mismatch");
    SF_REQUIRE(weight != nullptr, "SparseArray weights must be non-null");
  }
}

SparseArray& SparseArray::set(const Index& offset, ExprPtr weight) {
  SF_REQUIRE(static_cast<int>(offset.size()) == rank_, "SparseArray::set rank mismatch");
  SF_REQUIRE(weight != nullptr, "SparseArray::set weight must be non-null");
  entries_[offset] = std::move(weight);
  return *this;
}

SparseArray& SparseArray::set(const Index& offset, double weight) {
  return set(offset, constant(weight));
}

ExprPtr SparseArray::at(const Index& offset) const {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : it->second;
}

SparseArray SparseArray::operator+(const SparseArray& other) const {
  SF_REQUIRE(rank_ == other.rank_, "SparseArray::operator+ rank mismatch");
  SparseArray out = *this;
  for (const auto& [offset, weight] : other.entries_) {
    auto it = out.entries_.find(offset);
    if (it == out.entries_.end()) {
      out.entries_[offset] = weight;
    } else {
      it->second = it->second + weight;
    }
  }
  return out;
}

SparseArray SparseArray::scaled(const ExprPtr& factor) const {
  SF_REQUIRE(factor != nullptr, "SparseArray::scaled factor must be non-null");
  SparseArray out(rank_);
  for (const auto& [offset, weight] : entries_) {
    out.entries_[offset] = factor * weight;
  }
  return out;
}

SparseArray SparseArray::scaled(double factor) const { return scaled(constant(factor)); }

WeightArray SparseArray::to_weight_array() const {
  SF_REQUIRE(!entries_.empty(), "cannot densify an empty SparseArray");
  // Minimal odd-extent bounding box: extent_d = 2*max|offset_d| + 1.
  Index radius(static_cast<size_t>(rank_), 0);
  for (const auto& [offset, weight] : entries_) {
    for (size_t d = 0; d < offset.size(); ++d) {
      radius[d] = std::max(radius[d], std::abs(offset[d]));
    }
  }
  Index shape(static_cast<size_t>(rank_));
  for (size_t d = 0; d < shape.size(); ++d) shape[d] = 2 * radius[d] + 1;
  std::int64_t total = product(shape);
  std::vector<ExprPtr> flat(static_cast<size_t>(total));
  Index strides(static_cast<size_t>(rank_), 1);
  std::int64_t acc = 1;
  for (int d = rank_ - 1; d >= 0; --d) {
    strides[static_cast<size_t>(d)] = acc;
    acc *= shape[static_cast<size_t>(d)];
  }
  for (const auto& [offset, weight] : entries_) {
    std::int64_t pos = 0;
    for (size_t d = 0; d < offset.size(); ++d) {
      pos += (offset[d] + radius[d]) * strides[d];
    }
    flat[static_cast<size_t>(pos)] = weight;
  }
  return WeightArray(std::move(shape), std::move(flat));
}

std::string SparseArray::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [offset, weight] : entries_) {
    if (!first) os << ", ";
    first = false;
    os << "(";
    for (size_t d = 0; d < offset.size(); ++d) {
      if (d != 0) os << ",";
      os << offset[d];
    }
    os << "): " << weight->to_string();
  }
  os << "}";
  return os.str();
}

// --- Component --------------------------------------------------------------

ExprPtr component(const std::string& grid, const WeightArray& weights) {
  return component(grid, weights.to_sparse());
}

ExprPtr component(const std::string& grid, const SparseArray& weights) {
  SF_REQUIRE(!weights.empty(),
             "Component of '" + grid + "' has no non-zero weights");
  ExprPtr acc;
  for (const auto& [offset, weight] : weights.entries()) {
    ExprPtr term = is_constant(weight, 1.0) ? read(grid, offset)
                                            : weight * read(grid, offset);
    acc = acc == nullptr ? term : acc + term;
  }
  return acc;
}

}  // namespace snowflake
