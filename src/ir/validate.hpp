#pragma once
// Stencil validation.
//
// Two phases, mirroring the paper's front end:
//  * validate_stencil — shape-independent checks (rank consistency between
//    the expression's index maps and the domain).
//  * validate_resolved — checks against concrete grid shapes: the domain
//    resolves inside the output grid, every read's affine image of the
//    domain divides exactly and lands inside the read grid's box.  This is
//    what makes out-of-bounds ghost reads a compile-time error instead of a
//    runtime crash.

#include <map>
#include <string>

#include "ir/stencil.hpp"

namespace snowflake {

/// Grid name -> extents.  The contract between stencils and execution.
using ShapeMap = std::map<std::string, Index>;

class GridSet;

/// Extract the ShapeMap of a GridSet.
ShapeMap shapes_of(const GridSet& grids);

/// Shape-independent validation; throws InvalidArgument on failure.
void validate_stencil(const Stencil& stencil);

/// Shape-dependent validation; throws InvalidArgument / LookupError.
void validate_resolved(const Stencil& stencil, const ShapeMap& shapes);

/// Validate every member of a group (both phases).
void validate_group(const StencilGroup& group, const ShapeMap& shapes);

}  // namespace snowflake
