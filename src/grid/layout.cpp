#include "grid/layout.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {

Layout::Layout(Index shape) : shape_(std::move(shape)) {
  SF_REQUIRE(!shape_.empty(), "Layout requires rank >= 1");
  strides_.assign(shape_.size(), 1);
  size_ = 1;
  for (int d = rank() - 1; d >= 0; --d) {
    SF_REQUIRE(shape_[static_cast<size_t>(d)] > 0,
               "Layout extents must be positive, got " +
                   std::to_string(shape_[static_cast<size_t>(d)]));
    strides_[static_cast<size_t>(d)] = size_;
    size_ *= shape_[static_cast<size_t>(d)];
  }
}

std::int64_t Layout::extent(int dim) const {
  SF_REQUIRE(dim >= 0 && dim < rank(), "Layout::extent dimension out of range");
  return shape_[static_cast<size_t>(dim)];
}

std::int64_t Layout::offset(const Index& index) const {
  SF_REQUIRE(static_cast<int>(index.size()) == rank(),
             "Layout::offset rank mismatch");
  std::int64_t flat = 0;
  for (size_t d = 0; d < index.size(); ++d) {
    flat += index[d] * strides_[d];
  }
  return flat;
}

bool Layout::contains(const Index& index) const {
  if (static_cast<int>(index.size()) != rank()) return false;
  for (size_t d = 0; d < index.size(); ++d) {
    if (index[d] < 0 || index[d] >= shape_[d]) return false;
  }
  return true;
}

Index Layout::unflatten(std::int64_t flat) const {
  SF_REQUIRE(flat >= 0 && flat < size_, "Layout::unflatten offset out of range");
  Index index(shape_.size(), 0);
  for (size_t d = 0; d < shape_.size(); ++d) {
    index[d] = flat / strides_[d];
    flat %= strides_[d];
  }
  return index;
}

std::string Layout::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int d = 0; d < rank(); ++d) {
    if (d != 0) os << " x ";
    os << shape_[static_cast<size_t>(d)];
  }
  os << "]";
  return os.str();
}

}  // namespace snowflake
