#pragma once
// N-dimensional row-major layout: shape, strides, linearization.
//
// A Layout maps an N-d index to a flat offset.  The last dimension is
// contiguous (row-major / C order), matching what the micro-compilers emit.

#include <cstdint>
#include <string>
#include <vector>

namespace snowflake {

using Index = std::vector<std::int64_t>;

/// Row-major layout over an N-d box of extents `shape`.
class Layout {
public:
  Layout() = default;
  explicit Layout(Index shape);

  int rank() const { return static_cast<int>(shape_.size()); }
  const Index& shape() const { return shape_; }
  const Index& strides() const { return strides_; }
  std::int64_t extent(int dim) const;
  std::int64_t size() const { return size_; }

  /// Flat offset of an N-d index (validated in debug paths via contains()).
  std::int64_t offset(const Index& index) const;

  /// True if `index` lies inside the box.
  bool contains(const Index& index) const;

  /// Inverse of offset(): N-d index of a flat offset.
  Index unflatten(std::int64_t flat) const;

  /// "[a x b x c]" for diagnostics.
  std::string to_string() const;

  friend bool operator==(const Layout& a, const Layout& b) {
    return a.shape_ == b.shape_;
  }

private:
  Index shape_;
  Index strides_;
  std::int64_t size_ = 0;
};

}  // namespace snowflake
