#pragma once
// Grid serialization: raw binary round-trip (checkpointing), CSV (2D
// inspection), and legacy-VTK structured points (ParaView/VisIt
// visualization of example outputs).

#include <string>

#include "grid/grid.hpp"

namespace snowflake::io {

/// Binary dump with a small self-describing header; round-trips exactly.
void write_raw(const Grid& grid, const std::string& path);
Grid read_raw(const std::string& path);

/// Comma-separated values, one row per leading index (rank 1 or 2).
void write_csv(const Grid& grid, const std::string& path);

/// Legacy VTK STRUCTURED_POINTS with one double scalar field (rank 1-3).
void write_vtk(const Grid& grid, const std::string& path,
               const std::string& field_name = "field");

}  // namespace snowflake::io
