#include "grid/grid_io.hpp"

#include <cstring>
#include <fstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace snowflake::io {

namespace {
constexpr char kMagic[8] = {'S', 'F', 'G', 'R', 'I', 'D', '0', '1'};

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  return out;
}
}  // namespace

void write_raw(const Grid& grid, const std::string& path) {
  SF_REQUIRE(!grid.empty(), "write_raw: empty grid");
  auto out = open_out(path, std::ios::binary);
  out.write(kMagic, sizeof(kMagic));
  const std::int64_t rank = grid.rank();
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (auto e : grid.shape()) {
    out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  }
  out.write(reinterpret_cast<const char*>(grid.data()),
            static_cast<std::streamsize>(grid.size() * sizeof(double)));
  if (!out) throw Error("short write to '" + path + "'");
}

Grid read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("'" + path + "' is not a snowflake grid file");
  }
  std::int64_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  SF_REQUIRE(rank >= 1 && rank <= 8, "grid file has implausible rank");
  Index shape(static_cast<size_t>(rank));
  for (auto& e : shape) {
    in.read(reinterpret_cast<char*>(&e), sizeof(e));
  }
  if (!in) throw Error("truncated header in '" + path + "'");
  Grid grid(shape);
  in.read(reinterpret_cast<char*>(grid.data()),
          static_cast<std::streamsize>(grid.size() * sizeof(double)));
  if (!in) throw Error("truncated data in '" + path + "'");
  return grid;
}

void write_csv(const Grid& grid, const std::string& path) {
  SF_REQUIRE(grid.rank() <= 2, "write_csv supports rank 1 or 2");
  auto out = open_out(path, std::ios::out);
  out.precision(17);
  if (grid.rank() == 1) {
    for (std::int64_t i = 0; i < grid.size(); ++i) {
      out << grid[i] << "\n";
    }
  } else {
    const std::int64_t rows = grid.shape()[0];
    const std::int64_t cols = grid.shape()[1];
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) {
        if (j) out << ",";
        out << grid.at({i, j});
      }
      out << "\n";
    }
  }
  if (!out) throw Error("short write to '" + path + "'");
}

void write_vtk(const Grid& grid, const std::string& path,
               const std::string& field_name) {
  SF_REQUIRE(grid.rank() >= 1 && grid.rank() <= 3,
             "write_vtk supports ranks 1..3");
  SF_REQUIRE(is_identifier(field_name), "VTK field name must be an identifier");
  auto out = open_out(path, std::ios::out);
  Index dims(3, 1);
  // VTK dimensions are (x, y, z) fastest-first; our last dim is contiguous.
  for (int d = 0; d < grid.rank(); ++d) {
    dims[static_cast<size_t>(grid.rank() - 1 - d)] =
        grid.shape()[static_cast<size_t>(d)];
  }
  out << "# vtk DataFile Version 3.0\nsnowflake grid\nASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << dims[0] << " " << dims[1] << " " << dims[2] << "\n"
      << "ORIGIN 0 0 0\nSPACING 1 1 1\n"
      << "POINT_DATA " << grid.size() << "\n"
      << "SCALARS " << field_name << " double 1\nLOOKUP_TABLE default\n";
  out.precision(17);
  // VTK iterates x fastest == our contiguous last dim: flat order matches.
  for (std::int64_t i = 0; i < grid.size(); ++i) {
    out << grid[i] << "\n";
  }
  if (!out) throw Error("short write to '" + path + "'");
}

}  // namespace snowflake::io
