#pragma once
// GridSet: the binding environment mapping stencil grid names to Grids.
//
// A Stencil refers to meshes by name ("mesh", "rhs", "beta_x", ...).  At
// execution time a GridSet supplies the actual arrays.  Compiled kernels are
// specialized to grid *shapes*; the GridSet is re-bindable per call as long
// as shapes match.
//
// Grids are held by shared_ptr so that several GridSets can reference the
// same storage under different names — the multigrid solver binds a fine
// level's residual and a coarse level's right-hand side into one set for
// the restriction kernel.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "grid/grid.hpp"

namespace snowflake {

class GridSet {
public:
  GridSet() = default;

  /// Insert or replace a grid under `name`; returns a reference to it.
  Grid& add(const std::string& name, Grid grid);

  /// Allocate a zero grid of `shape` under `name`.
  Grid& add_zeros(const std::string& name, Index shape);

  /// Bind existing storage under `name` (shared with other GridSets).
  Grid& add_shared(const std::string& name, std::shared_ptr<Grid> grid);

  /// Shared handle to a grid (for add_shared into another set).
  std::shared_ptr<Grid> share(const std::string& name) const;

  bool contains(const std::string& name) const;

  /// Look up a grid; throws LookupError if absent.
  Grid& at(const std::string& name);
  const Grid& at(const std::string& name) const;

  void remove(const std::string& name);

  /// Names in sorted order (this is the kernel argument order contract).
  std::vector<std::string> names() const;

  size_t size() const { return grids_.size(); }

private:
  std::map<std::string, std::shared_ptr<Grid>> grids_;
};

}  // namespace snowflake
