#include "grid/grid_set.hpp"

#include "support/error.hpp"

namespace snowflake {

Grid& GridSet::add(const std::string& name, Grid grid) {
  SF_REQUIRE(!name.empty(), "GridSet::add requires a non-empty name");
  auto [it, inserted] =
      grids_.insert_or_assign(name, std::make_shared<Grid>(std::move(grid)));
  (void)inserted;
  return *it->second;
}

Grid& GridSet::add_zeros(const std::string& name, Index shape) {
  return add(name, Grid(std::move(shape)));
}

Grid& GridSet::add_shared(const std::string& name, std::shared_ptr<Grid> grid) {
  SF_REQUIRE(!name.empty(), "GridSet::add_shared requires a non-empty name");
  SF_REQUIRE(grid != nullptr, "GridSet::add_shared requires a non-null grid");
  auto [it, inserted] = grids_.insert_or_assign(name, std::move(grid));
  (void)inserted;
  return *it->second;
}

std::shared_ptr<Grid> GridSet::share(const std::string& name) const {
  auto it = grids_.find(name);
  if (it == grids_.end()) throw LookupError("GridSet has no grid named '" + name + "'");
  return it->second;
}

bool GridSet::contains(const std::string& name) const {
  return grids_.find(name) != grids_.end();
}

Grid& GridSet::at(const std::string& name) {
  auto it = grids_.find(name);
  if (it == grids_.end()) throw LookupError("GridSet has no grid named '" + name + "'");
  return *it->second;
}

const Grid& GridSet::at(const std::string& name) const {
  auto it = grids_.find(name);
  if (it == grids_.end()) throw LookupError("GridSet has no grid named '" + name + "'");
  return *it->second;
}

void GridSet::remove(const std::string& name) {
  auto it = grids_.find(name);
  if (it == grids_.end()) throw LookupError("GridSet has no grid named '" + name + "'");
  grids_.erase(it);
}

std::vector<std::string> GridSet::names() const {
  std::vector<std::string> out;
  out.reserve(grids_.size());
  for (const auto& [name, grid] : grids_) out.push_back(name);
  return out;
}

}  // namespace snowflake
