#include "grid/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace snowflake {

namespace {
constexpr size_t kAlignment = 64;

double* aligned_alloc_doubles(std::int64_t count) {
  // Round the byte size up to the alignment as std::aligned_alloc requires.
  size_t bytes = static_cast<size_t>(count) * sizeof(double);
  bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  void* p = std::aligned_alloc(kAlignment, bytes);
  if (p == nullptr) throw Error("Grid allocation failed (" + std::to_string(bytes) + " bytes)");
  return static_cast<double*>(p);
}

/// SplitMix64: tiny, high-quality deterministic generator for test fills.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Grid::Grid(Index shape) : layout_(std::move(shape)) {
  allocate();
  fill(0.0);
}

Grid::Grid(Index shape, double fill_value) : layout_(std::move(shape)) {
  allocate();
  fill(fill_value);
}

Grid::Grid(const Grid& other) : layout_(other.layout_) {
  if (!other.empty()) {
    allocate();
    std::memcpy(data_, other.data_, static_cast<size_t>(size()) * sizeof(double));
  }
}

Grid& Grid::operator=(const Grid& other) {
  if (this == &other) return *this;
  release();
  layout_ = other.layout_;
  if (!other.empty()) {
    allocate();
    std::memcpy(data_, other.data_, static_cast<size_t>(size()) * sizeof(double));
  }
  return *this;
}

Grid::Grid(Grid&& other) noexcept : layout_(std::move(other.layout_)), data_(other.data_) {
  other.data_ = nullptr;
  other.layout_ = Layout();
}

Grid& Grid::operator=(Grid&& other) noexcept {
  if (this == &other) return *this;
  release();
  layout_ = std::move(other.layout_);
  data_ = other.data_;
  other.data_ = nullptr;
  other.layout_ = Layout();
  return *this;
}

Grid::~Grid() { release(); }

void Grid::allocate() { data_ = aligned_alloc_doubles(layout_.size()); }

void Grid::release() {
  std::free(data_);
  data_ = nullptr;
}

double& Grid::at(const Index& index) {
  SF_REQUIRE(layout_.contains(index), "Grid::at index out of range");
  return data_[layout_.offset(index)];
}

double Grid::at(const Index& index) const {
  SF_REQUIRE(layout_.contains(index), "Grid::at index out of range");
  return data_[layout_.offset(index)];
}

void Grid::fill(double value) {
  std::fill(data_, data_ + size(), value);
}

void Grid::fill_with(const std::function<double(const Index&)>& fn) {
  Index index(static_cast<size_t>(rank()), 0);
  const Index& extents = shape();
  for (std::int64_t flat = 0; flat < size(); ++flat) {
    data_[flat] = fn(index);
    // Odometer increment of the N-d index.
    for (int d = rank() - 1; d >= 0; --d) {
      if (++index[static_cast<size_t>(d)] < extents[static_cast<size_t>(d)]) break;
      index[static_cast<size_t>(d)] = 0;
    }
  }
}

void Grid::fill_random(std::uint64_t seed, double lo, double hi) {
  SF_REQUIRE(lo < hi, "Grid::fill_random requires lo < hi");
  std::uint64_t state = seed;
  const double scale = (hi - lo) / 9007199254740992.0;  // 2^53
  for (std::int64_t i = 0; i < size(); ++i) {
    data_[i] = lo + scale * static_cast<double>(splitmix64(state) >> 11);
  }
}

double Grid::sum() const {
  double acc = 0.0;
  for (std::int64_t i = 0; i < size(); ++i) acc += data_[i];
  return acc;
}

double Grid::norm_l2() const {
  double acc = 0.0;
  for (std::int64_t i = 0; i < size(); ++i) acc += data_[i] * data_[i];
  return std::sqrt(acc);
}

double Grid::norm_max() const {
  double acc = 0.0;
  for (std::int64_t i = 0; i < size(); ++i) acc = std::max(acc, std::fabs(data_[i]));
  return acc;
}

double Grid::max_abs_diff(const Grid& a, const Grid& b) {
  SF_REQUIRE(a.shape() == b.shape(), "Grid::max_abs_diff shape mismatch");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::fabs(a.data_[i] - b.data_[i]));
  }
  return acc;
}

bool Grid::all_close(const Grid& a, const Grid& b, double tol) {
  return a.shape() == b.shape() && max_abs_diff(a, b) <= tol;
}

}  // namespace snowflake
