#pragma once
// Grid: an owning N-dimensional array of doubles.
//
// This is the mesh substrate every stencil reads and writes.  Storage is
// 64-byte aligned (cache-line / AVX-512 friendly) and row-major.  Boundary
// cells are not special at this level: HPGMG-style problems allocate
// (N+2)^d boxes and address the ghost layer with ordinary indices, exactly
// as Snowflake's domains do (negative bounds resolve against the extent).

#include <cstdint>
#include <functional>
#include <string>

#include "grid/layout.hpp"

namespace snowflake {

class Grid {
public:
  Grid() = default;

  /// Allocate a zero-initialized grid with the given extents.
  explicit Grid(Index shape);

  /// Allocate and fill with a constant.
  Grid(Index shape, double fill_value);

  Grid(const Grid& other);
  Grid& operator=(const Grid& other);
  Grid(Grid&& other) noexcept;
  Grid& operator=(Grid&& other) noexcept;
  ~Grid();

  const Layout& layout() const { return layout_; }
  int rank() const { return layout_.rank(); }
  const Index& shape() const { return layout_.shape(); }
  std::int64_t size() const { return layout_.size(); }
  bool empty() const { return data_ == nullptr; }

  double* data() { return data_; }
  const double* data() const { return data_; }

  double& at(const Index& index);
  double at(const Index& index) const;

  /// Unchecked flat access (hot paths; kernels use raw data()).
  double& operator[](std::int64_t flat) { return data_[flat]; }
  double operator[](std::int64_t flat) const { return data_[flat]; }

  /// Set every element to `value`.
  void fill(double value);

  /// Set element (i0,...,ik) = fn(i0,...,ik).
  void fill_with(const std::function<double(const Index&)>& fn);

  /// Deterministic pseudo-random fill in [lo, hi) (seeded; reproducible).
  void fill_random(std::uint64_t seed, double lo = -1.0, double hi = 1.0);

  /// Sum, L2 norm, max |.| over all elements.
  double sum() const;
  double norm_l2() const;
  double norm_max() const;

  /// Max |a - b| over all elements; shapes must match.
  static double max_abs_diff(const Grid& a, const Grid& b);

  /// True if every |a - b| <= tol.
  static bool all_close(const Grid& a, const Grid& b, double tol = 1e-12);

private:
  void allocate();
  void release();

  Layout layout_;
  double* data_ = nullptr;
};

}  // namespace snowflake
