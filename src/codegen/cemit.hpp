#pragma once
// C source emission from a KernelPlan.
//
// One emitter serves the sequential-C and OpenMP micro-compilers; the mode
// selects how waves/chains are rendered:
//   * Sequential  — plain loop nests in plan order.
//   * OpenMPTasks — the paper's task-farming scheme: one OpenMP task per
//     chain (large point-parallel nests split into grain-sized subtasks),
//     `taskwait` barriers between waves (§IV-A).
//   * OpenMPFor   — naive worksharing: `omp for` per nest, barrier per
//     wave (the comparator for ablation A3).
//   * OpenMPTarget — the paper's §VII "OpenMP 4 micro-compiler": a
//     `target data` region maps every grid once; each point-parallel nest
//     becomes a `target teams distribute parallel for` dispatch (target
//     regions are synchronous, so wave barriers come for free).  Executes
//     on the host fallback device when no accelerator is configured.
//
// The generated translation unit defines a single entry point:
//   void sf_kernel(double** grids, const double* params);
// with grids[] in plan.grid_order and params[] in plan.param_order.

#include <string>

#include "codegen/plan.hpp"

namespace snowflake {

struct AddrPlan;

struct EmitOptions {
  enum class Mode { Sequential, OpenMPTasks, OpenMPFor, OpenMPTarget };
  Mode mode = Mode::Sequential;
  /// Outer-dimension iterations per task (OpenMPTasks); 0 = one task per
  /// chain, no splitting.
  std::int64_t task_grain = 0;
  /// Annotate the innermost loop of point-parallel nests with
  /// `#pragma omp simd` (OpenMP modes only).
  bool simd = false;
  /// Explicit-SIMD rows (CompileOptions::simd_rows): like `simd`, but
  /// also annotates Sequential-mode kernels — the caller must compile
  /// those with -fopenmp-simd so the pragma vectorizes without pulling in
  /// the OpenMP runtime.
  bool simd_rows = false;
  /// Deterministic reductions: accumulate reduction nests with the
  /// canonical pairwise tree (identical to the reference interpreter) in
  /// every mode, instead of a plain left fold / `omp for reduction(...)`.
  /// Bit-stable across modes and thread counts at the cost of parallelism.
  bool det_reduce = false;
  /// Emit structural comments (wave/chain/nest labels).
  bool comments = true;
  /// Address-arithmetic plan (codegen/transform/addr.hpp): hoisted row
  /// bases + strength-reduced innermost indexing.  Null renders the legacy
  /// re-linearized indices; the plan must outlive the emission call.
  const AddrPlan* addr = nullptr;
};

/// Exported entry-point symbol of every generated translation unit.
const char* kernel_symbol();

/// Render the plan as a complete C11 translation unit.
std::string emit_c_source(const KernelPlan& plan, const EmitOptions& options);

struct TimeTilePlan;

/// Render a time-tiled plan (codegen/transform/time_tiling.hpp) as a
/// complete C11 translation unit: one loop nest over overlapped spatial
/// tiles, each tile copying its halo region into private scratch buffers,
/// running `depth` staged sweeps with shrinking margins, and copying its
/// owned points back.  Modes: Sequential (plain tile loops), OpenMPFor
/// (`omp for collapse` over tiles, per-thread scratch), OpenMPTasks (one
/// task + scratch per tile).  OpenMPTarget is rejected.
std::string emit_time_tiled_source(const TimeTilePlan& tt,
                                   const EmitOptions& options);

struct WavefrontPlan;

/// Render a wavefront plan (codegen/transform/wavefront.hpp) as a
/// complete C11 translation unit: a sequential slab sweep along dim 0
/// over one shared scratch buffer per written grid, with a carry band
/// holding pre-fusion left-halo rows and the live grid supplying the
/// right halo — no whole-grid snapshot.  Sequential mode runs the sweep
/// on one thread; both OpenMP modes render identically as worksharing
/// (`omp parallel` around the slab loop, `omp for` on every row copy and
/// stage nest, the implicit barriers ordering copy-in / stages /
/// carry-save / copy-out).  OpenMPTarget is rejected.
std::string emit_wavefront_source(const WavefrontPlan& wf,
                                  const EmitOptions& options);

// --- OpenCL-style emission (the "oclsim" micro-compiler) -------------------
//
// One work-group function per nest, using the paper's tall-skinny blocking:
// a 2D tile in the two innermost dimensions, rolled upward through the
// remaining dimensions inside the work-group (§IV-B).  Signature:
//   void sf_wg_<k>(double** grids, const double* params,
//                  int64_t wg0, int64_t wg1);
// The host runtime (src/backend/oclsim) enqueues the (wg0, wg1) grid of
// work-groups per dispatch, in order, like an in-order OpenCL queue.

struct OclEmitOptions {
  std::int64_t wg0 = 16;  // tile extent in dim rank-2 (the "tall" edge)
  std::int64_t wg1 = 64;  // tile extent in the contiguous dim rank-1
  bool comments = true;
  /// Pairwise-tree reduction accumulation (see EmitOptions::det_reduce).
  bool det_reduce = false;
  /// Address-arithmetic plan (see EmitOptions::addr).
  const AddrPlan* addr = nullptr;
};

struct OclDispatch {
  size_t nest = 0;          // index into plan.nests
  std::string symbol;       // generated function name
  std::int64_t groups0 = 1; // work-group grid extents
  std::int64_t groups1 = 1;
  bool parallel = true;     // work-groups may run concurrently
};

/// Render the oclsim translation unit and fill the ordered dispatch table.
std::string emit_oclsim_source(const KernelPlan& plan,
                               const OclEmitOptions& options,
                               std::vector<OclDispatch>& dispatches);

}  // namespace snowflake
