#include "codegen/plan.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {

int LoopNest::logical_rank() const {
  int r = 0;
  for (const auto& d : dims) {
    if (d.tile_of < 0) ++r;
  }
  return r;
}

int KernelPlan::grid_arg_index(const std::string& grid) const {
  for (size_t i = 0; i < grid_order.size(); ++i) {
    if (grid_order[i] == grid) return static_cast<int>(i);
  }
  throw LookupError("KernelPlan has no grid '" + grid + "'");
}

int KernelPlan::param_arg_index(const std::string& name) const {
  for (size_t i = 0; i < param_order.size(); ++i) {
    if (param_order[i] == name) return static_cast<int>(i);
  }
  throw LookupError("KernelPlan has no parameter '" + name + "'");
}

std::string KernelPlan::describe() const {
  std::ostringstream os;
  os << "KernelPlan: " << nests.size() << " nests, " << waves.size()
     << " waves\n";
  for (size_t w = 0; w < waves.size(); ++w) {
    os << "  wave " << w << ":\n";
    for (const auto& chain : waves[w].chains) {
      const char* kind = chain.fusion == ChainFusion::Outer   ? " (outer-fused)"
                         : chain.fusion == ChainFusion::Full ? " (stmt-fused)"
                                                             : "";
      os << "    chain" << kind << ":";
      for (size_t n : chain.nests) {
        os << " " << nests[n].label;
        if (nests[n].is_reduce) {
          os << "[reduce " << reduce_op_name(nests[n].reduce_op) << "]";
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace snowflake
