#pragma once
// Lowering: StencilGroup + shapes + dependence schedule -> KernelPlan.

#include "analysis/dag.hpp"
#include "codegen/plan.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

/// Lower a validated group into a concrete plan.  One LoopNest per
/// non-empty rect of each stencil's resolved domain.  Stencils whose union
/// members are provably independent contribute one chain per rect (maximum
/// concurrency); otherwise all their rects form a single ordered chain.
KernelPlan lower(const StencilGroup& group, const ShapeMap& shapes,
                 const Schedule& schedule);

/// Convenience: greedy schedule + lower.
KernelPlan lower(const StencilGroup& group, const ShapeMap& shapes);

}  // namespace snowflake
