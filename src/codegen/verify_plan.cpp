#include "codegen/verify_plan.hpp"

#include <algorithm>
#include <set>

#include "codegen/transform/addr.hpp"
#include "support/error.hpp"

namespace snowflake {

namespace {

void check(bool cond, const std::string& what) {
  if (!cond) throw InternalError("plan verification failed: " + what);
}

void verify_nest(const KernelPlan& plan, const LoopNest& nest) {
  check(nest.rhs != nullptr, nest.label + ": null rhs");
  check(plan.shapes.count(nest.out_grid) == 1,
        nest.label + ": output grid has no shape");
  const int out_rank =
      static_cast<int>(plan.shapes.at(nest.out_grid).size());

  if (nest.is_reduce) {
    // A reduce nest iterates the anchor grid's space and writes only cell
    // 0 of its one-cell result grid, so the output-shape coverage and
    // write-bounds checks below don't apply.
    std::int64_t cells = 1;
    for (auto e : plan.shapes.at(nest.out_grid)) cells *= e;
    check(cells == 1, nest.label + ": reduction result grid is not one cell");
    check(!nest.point_parallel, nest.label + ": reduce nest marked parallel");
  }

  std::set<int> coord_dims;
  for (size_t level = 0; level < nest.dims.size(); ++level) {
    const LoopDim& d = nest.dims[level];
    check(d.stride >= 1, nest.label + ": loop stride < 1");
    if (d.tile_of >= 0) {
      check(static_cast<size_t>(d.tile_of) < level,
            nest.label + ": intra-tile loop references a later dim");
      check(nest.dims[static_cast<size_t>(d.tile_of)].tile_of < 0,
            nest.label + ": tile origin is itself tiled");
      check(d.span >= 1, nest.label + ": intra-tile span < 1");
    }
    if (d.grid_dim >= 0) {
      check(coord_dims.insert(d.grid_dim).second,
            nest.label + ": duplicate coordinate loop for a grid dim");
      if (nest.is_reduce) continue;
      check(d.grid_dim < out_rank, nest.label + ": grid_dim out of range");
      // Every planned write lands inside the output grid: the write uses
      // the identity map, so the loop bounds ARE the written indices.
      // (Intra-tile dims keep the original lo/hi — the stored hi caps the
      // tile sweep — so the same check covers tiled nests.)
      if (d.hi > d.lo) {
        const std::int64_t extent =
            plan.shapes.at(nest.out_grid)[static_cast<size_t>(d.grid_dim)];
        check(d.lo >= 0, nest.label + ": writes grid dim " +
                             std::to_string(d.grid_dim) + " below index 0");
        check(d.hi <= extent,
              nest.label + ": writes grid dim " + std::to_string(d.grid_dim) +
                  " up to " + std::to_string(d.hi) + ", past extent " +
                  std::to_string(extent));
      }
    }
  }
  if (!nest.is_reduce) {
    for (int gd = 0; gd < out_rank; ++gd) {
      check(coord_dims.count(gd) == 1, nest.label +
                                           ": no coordinate loop for grid dim " +
                                           std::to_string(gd));
    }
  }

  // Every read's grid and every param must be declared in the plan orders.
  for (const auto* r : collect_reads(nest.rhs)) {
    check(std::find(plan.grid_order.begin(), plan.grid_order.end(),
                    r->grid()) != plan.grid_order.end(),
          nest.label + ": read grid '" + r->grid() + "' not in grid order");
  }
  for (const auto& p : params_used(nest.rhs)) {
    check(std::find(plan.param_order.begin(), plan.param_order.end(), p) !=
              plan.param_order.end(),
          nest.label + ": param '" + p + "' not in param order");
  }
}

bool dims_identical(const LoopNest& a, const LoopNest& b) {
  if (a.dims.size() != b.dims.size()) return false;
  for (size_t i = 0; i < a.dims.size(); ++i) {
    const LoopDim& da = a.dims[i];
    const LoopDim& db = b.dims[i];
    if (da.lo != db.lo || da.hi != db.hi || da.stride != db.stride ||
        da.tile_of != db.tile_of || da.grid_dim != db.grid_dim) {
      return false;
    }
  }
  return true;
}

}  // namespace

void verify_plan(const KernelPlan& plan) {
  check(!plan.nests.empty(), "plan has no nests");
  check(std::is_sorted(plan.grid_order.begin(), plan.grid_order.end()),
        "grid order not sorted");
  check(std::is_sorted(plan.param_order.begin(), plan.param_order.end()),
        "param order not sorted");

  std::vector<int> seen(plan.nests.size(), 0);
  for (const auto& wave : plan.waves) {
    for (const auto& chain : wave.chains) {
      check(!chain.nests.empty(), "empty chain");
      for (size_t n : chain.nests) {
        check(n < plan.nests.size(), "chain references missing nest");
        ++seen[n];
      }
      const LoopNest& lead = plan.nests[chain.nests[0]];
      if (chain.fusion == ChainFusion::Outer) {
        check(chain.nests.size() >= 2, "outer-fused chain with one member");
        for (size_t n : chain.nests) {
          const LoopNest& nest = plan.nests[n];
          check(nest.point_parallel, "outer-fused member not point-parallel");
          check(nest.dims.size() == lead.dims.size(),
                "outer-fused members of mixed rank");
          for (const auto& d : nest.dims) {
            check(d.tile_of < 0, "outer-fused member is tiled");
          }
        }
      }
      if (chain.fusion == ChainFusion::Full) {
        check(chain.nests.size() >= 2, "stmt-fused chain with one member");
        for (size_t n : chain.nests) {
          check(plan.nests[n].point_parallel,
                "stmt-fused member not point-parallel");
          check(dims_identical(plan.nests[n], lead),
                "stmt-fused members with differing dims");
        }
      }
    }
  }
  for (size_t n = 0; n < plan.nests.size(); ++n) {
    check(seen[n] == 1, plan.nests[n].label + ": appears in " +
                            std::to_string(seen[n]) + " chains (expected 1)");
    verify_nest(plan, plan.nests[n]);
  }
}

void verify_plan(const KernelPlan& plan, const AddrPlan& addr) {
  verify_plan(plan);
  verify_addr_plan(plan, addr);

  // Cross-check the address plan against the naive index computation: at
  // sampled iteration points of every active nest, the planned rendering
  // (hoisted base + induction variable or constant offset) must name the
  // same flat element as sum_d resolved_d(i_d) * stride_d.  Two points per
  // nest — the first iteration and a one-stride advance along every dim —
  // pin both the induction start value and its step.
  for (size_t n = 0; n < plan.nests.size(); ++n) {
    const AddrNestPlan& np = addr.nests[n];
    if (!np.active) continue;
    const LoopNest& nest = plan.nests[n];
    const size_t rank = plan.shapes.at(nest.out_grid).size();

    std::vector<std::int64_t> first(rank, 0), advance(rank, 0);
    bool empty = false;
    for (const LoopDim& d : nest.dims) {
      if (d.grid_dim < 0) continue;
      if (d.hi <= d.lo) {
        empty = true;
        break;
      }
      first[static_cast<size_t>(d.grid_dim)] = d.lo;
      advance[static_cast<size_t>(d.grid_dim)] =
          d.lo + d.stride < d.hi ? d.stride : 0;
    }
    if (empty) continue;

    const auto strides_of = [&](const std::string& grid) {
      const Index& shape = plan.shapes.at(grid);
      Index s(shape.size(), 1);
      for (size_t d = shape.size(); d-- > 1;) s[d - 1] = s[d] * shape[d];
      return s;
    };
    const auto resolved = [&](const DimMap& m, std::int64_t i) {
      const std::int64_t numer = m.num * i + m.off;
      check(numer % m.den == 0, nest.label +
                                    ": map does not divide exactly at a "
                                    "sampled iteration point");
      return numer / m.den;
    };

    const auto check_point = [&](const std::vector<std::int64_t>& pt) {
      const auto check_access = [&](const std::string& grid,
                                    const IndexMap& map) {
        const AddrAccess& a = np.accesses.at(addr_access_key(grid, map));
        const Index gs = strides_of(grid);
        std::int64_t naive = 0;
        for (size_t d = 0; d < rank; ++d) {
          naive += resolved(map.dim(static_cast<int>(d)), pt[d]) * gs[d];
        }
        std::int64_t planned = 0;
        const AddrBase& base = np.bases[static_cast<size_t>(a.base)];
        for (size_t d = 0; d + 1 < rank; ++d) {
          planned += resolved(base.outer[d], pt[d]) * gs[d];
        }
        std::int64_t inner = 0;
        if (a.induction < 0) {
          inner = pt[rank - 1] + a.offset;
        } else {
          const AddrInduction& ind =
              np.inductions[static_cast<size_t>(a.induction)];
          inner = resolved(DimMap{ind.num, ind.off0, ind.den}, pt[rank - 1]) +
                  a.offset;
        }
        planned += inner * gs[rank - 1];
        check(planned == naive,
              nest.label + ": planned address of '" + grid + "' is " +
                  std::to_string(planned) +
                  ", naive index computation gives " + std::to_string(naive));
      };
      check_access(nest.out_grid, IndexMap::identity(static_cast<int>(rank)));
      for (const auto* r : collect_reads(nest.rhs)) {
        check_access(r->grid(), r->map());
      }
    };

    check_point(first);
    std::vector<std::int64_t> second = first;
    bool advanced = false;
    for (size_t d = 0; d < rank; ++d) {
      second[d] += advance[d];
      advanced = advanced || advance[d] != 0;
    }
    if (advanced) check_point(second);
  }
}

}  // namespace snowflake
