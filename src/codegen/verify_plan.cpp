#include "codegen/verify_plan.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace snowflake {

namespace {

void check(bool cond, const std::string& what) {
  if (!cond) throw InternalError("plan verification failed: " + what);
}

void verify_nest(const KernelPlan& plan, const LoopNest& nest) {
  check(nest.rhs != nullptr, nest.label + ": null rhs");
  check(plan.shapes.count(nest.out_grid) == 1,
        nest.label + ": output grid has no shape");
  const int out_rank =
      static_cast<int>(plan.shapes.at(nest.out_grid).size());

  std::set<int> coord_dims;
  for (size_t level = 0; level < nest.dims.size(); ++level) {
    const LoopDim& d = nest.dims[level];
    check(d.stride >= 1, nest.label + ": loop stride < 1");
    if (d.tile_of >= 0) {
      check(static_cast<size_t>(d.tile_of) < level,
            nest.label + ": intra-tile loop references a later dim");
      check(nest.dims[static_cast<size_t>(d.tile_of)].tile_of < 0,
            nest.label + ": tile origin is itself tiled");
      check(d.span >= 1, nest.label + ": intra-tile span < 1");
    }
    if (d.grid_dim >= 0) {
      check(d.grid_dim < out_rank, nest.label + ": grid_dim out of range");
      check(coord_dims.insert(d.grid_dim).second,
            nest.label + ": duplicate coordinate loop for a grid dim");
    }
  }
  for (int gd = 0; gd < out_rank; ++gd) {
    check(coord_dims.count(gd) == 1,
          nest.label + ": no coordinate loop for grid dim " + std::to_string(gd));
  }

  // Every read's grid and every param must be declared in the plan orders.
  for (const auto* r : collect_reads(nest.rhs)) {
    check(std::find(plan.grid_order.begin(), plan.grid_order.end(),
                    r->grid()) != plan.grid_order.end(),
          nest.label + ": read grid '" + r->grid() + "' not in grid order");
  }
  for (const auto& p : params_used(nest.rhs)) {
    check(std::find(plan.param_order.begin(), plan.param_order.end(), p) !=
              plan.param_order.end(),
          nest.label + ": param '" + p + "' not in param order");
  }
}

bool dims_identical(const LoopNest& a, const LoopNest& b) {
  if (a.dims.size() != b.dims.size()) return false;
  for (size_t i = 0; i < a.dims.size(); ++i) {
    const LoopDim& da = a.dims[i];
    const LoopDim& db = b.dims[i];
    if (da.lo != db.lo || da.hi != db.hi || da.stride != db.stride ||
        da.tile_of != db.tile_of || da.grid_dim != db.grid_dim) {
      return false;
    }
  }
  return true;
}

}  // namespace

void verify_plan(const KernelPlan& plan) {
  check(!plan.nests.empty(), "plan has no nests");
  check(std::is_sorted(plan.grid_order.begin(), plan.grid_order.end()),
        "grid order not sorted");
  check(std::is_sorted(plan.param_order.begin(), plan.param_order.end()),
        "param order not sorted");

  std::vector<int> seen(plan.nests.size(), 0);
  for (const auto& wave : plan.waves) {
    for (const auto& chain : wave.chains) {
      check(!chain.nests.empty(), "empty chain");
      for (size_t n : chain.nests) {
        check(n < plan.nests.size(), "chain references missing nest");
        ++seen[n];
      }
      const LoopNest& lead = plan.nests[chain.nests[0]];
      if (chain.fusion == ChainFusion::Outer) {
        check(chain.nests.size() >= 2, "outer-fused chain with one member");
        for (size_t n : chain.nests) {
          const LoopNest& nest = plan.nests[n];
          check(nest.point_parallel, "outer-fused member not point-parallel");
          check(nest.dims.size() == lead.dims.size(),
                "outer-fused members of mixed rank");
          for (const auto& d : nest.dims) {
            check(d.tile_of < 0, "outer-fused member is tiled");
          }
        }
      }
      if (chain.fusion == ChainFusion::Full) {
        check(chain.nests.size() >= 2, "stmt-fused chain with one member");
        for (size_t n : chain.nests) {
          check(plan.nests[n].point_parallel,
                "stmt-fused member not point-parallel");
          check(dims_identical(plan.nests[n], lead),
                "stmt-fused members with differing dims");
        }
      }
    }
  }
  for (size_t n = 0; n < plan.nests.size(); ++n) {
    check(seen[n] == 1, plan.nests[n].label + ": appears in " +
                            std::to_string(seen[n]) + " chains (expected 1)");
    verify_nest(plan, plan.nests[n]);
  }
}

}  // namespace snowflake
