#pragma once
// KernelPlan: the platform-agnostic loop IR that the front end lowers a
// StencilGroup into, and that every micro-compiler consumes (paper Figure 5:
// the narrow interface between the shared analysis front end and the
// per-platform backends).
//
// A plan is fully concrete: domains are resolved, shapes are baked, the
// dependence analysis has already been folded into the wave/chain structure.
//
//   plan
//    └─ waves  (barrier between consecutive waves)
//        └─ chains (chains of one wave may run concurrently)
//            └─ nests (nests of one chain run in order)
//
// A LoopNest is one resolved rect of one stencil: a perfect loop nest with
// per-dimension lo/hi/stride and a single assignment body
// out[i] = rhs(i).  Transforms (tiling, multicolor fusion) rewrite the
// dims/chain structure but never the rhs expression.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

struct LoopDim {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  std::int64_t stride = 1;
  /// When >= 0, this is the intra-tile loop of the dim whose *loop variable
  /// index* is tile_of: lo = var(tile_of), hi = min(var(tile_of)+span, hi).
  int tile_of = -1;
  /// Iteration span of an intra-tile loop (tile size * original stride).
  std::int64_t span = 0;
  /// Which logical grid dimension this loop iterates (index-map dimension).
  int grid_dim = -1;
};

struct LoopNest {
  std::string label;        // "<stencil>/<rect>" for diagnostics & comments
  size_t stencil_index = 0; // position in the source group
  size_t rect_index = 0;    // which rect of the stencil's union
  std::vector<LoopDim> dims;
  std::string out_grid;
  ExprPtr rhs;
  bool point_parallel = true;  // may iterations run concurrently?
  /// Iteration-point count, set at lowering and preserved by transforms.
  std::int64_t point_count = 0;

  /// Reduction nests accumulate rhs over the whole nest into cell 0 of
  /// out_grid (a one-cell grid) instead of writing out[i] per point; rhs is
  /// the ReduceExpr *body*.  reduce_init marks the first non-empty rect of
  /// the union: it stores the rect's result, later rects combine into it.
  bool is_reduce = false;
  ReduceOp reduce_op = ReduceOp::Sum;
  bool reduce_init = false;

  /// Rank of the *iteration space as seen by index maps* (number of
  /// non-intra-tile dims).
  int logical_rank() const;
};

/// How a chain's member nests are woven together at emission time.
enum class ChainFusion {
  None,   // nests emitted one after another
  Outer,  // multicolor fusion: members share one outer sweep, each guarded
          // by its own stride congruence (members have equal rank)
  Full,   // statement fusion: members have *identical* loop structure and
          // execute as one nest with all bodies in the innermost loop
};

struct Chain {
  std::vector<size_t> nests;  // executed in order
  ChainFusion fusion = ChainFusion::None;
};

struct PlanWave {
  std::vector<Chain> chains;  // may execute concurrently
};

struct KernelPlan {
  std::vector<LoopNest> nests;
  std::vector<PlanWave> waves;
  /// Grid name -> extents for every referenced grid (bake-in contract).
  ShapeMap shapes;
  /// Sorted grid names: the kernel's grids[] argument order.
  std::vector<std::string> grid_order;
  /// Sorted scalar parameter names: the params[] argument order.
  std::vector<std::string> param_order;
  /// Stable hash of (group, shapes) for cache keys and kernel names.
  std::uint64_t source_hash = 0;

  int grid_arg_index(const std::string& grid) const;
  int param_arg_index(const std::string& name) const;

  /// Human-readable structure dump (tests / debugging).
  std::string describe() const;
};

}  // namespace snowflake
