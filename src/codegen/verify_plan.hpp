#pragma once
// Structural invariants every KernelPlan must satisfy before emission.
// Transforms rewrite plans in place; this pass catches a broken rewrite at
// the IR boundary instead of as miscompiled C.  Backends run it after
// build_plan; it throws InternalError with the violated invariant.

#include "codegen/plan.hpp"

namespace snowflake {

struct AddrPlan;

/// Checks:
///  * every nest appears in exactly one chain;
///  * chain members share a wave and, for fused chains, the required
///    structure (Outer: equal rank, untiled, point-parallel; Full:
///    identical dims);
///  * loop dims are well-formed (strides >= 1, tile_of references an
///    earlier dim with matching grid_dim ownership, every grid dim of the
///    output has exactly one coordinate loop);
///  * every coordinate loop's bounds lie inside the output grid — the
///    write uses the identity map, so this is "every planned write lands
///    in bounds";
///  * grid/param orders are sorted and cover every name the nests use.
void verify_plan(const KernelPlan& plan);

/// Everything verify_plan(plan) checks, plus the addr-plan structural
/// invariants (verify_addr_plan) and a semantic cross-check: at sampled
/// iteration points of every active nest, the planned rendering — hoisted
/// row base plus induction variable or constant offset — must produce the
/// same flat element index as the naive computation
/// sum_d ((num_d * i_d + off_d) / den_d) * stride_d.
void verify_plan(const KernelPlan& plan, const AddrPlan& addr);

}  // namespace snowflake
