#pragma once
// Structural invariants every KernelPlan must satisfy before emission.
// Transforms rewrite plans in place; this pass catches a broken rewrite at
// the IR boundary instead of as miscompiled C.  Backends run it after
// build_plan; it throws InternalError with the violated invariant.

#include "codegen/plan.hpp"

namespace snowflake {

/// Checks:
///  * every nest appears in exactly one chain;
///  * chain members share a wave and, for fused chains, the required
///    structure (Outer: equal rank, untiled, point-parallel; Full:
///    identical dims);
///  * loop dims are well-formed (strides >= 1, tile_of references an
///    earlier dim with matching grid_dim ownership, every grid dim of the
///    output has exactly one coordinate loop);
///  * grid/param orders are sorted and cover every name the nests use.
void verify_plan(const KernelPlan& plan);

}  // namespace snowflake
