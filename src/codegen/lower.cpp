#include "codegen/lower.hpp"

#include <algorithm>

#include "analysis/access.hpp"
#include "codegen/simplify.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "trace/trace.hpp"

namespace snowflake {

KernelPlan lower(const StencilGroup& group, const ShapeMap& shapes,
                 const Schedule& schedule) {
  trace::Span span("codegen:lower", "compile");
  validate_group(group, shapes);
  SF_REQUIRE(schedule.point_parallel.size() == group.size(),
             "schedule does not match group size");

  KernelPlan plan;
  for (const auto& name : group.grids()) plan.grid_order.push_back(name);
  for (const auto& name : group.params()) plan.param_order.push_back(name);
  for (const auto& name : plan.grid_order) {
    auto it = shapes.find(name);
    SF_ASSERT(it != shapes.end(), "validated group missing shape for " + name);
    plan.shapes[name] = it->second;
  }

  // One nest per non-empty rect; remember each stencil's nest ids in order.
  std::vector<std::vector<size_t>> nests_of(group.size());
  for (size_t s = 0; s < group.size(); ++s) {
    const Stencil& stencil = group[s];
    // Reductions anchor their domain on the named full-size grid, not the
    // one-cell result grid.
    const ResolvedUnion domain = resolved_domain(stencil, plan.shapes);
    for (size_t r = 0; r < domain.rects().size(); ++r) {
      const ResolvedRect& rect = domain.rects()[r];
      if (rect.empty()) continue;
      LoopNest nest;
      nest.label = stencil.name() + "/" + std::to_string(r);
      nest.stencil_index = s;
      nest.rect_index = r;
      nest.dims.reserve(static_cast<size_t>(rect.rank()));
      for (int d = 0; d < rect.rank(); ++d) {
        const ResolvedRange& range = rect.range(d);
        LoopDim dim;
        dim.lo = range.lo;
        dim.hi = range.hi;
        dim.stride = range.stride;
        dim.grid_dim = d;
        nest.dims.push_back(dim);
      }
      nest.out_grid = stencil.output();
      if (stencil.is_reduction()) {
        const ReduceExpr& red = stencil.reduction();
        nest.is_reduce = true;
        nest.reduce_op = red.op();
        nest.reduce_init = nests_of[s].empty();  // first non-empty rect
        nest.rhs = simplify(red.body());
        nest.point_parallel = false;
      } else {
        nest.rhs = simplify(stencil.expr());
        nest.point_parallel = schedule.point_parallel[s];
      }
      nest.point_count = rect.count();
      nests_of[s].push_back(plan.nests.size());
      plan.nests.push_back(std::move(nest));
    }
  }

  for (const auto& wave : schedule.waves) {
    PlanWave plan_wave;
    for (size_t s : wave.stencils) {
      if (nests_of[s].empty()) continue;  // fully empty domain on this shape
      if (schedule.rects_independent[s]) {
        for (size_t n : nests_of[s]) plan_wave.chains.push_back(Chain{{n}, ChainFusion::None});
      } else {
        plan_wave.chains.push_back(Chain{nests_of[s], ChainFusion::None});
      }
    }
    if (!plan_wave.chains.empty()) plan.waves.push_back(std::move(plan_wave));
  }

  HashStream hs;
  hs.add(static_cast<std::int64_t>(group.structural_hash()));
  for (const auto& [name, shape] : plan.shapes) {
    hs.add(name);
    for (auto e : shape) hs.add(e);
  }
  plan.source_hash = hs.digest();
  return plan;
}

KernelPlan lower(const StencilGroup& group, const ShapeMap& shapes) {
  return lower(group, shapes, greedy_schedule(group, shapes));
}

}  // namespace snowflake
