#include "codegen/transform/wavefront.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "codegen/lower.hpp"

namespace snowflake {

std::string WavefrontPlan::describe() const {
  std::ostringstream os;
  os << "wavefront W=" << tt.tile[0] << " band=" << band << " over\n"
     << tt.describe();
  return os.str();
}

std::optional<WavefrontPlan> plan_wavefront(const StencilGroup& group,
                                            const ShapeMap& shapes,
                                            const Schedule& schedule,
                                            int depth, const Index& tile,
                                            std::string* reason) {
  auto base = plan_time_tiling(group, shapes, schedule, depth, tile, reason);
  if (!base) return std::nullopt;

  WavefrontPlan wf;
  wf.tt = std::move(*base);
  wf.band = wf.tt.halo[0];
  // Slabs: requested width along dim 0 (never thinner than the carry
  // band, so earlier copy-outs cannot clobber a band before it is saved),
  // full box in every inner dim.
  const std::int64_t req = !tile.empty() && tile[0] > 0 ? tile[0] : 32;
  wf.tt.tile[0] =
      std::max<std::int64_t>(1, std::min(std::max(req, wf.band), wf.tt.box[0]));
  for (size_t d = 1; d < wf.tt.box.size(); ++d) wf.tt.tile[d] = wf.tt.box[d];
  return wf;
}

double wavefront_traffic_bytes(const WavefrontPlan& wf) {
  const TimeTilePlan& tt = wf.tt;
  const std::set<std::string> scratch(tt.scratch_grids.begin(),
                                      tt.scratch_grids.end());
  std::set<std::string> streamed;
  for (const auto& nest : tt.base.nests) {
    for (const auto& g : grids_read(nest.rhs)) {
      if (scratch.find(g) == scratch.end()) streamed.insert(g);
    }
  }
  std::vector<double> streamed_cells;
  for (const auto& g : streamed) {
    double cells = 1.0;
    for (auto e : tt.base.shapes.at(g)) cells *= static_cast<double>(e);
    streamed_cells.push_back(cells);
  }

  double inner = 1.0;
  for (size_t d = 1; d < tt.box.size(); ++d) {
    inner *= static_cast<double>(tt.box[d]);
  }
  const double h = static_cast<double>(tt.halo[0]);
  const double band = static_cast<double>(wf.band);
  double bytes = 0.0;
  for (std::int64_t t0 = 0; t0 < tt.box[0]; t0 += tt.tile[0]) {
    const double lo = static_cast<double>(t0);
    const double hi =
        static_cast<double>(std::min(t0 + tt.tile[0], tt.box[0]));
    const double rlo = std::max(lo - h, 0.0);
    const double rhi = std::min(hi + h, static_cast<double>(tt.box[0]));
    const double owned = (hi - lo) * inner;
    const double region = (rhi - rlo) * inner;
    // Scratch grids: copy-in read over the expanded slab, copy-out write
    // (write-allocate + write-back) over owned rows, plus carry save
    // (read + write-allocate + write-back) per band row.
    bytes += static_cast<double>(scratch.size()) *
             (region + 2.0 * owned + 3.0 * band * inner) * 8.0;
    for (double cells : streamed_cells) {
      bytes += std::min(region, cells) * 8.0;
    }
  }
  return bytes;
}

}  // namespace snowflake
