#pragma once
// Temporal blocking: fuse `depth` consecutive applications of a group into
// one traversal of overlapped tiles (the "ghost zone" / trapezoid scheme
// for iterated memory-bound stencils).
//
// The written-grid box is partitioned into spatial tiles.  Each written
// grid is snapshotted once before any tile runs; each tile copies the
// region expanded by the total halo H = depth * cycle_radius from the
// snapshot into private scratch buffers, runs the flattened stage sequence
// (depth repetitions of the schedule's waves) with per-stage shrinking
// margins, and copies its owned points back to the live grid.  The
// snapshot keeps tiles independent of completion order: a tile that
// finishes early publishes post-fusion values its neighbours must not see
// in their halos.  DRAM sees each read-only grid once per fused run
// instead of once per sweep.
//
// Correctness (induction over stages): let m_j be stage j's margin and
// rho_j its read radius onto written grids (analysis/halo.hpp).  Margins
// satisfy m_{j-1} = m_j + rho_j, so stage j's reads from expand(tile, m_j)
// reach at most expand(tile, m_{j-1}), where the scratch state equals the
// sequential state by induction; the base case is the copy-in, which loads
// the untouched pre-fusion values over expand(tile, m_0 + rho_0) = the
// full halo region.  The last stage has margin 0, so owned points are
// exactly sequential when copied out.

#include <optional>
#include <string>
#include <vector>

#include "analysis/halo.hpp"
#include "codegen/plan.hpp"

namespace snowflake {

struct TimeTileStage {
  /// Nests of this stage, indices into TimeTilePlan::base.nests in program
  /// order (all nests of one schedule wave).
  std::vector<size_t> nests;
  /// Tile expansion per grid dimension while computing this stage.
  Index margin;
  /// Which of the `depth` fused applications this stage belongs to.
  int sweep = 0;
};

struct TimeTilePlan {
  /// Single-application plan (untiled, unfused) — supplies nest bounds,
  /// bodies, grid/param order, and shapes.
  KernelPlan base;
  int depth = 1;  // fused applications per kernel run
  Index tile;     // spatial tile edge sizes over the box
  Index halo;     // copy-in expansion = depth * cycle_radius
  Index box;      // extents of the written-grid box being tiled
  /// Written grids, sorted: each gets a per-tile scratch copy.
  std::vector<std::string> scratch_grids;
  /// depth * waves stages, in execution order.
  std::vector<TimeTileStage> stages;

  /// Fixed scratch buffer extents: min(tile + 2*halo, box) per dim, so
  /// local strides are compile-time constants for every tile.
  Index scratch_extent() const;
  /// Number of tiles per dimension (ceil(box / tile)).
  Index tile_counts() const;

  /// Human-readable structure dump (tests / debugging).
  std::string describe() const;
};

/// Attempt to build a time-tiled plan fusing `depth` applications.
/// `tile` gives spatial tile edges (missing/non-positive entries default to
/// 32, all entries clamp to the box).  Returns nullopt — with *reason set
/// when non-null — when fusion is illegal (see analysis/halo.hpp) or depth
/// < 2; callers fall back to the per-sweep schedule.
std::optional<TimeTilePlan> plan_time_tiling(const StencilGroup& group,
                                             const ShapeMap& shapes,
                                             const Schedule& schedule,
                                             int depth, const Index& tile,
                                             std::string* reason = nullptr);

/// Modeled DRAM bytes of one fused run under the streaming model: every
/// written grid pays one whole-box snapshot (read + allocate + write-back);
/// per tile, scratch grids pay copy-in reads over the halo region plus
/// copy-out writes (write-allocate + write-back) over owned points, and
/// read-only grids referenced by the body stream the halo region once.
/// Divide by `depth` for per-sweep traffic.
double time_tile_traffic_bytes(const TimeTilePlan& tt);

}  // namespace snowflake
