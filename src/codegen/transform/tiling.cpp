#include "codegen/transform/tiling.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace snowflake {

LoopNest tile_nest(const LoopNest& nest, const Index& tile) {
  for (const auto& d : nest.dims) {
    SF_REQUIRE(d.tile_of < 0, "tile_nest: nest is already tiled");
  }
  // Decide per dim whether to tile.
  std::vector<bool> do_tile(nest.dims.size(), false);
  for (size_t d = 0; d < nest.dims.size() && d < tile.size(); ++d) {
    const LoopDim& dim = nest.dims[d];
    const std::int64_t size = tile[d];
    if (size <= 0) continue;
    const std::int64_t count = dim.hi <= dim.lo ? 0 : (dim.hi - 1 - dim.lo) / dim.stride + 1;
    if (count <= size) continue;  // tile covers the whole dim: no-op
    do_tile[d] = true;
  }

  LoopNest out = nest;
  out.dims.clear();
  // Outer tile loops first (in dim order), then the point loops.
  std::vector<int> outer_var_of(nest.dims.size(), -1);
  for (size_t d = 0; d < nest.dims.size(); ++d) {
    if (!do_tile[d]) continue;
    const LoopDim& dim = nest.dims[d];
    LoopDim outer;
    outer.lo = dim.lo;
    outer.hi = dim.hi;
    outer.stride = tile[d] * dim.stride;  // walks tile origins
    outer.grid_dim = -1;                  // not a coordinate by itself
    outer_var_of[d] = static_cast<int>(out.dims.size());
    out.dims.push_back(outer);
  }
  for (size_t d = 0; d < nest.dims.size(); ++d) {
    const LoopDim& dim = nest.dims[d];
    if (!do_tile[d]) {
      out.dims.push_back(dim);
      continue;
    }
    LoopDim inner;
    inner.lo = dim.lo;  // unused at emission (origin comes from tile_of)
    inner.hi = dim.hi;
    inner.stride = dim.stride;
    inner.tile_of = outer_var_of[d];
    inner.span = tile[d] * dim.stride;
    inner.grid_dim = dim.grid_dim;
    out.dims.push_back(inner);
  }
  return out;
}

void tile_plan(KernelPlan& plan, const Index& tile) {
  if (tile.empty()) return;
  // Members of multicolor-fused chains share one outer sweep; the fused
  // emitter drives their first loop, so they must stay untiled.
  std::vector<bool> in_fused(plan.nests.size(), false);
  for (const auto& wave : plan.waves) {
    for (const auto& chain : wave.chains) {
      if (chain.fusion == ChainFusion::None) continue;
      for (size_t n : chain.nests) in_fused[n] = true;
    }
  }
  for (size_t i = 0; i < plan.nests.size(); ++i) {
    // Tiling reorders iterations; nests whose iterations are not provably
    // independent keep their sequential order untouched.
    if (!plan.nests[i].point_parallel || in_fused[i]) continue;
    plan.nests[i] = tile_nest(plan.nests[i], tile);
  }
}

namespace {

void enumerate_rec(const LoopNest& nest, size_t level, Index& vars, Index& coord,
                   const std::function<void(const Index&)>& fn) {
  if (level == nest.dims.size()) {
    fn(coord);
    return;
  }
  const LoopDim& dim = nest.dims[level];
  std::int64_t lo, hi;
  if (dim.tile_of >= 0) {
    lo = vars[static_cast<size_t>(dim.tile_of)];
    hi = std::min(lo + dim.span, dim.hi);
  } else {
    lo = dim.lo;
    hi = dim.hi;
  }
  for (std::int64_t v = lo; v < hi; v += dim.stride) {
    vars[level] = v;
    if (dim.grid_dim >= 0) coord[static_cast<size_t>(dim.grid_dim)] = v;
    enumerate_rec(nest, level + 1, vars, coord, fn);
  }
}

}  // namespace

void enumerate_points(const LoopNest& nest,
                      const std::function<void(const Index&)>& fn) {
  int rank = 0;
  for (const auto& d : nest.dims) {
    rank = std::max(rank, d.grid_dim + 1);
  }
  Index vars(nest.dims.size(), 0);
  Index coord(static_cast<size_t>(rank), 0);
  enumerate_rec(nest, 0, vars, coord, fn);
}

}  // namespace snowflake
