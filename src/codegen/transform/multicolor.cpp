#include "codegen/transform/multicolor.hpp"

namespace snowflake {

int fuse_multicolor(KernelPlan& plan) {
  int fused_count = 0;
  for (auto& wave : plan.waves) {
    // Partition chains into fusion candidates (single untiled point-parallel
    // nest) grouped by rank, and everything else.
    std::vector<Chain> kept;
    std::vector<size_t> candidates;  // nest ids
    for (const auto& chain : wave.chains) {
      bool candidate = chain.nests.size() == 1 && chain.fusion == ChainFusion::None;
      if (candidate) {
        const LoopNest& nest = plan.nests[chain.nests[0]];
        candidate = nest.point_parallel && !nest.dims.empty();
        for (const auto& d : nest.dims) {
          if (d.tile_of >= 0) candidate = false;
        }
      }
      if (candidate) {
        candidates.push_back(chain.nests[0]);
      } else {
        kept.push_back(chain);
      }
    }

    // Group candidates by rank; fuse groups with >= 2 members where at
    // least one nest is strided (otherwise fusion buys nothing).
    std::vector<bool> used(candidates.size(), false);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const int rank = static_cast<int>(plan.nests[candidates[i]].dims.size());
      Chain group;
      bool any_strided = false;
      for (size_t j = i; j < candidates.size(); ++j) {
        if (used[j]) continue;
        const LoopNest& nest = plan.nests[candidates[j]];
        if (static_cast<int>(nest.dims.size()) != rank) continue;
        group.nests.push_back(candidates[j]);
        used[j] = true;
        for (const auto& d : nest.dims) {
          if (d.stride > 1) any_strided = true;
        }
      }
      if (group.nests.size() >= 2 && any_strided) {
        group.fusion = ChainFusion::Outer;
        kept.push_back(group);
        ++fused_count;
      } else {
        // Not worth fusing: restore as individual chains.
        for (size_t n : group.nests) kept.push_back(Chain{{n}, ChainFusion::None});
      }
    }
    wave.chains = std::move(kept);
  }
  return fused_count;
}

}  // namespace snowflake
