#include "codegen/transform/fusion.hpp"

namespace snowflake {

namespace {

bool dims_identical(const LoopNest& a, const LoopNest& b) {
  if (a.dims.size() != b.dims.size()) return false;
  for (size_t i = 0; i < a.dims.size(); ++i) {
    const LoopDim& da = a.dims[i];
    const LoopDim& db = b.dims[i];
    if (da.lo != db.lo || da.hi != db.hi || da.stride != db.stride ||
        da.tile_of != db.tile_of || da.grid_dim != db.grid_dim) {
      return false;
    }
  }
  return true;
}

bool is_candidate(const KernelPlan& plan, const Chain& chain) {
  if (chain.nests.size() != 1 || chain.fusion != ChainFusion::None) return false;
  const LoopNest& nest = plan.nests[chain.nests[0]];
  if (!nest.point_parallel || nest.dims.empty()) return false;
  for (const auto& d : nest.dims) {
    if (d.tile_of >= 0) return false;
  }
  return true;
}

}  // namespace

int fuse_statements(KernelPlan& plan) {
  int fused_count = 0;
  for (auto& wave : plan.waves) {
    std::vector<Chain> kept;
    std::vector<size_t> candidates;
    for (const auto& chain : wave.chains) {
      if (is_candidate(plan, chain)) {
        candidates.push_back(chain.nests[0]);
      } else {
        kept.push_back(chain);
      }
    }

    std::vector<bool> used(candidates.size(), false);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      Chain group;
      group.nests.push_back(candidates[i]);
      used[i] = true;
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (used[j]) continue;
        if (dims_identical(plan.nests[candidates[i]],
                           plan.nests[candidates[j]])) {
          group.nests.push_back(candidates[j]);
          used[j] = true;
        }
      }
      if (group.nests.size() >= 2) {
        group.fusion = ChainFusion::Full;
        ++fused_count;
      }
      kept.push_back(std::move(group));
    }
    wave.chains = std::move(kept);
  }
  return fused_count;
}

}  // namespace snowflake
