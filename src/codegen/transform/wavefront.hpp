#pragma once
// Wavefront time-tiling: a skewed-traversal variant of time_tiling.hpp
// that eliminates the whole-grid pre-fusion snapshot.
//
// The written-grid box is cut into slabs along dim 0 (full extent in all
// inner dims) and the slabs are processed strictly in order — a 1D
// hyperplane sweep.  Because the traversal order is fixed, pre-fusion
// halo values need no snapshot:
//
//   * right halo (rows >= the slab): the live grid ahead of the wavefront
//     has not been copied out yet, so it still holds pre-fusion values;
//   * left halo (rows < the slab): a small carry band of halo[0] rows per
//     written grid, saved from the live grid just before each slab's
//     copy-out overwrites them.
//
// The slab width W = tile[0] is clamped to at least halo[0], so the band
// saved by slab k is untouched by every earlier copy-out when slab k+1
// reads it.  Inner dims span the whole box, which makes every per-stage
// margin there vacuous and every copy a contiguous row memcpy (written
// grids' shape equals the box exactly — a halo-legality invariant).
//
// Legality is the same analysis/halo gate as the snapshot schedule; the
// stage-margin induction proof carries over with "snapshot" replaced by
// "carry band or untouched live rows".  Traffic drops from
// 3*box*8 bytes per written grid (snapshot) to O(halo[0] * inner) carry
// traffic — the point of the schedule.

#include <optional>
#include <string>

#include "codegen/transform/time_tiling.hpp"

namespace snowflake {

struct WavefrontPlan {
  /// Underlying time-tile plan with tile rewritten to the slab shape:
  /// tile = (W, box[1], ..., box[rank-1]).  Stages, margins, halo, box and
  /// scratch_grids are reused unchanged; scratch_extent() is the shared
  /// slab scratch shape.
  TimeTilePlan tt;
  /// Carry band depth in rows (= tt.halo[0]); 0 means no carry is needed
  /// (fused cycle never reads written grids along dim 0).
  std::int64_t band = 0;

  std::string describe() const;
};

/// Attempt to build a wavefront plan fusing `depth` applications.
/// `tile[0]` requests the slab width (defaults to 32, clamped to
/// [halo[0], box[0]]); other tile entries are ignored.  Returns nullopt
/// with *reason set on the same legality failures as plan_time_tiling;
/// callers fall back to the snapshot schedule or per-sweep compile.
std::optional<WavefrontPlan> plan_wavefront(const StencilGroup& group,
                                            const ShapeMap& shapes,
                                            const Schedule& schedule,
                                            int depth, const Index& tile,
                                            std::string* reason = nullptr);

/// Modeled DRAM bytes of one fused run: per slab, scratch grids pay
/// copy-in reads over the expanded region plus copy-out writes over owned
/// rows and carry save/restore traffic over the band; read-only grids
/// stream the expanded region once.  No snapshot term.  Divide by depth
/// for per-sweep traffic.
double wavefront_traffic_bytes(const WavefrontPlan& wf);

}  // namespace snowflake
