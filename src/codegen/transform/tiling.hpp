#pragma once
// Arbitrary-dimension tiling (paper §IV-A): an AST-level transform on the
// loop IR.  Tiling dim d with size T splits its loop into an outer loop
// over tile origins (step T*stride) and an intra-tile loop clipped with
// min(origin + T*stride, hi).  The user supplies tile sizes at compile
// time, which is the paper's tuning hook.

#include <functional>

#include "codegen/plan.hpp"

namespace snowflake {

/// Tile one nest.  `tile[d]` is the tile size (in iteration points) for the
/// nest's d-th untiled dim; entries <= 0 (or beyond the nest's rank) leave
/// that dim untiled.  Tiling an already-tiled nest is rejected.
LoopNest tile_nest(const LoopNest& nest, const Index& tile);

/// Tile every nest of the plan (nests of lower rank use the leading
/// entries of `tile`).  Degenerate one-point dims are never tiled.
void tile_plan(KernelPlan& plan, const Index& tile);

/// Enumerate the iteration points of a (possibly tiled) nest in emission
/// order, invoking `fn` with the grid coordinate vector.  This mirrors
/// exactly the loop structure the C emitter generates, so transform tests
/// can verify point sets without invoking a compiler.
void enumerate_points(const LoopNest& nest,
                      const std::function<void(const Index&)>& fn);

}  // namespace snowflake
