#include "codegen/transform/time_tiling.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "codegen/lower.hpp"
#include "support/error.hpp"

namespace snowflake {

Index TimeTilePlan::scratch_extent() const {
  Index ext(box.size(), 0);
  for (size_t d = 0; d < box.size(); ++d) {
    ext[d] = std::min(tile[d] + 2 * halo[d], box[d]);
  }
  return ext;
}

Index TimeTilePlan::tile_counts() const {
  Index counts(box.size(), 0);
  for (size_t d = 0; d < box.size(); ++d) {
    counts[d] = (box[d] + tile[d] - 1) / tile[d];
  }
  return counts;
}

std::string TimeTilePlan::describe() const {
  std::ostringstream os;
  auto idx = [](const Index& v) {
    std::string s = "(";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(v[i]);
    }
    return s + ")";
  };
  os << "time-tile depth=" << depth << " tile=" << idx(tile)
     << " halo=" << idx(halo) << " box=" << idx(box)
     << " scratch=" << idx(scratch_extent()) << "\n";
  os << "scratch grids:";
  for (const auto& g : scratch_grids) os << " " << g;
  os << "\n";
  for (size_t s = 0; s < stages.size(); ++s) {
    os << "stage " << s << " (sweep " << stages[s].sweep << ", margin "
       << idx(stages[s].margin) << "):";
    for (size_t n : stages[s].nests) os << " " << base.nests[n].label;
    os << "\n";
  }
  return os.str();
}

std::optional<TimeTilePlan> plan_time_tiling(const StencilGroup& group,
                                             const ShapeMap& shapes,
                                             const Schedule& schedule,
                                             int depth, const Index& tile,
                                             std::string* reason) {
  auto fail = [&](const std::string& why) -> std::optional<TimeTilePlan> {
    if (reason) *reason = why;
    return std::nullopt;
  };
  if (depth < 2) return fail("time-tile depth < 2 (nothing to fuse)");

  const SweepHalo halo = analyze_sweep_halo(group, shapes, schedule);
  if (!halo.legal) return fail(halo.reason);

  TimeTilePlan tt;
  tt.base = lower(group, shapes, schedule);
  if (tt.base.nests.empty()) return fail("group resolves to an empty plan");
  tt.depth = depth;
  tt.box = halo.box;
  tt.scratch_grids = halo.written;
  tt.halo = halo.total_halo(depth);

  const size_t rank = tt.box.size();
  tt.tile.assign(rank, 0);
  for (size_t d = 0; d < rank; ++d) {
    std::int64_t t = d < tile.size() && tile[d] > 0 ? tile[d] : 32;
    tt.tile[d] = std::max<std::int64_t>(1, std::min(t, tt.box[d]));
  }

  // Map every base nest to its schedule wave via the stencil index, then
  // flatten depth repetitions of the wave sequence into stages.
  std::vector<size_t> wave_of(group.size(), 0);
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    for (size_t si : schedule.waves[w].stencils) wave_of[si] = w;
  }
  const std::vector<Index> margins = halo.stage_margins(depth);
  for (int rep = 0; rep < depth; ++rep) {
    for (size_t w = 0; w < schedule.waves.size(); ++w) {
      TimeTileStage stage;
      stage.sweep = rep;
      stage.margin = margins[static_cast<size_t>(rep) * schedule.waves.size() + w];
      for (size_t n = 0; n < tt.base.nests.size(); ++n) {
        if (wave_of[tt.base.nests[n].stencil_index] == w) stage.nests.push_back(n);
      }
      if (!stage.nests.empty()) tt.stages.push_back(std::move(stage));
    }
  }
  SF_ASSERT(!tt.stages.empty(), "time tiling produced no stages");
  return tt;
}

double time_tile_traffic_bytes(const TimeTilePlan& tt) {
  const size_t rank = tt.box.size();
  const std::set<std::string> scratch(tt.scratch_grids.begin(),
                                      tt.scratch_grids.end());
  // Read-only grids the body actually streams from global memory.
  std::set<std::string> streamed;
  for (const auto& nest : tt.base.nests) {
    for (const auto& g : grids_read(nest.rhs)) {
      if (scratch.find(g) == scratch.end()) streamed.insert(g);
    }
  }
  std::vector<double> streamed_cells;
  for (const auto& g : streamed) {
    double cells = 1.0;
    for (auto e : tt.base.shapes.at(g)) cells *= static_cast<double>(e);
    streamed_cells.push_back(cells);
  }

  const Index counts = tt.tile_counts();
  double bytes = 0.0;
  // Pre-fusion snapshot of every written grid (read + write-allocate +
  // write-back), taken once so tiles see pre-fusion halo values.
  double box_cells = 1.0;
  for (auto e : tt.box) box_cells *= static_cast<double>(e);
  bytes += static_cast<double>(scratch.size()) * 3.0 * box_cells * 8.0;
  Index t(rank, 0);  // tile index per dim
  for (;;) {
    double owned = 1.0, region = 1.0;
    for (size_t d = 0; d < rank; ++d) {
      const std::int64_t lo = t[d] * tt.tile[d];
      const std::int64_t hi = std::min(lo + tt.tile[d], tt.box[d]);
      const std::int64_t rlo = std::max<std::int64_t>(lo - tt.halo[d], 0);
      const std::int64_t rhi = std::min(hi + tt.halo[d], tt.box[d]);
      owned *= static_cast<double>(hi - lo);
      region *= static_cast<double>(rhi - rlo);
    }
    // Scratch grids: copy-in read over the halo region, copy-out write
    // (write-allocate + write-back) over owned points.
    bytes += static_cast<double>(scratch.size()) * (region + 2.0 * owned) * 8.0;
    // Read-only grids: one streaming read of (about) the halo region each,
    // capped at the grid size for differently-shaped operands.
    for (double cells : streamed_cells) bytes += std::min(region, cells) * 8.0;

    size_t d = 0;
    for (; d < rank; ++d) {
      if (++t[d] < counts[d]) break;
      t[d] = 0;
    }
    if (d == rank) break;
  }
  return bytes;
}

}  // namespace snowflake
