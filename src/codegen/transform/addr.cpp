#include "codegen/transform/addr.hpp"

#include <set>
#include <sstream>

#include "support/error.hpp"

namespace snowflake {

namespace {

/// Grids written by any nest of the plan (see AddrBase::written).
std::set<std::string> written_grids(const KernelPlan& plan) {
  std::set<std::string> out;
  for (const auto& nest : plan.nests) out.insert(nest.out_grid);
  return out;
}

/// Find-or-add the base for (grid, outer maps of `map`).
int intern_base(AddrNestPlan& np, const std::string& grid, const IndexMap& map,
                bool written) {
  std::vector<DimMap> outer(map.dims().begin(), map.dims().end() - 1);
  for (size_t k = 0; k < np.bases.size(); ++k) {
    if (np.bases[k].grid == grid && np.bases[k].outer == outer) {
      return static_cast<int>(k);
    }
  }
  np.bases.push_back({grid, std::move(outer), written});
  return static_cast<int>(np.bases.size()) - 1;
}

/// Plan one access; returns false (with *bail set) when the innermost map
/// cannot be strength-reduced on this nest's stride lattice.
bool plan_access(AddrNestPlan& np, const std::string& grid, const IndexMap& map,
                 std::int64_t inner_stride, bool written, std::string* bail) {
  const std::string key = addr_access_key(grid, map);
  if (np.accesses.count(key)) return true;  // shared subtree, already planned
  AddrAccess a;
  a.base = intern_base(np, grid, map, written);
  const DimMap& mi = map.dim(map.rank() - 1);
  if (mi.is_pure_offset()) {
    a.induction = -1;
    a.offset = mi.off;
  } else {
    if ((mi.num * inner_stride) % mi.den != 0) {
      *bail = "innermost map " + std::to_string(mi.num) + "*i" +
              (mi.off ? (mi.off > 0 ? "+" : "") + std::to_string(mi.off) : "") +
              "/" + std::to_string(mi.den) + " not strength-reducible: den " +
              std::to_string(mi.den) + " does not divide num*stride " +
              std::to_string(mi.num * inner_stride);
      return false;
    }
    int found = -1;
    for (size_t j = 0; j < np.inductions.size(); ++j) {
      if (np.inductions[j].num == mi.num && np.inductions[j].den == mi.den) {
        found = static_cast<int>(j);
        break;
      }
    }
    if (found < 0) {
      AddrInduction ind;
      ind.num = mi.num;
      ind.den = mi.den;
      ind.off0 = mi.off;
      ind.step = mi.num * inner_stride / mi.den;
      np.inductions.push_back(ind);
      found = static_cast<int>(np.inductions.size()) - 1;
      a.offset = 0;
    } else {
      // Exactness at any shared domain point forces the offsets of one
      // (num, den) class to be congruent mod den; verify defensively.
      const AddrInduction& ind = np.inductions[static_cast<size_t>(found)];
      if ((mi.off - ind.off0) % mi.den != 0) {
        *bail = "offsets " + std::to_string(ind.off0) + " and " +
                std::to_string(mi.off) + " of /" + std::to_string(mi.den) +
                " maps differ mod den";
        return false;
      }
      a.offset = (mi.off - ind.off0) / mi.den;
    }
    a.induction = found;
  }
  np.accesses.emplace(key, a);
  return true;
}

AddrNestPlan plan_nest(const KernelPlan& plan, const LoopNest& nest,
                       const std::set<std::string>& written) {
  AddrNestPlan np;
  if (nest.dims.empty()) {
    np.bail_reason = "nest has no loops";
    return np;
  }
  if (nest.is_reduce) {
    // The accumulating body writes one scalar cell, not out[i]; the write
    // access an addr plan would hoist does not exist.
    np.bail_reason = "reduce nest accumulates into a scalar";
    return np;
  }
  const LoopDim& inner = nest.dims.back();
  const int rank = static_cast<int>(plan.shapes.at(nest.out_grid).size());
  if (inner.grid_dim != rank - 1) {
    np.bail_reason = "innermost loop iterates grid dim " +
                     std::to_string(inner.grid_dim) +
                     ", not the contiguous dim " + std::to_string(rank - 1);
    return np;
  }
  np.inner_dim = inner.grid_dim;

  std::string bail;
  if (!plan_access(np, nest.out_grid, IndexMap::identity(rank), inner.stride,
                   /*written=*/true, &bail)) {
    np = AddrNestPlan{};
    np.bail_reason = bail;
    return np;
  }
  for (const GridReadExpr* r : collect_reads(nest.rhs)) {
    if (!plan_access(np, r->grid(), r->map(), inner.stride,
                     written.count(r->grid()) > 0, &bail)) {
      np = AddrNestPlan{};
      np.bail_reason = bail;
      return np;
    }
  }
  np.active = true;
  return np;
}

}  // namespace

std::string addr_access_key(const std::string& grid, const IndexMap& map) {
  return grid + "@" + map.to_string();
}

size_t AddrPlan::active_count() const {
  size_t n = 0;
  for (const auto& np : nests) n += np.active ? 1 : 0;
  return n;
}

std::string AddrPlan::describe(const KernelPlan& plan) const {
  std::ostringstream os;
  for (size_t i = 0; i < nests.size(); ++i) {
    const AddrNestPlan& np = nests[i];
    const std::string label =
        i < plan.nests.size() ? plan.nests[i].label : "?";
    os << "nest " << i << " (" << label << "): ";
    if (!np.active) {
      os << "legacy indexing — " << np.bail_reason << "\n";
      continue;
    }
    os << np.bases.size() << " row base(s), " << np.inductions.size()
       << " induction(s)\n";
    for (size_t k = 0; k < np.bases.size(); ++k) {
      os << "  base " << k << ": " << np.bases[k].grid << " + [";
      for (size_t d = 0; d < np.bases[k].outer.size(); ++d) {
        const DimMap& m = np.bases[k].outer[d];
        if (d) os << ", ";
        if (m.num != 1) os << m.num << "*";
        os << "i" << d;
        if (m.off > 0) os << "+" << m.off;
        if (m.off < 0) os << m.off;
        if (m.den != 1) os << "/" << m.den;
      }
      os << "]" << (np.bases[k].written ? "" : " (read-only)") << "\n";
    }
    for (size_t j = 0; j < np.inductions.size(); ++j) {
      const AddrInduction& ind = np.inductions[j];
      os << "  induction " << j << ": (" << ind.num << "*i";
      if (ind.off0 > 0) os << "+" << ind.off0;
      if (ind.off0 < 0) os << ind.off0;
      os << ")/" << ind.den << ", step " << ind.step << "\n";
    }
  }
  return os.str();
}

AddrPlan plan_addresses(const KernelPlan& plan) {
  AddrPlan addr;
  const std::set<std::string> written = written_grids(plan);
  addr.nests.reserve(plan.nests.size());
  for (const auto& nest : plan.nests) {
    addr.nests.push_back(plan_nest(plan, nest, written));
  }
  return addr;
}

void verify_addr_plan(const KernelPlan& plan, const AddrPlan& addr) {
  SF_ASSERT(addr.nests.size() == plan.nests.size(),
                    "addr plan has " + std::to_string(addr.nests.size()) +
                        " nests, kernel plan has " +
                        std::to_string(plan.nests.size()));
  for (size_t i = 0; i < plan.nests.size(); ++i) {
    const AddrNestPlan& np = addr.nests[i];
    if (!np.active) continue;
    const LoopNest& nest = plan.nests[i];
    SF_ASSERT(!nest.dims.empty(),
                      "active addr plan on loop-less nest '" + nest.label + "'");
    const LoopDim& inner = nest.dims.back();
    const int rank = static_cast<int>(plan.shapes.at(nest.out_grid).size());
    SF_ASSERT(np.inner_dim == rank - 1 && inner.grid_dim == rank - 1,
                      "addr plan for '" + nest.label +
                          "' does not own the contiguous dim");
    auto check_access = [&](const std::string& grid, const IndexMap& map) {
      const auto it = np.accesses.find(addr_access_key(grid, map));
      SF_ASSERT(it != np.accesses.end(),
                        "addr plan for '" + nest.label +
                            "' misses access to '" + grid + "'");
      const AddrAccess& a = it->second;
      SF_ASSERT(
          a.base >= 0 && a.base < static_cast<int>(np.bases.size()),
          "addr access base index out of range in '" + nest.label + "'");
      SF_ASSERT(a.induction < static_cast<int>(np.inductions.size()),
                        "addr access induction index out of range in '" +
                            nest.label + "'");
      const DimMap& mi = map.dim(rank - 1);
      if (a.induction >= 0) {
        const AddrInduction& ind = np.inductions[static_cast<size_t>(a.induction)];
        SF_ASSERT(ind.num == mi.num && ind.den == mi.den,
                          "addr induction class mismatch in '" + nest.label +
                              "'");
        SF_ASSERT(ind.step * mi.den == mi.num * inner.stride,
                          "addr induction step is not num*stride/den in '" +
                              nest.label + "'");
      } else {
        SF_ASSERT(mi.is_pure_offset() && a.offset == mi.off,
                          "pure-offset addr access disagrees with map in '" +
                              nest.label + "'");
      }
    };
    check_access(nest.out_grid, IndexMap::identity(rank));
    for (const GridReadExpr* r : collect_reads(nest.rhs)) {
      check_access(r->grid(), r->map());
    }
  }
}

}  // namespace snowflake
