#pragma once
// Stencil (statement) fusion — the paper's §VII extension: "extend the
// analysis to mark stencils for fusion ... by analyzing dependencies and
// memory access patterns".
//
// Chains within a wave are mutually independent by construction of the
// dependence schedule, so any group of single-nest point-parallel chains
// whose loop structures are *identical* may execute as one nest with all
// assignment bodies in the innermost loop — one pass through memory serves
// every stencil (e.g. computing a residual and a new iterate together).

#include "codegen/plan.hpp"

namespace snowflake {

/// Fuse, within each wave, groups of untiled single-nest point-parallel
/// chains with identical dims into ChainFusion::Full chains.  Returns the
/// number of fused chains created.  Run before multicolor fusion and
/// tiling.
int fuse_statements(KernelPlan& plan);

}  // namespace snowflake
