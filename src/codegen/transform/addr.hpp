#pragma once
// Address-arithmetic planning: rewrite a nest's grid accesses into hoisted
// per-row base pointers plus constant offsets / strength-reduced induction
// variables in the innermost loop (the address CSE pass production stencil
// compilers apply before codegen; Devito and StencilFlow both normalize
// accesses to constant offsets from a moving base).
//
// For each LoopNest whose innermost loop iterates the contiguous grid
// dimension (grid_dim == rank-1, which lowering and tiling both guarantee
// for point loops), the pass plans:
//   * one base pointer per distinct (grid, outer-coordinate maps) pair —
//     `grid + <outer coords linearized>` hoisted above the innermost loop;
//   * pure-offset innermost reads as `base[iK + C]` with the flat constant
//     folded from the stencil offset;
//   * multiplicative maps (num>1) as a secondary induction variable stepped
//     by num*stride, and divisive maps (den>1, interpolation) as a
//     division-free induction variable stepped by num*stride/den — legal
//     exactly when den divides num*stride, which parity-strided
//     interpolation domains satisfy (stride 2, den 2).
//
// The pass never fails: a nest that cannot be rewritten records a bail
// reason and the emitter falls back to the legacy re-linearized indexing
// for that nest only.  Correctness of the induction start value relies on
// the validator's exactness guarantee: every executed iteration point lies
// on the domain lattice, where (num*i + off) / den divides exactly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "codegen/plan.hpp"

namespace snowflake {

/// One hoisted row base: `grid + sum_d outer[d](coord_d) * stride_d`.
struct AddrBase {
  std::string grid;
  std::vector<DimMap> outer;  // maps for grid dims 0..rank-2
  /// Grid is written somewhere in the plan (suppresses `restrict` on the
  /// derived pointer: writing through one restrict base while reading the
  /// same element through another would be undefined).
  bool written = false;
};

/// One strength-reduced induction variable for a (num, den) class of
/// innermost maps: starts at (num*lo + off0)/den, steps by num*stride/den.
struct AddrInduction {
  std::int64_t num = 1;
  std::int64_t den = 1;
  std::int64_t off0 = 0;  // representative offset of the class
  std::int64_t step = 0;  // num * inner_stride / den (exact by legality)
};

/// How one grid access renders inside the innermost loop:
/// base[<loop var or induction var> + offset].
struct AddrAccess {
  int base = -1;
  int induction = -1;  // -1: pure offset off the innermost loop variable
  std::int64_t offset = 0;
};

struct AddrNestPlan {
  bool active = false;
  std::string bail_reason;  // set when !active
  int inner_dim = -1;       // grid dimension of the innermost loop (rank-1)
  std::vector<AddrBase> bases;
  std::vector<AddrInduction> inductions;
  /// addr_access_key(grid, map) -> rendering plan.  The nest's write is
  /// keyed with the identity map.
  std::map<std::string, AddrAccess> accesses;
};

struct AddrPlan {
  std::vector<AddrNestPlan> nests;  // parallel to KernelPlan::nests

  size_t active_count() const;

  /// Human-readable summary (explain_group's "address plan" section).
  std::string describe(const KernelPlan& plan) const;
};

/// Structural lookup key for an access: stable across emission contexts
/// (shared subtrees of one rhs referencing the same grid through the same
/// map render identically, so one plan entry serves them all).
std::string addr_access_key(const std::string& grid, const IndexMap& map);

/// Plan address arithmetic for every nest of the plan.  Pure analysis: the
/// KernelPlan itself is never modified.
AddrPlan plan_addresses(const KernelPlan& plan);

/// Invariants tying an AddrPlan to its KernelPlan; throws InternalError on
/// violation (run by backends next to verify_plan).  Checks: parallel
/// nest arrays; for active nests the innermost loop owns the contiguous
/// grid dim, every access of the nest (write + all reads) has a plan entry
/// with in-range base/induction indices, and induction steps match
/// num*stride/den exactly.
void verify_addr_plan(const KernelPlan& plan, const AddrPlan& addr);

}  // namespace snowflake
