#pragma once
// Multicolor reordering (paper §IV-A): a loop-interchange transform that
// fuses the independent strided rects of a wave — e.g. the 2^(rank-1) rects
// of one red-black color — under a single unit-stride outer sweep.  One
// pass through slow memory then serves every rect, instead of one pass per
// rect.  Legality comes for free: chains within a wave are mutually
// independent by construction of the dependence schedule.

#include "codegen/plan.hpp"

namespace snowflake {

/// Fuse, within each wave, the single-nest point-parallel untiled chains of
/// equal rank into one fused chain (when there are at least two of them and
/// at least one member is strided).  Returns the number of fused chains
/// created.  Run before tiling.
int fuse_multicolor(KernelPlan& plan);

}  // namespace snowflake
