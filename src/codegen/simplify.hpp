#pragma once
// Algebraic simplification of stencil expressions before emission.
//
// WeightArray/Component sugar and generic operator builders produce trees
// with literal-zero terms, multiplications by one, and foldable constant
// subtrees (e.g. the paper's Figure 4 composes `b - Ax` from parts).  The
// simplifier normalizes these bottom-up so every backend emits the minimal
// arithmetic.  Semantics-preserving by construction: each rewrite is an
// identity on reals, and 0.0 * read(...) elimination only ever *removes*
// reads, which can only relax the dependence analysis's conclusions.

#include "ir/expr.hpp"

namespace snowflake {

/// Bottom-up rewrite: constant folding, +0/-0/*1 / /1 elision, *0
/// annihilation, double negation, negative-constant absorption.
ExprPtr simplify(const ExprPtr& expr);

/// Number of nodes in the tree (for tests and diagnostics).
std::int64_t expr_node_count(const ExprPtr& expr);

}  // namespace snowflake
