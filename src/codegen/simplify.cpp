#include "codegen/simplify.hpp"

#include "support/error.hpp"

namespace snowflake {

namespace {

bool is_const(const ExprPtr& e, double* value = nullptr) {
  if (e->kind() != ExprKind::Constant) return false;
  if (value != nullptr) *value = static_cast<const ConstantExpr&>(*e).value();
  return true;
}

ExprPtr simplify_binary(BinaryOp op, const ExprPtr& lhs, const ExprPtr& rhs) {
  double a = 0.0, b = 0.0;
  const bool ca = is_const(lhs, &a);
  const bool cb = is_const(rhs, &b);

  if (ca && cb) {
    switch (op) {
      case BinaryOp::Add: return constant(a + b);
      case BinaryOp::Sub: return constant(a - b);
      case BinaryOp::Mul: return constant(a * b);
      case BinaryOp::Div: return constant(a / b);
    }
  }

  switch (op) {
    case BinaryOp::Add:
      if (ca && a == 0.0) return rhs;
      if (cb && b == 0.0) return lhs;
      break;
    case BinaryOp::Sub:
      if (cb && b == 0.0) return lhs;
      if (ca && a == 0.0) return simplify(-rhs);
      break;
    case BinaryOp::Mul:
      // 0 * x -> 0 is exact for the finite grid values stencils compute
      // (the DSL has no inf/nan semantics to preserve).
      if ((ca && a == 0.0) || (cb && b == 0.0)) return constant(0.0);
      if (ca && a == 1.0) return rhs;
      if (cb && b == 1.0) return lhs;
      if (ca && a == -1.0) return simplify(-rhs);
      if (cb && b == -1.0) return simplify(-lhs);
      break;
    case BinaryOp::Div:
      if (cb && b == 1.0) return lhs;
      if (ca && a == 0.0) return constant(0.0);
      break;
  }
  return std::make_shared<BinaryExpr>(op, lhs, rhs);
}

}  // namespace

ExprPtr simplify(const ExprPtr& expr) {
  SF_REQUIRE(expr != nullptr, "simplify on null expression");
  switch (expr->kind()) {
    case ExprKind::Constant:
    case ExprKind::Param:
    case ExprKind::GridRead:
      return expr;
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      const ExprPtr lhs = simplify(b.lhs());
      const ExprPtr rhs = simplify(b.rhs());
      return simplify_binary(b.op(), lhs, rhs);
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(*expr);
      const ExprPtr inner = simplify(u.operand());
      double v = 0.0;
      if (is_const(inner, &v)) return constant(-v);
      if (inner->kind() == ExprKind::Unary) {
        return static_cast<const UnaryExpr&>(*inner).operand();  // --x -> x
      }
      return std::make_shared<UnaryExpr>(UnaryOp::Neg, inner);
    }
    case ExprKind::Reduce: {
      const auto& red = static_cast<const ReduceExpr&>(*expr);
      ExprPtr body;
      if (red.op() == ReduceOp::Dot && red.body()->kind() == ExprKind::Binary) {
        // Preserve the top-level product that makes a Dot body valid
        // (x * 1 -> x would demote it); simplify only the factors.
        const auto& mul = static_cast<const BinaryExpr&>(*red.body());
        body = std::make_shared<BinaryExpr>(mul.op(), simplify(mul.lhs()),
                                            simplify(mul.rhs()));
      } else {
        body = simplify(red.body());
      }
      return std::make_shared<ReduceExpr>(red.op(), std::move(body),
                                          red.anchor());
    }
  }
  throw InternalError("unhandled expression kind in simplify");
}

std::int64_t expr_node_count(const ExprPtr& expr) {
  std::int64_t count = 0;
  visit(expr, [&](const Expr&) { ++count; });
  return count;
}

}  // namespace snowflake
