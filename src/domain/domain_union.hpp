#pragma once
// DomainUnion: a union of RectDomains (paper Table I).
//
// Multi-color iteration patterns — red-black checkerboards, 4-colorings —
// are unions of strided rects offset from one another.  A DomainUnion keeps
// its members in insertion order; execution applies the stencil rect by
// rect, and the analysis proves when that order is immaterial (all members
// pairwise independent) so backends may parallelize across the whole union.

#include <string>
#include <vector>

#include "domain/rect_domain.hpp"
#include "domain/resolved.hpp"

namespace snowflake {

class DomainUnion {
public:
  DomainUnion() = default;
  explicit DomainUnion(std::vector<RectDomain> rects);
  /// A union of one rect (implicit, so Stencil can take either form).
  DomainUnion(const RectDomain& rect);  // NOLINT(google-explicit-constructor)

  const std::vector<RectDomain>& rects() const { return rects_; }
  size_t rect_count() const { return rects_.size(); }
  int rank() const;
  bool empty() const { return rects_.empty(); }

  DomainUnion operator+(const RectDomain& rect) const;
  DomainUnion operator+(const DomainUnion& other) const;

  ResolvedUnion resolve(const Index& shape) const;

  std::string to_string() const;

private:
  std::vector<RectDomain> rects_;
};

}  // namespace snowflake
