#include "domain/resolved.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/int_math.hpp"

namespace snowflake {

std::int64_t ResolvedRange::count() const {
  if (empty()) return 0;
  return (hi - 1 - lo) / stride + 1;
}

std::int64_t ResolvedRange::last() const {
  SF_ASSERT(!empty(), "ResolvedRange::last on empty range");
  return lo + (count() - 1) * stride;
}

bool ResolvedRange::contains(std::int64_t x) const {
  return x >= lo && x < hi && (x - lo) % stride == 0;
}

std::string ResolvedRange::to_string() const {
  std::ostringstream os;
  os << lo << ":" << hi;
  if (stride != 1) os << ":" << stride;
  return os.str();
}

ResolvedRect::ResolvedRect(std::vector<ResolvedRange> ranges)
    : ranges_(std::move(ranges)) {
  SF_REQUIRE(!ranges_.empty(), "ResolvedRect requires rank >= 1");
  for (const auto& r : ranges_) {
    SF_REQUIRE(r.stride >= 1, "ResolvedRange stride must be >= 1");
  }
}

const ResolvedRange& ResolvedRect::range(int d) const {
  SF_REQUIRE(d >= 0 && d < rank(), "ResolvedRect::range dimension out of range");
  return ranges_[static_cast<size_t>(d)];
}

bool ResolvedRect::empty() const {
  if (ranges_.empty()) return true;
  for (const auto& r : ranges_) {
    if (r.empty()) return true;
  }
  return false;
}

std::int64_t ResolvedRect::count() const {
  if (ranges_.empty()) return 0;
  std::int64_t n = 1;
  for (const auto& r : ranges_) n *= r.count();
  return n;
}

bool ResolvedRect::contains(const Index& point) const {
  if (static_cast<int>(point.size()) != rank()) return false;
  for (size_t d = 0; d < ranges_.size(); ++d) {
    if (!ranges_[d].contains(point[d])) return false;
  }
  return true;
}

void ResolvedRect::for_each(const std::function<void(const Index&)>& fn) const {
  if (empty()) return;
  Index point(ranges_.size());
  for (size_t d = 0; d < ranges_.size(); ++d) point[d] = ranges_[d].lo;
  const int r = rank();
  while (true) {
    fn(point);
    // Odometer increment respecting per-dim strides.
    int d = r - 1;
    for (; d >= 0; --d) {
      const auto& range = ranges_[static_cast<size_t>(d)];
      point[static_cast<size_t>(d)] += range.stride;
      if (point[static_cast<size_t>(d)] < range.hi) break;
      point[static_cast<size_t>(d)] = range.lo;
    }
    if (d < 0) return;
  }
}

std::vector<Index> ResolvedRect::points() const {
  std::vector<Index> out;
  out.reserve(static_cast<size_t>(count()));
  for_each([&](const Index& p) { out.push_back(p); });
  return out;
}

std::string ResolvedRect::to_string() const {
  std::ostringstream os;
  os << "{";
  for (int d = 0; d < rank(); ++d) {
    if (d != 0) os << ", ";
    os << ranges_[static_cast<size_t>(d)].to_string();
  }
  os << "}";
  return os.str();
}

ResolvedUnion::ResolvedUnion(std::vector<ResolvedRect> rects)
    : rects_(std::move(rects)) {
  for (size_t i = 1; i < rects_.size(); ++i) {
    SF_REQUIRE(rects_[i].rank() == rects_[0].rank(),
               "ResolvedUnion members must share a rank");
  }
}

int ResolvedUnion::rank() const {
  return rects_.empty() ? 0 : rects_[0].rank();
}

bool ResolvedUnion::empty() const {
  for (const auto& r : rects_) {
    if (!r.empty()) return false;
  }
  return true;
}

std::int64_t ResolvedUnion::count_with_multiplicity() const {
  std::int64_t n = 0;
  for (const auto& r : rects_) n += r.count();
  return n;
}

bool ResolvedUnion::contains(const Index& point) const {
  for (const auto& r : rects_) {
    if (r.contains(point)) return true;
  }
  return false;
}

void ResolvedUnion::for_each(const std::function<void(const Index&)>& fn) const {
  for (const auto& r : rects_) r.for_each(fn);
}

std::string ResolvedUnion::to_string() const {
  std::ostringstream os;
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i != 0) os << " + ";
    os << rects_[i].to_string();
  }
  if (rects_.empty()) os << "{}";
  return os.str();
}

}  // namespace snowflake
