#pragma once
// RectDomain: a strided hyper-rectangular iteration space with
// grid-size-relative bounds (paper Table I / Section II).
//
// Each dimension is described by (start, stop, stride):
//   * start < 0 and stop <= 0 are resolved relative to the grid extent at
//     compile time (value + extent).  This lets interior and boundary
//     domains be written once and reused on every grid size ("(1, -1)"
//     means 1 .. N-1, and stop == 0 denotes the full extent).
//   * stop is exclusive, so RectDomain({1},{-1},{2}) over extent 8 iterates
//     {1, 3, 5}.
//   * stride == 0 denotes a degenerate single-point dimension fixed at
//     `start` (used by boundary stencils to pin one coordinate to a face,
//     as in the paper's Figure 4 line 17).

#include <cstdint>
#include <string>
#include <vector>

#include "domain/resolved.hpp"
#include "grid/layout.hpp"

namespace snowflake {

/// One dimension of a RectDomain before resolution against a grid shape.
struct DimRange {
  std::int64_t start = 0;
  std::int64_t stop = 0;    // exclusive; ignored when stride == 0
  std::int64_t stride = 1;  // >= 0; 0 = single point at `start`
};

class DomainUnion;

class RectDomain {
public:
  RectDomain() = default;

  /// Per-dimension (start, stop, stride) tuples; ranks must agree.
  RectDomain(Index start, Index stop, Index stride);

  /// Unit-stride box.
  RectDomain(Index start, Index stop);

  int rank() const { return static_cast<int>(dims_.size()); }
  const std::vector<DimRange>& dims() const { return dims_; }
  const DimRange& dim(int d) const;

  /// Resolve relative bounds against a concrete grid shape.
  ResolvedRect resolve(const Index& shape) const;

  /// Translate by an offset (all bounds shifted; relative bounds stay
  /// relative).  Used to derive rotationally-equivalent boundary domains.
  RectDomain translated(const Index& offset) const;

  /// Union with another domain (the paper's `+` on domains).
  DomainUnion operator+(const RectDomain& other) const;

  std::string to_string() const;

  friend bool operator==(const RectDomain& a, const RectDomain& b) {
    return a.dims_.size() == b.dims_.size() &&
           [&] {
             for (size_t i = 0; i < a.dims_.size(); ++i) {
               if (a.dims_[i].start != b.dims_[i].start ||
                   a.dims_[i].stop != b.dims_[i].stop ||
                   a.dims_[i].stride != b.dims_[i].stride)
                 return false;
             }
             return true;
           }();
  }

private:
  std::vector<DimRange> dims_;
};

}  // namespace snowflake
