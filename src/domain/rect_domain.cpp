#include "domain/rect_domain.hpp"

#include <sstream>

#include "domain/domain_union.hpp"
#include "support/error.hpp"

namespace snowflake {

RectDomain::RectDomain(Index start, Index stop, Index stride) {
  SF_REQUIRE(!start.empty(), "RectDomain requires rank >= 1");
  SF_REQUIRE(start.size() == stop.size() && start.size() == stride.size(),
             "RectDomain start/stop/stride rank mismatch");
  dims_.reserve(start.size());
  for (size_t d = 0; d < start.size(); ++d) {
    SF_REQUIRE(stride[d] >= 0, "RectDomain stride must be >= 0");
    dims_.push_back(DimRange{start[d], stop[d], stride[d]});
  }
}

RectDomain::RectDomain(Index start, Index stop) {
  Index stride(start.size(), 1);
  *this = RectDomain(std::move(start), std::move(stop), std::move(stride));
}

const DimRange& RectDomain::dim(int d) const {
  SF_REQUIRE(d >= 0 && d < rank(), "RectDomain::dim out of range");
  return dims_[static_cast<size_t>(d)];
}

ResolvedRect RectDomain::resolve(const Index& shape) const {
  SF_REQUIRE(static_cast<int>(shape.size()) == rank(),
             "RectDomain::resolve shape rank mismatch (domain rank " +
                 std::to_string(rank()) + ", shape rank " +
                 std::to_string(shape.size()) + ")");
  std::vector<ResolvedRange> ranges;
  ranges.reserve(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const std::int64_t extent = shape[d];
    const DimRange& dim = dims_[d];
    std::int64_t lo = dim.start >= 0 ? dim.start : extent + dim.start;
    if (dim.stride == 0) {
      // Degenerate dimension: the single point `start`.
      ranges.push_back(ResolvedRange{lo, lo + 1, 1});
      continue;
    }
    // stop <= 0 is extent-relative, so stop == 0 denotes the full extent;
    // start == 0 stays absolute (the first cell).
    std::int64_t hi = dim.stop > 0 ? dim.stop : extent + dim.stop;
    SF_REQUIRE(lo >= 0, "RectDomain resolves to negative start " +
                            std::to_string(lo) + " over extent " +
                            std::to_string(extent));
    SF_REQUIRE(hi <= extent,
               "RectDomain resolves past extent: stop " + std::to_string(hi) +
                   " > " + std::to_string(extent));
    ranges.push_back(ResolvedRange{lo, hi, dim.stride});
  }
  return ResolvedRect(std::move(ranges));
}

RectDomain RectDomain::translated(const Index& offset) const {
  SF_REQUIRE(static_cast<int>(offset.size()) == rank(),
             "RectDomain::translated rank mismatch");
  RectDomain out = *this;
  for (size_t d = 0; d < out.dims_.size(); ++d) {
    out.dims_[d].start += offset[d];
    if (out.dims_[d].stride != 0) out.dims_[d].stop += offset[d];
  }
  return out;
}

DomainUnion RectDomain::operator+(const RectDomain& other) const {
  return DomainUnion({*this, other});
}

std::string RectDomain::to_string() const {
  std::ostringstream os;
  os << "Rect{";
  for (int d = 0; d < rank(); ++d) {
    if (d != 0) os << ", ";
    const DimRange& r = dims_[static_cast<size_t>(d)];
    if (r.stride == 0) {
      os << "[" << r.start << "]";
    } else {
      os << r.start << ":" << r.stop;
      if (r.stride != 1) os << ":" << r.stride;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace snowflake
