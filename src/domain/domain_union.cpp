#include "domain/domain_union.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {

DomainUnion::DomainUnion(std::vector<RectDomain> rects) : rects_(std::move(rects)) {
  for (size_t i = 1; i < rects_.size(); ++i) {
    SF_REQUIRE(rects_[i].rank() == rects_[0].rank(),
               "DomainUnion members must share a rank");
  }
}

DomainUnion::DomainUnion(const RectDomain& rect) : rects_({rect}) {}

int DomainUnion::rank() const { return rects_.empty() ? 0 : rects_[0].rank(); }

DomainUnion DomainUnion::operator+(const RectDomain& rect) const {
  DomainUnion out = *this;
  if (!out.rects_.empty()) {
    SF_REQUIRE(rect.rank() == out.rank(), "DomainUnion members must share a rank");
  }
  out.rects_.push_back(rect);
  return out;
}

DomainUnion DomainUnion::operator+(const DomainUnion& other) const {
  DomainUnion out = *this;
  for (const auto& r : other.rects_) out = out + r;
  return out;
}

ResolvedUnion DomainUnion::resolve(const Index& shape) const {
  SF_REQUIRE(!rects_.empty(), "cannot resolve an empty DomainUnion");
  std::vector<ResolvedRect> resolved;
  resolved.reserve(rects_.size());
  for (const auto& r : rects_) resolved.push_back(r.resolve(shape));
  return ResolvedUnion(std::move(resolved));
}

std::string DomainUnion::to_string() const {
  std::ostringstream os;
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i != 0) os << " + ";
    os << rects_[i].to_string();
  }
  if (rects_.empty()) os << "Union{}";
  return os.str();
}

}  // namespace snowflake
