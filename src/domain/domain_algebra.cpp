#include "domain/domain_algebra.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/int_math.hpp"

namespace snowflake {

std::optional<ResolvedRange> intersect_ranges(const ResolvedRange& a,
                                              const ResolvedRange& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  // Solve x ≡ a.lo (mod a.stride), x ≡ b.lo (mod b.stride) by CRT.
  const ExtGcd eg = ext_gcd(a.stride, b.stride);
  const std::int64_t diff = b.lo - a.lo;
  if (diff % eg.g != 0) return std::nullopt;
  const std::int64_t combined = lcm(a.stride, b.stride);
  // One solution: a.lo + a.stride * p * (diff/g); reduce the multiplier mod
  // (b.stride/g) first so the product stays within __int128.
  const std::int64_t m = b.stride / eg.g;
  const std::int64_t mult =
      mod_floor(static_cast<std::int64_t>(
                    (static_cast<__int128>(eg.x) * (diff / eg.g)) %
                    static_cast<__int128>(m)),
                m);
  const std::int64_t x0 = a.lo + a.stride * mult;
  // Clip the combined progression {x0 + k*combined} to the bound overlap.
  const std::int64_t lo_clip = std::max(a.lo, b.lo);
  const std::int64_t hi_clip = std::min(a.hi, b.hi);
  if (lo_clip >= hi_clip) return std::nullopt;
  const std::int64_t first = x0 + ceil_div(lo_clip - x0, combined) * combined;
  if (first >= hi_clip) return std::nullopt;
  ResolvedRange out{first, hi_clip, combined};
  SF_ASSERT(a.contains(first) && b.contains(first),
            "intersect_ranges produced a point outside an input range");
  return out;
}

std::optional<ResolvedRect> intersect_rects(const ResolvedRect& a,
                                            const ResolvedRect& b) {
  SF_REQUIRE(a.rank() == b.rank(), "intersect_rects rank mismatch");
  std::vector<ResolvedRange> ranges;
  ranges.reserve(static_cast<size_t>(a.rank()));
  for (int d = 0; d < a.rank(); ++d) {
    auto r = intersect_ranges(a.range(d), b.range(d));
    if (!r) return std::nullopt;
    ranges.push_back(*r);
  }
  return ResolvedRect(std::move(ranges));
}

bool rects_disjoint(const ResolvedRect& a, const ResolvedRect& b) {
  return !intersect_rects(a, b).has_value();
}

bool pairwise_disjoint(const ResolvedUnion& u) {
  const auto& rects = u.rects();
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      if (!rects_disjoint(rects[i], rects[j])) return false;
    }
  }
  return true;
}

bool unions_disjoint(const ResolvedUnion& a, const ResolvedUnion& b) {
  for (const auto& ra : a.rects()) {
    for (const auto& rb : b.rects()) {
      if (!rects_disjoint(ra, rb)) return false;
    }
  }
  return true;
}

std::int64_t count_distinct(const ResolvedUnion& u) {
  // Inclusion–exclusion; intersections of strided rects are strided rects,
  // so every term is exact.
  const auto& rects = u.rects();
  const size_t n = rects.size();
  SF_REQUIRE(n <= 20, "count_distinct limited to 20 rects (2^n terms)");
  std::int64_t total = 0;
  for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
    std::optional<ResolvedRect> acc;
    bool dead = false;
    int bits = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!(mask & (size_t{1} << i))) continue;
      ++bits;
      if (!acc) {
        acc = rects[i];
      } else {
        acc = intersect_rects(*acc, rects[i]);
        if (!acc) {
          dead = true;
          break;
        }
      }
    }
    if (dead) continue;
    total += (bits % 2 == 1 ? 1 : -1) * acc->count();
  }
  return total;
}

ResolvedRect translate(const ResolvedRect& rect, const Index& offset) {
  SF_REQUIRE(static_cast<int>(offset.size()) == rect.rank(),
             "translate rank mismatch");
  std::vector<ResolvedRange> ranges = rect.ranges();
  for (size_t d = 0; d < ranges.size(); ++d) {
    ranges[d].lo += offset[d];
    ranges[d].hi += offset[d];
  }
  return ResolvedRect(std::move(ranges));
}

ResolvedRect affine_image(const ResolvedRect& rect, const Index& num,
                          const Index& off, const Index& den) {
  SF_REQUIRE(static_cast<int>(num.size()) == rect.rank() &&
                 num.size() == off.size() && num.size() == den.size(),
             "affine_image rank mismatch");
  std::vector<ResolvedRange> ranges;
  ranges.reserve(num.size());
  for (int d = 0; d < rect.rank(); ++d) {
    const ResolvedRange& r = rect.range(d);
    const std::int64_t n = num[static_cast<size_t>(d)];
    const std::int64_t o = off[static_cast<size_t>(d)];
    const std::int64_t q = den[static_cast<size_t>(d)];
    SF_REQUIRE(n >= 1 && q >= 1, "affine_image requires num >= 1 and den >= 1");
    if (r.empty()) {
      ranges.push_back(ResolvedRange{0, 0, 1});
      continue;
    }
    SF_REQUIRE((n * r.lo + o) % q == 0 && (n * r.stride) % q == 0,
               "index map (" + std::to_string(n) + "*i + " + std::to_string(o) +
                   ")/" + std::to_string(q) +
                   " does not divide exactly over domain " + r.to_string());
    const std::int64_t lo = (n * r.lo + o) / q;
    std::int64_t stride = (n * r.stride) / q;
    const std::int64_t cnt = r.count();
    if (stride == 0) {
      // Degenerate map (possible only when num*stride < den would fail the
      // divisibility check, so stride 0 means a single-point range).
      SF_ASSERT(cnt == 1, "affine_image produced stride 0 on a multi-point range");
      stride = 1;
    }
    ranges.push_back(ResolvedRange{lo, lo + (cnt - 1) * stride + 1, stride});
  }
  return ResolvedRect(std::move(ranges));
}

}  // namespace snowflake
