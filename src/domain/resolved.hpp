#pragma once
// Resolved (concrete) iteration spaces: all bounds are absolute indices for
// one specific grid shape.  These are what the analysis and the code
// generators consume.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "grid/layout.hpp"

namespace snowflake {

/// The arithmetic progression {lo, lo+stride, ...} ∩ [lo, hi).
/// stride >= 1 always holds after resolution (single points get stride 1
/// and hi = lo+1).  An empty range has hi <= lo.
struct ResolvedRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  std::int64_t stride = 1;

  bool empty() const { return hi <= lo; }
  std::int64_t count() const;
  /// Largest point of the progression, requires !empty().
  std::int64_t last() const;
  bool contains(std::int64_t x) const;
  std::string to_string() const;

  friend bool operator==(const ResolvedRange& a, const ResolvedRange& b) {
    return a.lo == b.lo && a.hi == b.hi && a.stride == b.stride;
  }
};

/// A concrete strided box: the Cartesian product of per-dim ranges.
class ResolvedRect {
public:
  ResolvedRect() = default;
  explicit ResolvedRect(std::vector<ResolvedRange> ranges);

  int rank() const { return static_cast<int>(ranges_.size()); }
  const std::vector<ResolvedRange>& ranges() const { return ranges_; }
  const ResolvedRange& range(int d) const;

  bool empty() const;
  std::int64_t count() const;
  bool contains(const Index& point) const;

  /// Visit every point in lexicographic order.
  void for_each(const std::function<void(const Index&)>& fn) const;

  /// All points, materialized (tests / small domains only).
  std::vector<Index> points() const;

  std::string to_string() const;

private:
  std::vector<ResolvedRange> ranges_;
};

/// An ordered list of concrete strided boxes (a resolved DomainUnion).
class ResolvedUnion {
public:
  ResolvedUnion() = default;
  explicit ResolvedUnion(std::vector<ResolvedRect> rects);

  const std::vector<ResolvedRect>& rects() const { return rects_; }
  size_t rect_count() const { return rects_.size(); }
  int rank() const;
  bool empty() const;

  /// Sum of per-rect counts (counts shared points once per rect).
  std::int64_t count_with_multiplicity() const;

  bool contains(const Index& point) const;
  void for_each(const std::function<void(const Index&)>& fn) const;
  std::string to_string() const;

private:
  std::vector<ResolvedRect> rects_;
};

}  // namespace snowflake
