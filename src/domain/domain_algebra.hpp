#pragma once
// Exact algebra on resolved strided domains.
//
// The key primitive is the intersection of two arithmetic progressions,
// solved with the extended Euclidean algorithm / CRT: x ≡ lo1 (mod s1) and
// x ≡ lo2 (mod s2) has solutions iff gcd(s1,s2) | (lo2-lo1), in which case
// the common points form a progression of stride lcm(s1,s2) clipped to the
// overlap interval.  Rect and union intersection are per-dimension products
// of this.  This finite-domain exactness is what lets Snowflake prove that
// (for example) Dirichlet edge stencils do not interfere with interior
// stencils — the claim the paper contrasts against Halide's infinite-domain
// interval analysis (Section III / VI).

#include <optional>

#include "domain/resolved.hpp"

namespace snowflake {

/// Common points of two strided ranges, or nullopt if disjoint.
std::optional<ResolvedRange> intersect_ranges(const ResolvedRange& a,
                                              const ResolvedRange& b);

/// Common points of two strided boxes of equal rank, or nullopt if disjoint.
std::optional<ResolvedRect> intersect_rects(const ResolvedRect& a,
                                            const ResolvedRect& b);

/// True if the rects share no point.
bool rects_disjoint(const ResolvedRect& a, const ResolvedRect& b);

/// True if no two member rects of the union share a point.
bool pairwise_disjoint(const ResolvedUnion& u);

/// True if the unions share no point.
bool unions_disjoint(const ResolvedUnion& a, const ResolvedUnion& b);

/// Number of distinct points in the union (inclusion–exclusion over rect
/// intersections; intersections of strided rects are strided rects, so this
/// is exact).  Exponential in rect_count — unions in practice have <= 2^d
/// rects, which is fine.
std::int64_t count_distinct(const ResolvedUnion& u);

/// Translate a rect by `offset` (adds offset to lo/hi in each dim).
ResolvedRect translate(const ResolvedRect& rect, const Index& offset);

/// Image of `rect` under the per-dimension affine map
/// x -> (num*x + off) / den, where den must divide (num*stride) and
/// (num*lo + off); used to map iteration domains through GridRead index
/// maps.  Throws InvalidArgument when divisibility fails (the validator
/// reports this as a malformed stencil).
ResolvedRect affine_image(const ResolvedRect& rect, const Index& num,
                          const Index& off, const Index& den);

}  // namespace snowflake
