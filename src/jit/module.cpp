#include "jit/module.hpp"

#include <dlfcn.h>

#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake {

Module::Module(const std::string& so_path) : path_(so_path) {
  trace::Span span("jit:dlopen", "jit");
  handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    const char* err = dlerror();
    throw ToolchainError("dlopen(" + so_path + ") failed: " +
                         (err != nullptr ? err : "unknown error"));
  }
}

Module::~Module() {
  if (handle_ != nullptr) dlclose(handle_);
}

Module::Module(Module&& other) noexcept
    : handle_(other.handle_), path_(std::move(other.path_)) {
  other.handle_ = nullptr;
}

Module& Module::operator=(Module&& other) noexcept {
  if (this != &other) {
    if (handle_ != nullptr) dlclose(handle_);
    handle_ = other.handle_;
    path_ = std::move(other.path_);
    other.handle_ = nullptr;
  }
  return *this;
}

void* Module::raw_symbol(const std::string& symbol) const {
  dlerror();  // clear
  void* sym = dlsym(handle_, symbol.c_str());
  const char* err = dlerror();
  if (err != nullptr || sym == nullptr) {
    throw ToolchainError("dlsym(" + symbol + ") in " + path_ + " failed: " +
                         (err != nullptr ? err : "null symbol"));
  }
  return sym;
}

KernelFn Module::kernel(const std::string& symbol) const {
  return reinterpret_cast<KernelFn>(raw_symbol(symbol));
}

}  // namespace snowflake
