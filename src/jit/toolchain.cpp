#include "jit/toolchain.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/string_util.hpp"
#include "trace/trace.hpp"

namespace fs = std::filesystem;

namespace snowflake {

namespace {

bool on_path(const std::string& exe) {
  const char* path = std::getenv("PATH");
  if (path == nullptr) return false;
  std::string p(path);
  size_t start = 0;
  while (start <= p.size()) {
    size_t end = p.find(':', start);
    if (end == std::string::npos) end = p.size();
    const std::string dir = p.substr(start, end - start);
    if (!dir.empty()) {
      std::error_code ec;
      if (fs::exists(fs::path(dir) / exe, ec)) return true;
    }
    start = end + 1;
  }
  return false;
}

std::string discover_compiler() {
  if (const char* env = std::getenv("SNOWFLAKE_CC"); env != nullptr && *env) {
    return env;
  }
  if (const char* env = std::getenv("CC"); env != nullptr && *env) {
    return env;
  }
  for (const char* candidate : {"cc", "gcc", "clang"}) {
    if (on_path(candidate)) return candidate;
  }
  return "";
}

double default_cc_timeout() {
  if (const char* env = std::getenv("SNOWFLAKE_CC_TIMEOUT");
      env != nullptr && *env) {
    double seconds = 0.0;
    if (parse_double(std::string(env), &seconds) && seconds >= 0.0) {
      return seconds;
    }
    SF_LOG_WARN("ignoring malformed SNOWFLAKE_CC_TIMEOUT='" << env
                << "' (want seconds; 0 disables)");
  }
  return 600.0;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "wait status " + std::to_string(status);
}

CommandResult run_host_command(const std::string& command,
                               double timeout_seconds) {
  CommandResult result;
  int fds[2];
  if (pipe(fds) != 0) {
    result.spawn_failed = true;
    return result;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    result.spawn_failed = true;
    return result;
  }
  if (pid == 0) {
    // Child: own process group (so a timeout kill reaps the compiler AND
    // anything it spawned), both output streams into the pipe.
    setpgid(0, 0);
    dup2(fds[1], STDOUT_FILENO);
    dup2(fds[1], STDERR_FILENO);
    close(fds[0]);
    close(fds[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(fds[1]);

  // Drain the pipe WHILE the child runs.  Reading only after wait() would
  // deadlock the moment diagnostics exceed the kernel pipe buffer: the
  // child blocks on a full pipe, the parent blocks in wait().
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              timeout_seconds > 0 ? timeout_seconds : 0.0));
  bool killed = false;
  std::array<char, 65536> buf;
  for (bool open = true; open;) {
    int wait_ms = -1;
    if (timeout_seconds > 0 && !killed) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<long long>(0, left.count()));
    }
    struct pollfd pfd = {fds[0], POLLIN, 0};
    const int ready = poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // pipe is broken; fall through to waitpid
    }
    if (ready == 0) {
      // Timeout expired with the child still holding the pipe open: kill
      // the whole process group and keep draining until EOF so the exit
      // status and any partial diagnostics are still collected.
      kill(-pid, SIGKILL);  // the group (compiler + cc1/ld children)
      kill(pid, SIGKILL);   // and the leader directly, in case the child
                            // was killed before its setpgid() took effect
      killed = true;
      result.timed_out = true;
      continue;
    }
    const ssize_t n = read(fds[0], buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      open = false;  // EOF: child (and every inheritor of the fd) exited
    } else {
      result.output.append(buf.data(), static_cast<size_t>(n));
    }
  }
  close(fds[0]);

  int status = 0;
  pid_t waited;
  do {
    waited = waitpid(pid, &status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited < 0) {
    result.spawn_failed = true;
    return result;
  }
  result.wait_status = status;
  return result;
}

Toolchain::Toolchain(ToolchainConfig config) : config_(std::move(config)) {
  compiler_ = config_.compiler.empty() ? discover_compiler() : config_.compiler;
  if (compiler_.empty()) {
    SF_LOG_WARN("no host C compiler found; JIT backends unavailable");
  }
}

double Toolchain::timeout_seconds() const {
  return config_.timeout_seconds >= 0.0 ? config_.timeout_seconds
                                        : default_cc_timeout();
}

std::string Toolchain::flags_fingerprint() const {
  // The paper compiles with -std=c99 -O3 -fgcse -fPIC; we use the modern
  // equivalents (c11, -O3 implies -fgcse at -O2+).
  std::vector<std::string> flags = {"-std=c11", "-O3", "-fPIC", "-shared"};
  if (config_.openmp) flags.push_back("-fopenmp");
  for (const auto& f : config_.extra_flags) flags.push_back(f);
  return compiler_ + " " + join(flags, " ");
}

void Toolchain::compile_shared_object(const std::string& source,
                                      const std::string& so_path) const {
  if (!available()) {
    throw ToolchainError("no host C compiler available (set $SNOWFLAKE_CC)");
  }
  const fs::path so(so_path);
  const fs::path c_path = fs::path(so_path + ".c");
  {
    std::ofstream out(c_path);
    if (!out) throw ToolchainError("cannot write " + c_path.string());
    out << source;
  }
  const std::string command = flags_fingerprint() + " " +
                              shell_quote(c_path.string()) + " -o " +
                              shell_quote(so.string());
  SF_LOG_DEBUG("jit compile: " << command);
  const double budget = timeout_seconds();
  CommandResult result;
  {
    trace::Span span("jit:toolchain", "jit");
    span.counter("source_bytes", static_cast<double>(source.size()));
    result = run_host_command(command, budget);
  }
  if (!config_.debug_keep_source) {
    std::error_code ec;
    fs::remove(c_path, ec);
  }
  if (result.spawn_failed) {
    throw ToolchainError("cannot spawn host compiler (fork/exec failed):\n" +
                         command);
  }
  if (result.timed_out) {
    throw ToolchainError(
        "host compiler timed out after " + format_double(budget) +
        "s and was killed (raise $SNOWFLAKE_CC_TIMEOUT if the source is "
        "legitimately huge):\n" +
        command + "\n" + result.output);
  }
  if (WIFSIGNALED(result.wait_status)) {
    throw ToolchainError("host compiler " +
                         describe_wait_status(result.wait_status) + ":\n" +
                         command + "\n" + result.output);
  }
  if (!WIFEXITED(result.wait_status) || WEXITSTATUS(result.wait_status) != 0) {
    throw ToolchainError("JIT compilation failed (" +
                         describe_wait_status(result.wait_status) + "):\n" +
                         command + "\n" + result.output);
  }
}

}  // namespace snowflake
