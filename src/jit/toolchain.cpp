#include "jit/toolchain.hpp"

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/string_util.hpp"
#include "trace/trace.hpp"

namespace fs = std::filesystem;

namespace snowflake {

namespace {

bool on_path(const std::string& exe) {
  const char* path = std::getenv("PATH");
  if (path == nullptr) return false;
  std::string p(path);
  size_t start = 0;
  while (start <= p.size()) {
    size_t end = p.find(':', start);
    if (end == std::string::npos) end = p.size();
    const std::string dir = p.substr(start, end - start);
    if (!dir.empty()) {
      std::error_code ec;
      if (fs::exists(fs::path(dir) / exe, ec)) return true;
    }
    start = end + 1;
  }
  return false;
}

std::string discover_compiler() {
  if (const char* env = std::getenv("SNOWFLAKE_CC"); env != nullptr && *env) {
    return env;
  }
  if (const char* env = std::getenv("CC"); env != nullptr && *env) {
    return env;
  }
  for (const char* candidate : {"cc", "gcc", "clang"}) {
    if (on_path(candidate)) return candidate;
  }
  return "";
}

struct RunResult {
  bool spawn_failed = false;  // popen/pclose themselves failed
  int wait_status = 0;        // raw waitpid status (valid when !spawn_failed)
  std::string output;         // combined stdout+stderr
};

/// Run a command, capturing combined stdout+stderr.
RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    result.spawn_failed = true;
    return result;
  }
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (status == -1) {
    result.spawn_failed = true;
    return result;
  }
  result.wait_status = status;
  return result;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "wait status " + std::to_string(status);
}

Toolchain::Toolchain(ToolchainConfig config) : config_(std::move(config)) {
  compiler_ = config_.compiler.empty() ? discover_compiler() : config_.compiler;
  if (compiler_.empty()) {
    SF_LOG_WARN("no host C compiler found; JIT backends unavailable");
  }
}

std::string Toolchain::flags_fingerprint() const {
  // The paper compiles with -std=c99 -O3 -fgcse -fPIC; we use the modern
  // equivalents (c11, -O3 implies -fgcse at -O2+).
  std::vector<std::string> flags = {"-std=c11", "-O3", "-fPIC", "-shared"};
  if (config_.openmp) flags.push_back("-fopenmp");
  for (const auto& f : config_.extra_flags) flags.push_back(f);
  return compiler_ + " " + join(flags, " ");
}

void Toolchain::compile_shared_object(const std::string& source,
                                      const std::string& so_path) const {
  if (!available()) {
    throw ToolchainError("no host C compiler available (set $SNOWFLAKE_CC)");
  }
  const fs::path so(so_path);
  const fs::path c_path = fs::path(so_path + ".c");
  {
    std::ofstream out(c_path);
    if (!out) throw ToolchainError("cannot write " + c_path.string());
    out << source;
  }
  const std::string command = flags_fingerprint() + " " +
                              shell_quote(c_path.string()) + " -o " +
                              shell_quote(so.string());
  SF_LOG_DEBUG("jit compile: " << command);
  RunResult result;
  {
    trace::Span span("jit:toolchain", "jit");
    span.counter("source_bytes", static_cast<double>(source.size()));
    result = run_command(command);
  }
  if (!config_.debug_keep_source) {
    std::error_code ec;
    fs::remove(c_path, ec);
  }
  if (result.spawn_failed) {
    throw ToolchainError("cannot spawn host compiler (popen failed):\n" +
                         command);
  }
  if (WIFSIGNALED(result.wait_status)) {
    throw ToolchainError("host compiler " +
                         describe_wait_status(result.wait_status) + ":\n" +
                         command + "\n" + result.output);
  }
  if (!WIFEXITED(result.wait_status) || WEXITSTATUS(result.wait_status) != 0) {
    throw ToolchainError("JIT compilation failed (" +
                         describe_wait_status(result.wait_status) + "):\n" +
                         command + "\n" + result.output);
  }
}

}  // namespace snowflake
