#include "jit/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "trace/trace.hpp"

namespace fs = std::filesystem;

namespace snowflake {

namespace {

std::string default_directory() {
  if (const char* env = std::getenv("SNOWFLAKE_CACHE_DIR"); env != nullptr && *env) {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg) {
    return std::string(xdg) + "/snowflake";
  }
  if (const char* home = std::getenv("HOME"); home != nullptr && *home) {
    return std::string(home) + "/.cache/snowflake";
  }
  return "/tmp/snowflake-cache";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Unique-per-call suffix for staging files: the pid distinguishes
/// concurrent processes sharing one cache directory, the counter
/// distinguishes concurrent KernelCache instances within one process.
std::string staging_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp." + std::to_string(getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

KernelCache::KernelCache(std::string directory)
    : directory_(directory.empty() ? default_directory() : std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw ToolchainError("cannot create kernel cache directory '" + directory_ +
                         "': " + ec.message());
  }
}

std::shared_ptr<Module> KernelCache::get_or_compile(const std::string& source,
                                                    const Toolchain& toolchain) {
  const std::string key =
      hash_hex(fnv1a64(source + "\x1e" + toolchain.flags_fingerprint()));

  trace::Span span("jit:cache", "jit");
  auto& collector = trace::TraceCollector::instance();
  std::unique_lock<std::mutex> lock(mu_);

  // Wait out any in-flight compile of the same key; on wake the memory map
  // usually has the module (a failed compile leaves it absent and we take
  // over the slot ourselves).
  for (;;) {
    if (auto it = loaded_.find(key); it != loaded_.end()) {
      ++stats_.memory_hits;
      collector.increment("jit.cache.memory_hits");
      span.counter("memory_hit", 1.0);
      return it->second;
    }
    if (in_flight_.count(key) == 0) break;
    cv_.wait(lock);
  }
  in_flight_.insert(key);
  lock.unlock();

  // Disk probe and compilation run unlocked so distinct keys overlap; the
  // in_flight_ entry guarantees this key has a single owner.
  const fs::path so_path = fs::path(directory_) / (key + ".so");
  const fs::path src_path = fs::path(directory_) / (key + ".src");
  std::shared_ptr<Module> module;
  bool disk_hit = false;
  try {
    std::error_code ec;
    if (fs::exists(so_path, ec) && fs::exists(src_path, ec) &&
        read_file(src_path) == source) {
      SF_LOG_DEBUG("kernel cache disk hit: " << key);
      module = std::make_shared<Module>(so_path.string());
      disk_hit = true;
    } else {
      // Publish atomically: compile and write into staging files, then
      // rename(2) them into place (.src first, then .so), so a concurrent
      // process sharing this directory either sees a complete entry or no
      // entry — never a torn shared object under the final name.
      const std::string suffix = staging_suffix();
      const fs::path so_tmp = fs::path(so_path.string() + suffix);
      const fs::path src_tmp = fs::path(src_path.string() + suffix);
      try {
        {
          trace::Span compile_span("jit:cc", "jit");
          const double start = trace::now_us();
          toolchain.compile_shared_object(source, so_tmp.string());
          const double cc_seconds = (trace::now_us() - start) / 1e6;
          compile_span.counter("cc_s", cc_seconds);
          compile_span.counter("source_bytes",
                               static_cast<double>(source.size()));
          collector.increment("jit.cc.seconds", cc_seconds);
        }
        {
          std::ofstream out(src_tmp, std::ios::binary);
          out << source;
          if (!out) {
            throw ToolchainError("cannot write " + src_tmp.string());
          }
        }
        // Drop any stale .so under the final name first (collision repair):
        // between the two renames a concurrent reader must pair the fresh
        // .src with either the fresh .so or a missing one, never a stale one.
        std::error_code stale_ec;
        fs::remove(so_path, stale_ec);
        fs::rename(src_tmp, src_path);
        fs::rename(so_tmp, so_path);
      } catch (...) {
        std::error_code cleanup_ec;
        fs::remove(so_tmp, cleanup_ec);
        fs::remove(src_tmp, cleanup_ec);
        throw;
      }
      module = std::make_shared<Module>(so_path.string());
    }
  } catch (...) {
    lock.lock();
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  lock.lock();
  loaded_[key] = module;
  in_flight_.erase(key);
  if (disk_hit) {
    ++stats_.disk_hits;
    collector.increment("jit.cache.disk_hits");
    span.counter("disk_hit", 1.0);
  } else {
    ++stats_.compiles;
    collector.increment("jit.cache.compiles");
    span.counter("compile", 1.0);
  }
  cv_.notify_all();
  return module;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

}  // namespace snowflake
