#include "jit/cache.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/paths.hpp"
#include "trace/trace.hpp"

namespace fs = std::filesystem;

namespace snowflake {

namespace {

std::uint64_t default_max_bytes() {
  const char* env = std::getenv("SNOWFLAKE_CACHE_MAX_BYTES");
  if (env == nullptr || !*env) return 0;  // unlimited
  std::uint64_t bytes = 0;
  if (!parse_byte_size(env, &bytes)) {
    SF_LOG_WARN("ignoring malformed SNOWFLAKE_CACHE_MAX_BYTES='" << env
                << "' (want bytes with optional k/m/g suffix)");
    return 0;
  }
  return bytes;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::uint64_t file_bytes(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

/// Unique-per-call suffix for staging files: the pid distinguishes
/// concurrent processes sharing one cache directory, the counter
/// distinguishes concurrent KernelCache instances within one process.
std::string staging_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp." + std::to_string(getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

/// Pid embedded in a ".tmp.<pid>.<n>" staging name, or -1.
long staging_pid(const std::string& name) {
  const auto pos = name.find(".tmp.");
  if (pos == std::string::npos) return -1;
  const char* digits = name.c_str() + pos + 5;
  char* end = nullptr;
  const long pid = std::strtol(digits, &end, 10);
  if (end == digits || *end != '.') return -1;
  return pid;
}

bool process_alive(long pid) {
  if (pid <= 0) return false;
  if (kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;  // EPERM = alive but not ours
}

}  // namespace

KernelCache::KernelCache(std::string directory)
    : KernelCache(CacheConfig{std::move(directory), 0, true}) {}

KernelCache::KernelCache(CacheConfig config)
    : directory_(config.directory.empty() ? resolve_cache_dir()
                                          : std::move(config.directory)),
      max_bytes_(config.max_bytes != 0 ? config.max_bytes
                                       : default_max_bytes()) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw ToolchainError("cannot create kernel cache directory '" + directory_ +
                         "': " + ec.message());
  }
  if (config.sweep_stale) open_directory();
}

void KernelCache::open_directory() {
  // Index existing entries (for the byte-capacity accounting) and sweep
  // staging files orphaned by a crashed process: a live pid may still be
  // mid-publish, a dead pid's .tmp files can never be renamed into place.
  std::error_code ec;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (const long pid = staging_pid(name); pid > 0) {
      if (!process_alive(pid)) stale.push_back(entry.path());
      continue;
    }
    if (entry.path().extension() != ".so") continue;
    const fs::path src = fs::path(entry.path()).replace_extension(".src");
    std::error_code exists_ec;
    if (!fs::exists(src, exists_ec)) continue;
    DiskEntry de;
    de.bytes = file_bytes(entry.path()) + file_bytes(src);
    de.last_touch = 0;  // before every live touch; first eviction victims
    const std::string key = entry.path().stem().string();
    disk_[key] = de;
    stats_.disk_bytes += de.bytes;
  }
  for (const auto& path : stale) {
    std::error_code rm_ec;
    if (fs::remove(path, rm_ec)) {
      ++stats_.swept_stale;
      SF_LOG_DEBUG("swept stale staging file " << path);
    }
  }
  if (stats_.swept_stale > 0) {
    SF_LOG_WARN("kernel cache " << directory_ << ": swept "
                << stats_.swept_stale
                << " staging file(s) orphaned by dead processes");
  }
}

std::string KernelCache::key_for(const std::string& source,
                                 const Toolchain& toolchain) {
  return hash_hex(fnv1a64(source + "\x1e" + toolchain.flags_fingerprint()));
}

void KernelCache::evict_locked() {
  if (max_bytes_ == 0) return;
  auto& collector = trace::TraceCollector::instance();
  while (stats_.disk_bytes > max_bytes_) {
    // Least-recently-touched entry that is neither pinned nor mid-compile.
    auto victim = disk_.end();
    for (auto it = disk_.begin(); it != disk_.end(); ++it) {
      if (pins_.count(it->first) != 0 || in_flight_.count(it->first) != 0) {
        continue;
      }
      if (victim == disk_.end() ||
          it->second.last_touch < victim->second.last_touch) {
        victim = it;
      }
    }
    if (victim == disk_.end()) {
      SF_LOG_DEBUG("kernel cache over capacity ("
                   << stats_.disk_bytes << " > " << max_bytes_
                   << " bytes) but every entry is pinned or in flight");
      return;
    }
    const std::string key = victim->first;
    const std::uint64_t bytes = victim->second.bytes;
    std::error_code ec;
    fs::remove(fs::path(directory_) / (key + ".so"), ec);
    fs::remove(fs::path(directory_) / (key + ".src"), ec);
    disk_.erase(victim);
    loaded_.erase(key);  // evicted = gone; existing handles stay mapped
    stats_.disk_bytes -= bytes;
    ++stats_.evictions;
    stats_.evicted_bytes += bytes;
    collector.increment("jit.cache.evictions");
    SF_LOG_DEBUG("evicted kernel cache entry " << key << " (" << bytes
                                               << " bytes)");
  }
}

void KernelCache::pin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (++pins_[key] == 1) ++stats_.pinned_keys;
}

bool KernelCache::unpin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(key);
  if (it == pins_.end()) return false;
  if (--it->second == 0) {
    pins_.erase(it);
    --stats_.pinned_keys;
    // A pin may have been the only thing holding entries over capacity.
    evict_locked();
  }
  return true;
}

std::uint64_t KernelCache::pin_count(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(key);
  return it == pins_.end() ? 0 : it->second;
}

std::shared_ptr<Module> KernelCache::get_or_compile(const std::string& source,
                                                    const Toolchain& toolchain,
                                                    ArtifactInfo* info) {
  const std::string key = key_for(source, toolchain);
  const fs::path so_path = fs::path(directory_) / (key + ".so");
  if (info != nullptr) {
    *info = ArtifactInfo{};
    info->key = key;
    info->so_path = so_path.string();
  }

  trace::Span span("jit:cache", "jit");
  auto& collector = trace::TraceCollector::instance();
  std::unique_lock<std::mutex> lock(mu_);

  // Wait out any in-flight compile of the same key; on wake the memory map
  // usually has the module (a failed compile leaves it absent and we take
  // over the slot ourselves).
  bool waited = false;
  for (;;) {
    if (auto it = loaded_.find(key); it != loaded_.end()) {
      ++stats_.memory_hits;
      if (waited) {
        ++stats_.coalesced;
        collector.increment("jit.cache.coalesced");
      }
      collector.increment("jit.cache.memory_hits");
      span.counter("memory_hit", 1.0);
      if (auto de = disk_.find(key); de != disk_.end()) {
        de->second.last_touch = ++touch_clock_;
        if (info != nullptr) info->bytes = de->second.bytes;
      }
      if (info != nullptr) info->memory_hit = true;
      return it->second;
    }
    if (in_flight_.count(key) == 0) break;
    waited = true;
    cv_.wait(lock);
  }
  in_flight_.insert(key);
  lock.unlock();

  // Disk probe and compilation run unlocked so distinct keys overlap; the
  // in_flight_ entry guarantees this key has a single owner.
  const fs::path src_path = fs::path(directory_) / (key + ".src");
  std::shared_ptr<Module> module;
  bool disk_hit = false;
  double compile_seconds = 0.0;
  try {
    std::error_code ec;
    if (fs::exists(so_path, ec) && fs::exists(src_path, ec) &&
        read_file(src_path) == source) {
      SF_LOG_DEBUG("kernel cache disk hit: " << key);
      module = std::make_shared<Module>(so_path.string());
      disk_hit = true;
    } else {
      // Publish atomically: compile and write into staging files, then
      // rename(2) them into place (.src first, then .so), so a concurrent
      // process sharing this directory either sees a complete entry or no
      // entry — never a torn shared object under the final name.
      const std::string suffix = staging_suffix();
      const fs::path so_tmp = fs::path(so_path.string() + suffix);
      const fs::path src_tmp = fs::path(src_path.string() + suffix);
      try {
        {
          trace::Span compile_span("jit:cc", "jit");
          const double start = trace::now_us();
          toolchain.compile_shared_object(source, so_tmp.string());
          compile_seconds = (trace::now_us() - start) / 1e6;
          compile_span.counter("cc_s", compile_seconds);
          compile_span.counter("source_bytes",
                               static_cast<double>(source.size()));
          collector.increment("jit.cc.seconds", compile_seconds);
        }
        {
          std::ofstream out(src_tmp, std::ios::binary);
          out << source;
          if (!out) {
            throw ToolchainError("cannot write " + src_tmp.string());
          }
        }
        // Drop any stale .so under the final name first (collision repair):
        // between the two renames a concurrent reader must pair the fresh
        // .src with either the fresh .so or a missing one, never a stale one.
        std::error_code stale_ec;
        fs::remove(so_path, stale_ec);
        fs::rename(src_tmp, src_path);
        fs::rename(so_tmp, so_path);
      } catch (...) {
        std::error_code cleanup_ec;
        fs::remove(so_tmp, cleanup_ec);
        fs::remove(src_tmp, cleanup_ec);
        throw;
      }
      module = std::make_shared<Module>(so_path.string());
    }
  } catch (...) {
    lock.lock();
    in_flight_.erase(key);
    cv_.notify_all();
    throw;
  }

  const std::uint64_t entry_bytes = file_bytes(so_path) + file_bytes(src_path);

  lock.lock();
  loaded_[key] = module;
  // Track (or refresh) the on-disk entry for the capacity accounting; a
  // concurrent process may have published it since open_directory().
  auto de = disk_.find(key);
  if (de == disk_.end()) {
    disk_[key] = DiskEntry{entry_bytes, ++touch_clock_};
    stats_.disk_bytes += entry_bytes;
  } else {
    stats_.disk_bytes += entry_bytes - de->second.bytes;
    de->second.bytes = entry_bytes;
    de->second.last_touch = ++touch_clock_;
  }
  in_flight_.erase(key);
  if (disk_hit) {
    ++stats_.disk_hits;
    collector.increment("jit.cache.disk_hits");
    span.counter("disk_hit", 1.0);
  } else {
    ++stats_.compiles;
    collector.increment("jit.cache.compiles");
    span.counter("compile", 1.0);
  }
  if (info != nullptr) {
    info->disk_hit = disk_hit;
    info->compiled = !disk_hit;
    info->compile_seconds = compile_seconds;
    info->bytes = entry_bytes;
  }
  evict_locked();
  cv_.notify_all();
  return module;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

}  // namespace snowflake
