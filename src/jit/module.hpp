#pragma once
// RAII wrapper over a dlopen'ed shared object and its kernel entry point.

#include <string>

namespace snowflake {

/// The ABI of every generated kernel (see codegen/cemit.hpp).
using KernelFn = void (*)(double** grids, const double* params);

class Module {
public:
  /// dlopen the shared object; throws ToolchainError on failure.
  explicit Module(const std::string& so_path);
  ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&& other) noexcept;
  Module& operator=(Module&& other) noexcept;

  /// Resolve a symbol as a kernel entry point; throws on failure.
  KernelFn kernel(const std::string& symbol) const;

  /// Resolve a symbol as a raw pointer (caller casts); throws on failure.
  void* raw_symbol(const std::string& symbol) const;

  const std::string& path() const { return path_; }

private:
  void* handle_ = nullptr;
  std::string path_;
};

}  // namespace snowflake
