#pragma once
// Compiled-kernel cache (paper §IV: "These call-ables are cached, for
// subsequent use").
//
// Two layers: an in-memory map from cache key to the loaded Module, and an
// on-disk directory of shared objects so repeated runs skip compilation
// entirely.  The key hashes source text + compiler flags; because FNV can
// collide, the source is stored next to the .so and compared on every disk
// hit — a mismatch degrades to a recompile, never to loading wrong code.
//
// Process-shareable interface (the snowflaked compile daemon serves many
// clients out of one instance):
//   - Byte-capacity LRU eviction: CacheConfig::max_bytes (or
//     $SNOWFLAKE_CACHE_MAX_BYTES, k/m/g suffixes accepted) bounds the
//     on-disk footprint; least-recently-used entries are unlinked when a
//     new artifact pushes the total over the cap.
//   - Artifact pinning: pin(key) marks an entry held by a live client
//     handle; pinned entries are never evicted, whatever the pressure.
//   - Single-flight compile dedup: callers asking for a key already in
//     flight wait on a condition variable and share the result, so each
//     key is compiled at most once (stats().coalesced counts the waits).
//   - Crash hygiene: staging files (.tmp.<pid>.<n>) orphaned by a dead
//     process are swept when the cache opens.
//
// Thread-safe: the map is guarded by a mutex, but compilation itself runs
// OUTSIDE the lock — distinct keys compile concurrently (the tuner
// compiles its whole candidate set in parallel).  Every lookup feeds the
// jit.cache.* trace counters, visible in the $SNOWFLAKE_METRICS dump.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "jit/module.hpp"
#include "jit/toolchain.hpp"

namespace snowflake {

struct CacheConfig {
  /// Empty selects $SNOWFLAKE_CACHE_DIR, else $XDG_CACHE_HOME/snowflake,
  /// else $HOME/.cache/snowflake, else /tmp/snowflake-<uid> (warned).
  std::string directory;
  /// On-disk byte capacity (sum of .so + .src sizes); 0 = read
  /// $SNOWFLAKE_CACHE_MAX_BYTES, which itself defaults to unlimited.
  std::uint64_t max_bytes = 0;
  /// Sweep staging files left by crashed processes at open.
  bool sweep_stale = true;
};

/// Where a get_or_compile() answer came from, plus the artifact identity a
/// compile service hands to its clients.
struct ArtifactInfo {
  std::string key;       // 16-hex cache key (source + toolchain flags)
  std::string so_path;   // final shared-object path inside the cache dir
  bool memory_hit = false;
  bool disk_hit = false;
  bool compiled = false;
  double compile_seconds = 0.0;   // when compiled
  std::uint64_t bytes = 0;        // on-disk footprint (.so + .src)
};

class KernelCache {
public:
  /// `directory` empty selects the CacheConfig resolution above.
  explicit KernelCache(std::string directory = "");
  explicit KernelCache(CacheConfig config);

  /// Compile (or fetch) `source` with the given toolchain; returns the
  /// loaded module.  Thread-safe.  `info`, when non-null, receives the
  /// artifact identity and hit provenance.
  std::shared_ptr<Module> get_or_compile(const std::string& source,
                                         const Toolchain& toolchain,
                                         ArtifactInfo* info = nullptr);

  /// The cache key get_or_compile() would use (exposed so services can
  /// dedup requests before touching the cache).
  static std::string key_for(const std::string& source,
                             const Toolchain& toolchain);

  /// Pin an artifact against eviction while a client holds a handle to it.
  /// Counted: pin twice, unpin twice.  Pinning an unknown key is allowed
  /// (it protects the entry the moment it appears).
  void pin(const std::string& key);
  /// Drop one pin; returns false if the key held no pins.
  bool unpin(const std::string& key);
  /// Live pins on `key`.
  std::uint64_t pin_count(const std::string& key) const;

  const std::string& directory() const { return directory_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Cache statistics for the JIT-overhead ablation bench, the metrics
  /// dump, and the compile service's SLO surface.
  struct Stats {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t compiles = 0;
    /// get_or_compile() calls that waited on another caller's in-flight
    /// compile of the same key (single-flight dedup).
    std::uint64_t coalesced = 0;
    /// Entries unlinked by the LRU capacity policy, and their bytes.
    std::uint64_t evictions = 0;
    std::uint64_t evicted_bytes = 0;
    /// Orphaned .tmp.<pid>.<n> staging files removed at open.
    std::uint64_t swept_stale = 0;
    /// Current on-disk footprint of tracked entries.
    std::uint64_t disk_bytes = 0;
    /// Entries currently holding at least one pin.
    std::uint64_t pinned_keys = 0;
  };
  /// Snapshot under the internal lock.
  Stats stats() const;

  /// Process-wide shared cache.
  static KernelCache& instance();

private:
  void open_directory();
  /// Unlink LRU entries until disk_bytes_ <= max_bytes_, skipping pinned
  /// and in-flight keys.  Caller holds mu_.
  void evict_locked();

  std::string directory_;
  std::uint64_t max_bytes_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Keys being probed/compiled right now (outside the lock); a second
  /// caller for the same key waits on cv_ instead of compiling twice.
  std::set<std::string> in_flight_;
  std::map<std::string, std::shared_ptr<Module>> loaded_;
  /// On-disk entries: byte size and last-touch tick for LRU ordering.
  struct DiskEntry {
    std::uint64_t bytes = 0;
    std::uint64_t last_touch = 0;
  };
  std::map<std::string, DiskEntry> disk_;
  std::map<std::string, std::uint64_t> pins_;
  std::uint64_t touch_clock_ = 0;
  Stats stats_;
};

}  // namespace snowflake
