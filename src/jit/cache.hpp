#pragma once
// Compiled-kernel cache (paper §IV: "These call-ables are cached, for
// subsequent use").
//
// Two layers: an in-memory map from cache key to the loaded Module, and an
// on-disk directory of shared objects so repeated runs skip compilation
// entirely.  The key hashes source text + compiler flags; because FNV can
// collide, the source is stored next to the .so and compared on every disk
// hit — a mismatch degrades to a recompile, never to loading wrong code.
//
// Thread-safe: the map is guarded by a mutex, but compilation itself runs
// OUTSIDE the lock — distinct keys compile concurrently (the tuner
// compiles its whole candidate set in parallel), while callers asking for
// a key already in flight wait on a condition variable and share the
// result, so each key is compiled at most once.  Every lookup also feeds
// the jit.cache.* trace counters, visible in the $SNOWFLAKE_METRICS dump.

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "jit/module.hpp"
#include "jit/toolchain.hpp"

namespace snowflake {

class KernelCache {
public:
  /// `directory` empty selects $SNOWFLAKE_CACHE_DIR, else
  /// $XDG_CACHE_HOME/snowflake, else $HOME/.cache/snowflake, else
  /// /tmp/snowflake-cache.
  explicit KernelCache(std::string directory = "");

  /// Compile (or fetch) `source` with the given toolchain; returns the
  /// loaded module.  Thread-safe.
  std::shared_ptr<Module> get_or_compile(const std::string& source,
                                         const Toolchain& toolchain);

  const std::string& directory() const { return directory_; }

  /// Cache statistics for the JIT-overhead ablation bench and the metrics
  /// dump.
  struct Stats {
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t compiles = 0;
  };
  /// Snapshot under the internal lock.
  Stats stats() const;

  /// Process-wide shared cache.
  static KernelCache& instance();

private:
  std::string directory_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Keys being probed/compiled right now (outside the lock); a second
  /// caller for the same key waits on cv_ instead of compiling twice.
  std::set<std::string> in_flight_;
  std::map<std::string, std::shared_ptr<Module>> loaded_;
  Stats stats_;
};

}  // namespace snowflake
