#pragma once
// Host C toolchain driver: compile generated C source into a shared object.
//
// This is the paper's JIT mechanism: render the micro-compiler's output to
// a temporary .c file, invoke the system compiler with optimization and
// (optionally) OpenMP flags, and dlopen the result.  Compiler discovery
// honours $SNOWFLAKE_CC, then $CC, then `cc`/`gcc`/`clang` on PATH.

#include <string>
#include <vector>

namespace snowflake {

/// Human-readable decoding of a raw waitpid()/pclose() status: "exit code
/// N" for normal exits, "killed by signal N" for signal deaths (so a
/// compiler that exits 1 is reported as exit code 1, not "status 256").
std::string describe_wait_status(int status);

struct ToolchainConfig {
  std::string compiler;                 // empty = auto-discover
  std::vector<std::string> extra_flags; // appended after the defaults
  bool openmp = false;                  // add -fopenmp
  bool debug_keep_source = false;       // leave .c next to the .so
};

class Toolchain {
public:
  explicit Toolchain(ToolchainConfig config = {});

  /// Discovered (or configured) compiler executable.
  const std::string& compiler() const { return compiler_; }

  /// True if a usable compiler was found.
  bool available() const { return !compiler_.empty(); }

  /// Compile `source` (C11) into a shared object at `so_path`.
  /// Throws ToolchainError with the compiler's stderr on failure.
  void compile_shared_object(const std::string& source,
                             const std::string& so_path) const;

  /// The flags that `compile_shared_object` will pass (for cache keys).
  std::string flags_fingerprint() const;

private:
  ToolchainConfig config_;
  std::string compiler_;
};

}  // namespace snowflake
