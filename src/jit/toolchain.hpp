#pragma once
// Host C toolchain driver: compile generated C source into a shared object.
//
// This is the paper's JIT mechanism: render the micro-compiler's output to
// a temporary .c file, invoke the system compiler with optimization and
// (optionally) OpenMP flags, and dlopen the result.  Compiler discovery
// honours $SNOWFLAKE_CC, then $CC, then `cc`/`gcc`/`clang` on PATH.
//
// The child's stdout/stderr are drained concurrently with execution (a
// compiler spewing more than a pipe buffer of diagnostics must not wedge
// the parent), and a configurable timeout ($SNOWFLAKE_CC_TIMEOUT seconds,
// or ToolchainConfig::timeout_seconds) kills a hung compiler's whole
// process group instead of hanging the caller — essential once a single
// long-lived daemon compiles on behalf of many clients.

#include <string>
#include <vector>

namespace snowflake {

/// Human-readable decoding of a raw waitpid()/pclose() status: "exit code
/// N" for normal exits, "killed by signal N" for signal deaths (so a
/// compiler that exits 1 is reported as exit code 1, not "status 256").
std::string describe_wait_status(int status);

/// Result of running a host command with output capture.
struct CommandResult {
  bool spawn_failed = false;  // fork/exec plumbing itself failed
  bool timed_out = false;     // killed after exceeding the timeout
  int wait_status = 0;        // raw waitpid status (valid when !spawn_failed)
  std::string output;         // combined stdout+stderr (drained live)
};

/// Run `command` through /bin/sh -c, draining combined stdout+stderr
/// concurrently (poll(2), so output larger than a pipe buffer never
/// deadlocks).  `timeout_seconds` > 0 kills the child's process group with
/// SIGKILL once exceeded and sets timed_out; <= 0 waits forever.  Exposed
/// for the toolchain pipe-flood/timeout regression tests.
CommandResult run_host_command(const std::string& command,
                               double timeout_seconds);

struct ToolchainConfig {
  std::string compiler;                 // empty = auto-discover
  std::vector<std::string> extra_flags; // appended after the defaults
  bool openmp = false;                  // add -fopenmp
  bool debug_keep_source = false;       // leave .c next to the .so
  /// Compiler wall-clock budget in seconds; < 0 = $SNOWFLAKE_CC_TIMEOUT
  /// (default 600), 0 = no timeout.
  double timeout_seconds = -1.0;
};

class Toolchain {
public:
  explicit Toolchain(ToolchainConfig config = {});

  /// Discovered (or configured) compiler executable.
  const std::string& compiler() const { return compiler_; }

  /// True if a usable compiler was found.
  bool available() const { return !compiler_.empty(); }

  /// Compile `source` (C11) into a shared object at `so_path`.
  /// Throws ToolchainError with the compiler's stderr on failure.
  void compile_shared_object(const std::string& source,
                             const std::string& so_path) const;

  /// The flags that `compile_shared_object` will pass (for cache keys).
  std::string flags_fingerprint() const;

  /// Effective compile timeout in seconds (0 = none).
  double timeout_seconds() const;

private:
  ToolchainConfig config_;
  std::string compiler_;
};

}  // namespace snowflake
