#pragma once
// Compile-time halo-exchange plan for the simulated distributed backend.
//
// For every barrier wave the plan lists the point-to-point messages that
// must be delivered before the wave's boundary computation may run.  Each
// message carries a contiguous block of dim-0 rows of one grid from the
// rank that OWNS those rows directly to the rank whose halo needs them —
// owner-direct delivery, so a halo deeper than a neighbouring slab simply
// produces messages from further-away ranks ("multi-hop") instead of
// serving stale rows or being rejected.
//
// Which grids appear, and how deep, comes from the dependence footprint
// (analysis/footprint.hpp): grids no earlier wave has written are never
// re-sent, and each grid travels only as deep as the wave actually reads
// it.  The plan also fixes the overlap split margin per wave: rows within
// `margin` of a slab edge may read rows the wave's unpack rewrites, so
// only they belong to the boundary sub-program.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/footprint.hpp"
#include "backend/distsim/decompose.hpp"

namespace snowflake {

/// One point-to-point halo message: `rows` dim-0 rows of grid
/// `grid_index`, read from the sender's local frame at `src_row`, landing
/// in the receiver's local frame at `dst_row`.
struct MsgSpec {
  int src = 0;
  int dst = 0;
  size_t grid_index = 0;
  std::int64_t src_row = 0;
  std::int64_t dst_row = 0;
  std::int64_t rows = 0;
  /// Index of this message in the receiver's per-wave slot array (the
  /// sender delivers straight into that slot's buffer).
  size_t dst_slot = 0;
};

/// All messages of one wave plus the overlap split margin.
struct WaveExchange {
  std::vector<MsgSpec> msgs;
  /// Grids exchanged this wave (indices into the backend's grid order),
  /// parallel to `depths`.
  std::vector<size_t> grids;
  std::vector<std::int64_t> depths;
  /// Max depth of this wave's exchange: rows within `margin` of an
  /// interior slab edge go to the boundary sub-program.
  std::int64_t margin = 0;
  bool any() const { return !msgs.empty(); }
};

struct CommPlan {
  std::vector<WaveExchange> waves;

  /// Total payload bytes of one full exchange cycle (all waves).
  double bytes_per_run(std::int64_t row_doubles) const;
};

/// Build the plan from the footprint and the slab geometry.  `grid_names`
/// fixes the grid_index order.  Messages never cross the global dim-0
/// bounds: halo rows outside [0, extent) do not exist and are never read
/// by a program that is valid on the undecomposed grid.
CommPlan build_comm_plan(const CommFootprint& footprint,
                         const std::vector<std::string>& grid_names,
                         const std::vector<Slab>& slabs, std::int64_t halo);

}  // namespace snowflake
