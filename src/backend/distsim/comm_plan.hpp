#pragma once
// Compile-time halo-exchange plan for the simulated distributed backend.
//
// For every barrier wave the plan lists the point-to-point messages that
// must be delivered before the wave's boundary computation may run.  Each
// message carries one packed box of one grid from the rank that OWNS
// those points directly to the rank whose halo needs them — owner-direct
// delivery, so a halo deeper than a neighbouring block simply produces
// messages from further-away ranks ("multi-hop") instead of serving
// stale data or being rejected.
//
// Messages are planned per neighbour pattern delta in {-1,0,+1}^d: the
// receiver's halo region through that pattern (delta_a != 0 selects the
// out-of-block layer on that side at the pattern's per-axis depth;
// delta_a == 0 selects the owned range) is intersected with every other
// rank's owned block.  |supp(delta)| classifies the message: 1 = face,
// 2 = edge, 3 = corner.  Which patterns exist, and how deep, comes from
// the per-face dependence footprint (analysis/footprint.hpp): grids no
// earlier wave has written are never re-sent, each face travels only as
// deep as the wave actually reads through it, and edge/corner messages
// are planned only when some stencil reads through a diagonal offset.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/footprint.hpp"
#include "backend/distsim/decompose.hpp"

namespace snowflake {

/// One point-to-point halo message: the box `src_box` of grid
/// `grid_index` in the sender's local frame, landing at `dst_box` in the
/// receiver's local frame (same shape, packed dense in transit).
struct MsgSpec {
  int src = 0;
  int dst = 0;
  size_t grid_index = 0;
  Box src_box;  // sender-local coordinates
  Box dst_box;  // receiver-local coordinates
  /// Neighbour pattern of the receiver's halo region this message fills
  /// (components in {-1,0,+1}; receiver-relative).
  Index delta;
  /// |supp(delta)|: 1 = face, 2 = edge, 3 = corner.
  int face_class = 1;
  /// Payload double count (box volume).
  std::int64_t doubles = 0;
  /// Index of this message in the receiver's per-wave slot array (the
  /// sender delivers straight into that slot's buffer).
  size_t dst_slot = 0;
};

/// All messages of one wave plus the overlap carve margins.
struct WaveExchange {
  std::vector<MsgSpec> msgs;
  /// Grids with at least one message this wave (indices into the
  /// backend's grid order), parallel to `depths`.
  std::vector<size_t> grids;
  std::vector<std::int64_t> depths;  // max per-axis depth used per grid
  /// Per-axis {low, high} exchange depth of this wave: points within
  /// margin[a] of an interior block face may read data this wave's
  /// unpacks rewrite, so only they belong to the boundary sub-programs.
  std::vector<std::array<std::int64_t, 2>> margin;
  bool any() const { return !msgs.empty(); }
};

struct CommPlan {
  std::vector<WaveExchange> waves;

  /// Total payload bytes of one full exchange cycle (all waves).
  double bytes_per_run() const;
  /// Payload bytes of messages with the given face class (1..3).
  double bytes_per_run_class(int face_class) const;
};

/// Build the plan from the footprint and the block geometry.
/// `grid_names` fixes the grid_index order; `halo` is the per-axis local
/// halo allocation (0 on unsplit axes), which also caps message depth.
/// Messages never cross the global bounds: halo points outside the grid
/// do not exist and are never read by a program that is valid on the
/// undecomposed grid.
CommPlan build_comm_plan(const CommFootprint& footprint,
                         const std::vector<std::string>& grid_names,
                         const CartDecomp& decomp, const Index& halo);

}  // namespace snowflake
