#include "backend/distsim/distsim_backend.hpp"

#include <cstring>

#include "analysis/dag.hpp"
#include "domain/domain_algebra.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake {

namespace {

struct Slab {
  std::int64_t lo = 0;  // first owned global row of dim 0
  std::int64_t hi = 0;  // exclusive
  std::int64_t len() const { return hi - lo; }
};

/// Per-rank program: one compiled kernel per wave (null when the wave has
/// no work on this rank).
struct RankProgram {
  GridSet grids;  // private local storage: (len + 2H) x S[1..]
  std::vector<std::unique_ptr<CompiledKernel>> wave_kernels;
};

class DistSimKernel final : public CompiledKernel, public DistSimKernelInfo {
public:
  DistSimKernel(const StencilGroup& group, const ShapeMap& shapes,
                const CompileOptions& options) {
    validate_group(group, shapes);
    const Schedule schedule = greedy_schedule(group, shapes);

    // --- scope checks (see header) -------------------------------------
    grid_names_ = std::vector<std::string>();
    const auto grids = group.grids();
    grid_names_.assign(grids.begin(), grids.end());
    global_shape_ = shapes.at(grid_names_.front());
    for (const auto& g : grid_names_) {
      SF_REQUIRE(shapes.at(g) == global_shape_,
                 "distsim requires all grids to share one shape; '" + g +
                     "' differs");
    }
    halo_ = 0;
    for (const auto& s : group.stencils()) {
      for (const auto* r : collect_reads(s.expr())) {
        SF_REQUIRE(r->map().is_pure_offset(),
                   "distsim supports pure-offset reads only (stencil '" +
                       s.name() + "' uses " + r->map().to_string() + ")");
        halo_ = std::max(halo_, std::abs(r->map().dim(0).off));
      }
    }
    for (size_t i = 0; i < group.size(); ++i) {
      SF_REQUIRE(schedule.point_parallel[i],
                 "distsim requires point-parallel stencils; '" +
                     group[i].name() + "' is order-dependent");
    }

    // --- decomposition ---------------------------------------------------
    ranks_ = options.dist_ranks > 0 ? options.dist_ranks : 2;
    const std::int64_t extent = global_shape_[0];
    SF_REQUIRE(extent >= ranks_, "distsim: dim-0 extent " +
                                     std::to_string(extent) + " < " +
                                     std::to_string(ranks_) + " ranks");
    for (int r = 0; r < ranks_; ++r) {
      slabs_.push_back(Slab{extent * r / ranks_, extent * (r + 1) / ranks_});
    }
    // The halo exchange copies exactly one neighbor hop, so a slab thinner
    // than the halo depth would silently serve stale rows for the part of a
    // neighbor's halo it does not own.  Refuse such decompositions cleanly
    // instead of computing wrong values.
    for (int r = 0; r < ranks_; ++r) {
      SF_REQUIRE(
          slabs_[static_cast<size_t>(r)].len() >= halo_,
          "distsim: rank " + std::to_string(r) + " slab [" +
              std::to_string(slabs_[static_cast<size_t>(r)].lo) + ", " +
              std::to_string(slabs_[static_cast<size_t>(r)].hi) + ") has " +
              std::to_string(slabs_[static_cast<size_t>(r)].len()) +
              " rows, fewer than the stencil halo depth " +
              std::to_string(halo_) +
              " — the one-hop halo exchange cannot serve it; use fewer "
              "ranks or a larger dim-0 extent");
    }
    row_doubles_ = 1;
    for (size_t d = 1; d < global_shape_.size(); ++d) {
      row_doubles_ *= global_shape_[d];
    }

    // --- per-rank clipped programs ---------------------------------------
    Backend& cseq = Backend::get("c");
    programs_.resize(static_cast<size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      RankProgram& prog = programs_[static_cast<size_t>(r)];
      Index local_shape = global_shape_;
      local_shape[0] = slabs_[static_cast<size_t>(r)].len() + 2 * halo_;
      ShapeMap local_shapes;
      for (const auto& g : grid_names_) {
        prog.grids.add_zeros(g, local_shape);
        local_shapes[g] = local_shape;
      }
      for (const auto& wave : schedule.waves) {
        StencilGroup local_group;
        for (size_t s : wave.stencils) {
          auto clipped = clip_stencil(group[s], r);
          if (clipped) local_group.append(std::move(*clipped));
        }
        if (local_group.empty()) {
          prog.wave_kernels.push_back(nullptr);
        } else {
          prog.wave_kernels.push_back(
              cseq.compile(local_group, local_shapes, CompileOptions{}));
        }
      }
    }
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    // Validate the *global* environment against the compiled shapes.
    ShapeMap shapes;
    for (const auto& g : grid_names_) shapes[g] = global_shape_;
    const std::vector<double*> global =
        Backend::bind_grids(grids, shapes, grid_names_);
    last_halo_bytes_ = 0.0;

    scatter(global);
    const size_t waves = programs_[0].wave_kernels.size();
    for (size_t w = 0; w < waves; ++w) {
      trace::Span span(
          trace::enabled() ? "distsim:wave:" + std::to_string(w)
                           : std::string(),
          "run");
      if (w > 0 && halo_ > 0) exchange_halos();
#pragma omp parallel for schedule(static)
      for (int r = 0; r < ranks_; ++r) {
        auto& kernel = programs_[static_cast<size_t>(r)].wave_kernels[w];
        if (kernel) kernel->run(programs_[static_cast<size_t>(r)].grids, params);
      }
    }
    gather(global);
  }

  std::string backend_name() const override { return "distsim"; }

  int ranks() const override { return ranks_; }
  std::int64_t halo_depth() const override { return halo_; }
  std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const override {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    for (const auto& s : slabs_) out.emplace_back(s.lo, s.hi);
    return out;
  }
  double last_halo_bytes() const override { return last_halo_bytes_; }

private:
  /// Clip a stencil's global domain to rank r's owned slab and translate
  /// into local coordinates; nullopt when no point lands on the rank.
  std::optional<Stencil> clip_stencil(const Stencil& stencil, int r) const {
    const Slab& slab = slabs_[static_cast<size_t>(r)];
    const ResolvedUnion domain = stencil.domain().resolve(global_shape_);
    const ResolvedRange owned{slab.lo, slab.hi, 1};
    const std::int64_t shift = halo_ - slab.lo;
    std::vector<RectDomain> local_rects;
    for (const auto& rect : domain.rects()) {
      if (rect.empty()) continue;
      const auto clipped = intersect_ranges(rect.range(0), owned);
      if (!clipped) continue;
      Index start(rect.ranges().size()), stop(rect.ranges().size()),
          stride(rect.ranges().size());
      start[0] = clipped->lo + shift;
      stop[0] = clipped->hi + shift;
      stride[0] = clipped->stride;
      for (size_t d = 1; d < rect.ranges().size(); ++d) {
        start[d] = rect.range(static_cast<int>(d)).lo;
        stop[d] = rect.range(static_cast<int>(d)).hi;
        stride[d] = rect.range(static_cast<int>(d)).stride;
      }
      local_rects.emplace_back(std::move(start), std::move(stop),
                               std::move(stride));
    }
    if (local_rects.empty()) return std::nullopt;
    return Stencil(stencil.name() + "@r" + std::to_string(r), stencil.expr(),
                   stencil.output(), DomainUnion(std::move(local_rects)));
  }

  double* local_row(int rank, const std::string& grid, std::int64_t local_row_idx) {
    Grid& g = programs_[static_cast<size_t>(rank)].grids.at(grid);
    return g.data() + local_row_idx * row_doubles_;
  }

  void scatter(const std::vector<double*>& global) {
    for (int r = 0; r < ranks_; ++r) {
      const Slab& slab = slabs_[static_cast<size_t>(r)];
      // Copy owned rows plus any in-bounds halo rows in one shot.
      const std::int64_t g_lo = std::max<std::int64_t>(0, slab.lo - halo_);
      const std::int64_t g_hi =
          std::min<std::int64_t>(global_shape_[0], slab.hi + halo_);
      for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
        double* dst = local_row(r, grid_names_[gi], g_lo - slab.lo + halo_);
        const double* src = global[gi] + g_lo * row_doubles_;
        std::memcpy(dst, src,
                    static_cast<size_t>((g_hi - g_lo) * row_doubles_) *
                        sizeof(double));
      }
    }
  }

  void gather(const std::vector<double*>& global) {
    for (int r = 0; r < ranks_; ++r) {
      const Slab& slab = slabs_[static_cast<size_t>(r)];
      for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
        const double* src = local_row(r, grid_names_[gi], halo_);
        double* dst = global[gi] + slab.lo * row_doubles_;
        std::memcpy(dst, src,
                    static_cast<size_t>(slab.len() * row_doubles_) *
                        sizeof(double));
      }
    }
  }

  void exchange_halos() {
    const size_t bytes =
        static_cast<size_t>(halo_ * row_doubles_) * sizeof(double);
    for (int r = 0; r + 1 < ranks_; ++r) {
      const std::int64_t len_r = slabs_[static_cast<size_t>(r)].len();
      const std::int64_t len_r1 = slabs_[static_cast<size_t>(r + 1)].len();
      (void)len_r1;
      for (const auto& g : grid_names_) {
        // r's last owned rows -> (r+1)'s bottom halo.
        std::memcpy(local_row(r + 1, g, 0), local_row(r, g, len_r),
                    bytes);
        // (r+1)'s first owned rows -> r's top halo.
        std::memcpy(local_row(r, g, halo_ + len_r),
                    local_row(r + 1, g, halo_), bytes);
        last_halo_bytes_ += 2.0 * static_cast<double>(bytes);
      }
    }
  }

  std::vector<std::string> grid_names_;
  Index global_shape_;
  std::int64_t halo_ = 0;
  int ranks_ = 0;
  std::vector<Slab> slabs_;
  std::int64_t row_doubles_ = 1;
  std::vector<RankProgram> programs_;
  double last_halo_bytes_ = 0.0;
};

class DistSimBackend final : public Backend {
public:
  std::string name() const override { return "distsim"; }

  std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) override {
    return std::make_unique<DistSimKernel>(group, shapes, options);
  }
};

}  // namespace

namespace detail {
std::shared_ptr<Backend> make_distsim_backend() {
  return std::make_shared<DistSimBackend>();
}
}  // namespace detail

}  // namespace snowflake
