#include "backend/distsim/distsim_backend.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "analysis/dag.hpp"
#include "analysis/footprint.hpp"
#include "backend/distsim/comm_plan.hpp"
#include "backend/distsim/decompose.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "trace/trace.hpp"

namespace snowflake {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The distsim-safe subset of the caller's options for the per-rank
/// sequential sub-compiles: tiling, fusion, the address pass and the
/// analysis choice carry through; OpenMP scheduling, simd, temporal
/// blocking (one run must stay one sweep per wave so the halo protocol
/// holds) and the distributed knobs themselves are stripped.
CompileOptions rank_options(const CompileOptions& options) {
  CompileOptions safe = options;
  safe.schedule = CompileOptions::Schedule::Tasks;
  safe.simd = false;
  safe.simd_rows = false;  // sub-kernels assert an omp-pragma-free source
  safe.time_tile = 1;
  safe.wavefront = false;
  safe.dist_ranks = 0;
  safe.workgroup = Index();
  return safe;
}

/// Mailbox slot for one expected message: the sender copies the payload
/// into `buf`, then publishes by setting `epoch` under the receiver's
/// mailbox lock.  One slot has exactly one sender and one receiver, so
/// the buffer itself needs no lock.
struct RecvSlot {
  const MsgSpec* spec = nullptr;
  std::vector<double> buf;
  std::uint64_t epoch = 0;
};

/// Sub-programs of one wave on one rank.  `pre` runs before the wave's
/// messages are awaited (the full program when the wave needs no
/// exchange, the interior split under dist_overlap); `post` runs after
/// unpacking (the boundary split, or the full program when overlap is
/// off).  Either may be null when no domain point lands in its window.
struct WaveKernels {
  std::unique_ptr<CompiledKernel> pre;
  std::unique_ptr<CompiledKernel> post;
};

struct RankState {
  GridSet grids;  // private local storage: (len + 2H) x S[1..]
  std::vector<WaveKernels> waves;
  std::vector<std::vector<const MsgSpec*>> sends;  // [wave] -> my sends
  std::vector<std::vector<RecvSlot>> recvs;        // [wave] -> my slots
  std::mutex mail_mu;
  std::condition_variable mail_cv;
  DistSimKernelInfo::RankStats stats;
  std::thread worker;
};

class DistSimKernel final : public CompiledKernel, public DistSimKernelInfo {
public:
  DistSimKernel(const StencilGroup& group, const ShapeMap& shapes,
                const CompileOptions& options) {
    validate_group(group, shapes);
    const Schedule schedule =
        options.barrier_per_stencil ? barrier_per_stencil_schedule(group, shapes)
                                    : greedy_schedule(group, shapes);
    overlap_ = options.dist_overlap;

    // --- scope checks (see header) -------------------------------------
    const auto grids = group.grids();
    grid_names_.assign(grids.begin(), grids.end());
    global_shape_ = shapes.at(grid_names_.front());
    for (const auto& g : grid_names_) {
      SF_REQUIRE(shapes.at(g) == global_shape_,
                 "distsim requires all grids to share one shape; '" + g +
                     "' differs");
    }
    halo_ = 0;
    for (const auto& s : group.stencils()) {
      for (const auto* r : collect_reads(s.expr())) {
        SF_REQUIRE(r->map().is_pure_offset(),
                   "distsim supports pure-offset reads only (stencil '" +
                       s.name() + "' uses " + r->map().to_string() + ")");
        halo_ = std::max(halo_, std::abs(r->map().dim(0).off));
      }
    }
    for (size_t i = 0; i < group.size(); ++i) {
      SF_REQUIRE(schedule.point_parallel[i],
                 "distsim requires point-parallel stencils; '" +
                     group[i].name() + "' is order-dependent");
    }

    // --- decomposition ---------------------------------------------------
    ranks_ = options.dist_ranks > 0 ? options.dist_ranks : 2;
    const std::int64_t extent = global_shape_[0];
    if (extent < ranks_) {
      SF_LOG_WARN("distsim: "
                  << ranks_ << " ranks requested but dim-0 extent is only "
                  << extent << "; clamping to " << extent
                  << " single-row slabs");
      ranks_ = static_cast<int>(extent);
    }
    slabs_ = decompose_dim0(extent, ranks_);
    row_doubles_ = 1;
    for (size_t d = 1; d < global_shape_.size(); ++d) {
      row_doubles_ *= global_shape_[d];
    }

    // --- communication plan ----------------------------------------------
    const CommFootprint footprint =
        comm_footprint(group, schedule, options.dist_prune);
    plan_ = build_comm_plan(footprint, grid_names_, slabs_, halo_);

    // --- per-rank clipped sub-programs -----------------------------------
    Backend& cseq = Backend::get("c");
    const CompileOptions sub_options = rank_options(options);
    ranks_state_ =
        std::vector<std::unique_ptr<RankState>>(static_cast<size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      ranks_state_[static_cast<size_t>(r)] = std::make_unique<RankState>();
      RankState& rs = *ranks_state_[static_cast<size_t>(r)];
      const Slab& slab = slabs_[static_cast<size_t>(r)];
      Index local_shape = global_shape_;
      local_shape[0] = slab.len() + 2 * halo_;
      ShapeMap local_shapes;
      for (const auto& g : grid_names_) {
        rs.grids.add_zeros(g, local_shape);
        local_shapes[g] = local_shape;
      }
      rs.waves.resize(schedule.waves.size());
      rs.sends.resize(schedule.waves.size());
      rs.recvs.resize(schedule.waves.size());
      for (size_t w = 0; w < schedule.waves.size(); ++w) {
        const WaveExchange& ex = plan_.waves[w];
        // Row windows of the pre/post split (global coordinates).
        std::int64_t in_lo = slab.lo, in_hi = slab.hi;
        if (ex.any() && overlap_) {
          if (r > 0) in_lo = std::min(slab.lo + ex.margin, slab.hi);
          if (r + 1 < ranks_) in_hi = std::max(slab.hi - ex.margin, in_lo);
        }
        StencilGroup pre_g, post_g;
        for (size_t s : schedule.waves[w].stencils) {
          const auto add = [&](StencilGroup* dst, std::int64_t lo,
                               std::int64_t hi) {
            auto clipped = clip_stencil_rows(group[s], global_shape_, slab,
                                             halo_, lo, hi);
            if (clipped) dst->append(std::move(*clipped));
          };
          if (!ex.any()) {
            add(&pre_g, slab.lo, slab.hi);
          } else if (!overlap_) {
            add(&post_g, slab.lo, slab.hi);
          } else {
            add(&pre_g, in_lo, in_hi);
            add(&post_g, slab.lo, in_lo);
            add(&post_g, in_hi, slab.hi);
          }
        }
        if (!pre_g.empty()) {
          rs.waves[w].pre = cseq.compile(pre_g, local_shapes, sub_options);
        }
        if (!post_g.empty()) {
          rs.waves[w].post = cseq.compile(post_g, local_shapes, sub_options);
        }
      }
    }

    // --- mailboxes ---------------------------------------------------------
    for (size_t w = 0; w < plan_.waves.size(); ++w) {
      for (const MsgSpec& m : plan_.waves[w].msgs) {
        RankState& src = *ranks_state_[static_cast<size_t>(m.src)];
        RankState& dst = *ranks_state_[static_cast<size_t>(m.dst)];
        src.sends[w].push_back(&m);
        if (dst.recvs[w].size() <= m.dst_slot) {
          dst.recvs[w].resize(m.dst_slot + 1);
        }
        RecvSlot& slot = dst.recvs[w][m.dst_slot];
        slot.spec = &m;
        slot.buf.resize(static_cast<size_t>(m.rows * row_doubles_));
      }
    }

    // --- persistent workers (spawned last: the ctor may throw above) ------
    for (int r = 0; r < ranks_; ++r) {
      ranks_state_[static_cast<size_t>(r)]->worker =
          std::thread([this, r] { worker_loop(r); });
    }
  }

  ~DistSimKernel() override {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      shutdown_ = true;
    }
    run_cv_.notify_all();
    for (auto& rs : ranks_state_) {
      if (rs->worker.joinable()) rs->worker.join();
    }
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    // Validate the *global* environment against the compiled shapes.
    ShapeMap shapes;
    for (const auto& g : grid_names_) shapes[g] = global_shape_;
    const std::vector<double*> global =
        Backend::bind_grids(grids, shapes, grid_names_);

    {
      std::lock_guard<std::mutex> lock(run_mu_);
      run_global_ = &global;
      run_params_ = &params;
      done_count_ = 0;
      ++epoch_;
    }
    run_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      done_cv_.wait(lock, [&] { return done_count_ == ranks_; });
    }

    last_halo_bytes_ = 0.0;
    last_halo_messages_ = 0;
    for (const auto& rs : ranks_state_) {
      last_halo_bytes_ += rs->stats.bytes_sent;
      last_halo_messages_ += rs->stats.messages_sent;
    }
    auto& collector = trace::TraceCollector::instance();
    collector.increment("distsim.halo_bytes", last_halo_bytes_);
    collector.increment("distsim.halo_messages",
                        static_cast<double>(last_halo_messages_));
  }

  std::string backend_name() const override { return "distsim"; }

  /// Concatenated generated C of rank 0's sub-programs (tests assert the
  /// per-rank compiles stay sequential — no OpenMP pragma may appear).
  std::string source() const override {
    std::string out;
    const RankState& rs = *ranks_state_.front();
    for (size_t w = 0; w < rs.waves.size(); ++w) {
      for (const CompiledKernel* k :
           {rs.waves[w].pre.get(), rs.waves[w].post.get()}) {
        if (k != nullptr) out += k->source();
      }
    }
    return out;
  }

  int ranks() const override { return ranks_; }
  std::int64_t halo_depth() const override { return halo_; }
  std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const override {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    for (const auto& s : slabs_) out.emplace_back(s.lo, s.hi);
    return out;
  }
  double last_halo_bytes() const override { return last_halo_bytes_; }
  std::int64_t last_halo_messages() const override {
    return last_halo_messages_;
  }
  std::vector<RankStats> last_rank_stats() const override {
    std::vector<RankStats> out;
    for (const auto& rs : ranks_state_) out.push_back(rs->stats);
    return out;
  }
  size_t wave_count() const override { return plan_.waves.size(); }
  std::vector<std::string> exchanged_grids(size_t wave) const override {
    std::vector<std::string> out;
    if (wave >= plan_.waves.size()) return out;
    for (size_t gi : plan_.waves[wave].grids) out.push_back(grid_names_[gi]);
    return out;
  }

private:
  double* local_row(int rank, size_t grid_index, std::int64_t local_row_idx) {
    Grid& g = ranks_state_[static_cast<size_t>(rank)]->grids.at(
        grid_names_[grid_index]);
    return g.data() + local_row_idx * row_doubles_;
  }

  // --- SPMD per-rank program (runs on the worker threads) -----------------

  void worker_loop(int r) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::vector<double*>* global = nullptr;
      const ParamMap* params = nullptr;
      {
        std::unique_lock<std::mutex> lock(run_mu_);
        run_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
        if (shutdown_) return;
        seen = epoch_;
        global = run_global_;
        params = run_params_;
      }
      run_rank(r, seen, *global, *params);
      {
        std::lock_guard<std::mutex> lock(run_mu_);
        ++done_count_;
      }
      done_cv_.notify_all();
    }
  }

  void run_rank(int r, std::uint64_t epoch, const std::vector<double*>& global,
                const ParamMap& params) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    rs.stats = RankStats{};
    const bool traced = trace::enabled();
    const std::string tag = traced ? "distsim:r" + std::to_string(r) : "";

    scatter_rank(r, global);
    // Every rank must finish reading the global grids before any rank's
    // gather may overwrite them (a comm-free rank could race ahead).
    barrier_wait();

    for (size_t w = 0; w < rs.waves.size(); ++w) {
      const WaveExchange& ex = plan_.waves[w];
      if (ex.any()) post_sends(r, w, epoch);
      if (rs.waves[w].pre) {
        trace::Span span(traced ? tag + ":w" + std::to_string(w) + ":compute"
                                : std::string(),
                         "dist-compute");
        const auto t0 = std::chrono::steady_clock::now();
        rs.waves[w].pre->run(rs.grids, params);
        rs.stats.compute_seconds += seconds_since(t0);
      }
      if (ex.any()) await_and_unpack(r, w, epoch);
      if (rs.waves[w].post) {
        trace::Span span(traced ? tag + ":w" + std::to_string(w) + ":boundary"
                                : std::string(),
                         "dist-compute");
        const auto t0 = std::chrono::steady_clock::now();
        rs.waves[w].post->run(rs.grids, params);
        rs.stats.compute_seconds += seconds_since(t0);
      }
    }
    gather_rank(r, global);
  }

  void post_sends(int r, size_t w, std::uint64_t epoch) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    if (rs.sends[w].empty()) return;
    trace::Span span(trace::enabled() ? "distsim:r" + std::to_string(r) +
                                            ":w" + std::to_string(w) + ":send"
                                      : std::string(),
                     "dist-comm");
    const auto t0 = std::chrono::steady_clock::now();
    double bytes = 0.0;
    for (const MsgSpec* m : rs.sends[w]) {
      RankState& dst = *ranks_state_[static_cast<size_t>(m->dst)];
      RecvSlot& slot = dst.recvs[w][m->dst_slot];
      const size_t doubles = static_cast<size_t>(m->rows * row_doubles_);
      std::memcpy(slot.buf.data(), local_row(r, m->grid_index, m->src_row),
                  doubles * sizeof(double));
      {
        std::lock_guard<std::mutex> lock(dst.mail_mu);
        slot.epoch = epoch;
      }
      dst.mail_cv.notify_all();
      bytes += static_cast<double>(doubles) * sizeof(double);
      ++rs.stats.messages_sent;
    }
    rs.stats.bytes_sent += bytes;
    rs.stats.pack_seconds += seconds_since(t0);
    span.counter("bytes", bytes);
  }

  void await_and_unpack(int r, size_t w, std::uint64_t epoch) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    if (rs.recvs[w].empty()) return;
    trace::Span span(trace::enabled() ? "distsim:r" + std::to_string(r) +
                                            ":w" + std::to_string(w) + ":wait"
                                      : std::string(),
                     "dist-comm");
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(rs.mail_mu);
      rs.mail_cv.wait(lock, [&] {
        for (const RecvSlot& slot : rs.recvs[w]) {
          if (slot.epoch != epoch) return false;
        }
        return true;
      });
    }
    for (const RecvSlot& slot : rs.recvs[w]) {
      std::memcpy(local_row(r, slot.spec->grid_index, slot.spec->dst_row),
                  slot.buf.data(),
                  static_cast<size_t>(slot.spec->rows * row_doubles_) *
                      sizeof(double));
    }
    rs.stats.wait_seconds += seconds_since(t0);
  }

  void scatter_rank(int r, const std::vector<double*>& global) {
    const Slab& slab = slabs_[static_cast<size_t>(r)];
    // Copy owned rows plus any in-bounds halo rows in one shot.
    const std::int64_t g_lo = std::max<std::int64_t>(0, slab.lo - halo_);
    const std::int64_t g_hi =
        std::min<std::int64_t>(global_shape_[0], slab.hi + halo_);
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      double* dst = local_row(r, gi, g_lo - slab.lo + halo_);
      const double* src = global[gi] + g_lo * row_doubles_;
      std::memcpy(dst, src,
                  static_cast<size_t>((g_hi - g_lo) * row_doubles_) *
                      sizeof(double));
    }
  }

  void gather_rank(int r, const std::vector<double*>& global) {
    const Slab& slab = slabs_[static_cast<size_t>(r)];
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      const double* src = local_row(r, gi, halo_);
      double* dst = global[gi] + slab.lo * row_doubles_;
      std::memcpy(dst, src,
                  static_cast<size_t>(slab.len() * row_doubles_) *
                      sizeof(double));
    }
  }

  void barrier_wait() {
    std::unique_lock<std::mutex> lock(run_mu_);
    if (++barrier_count_ == ranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      const std::uint64_t gen = barrier_gen_;
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

  std::vector<std::string> grid_names_;
  Index global_shape_;
  std::int64_t halo_ = 0;
  int ranks_ = 0;
  bool overlap_ = true;
  std::vector<Slab> slabs_;
  std::int64_t row_doubles_ = 1;
  CommPlan plan_;
  std::vector<std::unique_ptr<RankState>> ranks_state_;

  // Run orchestration (workers block on run_cv_ between runs).
  std::mutex run_mu_;
  std::condition_variable run_cv_, done_cv_, barrier_cv_;
  std::uint64_t epoch_ = 0;
  int done_count_ = 0;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  bool shutdown_ = false;
  const std::vector<double*>* run_global_ = nullptr;
  const ParamMap* run_params_ = nullptr;

  double last_halo_bytes_ = 0.0;
  std::int64_t last_halo_messages_ = 0;
};

class DistSimBackend final : public Backend {
public:
  std::string name() const override { return "distsim"; }

  std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) override {
    return std::make_unique<DistSimKernel>(group, shapes, options);
  }
};

}  // namespace

namespace detail {
std::shared_ptr<Backend> make_distsim_backend() {
  return std::make_shared<DistSimBackend>();
}
}  // namespace detail

}  // namespace snowflake
