#include "backend/distsim/distsim_backend.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/dag.hpp"
#include "analysis/footprint.hpp"
#include "backend/distsim/comm_plan.hpp"
#include "backend/distsim/decompose.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "trace/trace.hpp"

namespace snowflake {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The distsim-safe subset of the caller's options for the per-rank
/// sequential sub-compiles: tiling, fusion, the address pass and the
/// analysis choice carry through; OpenMP scheduling, simd, temporal
/// blocking (one run must stay one sweep per wave so the halo protocol
/// holds) and the distributed knobs themselves are stripped.
CompileOptions rank_options(const CompileOptions& options) {
  CompileOptions safe = options;
  safe.schedule = CompileOptions::Schedule::Tasks;
  safe.simd = false;
  safe.simd_rows = false;  // sub-kernels assert an omp-pragma-free source
  safe.time_tile = 1;
  safe.wavefront = false;
  safe.dist_ranks = 0;
  safe.dist_grid = Index();
  safe.dist_pipeline = true;
  safe.workgroup = Index();
  return safe;
}

/// Row-major strides of a shape (innermost stride 1).
std::vector<std::int64_t> shape_strides(const Index& shape) {
  std::vector<std::int64_t> s(shape.size(), 1);
  for (size_t a = shape.size(); a-- > 1;) s[a - 1] = s[a] * shape[a];
  return s;
}

std::int64_t offset_of(const Index& point,
                       const std::vector<std::int64_t>& strides) {
  std::int64_t off = 0;
  for (size_t a = 0; a < point.size(); ++a) off += point[a] * strides[a];
  return off;
}

/// Copy a box's contents between two strided layouts sharing the box
/// extents; both sides must be unit-stride on the innermost axis.
void copy_box(double* dst, const std::vector<std::int64_t>& dstride,
              const double* src, const std::vector<std::int64_t>& sstride,
              const Index& extent, size_t axis) {
  if (axis + 1 == extent.size()) {
    std::memcpy(dst, src, static_cast<size_t>(extent[axis]) * sizeof(double));
    return;
  }
  for (std::int64_t i = 0; i < extent[axis]; ++i) {
    copy_box(dst + i * dstride[axis], dstride, src + i * sstride[axis],
             sstride, extent, axis + 1);
  }
}

std::int64_t cells_of(const Index& shape) {
  std::int64_t n = 1;
  for (std::int64_t e : shape) n *= e;
  return n;
}

double reduce_identity(ReduceOp op) {
  return op == ReduceOp::Max ? -std::numeric_limits<double>::infinity() : 0.0;
}

double reduce_combine(ReduceOp op, double a, double b) {
  return op == ReduceOp::Max ? std::fmax(a, b) : a + b;
}

/// Mailbox slot for one expected message: the sender copies the payload
/// into `buf`, then publishes by setting `epoch` under the receiver's
/// mailbox lock.  One slot has exactly one sender and one receiver, so
/// the buffer itself needs no lock.
struct RecvSlot {
  const MsgSpec* spec = nullptr;
  std::vector<double> buf;
  std::uint64_t epoch = 0;
};

/// Disjoint carve regions of one rank's share of one wave.  Whole is the
/// uncarved block (exchange-free waves, the no-overlap ablation, single
/// rank); Core/Ring decouple the interior from the messages by two halo
/// depths; Face/Diag are the shells whose reads cross into halo layers.
enum class RegionKind { Whole, Core, Ring, Face, Diag };

struct RegionKernel {
  std::unique_ptr<CompiledKernel> kernel;
  size_t wave = 0;
  RegionKind kind = RegionKind::Whole;
  bool boundary = false;  // span naming: kernels gated on halo messages
};

/// One reduction wave's rank-local share: the partial kernel over the
/// owned block (null when the clipped domain is empty) and the combine
/// metadata for the simulated allreduce.
struct ReducePartial {
  std::unique_ptr<CompiledKernel> kernel;
  size_t grid = 0;  // index of the one-cell result grid
  ReduceOp op = ReduceOp::Sum;
};

/// One node of a rank's dependency graph.  Edges (deps_init /
/// dependents) are fixed at compile time from box intersections.
struct Task {
  enum class Kind { Send, Unpack, Compute, Reduce };
  Kind kind = Kind::Compute;
  size_t wave = 0;
  const MsgSpec* msg = nullptr;  // Send
  size_t slot = 0;               // Unpack: index into recvs[wave]
  size_t kernel = 0;             // Compute: index into kernels
  std::string face_key;          // Unpack: stall attribution label
  int deps_init = 0;
  std::vector<size_t> dependents;
};

/// Compile-time read/write geometry of a task (rank-local frames).
struct TaskGeom {
  std::vector<std::pair<size_t, Box>> writes;
  std::vector<std::pair<size_t, Box>> reads;
};

bool geom_overlap(const std::vector<std::pair<size_t, Box>>& a,
                  const std::vector<std::pair<size_t, Box>>& b) {
  for (const auto& [ga, boxa] : a) {
    for (const auto& [gb, boxb] : b) {
      if (ga == gb && boxes_overlap(boxa, boxb)) return true;
    }
  }
  return false;
}

struct RankState {
  GridSet grids;  // private local storage: block + halo on split axes
  Index local_shape;
  std::vector<std::int64_t> strides;
  std::vector<RegionKernel> kernels;
  std::map<size_t, ReducePartial> reduce_partials;  // [reduction wave]
  std::vector<std::vector<RecvSlot>> recvs;  // [wave] -> my slots
  std::vector<Task> tasks;                   // execution-priority order
  std::vector<int> wave_task_count;
  // Runtime scratch, touched only by this rank's worker thread.
  std::vector<int> remaining;
  std::vector<char> done;
  std::vector<int> wave_remaining;
  std::mutex mail_mu;
  std::condition_variable mail_cv;
  DistSimKernelInfo::RankStats stats;
  std::thread worker;
};

class DistSimKernel final : public CompiledKernel, public DistSimKernelInfo {
public:
  DistSimKernel(const StencilGroup& group, const ShapeMap& shapes,
                const CompileOptions& options) {
    validate_group(group, shapes);
    const Schedule schedule =
        options.barrier_per_stencil ? barrier_per_stencil_schedule(group, shapes)
                                    : greedy_schedule(group, shapes);
    overlap_ = options.dist_overlap;
    pipeline_ = options.dist_pipeline;

    // --- scope checks (see header) -------------------------------------
    const auto grids = group.grids();
    grid_names_.assign(grids.begin(), grids.end());
    // Reduction results are one-cell grids replicated on every rank (they
    // move through the simulated allreduce, never as halo messages), so
    // they are exempt from the one-shape rule.
    std::set<std::string> reduce_outputs;
    for (const auto& s : group.stencils()) {
      if (s.is_reduction()) reduce_outputs.insert(s.output());
    }
    has_reduce_ = !reduce_outputs.empty();
    replicated_.assign(grid_names_.size(), 0);
    grid_shapes_.resize(grid_names_.size());
    bool have_shape = false;
    for (size_t i = 0; i < grid_names_.size(); ++i) {
      const std::string& g = grid_names_[i];
      grid_shapes_[i] = shapes.at(g);
      if (reduce_outputs.count(g) > 0) {
        replicated_[i] = 1;
        continue;
      }
      if (!have_shape) {
        global_shape_ = grid_shapes_[i];
        have_shape = true;
      }
      SF_REQUIRE(grid_shapes_[i] == global_shape_,
                 "distsim requires all field grids to share one shape; '" + g +
                     "' differs");
    }
    SF_REQUIRE(have_shape, "distsim requires at least one field grid");
    if (has_reduce_ && pipeline_) {
      SF_LOG_INFO(
          "distsim: group contains reductions; forcing BSP wave execution "
          "(dist_pipeline disabled) so the allreduce barriers stay globally "
          "ordered");
      pipeline_ = false;
    }
    const size_t dims = global_shape_.size();
    Index axis_halo(dims, 0);
    halo_ = 0;
    for (const auto& s : group.stencils()) {
      for (const auto* r : collect_reads(s.expr())) {
        SF_REQUIRE(r->map().is_pure_offset(),
                   "distsim supports pure-offset reads only (stencil '" +
                       s.name() + "' uses " + r->map().to_string() + ")");
        for (size_t a = 0; a < dims; ++a) {
          const std::int64_t off =
              std::abs(r->map().dim(static_cast<int>(a)).off);
          axis_halo[a] = std::max(axis_halo[a], off);
          halo_ = std::max(halo_, off);
        }
      }
    }
    for (size_t i = 0; i < group.size(); ++i) {
      SF_REQUIRE(schedule.point_parallel[i] || group[i].is_reduction(),
                 "distsim requires point-parallel stencils; '" +
                     group[i].name() + "' is order-dependent");
    }

    // --- decomposition ---------------------------------------------------
    Index pgrid = resolve_process_grid(options, dims);
    ranks_ = 1;
    for (std::int64_t g : pgrid) ranks_ *= static_cast<int>(g);
    decomp_ = decompose_cartesian(global_shape_, pgrid);
    halo_vec_.assign(dims, 0);
    for (size_t a = 0; a < dims; ++a) {
      if (pgrid[a] > 1) halo_vec_[a] = axis_halo[a];
    }

    // --- communication plan ----------------------------------------------
    CommFootprint footprint =
        comm_footprint(group, schedule, options.dist_prune);
    // Replicated reduction results never travel as halo messages, even in
    // the unpruned copy-everything baseline (their one-cell shape has no
    // block geometry to exchange).
    for (auto& wave : footprint.waves) {
      std::erase_if(wave, [&](const WaveGridDepth& wg) {
        return reduce_outputs.count(wg.grid) > 0;
      });
    }
    plan_ = build_comm_plan(footprint, grid_names_, decomp_, halo_vec_);

    // Per-stencil read extents and output grids (grid-index keyed) for
    // the geometric dependency edges.
    std::map<std::string, size_t> gindex;
    for (size_t i = 0; i < grid_names_.size(); ++i) gindex[grid_names_[i]] = i;
    std::vector<size_t> stencil_output(group.size());
    std::vector<std::map<size_t, std::vector<std::array<std::int64_t, 2>>>>
        stencil_reads(group.size());
    for (size_t s = 0; s < group.size(); ++s) {
      stencil_output[s] = gindex.at(group[s].output());
      for (const auto* r : collect_reads(group[s].expr())) {
        auto& ext = stencil_reads[s][gindex.at(r->grid())];
        if (ext.empty()) ext.assign(dims, {0, 0});
        for (size_t a = 0; a < dims; ++a) {
          const std::int64_t off = r->map().dim(static_cast<int>(a)).off;
          ext[a][0] = std::min(ext[a][0], off);
          ext[a][1] = std::max(ext[a][1], off);
        }
      }
    }

    // --- per-rank carved sub-programs and dependency graphs ---------------
    Backend& cseq = Backend::get("c");
    const CompileOptions sub_options = rank_options(options);
    ranks_state_ =
        std::vector<std::unique_ptr<RankState>>(static_cast<size_t>(ranks_));
    coords_str_.resize(static_cast<size_t>(ranks_));
    for (int r = 0; r < ranks_; ++r) {
      const Index coords = decomp_.coords(r);
      std::string& cs = coords_str_[static_cast<size_t>(r)];
      for (size_t a = 0; a < coords.size(); ++a) {
        cs += (a != 0 ? "x" : "") + std::to_string(coords[a]);
      }
      build_rank(r, group, schedule, cseq, sub_options);
    }

    // --- mailboxes ---------------------------------------------------------
    for (size_t w = 0; w < plan_.waves.size(); ++w) {
      for (const MsgSpec& m : plan_.waves[w].msgs) {
        RankState& dst = *ranks_state_[static_cast<size_t>(m.dst)];
        if (dst.recvs[w].size() <= m.dst_slot) {
          dst.recvs[w].resize(m.dst_slot + 1);
        }
        RecvSlot& slot = dst.recvs[w][m.dst_slot];
        slot.spec = &m;
        slot.buf.resize(static_cast<size_t>(m.doubles));
      }
    }
    for (int r = 0; r < ranks_; ++r) {
      build_tasks(r, schedule, stencil_output, stencil_reads);
    }

    // --- persistent workers (spawned last: the ctor may throw above) ------
    for (int r = 0; r < ranks_; ++r) {
      ranks_state_[static_cast<size_t>(r)]->worker =
          std::thread([this, r] { worker_loop(r); });
    }
  }

  ~DistSimKernel() override {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      shutdown_ = true;
    }
    run_cv_.notify_all();
    for (auto& rs : ranks_state_) {
      if (rs->worker.joinable()) rs->worker.join();
    }
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    // Validate the *global* environment against the compiled shapes.
    ShapeMap shapes;
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      shapes[grid_names_[gi]] = grid_shapes_[gi];
    }
    const std::vector<double*> global =
        Backend::bind_grids(grids, shapes, grid_names_);

    {
      std::lock_guard<std::mutex> lock(run_mu_);
      run_global_ = &global;
      run_params_ = &params;
      done_count_ = 0;
      ++epoch_;
    }
    run_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(run_mu_);
      done_cv_.wait(lock, [&] { return done_count_ == ranks_; });
    }

    last_halo_bytes_ = 0.0;
    last_halo_messages_ = 0;
    double stall = 0.0;
    for (const auto& rs : ranks_state_) {
      last_halo_bytes_ += rs->stats.bytes_sent;
      last_halo_messages_ += rs->stats.messages_sent;
      stall += rs->stats.stall_seconds;
    }
    for (int c = 1; c <= 3; ++c) {
      last_class_bytes_[static_cast<size_t>(c)] =
          plan_.bytes_per_run_class(c);
    }
    auto& collector = trace::TraceCollector::instance();
    collector.increment("distsim.halo_bytes", last_halo_bytes_);
    collector.increment("distsim.halo_messages",
                        static_cast<double>(last_halo_messages_));
    collector.increment("distsim.halo_bytes.face", last_class_bytes_[1]);
    collector.increment("distsim.halo_bytes.edge", last_class_bytes_[2]);
    collector.increment("distsim.halo_bytes.corner", last_class_bytes_[3]);
    collector.increment("distsim.stall_seconds", stall);
  }

  std::string backend_name() const override { return "distsim"; }

  /// Concatenated generated C of rank 0's sub-programs (tests assert the
  /// per-rank compiles stay sequential — no OpenMP pragma may appear).
  std::string source() const override {
    std::string out;
    for (const RegionKernel& k : ranks_state_.front()->kernels) {
      out += k.kernel->source();
    }
    for (const auto& [w, rp] : ranks_state_.front()->reduce_partials) {
      if (rp.kernel) out += rp.kernel->source();
    }
    return out;
  }

  int ranks() const override { return ranks_; }
  int requested_ranks() const override { return requested_ranks_; }
  Index rank_grid() const override { return decomp_.grid; }
  std::int64_t halo_depth() const override { return halo_; }
  std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const override {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    for (int r = 0; r < ranks_; ++r) {
      const Box b = decomp_.block(r);
      out.emplace_back(b.lo[0], b.hi[0]);
    }
    return out;
  }
  std::vector<std::pair<Index, Index>> blocks() const override {
    std::vector<std::pair<Index, Index>> out;
    for (int r = 0; r < ranks_; ++r) {
      Box b = decomp_.block(r);
      out.emplace_back(std::move(b.lo), std::move(b.hi));
    }
    return out;
  }
  double last_halo_bytes() const override { return last_halo_bytes_; }
  double last_halo_bytes_class(int face_class) const override {
    if (face_class < 1 || face_class > 3) return 0.0;
    return last_class_bytes_[static_cast<size_t>(face_class)];
  }
  std::int64_t last_halo_messages() const override {
    return last_halo_messages_;
  }
  std::vector<RankStats> last_rank_stats() const override {
    std::vector<RankStats> out;
    for (const auto& rs : ranks_state_) out.push_back(rs->stats);
    return out;
  }
  size_t wave_count() const override { return plan_.waves.size(); }
  std::vector<std::string> exchanged_grids(size_t wave) const override {
    std::vector<std::string> out;
    if (wave >= plan_.waves.size()) return out;
    for (size_t gi : plan_.waves[wave].grids) out.push_back(grid_names_[gi]);
    return out;
  }

private:
  // --- compile-time construction ----------------------------------------

  /// Resolve CompileOptions::{dist_grid, dist_ranks} into a per-axis
  /// process grid, clamping infeasible requests with one logged warning.
  Index resolve_process_grid(const CompileOptions& options, size_t dims) {
    const Index& dg = options.dist_grid;
    if (dg.empty()) {
      // Legacy dim-0 slabs.
      int r = options.dist_ranks > 0 ? options.dist_ranks : 2;
      requested_ranks_ = r;
      const std::int64_t extent = global_shape_[0];
      if (extent < r) {
        SF_LOG_WARN("distsim: "
                    << r << " ranks requested but dim-0 extent is only "
                    << extent << "; clamping to " << extent
                    << " single-row slabs");
        r = static_cast<int>(extent);
      }
      Index pgrid(dims, 1);
      pgrid[0] = r;
      return pgrid;
    }
    for (std::int64_t g : dg) {
      SF_REQUIRE(g >= 1, "distsim: dist_grid entries must be >= 1");
    }
    if (dg.size() == 1) {
      // Bare rank count: auto-factorize to the minimum modeled surface.
      requested_ranks_ = static_cast<int>(dg[0]);
      const Index pgrid = auto_factor_grid(global_shape_, requested_ranks_);
      int total = 1;
      for (std::int64_t g : pgrid) total *= static_cast<int>(g);
      if (total != requested_ranks_) {
        SF_LOG_WARN("distsim: no feasible factorization of "
                    << requested_ranks_ << " ranks; clamping to " << total);
      }
      return pgrid;
    }
    SF_REQUIRE(dg.size() == dims,
               "distsim: dist_grid rank " + std::to_string(dg.size()) +
                   " does not match grid rank " + std::to_string(dims));
    Index pgrid = dg;
    requested_ranks_ = 1;
    bool clamped = false;
    for (size_t a = 0; a < dims; ++a) {
      requested_ranks_ *= static_cast<int>(pgrid[a]);
      if (pgrid[a] > global_shape_[a]) {
        pgrid[a] = global_shape_[a];
        clamped = true;
      }
    }
    if (clamped) {
      std::string s;
      for (size_t a = 0; a < dims; ++a) {
        s += (a != 0 ? "x" : "") + std::to_string(pgrid[a]);
      }
      SF_LOG_WARN("distsim: dist_grid exceeds the grid extents; clamping to "
                  << s);
    }
    return pgrid;
  }

  Box local_box(const Box& global, const Box& block) const {
    Box out = global;
    for (size_t a = 0; a < out.lo.size(); ++a) {
      out.lo[a] += halo_vec_[a] - block.lo[a];
      out.hi[a] += halo_vec_[a] - block.lo[a];
    }
    return out;
  }

  /// Allocate rank `r`'s grids and compile its carved region kernels.
  void build_rank(int r, const StencilGroup& group, const Schedule& schedule,
                  Backend& cseq, const CompileOptions& sub_options) {
    ranks_state_[static_cast<size_t>(r)] = std::make_unique<RankState>();
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    const Box block = decomp_.block(r);
    const size_t dims = global_shape_.size();

    rs.local_shape = global_shape_;
    for (size_t a = 0; a < dims; ++a) {
      rs.local_shape[a] = block.hi[a] - block.lo[a] + 2 * halo_vec_[a];
    }
    rs.strides = shape_strides(rs.local_shape);
    ShapeMap local_shapes;
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      const Index& shape = replicated_[gi] ? grid_shapes_[gi] : rs.local_shape;
      rs.grids.add_zeros(grid_names_[gi], shape);
      local_shapes[grid_names_[gi]] = shape;
    }
    rs.recvs.resize(schedule.waves.size());

    // Carve cut points per axis: [x0,x1) low shell, [x1,x2) low ring,
    // [x2,x3) core, [x3,x4) high ring, [x4,x5) high shell.  Margins are
    // the axis halo on sides with neighbours; clamped monotone so thin
    // blocks degrade to empty cells, never overlapping ones.
    std::vector<std::array<std::int64_t, 6>> cut(dims);
    for (size_t a = 0; a < dims; ++a) {
      const std::int64_t lo = block.lo[a], hi = block.hi[a];
      const std::int64_t ml = lo > 0 ? halo_vec_[a] : 0;
      const std::int64_t mh = hi < global_shape_[a] ? halo_vec_[a] : 0;
      auto& x = cut[a];
      x[0] = lo;
      x[1] = std::min(lo + ml, hi);
      x[5] = hi;
      x[4] = std::max(hi - mh, x[1]);
      x[2] = std::min(x[1] + ml, x[4]);
      x[3] = std::max(x[4] - mh, x[2]);
    }
    const auto cell = [&](size_t a, int which) -> std::array<std::int64_t, 2> {
      // which: 0 = low shell, 1 = low ring, 2 = core, 3 = high ring,
      // 4 = high shell, 5 = shell middle [x1,x4).
      const auto& x = cut[a];
      switch (which) {
        case 0: return {x[0], x[1]};
        case 1: return {x[1], x[2]};
        case 2: return {x[2], x[3]};
        case 3: return {x[3], x[4]};
        case 4: return {x[4], x[5]};
        default: return {x[1], x[4]};
      }
    };
    const auto pattern_box = [&](const Index& delta, bool shell) {
      Box b;
      b.lo.resize(dims);
      b.hi.resize(dims);
      for (size_t a = 0; a < dims; ++a) {
        std::array<std::int64_t, 2> c;
        if (delta[a] < 0) {
          c = cell(a, shell ? 0 : 1);
        } else if (delta[a] > 0) {
          c = cell(a, shell ? 4 : 3);
        } else {
          c = cell(a, shell ? 5 : 2);
        }
        b.lo[a] = c[0];
        b.hi[a] = c[1];
      }
      return b;
    };

    // Enumerate the nonzero sign patterns once.
    std::vector<Index> patterns;
    {
      Index delta(dims, -1);
      for (bool more = true; more;) {
        bool zero = true;
        for (std::int64_t c : delta) zero &= c == 0;
        if (!zero) patterns.push_back(delta);
        size_t a = dims;
        more = false;
        while (a-- > 0) {
          if (delta[a] < 1) {
            ++delta[a];
            more = true;
            break;
          }
          delta[a] = -1;
        }
      }
    }

    const auto add_kernel = [&](size_t w, RegionKind kind, bool boundary,
                                const std::vector<Box>& boxes) {
      StencilGroup sub;
      for (const Box& box : boxes) {
        if (box.empty()) continue;
        for (size_t s : schedule.waves[w].stencils) {
          auto clipped = clip_stencil_box(group[s], global_shape_, block,
                                          halo_vec_, box);
          if (clipped) sub.append(std::move(*clipped));
        }
      }
      if (sub.empty()) return;
      RegionKernel rk;
      rk.kernel = cseq.compile(sub, local_shapes, sub_options);
      rk.wave = w;
      rk.kind = kind;
      rk.boundary = boundary;
      rs.kernels.push_back(std::move(rk));
      kernel_regions_[static_cast<size_t>(r)].push_back(boxes);
    };

    kernel_regions_[static_cast<size_t>(r)] = {};
    for (size_t w = 0; w < schedule.waves.size(); ++w) {
      // A reduction is always a singleton wave (the schedulers end the
      // point-parallel region at one).  Its rank share is one whole-block
      // partial kernel, combined later by the allreduce task — never
      // carved: each region kernel would re-initialize the accumulator.
      bool reduce_wave = false;
      for (size_t s : schedule.waves[w].stencils) {
        reduce_wave = reduce_wave || group[s].is_reduction();
      }
      if (reduce_wave) {
        SF_ASSERT(schedule.waves[w].stencils.size() == 1,
                  "reduction waves are singletons by schedule construction");
        const Stencil& s = group[schedule.waves[w].stencils[0]];
        ReducePartial rp;
        for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
          if (grid_names_[gi] == s.output()) rp.grid = gi;
        }
        rp.op = s.reduction().op();
        if (auto clipped =
                clip_stencil_box(s, global_shape_, block, halo_vec_, block)) {
          StencilGroup sub;
          sub.append(std::move(*clipped));
          rp.kernel = cseq.compile(sub, local_shapes, sub_options);
        }
        rs.reduce_partials.emplace(w, std::move(rp));
        continue;
      }
      const WaveExchange& ex = plan_.waves[w];
      const Box whole = block;
      if (!ex.any() || !overlap_ || ranks_ < 2) {
        add_kernel(w, RegionKind::Whole, ex.any() && !overlap_, {whole});
        continue;
      }
      // Shells first (they gate the next wave's sends), then the merged
      // diagonals, then the ring and core.
      for (size_t a = 0; a < dims; ++a) {
        for (int side = 0; side < 2; ++side) {
          Index delta(dims, 0);
          delta[a] = side == 0 ? -1 : 1;
          add_kernel(w, RegionKind::Face, true,
                     {pattern_box(delta, /*shell=*/true)});
        }
      }
      std::vector<Box> diag;
      for (const Index& delta : patterns) {
        int supp = 0;
        for (std::int64_t c : delta) supp += c != 0;
        if (supp >= 2) diag.push_back(pattern_box(delta, /*shell=*/true));
      }
      add_kernel(w, RegionKind::Diag, true, diag);
      std::vector<Box> ring;
      for (const Index& delta : patterns) {
        ring.push_back(pattern_box(delta, /*shell=*/false));
      }
      add_kernel(w, RegionKind::Ring, false, ring);
      Box core;
      core.lo.resize(dims);
      core.hi.resize(dims);
      for (size_t a = 0; a < dims; ++a) {
        core.lo[a] = cut[a][2];
        core.hi[a] = cut[a][3];
      }
      add_kernel(w, RegionKind::Core, false, {core});
    }
  }

  /// Build rank `r`'s task list (sends, unpacks, region kernels in wave /
  /// priority order) and its dependency edges from box intersections.
  void build_tasks(
      int r, const Schedule& schedule,
      const std::vector<size_t>& stencil_output,
      const std::vector<std::map<size_t,
                                 std::vector<std::array<std::int64_t, 2>>>>&
          stencil_reads) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    const Box block = decomp_.block(r);
    const size_t dims = global_shape_.size();
    const size_t waves = schedule.waves.size();

    // Per-wave aggregated read extents / outputs (conservative: the
    // carve already restricts regions; per-stencil precision only
    // matters across grids, which the maps keep).
    std::vector<std::map<size_t, std::vector<std::array<std::int64_t, 2>>>>
        wave_reads(waves);
    std::vector<std::set<size_t>> wave_outputs(waves);
    for (size_t w = 0; w < waves; ++w) {
      for (size_t s : schedule.waves[w].stencils) {
        wave_outputs[w].insert(stencil_output[s]);
        for (const auto& [g, ext] : stencil_reads[s]) {
          auto& agg = wave_reads[w][g];
          if (agg.empty()) agg.assign(dims, {0, 0});
          for (size_t a = 0; a < dims; ++a) {
            agg[a][0] = std::min(agg[a][0], ext[a][0]);
            agg[a][1] = std::max(agg[a][1], ext[a][1]);
          }
        }
      }
    }

    std::vector<Task> tasks;
    std::vector<TaskGeom> geoms;
    rs.wave_task_count.assign(waves, 0);

    const auto clamp_local = [&](Box b) {
      for (size_t a = 0; a < dims; ++a) {
        b.lo[a] = std::max<std::int64_t>(b.lo[a], 0);
        b.hi[a] = std::min(b.hi[a], rs.local_shape[a]);
      }
      return b;
    };

    size_t next_kernel = 0;
    for (size_t w = 0; w < waves; ++w) {
      // Sends (plan order fixes determinism).
      for (const MsgSpec& m : plan_.waves[w].msgs) {
        if (m.src != r) continue;
        Task t;
        t.kind = Task::Kind::Send;
        t.wave = w;
        t.msg = &m;
        TaskGeom g;
        g.reads.emplace_back(m.grid_index, m.src_box);
        tasks.push_back(std::move(t));
        geoms.push_back(std::move(g));
      }
      // Unpacks.
      for (size_t slot = 0; slot < rs.recvs[w].size(); ++slot) {
        const MsgSpec* m = rs.recvs[w][slot].spec;
        Task t;
        t.kind = Task::Kind::Unpack;
        t.wave = w;
        t.msg = m;
        t.slot = slot;
        if (m->face_class >= 2) {
          t.face_key = "diag";
        } else {
          for (size_t a = 0; a < dims; ++a) {
            if (m->delta[a] != 0) {
              t.face_key =
                  std::to_string(a) + (m->delta[a] < 0 ? "-" : "+");
            }
          }
        }
        TaskGeom g;
        g.writes.emplace_back(m->grid_index, m->dst_box);
        tasks.push_back(std::move(t));
        geoms.push_back(std::move(g));
      }
      // Region kernels of this wave (already in priority order).
      for (; next_kernel < rs.kernels.size() &&
             rs.kernels[next_kernel].wave == w;
           ++next_kernel) {
        Task t;
        t.kind = Task::Kind::Compute;
        t.wave = w;
        t.kernel = next_kernel;
        TaskGeom g;
        for (const Box& box :
             kernel_regions_[static_cast<size_t>(r)][next_kernel]) {
          if (box.empty()) continue;
          const Box lb = local_box(box, block);
          for (size_t out : wave_outputs[w]) g.writes.emplace_back(out, lb);
          for (const auto& [grid, ext] : wave_reads[w]) {
            Box rb = lb;
            for (size_t a = 0; a < dims; ++a) {
              rb.lo[a] += ext[a][0];
              rb.hi[a] += ext[a][1];
            }
            g.reads.emplace_back(grid, clamp_local(rb));
          }
        }
        tasks.push_back(std::move(t));
        geoms.push_back(std::move(g));
      }
      // The allreduce task of a reduction wave: reads the owned block
      // (plus the body's halo reach), writes the replicated scalar.
      if (const auto it = rs.reduce_partials.find(w);
          it != rs.reduce_partials.end()) {
        Task t;
        t.kind = Task::Kind::Reduce;
        t.wave = w;
        TaskGeom g;
        Box sbox;
        sbox.lo.assign(grid_shapes_[it->second.grid].size(), 0);
        sbox.hi = grid_shapes_[it->second.grid];
        g.writes.emplace_back(it->second.grid, std::move(sbox));
        const Box lb = local_box(block, block);
        for (const auto& [grid, ext] : wave_reads[w]) {
          Box rb = lb;
          for (size_t a = 0; a < dims; ++a) {
            rb.lo[a] += ext[a][0];
            rb.hi[a] += ext[a][1];
          }
          g.reads.emplace_back(grid, clamp_local(rb));
        }
        tasks.push_back(std::move(t));
        geoms.push_back(std::move(g));
      }
    }

    // Edges.  Cross-wave: true deps (write -> later read), anti deps
    // (read -> later write), and write-after-write ordering.  Same wave:
    // only unpack->compute (halo data for this wave) and send->compute
    // (in-place kernels must not overtake a pending send of pre-wave
    // data); everything else in a wave is independent by construction.
    for (size_t j = 0; j < tasks.size(); ++j) {
      for (size_t i = 0; i < j; ++i) {
        bool edge = false;
        if (tasks[i].wave < tasks[j].wave) {
          edge = geom_overlap(geoms[i].writes, geoms[j].reads) ||
                 geom_overlap(geoms[i].reads, geoms[j].writes) ||
                 geom_overlap(geoms[i].writes, geoms[j].writes);
        } else if ((tasks[j].kind == Task::Kind::Compute ||
                    tasks[j].kind == Task::Kind::Reduce) &&
                   (tasks[i].kind == Task::Kind::Send ||
                    tasks[i].kind == Task::Kind::Unpack)) {
          edge = geom_overlap(geoms[i].writes, geoms[j].reads) ||
                 geom_overlap(geoms[i].reads, geoms[j].writes);
        }
        if (edge) {
          tasks[i].dependents.push_back(j);
          ++tasks[j].deps_init;
        }
      }
    }
    for (const Task& t : tasks) ++rs.wave_task_count[t.wave];
    rs.tasks = std::move(tasks);
    kernel_regions_[static_cast<size_t>(r)].clear();
    kernel_regions_[static_cast<size_t>(r)].shrink_to_fit();
  }

  // --- SPMD per-rank program (runs on the worker threads) -----------------

  void worker_loop(int r) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::vector<double*>* global = nullptr;
      const ParamMap* params = nullptr;
      {
        std::unique_lock<std::mutex> lock(run_mu_);
        run_cv_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
        if (shutdown_) return;
        seen = epoch_;
        global = run_global_;
        params = run_params_;
      }
      run_rank(r, seen, *global, *params);
      {
        std::lock_guard<std::mutex> lock(run_mu_);
        ++done_count_;
      }
      done_cv_.notify_all();
    }
  }

  void run_rank(int r, std::uint64_t epoch, const std::vector<double*>& global,
                const ParamMap& params) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    rs.stats = RankStats{};
    const bool traced = trace::enabled();
    const std::string tag = traced ? "distsim:r" + std::to_string(r) : "";
    if (traced) {
      trace::Span coords(tag + ":coords:" + coords_str_[static_cast<size_t>(r)],
                         "dist-comm");
    }

    scatter_rank(r, global);
    // Every rank must finish reading the global grids before any rank's
    // gather may overwrite them (a comm-free rank could race ahead).
    barrier_wait();

    const size_t total = rs.tasks.size();
    rs.done.assign(total, 0);
    rs.remaining.resize(total);
    for (size_t i = 0; i < total; ++i) rs.remaining[i] = rs.tasks[i].deps_init;
    rs.wave_remaining = rs.wave_task_count;

    size_t executed = 0;
    while (executed < total) {
      size_t min_wave = 0;
      if (!pipeline_) {
        while (min_wave < rs.wave_remaining.size() &&
               rs.wave_remaining[min_wave] == 0) {
          ++min_wave;
        }
      }
      bool ran = false;
      for (size_t i = 0; i < total; ++i) {
        if (rs.done[i] != 0 || rs.remaining[i] != 0) continue;
        const Task& t = rs.tasks[i];
        if (!pipeline_ && t.wave != min_wave) continue;
        if (t.kind == Task::Kind::Unpack) {
          bool arrived;
          {
            std::lock_guard<std::mutex> lock(rs.mail_mu);
            arrived = rs.recvs[t.wave][t.slot].epoch == epoch;
          }
          if (!arrived) continue;
          do_unpack(rs, t);
        } else if (t.kind == Task::Kind::Send) {
          do_send(r, rs, t, epoch, traced, tag);
        } else if (t.kind == Task::Kind::Reduce) {
          do_reduce(rs, t, params, traced, tag);
        } else {
          do_compute(rs, t, params, traced, tag);
        }
        rs.done[i] = 1;
        --rs.wave_remaining[t.wave];
        for (size_t d : t.dependents) --rs.remaining[d];
        ++executed;
        ran = true;
        break;
      }
      if (!ran) block_for_mail(rs, epoch, min_wave, traced, tag);
    }
    gather_rank(r, global);
  }

  /// Nothing is runnable: every remaining dependency chain bottoms out at
  /// a message that has not arrived.  Block on the mailbox, attributing
  /// the stall to the faces still missing.
  void block_for_mail(RankState& rs, std::uint64_t epoch, size_t min_wave,
                      bool traced, const std::string& tag) {
    struct Pending {
      size_t wave, slot;
    };
    std::vector<Pending> pending;
    std::set<std::pair<size_t, std::string>> faces;
    size_t wmin = rs.tasks.size() == 0 ? 0 : ~size_t{0};
    for (size_t i = 0; i < rs.tasks.size(); ++i) {
      const Task& t = rs.tasks[i];
      if (rs.done[i] != 0 || rs.remaining[i] != 0 ||
          t.kind != Task::Kind::Unpack) {
        continue;
      }
      if (!pipeline_ && t.wave != min_wave) continue;
      pending.push_back({t.wave, t.slot});
      faces.insert({t.wave, t.face_key});
      wmin = std::min(wmin, t.wave);
    }
    SF_REQUIRE(!pending.empty(),
               "distsim: internal error — no runnable task and no pending "
               "message (scheduling deadlock)");

    trace::Span wait(traced ? tag + ":w" + std::to_string(wmin) + ":wait"
                            : std::string(),
                     "dist-comm");
    std::vector<std::unique_ptr<trace::Span>> face_spans;
    if (traced) {
      for (const auto& [w, key] : faces) {
        face_spans.push_back(std::make_unique<trace::Span>(
            tag + ":w" + std::to_string(w) + ":facewait:" + key,
            "dist-comm"));
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(rs.mail_mu);
      rs.mail_cv.wait(lock, [&] {
        for (const Pending& p : pending) {
          if (rs.recvs[p.wave][p.slot].epoch == epoch) return true;
        }
        return false;
      });
    }
    const double dt = seconds_since(t0);
    rs.stats.wait_seconds += dt;
    rs.stats.stall_seconds += dt;
  }

  void do_send(int r, RankState& rs, const Task& t, std::uint64_t epoch,
               bool traced, const std::string& tag) {
    const MsgSpec& m = *t.msg;
    RankState& dst = *ranks_state_[static_cast<size_t>(m.dst)];
    RecvSlot& slot = dst.recvs[t.wave][m.dst_slot];
    trace::Span span(traced ? tag + ":w" + std::to_string(t.wave) + ":send"
                            : std::string(),
                     "dist-comm");
    const auto t0 = std::chrono::steady_clock::now();
    Grid& g = rs.grids.at(grid_names_[m.grid_index]);
    Index extent(m.src_box.lo.size());
    for (size_t a = 0; a < extent.size(); ++a) {
      extent[a] = m.src_box.hi[a] - m.src_box.lo[a];
    }
    const std::vector<std::int64_t> buf_strides = shape_strides(extent);
    copy_box(slot.buf.data(), buf_strides,
             g.data() + offset_of(m.src_box.lo, rs.strides), rs.strides,
             extent, 0);
    {
      std::lock_guard<std::mutex> lock(dst.mail_mu);
      slot.epoch = epoch;
    }
    dst.mail_cv.notify_all();
    const double bytes = static_cast<double>(m.doubles) * sizeof(double);
    rs.stats.bytes_sent += bytes;
    ++rs.stats.messages_sent;
    rs.stats.pack_seconds += seconds_since(t0);
    span.counter("bytes", bytes);
  }

  void do_unpack(RankState& rs, const Task& t) {
    const auto t0 = std::chrono::steady_clock::now();
    RecvSlot& slot = rs.recvs[t.wave][t.slot];
    const MsgSpec& m = *slot.spec;
    Grid& g = rs.grids.at(grid_names_[m.grid_index]);
    Index extent(m.dst_box.lo.size());
    for (size_t a = 0; a < extent.size(); ++a) {
      extent[a] = m.dst_box.hi[a] - m.dst_box.lo[a];
    }
    const std::vector<std::int64_t> buf_strides = shape_strides(extent);
    copy_box(g.data() + offset_of(m.dst_box.lo, rs.strides), rs.strides,
             slot.buf.data(), buf_strides, extent, 0);
    rs.stats.wait_seconds += seconds_since(t0);
  }

  void do_compute(RankState& rs, const Task& t, const ParamMap& params,
                  bool traced, const std::string& tag) {
    const RegionKernel& rk = rs.kernels[t.kernel];
    trace::Span span(traced ? tag + ":w" + std::to_string(t.wave) +
                                  (rk.boundary ? ":boundary" : ":compute")
                            : std::string(),
                     "dist-compute");
    const auto t0 = std::chrono::steady_clock::now();
    rk.kernel->run(rs.grids, params);
    rs.stats.compute_seconds += seconds_since(t0);
  }

  /// The simulated allreduce of one reduction wave.  Every rank computes
  /// a partial over its owned block (identity when the clipped domain is
  /// empty), the ranks barrier, each combines all partials in rank order
  /// 0..R-1 — so every rank derives the same scalar, deterministically —
  /// and a second barrier keeps writers from overtaking readers.  Modeled
  /// traffic: each rank ships its 8-byte partial to the R-1 others.
  void do_reduce(RankState& rs, const Task& t, const ParamMap& params,
                 bool traced, const std::string& tag) {
    ReducePartial& rp = rs.reduce_partials.at(t.wave);
    Grid& mine = rs.grids.at(grid_names_[rp.grid]);
    {
      trace::Span span(traced ? tag + ":w" + std::to_string(t.wave) +
                                    ":partial"
                              : std::string(),
                       "dist-compute");
      const auto t0 = std::chrono::steady_clock::now();
      if (rp.kernel) {
        rp.kernel->run(rs.grids, params);
      } else {
        mine.data()[0] = reduce_identity(rp.op);  // no owned domain points
      }
      rs.stats.compute_seconds += seconds_since(t0);
    }
    trace::Span span(traced ? tag + ":w" + std::to_string(t.wave) +
                                  ":allreduce"
                            : std::string(),
                     "dist-comm");
    const auto t0 = std::chrono::steady_clock::now();
    barrier_wait();
    double acc = reduce_identity(rp.op);
    for (int q = 0; q < ranks_; ++q) {
      Grid& part =
          ranks_state_[static_cast<size_t>(q)]->grids.at(grid_names_[rp.grid]);
      acc = reduce_combine(rp.op, acc, part.data()[0]);
    }
    barrier_wait();  // every rank reads every partial before any overwrite
    mine.data()[0] = acc;
    const double bytes = 8.0 * static_cast<double>(ranks_ - 1);
    rs.stats.bytes_sent += bytes;
    rs.stats.messages_sent += ranks_ - 1;
    rs.stats.wait_seconds += seconds_since(t0);
    span.counter("bytes", bytes);
  }

  void scatter_rank(int r, const std::vector<double*>& global) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    const Box block = decomp_.block(r);
    const size_t dims = global_shape_.size();
    const std::vector<std::int64_t> gstrides = shape_strides(global_shape_);
    // Copy the owned box plus any in-bounds halo layers in one box copy.
    Box src;
    src.lo.resize(dims);
    src.hi.resize(dims);
    for (size_t a = 0; a < dims; ++a) {
      src.lo[a] = std::max<std::int64_t>(0, block.lo[a] - halo_vec_[a]);
      src.hi[a] = std::min(global_shape_[a], block.hi[a] + halo_vec_[a]);
    }
    const Box dst = local_box(src, block);
    Index extent(dims);
    for (size_t a = 0; a < dims; ++a) extent[a] = src.hi[a] - src.lo[a];
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      Grid& g = rs.grids.at(grid_names_[gi]);
      if (replicated_[gi]) {
        // Replicated scalars: every rank starts from the global value.
        std::memcpy(g.data(), global[gi],
                    static_cast<size_t>(cells_of(grid_shapes_[gi])) *
                        sizeof(double));
        continue;
      }
      copy_box(g.data() + offset_of(dst.lo, rs.strides), rs.strides,
               global[gi] + offset_of(src.lo, gstrides), gstrides, extent, 0);
    }
  }

  void gather_rank(int r, const std::vector<double*>& global) {
    RankState& rs = *ranks_state_[static_cast<size_t>(r)];
    const Box block = decomp_.block(r);
    const size_t dims = global_shape_.size();
    const std::vector<std::int64_t> gstrides = shape_strides(global_shape_);
    const Box src = local_box(block, block);
    Index extent(dims);
    for (size_t a = 0; a < dims; ++a) extent[a] = block.hi[a] - block.lo[a];
    for (size_t gi = 0; gi < grid_names_.size(); ++gi) {
      Grid& g = rs.grids.at(grid_names_[gi]);
      if (replicated_[gi]) {
        // Every rank holds the identical combined scalar; rank 0 writes.
        if (r == 0) {
          std::memcpy(global[gi], g.data(),
                      static_cast<size_t>(cells_of(grid_shapes_[gi])) *
                          sizeof(double));
        }
        continue;
      }
      copy_box(global[gi] + offset_of(block.lo, gstrides), gstrides,
               g.data() + offset_of(src.lo, rs.strides), rs.strides, extent,
               0);
    }
  }

  void barrier_wait() {
    std::unique_lock<std::mutex> lock(run_mu_);
    if (++barrier_count_ == ranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      const std::uint64_t gen = barrier_gen_;
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

  std::vector<std::string> grid_names_;
  Index global_shape_;
  std::vector<Index> grid_shapes_;  // per grid index; == global_shape_
                                    // except for replicated scalars
  std::vector<char> replicated_;    // one-cell reduction results
  bool has_reduce_ = false;
  std::int64_t halo_ = 0;
  Index halo_vec_;
  int ranks_ = 0;
  int requested_ranks_ = 0;
  bool overlap_ = true;
  bool pipeline_ = true;
  CartDecomp decomp_;
  CommPlan plan_;
  std::vector<std::unique_ptr<RankState>> ranks_state_;
  std::vector<std::string> coords_str_;
  /// Ctor-only scratch: per rank, per kernel, its region boxes (global
  /// coordinates), consumed by build_tasks and then dropped.
  std::map<size_t, std::vector<std::vector<Box>>> kernel_regions_;

  // Run orchestration (workers block on run_cv_ between runs).
  std::mutex run_mu_;
  std::condition_variable run_cv_, done_cv_, barrier_cv_;
  std::uint64_t epoch_ = 0;
  int done_count_ = 0;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  bool shutdown_ = false;
  const std::vector<double*>* run_global_ = nullptr;
  const ParamMap* run_params_ = nullptr;

  double last_halo_bytes_ = 0.0;
  std::int64_t last_halo_messages_ = 0;
  std::array<double, 4> last_class_bytes_{};
};

class DistSimBackend final : public Backend {
public:
  std::string name() const override { return "distsim"; }

  std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) override {
    return std::make_unique<DistSimKernel>(group, shapes, options);
  }
};

}  // namespace

namespace detail {
std::shared_ptr<Backend> make_distsim_backend() {
  return std::make_shared<DistSimBackend>();
}
}  // namespace detail

}  // namespace snowflake
