#pragma once
// Simulated distributed-memory backend ("distsim").
//
// SUBSTITUTION (see DESIGN.md): the paper's §VII plans MPI / UPC++
// backends ("one process per NUMA node").  No multi-node system exists in
// this environment, so this backend reproduces the *structure* of that
// port in one process as an SPMD runtime: the grid is partitioned into an
// r0 x r1 (x r2) Cartesian process grid of contiguous blocks
// (CompileOptions::dist_grid; a bare rank count auto-factorizes to the
// minimum modeled cut surface, and the legacy dist_ranks knob keeps the
// dim-0 slab special case), each rank is a persistent worker thread
// owning private copies of every grid (block plus halo layers on split
// axes — separate allocations, i.e. separate address spaces), and all
// data motion is point-to-point packed box messages through per-rank
// mailboxes: faces, and — only when some stencil actually reads through a
// diagonal offset — edges and corners (analysis/footprint.hpp decides
// per grid, per wave, per signed axis direction).
//
// Execution is not bulk-synchronous by default.  At compile time each
// wave's share of a rank is carved into disjoint regions — core, ring,
// one shell per face, merged diagonal shells — and every region kernel,
// halo send, and halo unpack becomes a node of a per-rank dependency
// graph whose edges are computed geometrically (a task depends on the
// earlier tasks whose written boxes its read boxes intersect, plus
// write-after-read edges so in-place updates never overtake a pending
// send or a not-yet-consumed halo).  At run time each rank executes any
// ready task, preferring low waves and boundary work: a face's halo
// message is sent as soon as the region producing it is computed, and a
// rank starts wave w+1's interior while still awaiting wave w's remaining
// face messages (the ring region decouples the core from the shells by
// one halo depth).  CompileOptions::dist_pipeline = false restores the
// bulk-synchronous schedule (a rank may not start wave w+1 before all of
// its wave-w tasks retire) as an ablation baseline;
// CompileOptions::dist_overlap = false drops the carve entirely
// (one kernel per wave, run after the wave's messages).
//
// The exchange is pruned by the dependence footprint: grids no wave
// writes are distributed once and never re-sent, each face travels only
// as deep as the wave reads through it, and star-shaped stencils send no
// corner messages at all (CompileOptions::dist_prune ablates this).
// Messages are owner-direct, so blocks thinner than the halo depth draw
// from ranks further away instead of being rejected ("multi-hop").  A
// rank count larger than an axis extent is clamped with one logged
// warning per compile; the pre-clamp request stays visible through
// requested_ranks().
//
// Scope: groups whose grids share one shape, whose reads are pure offsets,
// and whose stencils are all point-parallel (the decomposable common case;
// restriction/interpolation and sequential scans are rejected with a clear
// error).  The domain algebra does the heavy lifting: per-rank programs
// are the *exact* clip-and-translate images of the global domains, so
// boundary stencils land only on edge ranks automatically.  Per-rank
// sub-programs are compiled by the sequential C micro-compiler with the
// caller's schedule-neutral options (tiling, fusion, addr_opt, analysis
// choice) threaded through; OpenMP-only options are stripped so a rank
// can never nest a second parallel runtime under its worker thread.

#include "backend/backend.hpp"

namespace snowflake {

/// Introspection for tests/benches/examples: decomposition geometry and
/// communication accounting of a compiled distsim kernel (dynamic_cast
/// from CompiledKernel).
class DistSimKernelInfo {
public:
  /// Per-rank timing/traffic of the last run() (seconds / bytes).
  struct RankStats {
    double pack_seconds = 0.0;     // packing + delivering sends
    double wait_seconds = 0.0;     // blocked on the mailbox + unpacking
    double compute_seconds = 0.0;  // region sub-programs
    /// Pipeline stall: time blocked with no runnable task at all (a
    /// subset of wait_seconds).  The pipelined schedule hides latency by
    /// running ahead, so this is the number the BSP ablation inflates.
    double stall_seconds = 0.0;
    double bytes_sent = 0.0;  // payload bytes this rank delivered
    std::int64_t messages_sent = 0;
  };

  virtual ~DistSimKernelInfo() = default;
  virtual int ranks() const = 0;
  /// The pre-clamp rank count the options asked for (product of
  /// dist_grid, or dist_ranks); differs from ranks() when clamped.
  virtual int requested_ranks() const = 0;
  /// Ranks per axis of the Cartesian process grid ({R, 1, ...} for the
  /// legacy slab decomposition).
  virtual Index rank_grid() const = 0;
  virtual std::int64_t halo_depth() const = 0;
  /// [start, end) global rows of dim 0 owned by each rank.
  virtual std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const = 0;
  /// Owned global box {lo, hi} of each rank.
  virtual std::vector<std::pair<Index, Index>> blocks() const = 0;

  /// Payload bytes moved by halo messages in the last run().  Since the
  /// exchange is pruned, this counts only grids a wave actually reads
  /// across a block boundary after some earlier wave wrote them — grids
  /// that are never written (coefficients, rhs) are distributed by the
  /// initial scatter and never counted again.
  virtual double last_halo_bytes() const = 0;
  /// Payload bytes of the last run() by face class: 1 = face, 2 = edge,
  /// 3 = corner.  Star stencils move zero edge/corner bytes.
  virtual double last_halo_bytes_class(int face_class) const = 0;
  /// Messages delivered in the last run().
  virtual std::int64_t last_halo_messages() const = 0;
  /// Per-rank comm-vs-compute attribution of the last run().
  virtual std::vector<RankStats> last_rank_stats() const = 0;

  /// Number of barrier waves of the compiled schedule.
  virtual size_t wave_count() const = 0;
  /// Names of the grids exchanged before wave `w` (empty for wave 0 and
  /// for waves whose reads are all served locally).
  virtual std::vector<std::string> exchanged_grids(size_t wave) const = 0;
};

}  // namespace snowflake
