#pragma once
// Simulated distributed-memory backend ("distsim").
//
// SUBSTITUTION (see DESIGN.md): the paper's §VII plans MPI / UPC++
// backends ("one process per NUMA node").  No multi-node system exists in
// this environment, so this backend reproduces the *structure* of that
// port in one process as an SPMD runtime: the outermost dimension is
// partitioned into R contiguous slabs, each rank is a persistent worker
// thread owning private copies of every grid (slab plus halo layers —
// separate allocations, i.e. separate address spaces), and all data
// motion is point-to-point packed messages through per-rank mailboxes.
// There is no global orchestrator between waves: each rank posts its
// sends, computes the interior sub-program of the wave (split off at
// compile time so it provably reads no halo row), then waits for its
// expected messages and finishes the boundary sub-program — communication
// overlapped with computation, the way an MPI_Isend/Irecv port would do
// it (CompileOptions::dist_overlap ablates the split).
//
// The exchange is pruned by the dependence footprint
// (analysis/footprint.hpp): grids no wave writes are distributed once and
// never re-sent, and each grid travels only as deep as the next wave
// reads it (CompileOptions::dist_prune ablates this).  Messages are
// owner-direct, so slabs thinner than the halo depth draw from ranks
// further away instead of being rejected ("multi-hop").  A rank count
// larger than the dim-0 extent is clamped to one row per rank with a
// logged warning.
//
// Scope: groups whose grids share one shape, whose reads are pure offsets,
// and whose stencils are all point-parallel (the decomposable common case;
// restriction/interpolation and sequential scans are rejected with a clear
// error).  The domain algebra does the heavy lifting: per-rank programs
// are the *exact* clip-and-translate images of the global domains, so
// boundary stencils land only on edge ranks automatically.  Per-rank
// sub-programs are compiled by the sequential C micro-compiler with the
// caller's schedule-neutral options (tiling, fusion, addr_opt, analysis
// choice) threaded through; OpenMP-only options are stripped so a rank
// can never nest a second parallel runtime under its worker thread.

#include "backend/backend.hpp"

namespace snowflake {

/// Introspection for tests/benches/examples: decomposition geometry and
/// communication accounting of a compiled distsim kernel (dynamic_cast
/// from CompiledKernel).
class DistSimKernelInfo {
public:
  /// Per-rank timing/traffic of the last run() (seconds / bytes).
  struct RankStats {
    double pack_seconds = 0.0;     // packing + delivering sends
    double wait_seconds = 0.0;     // blocked on the mailbox + unpacking
    double compute_seconds = 0.0;  // interior + boundary sub-programs
    double bytes_sent = 0.0;       // payload bytes this rank delivered
    std::int64_t messages_sent = 0;
  };

  virtual ~DistSimKernelInfo() = default;
  virtual int ranks() const = 0;
  virtual std::int64_t halo_depth() const = 0;
  /// [start, end) global rows of dim 0 owned by each rank.
  virtual std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const = 0;

  /// Payload bytes moved by halo messages in the last run().  Since the
  /// exchange is pruned, this counts only grids a wave actually reads
  /// across a slab boundary after some earlier wave wrote them — grids
  /// that are never written (coefficients, rhs) are distributed by the
  /// initial scatter and never counted again.
  virtual double last_halo_bytes() const = 0;
  /// Messages delivered in the last run().
  virtual std::int64_t last_halo_messages() const = 0;
  /// Per-rank comm-vs-compute attribution of the last run().
  virtual std::vector<RankStats> last_rank_stats() const = 0;

  /// Number of barrier waves of the compiled schedule.
  virtual size_t wave_count() const = 0;
  /// Names of the grids exchanged before wave `w` (empty for wave 0 and
  /// for waves whose reads are all served locally).
  virtual std::vector<std::string> exchanged_grids(size_t wave) const = 0;
};

}  // namespace snowflake
