#pragma once
// Simulated distributed-memory backend ("distsim").
//
// SUBSTITUTION (see DESIGN.md): the paper's §VII plans MPI / UPC++
// backends ("one process per NUMA node").  No multi-node system exists in
// this environment, so this backend reproduces the *structure* of that
// port in one process: the outermost dimension is partitioned into R
// contiguous slabs, each rank owns private copies of every grid (slab plus
// halo layers — separate allocations, i.e. separate address spaces), wave
// barriers become rank joins, and halo exchange is an explicit copy
// between neighbouring ranks' storage before every wave.  Each rank's
// clipped stencil program is compiled by the sequential C micro-compiler;
// ranks execute concurrently under OpenMP.
//
// Scope: groups whose grids share one shape, whose reads are pure offsets,
// and whose stencils are all point-parallel (the decomposable common case;
// restriction/interpolation and sequential scans are rejected with a clear
// error).  The domain algebra does the heavy lifting: per-rank programs
// are the *exact* clip-and-translate images of the global domains, so
// boundary stencils land only on edge ranks automatically.

#include "backend/backend.hpp"

namespace snowflake {

/// Introspection for tests/benches: decomposition geometry of a compiled
/// distsim kernel (dynamic_cast from CompiledKernel).
class DistSimKernelInfo {
public:
  virtual ~DistSimKernelInfo() = default;
  virtual int ranks() const = 0;
  virtual std::int64_t halo_depth() const = 0;
  /// [start, end) global rows of dim 0 owned by each rank.
  virtual std::vector<std::pair<std::int64_t, std::int64_t>> slabs() const = 0;
  /// Bytes moved by halo exchange in the last run().
  virtual double last_halo_bytes() const = 0;
};

}  // namespace snowflake
