#pragma once
// Dim-0 slab decomposition and per-rank domain clipping for the simulated
// distributed backend.
//
// The outermost dimension is split into R contiguous slabs (balanced to
// within one row).  Each rank's local storage is its slab plus `halo`
// layers on both sides; clipping translates global-coordinate domains
// into that local frame.  The clip is row-range-aware so the backend can
// split a rank's share of a wave into an interior part (whose reads
// provably stay inside rows the rank already holds) and a boundary part
// (which must wait for the wave's halo messages).

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

struct Slab {
  std::int64_t lo = 0;  // first owned global row of dim 0
  std::int64_t hi = 0;  // exclusive
  std::int64_t len() const { return hi - lo; }
};

/// Split `extent` rows into `ranks` balanced contiguous slabs.  A request
/// larger than the extent is clamped to one row per rank (the caller logs
/// the clamp); requires extent >= 1 and ranks >= 1 after clamping.
std::vector<Slab> decompose_dim0(std::int64_t extent, int ranks);

/// Clip `stencil`'s global domain to the global dim-0 rows
/// [row_lo, row_hi) — which must lie inside `slab` — and translate into
/// the rank-local frame (local row = global row - slab.lo + halo).
/// nullopt when no domain point lands in the window.
std::optional<Stencil> clip_stencil_rows(const Stencil& stencil,
                                         const Index& global_shape,
                                         const Slab& slab, std::int64_t halo,
                                         std::int64_t row_lo,
                                         std::int64_t row_hi);

}  // namespace snowflake
