#pragma once
// Cartesian block decomposition and per-rank domain clipping for the
// simulated distributed backend.
//
// The grid is split into an r0 x r1 (x r2) Cartesian process grid of
// contiguous blocks (each axis balanced to within one row).  Each rank's
// local storage is its block plus `halo` layers on every split axis;
// clipping translates global-coordinate domains into that local frame.
// The clip is window-aware so the backend can carve a rank's share of a
// wave into interior / ring / per-face / diagonal regions whose reads
// have provably different message dependencies.
//
// The legacy dim-0 slab decomposition is the special case grid = {R, 1,
// ..., 1}; `decompose_dim0` and `clip_stencil_rows` remain as the
// 1-axis-specialized entry points.

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

struct Slab {
  std::int64_t lo = 0;  // first owned global row of dim 0
  std::int64_t hi = 0;  // exclusive
  std::int64_t len() const { return hi - lo; }
};

/// A half-open global-coordinate box [lo, hi) per axis.
struct Box {
  Index lo, hi;
  bool empty() const {
    for (size_t a = 0; a < lo.size(); ++a) {
      if (hi[a] <= lo[a]) return true;
    }
    return lo.empty();
  }
  std::int64_t volume() const {
    if (empty()) return 0;
    std::int64_t v = 1;
    for (size_t a = 0; a < lo.size(); ++a) v *= hi[a] - lo[a];
    return v;
  }
  friend bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Intersection of two boxes of equal rank (possibly empty).
Box intersect_boxes(const Box& a, const Box& b);
/// True if the boxes share at least one point.
bool boxes_overlap(const Box& a, const Box& b);

/// An R = r0 x r1 (x r2) Cartesian process grid over `extents`.  Ranks
/// are numbered row-major with axis 0 slowest, so the slab decomposition
/// grid = {R, 1, ...} numbers ranks exactly like decompose_dim0.
struct CartDecomp {
  Index extents;                              // global grid shape
  Index grid;                                 // ranks per axis
  std::vector<std::vector<Slab>> axis_slabs;  // [axis][coord]

  int ranks() const;
  size_t rank_dims() const { return grid.size(); }
  Index coords(int rank) const;
  int rank_of(const Index& coords) const;
  /// Owned global box of `rank`.
  Box block(int rank) const;
};

/// Split `extents` into the given per-axis rank counts (each axis
/// balanced to within one row).  Requires 1 <= grid[a] <= extents[a].
CartDecomp decompose_cartesian(const Index& extents, const Index& grid);

/// Factor `ranks` into a per-axis process grid minimizing the modeled cut
/// surface sum_a (r_a - 1) * prod_{b != a} extents[b] (total points on
/// internal block faces, i.e. halo traffic per unit depth).  Ties prefer
/// splitting earlier axes, which keeps messages contiguous in the
/// row-major layout.  Infeasible rank counts (no factorization with
/// r_a <= extents[a]) are reduced until one fits; 1 always fits.
Index auto_factor_grid(const Index& extents, int ranks);

/// Split `extent` rows into `ranks` balanced contiguous slabs.  A request
/// larger than the extent is clamped to one row per rank (the caller logs
/// the clamp); requires extent >= 1 and ranks >= 1 after clamping.
std::vector<Slab> decompose_dim0(std::int64_t extent, int ranks);

/// Clip `stencil`'s global domain to the global box `window` — which must
/// lie inside `block` — and translate into the rank-local frame
/// (local_a = global_a - block.lo[a] + halo[a]).  nullopt when no domain
/// point lands in the window.
std::optional<Stencil> clip_stencil_box(const Stencil& stencil,
                                        const Index& global_shape,
                                        const Box& block, const Index& halo,
                                        const Box& window);

/// Clip `stencil`'s global domain to the global dim-0 rows
/// [row_lo, row_hi) — which must lie inside `slab` — and translate into
/// the rank-local frame (local row = global row - slab.lo + halo).
/// nullopt when no domain point lands in the window.
std::optional<Stencil> clip_stencil_rows(const Stencil& stencil,
                                         const Index& global_shape,
                                         const Slab& slab, std::int64_t halo,
                                         std::int64_t row_lo,
                                         std::int64_t row_hi);

}  // namespace snowflake
