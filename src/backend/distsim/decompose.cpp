#include "backend/distsim/decompose.hpp"

#include <algorithm>

#include "domain/domain_algebra.hpp"
#include "support/error.hpp"

namespace snowflake {

Box intersect_boxes(const Box& a, const Box& b) {
  Box out;
  out.lo.resize(a.lo.size());
  out.hi.resize(a.lo.size());
  for (size_t d = 0; d < a.lo.size(); ++d) {
    out.lo[d] = std::max(a.lo[d], b.lo[d]);
    out.hi[d] = std::min(a.hi[d], b.hi[d]);
  }
  return out;
}

bool boxes_overlap(const Box& a, const Box& b) {
  if (a.lo.empty() || b.lo.empty()) return false;
  return !intersect_boxes(a, b).empty();
}

int CartDecomp::ranks() const {
  int r = 1;
  for (std::int64_t g : grid) r *= static_cast<int>(g);
  return r;
}

Index CartDecomp::coords(int rank) const {
  Index c(grid.size(), 0);
  for (size_t a = grid.size(); a-- > 0;) {
    c[a] = rank % grid[a];
    rank = static_cast<int>(rank / grid[a]);
  }
  return c;
}

int CartDecomp::rank_of(const Index& c) const {
  std::int64_t r = 0;
  for (size_t a = 0; a < grid.size(); ++a) r = r * grid[a] + c[a];
  return static_cast<int>(r);
}

Box CartDecomp::block(int rank) const {
  const Index c = coords(rank);
  Box b;
  b.lo.resize(grid.size());
  b.hi.resize(grid.size());
  for (size_t a = 0; a < grid.size(); ++a) {
    const Slab& s = axis_slabs[a][static_cast<size_t>(c[a])];
    b.lo[a] = s.lo;
    b.hi[a] = s.hi;
  }
  return b;
}

CartDecomp decompose_cartesian(const Index& extents, const Index& grid) {
  SF_REQUIRE(extents.size() == grid.size(),
             "distsim: process grid rank must match the grid rank");
  CartDecomp d;
  d.extents = extents;
  d.grid = grid;
  d.axis_slabs.resize(grid.size());
  for (size_t a = 0; a < grid.size(); ++a) {
    d.axis_slabs[a] =
        decompose_dim0(extents[a], static_cast<int>(grid[a]));
  }
  return d;
}

namespace {

/// Recursive enumeration of factor tuples of `ranks` over the axes;
/// keeps the first minimum-surface tuple, enumerating the current axis
/// from large factors down so ties prefer splitting earlier axes.
void enumerate_factors(const Index& extents, size_t axis, int remaining,
                       Index* current, double* best_surface, Index* best) {
  if (axis == extents.size()) {
    if (remaining != 1) return;
    double surface = 0.0;
    for (size_t a = 0; a < extents.size(); ++a) {
      double cross = 1.0;
      for (size_t b = 0; b < extents.size(); ++b) {
        if (b != a) cross *= static_cast<double>(extents[b]);
      }
      surface += static_cast<double>((*current)[a] - 1) * cross;
    }
    if (best->empty() || surface < *best_surface) {
      *best_surface = surface;
      *best = *current;
    }
    return;
  }
  const std::int64_t cap = std::min<std::int64_t>(remaining, extents[axis]);
  for (std::int64_t f = cap; f >= 1; --f) {
    if (remaining % f != 0) continue;
    (*current)[axis] = f;
    enumerate_factors(extents, axis + 1, remaining / static_cast<int>(f),
                      current, best_surface, best);
  }
}

}  // namespace

Index auto_factor_grid(const Index& extents, int ranks) {
  SF_REQUIRE(ranks >= 1, "distsim: rank count must be positive");
  for (int r = ranks; r >= 1; --r) {
    Index current(extents.size(), 1), best;
    double best_surface = 0.0;
    enumerate_factors(extents, 0, r, &current, &best_surface, &best);
    if (!best.empty()) return best;
  }
  return Index(extents.size(), 1);  // unreachable: r == 1 always fits
}

std::vector<Slab> decompose_dim0(std::int64_t extent, int ranks) {
  SF_REQUIRE(extent >= 1, "distsim: dim-0 extent must be positive");
  SF_REQUIRE(ranks >= 1 && ranks <= extent,
             "distsim: rank count " + std::to_string(ranks) +
                 " infeasible for extent " + std::to_string(extent));
  std::vector<Slab> slabs;
  slabs.reserve(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    slabs.push_back(Slab{extent * r / ranks, extent * (r + 1) / ranks});
  }
  return slabs;
}

std::optional<Stencil> clip_stencil_box(const Stencil& stencil,
                                        const Index& global_shape,
                                        const Box& block, const Index& halo,
                                        const Box& window) {
  if (window.empty()) return std::nullopt;
  const ResolvedUnion domain = stencil.domain().resolve(global_shape);
  std::vector<RectDomain> local_rects;
  for (const auto& rect : domain.rects()) {
    if (rect.empty()) continue;
    const size_t rank = rect.ranges().size();
    Index start(rank), stop(rank), stride(rank);
    bool alive = true;
    for (size_t d = 0; d < rank; ++d) {
      const ResolvedRange win{window.lo[d], window.hi[d], 1};
      const auto clipped =
          intersect_ranges(rect.range(static_cast<int>(d)), win);
      if (!clipped) {
        alive = false;
        break;
      }
      const std::int64_t shift = halo[d] - block.lo[d];
      start[d] = clipped->lo + shift;
      stop[d] = clipped->hi + shift;
      stride[d] = clipped->stride;
    }
    if (!alive) continue;
    local_rects.emplace_back(std::move(start), std::move(stop),
                             std::move(stride));
  }
  if (local_rects.empty()) return std::nullopt;
  return Stencil(stencil.name() + "@r", stencil.expr(), stencil.output(),
                 DomainUnion(std::move(local_rects)));
}

std::optional<Stencil> clip_stencil_rows(const Stencil& stencil,
                                         const Index& global_shape,
                                         const Slab& slab, std::int64_t halo,
                                         std::int64_t row_lo,
                                         std::int64_t row_hi) {
  if (row_hi <= row_lo) return std::nullopt;
  Box block, window;
  block.lo.resize(global_shape.size());
  block.hi.resize(global_shape.size());
  Index halos(global_shape.size(), 0);
  for (size_t d = 0; d < global_shape.size(); ++d) {
    block.lo[d] = d == 0 ? slab.lo : 0;
    block.hi[d] = d == 0 ? slab.hi : global_shape[d];
  }
  halos[0] = halo;
  window = block;
  window.lo[0] = row_lo;
  window.hi[0] = row_hi;
  return clip_stencil_box(stencil, global_shape, block, halos, window);
}

}  // namespace snowflake
