#include "backend/distsim/decompose.hpp"

#include "domain/domain_algebra.hpp"
#include "support/error.hpp"

namespace snowflake {

std::vector<Slab> decompose_dim0(std::int64_t extent, int ranks) {
  SF_REQUIRE(extent >= 1, "distsim: dim-0 extent must be positive");
  SF_REQUIRE(ranks >= 1 && ranks <= extent,
             "distsim: rank count " + std::to_string(ranks) +
                 " infeasible for extent " + std::to_string(extent));
  std::vector<Slab> slabs;
  slabs.reserve(static_cast<size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    slabs.push_back(Slab{extent * r / ranks, extent * (r + 1) / ranks});
  }
  return slabs;
}

std::optional<Stencil> clip_stencil_rows(const Stencil& stencil,
                                         const Index& global_shape,
                                         const Slab& slab, std::int64_t halo,
                                         std::int64_t row_lo,
                                         std::int64_t row_hi) {
  if (row_hi <= row_lo) return std::nullopt;
  const ResolvedUnion domain = stencil.domain().resolve(global_shape);
  const ResolvedRange window{row_lo, row_hi, 1};
  const std::int64_t shift = halo - slab.lo;
  std::vector<RectDomain> local_rects;
  for (const auto& rect : domain.rects()) {
    if (rect.empty()) continue;
    const auto clipped = intersect_ranges(rect.range(0), window);
    if (!clipped) continue;
    Index start(rect.ranges().size()), stop(rect.ranges().size()),
        stride(rect.ranges().size());
    start[0] = clipped->lo + shift;
    stop[0] = clipped->hi + shift;
    stride[0] = clipped->stride;
    for (size_t d = 1; d < rect.ranges().size(); ++d) {
      start[d] = rect.range(static_cast<int>(d)).lo;
      stop[d] = rect.range(static_cast<int>(d)).hi;
      stride[d] = rect.range(static_cast<int>(d)).stride;
    }
    local_rects.emplace_back(std::move(start), std::move(stop),
                             std::move(stride));
  }
  if (local_rects.empty()) return std::nullopt;
  return Stencil(stencil.name() + "@r", stencil.expr(), stencil.output(),
                 DomainUnion(std::move(local_rects)));
}

}  // namespace snowflake
