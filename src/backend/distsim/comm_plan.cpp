#include "backend/distsim/comm_plan.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace snowflake {

namespace {

/// Enumerate every neighbour pattern in {-1,0,+1}^d except all-zero, in a
/// fixed deterministic order (ternary counter, axis 0 slowest).
std::vector<Index> all_patterns(size_t rank) {
  std::vector<Index> out;
  Index delta(rank, -1);
  for (;;) {
    bool zero = true;
    for (std::int64_t c : delta) zero &= c == 0;
    if (!zero) out.push_back(delta);
    size_t a = rank;
    while (a-- > 0) {
      if (delta[a] < 1) {
        ++delta[a];
        break;
      }
      delta[a] = -1;
      if (a == 0) return out;
    }
    if (rank == 0) return out;
  }
}

Box to_local(const Box& global, const Box& block, const Index& halo) {
  Box local = global;
  for (size_t a = 0; a < global.lo.size(); ++a) {
    local.lo[a] += halo[a] - block.lo[a];
    local.hi[a] += halo[a] - block.lo[a];
  }
  return local;
}

}  // namespace

double CommPlan::bytes_per_run() const {
  double bytes = 0.0;
  for (const auto& wave : waves) {
    for (const auto& m : wave.msgs) {
      bytes += static_cast<double>(m.doubles) * sizeof(double);
    }
  }
  return bytes;
}

double CommPlan::bytes_per_run_class(int face_class) const {
  double bytes = 0.0;
  for (const auto& wave : waves) {
    for (const auto& m : wave.msgs) {
      if (m.face_class == face_class) {
        bytes += static_cast<double>(m.doubles) * sizeof(double);
      }
    }
  }
  return bytes;
}

CommPlan build_comm_plan(const CommFootprint& footprint,
                         const std::vector<std::string>& grid_names,
                         const CartDecomp& decomp, const Index& halo) {
  std::map<std::string, size_t> grid_index;
  for (size_t i = 0; i < grid_names.size(); ++i) grid_index[grid_names[i]] = i;
  const size_t dims = decomp.rank_dims();
  const int ranks = decomp.ranks();

  CommPlan plan;
  plan.waves.resize(footprint.waves.size());
  for (auto& ex : plan.waves) {
    ex.margin.assign(dims, {0, 0});
  }
  if (ranks < 2) return plan;  // single rank: nothing to exchange

  const std::vector<Index> patterns = all_patterns(dims);
  std::vector<Box> blocks;
  for (int r = 0; r < ranks; ++r) blocks.push_back(decomp.block(r));

  for (size_t w = 0; w < footprint.waves.size(); ++w) {
    WaveExchange& ex = plan.waves[w];
    for (const auto& wg : footprint.waves[w]) {
      const auto it = grid_index.find(wg.grid);
      SF_REQUIRE(it != grid_index.end(),
                 "comm plan: unknown grid '" + wg.grid + "'");
      const size_t before = ex.msgs.size();
      std::int64_t grid_depth = 0;

      for (const Index& delta : patterns) {
        if (!wg.needs_pattern(delta)) continue;
        Index depth = wg.pattern_depth(delta);
        bool feasible = true;
        int face_class = 0;
        for (size_t a = 0; a < dims; ++a) {
          if (delta[a] == 0) continue;
          ++face_class;
          depth[a] = std::min(depth[a], halo[a]);
          if (depth[a] <= 0) feasible = false;
        }
        if (!feasible) continue;

        for (int dst = 0; dst < ranks; ++dst) {
          const Box& b = blocks[static_cast<size_t>(dst)];
          // The receiver's halo region through this pattern, clamped to
          // the global grid.
          Box h;
          h.lo.resize(dims);
          h.hi.resize(dims);
          for (size_t a = 0; a < dims; ++a) {
            if (delta[a] < 0) {
              h.lo[a] = std::max<std::int64_t>(0, b.lo[a] - depth[a]);
              h.hi[a] = b.lo[a];
            } else if (delta[a] > 0) {
              h.lo[a] = b.hi[a];
              h.hi[a] = std::min(decomp.extents[a], b.hi[a] + depth[a]);
            } else {
              h.lo[a] = b.lo[a];
              h.hi[a] = b.hi[a];
            }
          }
          if (h.empty()) continue;
          for (int src = 0; src < ranks; ++src) {
            if (src == dst) continue;
            const Box payload =
                intersect_boxes(h, blocks[static_cast<size_t>(src)]);
            if (payload.empty()) continue;
            MsgSpec m;
            m.src = src;
            m.dst = dst;
            m.grid_index = it->second;
            m.src_box =
                to_local(payload, blocks[static_cast<size_t>(src)], halo);
            m.dst_box = to_local(payload, b, halo);
            m.delta = delta;
            m.face_class = face_class;
            m.doubles = payload.volume();
            ex.msgs.push_back(std::move(m));
          }
        }
        for (size_t a = 0; a < dims; ++a) {
          if (delta[a] == 0) continue;
          grid_depth = std::max(grid_depth, depth[a]);
          auto& side = ex.margin[a][delta[a] < 0 ? 0 : 1];
          side = std::max(side, depth[a]);
        }
      }

      if (ex.msgs.size() > before) {
        ex.grids.push_back(it->second);
        ex.depths.push_back(grid_depth);
      }
    }
    // Fix every receiver's slot numbering (delivery targets).
    std::vector<size_t> next_slot(static_cast<size_t>(ranks), 0);
    for (auto& m : ex.msgs) {
      m.dst_slot = next_slot[static_cast<size_t>(m.dst)]++;
    }
  }
  return plan;
}

}  // namespace snowflake
