#include "backend/distsim/comm_plan.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace snowflake {

namespace {

/// Emit owner-direct messages filling rank `dst`'s halo rows
/// [g_lo, g_hi) (global coordinates, already clamped to the grid) of one
/// grid.  Walks every owning rank; a window deeper than the adjacent slab
/// naturally draws from ranks further away.
void emit_window(std::vector<MsgSpec>* out, const std::vector<Slab>& slabs,
                 int dst, size_t grid_index, std::int64_t halo,
                 std::int64_t g_lo, std::int64_t g_hi) {
  if (g_hi <= g_lo) return;
  for (int src = 0; src < static_cast<int>(slabs.size()); ++src) {
    if (src == dst) continue;
    const Slab& s = slabs[static_cast<size_t>(src)];
    const std::int64_t a = std::max(g_lo, s.lo);
    const std::int64_t b = std::min(g_hi, s.hi);
    if (b <= a) continue;
    MsgSpec m;
    m.src = src;
    m.dst = dst;
    m.grid_index = grid_index;
    m.src_row = a - s.lo + halo;
    m.dst_row = a - slabs[static_cast<size_t>(dst)].lo + halo;
    m.rows = b - a;
    out->push_back(m);
  }
}

}  // namespace

double CommPlan::bytes_per_run(std::int64_t row_doubles) const {
  double bytes = 0.0;
  for (const auto& wave : waves) {
    for (const auto& m : wave.msgs) {
      bytes += static_cast<double>(m.rows * row_doubles) * sizeof(double);
    }
  }
  return bytes;
}

CommPlan build_comm_plan(const CommFootprint& footprint,
                         const std::vector<std::string>& grid_names,
                         const std::vector<Slab>& slabs, std::int64_t halo) {
  std::map<std::string, size_t> grid_index;
  for (size_t i = 0; i < grid_names.size(); ++i) grid_index[grid_names[i]] = i;
  const std::int64_t extent = slabs.empty() ? 0 : slabs.back().hi;

  CommPlan plan;
  plan.waves.resize(footprint.waves.size());
  if (slabs.size() < 2) return plan;  // single rank: nothing to exchange

  for (size_t w = 0; w < footprint.waves.size(); ++w) {
    WaveExchange& ex = plan.waves[w];
    for (const auto& wg : footprint.waves[w]) {
      const auto it = grid_index.find(wg.grid);
      SF_REQUIRE(it != grid_index.end(),
                 "comm plan: unknown grid '" + wg.grid + "'");
      const std::int64_t depth = std::min(wg.depth, halo);
      if (depth <= 0) continue;
      ex.grids.push_back(it->second);
      ex.depths.push_back(depth);
      ex.margin = std::max(ex.margin, depth);
      for (int dst = 0; dst < static_cast<int>(slabs.size()); ++dst) {
        const Slab& d = slabs[static_cast<size_t>(dst)];
        emit_window(&ex.msgs, slabs, dst, it->second, halo,
                    std::max<std::int64_t>(0, d.lo - depth), d.lo);
        emit_window(&ex.msgs, slabs, dst, it->second, halo, d.hi,
                    std::min<std::int64_t>(extent, d.hi + depth));
      }
    }
    // Fix every receiver's slot numbering (delivery targets).
    std::vector<size_t> next_slot(slabs.size(), 0);
    for (auto& m : ex.msgs) {
      m.dst_slot = next_slot[static_cast<size_t>(m.dst)]++;
    }
  }
  return plan;
}

}  // namespace snowflake
