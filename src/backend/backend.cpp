#include "backend/backend.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace snowflake {

namespace {

std::map<std::string, std::shared_ptr<Backend>>& registry() {
  static std::map<std::string, std::shared_ptr<Backend>> backends;
  return backends;
}

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

// Built-in backends register themselves on first use.
void ensure_builtins_registered();

}  // namespace

void CompiledKernel::run(GridSet& grids, const ParamMap& params) {
  trace::Span span(
      trace::enabled()
          ? (run_span_name_.empty() ? "run:" + backend_name() : run_span_name_)
          : std::string(),
      "run");
  // Sample the hardware counter group around the execution; when the PMU
  // is unavailable both reads are invalid and the delta is ignored.
  auto& counters = trace::CounterGroup::instance();
  const trace::CounterValues c0 = counters.read();
  const auto start = std::chrono::steady_clock::now();
  run_impl(grids, params);
  last_run_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const trace::CounterValues delta = counters.read() - c0;
  const double modeled = modeled_seconds();
  if (profile_ != nullptr) {
    profile_->record_run(last_run_seconds_, modeled, delta);
  }
  span.counter("wall_s", last_run_seconds_);
  if (modeled > 0.0) span.counter("modeled_s", modeled);
  if (static_bytes_ > 0.0) span.counter("bytes", static_bytes_);
  if (static_flops_ > 0.0) span.counter("flops", static_flops_);
  if (delta.valid) {
    span.counter("cycles", delta.cycles);
    span.counter("instructions", delta.instructions);
    span.counter("llc_misses", delta.llc_misses);
  }
}

void CompiledKernel::attach_profile(const std::string& label,
                                    const std::string& backend,
                                    const std::string& options_salt) {
  profile_ = &trace::ProfileRegistry::instance().kernel(
      label, backend, static_bytes_, static_flops_, options_salt);
  run_span_name_ = "run:" + label;
}

std::string kernel_label(const StencilGroup& group, const ShapeMap& shapes) {
  std::ostringstream os;
  const size_t shown = std::min<size_t>(group.size(), 4);
  for (size_t i = 0; i < shown; ++i) {
    if (i) os << "+";
    os << group[i].name();
  }
  if (group.size() > shown) os << "+" << group.size() - shown << "more";
  if (!group.empty()) {
    const auto it = shapes.find(group[group.size() - 1].output());
    if (it != shapes.end()) {
      os << " @";
      for (size_t d = 0; d < it->second.size(); ++d) {
        if (d) os << "x";
        os << it->second[d];
      }
    }
  }
  return os.str();
}

std::string options_salt(const CompileOptions& o) {
  HashStream h;
  for (const auto v : o.tile) h.add(v);
  h.add(static_cast<std::int64_t>(o.fuse_colors))
      .add(static_cast<std::int64_t>(o.fuse_stencils))
      .add(static_cast<std::int64_t>(o.simd))
      .add(static_cast<std::int64_t>(o.schedule))
      .add(o.task_grain)
      .add(static_cast<std::int64_t>(o.barrier_per_stencil))
      .add(static_cast<std::int64_t>(o.analysis))
      .add(static_cast<std::int64_t>(o.time_tile))
      .add(static_cast<std::int64_t>(o.addr_opt))
      .add(static_cast<std::int64_t>(o.wavefront))
      .add(static_cast<std::int64_t>(o.simd_rows));
  for (const auto v : o.workgroup) h.add(v);
  h.add(static_cast<std::int64_t>(o.dist_ranks))
      .add(static_cast<std::int64_t>(o.dist_overlap))
      .add(static_cast<std::int64_t>(o.dist_prune));
  for (const auto v : o.dist_grid) h.add(v);
  h.add(static_cast<std::int64_t>(o.dist_pipeline))
      .add(static_cast<std::int64_t>(o.det_reduce));
  return hash_hex(h.digest());
}

std::unique_ptr<CompiledKernel> Backend::compile(const StencilGroup& group,
                                                 const ShapeMap& shapes,
                                                 const CompileOptions& options) {
  trace::Span span(trace::enabled() ? "backend:compile:" + name()
                                    : std::string(),
                   "compile");
  span.counter("stencils", static_cast<double>(group.size()));
  auto kernel = compile_impl(group, shapes, options);
  if (kernel != nullptr) {
    kernel->attach_profile(kernel_label(group, shapes), name(),
                           options_salt(options));
  }
  return kernel;
}

void Backend::register_backend(std::shared_ptr<Backend> backend) {
  SF_REQUIRE(backend != nullptr, "cannot register a null backend");
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[backend->name()] = std::move(backend);
}

Backend& Backend::get(const std::string& name) {
  ensure_builtins_registered();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(name);
  if (it == registry().end()) {
    throw LookupError("no backend named '" + name + "' is registered");
  }
  return *it->second;
}

std::vector<std::string> Backend::registered() {
  ensure_builtins_registered();
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, backend] : registry()) names.push_back(name);
  return names;
}

std::vector<double*> Backend::bind_grids(GridSet& grids, const ShapeMap& shapes,
                                         const std::vector<std::string>& order) {
  std::vector<double*> pointers;
  pointers.reserve(order.size());
  for (const auto& name : order) {
    Grid& grid = grids.at(name);
    const Index& expected = shapes.at(name);
    SF_REQUIRE(grid.shape() == expected,
               "grid '" + name + "' shape does not match the compiled shape (" +
                   grid.layout().to_string() + " vs compiled " +
                   Layout(expected).to_string() + ")");
    pointers.push_back(grid.data());
  }
  // Distinct grids must not alias (generated code declares them restrict).
  for (size_t i = 0; i < pointers.size(); ++i) {
    for (size_t j = i + 1; j < pointers.size(); ++j) {
      SF_REQUIRE(pointers[i] != pointers[j],
                 "grids '" + order[i] + "' and '" + order[j] +
                     "' alias the same storage");
    }
  }
  return pointers;
}

std::vector<double> Backend::bind_params(const ParamMap& params,
                                         const std::vector<std::string>& order) {
  std::vector<double> values;
  values.reserve(order.size());
  for (const auto& name : order) {
    auto it = params.find(name);
    if (it == params.end()) {
      throw LookupError("kernel requires parameter '" + name +
                        "' which was not supplied");
    }
    values.push_back(it->second);
  }
  return values;
}

std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const ShapeMap& shapes,
                                        const std::string& backend,
                                        const CompileOptions& options) {
  return Backend::get(backend).compile(group, shapes, options);
}

std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const GridSet& grids,
                                        const std::string& backend,
                                        const CompileOptions& options) {
  return compile(group, shapes_of(grids), backend, options);
}

// Built-in registration lives here to keep a single translation unit
// responsible for the default registry contents.
namespace detail {
std::shared_ptr<Backend> make_reference_backend();
std::shared_ptr<Backend> make_cseq_backend();
std::shared_ptr<Backend> make_openmp_backend();
std::shared_ptr<Backend> make_omptarget_backend();
std::shared_ptr<Backend> make_oclsim_backend();
std::shared_ptr<Backend> make_distsim_backend();
}  // namespace detail

namespace {

void ensure_builtins_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    Backend::register_backend(detail::make_reference_backend());
    Backend::register_backend(detail::make_cseq_backend());
    Backend::register_backend(detail::make_openmp_backend());
    Backend::register_backend(detail::make_omptarget_backend());
    Backend::register_backend(detail::make_oclsim_backend());
    Backend::register_backend(detail::make_distsim_backend());
  });
}

}  // namespace

}  // namespace snowflake
