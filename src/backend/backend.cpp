#include "backend/backend.hpp"

#include <algorithm>
#include <mutex>

#include "support/error.hpp"

namespace snowflake {

namespace {

std::map<std::string, std::shared_ptr<Backend>>& registry() {
  static std::map<std::string, std::shared_ptr<Backend>> backends;
  return backends;
}

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

// Built-in backends register themselves on first use.
void ensure_builtins_registered();

}  // namespace

void Backend::register_backend(std::shared_ptr<Backend> backend) {
  SF_REQUIRE(backend != nullptr, "cannot register a null backend");
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[backend->name()] = std::move(backend);
}

Backend& Backend::get(const std::string& name) {
  ensure_builtins_registered();
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(name);
  if (it == registry().end()) {
    throw LookupError("no backend named '" + name + "' is registered");
  }
  return *it->second;
}

std::vector<std::string> Backend::registered() {
  ensure_builtins_registered();
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, backend] : registry()) names.push_back(name);
  return names;
}

std::vector<double*> Backend::bind_grids(GridSet& grids, const ShapeMap& shapes,
                                         const std::vector<std::string>& order) {
  std::vector<double*> pointers;
  pointers.reserve(order.size());
  for (const auto& name : order) {
    Grid& grid = grids.at(name);
    const Index& expected = shapes.at(name);
    SF_REQUIRE(grid.shape() == expected,
               "grid '" + name + "' shape does not match the compiled shape (" +
                   grid.layout().to_string() + " vs compiled " +
                   Layout(expected).to_string() + ")");
    pointers.push_back(grid.data());
  }
  // Distinct grids must not alias (generated code declares them restrict).
  for (size_t i = 0; i < pointers.size(); ++i) {
    for (size_t j = i + 1; j < pointers.size(); ++j) {
      SF_REQUIRE(pointers[i] != pointers[j],
                 "grids '" + order[i] + "' and '" + order[j] +
                     "' alias the same storage");
    }
  }
  return pointers;
}

std::vector<double> Backend::bind_params(const ParamMap& params,
                                         const std::vector<std::string>& order) {
  std::vector<double> values;
  values.reserve(order.size());
  for (const auto& name : order) {
    auto it = params.find(name);
    if (it == params.end()) {
      throw LookupError("kernel requires parameter '" + name +
                        "' which was not supplied");
    }
    values.push_back(it->second);
  }
  return values;
}

std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const ShapeMap& shapes,
                                        const std::string& backend,
                                        const CompileOptions& options) {
  return Backend::get(backend).compile(group, shapes, options);
}

std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const GridSet& grids,
                                        const std::string& backend,
                                        const CompileOptions& options) {
  return compile(group, shapes_of(grids), backend, options);
}

// Built-in registration lives here to keep a single translation unit
// responsible for the default registry contents.
namespace detail {
std::shared_ptr<Backend> make_reference_backend();
std::shared_ptr<Backend> make_cseq_backend();
std::shared_ptr<Backend> make_openmp_backend();
std::shared_ptr<Backend> make_omptarget_backend();
std::shared_ptr<Backend> make_oclsim_backend();
std::shared_ptr<Backend> make_distsim_backend();
}  // namespace detail

namespace {

void ensure_builtins_registered() {
  static std::once_flag once;
  std::call_once(once, [] {
    Backend::register_backend(detail::make_reference_backend());
    Backend::register_backend(detail::make_cseq_backend());
    Backend::register_backend(detail::make_openmp_backend());
    Backend::register_backend(detail::make_omptarget_backend());
    Backend::register_backend(detail::make_oclsim_backend());
    Backend::register_backend(detail::make_distsim_backend());
  });
}

}  // namespace

}  // namespace snowflake
