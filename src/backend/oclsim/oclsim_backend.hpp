#pragma once
// The OpenCL-style micro-compiler ("oclsim").
//
// Generates one NDRange work-group function per nest with the paper's
// tall-skinny 2D blocking (§IV-B), JIT-compiles them with the host
// toolchain, and executes the work-group grid on the host like an in-order
// OpenCL command queue.  Functional results are bit-identical to the other
// backends (tested); *timing* on GPU hardware is supplied by the simulated
// device model (src/device/) — see the substitution note in DESIGN.md.

#include "backend/backend.hpp"
#include "device/sim_device.hpp"

namespace snowflake {

/// Per-dispatch modeled timing breakdown of the last run.
struct OclDispatchReport {
  std::string label;
  std::int64_t workgroups = 0;
  double bytes = 0.0;
  double modeled_seconds = 0.0;
};

/// Extended interface: oclsim kernels expose their device and the modeled
/// per-dispatch breakdown (benches downcast via dynamic_cast).
class OclSimKernelInfo {
public:
  virtual ~OclSimKernelInfo() = default;
  virtual const DeviceSpec& device_spec() const = 0;
  virtual const std::vector<OclDispatchReport>& last_report() const = 0;
};

/// Device used by kernels the oclsim backend compiles from now on
/// (defaults to DeviceSpec::k20c()).  Not retroactive.
void set_oclsim_device(DeviceSpec spec);

}  // namespace snowflake
