#include "backend/oclsim/oclsim_backend.hpp"

#include <mutex>

#include "backend/jit/jit_backend.hpp"
#include "codegen/cemit.hpp"
#include "codegen/lower.hpp"
#include "codegen/transform/addr.hpp"
#include "codegen/verify_plan.hpp"
#include "jit/cache.hpp"
#include "roofline/traffic.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake {

namespace {

/// Work-group function ABI (see emit_oclsim_source).
using WgFn = void (*)(double** grids, const double* params, std::int64_t wg0,
                      std::int64_t wg1);

DeviceSpec& configured_device() {
  static DeviceSpec spec = DeviceSpec::k20c();
  return spec;
}

std::mutex& device_mutex() {
  static std::mutex mu;
  return mu;
}

/// Coalescing quality of a dispatch: strided innermost accesses waste bus
/// width; serialized (non-parallel) nests idle almost the whole device.
double dispatch_efficiency(const KernelPlan& plan, const LoopNest& nest,
                           std::int64_t wg1) {
  if (!nest.point_parallel) return 0.05;
  double eff = 0.95;
  const int rank = static_cast<int>(plan.shapes.at(nest.out_grid).size());
  for (const auto& d : nest.dims) {
    // Strided innermost accesses halve effective coalescing; calibrated so
    // the full GSRB smoother lands at ~2x the hand-CUDA time on fine
    // grids, the gap the paper measured (§IV-B notes strided support was
    // still in progress; Figs. 7-9 show the 2x).
    if (d.grid_dim == rank - 1 && d.stride > 1) eff *= 0.45;
  }
  if (wg1 < 32) eff *= static_cast<double>(wg1) / 32.0;  // skinny tiles
  return eff;
}

struct DispatchPlan {
  OclDispatch info;
  WgFn fn = nullptr;
  DispatchStats stats;
};

class OclSimKernel final : public CompiledKernel, public OclSimKernelInfo {
public:
  OclSimKernel(KernelPlan plan, std::string source,
               std::shared_ptr<Module> module,
               const std::vector<OclDispatch>& dispatches, DeviceSpec spec,
               std::int64_t wg1)
      : plan_(std::move(plan)),
        source_(std::move(source)),
        module_(std::move(module)),
        device_(std::move(spec)) {
    for (const auto& d : dispatches) {
      DispatchPlan dp;
      dp.info = d;
      dp.fn = reinterpret_cast<WgFn>(module_->raw_symbol(d.symbol));
      const LoopNest& nest = plan_.nests[d.nest];
      dp.stats.workgroups = d.groups0 * d.groups1;
      dp.stats.points = nest.point_count;
      dp.stats.bytes = nest_traffic_bytes(plan_, nest);
      dp.stats.flops = nest_flops(plan_, nest);
      dp.stats.efficiency = dispatch_efficiency(plan_, nest, wg1);
      dispatches_.push_back(dp);
    }
    double bytes = 0.0, flops = 0.0;
    for (const auto& dp : dispatches_) {
      bytes += dp.stats.bytes;
      flops += dp.stats.flops;
    }
    set_static_costs(bytes, flops);
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    std::vector<double*> pointers =
        Backend::bind_grids(grids, plan_.shapes, plan_.grid_order);
    const std::vector<double> values =
        Backend::bind_params(params, plan_.param_order);
    last_modeled_seconds_ = 0.0;
    report_.clear();
    const SimDevice device(device_);
    for (const auto& dp : dispatches_) {
      // In-order queue: dispatches execute one after another; work-groups
      // of one dispatch are independent when the analysis proved it.
      trace::Span span(trace::enabled()
                           ? "oclsim:dispatch:" +
                                 plan_.nests[dp.info.nest].label
                           : std::string(),
                       "run");
      span.counter("workgroups", static_cast<double>(dp.stats.workgroups));
      if (dp.info.parallel) {
#pragma omp parallel for collapse(2) schedule(static)
        for (std::int64_t g0 = 0; g0 < dp.info.groups0; ++g0) {
          for (std::int64_t g1 = 0; g1 < dp.info.groups1; ++g1) {
            dp.fn(pointers.data(), values.data(), g0, g1);
          }
        }
      } else {
        dp.fn(pointers.data(), values.data(), 0, 0);
      }
      const double t = device.dispatch_seconds(dp.stats);
      last_modeled_seconds_ += t;
      span.counter("modeled_s", t);
      report_.push_back(OclDispatchReport{plan_.nests[dp.info.nest].label,
                                          dp.stats.workgroups, dp.stats.bytes,
                                          t});
    }
  }

  std::string source() const override { return source_; }
  std::string backend_name() const override { return "oclsim"; }
  double modeled_seconds() const override { return last_modeled_seconds_; }

  const DeviceSpec& device_spec() const override { return device_; }
  const std::vector<OclDispatchReport>& last_report() const override {
    return report_;
  }

private:
  KernelPlan plan_;
  std::string source_;
  std::shared_ptr<Module> module_;
  DeviceSpec device_;
  std::vector<DispatchPlan> dispatches_;
  double last_modeled_seconds_ = 0.0;
  std::vector<OclDispatchReport> report_;
};

class OclSimBackend final : public Backend {
public:
  std::string name() const override { return "oclsim"; }

  std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) override {
    // NDRange blocking replaces host tiling/fusion; build an untransformed
    // plan (the greedy schedule still determines dispatch order).
    CompileOptions plain;
    plain.barrier_per_stencil = options.barrier_per_stencil;
    KernelPlan plan = build_plan(group, shapes, plain);

    OclEmitOptions ocl;
    ocl.det_reduce = options.det_reduce;
    if (options.workgroup.size() >= 1 && options.workgroup[0] > 0) {
      ocl.wg0 = options.workgroup[0];
    }
    if (options.workgroup.size() >= 2 && options.workgroup[1] > 0) {
      ocl.wg1 = options.workgroup[1];
    }
    AddrPlan addr;
    if (options.addr_opt) {
      trace::Span span("codegen:addr", "compile");
      addr = plan_addresses(plan);
      verify_plan(plan, addr);  // structural + naive-index cross-check
      span.counter("active_nests", static_cast<double>(addr.active_count()));
      ocl.addr = &addr;
    }
    std::vector<OclDispatch> dispatches;
    const std::string source = emit_oclsim_source(plan, ocl, dispatches);

    ToolchainConfig tc;
    tc.openmp = false;  // work-group functions are pure; host parallelizes
    const Toolchain toolchain(tc);
    auto module = KernelCache::instance().get_or_compile(source, toolchain);

    DeviceSpec spec;
    {
      std::lock_guard<std::mutex> lock(device_mutex());
      spec = configured_device();
    }
    return std::make_unique<OclSimKernel>(std::move(plan), source,
                                          std::move(module), dispatches,
                                          std::move(spec), ocl.wg1);
  }
};

}  // namespace

void set_oclsim_device(DeviceSpec spec) {
  std::lock_guard<std::mutex> lock(device_mutex());
  configured_device() = std::move(spec);
}

namespace detail {
std::shared_ptr<Backend> make_oclsim_backend() {
  return std::make_shared<OclSimBackend>();
}
}  // namespace detail

}  // namespace snowflake
