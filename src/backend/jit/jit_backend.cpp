#include "backend/jit/jit_backend.hpp"

#include <omp.h>

#include <algorithm>

#include "analysis/dag.hpp"
#include "analysis/interval.hpp"
#include "codegen/cemit.hpp"
#include "codegen/lower.hpp"
#include "codegen/transform/addr.hpp"
#include "codegen/transform/fusion.hpp"
#include "codegen/transform/multicolor.hpp"
#include "codegen/transform/tiling.hpp"
#include "codegen/transform/time_tiling.hpp"
#include "codegen/transform/wavefront.hpp"
#include "codegen/verify_plan.hpp"
#include "jit/cache.hpp"
#include "roofline/traffic.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"
#include "trace/trace.hpp"

namespace snowflake {

Schedule build_schedule(const StencilGroup& group, const ShapeMap& shapes,
                        const CompileOptions& options) {
  trace::Span span("analysis:schedule", "compile");
  Schedule schedule =
      options.barrier_per_stencil
          ? barrier_per_stencil_schedule(group, shapes)
      : options.analysis == CompileOptions::Analysis::Interval
          ? greedy_schedule_interval(group, shapes)
          : greedy_schedule(group, shapes);
  span.counter("waves", static_cast<double>(schedule.waves.size()));
  return schedule;
}

namespace {

/// Pick an automatic task grain: enough blocks for ~8 tasks per thread on
/// the largest nest (the paper splits "larger stencils" into subtasks).
std::int64_t auto_task_grain(const KernelPlan& plan) {
  std::int64_t max_outer = 0;
  for (const auto& nest : plan.nests) {
    if (nest.dims.empty() || !nest.point_parallel) continue;
    const LoopDim& d0 = nest.dims[0];
    const std::int64_t count =
        d0.hi <= d0.lo ? 0 : (d0.hi - 1 - d0.lo) / d0.stride + 1;
    max_outer = std::max(max_outer, count);
  }
  const std::int64_t target_tasks = 8LL * omp_get_max_threads();
  if (max_outer <= target_tasks) return 0;  // whole-chain tasks are enough
  return std::max<std::int64_t>(1, max_outer / target_tasks);
}

enum class JitMode { Sequential, OpenMP, OpenMPTarget };

/// Plan address arithmetic when the option asks for it (the plan stays
/// empty — and EmitOptions::addr null — when addr_opt is off).
AddrPlan maybe_plan_addresses(const KernelPlan& plan,
                              const CompileOptions& options) {
  AddrPlan addr;
  if (!options.addr_opt) return addr;
  trace::Span span("codegen:addr", "compile");
  addr = plan_addresses(plan);
  verify_plan(plan, addr);  // structural + naive-index cross-check
  span.counter("active_nests", static_cast<double>(addr.active_count()));
  return addr;
}

EmitOptions emit_options_for(const CompileOptions& options,
                             const KernelPlan& plan, JitMode mode) {
  EmitOptions eo;
  switch (mode) {
    case JitMode::Sequential:
      eo.mode = EmitOptions::Mode::Sequential;
      break;
    case JitMode::OpenMPTarget:
      eo.mode = EmitOptions::Mode::OpenMPTarget;
      break;
    case JitMode::OpenMP:
      if (options.schedule == CompileOptions::Schedule::Tasks) {
        eo.mode = EmitOptions::Mode::OpenMPTasks;
        eo.task_grain = options.task_grain > 0 ? options.task_grain
                                               : auto_task_grain(plan);
      } else {
        eo.mode = EmitOptions::Mode::OpenMPFor;
      }
      break;
  }
  eo.simd = options.simd;
  eo.simd_rows = options.simd_rows;
  eo.det_reduce = options.det_reduce;
  return eo;
}

/// Host toolchain flags for a JIT compile.  Sequential-mode simd_rows
/// kernels get -fopenmp-simd so their `omp simd` pragmas vectorize
/// without the OpenMP runtime (the flag feeds flags_fingerprint(), hence
/// the kernel cache key).
ToolchainConfig toolchain_for(const CompileOptions& options, bool openmp) {
  ToolchainConfig tc;
  tc.openmp = openmp;
  if (!openmp && options.simd_rows) tc.extra_flags.push_back("-fopenmp-simd");
  return tc;
}

class JitKernel final : public CompiledKernel {
public:
  JitKernel(KernelPlan plan, std::string source, std::shared_ptr<Module> module,
            std::string backend, int fused_sweeps = 1, double bytes_per_run = -1.0)
      : plan_(std::move(plan)),
        source_(std::move(source)),
        module_(std::move(module)),
        fn_(module_->kernel(kernel_symbol())),
        backend_(std::move(backend)),
        fused_sweeps_(fused_sweeps) {
    double flops = 0.0;
    for (const auto& nest : plan_.nests) flops += nest_flops(plan_, nest);
    flops *= fused_sweeps;  // useful flops only; halo redundancy not counted
    set_static_costs(
        bytes_per_run >= 0.0 ? bytes_per_run : plan_traffic_bytes(plan_), flops);
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    std::vector<double*> pointers =
        Backend::bind_grids(grids, plan_.shapes, plan_.grid_order);
    const std::vector<double> values =
        Backend::bind_params(params, plan_.param_order);
    fn_(pointers.data(), values.data());
  }

  std::string source() const override { return source_; }
  std::string backend_name() const override { return backend_; }
  int fused_sweeps() const override { return fused_sweeps_; }

private:
  KernelPlan plan_;
  std::string source_;
  std::shared_ptr<Module> module_;
  KernelFn fn_;
  std::string backend_;
  int fused_sweeps_ = 1;
};

class JitBackend : public Backend {
public:
  explicit JitBackend(JitMode mode) : mode_(mode) {}

  std::string name() const override {
    switch (mode_) {
      case JitMode::Sequential: return "c";
      case JitMode::OpenMP: return "openmp";
      case JitMode::OpenMPTarget: return "omptarget";
    }
    return "c";
  }

  std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) override {
    if (options.time_tile >= 2 && mode_ != JitMode::OpenMPTarget) {
      if (options.wavefront) {
        if (auto kernel = compile_wavefront(group, shapes, options)) {
          return kernel;
        }
      } else if (auto kernel = compile_time_tiled(group, shapes, options)) {
        return kernel;
      }
      // Fall through to the per-sweep schedule: one run() = one sweep.
    }
    KernelPlan plan = build_plan(group, shapes, options);
    const AddrPlan addr = maybe_plan_addresses(plan, options);
    std::string source;
    {
      trace::Span span("codegen:emit", "compile");
      EmitOptions eo = emit_options_for(options, plan, mode_);
      if (options.addr_opt) eo.addr = &addr;
      source = emit_c_source(plan, eo);
      span.counter("source_bytes", static_cast<double>(source.size()));
    }
    const Toolchain toolchain(
        toolchain_for(options, mode_ != JitMode::Sequential));
    auto module = KernelCache::instance().get_or_compile(source, toolchain);
    return std::make_unique<JitKernel>(std::move(plan), source,
                                       std::move(module), name());
  }

private:
  /// Attempt the temporal-blocking path; nullptr (with a logged reason)
  /// when the halo analysis rejects the group.
  std::unique_ptr<CompiledKernel> compile_time_tiled(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) {
    const Schedule schedule = build_schedule(group, shapes, options);
    std::string reason;
    auto tt = plan_time_tiling(group, shapes, schedule, options.time_tile,
                               options.tile, &reason);
    if (!tt) {
      SF_LOG_WARN("time tiling fallback (depth " << options.time_tile
                                                 << "): " << reason);
      return nullptr;
    }
    {
      trace::Span span("codegen:verify_plan", "compile");
      verify_plan(tt->base);
    }
    EmitOptions eo;
    eo.mode = mode_ == JitMode::Sequential
                  ? EmitOptions::Mode::Sequential
              : options.schedule == CompileOptions::Schedule::Tasks
                  ? EmitOptions::Mode::OpenMPTasks
                  : EmitOptions::Mode::OpenMPFor;
    eo.simd = options.simd;
    eo.simd_rows = options.simd_rows;
    const AddrPlan addr = maybe_plan_addresses(tt->base, options);
    if (options.addr_opt) eo.addr = &addr;
    std::string source;
    {
      trace::Span span("codegen:emit", "compile");
      source = emit_time_tiled_source(*tt, eo);
      span.counter("source_bytes", static_cast<double>(source.size()));
    }
    const Toolchain toolchain(
        toolchain_for(options, mode_ != JitMode::Sequential));
    auto module = KernelCache::instance().get_or_compile(source, toolchain);
    const double bytes = time_tile_traffic_bytes(*tt);
    return std::make_unique<JitKernel>(std::move(tt->base), source,
                                       std::move(module), name(), tt->depth,
                                       bytes);
  }

  /// Attempt the wavefront temporal-blocking path (CompileOptions::
  /// wavefront); nullptr with a logged reason when the halo analysis
  /// rejects the group (the caller then falls back to per-sweep).
  std::unique_ptr<CompiledKernel> compile_wavefront(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) {
    const Schedule schedule = build_schedule(group, shapes, options);
    std::string reason;
    auto wf = plan_wavefront(group, shapes, schedule, options.time_tile,
                             options.tile, &reason);
    if (!wf) {
      SF_LOG_WARN("wavefront fallback (depth " << options.time_tile
                                               << "): " << reason);
      return nullptr;
    }
    {
      trace::Span span("codegen:verify_plan", "compile");
      verify_plan(wf->tt.base);
    }
    EmitOptions eo;
    // Both OpenMP schedules render identically as worksharing over the
    // cooperative slab sweep (tasks have no role in an ordered traversal);
    // normalizing keeps the cache key shared.
    eo.mode = mode_ == JitMode::Sequential ? EmitOptions::Mode::Sequential
                                           : EmitOptions::Mode::OpenMPFor;
    eo.simd = options.simd;
    eo.simd_rows = options.simd_rows;
    const AddrPlan addr = maybe_plan_addresses(wf->tt.base, options);
    if (options.addr_opt) eo.addr = &addr;
    std::string source;
    {
      trace::Span span("codegen:emit", "compile");
      source = emit_wavefront_source(*wf, eo);
      span.counter("source_bytes", static_cast<double>(source.size()));
    }
    const Toolchain toolchain(
        toolchain_for(options, mode_ != JitMode::Sequential));
    auto module = KernelCache::instance().get_or_compile(source, toolchain);
    const double bytes = wavefront_traffic_bytes(*wf);
    return std::make_unique<JitKernel>(std::move(wf->tt.base), source,
                                       std::move(module), name(),
                                       wf->tt.depth, bytes);
  }

  JitMode mode_;
};

}  // namespace

KernelPlan build_plan(const StencilGroup& group, const ShapeMap& shapes,
                      const CompileOptions& options) {
  const Schedule schedule = build_schedule(group, shapes, options);
  KernelPlan plan = lower(group, shapes, schedule);
  {
    trace::Span span("codegen:transforms", "compile");
    if (options.fuse_stencils) fuse_statements(plan);
    if (options.fuse_colors) fuse_multicolor(plan);
    if (!options.tile.empty()) tile_plan(plan, options.tile);
  }
  {
    trace::Span span("codegen:verify_plan", "compile");
    verify_plan(plan);  // catch broken transform rewrites at the IR boundary
  }
  return plan;
}

std::string render_source(const StencilGroup& group, const ShapeMap& shapes,
                          const CompileOptions& options, bool openmp) {
  KernelPlan plan = build_plan(group, shapes, options);
  const AddrPlan addr = maybe_plan_addresses(plan, options);
  EmitOptions eo = emit_options_for(
      options, plan, openmp ? JitMode::OpenMP : JitMode::Sequential);
  if (options.addr_opt) eo.addr = &addr;
  return emit_c_source(plan, eo);
}

namespace detail {
std::shared_ptr<Backend> make_cseq_backend() {
  return std::make_shared<JitBackend>(JitMode::Sequential);
}
std::shared_ptr<Backend> make_openmp_backend() {
  return std::make_shared<JitBackend>(JitMode::OpenMP);
}
std::shared_ptr<Backend> make_omptarget_backend() {
  return std::make_shared<JitBackend>(JitMode::OpenMPTarget);
}
}  // namespace detail

}  // namespace snowflake
