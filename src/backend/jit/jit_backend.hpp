#pragma once
// The JIT micro-compilers: sequential C ("c") and C+OpenMP ("openmp").
//
// Pipeline (paper §IV): dependence schedule -> lower to KernelPlan ->
// optional multicolor fusion -> optional tiling -> render C -> host
// compiler -> dlopen -> callable, with source-hash caching.

#include "analysis/dag.hpp"
#include "backend/backend.hpp"
#include "codegen/plan.hpp"

namespace snowflake {

/// Build the dependence schedule the JIT backends compile against
/// (Diophantine/interval/barrier-per-stencil per the options).
Schedule build_schedule(const StencilGroup& group, const ShapeMap& shapes,
                        const CompileOptions& options);

/// Build the transformed plan for a group (shared by the JIT backends and
/// exposed for tests/benches that want to inspect generated structure).
KernelPlan build_plan(const StencilGroup& group, const ShapeMap& shapes,
                      const CompileOptions& options);

/// Render the C source a JIT backend would compile (without compiling).
std::string render_source(const StencilGroup& group, const ShapeMap& shapes,
                          const CompileOptions& options, bool openmp);

}  // namespace snowflake
