#pragma once
// Backend interface and registry (paper Figure 5: micro-compilers plug in
// behind a narrow boundary — the platform expert adds a Backend; the
// scientist only ever calls compile()).
//
// Built-in backends:
//   "reference" — sequential interpreter, no toolchain needed (oracle).
//   "c"         — sequential C micro-compiler (JIT via the host compiler).
//   "openmp"    — C+OpenMP micro-compiler (tasks or parallel-for, tiling,
//                 multicolor reordering).
//   "oclsim"    — OpenCL-style micro-compiler executing NDRange work-groups
//                 on the simulated device (see src/device/).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "grid/grid_set.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"
#include "trace/profile.hpp"

namespace snowflake {

/// Scalar arguments supplied at call time (ParamExpr bindings).
using ParamMap = std::map<std::string, double>;

struct CompileOptions {
  /// Tile sizes per dimension (empty = untiled).  Applied to parallel nests.
  Index tile;
  /// Multicolor reordering: fuse independent strided rects of a wave under
  /// one memory sweep (§IV-A).
  bool fuse_colors = false;
  /// Statement fusion: merge independent same-shape stencils of a wave into
  /// one loop nest (§VII "mark stencils for fusion").
  bool fuse_stencils = false;
  /// Annotate innermost point-parallel loops with `#pragma omp simd`
  /// (OpenMP backends).
  bool simd = false;
  /// OpenMP scheduling style (§IV-A: the paper uses tasks by default).
  enum class Schedule { Tasks, ParallelFor } schedule = Schedule::Tasks;
  /// Outer-dim iterations per task when splitting large nests (0 = auto:
  /// whole-nest tasks).
  std::int64_t task_grain = 0;
  /// Replace the greedy wave grouping with a barrier after every stencil
  /// (ablation A5).
  bool barrier_per_stencil = false;
  /// Which dependence analysis drives scheduling: the paper's exact
  /// finite-domain Diophantine analysis, or the Halide-style interval
  /// over-approximation (ablation A7 — always correct, less parallel).
  enum class Analysis { Diophantine, Interval } analysis = Analysis::Diophantine;
  /// Temporal blocking depth (JIT backends): fuse this many consecutive
  /// applications of the group into one traversal of overlapped tiles, so
  /// one run() performs `time_tile` sweeps (see CompiledKernel::
  /// fused_sweeps()).  `tile` doubles as the spatial tile edge sizes
  /// (default 32 per dim).  1 disables; when the halo analysis rejects the
  /// group the backend logs the reason and falls back to the per-sweep
  /// schedule, never producing wrong answers.
  int time_tile = 1;
  /// Address-arithmetic optimization (codegen/transform/addr.hpp): hoist
  /// per-row base pointers above the innermost loop, fold pure-offset
  /// reads to `base[i + C]`, and strength-reduce multiplicative/divisive
  /// index maps into division-free induction variables.  Per-nest fallback
  /// to the legacy re-linearized indexing when illegal; off = exactly
  /// today's codegen (A/B comparison, `bench_ablation_addr`).
  bool addr_opt = true;
  /// Wavefront time-tiling (JIT backends, requires time_tile >= 2):
  /// replace the per-tile snapshot+scratch schedule with a skewed slab
  /// traversal along dim 0.  Slabs are processed in order; the left fused
  /// halo comes from a small carry band saved before each copy-out, the
  /// right halo from the still-untouched live grid ahead of the
  /// wavefront — no whole-grid snapshot, cutting the temporal-blocking
  /// traffic overhead to O(halo) per written grid.  `tile[0]` is the slab
  /// width (clamped to at least the fused halo depth); the same
  /// analysis/halo legality gate applies, with fallback first to the
  /// snapshot schedule's planner inputs and then to per-sweep.
  bool wavefront = false;
  /// Explicit-SIMD row kernels: annotate innermost point-parallel rows
  /// with `#pragma omp simd` (plus addr-plan `linear` clauses) as its own
  /// candidate axis.  Unlike `simd` this also applies to the sequential
  /// "c" backend, which is compiled with -fopenmp-simd so the pragma
  /// vectorizes without the OpenMP runtime.
  bool simd_rows = false;
  /// Work-group tile (oclsim backend): the tall-skinny 2D block edge sizes
  /// in the innermost two dims.  Empty = {16, 64}.
  Index workgroup;
  /// Number of simulated distributed ranks (distsim backend); <= 0 picks
  /// a default of 2.  Requests larger than the dim-0 extent are clamped
  /// to one row per rank with a logged warning.
  int dist_ranks = 0;
  /// Cartesian process grid (distsim backend).  Empty = legacy dim-0
  /// slabs of dist_ranks.  A single entry {R} auto-factorizes R over the
  /// axes to minimize the modeled cut surface.  A full-rank entry
  /// {r0, r1, ...} is the explicit ranks-per-axis grid; per-axis counts
  /// larger than the extent are clamped with a logged warning.
  Index dist_grid;
  /// Pipelined (non-bulk-synchronous) wave execution (distsim backend):
  /// each face's halo is sent as soon as the region producing it is
  /// computed, and a rank may start the next wave's interior while still
  /// awaiting this wave's remaining face messages.  Off = a rank finishes
  /// all of wave w before touching wave w+1 (the BSP ablation baseline).
  bool dist_pipeline = true;
  /// Overlap communication with computation (distsim backend): split each
  /// rank's wave at compile time into an interior sub-program that runs
  /// while halo messages are in flight and a boundary sub-program that
  /// runs after they arrive.  Off = post sends, wait, then compute the
  /// whole wave (the ablation baseline, bench_ablation_dist).
  bool dist_overlap = true;
  /// Prune the halo exchange with the dependence footprint (distsim
  /// backend): only grids an earlier wave wrote travel, each only as deep
  /// as the next wave reads it.  Off = every grid, full halo depth,
  /// every wave (the legacy copy-everything baseline).
  bool dist_prune = true;
  /// Deterministic reductions: accumulate every ReduceExpr with the
  /// canonical pairwise tree the reference interpreter uses, in every
  /// backend and schedule, so reduction scalars (and anything derived
  /// from them, e.g. Krylov residual histories) are bit-identical across
  /// backends.  Off = fastest native accumulation per backend (plain
  /// left fold, `omp for reduction(...)` under ParallelFor).
  bool det_reduce = false;
};

/// A compiled, executable stencil group (the "Python callable" of §IV).
///
/// run() is a template method: the base class times every execution (see
/// last_run_seconds()), emits a trace span when tracing is enabled, and
/// feeds the process-wide trace::ProfileRegistry; backends implement
/// run_impl().  Backends that know their static cost model call
/// set_static_costs() so the profile can report achieved GB/s against the
/// roofline.
class CompiledKernel {
public:
  virtual ~CompiledKernel() = default;

  /// Execute over the grids (shapes must match the compiled shapes).
  /// Times the run and records it into the runtime profile; not
  /// re-entrant on one kernel object (concurrent callers race on the
  /// last-run timer, nothing worse).
  void run(GridSet& grids, const ParamMap& params = {});

  /// Wall-clock seconds of the most recent run() (0.0 before the first).
  double last_run_seconds() const { return last_run_seconds_; }

  /// Generated source text, when the backend generates any ("" otherwise).
  virtual std::string source() const { return ""; }

  /// Backend that produced this kernel.
  virtual std::string backend_name() const = 0;

  /// Modeled device seconds of the last run() (simulated-device backends
  /// only; 0.0 for backends whose wall-clock time is the real time).
  virtual double modeled_seconds() const { return 0.0; }

  /// Group applications performed by one run(): 1 normally, the fused
  /// depth for time-tiled kernels (CompileOptions::time_tile).  Callers
  /// comparing per-sweep cost must divide run time by this.
  virtual int fused_sweeps() const { return 1; }

protected:
  /// Backend-specific execution.
  virtual void run_impl(GridSet& grids, const ParamMap& params) = 0;

  /// Static per-run cost model (estimated DRAM bytes and flops of one
  /// run) for roofline annotation; call from the backend's compile path.
  void set_static_costs(double bytes_per_run, double flops_per_run) {
    static_bytes_ = bytes_per_run;
    static_flops_ = flops_per_run;
  }

private:
  friend class Backend;
  void attach_profile(const std::string& label, const std::string& backend,
                      const std::string& options_salt);

  trace::KernelProfile* profile_ = nullptr;  // registry-owned, never freed
  std::string run_span_name_;
  double static_bytes_ = 0.0;
  double static_flops_ = 0.0;
  double last_run_seconds_ = 0.0;
};

/// Human-readable kernel identity used to key runtime profiles: the member
/// stencil names plus the output shape, so the same operator compiled at
/// two multigrid levels gets two entries.
std::string kernel_label(const StencilGroup& group, const ShapeMap& shapes);

/// Short hex hash over every CompileOptions field.  Salts runtime-profile
/// and perf-ledger keys so the same kernel compiled with different
/// schedules (tiling, fusion, time_tile, ...) forms distinct time series
/// instead of one blurred one.
std::string options_salt(const CompileOptions& options);

class Backend {
public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// Compile the group.  Template method: wraps the backend's
  /// compile_impl() in a "backend:compile:<name>" trace span and attaches
  /// the runtime profile to the returned kernel, so every backend —
  /// including user-registered ones — is observable for free.
  std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                          const ShapeMap& shapes,
                                          const CompileOptions& options);

  /// Registry -------------------------------------------------------------

  /// Register a backend under its name() (replaces any existing).
  static void register_backend(std::shared_ptr<Backend> backend);

  /// Look up a backend; throws LookupError for unknown names.
  static Backend& get(const std::string& name);

  /// Names of all registered backends, sorted.
  static std::vector<std::string> registered();

  /// Validate grids against compiled shapes and collect pointers/params in
  /// plan order (shared by every backend's kernel implementation).
  static std::vector<double*> bind_grids(GridSet& grids, const ShapeMap& shapes,
                                         const std::vector<std::string>& order);
  static std::vector<double> bind_params(const ParamMap& params,
                                         const std::vector<std::string>& order);

protected:
  /// Backend-specific compilation.
  virtual std::unique_ptr<CompiledKernel> compile_impl(
      const StencilGroup& group, const ShapeMap& shapes,
      const CompileOptions& options) = 0;
};

/// Convenience: compile with a named backend.
std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const ShapeMap& shapes,
                                        const std::string& backend = "openmp",
                                        const CompileOptions& options = {});

/// Convenience: compile against a GridSet's shapes.
std::unique_ptr<CompiledKernel> compile(const StencilGroup& group,
                                        const GridSet& grids,
                                        const std::string& backend = "openmp",
                                        const CompileOptions& options = {});

}  // namespace snowflake
