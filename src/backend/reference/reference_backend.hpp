#pragma once
// Reference interpreter backend: executes a StencilGroup directly with
// strict program-order, lexicographic-iteration semantics.  Needs no host
// compiler, so it doubles as the fallback backend and as the correctness
// oracle every JIT backend is tested against.
//
// Expressions are flattened once, at compile time, into a small stack
// machine (no virtual dispatch per point) — an interpreter, but not a
// gratuitously slow one.

#include "backend/backend.hpp"

namespace snowflake {

/// One-shot convenience: interpret `group` over `grids` (the oracle call
/// used throughout the test suite).
void run_reference(const StencilGroup& group, GridSet& grids,
                   const ParamMap& params = {});

}  // namespace snowflake
