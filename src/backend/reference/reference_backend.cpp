#include "backend/reference/reference_backend.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace snowflake {

namespace {

enum class OpCode { PushConst, PushParam, PushRead, Add, Sub, Mul, Div, Neg };

struct Op {
  OpCode code;
  double value = 0.0;   // PushConst
  int param = -1;       // PushParam: index into the bound param vector
  int grid = -1;        // PushRead: index into the bound grid vector
  IndexMap map;         // PushRead
};

/// Postorder flattening of an expression into stack-machine ops.
void flatten(const ExprPtr& e, const std::vector<std::string>& grid_order,
             const std::vector<std::string>& param_order, std::vector<Op>& out) {
  switch (e->kind()) {
    case ExprKind::Constant:
      out.push_back(Op{OpCode::PushConst,
                       static_cast<const ConstantExpr&>(*e).value(), -1, -1, {}});
      return;
    case ExprKind::Param: {
      const auto& name = static_cast<const ParamExpr&>(*e).name();
      for (size_t i = 0; i < param_order.size(); ++i) {
        if (param_order[i] == name) {
          out.push_back(Op{OpCode::PushParam, 0.0, static_cast<int>(i), -1, {}});
          return;
        }
      }
      throw InternalError("parameter '" + name + "' missing from order");
    }
    case ExprKind::GridRead: {
      const auto& r = static_cast<const GridReadExpr&>(*e);
      for (size_t i = 0; i < grid_order.size(); ++i) {
        if (grid_order[i] == r.grid()) {
          out.push_back(
              Op{OpCode::PushRead, 0.0, -1, static_cast<int>(i), r.map()});
          return;
        }
      }
      throw InternalError("grid '" + r.grid() + "' missing from order");
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      flatten(b.lhs(), grid_order, param_order, out);
      flatten(b.rhs(), grid_order, param_order, out);
      switch (b.op()) {
        case BinaryOp::Add: out.push_back(Op{OpCode::Add, 0.0, -1, -1, {}}); break;
        case BinaryOp::Sub: out.push_back(Op{OpCode::Sub, 0.0, -1, -1, {}}); break;
        case BinaryOp::Mul: out.push_back(Op{OpCode::Mul, 0.0, -1, -1, {}}); break;
        case BinaryOp::Div: out.push_back(Op{OpCode::Div, 0.0, -1, -1, {}}); break;
      }
      return;
    }
    case ExprKind::Unary:
      flatten(static_cast<const UnaryExpr&>(*e).operand(), grid_order,
              param_order, out);
      out.push_back(Op{OpCode::Neg, 0.0, -1, -1, {}});
      return;
  }
  throw InternalError("unhandled expression kind in flatten");
}

struct CompiledStencil {
  std::vector<Op> ops;  // the ReduceExpr *body* for reductions
  int out_grid = -1;
  DomainUnion domain;
  bool is_reduce = false;
  ReduceOp reduce_op = ReduceOp::Sum;
  int anchor_grid = -1;  // reductions resolve their domain against this grid
};

double reduce_identity(ReduceOp op) {
  return op == ReduceOp::Max ? -std::numeric_limits<double>::infinity() : 0.0;
}

double reduce_combine(ReduceOp op, double a, double b) {
  return op == ReduceOp::Max ? std::fmax(a, b) : a + b;
}

class ReferenceKernel final : public CompiledKernel {
public:
  ReferenceKernel(const StencilGroup& group, ShapeMap shapes)
      : shapes_(std::move(shapes)) {
    validate_group(group, shapes_);
    for (const auto& g : group.grids()) grid_order_.push_back(g);
    for (const auto& p : group.params()) param_order_.push_back(p);
    for (const auto& s : group.stencils()) {
      CompiledStencil cs;
      cs.is_reduce = s.is_reduction();
      if (cs.is_reduce) {
        const ReduceExpr& red = s.reduction();
        cs.reduce_op = red.op();
        flatten(red.body(), grid_order_, param_order_, cs.ops);
        for (size_t i = 0; i < grid_order_.size(); ++i) {
          if (grid_order_[i] == red.anchor()) {
            cs.anchor_grid = static_cast<int>(i);
          }
        }
        SF_ASSERT(cs.anchor_grid >= 0, "anchor grid missing from order");
      } else {
        flatten(s.expr(), grid_order_, param_order_, cs.ops);
      }
      cs.domain = s.domain();
      for (size_t i = 0; i < grid_order_.size(); ++i) {
        if (grid_order_[i] == s.output()) cs.out_grid = static_cast<int>(i);
      }
      SF_ASSERT(cs.out_grid >= 0, "output grid missing from order");
      stencils_.push_back(std::move(cs));
    }
  }

  void run_impl(GridSet& grids, const ParamMap& params) override {
    const std::vector<double*> data =
        Backend::bind_grids(grids, shapes_, grid_order_);
    const std::vector<double> pvals =
        Backend::bind_params(params, param_order_);
    // Per-grid layouts for index linearization.
    std::vector<Layout> layouts;
    layouts.reserve(grid_order_.size());
    for (const auto& g : grid_order_) layouts.emplace_back(shapes_.at(g));

    std::vector<double> stack;
    Index mapped;
    const auto eval_point = [&](const CompiledStencil& cs,
                                const Index& point) -> double {
      size_t top = 0;
      for (const auto& op : cs.ops) {
        switch (op.code) {
          case OpCode::PushConst:
            stack[top++] = op.value;
            break;
          case OpCode::PushParam:
            stack[top++] = pvals[static_cast<size_t>(op.param)];
            break;
          case OpCode::PushRead: {
            for (size_t d = 0; d < point.size(); ++d) {
              mapped[d] = op.map.dim(static_cast<int>(d)).apply(point[d]);
            }
            const Layout& layout = layouts[static_cast<size_t>(op.grid)];
            stack[top++] =
                data[static_cast<size_t>(op.grid)][layout.offset(mapped)];
            break;
          }
          case OpCode::Add: --top; stack[top - 1] += stack[top]; break;
          case OpCode::Sub: --top; stack[top - 1] -= stack[top]; break;
          case OpCode::Mul: --top; stack[top - 1] *= stack[top]; break;
          case OpCode::Div: --top; stack[top - 1] /= stack[top]; break;
          case OpCode::Neg: stack[top - 1] = -stack[top - 1]; break;
        }
      }
      SF_ASSERT(top == 1, "stack machine imbalance");
      return stack[0];
    };

    for (const auto& cs : stencils_) {
      const Layout& out_layout = layouts[static_cast<size_t>(cs.out_grid)];
      stack.resize(cs.ops.size());
      if (cs.is_reduce) {
        // The oracle accumulation: the canonical pairwise tree, one tree
        // per rect in lexicographic point order, rect results combined in
        // rect order.  The JIT backends emit textually the same algorithm
        // under CompileOptions::det_reduce, so scalars are bit-identical.
        const Layout& anchor_layout =
            layouts[static_cast<size_t>(cs.anchor_grid)];
        const ResolvedUnion domain = cs.domain.resolve(anchor_layout.shape());
        mapped.assign(anchor_layout.shape().size(), 0);
        double* out0 = data[static_cast<size_t>(cs.out_grid)];
        bool first = true;
        for (const auto& rect : domain.rects()) {
          if (rect.empty()) continue;
          double pw[64];
          int pn = 0;
          std::uint64_t cnt = 0;
          rect.for_each([&](const Index& point) {
            pw[pn++] = eval_point(cs, point);
            ++cnt;
            for (std::uint64_t t = cnt; (t & 1u) == 0u; t >>= 1) {
              --pn;
              pw[pn - 1] = reduce_combine(cs.reduce_op, pw[pn - 1], pw[pn]);
            }
          });
          double acc = pn > 0 ? pw[pn - 1] : reduce_identity(cs.reduce_op);
          for (int i = pn - 2; i >= 0; --i) {
            acc = reduce_combine(cs.reduce_op, pw[i], acc);
          }
          out0[0] = first ? acc : reduce_combine(cs.reduce_op, out0[0], acc);
          first = false;
        }
        // A fully empty domain lowers to no nests at all in the JIT
        // backends; leave the result untouched to match.
        continue;
      }
      const ResolvedUnion domain = cs.domain.resolve(out_layout.shape());
      mapped.assign(out_layout.shape().size(), 0);
      domain.for_each([&](const Index& point) {
        data[static_cast<size_t>(cs.out_grid)][out_layout.offset(point)] =
            eval_point(cs, point);
      });
    }
  }

  std::string backend_name() const override { return "reference"; }

private:
  ShapeMap shapes_;
  std::vector<std::string> grid_order_;
  std::vector<std::string> param_order_;
  std::vector<CompiledStencil> stencils_;
};

class ReferenceBackend final : public Backend {
public:
  std::string name() const override { return "reference"; }

  std::unique_ptr<CompiledKernel> compile_impl(const StencilGroup& group,
                                               const ShapeMap& shapes,
                                               const CompileOptions&) override {
    return std::make_unique<ReferenceKernel>(group, shapes);
  }
};

}  // namespace

namespace detail {
std::shared_ptr<Backend> make_reference_backend() {
  return std::make_shared<ReferenceBackend>();
}
}  // namespace detail

void run_reference(const StencilGroup& group, GridSet& grids,
                   const ParamMap& params) {
  ReferenceKernel kernel(group, shapes_of(grids));
  kernel.run(grids, params);
}

}  // namespace snowflake
