#include "verify/program.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {
namespace snowcheck {

GridSet Program::materialize() const {
  GridSet out;
  for (const auto& [name, spec] : grids) {
    out.add_zeros(name, spec.shape).fill_random(spec.fill_seed, spec.lo, spec.hi);
  }
  return out;
}

ShapeMap Program::shapes() const {
  ShapeMap out;
  for (const auto& [name, spec] : grids) out[name] = spec.shape;
  return out;
}

std::string Program::describe() const {
  std::ostringstream os;
  os << group.to_string();
  for (const auto& [name, spec] : grids) {
    os << "grid " << name << ": [";
    for (size_t d = 0; d < spec.shape.size(); ++d) {
      if (d) os << ", ";
      os << spec.shape[d];
    }
    os << "] seed " << spec.fill_seed << " in [" << spec.lo << ", " << spec.hi
       << "]\n";
  }
  for (const auto& [name, value] : params) {
    os << "param " << name << " = " << value << "\n";
  }
  return os.str();
}

bool is_valid(const Program& program) {
  if (program.group.empty()) return false;
  for (const auto& s : program.group.stencils()) {
    for (const auto& g : s.grids()) {
      if (program.grids.count(g) == 0) return false;
    }
    for (const auto& p : s.params()) {
      if (program.params.count(p) == 0) return false;
    }
  }
  try {
    validate_group(program.group, program.shapes());
  } catch (const Error&) {
    return false;
  }
  return true;
}

}  // namespace snowcheck
}  // namespace snowflake
