#include "verify/generate.hpp"

#include <string>
#include <vector>

#include "ir/stencil_library.hpp"

namespace snowflake {
namespace snowcheck {

namespace {

/// All 0/1 vectors of length `rank` (parity classes / hypercube corners).
std::vector<Index> parity_corners(int rank) {
  std::vector<Index> out;
  const int n = 1 << rank;
  for (int mask = 0; mask < n; ++mask) {
    Index p(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) p[static_cast<size_t>(d)] = (mask >> d) & 1;
    out.push_back(std::move(p));
  }
  return out;
}

/// Incremental program builder.  Grids come in two shape classes coupled
/// the way the multigrid operators couple them: fine = 2 * coarse - 2, so
/// restriction (2i + t) and interpolation ((i + t) / 2) taps land in
/// bounds from the matching interior domains.
struct Builder {
  explicit Builder(Rng& r) : rng(r) {}

  Rng& rng;
  Program p;
  int rank = 2;
  Index fine_shape, coarse_shape;
  std::vector<std::string> fine, coarse;
  int grid_seq = 0;
  int param_seq = 0;
  int stencil_seq = 0;

  std::string new_fine() {
    const std::string name = "g" + std::to_string(grid_seq++);
    p.grids[name] = GridSpec{fine_shape, rng.next(), 0.5, 1.5};
    fine.push_back(name);
    return name;
  }
  std::string new_coarse() {
    const std::string name = "h" + std::to_string(grid_seq++);
    p.grids[name] = GridSpec{coarse_shape, rng.next(), 0.5, 1.5};
    coarse.push_back(name);
    return name;
  }
  std::string pick_fine() {
    return fine[static_cast<size_t>(
        rng.range(0, static_cast<std::int64_t>(fine.size()) - 1))];
  }

  std::string name(const char* kind) {
    return std::string(kind) + std::to_string(stencil_seq++);
  }

  /// A coefficient leaf: usually a literal, sometimes a named scalar
  /// parameter bound in p.params (exercises ParamExpr end to end).
  ExprPtr weight() {
    if (rng.chance(0.25)) {
      const std::string pn = "w" + std::to_string(param_seq++);
      p.params[pn] = rng.real(0.1, 0.9);
      return param(pn);
    }
    return constant(rng.real(-1.0, 1.0));
  }

  Index rand_offset(std::int64_t radius) {
    Index off(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) {
      off[static_cast<size_t>(d)] = rng.range(-radius, radius);
    }
    return off;
  }

  /// Pure-offset neighborhood stencil; sometimes over a 2-color strided
  /// union, sometimes writing an existing grid (cross-stencil and
  /// order-dependent cases both arise naturally).
  void add_plain() {
    const std::int64_t radius = rng.range(1, 2);
    const std::int64_t taps = rng.range(2, 4);
    ExprPtr acc;
    for (std::int64_t t = 0; t < taps; ++t) {
      ExprPtr term = weight() * read(pick_fine(), rand_offset(radius));
      acc = acc == nullptr ? term : acc + term;
    }
    const std::string out = rng.chance(0.7) ? new_fine() : pick_fine();
    DomainUnion domain = lib::interior_margin(rank, radius);
    if (rng.chance(0.3)) {
      // Parity-split one dimension: a strided two-rect union.
      const int ds = static_cast<int>(rng.range(0, rank - 1));
      std::vector<RectDomain> rects;
      for (std::int64_t parity : {0, 1}) {
        Index start(static_cast<size_t>(rank), radius);
        Index stop(static_cast<size_t>(rank), -radius);
        Index stride(static_cast<size_t>(rank), 1);
        start[static_cast<size_t>(ds)] = radius + parity;
        stride[static_cast<size_t>(ds)] = 2;
        rects.emplace_back(std::move(start), std::move(stop), std::move(stride));
      }
      domain = DomainUnion(std::move(rects));
    }
    p.group.append(Stencil(name("plain"), acc, out, domain));
  }

  /// GSRB-shaped multicolor in-place update: one stencil, two parity rects
  /// along dim 0, the output grid read at +-1 in every dimension.
  void add_multicolor() {
    const std::string g = pick_fine();
    ExprPtr acc = weight() * read(g, Index(static_cast<size_t>(rank), 0));
    for (int d = 0; d < rank; ++d) {
      Index plus(static_cast<size_t>(rank), 0), minus(static_cast<size_t>(rank), 0);
      plus[static_cast<size_t>(d)] = 1;
      minus[static_cast<size_t>(d)] = -1;
      acc = acc + weight() * (read(g, plus) + read(g, minus));
    }
    std::vector<RectDomain> rects;
    for (std::int64_t parity : {0, 1}) {
      Index start(static_cast<size_t>(rank), 1);
      Index stop(static_cast<size_t>(rank), -1);
      Index stride(static_cast<size_t>(rank), 1);
      start[0] = 1 + parity;
      stride[0] = 2;
      rects.emplace_back(std::move(start), std::move(stop), std::move(stride));
    }
    p.group.append(Stencil(name("color"), acc, g, DomainUnion(std::move(rects))));
  }

  /// Variable-coefficient update: a coefficient mesh read at the point,
  /// plus a parameterized second term.
  void add_varcoef() {
    const std::string coef = new_fine();
    const std::string pn = "w" + std::to_string(param_seq++);
    p.params[pn] = rng.real(0.1, 0.9);
    ExprPtr acc =
        read(coef, Index(static_cast<size_t>(rank), 0)) *
            read(pick_fine(), rand_offset(1)) +
        param(pn) * read(pick_fine(), rand_offset(1));
    const std::string out = rng.chance(0.7) ? new_fine() : pick_fine();
    p.group.append(Stencil(name("vc"), acc, out, lib::interior_margin(rank, 1)));
  }

  /// Boundary face: one dimension pinned with stride 0, reads reaching
  /// inward along that dimension only.
  void add_face() {
    const std::string in = pick_fine();
    const std::string out = new_fine();
    const int d0 = static_cast<int>(rng.range(0, rank - 1));
    const bool high = rng.chance(0.5);
    const std::int64_t depth = rng.range(1, 2);
    Index start(static_cast<size_t>(rank), 0);
    Index stop(static_cast<size_t>(rank), 0);  // stop 0 = full extent
    Index stride(static_cast<size_t>(rank), 1);
    start[static_cast<size_t>(d0)] = high ? -1 : 0;
    stride[static_cast<size_t>(d0)] = 0;  // pinned point
    Index off(static_cast<size_t>(rank), 0);
    off[static_cast<size_t>(d0)] = high ? -depth : depth;
    ExprPtr acc = weight() * read(in, off) + constant(rng.real(-0.5, 0.5));
    p.group.append(Stencil(name("face"), acc, out,
                           RectDomain(std::move(start), std::move(stop),
                                      std::move(stride))));
  }

  /// Reduction over the fine interior (or a strided, negative-bound
  /// parity union): sum / max of a small weighted neighborhood, or a dot
  /// product of two grids.  The one-cell result grid is never re-read by
  /// later stencils — validate_group rejects that shape, and the matrix
  /// pins the rejection separately (tests/analysis).
  void add_reduce() {
    const std::string a = pick_fine();
    const std::string out = "s" + std::to_string(grid_seq++);
    // The one cell is fully overwritten by the reduction; the fill range
    // just has to be a valid (lo < hi) pair for materialize().
    p.grids[out] = GridSpec{Index(static_cast<size_t>(rank), 1), rng.next(),
                            0.0, 1.0};
    ExprPtr body;
    const std::int64_t kind = rng.range(0, 2);
    if (kind == 2) {
      // Dot: validate requires a top-level product.  The 2^-10 scale keeps
      // the all-positive running sum small, so reassociation differences
      // between backends (sequential accumulator, omp reduction, per-rank
      // partials) stay far inside the snowcheck tolerance vs the oracle's
      // pairwise tree.
      body = (constant(1.0 / 1024.0) * read(a, rand_offset(1))) *
             read(pick_fine(), rand_offset(1));
    } else {
      const std::int64_t taps = rng.range(1, 3);
      for (std::int64_t t = 0; t < taps; ++t) {
        ExprPtr term = weight() * read(a, rand_offset(1));
        body = body == nullptr ? term : body + term;
      }
    }
    DomainUnion domain = lib::interior_margin(rank, 1);
    if (rng.chance(0.4)) {
      // Strided parity split with grid-relative (negative) bounds: the
      // reduction must visit exactly the union's points, in rect order.
      const int ds = static_cast<int>(rng.range(0, rank - 1));
      std::vector<RectDomain> rects;
      for (std::int64_t parity : {0, 1}) {
        Index start(static_cast<size_t>(rank), 1);
        Index stop(static_cast<size_t>(rank), -1);
        Index stride(static_cast<size_t>(rank), 1);
        start[static_cast<size_t>(ds)] = 1 + parity;
        stride[static_cast<size_t>(ds)] = 2;
        rects.emplace_back(std::move(start), std::move(stop), std::move(stride));
      }
      domain = DomainUnion(std::move(rects));
    }
    ExprPtr red = kind == 0   ? reduce_sum(std::move(body), a)
                  : kind == 1 ? reduce_max(std::move(body), a)
                              : reduce_dot(std::move(body), a);
    p.group.append(Stencil(name("reduce"), std::move(red), out, domain));
  }

  /// Full-weighting-shaped restriction: multiplicative (num = 2) index
  /// maps reading a fine grid, writing a coarse interior.
  void add_restrict() {
    const std::string in = pick_fine();
    const std::string out = new_coarse();
    const std::int64_t taps = rng.range(2, 4);
    ExprPtr acc;
    for (std::int64_t t = 0; t < taps; ++t) {
      std::vector<DimMap> dims;
      for (int d = 0; d < rank; ++d) {
        dims.push_back(DimMap{2, rng.range(-1, 1), 1});
      }
      ExprPtr term = weight() * read_mapped(in, IndexMap(std::move(dims)));
      acc = acc == nullptr ? term : acc + term;
    }
    p.group.append(Stencil(name("restrict"), acc, out, lib::interior(rank)));
  }

  /// Interpolation: divisive (den = 2) maps over parity-strided rects.
  /// One stencil per parity class (the map's offset depends on the
  /// parity, and a stencil has a single expression for its whole union).
  void add_interp() {
    const std::string in = coarse.empty()
                               ? new_coarse()
                               : coarse[static_cast<size_t>(rng.range(
                                     0, static_cast<std::int64_t>(coarse.size()) - 1))];
    const std::string out = new_fine();
    const bool add_to_out = rng.chance(0.5);
    const bool with_far_tap = rng.chance(0.5);
    std::vector<Index> parities = parity_corners(rank);
    if (rank >= 3) {
      // Cap the blow-up: keep two random parity classes of the eight.
      std::vector<Index> kept;
      kept.push_back(parities[static_cast<size_t>(rng.range(0, 3))]);
      kept.push_back(parities[static_cast<size_t>(rng.range(4, 7))]);
      parities = std::move(kept);
    }
    for (const Index& parity : parities) {
      std::vector<DimMap> near, far;
      Index start(static_cast<size_t>(rank));
      for (int d = 0; d < rank; ++d) {
        const bool odd = parity[static_cast<size_t>(d)] == 1;
        start[static_cast<size_t>(d)] = odd ? 1 : 2;
        near.push_back(DimMap{1, odd ? 1 : 0, 2});
        far.push_back(DimMap{1, odd ? -1 : 2, 2});
      }
      ExprPtr acc = weight() * read_mapped(in, IndexMap(std::move(near)));
      if (with_far_tap) {
        acc = acc + weight() * read_mapped(in, IndexMap(std::move(far)));
      }
      if (add_to_out) {
        acc = read(out, Index(static_cast<size_t>(rank), 0)) + acc;
      }
      p.group.append(Stencil(
          name("interp"), acc, out,
          RectDomain(std::move(start), Index(static_cast<size_t>(rank), -1),
                     Index(static_cast<size_t>(rank), 2))));
    }
  }
};

Program try_generate(Rng rng) {
  Builder b(rng);
  b.rank = static_cast<int>(rng.range(1, 3));
  b.coarse_shape = Index(static_cast<size_t>(b.rank));
  b.fine_shape = Index(static_cast<size_t>(b.rank));
  for (int d = 0; d < b.rank; ++d) {
    const std::int64_t c = rng.range(5, 8);
    b.coarse_shape[static_cast<size_t>(d)] = c;
    b.fine_shape[static_cast<size_t>(d)] = 2 * c - 2;
  }
  b.new_fine();
  if (rng.chance(0.5)) b.new_fine();

  const std::int64_t features = rng.range(1, 3);
  for (std::int64_t s = 0; s < features; ++s) {
    switch (rng.range(0, 6)) {
      case 0: b.add_plain(); break;
      case 1: b.add_multicolor(); break;
      case 2: b.add_varcoef(); break;
      case 3: b.add_face(); break;
      case 4: b.add_restrict(); break;
      case 5: b.add_reduce(); break;
      default: b.add_interp(); break;
    }
  }
  return b.p;
}

/// A trivially valid rank-2 blur, used only if every retry produced an
/// invalid program (should not happen; keeps generate_program total).
Program fallback_program(std::uint64_t seed) {
  Program p;
  p.grids["g0"] = GridSpec{{12, 12}, seed * 2 + 1, 0.5, 1.5};
  p.grids["g1"] = GridSpec{{12, 12}, seed * 2 + 2, 0.5, 1.5};
  ExprPtr e = 0.5 * read("g0", {0, 0}) +
              0.125 * (read("g0", {1, 0}) + read("g0", {-1, 0}) +
                       read("g0", {0, 1}) + read("g0", {0, -1}));
  p.group.append(Stencil("fallback_blur", e, "g1", lib::interior(2)));
  return p;
}

}  // namespace

Program generate_program(std::uint64_t seed) {
  for (std::uint64_t attempt = 0; attempt < 16; ++attempt) {
    Program p = try_generate(Rng(seed + 0x9e3779b97f4a7c15ull * (attempt + 1)));
    if (is_valid(p)) return p;
  }
  return fallback_program(seed);
}

}  // namespace snowcheck
}  // namespace snowflake
