#include "verify/minimize.hpp"

#include <iterator>
#include <set>
#include <utility>
#include <vector>

namespace snowflake {
namespace snowcheck {

namespace {

/// One-step simplifications of an expression tree, shallowest first: the
/// earlier a candidate appears, the bigger the bite it takes.
void shrink_candidates(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  switch (expr->kind()) {
    case ExprKind::Binary: {
      const auto* b = static_cast<const BinaryExpr*>(expr.get());
      out->push_back(b->lhs());
      out->push_back(b->rhs());
      std::vector<ExprPtr> lhs_shrunk, rhs_shrunk;
      shrink_candidates(b->lhs(), &lhs_shrunk);
      shrink_candidates(b->rhs(), &rhs_shrunk);
      for (const auto& c : lhs_shrunk) {
        out->push_back(std::make_shared<BinaryExpr>(b->op(), c, b->rhs()));
      }
      for (const auto& c : rhs_shrunk) {
        out->push_back(std::make_shared<BinaryExpr>(b->op(), b->lhs(), c));
      }
      break;
    }
    case ExprKind::Unary: {
      const auto* u = static_cast<const UnaryExpr*>(expr.get());
      out->push_back(u->operand());
      std::vector<ExprPtr> shrunk;
      shrink_candidates(u->operand(), &shrunk);
      for (const auto& c : shrunk) {
        out->push_back(std::make_shared<UnaryExpr>(u->op(), c));
      }
      break;
    }
    case ExprKind::Reduce: {
      // Shrink inside the body; the reduction wrapper must stay (the
      // one-cell output anchors its domain on the reduce anchor grid).
      // Invalid shrinks — e.g. a Dot body losing its top-level product —
      // are discarded by the validity gate.
      const auto* r = static_cast<const ReduceExpr*>(expr.get());
      std::vector<ExprPtr> shrunk;
      shrink_candidates(r->body(), &shrunk);
      for (const auto& c : shrunk) {
        out->push_back(std::make_shared<ReduceExpr>(r->op(), c, r->anchor()));
      }
      break;
    }
    case ExprKind::Param:
      out->push_back(constant(1.0));
      break;
    case ExprKind::Constant:
    case ExprKind::GridRead:
      break;
  }
}

/// Rebuild the group with stencil `i` replaced.
StencilGroup with_stencil(const StencilGroup& group, size_t i,
                          const Stencil& replacement) {
  StencilGroup out;
  for (size_t s = 0; s < group.size(); ++s) {
    out.append(s == i ? replacement : group[s]);
  }
  return out;
}

/// Drop grids and params the group no longer references.
void prune_unused(Program* p) {
  const std::set<std::string> used_grids = p->group.grids();
  for (auto it = p->grids.begin(); it != p->grids.end();) {
    it = used_grids.count(it->first) ? std::next(it) : p->grids.erase(it);
  }
  const std::set<std::string> used_params = p->group.params();
  for (auto it = p->params.begin(); it != p->params.end();) {
    it = used_params.count(it->first) ? std::next(it) : p->params.erase(it);
  }
}

class Minimizer {
public:
  Minimizer(const FailPredicate& pred, MinimizeStats* stats, int budget)
      : pred_(pred), stats_(stats), budget_(budget) {}

  bool try_accept(Program* current, Program candidate) {
    if (budget_ <= 0) return false;
    prune_unused(&candidate);
    if (!is_valid(candidate)) return false;
    --budget_;
    if (stats_) ++stats_->predicate_calls;
    if (!pred_(candidate)) return false;
    if (stats_) ++stats_->accepted;
    *current = std::move(candidate);
    return true;
  }

  bool exhausted() const { return budget_ <= 0; }

private:
  const FailPredicate& pred_;
  MinimizeStats* stats_;
  int budget_;
};

bool drop_stencils(Program* p, Minimizer* m) {
  if (p->group.size() <= 1) return false;
  for (size_t i = p->group.size(); i-- > 0;) {
    Program cand = *p;
    StencilGroup g;
    for (size_t s = 0; s < p->group.size(); ++s) {
      if (s != i) g.append(p->group[s]);
    }
    cand.group = g;
    if (m->try_accept(p, std::move(cand))) return true;
  }
  return false;
}

bool drop_rects(Program* p, Minimizer* m) {
  for (size_t i = 0; i < p->group.size(); ++i) {
    const DomainUnion& dom = p->group[i].domain();
    if (dom.rect_count() <= 1) continue;
    for (size_t r = 0; r < dom.rect_count(); ++r) {
      std::vector<RectDomain> rects;
      for (size_t k = 0; k < dom.rect_count(); ++k) {
        if (k != r) rects.push_back(dom.rects()[k]);
      }
      Program cand = *p;
      cand.group = with_stencil(
          p->group, i,
          Stencil(p->group[i].name(), p->group[i].expr(), p->group[i].output(),
                  DomainUnion(std::move(rects))));
      if (m->try_accept(p, std::move(cand))) return true;
    }
  }
  return false;
}

bool simplify_exprs(Program* p, Minimizer* m) {
  for (size_t i = 0; i < p->group.size(); ++i) {
    std::vector<ExprPtr> candidates;
    shrink_candidates(p->group[i].expr(), &candidates);
    for (const auto& e : candidates) {
      Program cand = *p;
      cand.group = with_stencil(
          p->group, i,
          Stencil(p->group[i].name(), e, p->group[i].output(),
                  p->group[i].domain()));
      if (m->try_accept(p, std::move(cand))) return true;
      if (m->exhausted()) return false;
    }
  }
  return false;
}

bool shrink_shapes(Program* p, Minimizer* m) {
  // Grid-relative domains survive extent changes, so a plain decrement is
  // often valid; coupled shape classes (fine = 2 * coarse - 2) usually
  // need lock-step shrinks, which the validity gate sorts out for us by
  // rejecting the torn intermediates.
  for (const auto& [name, spec] : p->grids) {
    for (size_t d = 0; d < spec.shape.size(); ++d) {
      if (spec.shape[d] <= 4) continue;
      Program cand = *p;
      cand.grids[name].shape[d] -= 1;
      if (m->try_accept(p, std::move(cand))) return true;
    }
  }
  // Lock-step: shrink every grid's dim d together (fine by 2, others by 1
  // keeps the 2c-2 coupling intact).
  if (p->grids.empty()) return false;
  const size_t rank = p->grids.begin()->second.shape.size();
  for (size_t d = 0; d < rank; ++d) {
    Program cand = *p;
    bool any = false;
    for (auto& [name, spec] : cand.grids) {
      (void)name;
      if (d >= spec.shape.size() || spec.shape[d] <= 6) continue;
      spec.shape[d] -= spec.shape[d] % 2 == 0 ? 2 : 1;
      any = true;
    }
    if (any && m->try_accept(p, std::move(cand))) return true;
  }
  return false;
}

}  // namespace

Program minimize(const Program& program, const FailPredicate& still_fails,
                 MinimizeStats* stats, int max_predicate_calls) {
  if (stats) *stats = MinimizeStats{};
  if (!still_fails(program)) return program;
  if (stats) stats->predicate_calls = 1;

  Program current = program;
  Minimizer m(still_fails, stats, max_predicate_calls);
  bool changed = true;
  while (changed && !m.exhausted()) {
    changed = false;
    while (drop_stencils(&current, &m)) changed = true;
    while (drop_rects(&current, &m)) changed = true;
    while (simplify_exprs(&current, &m)) changed = true;
    while (shrink_shapes(&current, &m)) changed = true;
  }
  prune_unused(&current);
  return current;
}

}  // namespace snowcheck
}  // namespace snowflake
