#include "verify/repro.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace snowflake {
namespace snowcheck {

namespace {

std::string fmt_double(double v) {
  // Locale-independent: a comma-decimal global locale must not corrupt
  // emitted reproducer source.
  std::string s = format_double_compact(v);
  // Make sure the literal parses as a double, not an int.
  if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
  return s;
}

std::string fmt_index(const Index& idx) {
  std::ostringstream os;
  os << "{";
  for (size_t d = 0; d < idx.size(); ++d) {
    if (d) os << ", ";
    os << idx[d];
  }
  os << "}";
  return os.str();
}

std::string fmt_map(const IndexMap& map) {
  std::ostringstream os;
  os << "IndexMap({";
  for (int d = 0; d < map.rank(); ++d) {
    const DimMap& m = map.dim(d);
    if (d) os << ", ";
    os << "DimMap{" << m.num << ", " << m.off << ", " << m.den << "}";
  }
  os << "})";
  return os.str();
}

void emit_expr(const ExprPtr& expr, std::ostringstream& os) {
  switch (expr->kind()) {
    case ExprKind::Constant:
      os << "constant("
         << fmt_double(static_cast<const ConstantExpr*>(expr.get())->value())
         << ")";
      break;
    case ExprKind::Param:
      os << "param(\"" << static_cast<const ParamExpr*>(expr.get())->name()
         << "\")";
      break;
    case ExprKind::GridRead: {
      const auto* r = static_cast<const GridReadExpr*>(expr.get());
      if (r->map().is_pure_offset()) {
        Index off(static_cast<size_t>(r->map().rank()));
        for (int d = 0; d < r->map().rank(); ++d) {
          off[static_cast<size_t>(d)] = r->map().dim(d).off;
        }
        os << "read(\"" << r->grid() << "\", " << fmt_index(off) << ")";
      } else {
        os << "read_mapped(\"" << r->grid() << "\", " << fmt_map(r->map())
           << ")";
      }
      break;
    }
    case ExprKind::Binary: {
      const auto* b = static_cast<const BinaryExpr*>(expr.get());
      const char* op = b->op() == BinaryOp::Add   ? " + "
                       : b->op() == BinaryOp::Sub ? " - "
                       : b->op() == BinaryOp::Mul ? " * "
                                                  : " / ";
      os << "(";
      emit_expr(b->lhs(), os);
      os << op;
      emit_expr(b->rhs(), os);
      os << ")";
      break;
    }
    case ExprKind::Unary:
      os << "(-";
      emit_expr(static_cast<const UnaryExpr*>(expr.get())->operand(), os);
      os << ")";
      break;
    case ExprKind::Reduce: {
      const auto* r = static_cast<const ReduceExpr*>(expr.get());
      const char* builder = r->op() == ReduceOp::Sum   ? "reduce_sum"
                            : r->op() == ReduceOp::Max ? "reduce_max"
                                                       : "reduce_dot";
      os << builder << "(";
      emit_expr(r->body(), os);
      os << ", \"" << r->anchor() << "\")";
      break;
    }
  }
}

std::string fmt_rect(const RectDomain& rect) {
  Index start(rect.dims().size()), stop(rect.dims().size()),
      stride(rect.dims().size());
  for (size_t d = 0; d < rect.dims().size(); ++d) {
    start[d] = rect.dims()[d].start;
    stop[d] = rect.dims()[d].stop;
    stride[d] = rect.dims()[d].stride;
  }
  return "RectDomain(Index" + fmt_index(start) + ", Index" + fmt_index(stop) +
         ", Index" + fmt_index(stride) + ")";
}

void emit_options(const Variant& variant, int rank, std::ostringstream& os) {
  const CompileOptions d;  // defaults, emit only divergences
  const CompileOptions& o = variant.options;
  os << "  CompileOptions opt;\n";
  if (variant.tile_edge > 0) {
    os << "  opt.tile = Index(" << rank << ", " << variant.tile_edge << ");\n";
  }
  if (o.fuse_colors != d.fuse_colors) os << "  opt.fuse_colors = true;\n";
  if (o.fuse_stencils != d.fuse_stencils) os << "  opt.fuse_stencils = true;\n";
  if (o.simd != d.simd) os << "  opt.simd = true;\n";
  if (o.schedule != d.schedule) {
    os << "  opt.schedule = CompileOptions::Schedule::ParallelFor;\n";
  }
  if (o.task_grain != d.task_grain) {
    os << "  opt.task_grain = " << o.task_grain << ";\n";
  }
  if (o.barrier_per_stencil != d.barrier_per_stencil) {
    os << "  opt.barrier_per_stencil = true;\n";
  }
  if (o.analysis != d.analysis) {
    os << "  opt.analysis = CompileOptions::Analysis::Interval;\n";
  }
  if (o.time_tile != d.time_tile) {
    os << "  opt.time_tile = " << o.time_tile << ";\n";
  }
  if (o.addr_opt != d.addr_opt) os << "  opt.addr_opt = false;\n";
  if (o.wavefront != d.wavefront) os << "  opt.wavefront = true;\n";
  if (o.simd_rows != d.simd_rows) os << "  opt.simd_rows = true;\n";
  if (o.dist_ranks != d.dist_ranks) {
    os << "  opt.dist_ranks = " << o.dist_ranks << ";\n";
  }
  if (o.dist_overlap != d.dist_overlap) os << "  opt.dist_overlap = false;\n";
  if (o.dist_prune != d.dist_prune) os << "  opt.dist_prune = false;\n";
  if (o.dist_grid != d.dist_grid) {
    os << "  opt.dist_grid = Index" << fmt_index(o.dist_grid) << ";\n";
  }
  if (o.dist_pipeline != d.dist_pipeline) {
    os << "  opt.dist_pipeline = false;\n";
  }
  if (o.det_reduce != d.det_reduce) os << "  opt.det_reduce = true;\n";
}

}  // namespace

std::string emit_repro(const Program& program, const Variant& variant,
                       double tol) {
  const int rank = program.group.rank();
  std::ostringstream os;
  os << "// snowcheck reproducer: variant \"" << variant.label
     << "\" vs reference, tol " << fmt_double(tol) << ".\n"
     << "// Self-contained: link against the snowflake library and run.\n"
     << "#include <cstdio>\n\n"
     << "#include \"backend/backend.hpp\"\n"
     << "#include \"grid/grid_set.hpp\"\n"
     << "#include \"ir/stencil.hpp\"\n\n"
     << "using namespace snowflake;\n\n"
     << "int main() {\n"
     << "  GridSet expected, actual;\n";
  for (const auto& [name, spec] : program.grids) {
    for (const char* set : {"expected", "actual"}) {
      os << "  " << set << ".add_zeros(\"" << name << "\", Index"
         << fmt_index(spec.shape) << ").fill_random(" << spec.fill_seed
         << "ull, " << fmt_double(spec.lo) << ", " << fmt_double(spec.hi)
         << ");\n";
    }
  }
  os << "\n  StencilGroup group;\n";
  for (const auto& s : program.group.stencils()) {
    os << "  group.append(Stencil(\"" << s.name() << "\",\n      ";
    emit_expr(s.expr(), os);
    os << ",\n      \"" << s.output() << "\",\n      DomainUnion({";
    for (size_t r = 0; r < s.domain().rect_count(); ++r) {
      if (r) os << ",\n                   ";
      os << fmt_rect(s.domain().rects()[r]);
    }
    os << "})));\n";
  }
  os << "\n  ParamMap params{";
  bool first = true;
  for (const auto& [name, value] : program.params) {
    if (!first) os << ", ";
    os << "{\"" << name << "\", " << fmt_double(value) << "}";
    first = false;
  }
  os << "};\n\n";
  emit_options(variant, rank, os);
  os << "\n  auto kernel = compile(group, actual, \"" << variant.backend
     << "\", opt);\n"
     << "  kernel->run(actual, params);\n"
     << "  auto ref = compile(group, expected, \"reference\");\n"
     << "  for (int s = 0; s < kernel->fused_sweeps(); ++s) "
        "ref->run(expected, params);\n\n"
     << "  double worst = 0.0;\n"
     << "  for (const auto& name : expected.names()) {\n"
     << "    const double d = Grid::max_abs_diff(expected.at(name), "
        "actual.at(name));\n"
     << "    std::printf(\"%-12s max |diff| = %.3e\\n\", name.c_str(), d);\n"
     << "    if (d > worst) worst = d;\n"
     << "  }\n"
     << "  const double tol = " << fmt_double(tol) << ";\n"
     << "  std::printf(\"worst %.3e vs tol %.1e: %s\\n\", worst, tol,\n"
     << "              worst <= tol ? \"MATCH\" : \"MISMATCH\");\n"
     << "  return worst <= tol ? 0 : 1;\n"
     << "}\n";
  return os.str();
}

}  // namespace snowcheck
}  // namespace snowflake
