#pragma once
// snowcheck differential runner: execute a Program on the reference
// interpreter (the oracle) and on every entry of the backend x options
// matrix, and compare grid-by-grid to a tight absolute tolerance.
//
// A variant that legitimately cannot compile the program (backend scope
// checks such as distsim's pure-offset/same-shape requirements) reports
// Rejected, which is not a failure.  Mismatches and unexpected errors
// (InternalError, ToolchainError, crashes surfaced as exceptions) are.

#include <string>
#include <vector>

#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {

struct Variant {
  std::string label;    // e.g. "omp-for/tile+simd"
  std::string backend;  // registered backend name
  CompileOptions options;
  /// Per-dim tile edge materialized as options.tile = Index(rank, edge) at
  /// compile time (a Variant is rank-agnostic; Programs are not).
  std::int64_t tile_edge = 0;
};

/// The default verification matrix: c / openmp-for / openmp-tasks /
/// oclsim / distsim crossed with {fusion, tiling, time_tile, addr_opt,
/// simd} on and off.
std::vector<Variant> variant_matrix();

/// Entries of the matrix whose label starts with `prefix` ("" = all).
std::vector<Variant> variants_matching(const std::string& prefix);

enum class DiffStatus {
  Match,     // agreed with the reference within tolerance
  Mismatch,  // ran, but some grid diverged
  Rejected,  // backend declined the program (InvalidArgument) — not a bug
  Error,     // compile or run blew up (InternalError, ToolchainError, ...)
};

struct DiffResult {
  DiffStatus status = DiffStatus::Match;
  std::string variant;  // label of the variant that produced this result
  std::string message;  // diverging grid / exception text
  double max_diff = 0.0;

  bool failed() const {
    return status == DiffStatus::Mismatch || status == DiffStatus::Error;
  }
};

/// Default comparison tolerance (absolute, per grid element).
inline constexpr double kDefaultTol = 1e-12;

/// Run `program` under one variant against the reference oracle.
DiffResult diff_variant(const Program& program, const Variant& variant,
                        double tol = kDefaultTol);

/// Run the whole (optionally prefix-filtered) matrix; one result per
/// variant, in matrix order.
std::vector<DiffResult> diff_program(const Program& program,
                                     double tol = kDefaultTol,
                                     const std::string& backend_prefix = "");

}  // namespace snowcheck
}  // namespace snowflake
