#pragma once
// snowcheck greedy minimizer: shrink a failing Program while a caller-
// supplied predicate keeps reporting failure.  Passes, applied to a
// fixpoint: drop whole stencils, drop rects from multi-rect unions,
// shrink grid extents, simplify expressions (collapse a Binary to one
// side, strip a Unary, constant-fold a Param), and prune grids/params
// the surviving group no longer references.
//
// Every candidate is gated through is_valid() before the predicate runs,
// so the minimizer never hands the differ an ill-formed program.  The
// total number of predicate evaluations is capped; minimization is
// best-effort, not optimal.

#include <functional>

#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {

/// Returns true while the candidate still exhibits the failure.
using FailPredicate = std::function<bool(const Program&)>;

struct MinimizeStats {
  int predicate_calls = 0;
  int accepted = 0;
};

/// Greedily shrink `program`.  `still_fails(program)` must be true on
/// entry (otherwise the input is returned unchanged).
Program minimize(const Program& program, const FailPredicate& still_fails,
                 MinimizeStats* stats = nullptr,
                 int max_predicate_calls = 600);

}  // namespace snowcheck
}  // namespace snowflake
