#pragma once
// snowcheck regression corpus: fixed programs replaying past failures and
// pinning high-risk feature x backend combinations.  Every bug the
// differential harness (or a reviewer) finds gets distilled into an entry
// here, so reintroducing it turns a corpus replay red with a minimized
// reproducer attached — see docs/testing.md.
//
// Current entries include the PR 3 rank-1 `omp for`+`omp simd` pragma
// collision and the distsim thin-slab halo bug (now rejected cleanly at
// compile time).

#include <string>
#include <vector>

#include "verify/differ.hpp"
#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {

struct CorpusEntry {
  std::string name;
  std::string note;  // which bug / feature this pins
  Program program;
  Variant variant;
  /// Some entries pin a *clean rejection* (backend scope checks): the
  /// expected status is Rejected, and anything else — including a
  /// successful-but-wrong run — fails the replay.
  bool expect_rejected = false;
};

/// All checked-in corpus entries (built fresh on each call).
std::vector<CorpusEntry> corpus();

/// Replay one entry.  ok == true when the result matches the entry's
/// expectation (Match, or Rejected when expect_rejected).
struct ReplayOutcome {
  bool ok = false;
  DiffResult result;
};
ReplayOutcome replay(const CorpusEntry& entry, double tol = kDefaultTol);

}  // namespace snowcheck
}  // namespace snowflake
