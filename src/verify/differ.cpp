#include "verify/differ.hpp"

#include <exception>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace snowflake {
namespace snowcheck {

namespace {

Variant make(const std::string& label, const std::string& backend,
             CompileOptions opt, std::int64_t tile_edge = 0) {
  Variant v;
  v.label = label;
  v.backend = backend;
  v.options = std::move(opt);
  v.tile_edge = tile_edge;
  return v;
}

CompileOptions base() { return CompileOptions{}; }

CompileOptions omp_for() {
  CompileOptions o;
  o.schedule = CompileOptions::Schedule::ParallelFor;
  return o;
}

}  // namespace

std::vector<Variant> variant_matrix() {
  std::vector<Variant> m;

  // Sequential C micro-compiler.
  m.push_back(make("c", "c", base()));
  {
    CompileOptions o = base();
    o.addr_opt = false;
    m.push_back(make("c/noaddr", "c", o));
  }
  m.push_back(make("c/tile", "c", base(), 4));
  {
    CompileOptions o = base();
    o.fuse_colors = true;
    o.fuse_stencils = true;
    m.push_back(make("c/fuse", "c", o));
  }
  {
    CompileOptions o = base();
    o.time_tile = 2;
    m.push_back(make("c/tt2", "c", o, 4));
  }
  {
    CompileOptions o = base();
    o.time_tile = 2;
    o.wavefront = true;
    m.push_back(make("c/wf2", "c", o, 4));
  }
  {
    CompileOptions o = base();
    o.simd_rows = true;
    m.push_back(make("c/simdrows", "c", o));
  }
  {
    CompileOptions o = base();
    o.det_reduce = true;
    m.push_back(make("c/dred", "c", o));
  }

  // OpenMP parallel-for schedule.
  m.push_back(make("omp-for", "openmp", omp_for()));
  {
    CompileOptions o = omp_for();
    o.simd = true;
    m.push_back(make("omp-for/simd", "openmp", o));
  }
  {
    CompileOptions o = omp_for();
    o.fuse_colors = true;
    o.fuse_stencils = true;
    m.push_back(make("omp-for/fuse", "openmp", o));
  }
  {
    CompileOptions o = omp_for();
    o.simd = true;
    m.push_back(make("omp-for/tile+simd", "openmp", o, 4));
  }
  {
    CompileOptions o = omp_for();
    o.time_tile = 2;
    m.push_back(make("omp-for/tt2", "openmp", o, 4));
  }
  {
    CompileOptions o = omp_for();
    o.addr_opt = false;
    o.simd = true;
    m.push_back(make("omp-for/noaddr+simd", "openmp", o));
  }
  {
    CompileOptions o = omp_for();
    o.time_tile = 2;
    o.wavefront = true;
    m.push_back(make("omp-for/wf2", "openmp", o, 4));
  }
  {
    CompileOptions o = omp_for();
    o.simd_rows = true;
    m.push_back(make("omp-for/simdrows", "openmp", o));
  }
  // Deterministic reductions: `omp ... reduction` is replaced by the
  // canonical pairwise tree, so answers must match the reference exactly
  // whenever a generated program carries a reduction.
  {
    CompileOptions o = omp_for();
    o.det_reduce = true;
    m.push_back(make("omp-for/dred", "openmp", o));
  }

  // OpenMP task schedule (the paper's default).
  m.push_back(make("omp-tasks", "openmp", base()));
  {
    CompileOptions o = base();
    o.fuse_colors = true;
    o.fuse_stencils = true;
    m.push_back(make("omp-tasks/fuse", "openmp", o));
  }
  m.push_back(make("omp-tasks/tile", "openmp", base(), 4));
  {
    CompileOptions o = base();
    o.time_tile = 2;
    m.push_back(make("omp-tasks/tt2", "openmp", o, 4));
  }
  {
    CompileOptions o = base();
    o.addr_opt = false;
    m.push_back(make("omp-tasks/noaddr", "openmp", o));
  }
  {
    CompileOptions o = base();
    o.time_tile = 3;
    o.wavefront = true;
    m.push_back(make("omp-tasks/wf3", "openmp", o, 4));
  }
  {
    CompileOptions o = base();
    o.simd_rows = true;
    o.fuse_colors = true;
    o.fuse_stencils = true;
    m.push_back(make("omp-tasks/simdrows+fuse", "openmp", o));
  }

  // Simulated-device work-group backend.
  m.push_back(make("oclsim", "oclsim", base()));
  {
    CompileOptions o = base();
    o.addr_opt = false;
    m.push_back(make("oclsim/noaddr", "oclsim", o));
  }

  // Simulated distributed slabs (most generated programs are out of its
  // scope and report Rejected; in-scope ones must still be exact).
  {
    CompileOptions o = base();
    o.dist_ranks = 2;
    m.push_back(make("distsim/r2", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_ranks = 3;
    m.push_back(make("distsim/r3", "distsim", o));
  }
  // SPMD runtime ablations: high rank counts exercise the multi-hop
  // exchange (thin slabs), and the overlap/prune toggles must never change
  // answers — only traffic and schedule.
  {
    CompileOptions o = base();
    o.dist_ranks = 5;
    m.push_back(make("distsim/r5", "distsim", o));
  }
  // Simulated allreduce: per-rank partials combined at the wave barrier
  // must reproduce the single-address-space reduction exactly.
  {
    CompileOptions o = base();
    o.dist_ranks = 2;
    o.det_reduce = true;
    m.push_back(make("distsim/r2-dred", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_ranks = 3;
    o.dist_overlap = false;
    m.push_back(make("distsim/r3-nooverlap", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_ranks = 3;
    o.dist_prune = false;
    m.push_back(make("distsim/r3-noprune", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_ranks = 5;
    o.dist_overlap = false;
    o.dist_prune = false;
    m.push_back(make("distsim/r5-baseline", "distsim", o));
  }
  // Cartesian decompositions: explicit 2D/3D process grids (rejected on
  // programs of any other rank), the rank-agnostic auto-factorization,
  // and the bulk-synchronous pipeline ablation.  Diagonal-reading
  // programs exercise the edge/corner messages here.
  {
    CompileOptions o = base();
    o.dist_grid = {2, 2};
    m.push_back(make("distsim/g2x2", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_grid = {2, 2, 2};
    m.push_back(make("distsim/g2x2x2", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_grid = {6};
    m.push_back(make("distsim/g6-auto", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_grid = {2, 2};
    o.dist_pipeline = false;
    m.push_back(make("distsim/g2x2-bsp", "distsim", o));
  }
  {
    CompileOptions o = base();
    o.dist_grid = {3, 2};
    o.dist_pipeline = false;
    o.dist_prune = false;
    m.push_back(make("distsim/g3x2-bsp-noprune", "distsim", o));
  }

  return m;
}

std::vector<Variant> variants_matching(const std::string& prefix) {
  std::vector<Variant> out;
  for (auto& v : variant_matrix()) {
    if (v.label.rfind(prefix, 0) == 0) out.push_back(std::move(v));
  }
  return out;
}

DiffResult diff_variant(const Program& program, const Variant& variant,
                        double tol) {
  DiffResult result;
  result.variant = variant.label;

  GridSet expected = program.materialize();
  GridSet actual = program.materialize();
  const int rank = program.group.rank();

  CompileOptions options = variant.options;
  if (variant.tile_edge > 0) {
    options.tile = Index(static_cast<size_t>(rank), variant.tile_edge);
  }

  try {
    std::unique_ptr<CompiledKernel> kernel;
    try {
      kernel = compile(program.group, actual, variant.backend, options);
    } catch (const InvalidArgument& e) {
      result.status = DiffStatus::Rejected;
      result.message = e.what();
      return result;
    }
    kernel->run(actual, program.params);

    // The oracle: the sequential interpreter, applied as many sweeps as
    // the kernel fused into one run (time tiling).
    auto ref = compile(program.group, expected, "reference");
    for (int s = 0; s < kernel->fused_sweeps(); ++s) {
      ref->run(expected, program.params);
    }

    for (const auto& [name, spec] : program.grids) {
      (void)spec;
      const double diff =
          Grid::max_abs_diff(expected.at(name), actual.at(name));
      if (diff > result.max_diff) {
        result.max_diff = diff;
        if (diff > tol) {
          result.status = DiffStatus::Mismatch;
          result.message = "grid '" + name + "' diverges by " +
                           format_double_compact(diff) + " (tol " +
                           format_double_compact(tol) + ")";
        }
      }
    }
  } catch (const std::exception& e) {
    result.status = DiffStatus::Error;
    result.message = e.what();
  }
  return result;
}

std::vector<DiffResult> diff_program(const Program& program, double tol,
                                     const std::string& backend_prefix) {
  std::vector<DiffResult> results;
  for (const Variant& v : variants_matching(backend_prefix)) {
    results.push_back(diff_variant(program, v, tol));
  }
  return results;
}

}  // namespace snowcheck
}  // namespace snowflake
