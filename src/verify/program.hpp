#pragma once
// snowcheck: differential verification harness for the whole toolchain.
//
// A Program is a self-contained, reproducible test case: a StencilGroup
// plus a recipe for its grid environment (shape and deterministic fill
// seed per grid) and its scalar parameters.  Everything downstream — the
// generator, the differ, the minimizer, the reproducer emitter and the
// regression corpus — trades in Programs, so a failing case can be
// shrunk, replayed and checked in without carrying array data around.

#include <cstdint>
#include <map>
#include <string>

#include "backend/backend.hpp"
#include "grid/grid_set.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {
namespace snowcheck {

/// Deterministic recipe for one grid: materialize() yields bit-identical
/// contents for the same spec on every run.
struct GridSpec {
  Index shape;
  std::uint64_t fill_seed = 0;
  double lo = 0.5;
  double hi = 1.5;
};

struct Program {
  StencilGroup group;
  std::map<std::string, GridSpec> grids;
  ParamMap params;

  /// Allocate and deterministically fill every grid.
  GridSet materialize() const;

  /// The shape contract the group compiles against.
  ShapeMap shapes() const;

  /// Human-readable dump (stencils, grid recipes, params).
  std::string describe() const;
};

/// validate_group without throwing: true when the program compiles against
/// its own shapes (the generator and the minimizer both gate on this).
bool is_valid(const Program& program);

}  // namespace snowcheck
}  // namespace snowflake
