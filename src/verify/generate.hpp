#pragma once
// snowcheck program generator: seeded, deterministic random stencil
// programs exercising every §2 language feature — strided DomainUnions
// with grid-relative (negative) bounds and pinned (stride-0) face dims,
// multicolor in-place updates, variable coefficients and scalar params,
// multiplicative (restriction) and divisive (interpolation) index maps,
// sum/max/dot reductions into one-cell grids (including over strided
// negative-bound unions), and multi-stencil groups with cross-stencil
// dependences.
//
// The same seed always yields the same Program, so a failing seed is a
// complete bug report.  Generated programs are always valid: candidates
// are gated through validate_group, with a deterministic retry chain and
// a fixed known-good fallback so generate_program never throws.

#include <cstdint>

#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {

/// splitmix64: the tiny deterministic PRNG the test suite already uses.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  double real(double lo, double hi) {
    const double unit =
        static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    return lo + unit * (hi - lo);
  }

  bool chance(double p) { return real(0.0, 1.0) < p; }

private:
  std::uint64_t state_;
};

/// Generate the program for `seed` (deterministic; never throws).
Program generate_program(std::uint64_t seed);

}  // namespace snowcheck
}  // namespace snowflake
