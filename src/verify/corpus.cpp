#include "verify/corpus.hpp"

#include "ir/stencil_library.hpp"
#include "support/hash.hpp"

namespace snowflake {
namespace snowcheck {

namespace {

GridSpec spec(Index shape, const std::string& name) {
  return GridSpec{std::move(shape), fnv1a64(name), 0.5, 1.5};
}

Variant variant(const std::string& label, const std::string& backend,
                CompileOptions options, std::int64_t tile_edge = 0) {
  Variant v;
  v.label = label;
  v.backend = backend;
  v.options = std::move(options);
  v.tile_edge = tile_edge;
  return v;
}

/// PR 3 fixed a latent rank-1 bug where the OpenMP emitter put a
/// workshare pragma and a simd pragma on the same (only) loop instead of
/// merging them into `omp for simd` — the generated C failed to compile.
/// Reintroducing it turns this entry into an Error.
CorpusEntry pr3_rank1_for_simd() {
  CorpusEntry e;
  e.name = "pr3-rank1-for-simd";
  e.note = "rank-1 workshare+simd pragma collision (fixed in PR 3)";
  e.program.grids["x"] = spec({64}, "x");
  e.program.grids["y"] = spec({64}, "y");
  ExprPtr body = 0.25 * read("x", {-1}) + 0.5 * read("x", {0}) +
                 0.25 * read("x", {1});
  e.program.group.append(Stencil("blur1d", body, "y", lib::interior(1)));
  CompileOptions o;
  o.schedule = CompileOptions::Schedule::ParallelFor;
  o.simd = true;
  e.variant = variant("omp-for/simd", "openmp", o);
  return e;
}

/// Distsim decomposes a dim-0 extent of 8 over 6 ranks into slabs of 1-2
/// rows — thinner than the radius-2 halo.  PR 4's one-hop exchange
/// silently served stale rows to the second wave (two adjacent length-1
/// slabs sit mid-interior, so a radius-2 read crosses two rank
/// boundaries) and had to reject the decomposition.  The owner-direct
/// multi-hop exchange serves the deep halo from ranks further away, so
/// this entry now pins the exact *answer*: a regression back to stale
/// rows makes the replay fail with actually-wrong values.
CorpusEntry distsim_thin_slab() {
  CorpusEntry e;
  e.name = "distsim-thin-slab";
  e.note = "thin slabs under a radius-2 halo (multi-hop exchange)";
  for (const char* g : {"x", "mid", "out"}) {
    e.program.grids[g] = spec({8, 7}, g);
  }
  ExprPtr blur = read("x", {0, 0}) + 0.25 * read("x", {-2, 0}) +
                 0.25 * read("x", {2, 0});
  ExprPtr blur2 = read("mid", {0, 0}) + 0.25 * read("mid", {-2, 0}) +
                  0.25 * read("mid", {2, 0});
  e.program.group.append(
      Stencil("blur", blur, "mid", lib::interior_margin(2, 2)));
  e.program.group.append(
      Stencil("blur2", blur2, "out", lib::interior_margin(2, 2)));
  CompileOptions o;
  o.dist_ranks = 6;
  e.variant = variant("distsim/r6", "distsim", o);
  return e;
}

/// A 9-point box blur on a 2x2 Cartesian process grid: the diagonal
/// reads force edge/corner halo messages, which the slab decomposition
/// never exercised.  The chained second wave makes the corner exchange
/// load-bearing — dropping it (or mis-planning its depth) shifts `out`
/// by actually-wrong values instead of timing out.
CorpusEntry distsim_diagonal_corner() {
  CorpusEntry e;
  e.name = "distsim-diagonal-corner";
  e.note = "9-point diagonal reads on a 2x2 grid (corner messages)";
  for (const char* g : {"x", "mid", "out"}) {
    e.program.grids[g] = spec({9, 8}, g);
  }
  const auto nine = [](const std::string& g) {
    ExprPtr acc = read(g, {0, 0});
    for (std::int64_t a : {-1, 0, 1}) {
      for (std::int64_t b : {-1, 0, 1}) {
        if (a == 0 && b == 0) continue;
        acc = acc + 0.125 * read(g, {a, b});
      }
    }
    return acc;
  };
  e.program.group.append(
      Stencil("box", nine("x"), "mid", lib::interior(2)));
  e.program.group.append(
      Stencil("box2", nine("mid"), "out", lib::interior(2)));
  CompileOptions o;
  o.dist_grid = {2, 2};
  e.variant = variant("distsim/g2x2", "distsim", o);
  return e;
}

/// A chained stencil + sum reduction under the simulated allreduce: each
/// rank reduces its clipped sub-box with the canonical pairwise tree and
/// the partials combine in rank order at the wave barrier.  Minimized
/// from the generator's reduce shape; pins the clip (no halo cells in the
/// partial), the identity on ranks whose clip is empty, and the
/// replicated one-cell result every rank must agree on.
CorpusEntry distsim_allreduce() {
  CorpusEntry e;
  e.name = "distsim-allreduce";
  e.note = "per-rank partials + rank-ordered combine (simulated allreduce)";
  e.program.grids["x"] = spec({9, 6}, "x");
  e.program.grids["mid"] = spec({9, 6}, "mid");
  e.program.grids["total"] = spec({1, 1}, "total");
  ExprPtr blur = 0.5 * read("x", {0, 0}) +
                 0.25 * (read("x", {1, 0}) + read("x", {-1, 0}));
  e.program.group.append(Stencil("blur", blur, "mid", lib::interior(2)));
  e.program.group.append(Stencil(
      "total", reduce_sum(read("mid", {0, 0}) - 1.0, "mid"), "total",
      lib::interior(2)));
  CompileOptions o;
  o.dist_ranks = 3;
  o.det_reduce = true;
  e.variant = variant("distsim/r3-dred", "distsim", o);
  return e;
}

/// Multiplicative (num = 2) restriction maps through the address-
/// arithmetic pass: strength-reduced induction variables must agree with
/// the naive index computation.
CorpusEntry addr_multiplicative() {
  CorpusEntry e;
  e.name = "addr-multiplicative";
  e.note = "restriction maps under addr_opt (strength-reduced inductions)";
  e.program.grids["fine"] = spec({14, 14}, "fine");
  e.program.grids["coarse"] = spec({8, 8}, "coarse");
  ExprPtr acc;
  for (std::int64_t t0 : {-1, 0}) {
    for (std::int64_t t1 : {-1, 0}) {
      ExprPtr term = 0.25 * read_mapped("fine", IndexMap({DimMap{2, t0, 1},
                                                          DimMap{2, t1, 1}}));
      acc = acc == nullptr ? term : acc + term;
    }
  }
  e.program.group.append(Stencil("fw", acc, "coarse", lib::interior(2)));
  e.variant = variant("c", "c", CompileOptions{});
  return e;
}

/// Divisive (den = 2) interpolation maps over parity-strided rects on the
/// vectorized parallel-for path.
CorpusEntry interp_divisive() {
  CorpusEntry e;
  e.name = "interp-divisive";
  e.note = "division-free interpolation inductions under omp for simd";
  e.program.grids["hc"] = spec({6, 6}, "hc");
  e.program.grids["gf"] = spec({10, 10}, "gf");
  for (int mask = 0; mask < 4; ++mask) {
    std::vector<DimMap> dims;
    Index start(2);
    for (int d = 0; d < 2; ++d) {
      const bool odd = ((mask >> d) & 1) == 1;
      start[static_cast<size_t>(d)] = odd ? 1 : 2;
      dims.push_back(DimMap{1, odd ? 1 : 0, 2});
    }
    e.program.group.append(
        Stencil("interp" + std::to_string(mask),
                read("gf", {0, 0}) + read_mapped("hc", IndexMap(dims)), "gf",
                RectDomain(std::move(start), Index{-1, -1}, Index{2, 2})));
  }
  CompileOptions o;
  o.schedule = CompileOptions::Schedule::ParallelFor;
  o.simd = true;
  e.variant = variant("omp-for/simd", "openmp", o);
  return e;
}

/// Two chained sweeps fused by temporal blocking: the overlapped-tile
/// traversal must agree with two plain reference applications.
CorpusEntry timetile_chain() {
  CorpusEntry e;
  e.name = "timetile-chain";
  e.note = "temporal blocking of a chained two-stencil group";
  e.program.grids["a"] = spec({16, 16}, "a");
  e.program.grids["b"] = spec({16, 16}, "b");
  e.program.grids["c"] = spec({16, 16}, "c");
  ExprPtr s1 = 0.5 * read("a", {0, 0}) +
               0.25 * (read("a", {1, 0}) + read("a", {-1, 0}));
  ExprPtr s2 = 0.5 * read("b", {0, 0}) +
               0.25 * (read("b", {0, 1}) + read("b", {0, -1}));
  e.program.group.append(Stencil("s1", s1, "b", lib::interior(2)));
  e.program.group.append(Stencil("s2", s2, "c", lib::interior(2)));
  CompileOptions o;
  o.time_tile = 2;
  e.variant = variant("omp-tasks/tt2", "openmp", o, 4);
  return e;
}

/// The timetile chain again, but on the snapshot-free wavefront schedule:
/// slab carry bands must serve exactly the pre-fusion values the snapshot
/// schedule would have read.  A regression in the carry-save ordering (or
/// the W >= halo[0] clamp) makes the replay diverge from two plain
/// reference applications.
CorpusEntry wavefront_chain() {
  CorpusEntry e;
  e.name = "wavefront-chain";
  e.note = "wavefront temporal blocking (carry bands vs snapshot)";
  e.program.grids["a"] = spec({17, 11}, "a");
  e.program.grids["b"] = spec({17, 11}, "b");
  e.program.grids["c"] = spec({17, 11}, "c");
  ExprPtr s1 = 0.5 * read("a", {0, 0}) +
               0.25 * (read("a", {1, 0}) + read("a", {-1, 0}));
  ExprPtr s2 = 0.5 * read("b", {0, 0}) +
               0.25 * (read("b", {1, 1}) + read("b", {-1, -1}));
  e.program.group.append(Stencil("s1", s1, "b", lib::interior(2)));
  e.program.group.append(Stencil("s2", s2, "c", lib::interior(2)));
  CompileOptions o;
  o.time_tile = 2;
  o.wavefront = true;
  e.variant = variant("omp-for/wf2", "openmp", o, 4);
  return e;
}

/// Explicit-SIMD rows on the sequential backend: `omp simd` pragmas
/// compiled with -fopenmp-simd over an in-place two-color update must not
/// let the vectorizer reorder the dependent color sweeps.
CorpusEntry simd_rows_multicolor() {
  CorpusEntry e;
  e.name = "simd-rows-multicolor";
  e.note = "simd_rows row vectorization of an in-place two-color update";
  e.program.grids["u"] = spec({12, 18}, "u");
  e.program.params["w"] = 0.7;
  ExprPtr body =
      param("w") * 0.25 *
          (read("u", {1, 0}) + read("u", {-1, 0}) + read("u", {0, 1}) +
           read("u", {0, -1})) +
      (1.0 - param("w")) * read("u", {0, 0});
  std::vector<RectDomain> rects;
  for (std::int64_t parity : {0, 1}) {
    rects.emplace_back(Index{1 + parity, 1}, Index{-1, -1}, Index{2, 1});
  }
  e.program.group.append(
      Stencil("gsrb_like", body, "u", DomainUnion(std::move(rects))));
  CompileOptions o;
  o.simd_rows = true;
  e.variant = variant("c/simdrows", "c", o);
  return e;
}

/// GSRB-shaped in-place multicolor update under multicolor fusion.
CorpusEntry multicolor_fuse() {
  CorpusEntry e;
  e.name = "multicolor-fuse";
  e.note = "in-place two-color update under fuse_colors";
  e.program.grids["u"] = spec({12, 12}, "u");
  e.program.params["w"] = 0.6;
  ExprPtr body =
      param("w") * 0.25 *
          (read("u", {1, 0}) + read("u", {-1, 0}) + read("u", {0, 1}) +
           read("u", {0, -1})) +
      (1.0 - param("w")) * read("u", {0, 0});
  std::vector<RectDomain> rects;
  for (std::int64_t parity : {0, 1}) {
    rects.emplace_back(Index{1 + parity, 1}, Index{-1, -1}, Index{2, 1});
  }
  e.program.group.append(
      Stencil("gsrb_like", body, "u", DomainUnion(std::move(rects))));
  CompileOptions o;
  o.schedule = CompileOptions::Schedule::ParallelFor;
  o.fuse_colors = true;
  e.variant = variant("omp-for/fuse", "openmp", o);
  return e;
}

/// Pinned (stride-0) boundary faces plus an interior update, tiled.
CorpusEntry face_pinned() {
  CorpusEntry e;
  e.name = "face-pinned";
  e.note = "stride-0 pinned face dims alongside a tiled interior sweep";
  e.program.grids["v"] = spec({13, 13}, "v");
  e.program.grids["w"] = spec({13, 13}, "w");
  e.program.group.append(Stencil(
      "lo_face", 2.0 * read("v", {1, 0}) - read("v", {2, 0}), "v",
      RectDomain(Index{0, 0}, Index{0, 0}, Index{0, 1})));
  e.program.group.append(Stencil(
      "hi_face", 2.0 * read("v", {-1, 0}) - read("v", {-2, 0}), "v",
      RectDomain(Index{-1, 0}, Index{0, 0}, Index{0, 1})));
  e.program.group.append(Stencil(
      "smooth",
      0.25 * (read("v", {1, 0}) + read("v", {-1, 0}) + read("v", {0, 1}) +
              read("v", {0, -1})),
      "w", lib::interior(2)));
  e.variant = variant("c/tile", "c", CompileOptions{}, 4);
  return e;
}

}  // namespace

std::vector<CorpusEntry> corpus() {
  std::vector<CorpusEntry> entries;
  entries.push_back(pr3_rank1_for_simd());
  entries.push_back(distsim_thin_slab());
  entries.push_back(distsim_diagonal_corner());
  entries.push_back(distsim_allreduce());
  entries.push_back(addr_multiplicative());
  entries.push_back(interp_divisive());
  entries.push_back(timetile_chain());
  entries.push_back(wavefront_chain());
  entries.push_back(simd_rows_multicolor());
  entries.push_back(multicolor_fuse());
  entries.push_back(face_pinned());
  return entries;
}

ReplayOutcome replay(const CorpusEntry& entry, double tol) {
  ReplayOutcome outcome;
  outcome.result = diff_variant(entry.program, entry.variant, tol);
  outcome.ok = entry.expect_rejected
                   ? outcome.result.status == DiffStatus::Rejected
                   : outcome.result.status == DiffStatus::Match;
  return outcome;
}

}  // namespace snowcheck
}  // namespace snowflake
