#pragma once
// snowcheck reproducer emitter: render a (typically minimized) failing
// Program + Variant as a self-contained C++ translation unit that rebuilds
// the program through the public builder API, runs the variant against
// the reference oracle, prints the worst divergence, and exits nonzero on
// mismatch.  The dump depends only on the snowflake umbrella library —
// not on src/verify — so it can be pasted straight into a bug report or
// checked in as a regression test.

#include <string>

#include "verify/differ.hpp"
#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {

/// C++ source text of the reproducer (a complete file with main()).
std::string emit_repro(const Program& program, const Variant& variant,
                       double tol = kDefaultTol);

}  // namespace snowcheck
}  // namespace snowflake
