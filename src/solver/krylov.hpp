#pragma once
// Matrix-free Krylov solvers over the Snowflake stencil DSL.
//
// The Mat2Stencil rung above explicit sweeps: CG and BiCGStab on the
// HPGMG variable-coefficient operator -∇·(β∇u), with every vector
// operation — operator application, dot products, axpy updates — compiled
// from stencil and reduction groups by a pluggable backend.  The host
// drives only the scalar recurrence (α, β, ω) between kernel launches,
// reading each reduction result out of its one-cell grid.
//
// Optional preconditioning applies M⁻¹ = one (or more) multigrid V-cycles
// from multigrid/solver.hpp on a zero initial guess — the textbook
// MG-preconditioned CG configuration.  The Poisson convergence harness is
// the same manufactured-solution setup the multigrid tier verifies
// against: b = A_h u*, so the discrete solution is exactly u* and the
// error is measurable to machine precision.
//
// Determinism: with CompileOptions::det_reduce every reduction uses the
// canonical pairwise tree, so residual histories are bit-identical across
// the jit and reference backends (tests/solver/test_krylov.cpp).

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "multigrid/solver.hpp"

namespace snowflake::solver {

struct KrylovStats {
  std::int64_t dof = 0;
  int iterations = 0;
  bool converged = false;
  /// ||r||_2 per iteration; [0] is ||b||_2 (the zero-guess residual).
  std::vector<double> residual_norms;
  double error_max = 0.0;  // |x - u*|_inf over the interior
  double seconds = 0.0;    // wall-clock of the iteration loop
};

class KrylovSolver {
public:
  enum class Method { CG, BiCGStab };

  struct Config {
    mg::ProblemSpec problem;
    std::string backend = "c";
    CompileOptions options;
    /// Converged when ||r||_2 <= rtol * ||b||_2.
    double rtol = 1e-10;
    int max_iters = 200;
    /// Precondition with M⁻¹ = `precond_cycles` multigrid V-cycle(s).
    bool precondition = false;
    int precond_cycles = 1;
  };

  explicit KrylovSolver(Config config);
  ~KrylovSolver();

  KrylovStats solve(Method method);

  const Config& config() const { return config_; }
  std::int64_t dof() const;

private:
  double dot(CompiledKernel& kernel, const std::string& out);
  void run(CompiledKernel& kernel, const ParamMap& params = {});
  /// dst = M⁻¹ src: V-cycle(s) when preconditioning, else dst = src.
  void apply_precond(const std::string& src, const std::string& dst,
                     CompiledKernel& copy_kernel);

  KrylovStats solve_cg();
  KrylovStats solve_bicgstab();
  void reset_state(KrylovStats* stats);
  bool record_residual(KrylovStats* stats, double bnorm);

  Config config_;
  std::unique_ptr<mg::Level> level_;      // vectors + β coefficients
  std::unique_ptr<mg::Solver> mg_;        // preconditioner (may be null)
  Grid exact_;                            // u* for the error report
  double h2inv_ = 0.0;

  // Compiled kernels (names refer to grids in level_->grids()).
  std::unique_ptr<CompiledKernel> apply_p_;     // ap = A p
  std::unique_ptr<CompiledKernel> apply_phat_;  // v = A phat
  std::unique_ptr<CompiledKernel> apply_shat_;  // t = A shat
  std::unique_ptr<CompiledKernel> dot_rz_, dot_pap_, dot_rr_;
  std::unique_ptr<CompiledKernel> dot_r0r_, dot_r0v_, dot_ts_, dot_tt_;
  std::unique_ptr<CompiledKernel> axpy_x_p_;    // x += α p
  std::unique_ptr<CompiledKernel> axpy_r_ap_;   // r += α ap (α = -alpha)
  std::unique_ptr<CompiledKernel> xpay_p_z_;    // p = z + β p
  std::unique_ptr<CompiledKernel> copy_r_b_, copy_z_r_, copy_p_z_;
  std::unique_ptr<CompiledKernel> copy_r0_r_, copy_phat_p_, copy_shat_s_;
  std::unique_ptr<CompiledKernel> update_p_;    // p = r + β(p − ω v)
  std::unique_ptr<CompiledKernel> update_s_;    // s = r − α v
  std::unique_ptr<CompiledKernel> update_x_;    // x += α phat + ω shat
  std::unique_ptr<CompiledKernel> update_r_;    // r = s − ω t
};

/// Name of a method ("cg" / "bicgstab").
const char* method_name(KrylovSolver::Method method);

}  // namespace snowflake::solver
