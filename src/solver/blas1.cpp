#include "solver/blas1.hpp"

#include "ir/stencil_library.hpp"

namespace snowflake::solver {

namespace {

Index zero_offset(int rank) { return Index(static_cast<size_t>(rank), 0); }

}  // namespace

Index scalar_shape(int rank) { return Index(static_cast<size_t>(rank), 1); }

StencilGroup dot_group(int rank, const std::string& a, const std::string& b,
                       const std::string& out) {
  return StencilGroup(
      Stencil("dot_" + a + "_" + b,
              reduce_dot(read(a, zero_offset(rank)) * read(b, zero_offset(rank)),
                         /*anchor=*/a),
              out, lib::interior(rank)));
}

StencilGroup norm2_group(int rank, const std::string& a,
                         const std::string& out) {
  return dot_group(rank, a, a, out);
}

StencilGroup axpy_group(int rank, const std::string& y, const std::string& x) {
  return StencilGroup(
      Stencil("axpy_" + y + "_" + x,
              read(y, zero_offset(rank)) +
                  param("alpha") * read(x, zero_offset(rank)),
              y, lib::interior(rank)));
}

StencilGroup xpay_group(int rank, const std::string& y, const std::string& x) {
  return StencilGroup(
      Stencil("xpay_" + y + "_" + x,
              read(x, zero_offset(rank)) +
                  param("beta") * read(y, zero_offset(rank)),
              y, lib::interior(rank)));
}

StencilGroup copy_group(int rank, const std::string& y, const std::string& x) {
  return StencilGroup(
      Stencil("copy_" + y + "_" + x, read(x, zero_offset(rank)), y,
              lib::interior(rank)));
}

}  // namespace snowflake::solver
