#pragma once
// Level-1 vector operations over grid interiors, expressed as Snowflake
// stencil and reduction groups — the building blocks of the matrix-free
// Krylov tier (krylov.hpp).
//
// Vectors are (n+2)^rank cell-centered grids with one ghost layer, the
// multigrid convention (multigrid/level.hpp); every operation iterates
// the unit-stride interior (1..-1)^rank, so ghost cells never contribute
// to a dot product and never receive an update.  Reductions write their
// scalar into a one-cell grid of shape scalar_shape(rank); the host reads
// cell 0 back between kernels.

#include <string>

#include "ir/stencil.hpp"

namespace snowflake::solver {

/// Shape of the one-cell grid a reduction writes: (1,...,1) at the
/// vector rank.
Index scalar_shape(int rank);

/// out[0] = Σ_interior a·b — a dot-product reduction anchored on `a`.
StencilGroup dot_group(int rank, const std::string& a, const std::string& b,
                       const std::string& out);

/// out[0] = Σ_interior a·a — the squared 2-norm (host takes the sqrt).
StencilGroup norm2_group(int rank, const std::string& a,
                         const std::string& out);

/// y += $alpha · x over the interior.
StencilGroup axpy_group(int rank, const std::string& y, const std::string& x);

/// y = x + $beta · y over the interior (the CG direction update).
StencilGroup xpay_group(int rank, const std::string& y, const std::string& x);

/// y = x over the interior.
StencilGroup copy_group(int rank, const std::string& y, const std::string& x);

}  // namespace snowflake::solver
