#include "solver/krylov.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ir/stencil_library.hpp"
#include "ir/validate.hpp"
#include "multigrid/operators.hpp"
#include "solver/blas1.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace snowflake::solver {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// out = A src over the interior (fresh ghost layer first).
StencilGroup apply_group(int rank, const std::string& src,
                         const std::string& out) {
  StencilGroup group;
  group.append(lib::dirichlet_boundary(rank, src));
  group.append(lib::vc_apply(rank, src, out, mg::kBetaPrefix));
  return group;
}

Index zero_offset(int rank) { return Index(static_cast<size_t>(rank), 0); }

}  // namespace

const char* method_name(KrylovSolver::Method method) {
  return method == KrylovSolver::Method::CG ? "cg" : "bicgstab";
}

KrylovSolver::KrylovSolver(Config config) : config_(std::move(config)) {
  const mg::ProblemSpec& spec = config_.problem;
  const int rank = spec.rank;
  level_ = std::make_unique<mg::Level>(spec, spec.n);
  h2inv_ = level_->h2inv();
  GridSet& g = level_->grids();
  const Index shape = level_->box_shape();
  for (const char* name :
       {"b", "r", "p", "z", "ap", "r0hat", "v", "s", "t", "phat", "shat"}) {
    g.add_zeros(name, shape);
  }
  for (const char* name : {"dot_rz", "dot_pap", "dot_rr", "dot_r0r", "dot_r0v",
                           "dot_ts", "dot_tt"}) {
    g.add_zeros(name, scalar_shape(rank));
  }

  // Manufactured Poisson fixture: b = A_h u*, so the discrete solution is
  // exactly u* and the error is measurable to machine precision.
  exact_ = Grid(shape);
  mg::fill_cell_centered(exact_, level_->h(), [&](const std::vector<double>& x) {
    return mg::u_exact(spec, x);
  });
  std::copy(exact_.data(), exact_.data() + exact_.size(),
            g.at(mg::kX).data());
  {
    auto manufacture = Backend::get(config_.backend)
                           .compile(mg::rhs_manufacture_group(rank),
                                    shapes_of(g), config_.options);
    manufacture->run(g, {{"h2inv", h2inv_}});
  }
  std::copy(g.at(mg::kRhs).data(), g.at(mg::kRhs).data() + g.at(mg::kRhs).size(),
            g.at("b").data());

  if (config_.precondition) {
    mg::Solver::Config mc;
    mc.problem = spec;
    mc.backend = config_.backend;
    mc.options = config_.options;
    mg_ = std::make_unique<mg::Solver>(std::move(mc));
  }

  Backend& backend = Backend::get(config_.backend);
  const ShapeMap shapes = shapes_of(g);
  const auto compile = [&](const StencilGroup& group) {
    return backend.compile(group, shapes, config_.options);
  };
  apply_p_ = compile(apply_group(rank, "p", "ap"));
  apply_phat_ = compile(apply_group(rank, "phat", "v"));
  apply_shat_ = compile(apply_group(rank, "shat", "t"));
  dot_rz_ = compile(dot_group(rank, "r", "z", "dot_rz"));
  dot_pap_ = compile(dot_group(rank, "p", "ap", "dot_pap"));
  dot_rr_ = compile(norm2_group(rank, "r", "dot_rr"));
  dot_r0r_ = compile(dot_group(rank, "r0hat", "r", "dot_r0r"));
  dot_r0v_ = compile(dot_group(rank, "r0hat", "v", "dot_r0v"));
  dot_ts_ = compile(dot_group(rank, "t", "s", "dot_ts"));
  dot_tt_ = compile(norm2_group(rank, "t", "dot_tt"));
  axpy_x_p_ = compile(axpy_group(rank, "x", "p"));
  axpy_r_ap_ = compile(axpy_group(rank, "r", "ap"));
  xpay_p_z_ = compile(xpay_group(rank, "p", "z"));
  copy_r_b_ = compile(copy_group(rank, "r", "b"));
  copy_z_r_ = compile(copy_group(rank, "z", "r"));
  copy_p_z_ = compile(copy_group(rank, "p", "z"));
  copy_r0_r_ = compile(copy_group(rank, "r0hat", "r"));
  copy_phat_p_ = compile(copy_group(rank, "phat", "p"));
  copy_shat_s_ = compile(copy_group(rank, "shat", "s"));
  update_p_ = compile(StencilGroup(Stencil(
      "bicg_update_p",
      read("r", zero_offset(rank)) +
          param("beta") * (read("p", zero_offset(rank)) -
                           param("omega") * read("v", zero_offset(rank))),
      "p", lib::interior(rank))));
  update_s_ = compile(StencilGroup(Stencil(
      "bicg_update_s",
      read("r", zero_offset(rank)) -
          param("alpha") * read("v", zero_offset(rank)),
      "s", lib::interior(rank))));
  update_x_ = compile(StencilGroup(Stencil(
      "bicg_update_x",
      read("x", zero_offset(rank)) +
          param("alpha") * read("phat", zero_offset(rank)) +
          param("omega") * read("shat", zero_offset(rank)),
      "x", lib::interior(rank))));
  update_r_ = compile(StencilGroup(Stencil(
      "bicg_update_r",
      read("s", zero_offset(rank)) -
          param("omega") * read("t", zero_offset(rank)),
      "r", lib::interior(rank))));
}

KrylovSolver::~KrylovSolver() = default;

std::int64_t KrylovSolver::dof() const { return level_->dof(); }

void KrylovSolver::run(CompiledKernel& kernel, const ParamMap& params) {
  ParamMap with_op = params;
  with_op.emplace("h2inv", h2inv_);
  kernel.run(level_->grids(), with_op);
}

double KrylovSolver::dot(CompiledKernel& kernel, const std::string& out) {
  run(kernel);
  return level_->grids().at(out).data()[0];
}

void KrylovSolver::apply_precond(const std::string& src, const std::string& dst,
                                 CompiledKernel& copy_kernel) {
  if (!mg_) {
    run(copy_kernel);
    return;
  }
  trace::Span span(trace::enabled() ? "krylov:precond" : std::string(), "run");
  GridSet& g = level_->grids();
  mg::Level& finest = mg_->level(0);
  const Grid& r = g.at(src);
  Grid& rhs = finest.grids().at(mg::kRhs);
  std::copy(r.data(), r.data() + r.size(), rhs.data());
  finest.grids().at(mg::kX).fill(0.0);
  for (int c = 0; c < config_.precond_cycles; ++c) mg_->vcycle(0);
  const Grid& zx = finest.grids().at(mg::kX);
  Grid& z = g.at(dst);
  std::copy(zx.data(), zx.data() + zx.size(), z.data());
}

void KrylovSolver::reset_state(KrylovStats* stats) {
  GridSet& g = level_->grids();
  g.at(mg::kX).fill(0.0);
  for (const char* name :
       {"r", "p", "z", "ap", "r0hat", "v", "s", "t", "phat", "shat"}) {
    g.at(name).fill(0.0);
  }
  run(*copy_r_b_);  // r = b (zero initial guess)
  stats->dof = level_->dof();
}

/// Record ||r||_2; true when converged relative to residual_norms[0].
bool KrylovSolver::record_residual(KrylovStats* stats, double bnorm) {
  const double rnorm = std::sqrt(dot(*dot_rr_, "dot_rr"));
  stats->residual_norms.push_back(rnorm);
  return rnorm <= config_.rtol * bnorm;
}

KrylovStats KrylovSolver::solve_cg() {
  KrylovStats stats;
  reset_state(&stats);
  const double t0 = now_seconds();
  const double bnorm = std::sqrt(dot(*dot_rr_, "dot_rr"));
  stats.residual_norms.push_back(bnorm);
  if (bnorm > 0.0) {
    apply_precond("r", "z", *copy_z_r_);
    run(*copy_p_z_);
    double rho = dot(*dot_rz_, "dot_rz");
    for (int it = 1; it <= config_.max_iters; ++it) {
      run(*apply_p_);
      const double alpha = rho / dot(*dot_pap_, "dot_pap");
      run(*axpy_x_p_, {{"alpha", alpha}});
      run(*axpy_r_ap_, {{"alpha", -alpha}});
      stats.iterations = it;
      if (record_residual(&stats, bnorm)) {
        stats.converged = true;
        break;
      }
      apply_precond("r", "z", *copy_z_r_);
      const double rho_next = dot(*dot_rz_, "dot_rz");
      run(*xpay_p_z_, {{"beta", rho_next / rho}});
      rho = rho_next;
    }
  } else {
    stats.converged = true;
  }
  stats.seconds = now_seconds() - t0;
  stats.error_max =
      mg::Level::interior_max_diff(level_->grids().at(mg::kX), exact_);
  return stats;
}

KrylovStats KrylovSolver::solve_bicgstab() {
  KrylovStats stats;
  reset_state(&stats);
  const double t0 = now_seconds();
  const double bnorm = std::sqrt(dot(*dot_rr_, "dot_rr"));
  stats.residual_norms.push_back(bnorm);
  if (bnorm > 0.0) {
    run(*copy_r0_r_);  // r0hat = r, fixed shadow residual
    double rho = 1.0, alpha = 1.0, omega = 1.0;
    for (int it = 1; it <= config_.max_iters; ++it) {
      const double rho_next = dot(*dot_r0r_, "dot_r0r");
      const double beta = (rho_next / rho) * (alpha / omega);
      run(*update_p_, {{"beta", beta}, {"omega", omega}});
      apply_precond("p", "phat", *copy_phat_p_);
      run(*apply_phat_);
      alpha = rho_next / dot(*dot_r0v_, "dot_r0v");
      run(*update_s_, {{"alpha", alpha}});
      apply_precond("s", "shat", *copy_shat_s_);
      run(*apply_shat_);
      omega = dot(*dot_ts_, "dot_ts") / dot(*dot_tt_, "dot_tt");
      run(*update_x_, {{"alpha", alpha}, {"omega", omega}});
      run(*update_r_, {{"omega", omega}});
      rho = rho_next;
      stats.iterations = it;
      if (record_residual(&stats, bnorm)) {
        stats.converged = true;
        break;
      }
    }
  } else {
    stats.converged = true;
  }
  stats.seconds = now_seconds() - t0;
  stats.error_max =
      mg::Level::interior_max_diff(level_->grids().at(mg::kX), exact_);
  return stats;
}

KrylovStats KrylovSolver::solve(Method method) {
  trace::Span span(trace::enabled()
                       ? std::string("krylov:solve:") + method_name(method)
                       : std::string(),
                   "run");
  return method == Method::CG ? solve_cg() : solve_bicgstab();
}

}  // namespace snowflake::solver
