#pragma once
// Roofline performance bounds (paper §V-B).
//
// For each operator the paper computes the asymptotic compulsory DRAM
// traffic per stencil application — assuming write-allocate caches, no
// capacity/conflict misses, and no cache-bypass stores — and divides
// measured bandwidth by it to get a speed-of-light stencils/s bound.

#include <string>

namespace snowflake {

/// Paper §V-B compulsory traffic per stencil (bytes):
///   CC 7-pt Laplacian: read x (8) + write out + write-allocate out (16).
///   CC Jacobi: + read rhs (8) + read stored D^-1 (8).
///   VC GSRB: x read+write+WA (24) + rhs (8) + 3 face betas (24) + λ (8).
struct StencilBytes {
  static constexpr double cc_7pt = 24.0;
  static constexpr double cc_jacobi = 40.0;
  static constexpr double vc_gsrb = 64.0;
};

/// Stencils/s bound = bandwidth / bytes-per-stencil.
double roofline_stencils_per_s(double bandwidth_bytes_per_s,
                               double bytes_per_stencil);

/// Seconds to apply one sweep of `stencil_count` stencils at the bound.
double roofline_sweep_seconds(double bandwidth_bytes_per_s,
                              double bytes_per_stencil, double stencil_count);

}  // namespace snowflake
