#pragma once
// Streaming-traffic and flop estimation for lowered loop nests.
//
// Used by the simulated device to time dispatches and by benches to report
// achieved fractions of bandwidth.  The model is line-granular: along the
// contiguous (last) dimension a strided access still touches every cache
// line it skips across, while a skipped row/plane in an outer dimension is
// genuinely untouched.  Writes count twice (write-allocate + write-back),
// matching the paper's Roofline assumptions.

#include <cstdint>

#include "codegen/plan.hpp"

namespace snowflake {

/// Estimated DRAM bytes moved by one execution of the nest.
double nest_traffic_bytes(const KernelPlan& plan, const LoopNest& nest);

/// Estimated bytes for the whole plan (sum over nests).
double plan_traffic_bytes(const KernelPlan& plan);

/// Floating-point operations per iteration point (binary + unary ops).
std::int64_t flops_per_point(const LoopNest& nest);

/// Total flops of one nest execution.
double nest_flops(const KernelPlan& plan, const LoopNest& nest);

}  // namespace snowflake
