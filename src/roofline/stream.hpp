#pragma once
// Modified STREAM benchmark (paper Figure 6): a parallel dot product, whose
// read-dominated access pattern approximates stencil traffic better than
// the write-heavy classic STREAM kernels.  The measured bandwidth feeds the
// Roofline bound in every figure.

#include <cstddef>

namespace snowflake {

struct StreamResult {
  double best_bytes_per_s = 0.0;
  double avg_bytes_per_s = 0.0;
  std::size_t elements = 0;
  int trials = 0;
};

/// Run the Figure 6 dot-product kernel over two arrays of `elements`
/// doubles, `trials` times (first is warm-up); returns bandwidths.
StreamResult measure_stream_dot(std::size_t elements = 1u << 25, int trials = 5);

/// Classic STREAM triad (a[i] = b[i] + s*c[i]) for comparison.
StreamResult measure_stream_triad(std::size_t elements = 1u << 25, int trials = 5);

}  // namespace snowflake
