#include "roofline/traffic.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "support/error.hpp"

namespace snowflake {

namespace {

/// Iteration count of the nest along one grid dimension.
std::int64_t dim_count(const LoopNest& nest, int grid_dim, std::int64_t* stride) {
  for (const auto& d : nest.dims) {
    if (d.grid_dim != grid_dim) continue;
    if (d.tile_of >= 0) {
      // Tiled: the intra-tile loop owns the coordinate; its true range is
      // the original [lo, hi) with the original stride.
      *stride = d.stride;
      return d.hi <= d.lo ? 0 : (d.hi - 1 - d.lo) / d.stride + 1;
    }
    *stride = d.stride;
    return d.hi <= d.lo ? 0 : (d.hi - 1 - d.lo) / d.stride + 1;
  }
  throw InternalError("nest has no loop for grid dim " + std::to_string(grid_dim));
}

/// Touched cells of one access: counts rows/planes exactly for outer dims
/// and full skip-span (line granularity) for the contiguous dim.
double access_footprint_cells(const KernelPlan& plan, const LoopNest& nest,
                              const std::string& grid, const IndexMap& map) {
  const Index& shape = plan.shapes.at(grid);
  const int rank = static_cast<int>(shape.size());
  double cells = 1.0;
  for (int d = 0; d < rank; ++d) {
    std::int64_t iter_stride = 1;
    const std::int64_t n = dim_count(nest, d, &iter_stride);
    if (n == 0) return 0.0;
    const DimMap& m = map.dim(d);
    // Mapped step between consecutive accessed indices in this dim.
    const double mapped_stride =
        static_cast<double>(iter_stride) * static_cast<double>(m.num) /
        static_cast<double>(m.den);
    double touched;
    if (d == rank - 1) {
      // Contiguous dim: a stride up to a cache line (8 doubles) still pulls
      // the skipped cells through DRAM.
      const double span = static_cast<double>(n - 1) * mapped_stride + 1.0;
      const double line_limited =
          static_cast<double>(n) * std::min(mapped_stride, 8.0);
      touched = std::min({span, std::max(line_limited, static_cast<double>(n)),
                          static_cast<double>(shape[static_cast<size_t>(d)])});
    } else {
      touched = std::min(static_cast<double>(n),
                         static_cast<double>(shape[static_cast<size_t>(d)]));
    }
    cells *= touched;
  }
  return cells;
}

}  // namespace

double nest_traffic_bytes(const KernelPlan& plan, const LoopNest& nest) {
  // Distinct read grids each stream once (neighbouring offsets share lines
  // asymptotically); take the largest footprint among that grid's reads.
  std::map<std::string, double> read_cells;
  for (const auto* r : collect_reads(nest.rhs)) {
    double cells = access_footprint_cells(plan, nest, r->grid(), r->map());
    auto [it, inserted] = read_cells.emplace(r->grid(), cells);
    if (!inserted) it->second = std::max(it->second, cells);
  }
  double total_cells = 0.0;
  for (const auto& [grid, cells] : read_cells) total_cells += cells;
  // Write-allocate + write-back: the output streams twice — unless it was
  // already counted as a read (in-place), in which case the allocate is the
  // read we counted, so add only the write-back... the paper always charges
  // the allocate, so we follow it: writes cost 2x, reads of the same grid
  // are still charged (GSRB: 24 B for x).
  // A reduce nest writes one scalar cell, not the iteration box.
  const double write_cells =
      nest.is_reduce
          ? 1.0
          : access_footprint_cells(
                plan, nest, nest.out_grid,
                IndexMap::identity(
                    static_cast<int>(plan.shapes.at(nest.out_grid).size())));
  total_cells += 2.0 * write_cells;
  return 8.0 * total_cells;
}

double plan_traffic_bytes(const KernelPlan& plan) {
  double total = 0.0;
  for (const auto& nest : plan.nests) total += nest_traffic_bytes(plan, nest);
  return total;
}

std::int64_t flops_per_point(const LoopNest& nest) {
  std::int64_t flops = 0;
  visit(nest.rhs, [&](const Expr& e) {
    if (e.kind() == ExprKind::Binary || e.kind() == ExprKind::Unary) ++flops;
  });
  if (nest.is_reduce) ++flops;  // the per-point combine into the accumulator
  return flops;
}

double nest_flops(const KernelPlan& plan, const LoopNest& nest) {
  (void)plan;
  return static_cast<double>(flops_per_point(nest)) *
         static_cast<double>(nest.point_count);
}

}  // namespace snowflake
