#include "roofline/roofline.hpp"

#include "support/error.hpp"

namespace snowflake {

double roofline_stencils_per_s(double bandwidth_bytes_per_s,
                               double bytes_per_stencil) {
  SF_REQUIRE(bandwidth_bytes_per_s > 0 && bytes_per_stencil > 0,
             "roofline inputs must be positive");
  return bandwidth_bytes_per_s / bytes_per_stencil;
}

double roofline_sweep_seconds(double bandwidth_bytes_per_s,
                              double bytes_per_stencil, double stencil_count) {
  return stencil_count /
         roofline_stencils_per_s(bandwidth_bytes_per_s, bytes_per_stencil);
}

}  // namespace snowflake
