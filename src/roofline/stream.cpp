#include "roofline/stream.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace snowflake {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

StreamResult measure_stream_dot(std::size_t elements, int trials) {
  SF_REQUIRE(trials >= 2, "measure_stream_dot needs >= 2 trials (1 warm-up)");
  std::vector<double> a(elements, 1.0), b(elements, 2.0);
  volatile double sink = 0.0;
  StreamResult result;
  result.elements = elements;
  result.trials = trials;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    double beta = 0.0;
    const auto start = std::chrono::steady_clock::now();
    // Paper Figure 6: tuned_STREAM_Dot.
#pragma omp parallel for reduction(+ : beta)
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(elements); j++) {
      beta += a[static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(j)];
    }
    const double dt = seconds_since(start);
    sink = sink + beta;
    if (t == 0) continue;  // warm-up
    const double bw = 2.0 * 8.0 * static_cast<double>(elements) / dt;
    result.best_bytes_per_s = std::max(result.best_bytes_per_s, bw);
    total += bw;
  }
  result.avg_bytes_per_s = total / (trials - 1);
  return result;
}

StreamResult measure_stream_triad(std::size_t elements, int trials) {
  SF_REQUIRE(trials >= 2, "measure_stream_triad needs >= 2 trials (1 warm-up)");
  std::vector<double> a(elements, 0.0), b(elements, 1.0), c(elements, 2.0);
  const double scalar = 3.0;
  StreamResult result;
  result.elements = elements;
  result.trials = trials;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
#pragma omp parallel for
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(elements); j++) {
      a[static_cast<std::size_t>(j)] = b[static_cast<std::size_t>(j)] +
                                       scalar * c[static_cast<std::size_t>(j)];
    }
    const double dt = seconds_since(start);
    if (t == 0) continue;
    // write-allocate: a is read then written -> 3 streams + read b, c.
    const double bw = 4.0 * 8.0 * static_cast<double>(elements) / dt;
    result.best_bytes_per_s = std::max(result.best_bytes_per_s, bw);
    total += bw;
  }
  result.avg_bytes_per_s = total / (trials - 1);
  return result;
}

}  // namespace snowflake
