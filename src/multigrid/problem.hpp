#pragma once
// HPGMG-style model problem: -∇·(β ∇u) = f on the unit box with
// homogeneous linear Dirichlet boundaries, discretized at second order on a
// cell-centered grid with one ghost layer.
//
// We choose a smooth analytic u* that vanishes on the boundary and a
// smooth positive variable coefficient β, then manufacture the right-hand
// side *discretely*: f = A_h u*.  The discrete solution of the system is
// then exactly u*, so solver convergence is measurable to machine
// precision — the standard manufactured-solution setup for multigrid
// verification (the paper's HPGMG driver does the analytic-f equivalent).

#include <cstdint>
#include <functional>
#include <string>

#include "grid/grid.hpp"

namespace snowflake::mg {

struct ProblemSpec {
  int rank = 3;
  std::int64_t n = 32;       // interior cells per dim (power of 2)
  bool variable_beta = true; // false = β ≡ 1 (constant-coefficient)
  double beta_min = 0.25;    // variable β oscillates in [1-a, 1+a] scaled
};

/// Analytic solution u*(x) = Π_d sin(π x_d); zero on the boundary.
double u_exact(const ProblemSpec& spec, const std::vector<double>& x);

/// Analytic coefficient β(x): 1 + beta_min·Π_d cos(2π x_d) (positive).
double beta(const ProblemSpec& spec, const std::vector<double>& x);

/// Physical coordinate of cell center i (ghost layer at i=0): (i-1/2)·h.
double cell_center(std::int64_t i, double h);

/// Fill a cell-centered grid of extents (n+2)^rank from an analytic
/// function of physical coordinates (ghost cells included).
void fill_cell_centered(Grid& grid, double h,
                        const std::function<double(const std::vector<double>&)>& fn);

/// Fill the face-centered coefficient grid for dimension `dim`:
/// beta_d[i] sits on the lower face of cell i in dim d (coordinate (i-1)·h
/// there, cell-centered elsewhere).
void fill_face_centered(Grid& grid, double h, int dim,
                        const std::function<double(const std::vector<double>&)>& fn);

}  // namespace snowflake::mg
