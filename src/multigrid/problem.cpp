#include "multigrid/problem.hpp"

#include <cmath>

#include "support/error.hpp"

namespace snowflake::mg {

double u_exact(const ProblemSpec& spec, const std::vector<double>& x) {
  double u = 1.0;
  for (int d = 0; d < spec.rank; ++d) {
    u *= std::sin(M_PI * x[static_cast<size_t>(d)]);
  }
  return u;
}

double beta(const ProblemSpec& spec, const std::vector<double>& x) {
  if (!spec.variable_beta) return 1.0;
  double b = 1.0;
  for (int d = 0; d < spec.rank; ++d) {
    b *= std::cos(2.0 * M_PI * x[static_cast<size_t>(d)]);
  }
  return 1.0 + spec.beta_min * b;  // in [1 - beta_min, 1 + beta_min], > 0
}

double cell_center(std::int64_t i, double h) {
  return (static_cast<double>(i) - 0.5) * h;
}

void fill_cell_centered(Grid& grid, double h,
                        const std::function<double(const std::vector<double>&)>& fn) {
  std::vector<double> x(static_cast<size_t>(grid.rank()));
  grid.fill_with([&](const Index& index) {
    for (size_t d = 0; d < index.size(); ++d) x[d] = cell_center(index[d], h);
    return fn(x);
  });
}

void fill_face_centered(Grid& grid, double h, int dim,
                        const std::function<double(const std::vector<double>&)>& fn) {
  SF_REQUIRE(dim >= 0 && dim < grid.rank(), "fill_face_centered dim out of range");
  std::vector<double> x(static_cast<size_t>(grid.rank()));
  grid.fill_with([&](const Index& index) {
    for (size_t d = 0; d < index.size(); ++d) {
      x[d] = static_cast<int>(d) == dim
                 ? (static_cast<double>(index[d]) - 1.0) * h  // lower face
                 : cell_center(index[d], h);
    }
    return fn(x);
  });
}

}  // namespace snowflake::mg
