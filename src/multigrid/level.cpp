#include "multigrid/level.hpp"

#include <cmath>

#include "ir/stencil_library.hpp"
#include "support/error.hpp"

namespace snowflake::mg {

Level::Level(const ProblemSpec& spec, std::int64_t n)
    : rank_(spec.rank), n_(n), h_(1.0 / static_cast<double>(n)) {
  SF_REQUIRE(rank_ >= 1 && rank_ <= 4, "Level supports ranks 1..4");
  SF_REQUIRE(n_ >= 2, "Level requires n >= 2");
  const Index shape = box_shape();
  grids_.add_zeros(kX, shape);
  grids_.add_zeros(kRhs, shape);
  grids_.add_zeros(kRes, shape);
  grids_.add_zeros(kLambda, shape);
  for (int d = 0; d < rank_; ++d) {
    Grid& beta_grid = grids_.add_zeros(lib::beta_name(kBetaPrefix, d), shape);
    fill_face_centered(beta_grid, h_, d,
                       [&](const std::vector<double>& x) { return beta(spec, x); });
  }
}

Index Level::box_shape() const {
  return Index(static_cast<size_t>(rank_), n_ + 2);
}

std::int64_t Level::dof() const {
  std::int64_t total = 1;
  for (int d = 0; d < rank_; ++d) total *= n_;
  return total;
}

double Level::interior_max_diff(const Grid& a, const Grid& b) {
  SF_REQUIRE(a.shape() == b.shape(), "interior_max_diff shape mismatch");
  double acc = 0.0;
  Index index(a.shape().size(), 1);
  const Index& shape = a.shape();
  // Odometer over interior 1..extent-1 per dim.
  while (true) {
    acc = std::max(acc, std::fabs(a.at(index) - b.at(index)));
    int d = static_cast<int>(index.size()) - 1;
    for (; d >= 0; --d) {
      if (++index[static_cast<size_t>(d)] < shape[static_cast<size_t>(d)] - 1) break;
      index[static_cast<size_t>(d)] = 1;
    }
    if (d < 0) break;
  }
  return acc;
}

}  // namespace snowflake::mg
