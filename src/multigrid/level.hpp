#pragma once
// One level of the multigrid hierarchy: geometry plus the named grids the
// Snowflake operators read and write.

#include <cstdint>

#include "grid/grid_set.hpp"
#include "multigrid/problem.hpp"

namespace snowflake::mg {

/// Grid names used by every level (see src/ir/stencil_library.hpp for the
/// operator definitions that consume them).
inline constexpr const char* kX = "x";            // solution / correction
inline constexpr const char* kRhs = "rhs";        // right-hand side
inline constexpr const char* kRes = "res";        // residual
inline constexpr const char* kLambda = "lambda_inv";  // 1/diag(A)
inline constexpr const char* kBetaPrefix = "beta";    // beta_x, beta_y, ...

class Level {
public:
  /// Allocate a level with n interior cells per dim; fills the face
  /// coefficient grids analytically at this level's spacing (equivalent to
  /// HPGMG's restriction of coefficients for smooth β).
  Level(const ProblemSpec& spec, std::int64_t n);

  int rank() const { return rank_; }
  std::int64_t n() const { return n_; }
  double h() const { return h_; }
  double h2inv() const { return 1.0 / (h_ * h_); }
  /// (n+2)^rank including the ghost layer.
  Index box_shape() const;
  /// Interior degrees of freedom: n^rank.
  std::int64_t dof() const;

  GridSet& grids() { return grids_; }
  const GridSet& grids() const { return grids_; }

  /// Max |a - b| over interior cells only (ghosts hold BC values).
  static double interior_max_diff(const Grid& a, const Grid& b);

private:
  int rank_;
  std::int64_t n_;
  double h_;
  GridSet grids_;
};

}  // namespace snowflake::mg
