#include "multigrid/solver.hpp"

#include <chrono>

#include "support/error.hpp"
#include "trace/trace.hpp"
#include "tune/tuner.hpp"

namespace snowflake::mg {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Span name "mg:<phase>:L<level>", built only when tracing is on so the
/// hot V-cycle path pays nothing otherwise.
std::string mg_span_name(const char* phase, size_t level) {
  if (!trace::enabled()) return {};
  return std::string("mg:") + phase + ":L" + std::to_string(level);
}
}  // namespace

Solver::Solver(Config config) : config_(std::move(config)) {
  const ProblemSpec& spec = config_.problem;
  SF_REQUIRE(spec.n >= config_.coarsest_n && config_.coarsest_n >= 2,
             "problem size must be >= coarsest_n >= 2");
  SF_REQUIRE((spec.n & (spec.n - 1)) == 0, "problem n must be a power of two");

  // Build the level hierarchy: n, n/2, ..., coarsest_n.
  for (std::int64_t n = spec.n; n >= config_.coarsest_n; n /= 2) {
    levels_.push_back(std::make_unique<Level>(spec, n));
    if (n % 2 != 0) break;
  }

  Backend& backend = Backend::get(config_.backend);
  const int rank = spec.rank;

  // Optional warm-started autotune: pick the smoother's schedule on the
  // finest level before any kernel compiles, then reuse it hierarchy-wide.
  // tune() snapshots and restores grid contents, so running it on the
  // freshly built levels is safe.
  if (config_.autotune && config_.smoother == Smoother::GSRB) {
    Level& finest = *levels_[0];
    const TuneResult tuned =
        Tuner().tune(gsrb_smooth_group(rank), finest.grids(),
                     {{"h2inv", finest.h2inv()}}, config_.backend,
                     default_tile_candidates(rank, finest.box_shape()),
                     /*warmup=*/1, /*reps=*/2);
    config_.options = tuned.best.options;
  }

  // Temporal blocking only pays off for the iterated smoother; every other
  // kernel runs once per cycle, so its compile options strip the depth
  // (a fused residual/restrict/interp would also change run() semantics).
  CompileOptions single = config_.options;
  single.time_tile = 1;

  // Per-level kernels.
  for (auto& level : levels_) {
    if (config_.smoother == Smoother::Chebyshev) {
      level->grids().add_zeros(kXPrev, level->box_shape());
      level->grids().add_zeros(kXNext, level->box_shape());
    }
    const ShapeMap shapes = shapes_of(level->grids());
    if (config_.smoother == Smoother::Chebyshev) {
      cheby_k_.push_back(
          backend.compile(chebyshev_step_group(rank), shapes, single));
    } else {
      smooth_k_.push_back(
          backend.compile(gsrb_smooth_group(rank), shapes, single));
      if (config_.options.time_tile >= 2) {
        // Fused sweep pairs (or deeper) for smooth_many(); a backend that
        // rejects or ignores the depth hands back a per-sweep kernel,
        // which we drop in favor of smooth_k_.
        auto fused = backend.compile(gsrb_smooth_group(rank), shapes,
                                     config_.options);
        smooth_fused_k_.push_back(fused->fused_sweeps() > 1 ? std::move(fused)
                                                            : nullptr);
      }
    }
    residual_k_.push_back(backend.compile(residual_group(rank), shapes, single));
    // lambda_inv = 1/diag(A): run once, right now.
    auto lambda_kernel =
        backend.compile(lambda_setup_group(rank), shapes, single);
    lambda_kernel->run(level->grids(), {{"h2inv", level->h2inv()}});
  }

  // Cross-level kernels and their aliased GridSets.
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    Level& fine = *levels_[l];
    Level& coarse = *levels_[l + 1];

    GridSet down;
    down.add_shared(kFineRes, fine.grids().share(kRes));
    down.add_shared(kCoarseRhs, coarse.grids().share(kRhs));
    restrict_k_.push_back(
        backend.compile(restriction_group(rank), shapes_of(down), single));
    restrict_sets_.push_back(std::move(down));

    GridSet up;
    up.add_shared(kCoarseX, coarse.grids().share(kX));
    up.add_shared(kFineX, fine.grids().share(kX));
    interp_k_.push_back(
        backend.compile(interpolation_add_group(rank), shapes_of(up), single));
    // PL prolongation also needs the coarse betas?  No — only coarse_x
    // ghosts, which its leading boundary stencils maintain.
    interp_pl_k_.push_back(backend.compile(
        interpolation_pl_group(rank, /*add=*/false), shapes_of(up), single));
    interp_sets_.push_back(std::move(up));
  }

  // Manufactured problem on the finest level: x = u*, rhs = A x, x = 0.
  Level& finest = *levels_[0];
  exact_ = Grid(finest.box_shape());
  fill_cell_centered(exact_, finest.h(), [&](const std::vector<double>& x) {
    return u_exact(spec, x);
  });
  finest.grids().at(kX) = exact_;
  auto rhs_kernel = backend.compile(rhs_manufacture_group(rank),
                                    shapes_of(finest.grids()), single);
  rhs_kernel->run(finest.grids(), {{"h2inv", finest.h2inv()}});
  finest.grids().at(kX).fill(0.0);
}

void Solver::run_kernel(CompiledKernel& kernel, GridSet& grids, double h2inv) {
  kernel.run(grids, {{"h2inv", h2inv}});
  modeled_seconds_ += kernel.modeled_seconds();
}

void Solver::smooth(size_t l) {
  trace::Span span(mg_span_name("smooth", l), "mg");
  if (config_.smoother == Smoother::Chebyshev) {
    chebyshev_smooth(l);
    return;
  }
  run_kernel(*smooth_k_.at(l), levels_.at(l)->grids(), levels_[l]->h2inv());
}

void Solver::smooth_many(size_t l, int count) {
  if (config_.smoother == Smoother::GSRB && l < smooth_fused_k_.size() &&
      smooth_fused_k_[l]) {
    CompiledKernel& fused = *smooth_fused_k_[l];
    const int depth = fused.fused_sweeps();
    while (count >= depth) {
      trace::Span span(mg_span_name("smooth_fused", l), "mg");
      run_kernel(fused, levels_.at(l)->grids(), levels_[l]->h2inv());
      count -= depth;
    }
  }
  for (; count > 0; --count) smooth(l);
}

void Solver::chebyshev_smooth(size_t l) {
  // Smoother mode: target the upper part of the D^-1 A spectrum (the
  // high-frequency error multigrid relies on the smoother to remove);
  // [0.5, 2.0] covers it for the diagonally-scaled VC operator.
  constexpr double a = 0.5, b = 2.0;
  constexpr double theta = 0.5 * (b + a), delta = 0.5 * (b - a);
  constexpr double sigma = theta / delta;
  double rho_prev = 1.0 / sigma;
  GridSet& grids = levels_.at(l)->grids();
  CompiledKernel& kernel = *cheby_k_.at(l);
  for (int k = 0; k < config_.cheby_degree; ++k) {
    double alpha, beta_coef;
    if (k == 0) {
      alpha = 1.0 / theta;
      beta_coef = 0.0;
    } else {
      const double rho = 1.0 / (2.0 * sigma - rho_prev);
      alpha = 2.0 * rho / delta;
      beta_coef = rho * rho_prev;
      rho_prev = rho;
    }
    kernel.run(grids, {{"h2inv", levels_[l]->h2inv()},
                       {"cheby_alpha", alpha},
                       {"cheby_beta", beta_coef}});
    modeled_seconds_ += kernel.modeled_seconds();
    std::swap(grids.at(kXPrev), grids.at(kX));
    std::swap(grids.at(kX), grids.at(kXNext));
  }
}

void Solver::residual(size_t l) {
  trace::Span span(mg_span_name("residual", l), "mg");
  run_kernel(*residual_k_.at(l), levels_.at(l)->grids(), levels_[l]->h2inv());
}

void Solver::restrict_residual(size_t l) {
  trace::Span span(mg_span_name("restrict", l), "mg");
  CompiledKernel& k = *restrict_k_.at(l);
  k.run(restrict_sets_.at(l), {});
  modeled_seconds_ += k.modeled_seconds();
}

void Solver::prolongate_add(size_t l) {
  trace::Span span(mg_span_name("interp", l), "mg");
  CompiledKernel& k = *interp_k_.at(l);
  k.run(interp_sets_.at(l), {});
  modeled_seconds_ += k.modeled_seconds();
}

void Solver::prolongate_linear(size_t l, bool add) {
  trace::Span span(mg_span_name("interp", l), "mg");
  SF_REQUIRE(!add, "additive PL prolongation kernel is compiled without add");
  CompiledKernel& k = *interp_pl_k_.at(l);
  k.run(interp_sets_.at(l), {});
  modeled_seconds_ += k.modeled_seconds();
}

void Solver::vcycle(size_t l) {
  trace::Span span(mg_span_name("vcycle", l), "mg");
  if (l + 1 == levels_.size()) {
    smooth_many(l, config_.bottom_smooth);
    return;
  }
  smooth_many(l, config_.pre_smooth);
  residual(l);
  restrict_residual(l);
  levels_[l + 1]->grids().at(kX).fill(0.0);
  for (int g = 0; g < config_.cycle_gamma; ++g) {
    vcycle(l + 1);  // gamma = 2 gives the W-cycle
  }
  prolongate_add(l);
  smooth_many(l, config_.post_smooth);
}

void Solver::fcycle() {
  trace::Span span("mg:fcycle", "mg");
  // Restrict the fine rhs all the way down by computing residuals of the
  // zero solution (res == rhs when x == 0), then FMG upward.
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    levels_[l]->grids().at(kX).fill(0.0);
    residual(l);
    restrict_residual(l);
  }
  levels_.back()->grids().at(kX).fill(0.0);
  smooth_many(levels_.size() - 1, config_.bottom_smooth);
  for (size_t l = levels_.size() - 1; l-- > 0;) {
    prolongate_linear(l, /*add=*/false);
    vcycle(l);
  }
}

double Solver::residual_norm() {
  residual(0);
  return levels_[0]->grids().at(kRes).norm_max();
}

double Solver::error_vs_exact() {
  return Level::interior_max_diff(levels_[0]->grids().at(kX), exact_);
}

SolveStats Solver::solve(int cycles, int warmup) {
  trace::Span span("mg:solve", "mg");
  span.counter("cycles", static_cast<double>(cycles));
  SF_REQUIRE(cycles >= 1, "solve needs >= 1 cycle");
  SolveStats stats;
  stats.dof = levels_[0]->dof();
  stats.cycles = cycles;

  // Convergence run from a zero initial guess.
  levels_[0]->grids().at(kX).fill(0.0);
  for (int c = 0; c < cycles; ++c) {
    vcycle(0);
    stats.residual_norms.push_back(residual_norm());
  }
  stats.error_max = error_vs_exact();

  // Timed run (paper: untimed warm-up phase, then the benchmark phase).
  for (int c = 0; c < warmup; ++c) vcycle(0);
  take_modeled_seconds();
  const double start = now_seconds();
  for (int c = 0; c < cycles; ++c) vcycle(0);
  stats.seconds = now_seconds() - start;
  stats.modeled_seconds = take_modeled_seconds();
  stats.dof_per_second =
      static_cast<double>(stats.dof) * cycles / stats.seconds;
  return stats;
}

int Solver::solve_to_tolerance(double rtol, int max_cycles) {
  SF_REQUIRE(rtol > 0.0 && rtol < 1.0, "rtol must be in (0, 1)");
  levels_[0]->grids().at(kX).fill(0.0);
  const double r0 = residual_norm();
  for (int c = 1; c <= max_cycles; ++c) {
    vcycle(0);
    if (residual_norm() <= rtol * r0) return c;
  }
  return max_cycles + 1;
}

double Solver::take_modeled_seconds() {
  const double v = modeled_seconds_;
  modeled_seconds_ = 0.0;
  return v;
}

}  // namespace snowflake::mg
