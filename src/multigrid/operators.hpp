#pragma once
// The HPGMG operator set expressed as Snowflake StencilGroups (paper §V:
// "we build a complete geometric multigrid solver using Snowflake
// representations for the smoother, residual, restriction, interpolation,
// and boundary condition stencils").
//
// All groups apply the interspersed Dirichlet boundary stencils the paper
// describes (boundary / red / boundary / black).  Cross-level operators use
// the grid names kFineRes/kCoarseRhs and kCoarseX/kFineX, bound by the
// solver into aliased GridSets.

#include "ir/stencil.hpp"
#include "multigrid/level.hpp"

namespace snowflake::mg {

inline constexpr const char* kFineRes = "fine_res";
inline constexpr const char* kCoarseRhs = "coarse_rhs";
inline constexpr const char* kCoarseX = "coarse_x";
inline constexpr const char* kFineX = "fine_x";

inline constexpr const char* kXPrev = "x_prev";
inline constexpr const char* kXNext = "x_next";

/// One full GSRB smooth: [boundary, red half-sweep, boundary, black
/// half-sweep] (params: h2inv).
StencilGroup gsrb_smooth_group(int rank);

/// One Chebyshev step: [boundary, x_next = x + β(x−x_prev) + αλ(rhs−Ax)]
/// (params: h2inv, cheby_alpha, cheby_beta).  The solver drives the
/// recurrence and grid rotation.
StencilGroup chebyshev_step_group(int rank);

/// res = rhs - A x with a fresh boundary application first.
StencilGroup residual_group(int rank);

/// lambda_inv = 1 / diag(A) (run once per level at setup).
StencilGroup lambda_setup_group(int rank);

/// rhs = A x with boundary applied first (manufactured right-hand side).
StencilGroup rhs_manufacture_group(int rank);

/// Full-weighting restriction of the fine residual into the coarse rhs.
StencilGroup restriction_group(int rank);

/// Piecewise-constant prolongation: fine_x += P(coarse_x).
StencilGroup interpolation_add_group(int rank);

/// Piecewise-linear prolongation (F-cycle initialization); requires coarse
/// boundary ghosts to be valid, so it starts with a boundary application
/// on coarse_x.
StencilGroup interpolation_pl_group(int rank, bool add);

}  // namespace snowflake::mg
