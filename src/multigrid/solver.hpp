#pragma once
// Geometric multigrid solver built entirely from Snowflake stencils — the
// C++ analogue of the paper's Python/Snowflake HPGMG port (§V).
//
// V-cycle with GSRB pre/post smoothing, full-weighting restriction,
// piecewise-constant prolongation, and a smoother-iteration bottom solve;
// plus an F-cycle (full multigrid) using piecewise-linear prolongation to
// seed each finer level.  Every stencil kernel is compiled by a pluggable
// backend, so the same solver runs through the interpreter, the sequential
// C JIT, OpenMP, or the simulated OpenCL device.

#include <memory>
#include <vector>

#include "backend/backend.hpp"
#include "multigrid/level.hpp"
#include "multigrid/operators.hpp"

namespace snowflake::mg {

struct SolveStats {
  std::int64_t dof = 0;
  int cycles = 0;
  double seconds = 0.0;           // wall-clock of the timed cycles
  double dof_per_second = 0.0;    // dof * cycles / seconds (paper Fig. 9)
  double modeled_seconds = 0.0;   // simulated-device time (oclsim only)
  std::vector<double> residual_norms;  // max-norm after each convergence cycle
  double error_max = 0.0;         // |x - u*|_inf after the convergence run
};

class Solver {
public:
  enum class Smoother { GSRB, Chebyshev };

  struct Config {
    ProblemSpec problem;
    std::string backend = "openmp";
    CompileOptions options;
    int pre_smooth = 2;    // smooths before coarsening (paper: 2)
    int post_smooth = 2;   // after prolongation (paper: 2)
    int bottom_smooth = 24;
    std::int64_t coarsest_n = 2;
    /// 1 = V-cycle (paper's configuration), 2 = W-cycle.
    int cycle_gamma = 1;
    Smoother smoother = Smoother::GSRB;
    /// Chebyshev polynomial degree per smooth() call.
    int cheby_degree = 4;
    /// Autotune `options` before compiling any kernel: sweep
    /// default_tile_candidates(rank, finest box) on the finest level's
    /// GSRB smoother and adopt the winner for the whole hierarchy.  With
    /// $SNOWFLAKE_TUNE_DB set this is warm-started — a store hit returns
    /// the remembered best with zero candidate compiles (tuner.hpp).
    /// GSRB only; ignored for the Chebyshev smoother.
    bool autotune = false;
  };

  explicit Solver(Config config);

  size_t num_levels() const { return levels_.size(); }
  Level& level(size_t i) { return *levels_.at(i); }
  const Config& config() const { return config_; }

  /// One GSRB smooth (boundary/red/boundary/black) on level l.
  void smooth(size_t l);
  /// `count` consecutive smooths on level l.  When the backend compiled a
  /// time-tiled smoother (Config::options.time_tile >= 2), runs
  /// floor(count / depth) fused kernels first and finishes the remainder
  /// with single smooths — same sequential semantics, fewer DRAM passes.
  void smooth_many(size_t l, int count);
  /// res = rhs - A x on level l (boundary applied first).
  void residual(size_t l);
  /// Restrict level l's residual into level l+1's rhs.
  void restrict_residual(size_t l);
  /// fine x_l += P(coarse x_{l+1}) (piecewise constant).
  void prolongate_add(size_t l);
  /// fine x_l (+)= P_linear(coarse x_{l+1}).
  void prolongate_linear(size_t l, bool add);

  /// One V-cycle from level l down.
  void vcycle(size_t l = 0);
  /// Full multigrid: coarsest-first with linear prolongation, one V-cycle
  /// per level on the way up.
  void fcycle();

  /// Max-norm of the current finest-level residual.
  double residual_norm();
  /// Max-norm error |x - u*| over the finest interior.
  double error_vs_exact();

  /// Convergence run (x reset to 0, per-cycle residuals recorded), then a
  /// timed run of `cycles` V-cycles after `warmup` untimed ones.
  SolveStats solve(int cycles = 10, int warmup = 1);

  /// Cycle from a zero guess until ||r|| <= rtol * ||r0|| or max_cycles;
  /// returns the number of cycles used (max_cycles + 1 when not reached).
  int solve_to_tolerance(double rtol, int max_cycles = 50);

  /// Modeled device seconds accumulated since the last reset (oclsim).
  double take_modeled_seconds();

private:
  void run_kernel(CompiledKernel& kernel, GridSet& grids, double h2inv);

  void chebyshev_smooth(size_t l);

  Config config_;
  std::vector<std::unique_ptr<Level>> levels_;
  std::vector<std::unique_ptr<CompiledKernel>> smooth_k_;
  /// Time-tiled GSRB smoothers (one run = options.time_tile smooths);
  /// empty when time tiling is off or the backend fell back.
  std::vector<std::unique_ptr<CompiledKernel>> smooth_fused_k_;
  std::vector<std::unique_ptr<CompiledKernel>> cheby_k_;
  std::vector<std::unique_ptr<CompiledKernel>> residual_k_;
  std::vector<std::unique_ptr<CompiledKernel>> restrict_k_;
  std::vector<std::unique_ptr<CompiledKernel>> interp_k_;
  std::vector<std::unique_ptr<CompiledKernel>> interp_pl_k_;
  std::vector<GridSet> restrict_sets_;   // level l res -> level l+1 rhs
  std::vector<GridSet> interp_sets_;     // level l+1 x -> level l x
  Grid exact_;                            // u* on the finest level
  double modeled_seconds_ = 0.0;
};

}  // namespace snowflake::mg
