#include "multigrid/operators.hpp"

#include "ir/stencil_library.hpp"

namespace snowflake::mg {

using namespace snowflake::lib;

StencilGroup gsrb_smooth_group(int rank) {
  StencilGroup group;
  group.append(dirichlet_boundary(rank, kX));
  group.append(vc_gsrb_sweep(rank, kX, kRhs, kLambda, kBetaPrefix, 0));
  group.append(dirichlet_boundary(rank, kX));
  group.append(vc_gsrb_sweep(rank, kX, kRhs, kLambda, kBetaPrefix, 1));
  return group;
}

StencilGroup chebyshev_step_group(int rank) {
  StencilGroup group;
  group.append(dirichlet_boundary(rank, kX));
  group.append(vc_chebyshev_step(rank, kX, kXPrev, kRhs, kLambda, kXNext,
                                 kBetaPrefix));
  return group;
}

StencilGroup residual_group(int rank) {
  StencilGroup group;
  group.append(dirichlet_boundary(rank, kX));
  group.append(vc_residual(rank, kX, kRhs, kRes, kBetaPrefix));
  return group;
}

StencilGroup lambda_setup_group(int rank) {
  return StencilGroup(vc_lambda_setup(rank, kLambda, kBetaPrefix));
}

StencilGroup rhs_manufacture_group(int rank) {
  StencilGroup group;
  group.append(dirichlet_boundary(rank, kX));
  group.append(vc_apply(rank, kX, kRhs, kBetaPrefix));
  return group;
}

StencilGroup restriction_group(int rank) {
  return StencilGroup(restriction_fw(rank, kFineRes, kCoarseRhs));
}

StencilGroup interpolation_add_group(int rank) {
  return interpolation_pc(rank, kCoarseX, kFineX, /*add=*/true);
}

StencilGroup interpolation_pl_group(int rank, bool add) {
  StencilGroup group;
  group.append(dirichlet_boundary(rank, kCoarseX));
  group.append(interpolation_pl(rank, kCoarseX, kFineX, add));
  return group;
}

}  // namespace snowflake::mg
