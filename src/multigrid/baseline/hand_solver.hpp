#pragma once
// Hand-written geometric multigrid solver (3D): the end-to-end comparator
// for the paper's Figure 9, playing the role of the hand-optimized HPGMG
// reference.  Mirrors the Snowflake Solver's algorithm exactly — same
// levels, same smoother counts, same manufactured problem — but every
// kernel is the expert-written loop nest from hand_kernels.hpp.

#include <memory>
#include <vector>

#include "multigrid/solver.hpp"

namespace snowflake::mg {

class HandSolver {
public:
  struct Config {
    ProblemSpec problem;  // rank must be 3
    int pre_smooth = 2;
    int post_smooth = 2;
    int bottom_smooth = 24;
    std::int64_t coarsest_n = 2;
  };

  explicit HandSolver(Config config);

  size_t num_levels() const { return levels_.size(); }
  Level& level(size_t i) { return *levels_.at(i); }

  void smooth(size_t l);
  void residual(size_t l);
  void restrict_residual(size_t l);
  void prolongate_add(size_t l);
  void vcycle(size_t l = 0);

  double residual_norm();
  double error_vs_exact();

  /// Same protocol as Solver::solve.
  SolveStats solve(int cycles = 10, int warmup = 1);

private:
  Config config_;
  std::vector<std::unique_ptr<Level>> levels_;
  Grid exact_;
};

}  // namespace snowflake::mg
