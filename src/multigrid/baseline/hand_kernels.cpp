#include "multigrid/baseline/hand_kernels.hpp"

namespace snowflake::mg::hand {

namespace {
inline std::int64_t idx(std::int64_t i, std::int64_t j, std::int64_t k,
                        std::int64_t s) {
  return (i * s + j) * s + k;
}
}  // namespace

void apply_bc_3d(double* x, std::int64_t n) {
  const std::int64_t s = n + 2;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t j = 1; j <= n; ++j) {
    for (std::int64_t k = 1; k <= n; ++k) {
      x[idx(0, j, k, s)] = -x[idx(1, j, k, s)];
      x[idx(n + 1, j, k, s)] = -x[idx(n, j, k, s)];
    }
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t k = 1; k <= n; ++k) {
      x[idx(i, 0, k, s)] = -x[idx(i, 1, k, s)];
      x[idx(i, n + 1, k, s)] = -x[idx(i, n, k, s)];
    }
  }
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      x[idx(i, j, 0, s)] = -x[idx(i, j, 1, s)];
      x[idx(i, j, n + 1, s)] = -x[idx(i, j, n, s)];
    }
  }
}

void gsrb_sweep_3d(double* x, const double* rhs, const double* lam,
                   const double* bx, const double* by, const double* bz,
                   std::int64_t n, double h2inv, int color) {
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      const std::int64_t k0 = 1 + ((i + j + 1 + color) & 1);
      double* __restrict__ xr = x;
      for (std::int64_t k = k0; k <= n; k += 2) {
        const std::int64_t c = row + k;
        const double x0 = xr[c];
        const double ax =
            h2inv * (bx[c + plane] * (x0 - xr[c + plane]) +
                     bx[c] * (x0 - xr[c - plane]) +
                     by[c + s] * (x0 - xr[c + s]) + by[c] * (x0 - xr[c - s]) +
                     bz[c + 1] * (x0 - xr[c + 1]) + bz[c] * (x0 - xr[c - 1]));
        xr[c] = x0 + lam[c] * (rhs[c] - ax);
      }
    }
  }
}

void gsrb_smooth_3d(double* x, const double* rhs, const double* lam,
                    const double* bx, const double* by, const double* bz,
                    std::int64_t n, double h2inv) {
  apply_bc_3d(x, n);
  gsrb_sweep_3d(x, rhs, lam, bx, by, bz, n, h2inv, 0);
  apply_bc_3d(x, n);
  gsrb_sweep_3d(x, rhs, lam, bx, by, bz, n, h2inv, 1);
}

void vc_apply_3d(double* out, const double* x, const double* bx,
                 const double* by, const double* bz, std::int64_t n,
                 double h2inv) {
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      for (std::int64_t k = 1; k <= n; ++k) {
        const std::int64_t c = row + k;
        const double x0 = x[c];
        out[c] =
            h2inv * (bx[c + plane] * (x0 - x[c + plane]) +
                     bx[c] * (x0 - x[c - plane]) +
                     by[c + s] * (x0 - x[c + s]) + by[c] * (x0 - x[c - s]) +
                     bz[c + 1] * (x0 - x[c + 1]) + bz[c] * (x0 - x[c - 1]));
      }
    }
  }
}

void residual_3d(double* res, double* x, const double* rhs, const double* bx,
                 const double* by, const double* bz, std::int64_t n,
                 double h2inv) {
  apply_bc_3d(x, n);
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      for (std::int64_t k = 1; k <= n; ++k) {
        const std::int64_t c = row + k;
        const double x0 = x[c];
        const double ax =
            h2inv * (bx[c + plane] * (x0 - x[c + plane]) +
                     bx[c] * (x0 - x[c - plane]) +
                     by[c + s] * (x0 - x[c + s]) + by[c] * (x0 - x[c - s]) +
                     bz[c + 1] * (x0 - x[c + 1]) + bz[c] * (x0 - x[c - 1]));
        res[c] = rhs[c] - ax;
      }
    }
  }
}

void lambda_setup_3d(double* lam, const double* bx, const double* by,
                     const double* bz, std::int64_t n, double h2inv) {
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      for (std::int64_t k = 1; k <= n; ++k) {
        const std::int64_t c = row + k;
        lam[c] = 1.0 / (h2inv * (bx[c + plane] + bx[c] + by[c + s] + by[c] +
                                 bz[c + 1] + bz[c]));
      }
    }
  }
}

void restrict_fw_3d(double* coarse, const double* fine, std::int64_t nc) {
  const std::int64_t sc = nc + 2;
  const std::int64_t nf = 2 * nc;
  const std::int64_t sf = nf + 2;
  const std::int64_t planef = sf * sf;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= nc; ++i) {
    for (std::int64_t j = 1; j <= nc; ++j) {
      for (std::int64_t k = 1; k <= nc; ++k) {
        const std::int64_t f = idx(2 * i - 1, 2 * j - 1, 2 * k - 1, sf);
        coarse[idx(i, j, k, sc)] =
            0.125 * (fine[f] + fine[f + 1] + fine[f + sf] + fine[f + sf + 1] +
                     fine[f + planef] + fine[f + planef + 1] +
                     fine[f + planef + sf] + fine[f + planef + sf + 1]);
      }
    }
  }
}

void interp_pc_add_3d(double* fine, const double* coarse, std::int64_t nc) {
  const std::int64_t sc = nc + 2;
  const std::int64_t nf = 2 * nc;
  const std::int64_t sf = nf + 2;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= nf; ++i) {
    for (std::int64_t j = 1; j <= nf; ++j) {
      const std::int64_t ci = (i + (i & 1)) >> 1;
      const std::int64_t cj = (j + (j & 1)) >> 1;
      for (std::int64_t k = 1; k <= nf; ++k) {
        const std::int64_t ck = (k + (k & 1)) >> 1;
        fine[idx(i, j, k, sf)] += coarse[idx(ci, cj, ck, sc)];
      }
    }
  }
}

void cc_apply_3d(double* out, const double* x, std::int64_t n, double h2inv) {
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      for (std::int64_t k = 1; k <= n; ++k) {
        const std::int64_t c = row + k;
        out[c] = h2inv * (6.0 * x[c] - x[c + plane] - x[c - plane] -
                          x[c + s] - x[c - s] - x[c + 1] - x[c - 1]);
      }
    }
  }
}

void cc_jacobi_3d(double* out, const double* x, const double* rhs,
                  const double* dinv, std::int64_t n, double h2inv,
                  double weight) {
  const std::int64_t s = n + 2;
  const std::int64_t plane = s * s;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t i = 1; i <= n; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int64_t row = (i * s + j) * s;
      for (std::int64_t k = 1; k <= n; ++k) {
        const std::int64_t c = row + k;
        const double ax = h2inv * (6.0 * x[c] - x[c + plane] - x[c - plane] -
                                   x[c + s] - x[c - s] - x[c + 1] - x[c - 1]);
        out[c] = x[c] + weight * dinv[c] * (rhs[c] - ax);
      }
    }
  }
}

}  // namespace snowflake::mg::hand
