#pragma once
// Hand-optimized 3D kernels: the "expert-written HPGMG" comparator for
// every benchmark figure (the paper compares Snowflake-generated code
// against the hand-tuned HPGMG reference).  Written the way the HPGMG
// reference writes them: flat indexing, restrict pointers, OpenMP
// worksharing with collapse, GSRB via a parity-offset innermost loop.
//
// All kernels operate on (n+2)^3 boxes with one ghost layer; the interior
// is 1..n in every dimension.

#include <cstdint>

namespace snowflake::mg::hand {

/// Linear Dirichlet ghost update on all six faces: ghost = -inward.
void apply_bc_3d(double* x, std::int64_t n);

/// One GSRB half-sweep over the given color ((i+j+k) % 2 == color),
/// in place: x += lambda * (rhs - A_vc x).
void gsrb_sweep_3d(double* x, const double* rhs, const double* lam,
                   const double* bx, const double* by, const double* bz,
                   std::int64_t n, double h2inv, int color);

/// Full smooth: boundary, red, boundary, black.
void gsrb_smooth_3d(double* x, const double* rhs, const double* lam,
                    const double* bx, const double* by, const double* bz,
                    std::int64_t n, double h2inv);

/// res = rhs - A_vc x (boundary applied first).
void residual_3d(double* res, double* x, const double* rhs, const double* bx,
                 const double* by, const double* bz, std::int64_t n,
                 double h2inv);

/// out = A_vc x over the interior (no boundary application).
void vc_apply_3d(double* out, const double* x, const double* bx,
                 const double* by, const double* bz, std::int64_t n,
                 double h2inv);

/// lambda = 1 / diag(A_vc).
void lambda_setup_3d(double* lam, const double* bx, const double* by,
                     const double* bz, std::int64_t n, double h2inv);

/// Full-weighting restriction: coarse (nc interior) from fine (2*nc).
void restrict_fw_3d(double* coarse, const double* fine, std::int64_t nc);

/// Piecewise-constant prolongation, additive: fine += P(coarse).
void interp_pc_add_3d(double* fine, const double* coarse, std::int64_t nc);

/// out = A_cc x (constant-coefficient 7-point operator).
void cc_apply_3d(double* out, const double* x, std::int64_t n, double h2inv);

/// Weighted Jacobi: out = x + weight * dinv * (rhs - A_cc x).
void cc_jacobi_3d(double* out, const double* x, const double* rhs,
                  const double* dinv, std::int64_t n, double h2inv,
                  double weight);

}  // namespace snowflake::mg::hand
