#include "multigrid/baseline/hand_solver.hpp"

#include <chrono>

#include "ir/stencil_library.hpp"
#include "multigrid/baseline/hand_kernels.hpp"
#include "support/error.hpp"

namespace snowflake::mg {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LevelPtrs {
  double* x;
  double* rhs;
  double* res;
  double* lam;
  const double* bx;
  const double* by;
  const double* bz;
};

LevelPtrs ptrs(Level& level) {
  GridSet& g = level.grids();
  return LevelPtrs{g.at(kX).data(),
                   g.at(kRhs).data(),
                   g.at(kRes).data(),
                   g.at(kLambda).data(),
                   g.at(lib::beta_name(kBetaPrefix, 0)).data(),
                   g.at(lib::beta_name(kBetaPrefix, 1)).data(),
                   g.at(lib::beta_name(kBetaPrefix, 2)).data()};
}
}  // namespace

HandSolver::HandSolver(Config config) : config_(std::move(config)) {
  const ProblemSpec& spec = config_.problem;
  SF_REQUIRE(spec.rank == 3, "HandSolver implements the 3D (HPGMG) case");
  SF_REQUIRE(spec.n >= config_.coarsest_n && config_.coarsest_n >= 2,
             "problem size must be >= coarsest_n >= 2");
  SF_REQUIRE((spec.n & (spec.n - 1)) == 0, "problem n must be a power of two");

  for (std::int64_t n = spec.n; n >= config_.coarsest_n; n /= 2) {
    levels_.push_back(std::make_unique<Level>(spec, n));
    if (n % 2 != 0) break;
  }
  for (auto& level : levels_) {
    LevelPtrs p = ptrs(*level);
    hand::lambda_setup_3d(p.lam, p.bx, p.by, p.bz, level->n(), level->h2inv());
  }

  Level& finest = *levels_[0];
  exact_ = Grid(finest.box_shape());
  fill_cell_centered(exact_, finest.h(), [&](const std::vector<double>& x) {
    return u_exact(spec, x);
  });
  finest.grids().at(kX) = exact_;
  LevelPtrs p = ptrs(finest);
  hand::apply_bc_3d(p.x, finest.n());
  hand::vc_apply_3d(p.rhs, p.x, p.bx, p.by, p.bz, finest.n(), finest.h2inv());
  finest.grids().at(kX).fill(0.0);
}

void HandSolver::smooth(size_t l) {
  Level& level = *levels_.at(l);
  LevelPtrs p = ptrs(level);
  hand::gsrb_smooth_3d(p.x, p.rhs, p.lam, p.bx, p.by, p.bz, level.n(),
                       level.h2inv());
}

void HandSolver::residual(size_t l) {
  Level& level = *levels_.at(l);
  LevelPtrs p = ptrs(level);
  hand::residual_3d(p.res, p.x, p.rhs, p.bx, p.by, p.bz, level.n(),
                    level.h2inv());
}

void HandSolver::restrict_residual(size_t l) {
  Level& fine = *levels_.at(l);
  Level& coarse = *levels_.at(l + 1);
  hand::restrict_fw_3d(coarse.grids().at(kRhs).data(),
                       fine.grids().at(kRes).data(), coarse.n());
}

void HandSolver::prolongate_add(size_t l) {
  Level& fine = *levels_.at(l);
  Level& coarse = *levels_.at(l + 1);
  hand::interp_pc_add_3d(fine.grids().at(kX).data(),
                         coarse.grids().at(kX).data(), coarse.n());
}

void HandSolver::vcycle(size_t l) {
  if (l + 1 == levels_.size()) {
    for (int i = 0; i < config_.bottom_smooth; ++i) smooth(l);
    return;
  }
  for (int i = 0; i < config_.pre_smooth; ++i) smooth(l);
  residual(l);
  restrict_residual(l);
  levels_[l + 1]->grids().at(kX).fill(0.0);
  vcycle(l + 1);
  prolongate_add(l);
  for (int i = 0; i < config_.post_smooth; ++i) smooth(l);
}

double HandSolver::residual_norm() {
  residual(0);
  return levels_[0]->grids().at(kRes).norm_max();
}

double HandSolver::error_vs_exact() {
  return Level::interior_max_diff(levels_[0]->grids().at(kX), exact_);
}

SolveStats HandSolver::solve(int cycles, int warmup) {
  SF_REQUIRE(cycles >= 1, "solve needs >= 1 cycle");
  SolveStats stats;
  stats.dof = levels_[0]->dof();
  stats.cycles = cycles;

  levels_[0]->grids().at(kX).fill(0.0);
  for (int c = 0; c < cycles; ++c) {
    vcycle(0);
    stats.residual_norms.push_back(residual_norm());
  }
  stats.error_max = error_vs_exact();

  for (int c = 0; c < warmup; ++c) vcycle(0);
  const double start = now_seconds();
  for (int c = 0; c < cycles; ++c) vcycle(0);
  stats.seconds = now_seconds() - start;
  stats.dof_per_second =
      static_cast<double>(stats.dof) * cycles / stats.seconds;
  return stats;
}

}  // namespace snowflake::mg
