#include "report/report.hpp"

#include <sstream>

#include "analysis/dag.hpp"
#include "analysis/interval.hpp"
#include "backend/jit/jit_backend.hpp"
#include "codegen/transform/addr.hpp"
#include "roofline/traffic.hpp"
#include "trace/counters.hpp"
#include "trace/profile.hpp"

namespace snowflake {

std::string dependence_matrix(const StencilGroup& group, const ShapeMap& shapes) {
  std::ostringstream os;
  const size_t n = group.size();
  os << "     ";
  for (size_t j = 0; j < n; ++j) os << j % 10;
  os << "\n";
  for (size_t i = 0; i < n; ++i) {
    os << (i < 10 ? " " : "") << i << " [ ";
    for (size_t j = 0; j < n; ++j) {
      if (j <= i) {
        os << " ";
        continue;
      }
      const bool exact = stencils_dependent(group[i], group[j], shapes);
      const bool coarse = stencils_dependent_interval(group[i], group[j], shapes);
      os << (exact ? 'D' : (coarse ? 'd' : '.'));
    }
    os << " ] " << group[i].name() << "\n";
  }
  os << "(D = dependent; d = interval-analysis false positive; . = proven "
        "independent)\n";
  return os.str();
}

std::string explain_group(const StencilGroup& group, const ShapeMap& shapes,
                          const ReportOptions& options) {
  validate_group(group, shapes);
  std::ostringstream os;

  if (options.show_ir) {
    os << "== Stencils ==\n";
    for (size_t i = 0; i < group.size(); ++i) {
      os << "  [" << i << "] " << group[i].to_string() << "\n";
      const ResolvedUnion dom = resolved_domain(group[i], shapes);
      os << "      resolved: " << dom.to_string() << " ("
         << dom.count_with_multiplicity() << " points)\n";
    }
    os << "\n";
  }

  if (options.show_analysis) {
    os << "== Dependence analysis ==\n" << dependence_matrix(group, shapes);
    const Schedule exact = greedy_schedule(group, shapes);
    os << "greedy waves: " << exact.waves.size() << " [";
    for (size_t w = 0; w < exact.waves.size(); ++w) {
      if (w) os << " |";
      for (size_t s : exact.waves[w].stencils) os << " " << s;
    }
    os << " ]\n";
    for (size_t i = 0; i < group.size(); ++i) {
      os << "  [" << i << "] point-parallel=" << (exact.point_parallel[i] ? "yes" : "NO")
         << " rects-independent=" << (exact.rects_independent[i] ? "yes" : "NO")
         << "\n";
    }
    if (options.compare_interval) {
      const Schedule coarse = greedy_schedule_interval(group, shapes);
      size_t lost = 0;
      for (size_t i = 0; i < group.size(); ++i) {
        if (exact.point_parallel[i] && !coarse.point_parallel[i]) ++lost;
      }
      os << "interval analysis would use " << coarse.waves.size()
         << " waves and lose the parallelism proof on " << lost << "/"
         << group.size() << " stencils\n";
    }
    os << "\n";
  }

  const KernelPlan plan = build_plan(group, shapes, options.compile);

  if (options.show_plan) {
    os << "== Lowered plan ==\n" << plan.describe() << "\n";
    if (options.compile.addr_opt) {
      const AddrPlan addr = plan_addresses(plan);
      os << "== Address plan ==\n" << addr.describe(plan) << "\n";
    }
  }

  if (options.show_traffic) {
    os << "== Traffic / flop estimates (per run) ==\n";
    double total_bytes = 0.0, total_flops = 0.0;
    for (const auto& nest : plan.nests) {
      const double bytes = nest_traffic_bytes(plan, nest);
      const double flops = nest_flops(plan, nest);
      total_bytes += bytes;
      total_flops += flops;
      os << "  " << nest.label << ": " << nest.point_count << " pts, "
         << static_cast<long long>(bytes) << " B, "
         << static_cast<long long>(flops) << " flops ("
         << (nest.point_count > 0
                 ? bytes / static_cast<double>(nest.point_count)
                 : 0.0)
         << " B/pt)\n";
    }
    os << "  total: " << static_cast<long long>(total_bytes) << " B, "
       << static_cast<long long>(total_flops)
       << " flops, arithmetic intensity "
       << (total_bytes > 0 ? total_flops / total_bytes : 0.0) << " flop/B\n";
  }

  if (options.show_profile) {
    os << "\n== Profile (observed at runtime) ==\n";
    const std::string label = kernel_label(group, shapes);
    const double ref_bw = trace::ProfileRegistry::instance().reference_bandwidth();
    bool any = false;
    for (const auto& p : trace::ProfileRegistry::instance().snapshot()) {
      if (p.label != label || p.invocations == 0) continue;
      any = true;
      os << "  " << p.backend << ": " << p.invocations << " runs, "
         << p.wall_seconds << " s total ("
         << p.wall_seconds / static_cast<double>(p.invocations) * 1e3
         << " ms/run), modeled " << p.modeled_seconds << " s";
      // Model vs machine, side by side: the static traffic model's GB/s
      // and the hardware-counter GB/s for the same runs (Figure 5's
      // roofline proximity read off one report).
      const double gbs = p.achieved_bytes_per_s() / 1e9;
      if (gbs > 0.0) {
        os << ", " << gbs << " GB/s modeled";
        if (ref_bw > 0.0) {
          os << " (" << 100.0 * p.achieved_bytes_per_s() / ref_bw
             << "% of STREAM roofline)";
        }
      }
      if (p.counter_runs > 0) {
        os << ", " << p.measured_bytes_per_s() / 1e9
           << " GB/s measured via LLC misses";
        if (p.bytes_per_run > 0.0) {
          os << " (" << 100.0 * p.measured_bytes_per_run() / p.bytes_per_run
             << "% of the traffic model)";
        }
      } else if (gbs > 0.0) {
        os << " (modeled only; hardware counters "
           << (trace::CounterGroup::instance().available() ? "recorded no runs"
                                                           : "unavailable")
           << ")";
      }
      os << "\n";
    }
    if (!any) {
      os << "  (no recorded runs for this group under these shapes)\n";
    }
  }

  return os.str();
}

}  // namespace snowflake
