#pragma once
// Compilation reports: everything the front end knows about a stencil
// group, rendered for humans.  This is the tooling face of the paper's
// Figure 5 workflow — the platform expert inspecting what the analysis
// proved and what each micro-compiler will emit.

#include <string>

#include "backend/backend.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

struct ReportOptions {
  bool show_ir = true;          // stencil listing
  bool show_analysis = true;    // dependences, waves, parallelism proofs
  bool show_plan = true;        // lowered nest/chain structure
  bool show_traffic = true;     // per-nest traffic & flop estimates
  bool show_profile = true;     // observed runtime profile (if any runs)
  bool compare_interval = true; // exact vs interval analysis side by side
  CompileOptions compile;       // transforms applied before planning
};

/// Render a full multi-section report for the group under these shapes.
std::string explain_group(const StencilGroup& group, const ShapeMap& shapes,
                          const ReportOptions& options = {});

/// One-line-per-pair dependence matrix ("." independent, "D" dependent,
/// "d" dependent only under interval analysis — a false positive).
std::string dependence_matrix(const StencilGroup& group, const ShapeMap& shapes);

}  // namespace snowflake
