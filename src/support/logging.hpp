#pragma once
// Minimal leveled logger.
//
// The JIT pipeline logs compiler invocations and cache hits at Debug level;
// backends log scheduling decisions at Info level when enabled.  Logging is
// off by default so library users see nothing unless they opt in via
// set_log_level or the SNOWFLAKE_LOG environment variable
// (error|warn|info|debug).
//
// Each line is composed into one buffer and written with a single stream
// operation, so lines from concurrent threads (e.g. the OpenMP backend)
// never shear.  At Debug level every line carries a monotonic timestamp
// and thread id prefix: [+12.345678s T3].
//
// Related observability env vars (see docs/observability.md and
// src/trace/): SNOWFLAKE_TRACE=out.json records compile/run spans and
// writes a Chrome trace-event JSON at exit; SNOWFLAKE_METRICS=1 dumps
// counters and per-kernel roofline-annotated runtime profiles to stderr
// at exit (any other value is treated as an output file path).

#include <sstream>
#include <string>

namespace snowflake {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Set the global log level programmatically.
void set_log_level(LogLevel level);

/// Current global log level (initialized from $SNOWFLAKE_LOG on first use).
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define SF_LOG(level, expr)                                            \
  do {                                                                 \
    if (static_cast<int>(::snowflake::log_level()) >=                  \
        static_cast<int>(::snowflake::LogLevel::level)) {              \
      std::ostringstream sf_log_os_;                                   \
      sf_log_os_ << expr;                                              \
      ::snowflake::detail::log_line(::snowflake::LogLevel::level,      \
                                    sf_log_os_.str());                 \
    }                                                                  \
  } while (0)

#define SF_LOG_ERROR(expr) SF_LOG(Error, expr)
#define SF_LOG_WARN(expr) SF_LOG(Warn, expr)
#define SF_LOG_INFO(expr) SF_LOG(Info, expr)
#define SF_LOG_DEBUG(expr) SF_LOG(Debug, expr)

}  // namespace snowflake
