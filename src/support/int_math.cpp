#include "support/int_math.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace snowflake {

ExtGcd ext_gcd(std::int64_t a, std::int64_t b) {
  // Iterative extended Euclid on (|a|, |b|), with signs fixed up at the end.
  std::int64_t old_r = a, r = b;
  std::int64_t old_s = 1, s = 0;
  std::int64_t old_t = 0, t = 1;
  while (r != 0) {
    std::int64_t q = old_r / r;
    std::int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return ExtGcd{old_r, old_s, old_t};
}

std::int64_t gcd(std::int64_t a, std::int64_t b) { return ext_gcd(a, b).g; }

std::int64_t lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  std::int64_t g = gcd(a, b);
  return std::abs(a / g * b);
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  SF_REQUIRE(b != 0, "floor_div by zero");
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  SF_REQUIRE(b != 0, "ceil_div by zero");
  return -floor_div(-a, b);
}

std::int64_t mod_floor(std::int64_t a, std::int64_t b) {
  SF_REQUIRE(b != 0, "mod_floor by zero");
  std::int64_t bb = std::abs(b);
  std::int64_t m = a % bb;
  if (m < 0) m += bb;
  return m;
}

}  // namespace snowflake
