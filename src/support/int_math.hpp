#pragma once
// Exact integer math primitives: extended gcd, modular normalization,
// floor/ceil division.  These underpin both the domain algebra
// (intersection of strided ranges via CRT) and the Diophantine dependence
// analysis, so they live in support rather than in either module.

#include <cstdint>

namespace snowflake {

/// Result of the extended Euclidean algorithm: g = gcd(|a|, |b|) and
/// coefficients with a*x + b*y = g.  gcd(0, 0) is defined as 0.
struct ExtGcd {
  std::int64_t g;
  std::int64_t x;
  std::int64_t y;
};

ExtGcd ext_gcd(std::int64_t a, std::int64_t b);

/// Non-negative gcd.
std::int64_t gcd(std::int64_t a, std::int64_t b);

/// Least common multiple (0 if either is 0).  Caller guarantees no overflow.
std::int64_t lcm(std::int64_t a, std::int64_t b);

/// Floor division (rounds toward negative infinity).
std::int64_t floor_div(std::int64_t a, std::int64_t b);

/// Ceil division (rounds toward positive infinity).
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// a mod b normalized into [0, |b|).
std::int64_t mod_floor(std::int64_t a, std::int64_t b);

}  // namespace snowflake
