#include "support/fingerprint.hpp"

#include <unistd.h>

#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/hash.hpp"

namespace snowflake {

namespace {

std::string read_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

std::int64_t read_total_mem_bytes() {
  std::ifstream in("/proc/meminfo");
  std::string key;
  std::int64_t kb = 0;
  while (in >> key >> kb) {
    if (key == "MemTotal:") return kb * 1024;
    in.ignore(256, '\n');
  }
  return 0;
}

int read_cache_line_bytes() {
  std::ifstream in(
      "/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size");
  int bytes = 0;
  if (in >> bytes && bytes > 0) return bytes;
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  const long sc = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (sc > 0) return static_cast<int>(sc);
#endif
  return 64;
}

struct State {
  MachineFingerprint fp;
  std::mutex mu;  // guards stream_bytes_per_s updates after init
};

State& state() {
  // Leaked on purpose: exit-time writers (the perf ledger append, the
  // bench JSON flush) run from atexit/static destructors in arbitrary
  // order relative to when this state was first touched, so it must
  // never be destroyed.
  static State& s = *new State();
  static std::once_flag once;
  std::call_once(once, [] {
    MachineFingerprint& fp = s.fp;
    fp.cpu_model = read_cpu_model();
    fp.cores = static_cast<int>(std::thread::hardware_concurrency());
    if (fp.cores <= 0) fp.cores = 1;
    fp.total_mem_bytes = read_total_mem_bytes();
    fp.cache_line_bytes = read_cache_line_bytes();
    HashStream h;
    h.add(fp.cpu_model)
        .add(static_cast<std::int64_t>(fp.cores))
        .add(fp.total_mem_bytes)
        .add(static_cast<std::int64_t>(fp.cache_line_bytes));
    fp.id = hash_hex(h.digest());
  });
  return s;
}

}  // namespace

const MachineFingerprint& fingerprint() { return state().fp; }

void set_measured_bandwidth(double bytes_per_s) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.fp.stream_bytes_per_s = bytes_per_s;
}

int cache_line_bytes() { return fingerprint().cache_line_bytes; }

}  // namespace snowflake
