#include "support/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace snowflake {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SNOWFLAKE_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Off;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Off: break;
  }
  return "OFF";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load());
}

namespace detail {

namespace {

/// Monotonic seconds since the first log line.
double log_uptime_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Dense per-process thread number for log attribution.
unsigned log_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned tid = next.fetch_add(1);
  return tid;
}

}  // namespace

void log_line(LogLevel level, const std::string& msg) {
  // Compose the full line in one buffer and emit it with a single stream
  // operation so concurrent threads cannot interleave fragments.
  std::string line;
  line.reserve(msg.size() + 48);
  line += "[snowflake ";
  line += level_name(level);
  if (log_level() >= LogLevel::Debug) {
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), " +%.6fs T%u", log_uptime_seconds(),
                  log_thread_id());
    line += prefix;
  }
  line += "] ";
  line += msg;
  line += '\n';
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fputs(line.c_str(), stderr);
}

}  // namespace detail

}  // namespace snowflake
