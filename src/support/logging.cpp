#include "support/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace snowflake {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SNOWFLAKE_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Off;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Off: break;
  }
  return "OFF";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level));
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load());
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[snowflake " << level_name(level) << "] " << msg << "\n";
}

}  // namespace detail

}  // namespace snowflake
