#pragma once
// Stable hashing used for JIT source caching and IR structural hashing.
//
// FNV-1a is sufficient here: hashes key an on-disk cache whose entries also
// store the full source text, so a collision degrades to a cache miss after
// the stored source fails to match — never to wrong code being loaded.

#include <cstdint>
#include <string>
#include <string_view>

namespace snowflake {

/// 64-bit FNV-1a hash of a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// Incrementally combinable hash state (order-sensitive).
class HashStream {
public:
  HashStream& add(std::string_view data);
  HashStream& add(std::int64_t value);
  HashStream& add(double value);

  std::uint64_t digest() const { return state_; }

private:
  std::uint64_t state_ = 14695981039346656037ull;  // FNV offset basis
};

/// Hex string of a 64-bit hash (16 lowercase hex digits).
std::string hash_hex(std::uint64_t hash);

}  // namespace snowflake
