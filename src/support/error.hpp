#pragma once
// Error handling for the Snowflake library.
//
// All user-facing failures (bad stencil definitions, unresolvable domains,
// missing grids, toolchain failures) throw snowflake::Error.  Internal
// invariant violations use SF_ASSERT and throw InternalError so that tests
// can distinguish "you misused the API" from "the library has a bug".

#include <stdexcept>
#include <string>

namespace snowflake {

/// Base class for all errors raised by the Snowflake library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when user input is invalid (malformed stencil, bad domain, ...).
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when a grid name cannot be resolved against a GridSet.
class LookupError : public Error {
public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

/// Raised when the JIT toolchain (compiler discovery, compilation, dlopen)
/// fails.
class ToolchainError : public Error {
public:
  explicit ToolchainError(const std::string& what) : Error(what) {}
};

/// Raised on violated internal invariants; indicates a library bug.
class InternalError : public Error {
public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_internal(const char* file, int line, const std::string& msg);
}  // namespace detail

/// Validate a user-supplied condition; throws InvalidArgument on failure.
#define SF_REQUIRE(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) ::snowflake::detail::throw_invalid(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Check an internal invariant; throws InternalError on failure.
#define SF_ASSERT(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) ::snowflake::detail::throw_internal(__FILE__, __LINE__, (msg)); \
  } while (0)

}  // namespace snowflake
