#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace snowflake {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_tuple(const std::vector<std::int64_t>& values) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << values[i];
  }
  os << ")";
  return os.str();
}

std::string format_double(double value) {
  if (std::isnan(value)) return "(0.0/0.0)";
  if (std::isinf(value)) return value > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  std::string out = format_double_compact(value);
  // Ensure the literal parses as a double in C (e.g. "1" -> "1.0").
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

std::string format_double_compact(double value) {
  // std::to_chars is defined in terms of the "C" locale regardless of the
  // global locale, and its shortest form round-trips the exact IEEE value.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

std::string format_double_fixed(double value, int precision) {
  char buf[512];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::fixed, precision);
  if (res.ec != std::errc{}) return format_double_compact(value);
  return std::string(buf, res.ptr);
}

const char* parse_double(const char* first, const char* last, double* out) {
  if (first == last) return first;
  // std::from_chars rejects a leading '+' and does not skip whitespace;
  // accept the '+' for strtod parity with the stores' historical format.
  const char* start = first;
  if (*start == '+' && start + 1 < last && *(start + 1) != '+') ++start;
  double value = 0.0;
  const auto res = std::from_chars(start, last, value);
  if (res.ec == std::errc::result_out_of_range) {
    // Historical strtod behaviour: clamp overflow to +-HUGE_VAL (and
    // underflow toward 0) but still consume the text, so out-of-range
    // stored values stay readable instead of poisoning the whole line.
    const bool neg = *start == '-';
    bool neg_exp = false;
    for (const char* p = start; p + 1 < res.ptr; ++p) {
      if ((*p == 'e' || *p == 'E') && *(p + 1) == '-') neg_exp = true;
    }
    if (neg_exp) {
      *out = neg ? -0.0 : 0.0;
    } else {
      *out = neg ? -HUGE_VAL : HUGE_VAL;
    }
    return res.ptr;
  }
  if (res.ec != std::errc{} || res.ptr == start) return first;
  *out = value;
  return res.ptr;
}

bool parse_double(const std::string& s, double* out) {
  const char* end = s.data() + s.size();
  return !s.empty() && parse_double(s.data(), end, out) == end;
}

bool is_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

}  // namespace snowflake
