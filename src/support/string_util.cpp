#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace snowflake {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_tuple(const std::vector<std::int64_t>& values) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << values[i];
  }
  os << ")";
  return os.str();
}

std::string format_double(double value) {
  if (std::isnan(value)) return "(0.0/0.0)";
  if (std::isinf(value)) return value > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  char buf[64];
  // %.17g round-trips IEEE doubles.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string out(buf);
  // Ensure the literal parses as a double in C (e.g. "1" -> "1.0").
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

bool is_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

}  // namespace snowflake
