#include "support/error.hpp"

#include <sstream>

namespace snowflake::detail {

namespace {
std::string decorate(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  return os.str();
}
}  // namespace

void throw_invalid(const char* file, int line, const std::string& msg) {
  throw InvalidArgument(decorate(file, line, msg));
}

void throw_internal(const char* file, int line, const std::string& msg) {
  throw InternalError(decorate(file, line, msg));
}

}  // namespace snowflake::detail
