#pragma once
// Shared on-disk state location for every persistent store (kernel cache,
// perf ledger, tune DB, daemon sockets).
//
// Resolution order: $SNOWFLAKE_CACHE_DIR, then $XDG_CACHE_HOME/snowflake,
// then $HOME/.cache/snowflake.  With all three unset — the typical
// daemonized environment (systemd units, containers, cron) — the old code
// produced an empty path and every open failed with a confusing errno.
// The fallback is now a deterministic per-user directory,
// /tmp/snowflake-<uid>, announced once with a logged warning so operators
// know where their state landed.

#include <cstdint>
#include <string>

namespace snowflake {

/// The per-user fallback directory used when no cache-path environment
/// variable is set: "/tmp/snowflake-<uid>".  Deterministic, so a daemon
/// restarted in a clean environment finds its previous state.
std::string state_dir_fallback();

/// Resolve the cache/state directory through the environment chain above.
/// Never returns an empty string; logs a warning (once per process) when
/// it had to fall back to state_dir_fallback().
std::string resolve_cache_dir();

/// Default Unix-domain socket path for the snowflaked compile daemon:
/// $SNOWFLAKE_SOCKET if set, else <resolve_cache_dir()>/snowflaked.sock.
std::string default_service_socket();

/// Parse a byte count with an optional k/m/g (or K/M/G) suffix, e.g.
/// "268435456", "256m", "4G".  Returns false on malformed input.
bool parse_byte_size(const std::string& text, std::uint64_t* out);

}  // namespace snowflake
