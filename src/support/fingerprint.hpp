#pragma once
// Machine identity for the persistent performance ledger and (later) the
// autotuning database: timings are only comparable between runs on the
// same machine, so every ledger entry is keyed by a stable fingerprint of
// the host.  The stable part (CPU model, core count, memory size, cache
// line) is hashed into a short hex id; the measured STREAM bandwidth is
// carried as an informative field but kept out of the id, because it
// jitters run to run and is only measured by processes that ask for it.

#include <cstdint>
#include <string>

namespace snowflake {

struct MachineFingerprint {
  std::string cpu_model;          // /proc/cpuinfo "model name" ("unknown" off-Linux)
  int cores = 0;                  // online hardware threads
  std::int64_t total_mem_bytes = 0;  // /proc/meminfo MemTotal (0 when unknown)
  int cache_line_bytes = 64;      // L1D line size (64 when undetectable)
  double stream_bytes_per_s = 0;  // measured STREAM bandwidth; 0 = not measured
  std::string id;                 // 16-hex-digit stable hash of the above
                                  // (minus stream_bytes_per_s)
};

/// The memoized fingerprint of this machine.  Cheap after the first call;
/// never throws (unreadable fields degrade to their defaults).
const MachineFingerprint& fingerprint();

/// Record a measured STREAM bandwidth into the fingerprint (bench harness
/// calls this from host_bandwidth()).  Does not change fingerprint().id.
void set_measured_bandwidth(double bytes_per_s);

/// L1D cache line size in bytes (the fingerprint's, as a convenience for
/// LLC-miss -> DRAM-bytes conversion).
int cache_line_bytes();

}  // namespace snowflake
