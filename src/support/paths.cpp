#include "support/paths.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <mutex>

#include "support/logging.hpp"

namespace snowflake {

namespace {

const char* env_nonempty(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v) ? v : nullptr;
}

}  // namespace

std::string state_dir_fallback() {
  return "/tmp/snowflake-" + std::to_string(static_cast<long>(getuid()));
}

std::string resolve_cache_dir() {
  if (const char* env = env_nonempty("SNOWFLAKE_CACHE_DIR")) return env;
  if (const char* xdg = env_nonempty("XDG_CACHE_HOME")) {
    return std::string(xdg) + "/snowflake";
  }
  if (const char* home = env_nonempty("HOME")) {
    return std::string(home) + "/.cache/snowflake";
  }
  // Daemonized environments commonly scrub all three variables; an empty
  // path here used to surface as an unrelated-looking open(2) errno much
  // later.  Warn once and use the deterministic per-user fallback.
  static std::once_flag warned;
  std::call_once(warned, [] {
    SF_LOG_WARN("no $SNOWFLAKE_CACHE_DIR, $XDG_CACHE_HOME or $HOME set; "
                "using " << state_dir_fallback() << " for persistent state");
  });
  return state_dir_fallback();
}

std::string default_service_socket() {
  if (const char* env = env_nonempty("SNOWFLAKE_SOCKET")) return env;
  return resolve_cache_dir() + "/snowflaked.sock";
}

bool parse_byte_size(const std::string& text, std::uint64_t* out) {
  if (text.empty() || out == nullptr) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  std::uint64_t scale = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': scale = 1024ull; break;
      case 'm': scale = 1024ull * 1024; break;
      case 'g': scale = 1024ull * 1024 * 1024; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *out = static_cast<std::uint64_t>(value) * scale;
  return true;
}

}  // namespace snowflake
