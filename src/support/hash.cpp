#include "support/hash.hpp"

#include <cstring>

namespace snowflake {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64_accumulate(std::uint64_t state, std::string_view data) {
  for (unsigned char c : data) {
    state ^= c;
    state *= kFnvPrime;
  }
  return state;
}
}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_accumulate(14695981039346656037ull, data);
}

HashStream& HashStream::add(std::string_view data) {
  state_ = fnv1a64_accumulate(state_, data);
  // Separator byte so add("ab") + add("c") != add("a") + add("bc").
  state_ = fnv1a64_accumulate(state_, std::string_view("\x1f", 1));
  return *this;
}

HashStream& HashStream::add(std::int64_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  state_ = fnv1a64_accumulate(state_, std::string_view(bytes, sizeof(bytes)));
  return *this;
}

HashStream& HashStream::add(double value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  state_ = fnv1a64_accumulate(state_, std::string_view(bytes, sizeof(bytes)));
  return *this;
}

std::string hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

}  // namespace snowflake
