#pragma once
// Small string helpers shared by the IR printer and the C emitter.

#include <cstdint>
#include <string>
#include <vector>

namespace snowflake {

/// Join the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Format an integer vector as "(a, b, c)".
std::string format_tuple(const std::vector<std::int64_t>& values);

/// Format a double with enough digits to round-trip (used in codegen so the
/// generated C reproduces the exact IEEE value).
std::string format_double(double value);

/// Shortest locale-independent round-trip rendering (std::to_chars): the
/// shared serializer for every persistent store (tune DB, perf ledger,
/// param codecs).  Unlike printf-family %g it never emits a comma decimal
/// point under a de_DE-style global locale, and unlike std::to_string it
/// never truncates sub-microsecond values to "0.000000".
std::string format_double_compact(double value);

/// Fixed-precision locale-independent rendering ("%.<precision>f" but
/// always with a '.' decimal point); used where an external consumer
/// (Chrome trace JSON) expects fixed notation.
std::string format_double_fixed(double value, int precision);

/// Locale-independent parse (std::from_chars).  Parses a double from
/// [first, last) and returns a pointer past the number, or `first` when
/// nothing parses (strtod-style contract, minus the locale dependence).
const char* parse_double(const char* first, const char* last, double* out);

/// Convenience overload over a whole string: true when `s` is exactly one
/// double (surrounding whitespace rejected).
bool parse_double(const std::string& s, double* out);

/// True if `name` is a valid C identifier (codegen-safe grid name).
bool is_identifier(const std::string& name);

}  // namespace snowflake
