#pragma once
// Small string helpers shared by the IR printer and the C emitter.

#include <cstdint>
#include <string>
#include <vector>

namespace snowflake {

/// Join the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Format an integer vector as "(a, b, c)".
std::string format_tuple(const std::vector<std::int64_t>& values);

/// Format a double with enough digits to round-trip (used in codegen so the
/// generated C reproduces the exact IEEE value).
std::string format_double(double value);

/// True if `name` is a valid C identifier (codegen-safe grid name).
bool is_identifier(const std::string& name);

}  // namespace snowflake
