#pragma once
// Client side of the snowflaked compile service.
//
// ServiceClient wraps one connection to a daemon socket: connect, lower a
// StencilGroup to generated C locally (the daemon never sees IR, only the
// exact source+flags pair the cache keys on), and ask the daemon to
// compile it (CompileResponse carries the shared .so path for dlopen) or
// to run it server-side (ExecuteRequest ships the grids both ways).
//
// A pinned compile holds the artifact against LRU eviction until
// release() or the connection closes — the daemon drops a connection's
// pins automatically, so a crashed client can never leak a pin.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace snowflake::service {

struct ClientConfig {
  /// Empty = support/paths default_service_socket().
  std::string socket_path;
  /// Reported to the daemon in request logs.
  std::string client_name = "snowflakec";
};

class ServiceClient {
public:
  /// Connect to the daemon; throws WireError when nobody is listening.
  explicit ServiceClient(ClientConfig config = {});
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// True when a daemon answers on `socket_path` (empty = default) without
  /// raising; used by tools to decide between remote and local compilation.
  static bool daemon_available(const std::string& socket_path = "");

  /// Compile `source` with the given flags on the daemon.  `pin` holds the
  /// artifact against eviction until release()/disconnect.  Throws
  /// WireError on transport failure; a compile failure comes back in the
  /// response (ok=false, error set).
  CompileResponse compile(const std::string& source, bool openmp,
                          const std::vector<std::string>& extra_flags,
                          bool pin = false,
                          const std::string& group_hash = "");

  /// Compile (if needed) and run server-side: grids go over the wire in
  /// kernel-plan order and come back updated.
  ExecuteResponse execute(const std::string& source, bool openmp,
                          const std::vector<std::string>& extra_flags,
                          std::uint32_t sweeps, std::vector<GridBlob> grids,
                          const std::vector<double>& params,
                          const std::string& group_hash = "");

  /// Drop this connection's pin on `key`.
  ReleaseResponse release(const std::string& key);

  /// Daemon status (cache stats, request counters, uptime).
  StatusResponse status();

  /// Round-trip a nonce; returns the daemon pid.
  std::uint64_t ping(std::uint64_t nonce = 0);

  /// Ask the daemon to exit.  Returns its acknowledgement.
  ShutdownResponse shutdown();

  const std::string& socket_path() const { return socket_path_; }

private:
  template <typename Resp, typename Req>
  Resp round_trip(const Req& req);

  ClientConfig config_;
  std::string socket_path_;
  int fd_ = -1;
};

}  // namespace snowflake::service
