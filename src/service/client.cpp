#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/paths.hpp"

namespace snowflake::service {

namespace {

int connect_or_throw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw WireError(std::string("cannot create socket: ") +
                    std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw WireError("socket path too long for sockaddr_un: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw WireError("cannot reach snowflaked at " + path + ": " + why +
                    " (is the daemon running?)");
  }
  return fd;
}

}  // namespace

ServiceClient::ServiceClient(ClientConfig config)
    : config_(std::move(config)),
      socket_path_(config_.socket_path.empty() ? default_service_socket()
                                               : config_.socket_path),
      fd_(connect_or_throw(socket_path_)) {}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool ServiceClient::daemon_available(const std::string& socket_path) {
  try {
    ClientConfig config;
    config.socket_path = socket_path;
    ServiceClient probe(std::move(config));
    probe.ping(0x5f5fu);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

template <typename Resp, typename Req>
Resp ServiceClient::round_trip(const Req& req) {
  send_message(fd_, req);
  Frame frame;
  if (!read_frame(fd_, &frame)) {
    throw WireError("daemon closed the connection before replying");
  }
  return expect_message<Resp>(frame);
}

CompileResponse ServiceClient::compile(
    const std::string& source, bool openmp,
    const std::vector<std::string>& extra_flags, bool pin,
    const std::string& group_hash) {
  CompileRequest req;
  req.client = config_.client_name;
  req.group_hash = group_hash;
  req.source = source;
  req.openmp = openmp;
  req.extra_flags = extra_flags;
  req.pin = pin;
  return round_trip<CompileResponse>(req);
}

ExecuteResponse ServiceClient::execute(
    const std::string& source, bool openmp,
    const std::vector<std::string>& extra_flags, std::uint32_t sweeps,
    std::vector<GridBlob> grids, const std::vector<double>& params,
    const std::string& group_hash) {
  ExecuteRequest req;
  req.client = config_.client_name;
  req.group_hash = group_hash;
  req.source = source;
  req.openmp = openmp;
  req.extra_flags = extra_flags;
  req.sweeps = sweeps;
  req.grids = std::move(grids);
  req.params = params;
  return round_trip<ExecuteResponse>(req);
}

ReleaseResponse ServiceClient::release(const std::string& key) {
  ReleaseRequest req;
  req.key = key;
  return round_trip<ReleaseResponse>(req);
}

StatusResponse ServiceClient::status() {
  return round_trip<StatusResponse>(StatusRequest{});
}

std::uint64_t ServiceClient::ping(std::uint64_t nonce) {
  PingRequest req;
  req.nonce = nonce;
  const auto resp = round_trip<PingResponse>(req);
  if (resp.nonce != nonce) {
    throw WireError("ping nonce mismatch (daemon echoed " +
                    std::to_string(resp.nonce) + ", expected " +
                    std::to_string(nonce) + ")");
  }
  return resp.pid;
}

ShutdownResponse ServiceClient::shutdown() {
  return round_trip<ShutdownResponse>(ShutdownRequest{});
}

}  // namespace snowflake::service
