#include "service/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace snowflake::service {

namespace {

constexpr char kMagic[4] = {'S', 'N', 'W', 'F'};
constexpr std::size_t kHeaderBytes = 16;

std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u32(unsigned char* p, std::uint32_t v) {
  p[0] = v & 0xffu;
  p[1] = (v >> 8) & 0xffu;
  p[2] = (v >> 16) & 0xffu;
  p[3] = (v >> 24) & 0xffu;
}

}  // namespace

bool read_exact(int fd, void* buf, std::size_t size) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("socket read failed: ") +
                      std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      throw WireError("torn frame: peer closed after " + std::to_string(got) +
                      " of " + std::to_string(size) + " bytes");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // EPIPE here, not as a SIGPIPE killing the whole daemon.  Non-socket
    // fds (tests over pipes) fall back to plain write(2); those callers
    // are expected to ignore SIGPIPE themselves.
    ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p + sent, size - sent);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("socket write failed: ") +
                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool read_frame(int fd, Frame* out, std::uint32_t* peer_version) {
  unsigned char header[kHeaderBytes];
  if (!read_exact(fd, header, sizeof header)) return false;
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    throw WireError("bad frame magic (not a snowflaked peer?)");
  }
  const std::uint32_t version = load_u32(header + 4);
  if (peer_version != nullptr) *peer_version = version;
  if (version != kWireVersion) {
    throw WireError("wire version mismatch: peer speaks v" +
                        std::to_string(version) + ", this build speaks v" +
                        std::to_string(kWireVersion),
                    kErrBadVersion);
  }
  out->type = load_u32(header + 8);
  const std::uint32_t length = load_u32(header + 12);
  if (length > kMaxFramePayload) {
    throw WireError("oversized frame: " + std::to_string(length) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFramePayload) + "-byte cap",
                    kErrOversized);
  }
  out->payload.resize(length);
  if (length > 0 && !read_exact(fd, out->payload.data(), length)) {
    throw WireError("torn frame: EOF before any payload byte");
  }
  return true;
}

void write_frame(int fd, std::uint32_t type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError("refusing to send oversized frame (" +
                    std::to_string(payload.size()) + " bytes)");
  }
  std::string buf;
  buf.resize(kHeaderBytes);
  auto* header = reinterpret_cast<unsigned char*>(buf.data());
  std::memcpy(header, kMagic, sizeof kMagic);
  store_u32(header + 4, kWireVersion);
  store_u32(header + 8, type);
  store_u32(header + 12, static_cast<std::uint32_t>(payload.size()));
  buf.append(payload);  // one write: header+payload never interleave
  write_all(fd, buf.data(), buf.size());
}

}  // namespace snowflake::service
