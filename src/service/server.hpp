#pragma once
// snowflaked — the long-lived kernel-compile service.
//
// One CompileService owns one KernelCache and serves many clients over a
// Unix-domain stream socket.  Identical compile requests (same generated
// source + toolchain flags) collapse onto the cache's single-flight dedup,
// so N clients racing on a cold key cost exactly one toolchain invocation;
// everyone else gets the shared artifact (.so path + metadata), or — for
// remote-style clients that cannot dlopen the daemon's filesystem — a
// server-side execution of their grids (ExecuteRequest).
//
// Operational posture (the parts that stop being theoretical the moment
// the cache is shared): admission control bounds concurrent connections
// (rejected clients get a clean kErrOverloaded ErrorReply), artifacts a
// client asked to pin survive LRU eviction until released or the client
// disconnects, and every request feeds service.* trace counters and
// service:* spans so queue depth, hit ratio, and compile-vs-hit latency
// are visible through the existing exporters (docs/observability.md).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "jit/cache.hpp"
#include "service/wire.hpp"

namespace snowflake::service {

struct ServiceConfig {
  /// Empty = support/paths default_service_socket().
  std::string socket_path;
  /// Kernel-cache directory (empty = the standard resolution chain).
  std::string cache_dir;
  /// Byte cap for the shared cache (0 = $SNOWFLAKE_CACHE_MAX_BYTES).
  std::uint64_t cache_max_bytes = 0;
  /// Admission control: connections beyond this are rejected with
  /// kErrOverloaded instead of queueing unboundedly.
  int max_clients = 64;
  /// listen(2) backlog.
  int backlog = 64;
};

class CompileService {
public:
  explicit CompileService(ServiceConfig config = {});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Bind the socket and start the accept loop.  Throws WireError when the
  /// path is taken by a live daemon (a stale socket file is replaced).
  void start();

  /// Stop accepting, close every connection, join all threads.  Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const std::string& socket_path() const { return socket_path_; }
  KernelCache& cache() { return *cache_; }

  /// Block until a client sends ShutdownRequest or stop() is called.
  /// Returns true when shutdown was requested over the wire.
  bool wait_for_shutdown_request();

  /// Request-level counters (cache-level ones live in cache().stats()).
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t compile_requests = 0;
    std::uint64_t execute_requests = 0;
    std::uint64_t rejections = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t active_clients = 0;
    std::uint64_t peak_clients = 0;
  };
  Counters counters() const;

private:
  void accept_loop();
  void handle_connection(int fd);
  /// Dispatch one frame; returns false when the connection should close.
  bool dispatch(int fd, const Frame& frame,
                std::vector<std::string>* pinned);
  void handle_compile(int fd, const Frame& frame,
                      std::vector<std::string>* pinned);
  void handle_execute(int fd, const Frame& frame);
  void handle_status(int fd);

  ServiceConfig config_;
  std::string socket_path_;
  std::unique_ptr<KernelCache> cache_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::vector<std::thread> workers_;
  std::map<int, int> open_fds_;  // fd -> fd (set keyed for O(log) erase)
  Counters counters_;
};

}  // namespace snowflake::service
