#pragma once
// Frame layer of the snowflaked wire protocol.
//
// Every message travels as one frame over a Unix-domain stream socket:
//
//   magic   "SNWF"                     (4 bytes)
//   version kWireVersion               (u32 LE)
//   type    message kTypeId            (u32 LE)
//   length  payload bytes that follow  (u32 LE, <= kMaxFramePayload)
//   payload snowgen-generated encoding (see service_wire.gen.hpp)
//
// The framing is deliberately versioned and size-capped: a mismatched
// client gets a clean ErrorReply naming both versions instead of a
// mis-decode, an oversized length is rejected before any allocation, and
// a torn frame (peer died mid-payload) surfaces as WireError, never as a
// short read silently parsed as garbage.  All sends use MSG_NOSIGNAL so a
// client disconnecting mid-response yields EPIPE, not process death.

#include <cstdint>
#include <string>

#include "service/service_wire.gen.hpp"
#include "support/error.hpp"

namespace snowflake::service {

/// Error codes carried by ErrorReply.
enum ErrorCode : std::uint32_t {
  kErrBadVersion = 1,   // client/daemon wire versions differ
  kErrOversized = 2,    // frame length exceeds kMaxFramePayload
  kErrBadMessage = 3,   // payload failed to decode / torn frame
  kErrOverloaded = 4,   // admission control rejected the connection
  kErrUnknownType = 5,  // frame type id not in the protocol table
  kErrInternal = 6,     // daemon-side exception (message carries what())
};

/// Raised on any framing/socket failure (torn frame, oversized length,
/// bad magic, version mismatch, send/recv errno).  `code()` lets a server
/// map the failure onto the matching ErrorReply code.
class WireError : public Error {
public:
  explicit WireError(const std::string& what,
                     ErrorCode code = kErrBadMessage)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

private:
  ErrorCode code_;
};

/// Hard cap on a frame payload (64 MiB): large enough for any generated
/// kernel source or a modest execute-request grid set, small enough that
/// a corrupt length field cannot OOM the daemon.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// One decoded frame: the message type id plus its raw payload.
struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// Read exactly `size` bytes; false on clean EOF at byte 0, throws
/// WireError on errno or EOF mid-buffer (torn frame).
bool read_exact(int fd, void* buf, std::size_t size);

/// Write all of `data` (MSG_NOSIGNAL on sockets); throws WireError on
/// failure, including EPIPE from a vanished peer.
void write_all(int fd, const void* data, std::size_t size);

/// Read one frame.  Returns false on clean EOF before a header.  Throws
/// WireError on bad magic, version mismatch, oversized length, or a torn
/// header/payload.  `peer_version`, when non-null, receives the version
/// the peer claimed (so servers can answer a mismatch politely).
bool read_frame(int fd, Frame* out, std::uint32_t* peer_version = nullptr);

/// Frame and send an encoded payload.
void write_frame(int fd, std::uint32_t type, const std::string& payload);

/// Encode + frame + send a message in one call.
template <typename Msg>
void send_message(int fd, const Msg& msg) {
  std::string payload;
  encode(msg, &payload);
  write_frame(fd, Msg::kTypeId, payload);
}

/// Decode a frame's payload as Msg; throws WireError (naming the message
/// type) when the frame's type or payload doesn't match.
template <typename Msg>
Msg expect_message(const Frame& frame) {
  if (frame.type != Msg::kTypeId) {
    // The daemon reports failures as ErrorReply; surface those readably.
    if (frame.type == ErrorReply::kTypeId) {
      ErrorReply err;
      std::string why;
      if (decode(reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
                 frame.payload.size(), &err, &why)) {
        throw WireError("server error (code " + std::to_string(err.code) +
                        "): " + err.message);
      }
    }
    throw WireError(std::string("expected ") + message_name(Msg::kTypeId) +
                    " frame, got " + message_name(frame.type));
  }
  Msg msg;
  std::string why;
  if (!decode(reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
              frame.payload.size(), &msg, &why)) {
    throw WireError(std::string("cannot decode ") +
                    message_name(Msg::kTypeId) + ": " + why);
  }
  return msg;
}

}  // namespace snowflake::service
