#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "codegen/cemit.hpp"
#include "support/logging.hpp"
#include "support/paths.hpp"
#include "trace/trace.hpp"

namespace fs = std::filesystem;

namespace snowflake::service {

namespace {

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_error(int fd, ErrorCode code, const std::string& message) {
  try {
    ErrorReply err;
    err.code = code;
    err.message = message;
    send_message(fd, err);
  } catch (const WireError&) {
    // Peer already gone; nothing to report to.
  }
}

}  // namespace

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)),
      socket_path_(config_.socket_path.empty() ? default_service_socket()
                                               : config_.socket_path) {
  CacheConfig cc;
  cc.directory = config_.cache_dir;
  cc.max_bytes = config_.cache_max_bytes;
  cache_ = std::make_unique<KernelCache>(cc);
}

CompileService::~CompileService() { stop(); }

void CompileService::start() {
  if (running_.load()) return;
  std::error_code ec;
  fs::create_directories(fs::path(socket_path_).parent_path(), ec);

  // A leftover socket file from a crashed daemon must not block restart,
  // but a LIVE daemon on the same path must not be silently displaced.
  if (fs::exists(socket_path_, ec)) {
    const int probe = connect_unix(socket_path_);
    if (probe >= 0) {
      ::close(probe);
      throw WireError("a snowflaked is already listening on " + socket_path_);
    }
    fs::remove(socket_path_, ec);
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw WireError(std::string("cannot create socket: ") +
                    std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("socket path too long for sockaddr_un: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("cannot bind/listen on " + socket_path_ + ": " + why);
  }
  if (pipe(stop_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError(std::string("cannot create stop pipe: ") +
                    std::strerror(errno));
  }
  started_ = std::chrono::steady_clock::now();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  SF_LOG_INFO("snowflaked listening on " << socket_path_ << " (cache "
              << cache_->directory() << ", max "
              << (cache_->max_bytes() == 0
                      ? std::string("unlimited")
                      : std::to_string(cache_->max_bytes()) + " bytes")
              << ")");
}

void CompileService::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake the accept loop, then every connection handler.
  if (stop_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, _] : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  std::error_code ec;
  fs::remove(socket_path_, ec);
  shutdown_cv_.notify_all();
}

bool CompileService::wait_for_shutdown_request() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || !running_.load();
  });
  return shutdown_requested_;
}

CompileService::Counters CompileService::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void CompileService::accept_loop() {
  auto& collector = trace::TraceCollector::instance();
  while (!stopping_.load()) {
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                             {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0 || stopping_.load()) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (counters_.active_clients >=
        static_cast<std::uint64_t>(config_.max_clients)) {
      // Admission control: a bounded daemon that says "no" fast beats an
      // unbounded one that falls over slowly.
      ++counters_.rejections;
      collector.increment("service.rejections");
      send_error(fd, kErrOverloaded,
                 "compile service at capacity (" +
                     std::to_string(config_.max_clients) +
                     " concurrent clients); retry later");
      ::close(fd);
      continue;
    }
    ++counters_.active_clients;
    counters_.peak_clients =
        std::max(counters_.peak_clients, counters_.active_clients);
    open_fds_.emplace(fd, fd);
    workers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void CompileService::handle_connection(int fd) {
  auto& collector = trace::TraceCollector::instance();
  std::vector<std::string> pinned;  // keys this connection holds pins on
  try {
    for (;;) {
      Frame frame;
      std::uint32_t peer_version = kWireVersion;
      try {
        if (!read_frame(fd, &frame, &peer_version)) break;  // clean EOF
      } catch (const WireError& e) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.protocol_errors;
        collector.increment("service.protocol_errors");
        SF_LOG_WARN("snowflaked protocol error: " << e.what());
        send_error(fd, e.code(), e.what());
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
      }
      collector.increment("service.requests");
      try {
        if (!dispatch(fd, frame, &pinned)) break;
      } catch (const WireError& e) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.protocol_errors;
        collector.increment("service.protocol_errors");
        send_error(fd, e.code(), e.what());
        break;
      }
    }
  } catch (const std::exception& e) {
    // Connection-level failure (peer vanished mid-response, ...): the
    // daemon must outlive any single client.
    SF_LOG_DEBUG("snowflaked connection dropped: " << e.what());
  }
  for (const auto& key : pinned) cache_->unpin(key);
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  open_fds_.erase(fd);
  --counters_.active_clients;
}

bool CompileService::dispatch(int fd, const Frame& frame,
                              std::vector<std::string>* pinned) {
  auto& collector = trace::TraceCollector::instance();
  switch (frame.type) {
    case CompileRequest::kTypeId:
      handle_compile(fd, frame, pinned);
      return true;
    case ExecuteRequest::kTypeId:
      handle_execute(fd, frame);
      return true;
    case StatusRequest::kTypeId:
      handle_status(fd);
      return true;
    case ReleaseRequest::kTypeId: {
      const auto req = expect_message<ReleaseRequest>(frame);
      ReleaseResponse resp;
      const auto it = std::find(pinned->begin(), pinned->end(), req.key);
      if (it != pinned->end()) {
        pinned->erase(it);
        resp.ok = cache_->unpin(req.key);
      } else {
        resp.ok = false;
        resp.error = "connection holds no pin on key " + req.key;
      }
      send_message(fd, resp);
      return true;
    }
    case PingRequest::kTypeId: {
      const auto req = expect_message<PingRequest>(frame);
      PingResponse resp;
      resp.nonce = req.nonce;
      resp.pid = static_cast<std::uint64_t>(getpid());
      send_message(fd, resp);
      return true;
    }
    case ShutdownRequest::kTypeId: {
      expect_message<ShutdownRequest>(frame);
      SF_LOG_INFO("snowflaked shutdown requested over the wire");
      ShutdownResponse resp;
      resp.ok = true;
      send_message(fd, resp);
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return false;
    }
    default: {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.protocol_errors;
      collector.increment("service.protocol_errors");
      send_error(fd, kErrUnknownType,
                 "unknown frame type " + std::to_string(frame.type));
      return false;
    }
  }
}

void CompileService::handle_compile(int fd, const Frame& frame,
                                    std::vector<std::string>* pinned) {
  auto& collector = trace::TraceCollector::instance();
  trace::Span span("service:compile", "service");
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.compile_requests;
    span.counter("queue_depth",
                 static_cast<double>(counters_.active_clients));
  }
  collector.increment("service.compile_requests");
  CompileResponse resp;
  try {
    const auto req = expect_message<CompileRequest>(frame);
    ToolchainConfig tc;
    tc.openmp = req.openmp;
    tc.extra_flags = req.extra_flags;
    const Toolchain toolchain(tc);
    if (!toolchain.available()) {
      throw ToolchainError("daemon has no host C compiler (set $SNOWFLAKE_CC "
                           "in its environment)");
    }
    if (req.pin) {
      // Pin BEFORE compiling: a pin on a not-yet-existing key protects the
      // artifact from the instant it is published, closing the window where
      // a concurrent burst could evict it between compile and response.
      const std::string key = KernelCache::key_for(req.source, toolchain);
      cache_->pin(key);
      pinned->push_back(key);
    }
    ArtifactInfo info;
    cache_->get_or_compile(req.source, toolchain, &info);
    resp.ok = true;
    resp.key = info.key;
    resp.so_path = info.so_path;
    resp.memory_hit = info.memory_hit;
    resp.disk_hit = info.disk_hit;
    resp.compiled = info.compiled;
    resp.compile_seconds = info.compile_seconds;
    resp.artifact_bytes = info.bytes;
    span.counter(info.compiled ? "compiled" : "cache_hit", 1.0);
    collector.increment(info.compiled ? "service.compiles"
                                      : "service.cache_hits");
    SF_LOG_DEBUG("snowflaked compile [" << req.client << "] group "
                 << req.group_hash << " -> " << info.key << " ("
                 << (info.compiled ? "compiled"
                     : info.disk_hit ? "disk hit" : "memory hit")
                 << ")");
  } catch (const std::exception& e) {
    resp = CompileResponse{};
    resp.ok = false;
    resp.error = e.what();
    collector.increment("service.compile_failures");
  }
  send_message(fd, resp);
}

void CompileService::handle_execute(int fd, const Frame& frame) {
  auto& collector = trace::TraceCollector::instance();
  trace::Span span("service:execute", "service");
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.execute_requests;
  }
  collector.increment("service.execute_requests");
  ExecuteResponse resp;
  try {
    const auto req = expect_message<ExecuteRequest>(frame);
    ToolchainConfig tc;
    tc.openmp = req.openmp;
    tc.extra_flags = req.extra_flags;
    const Toolchain toolchain(tc);
    ArtifactInfo info;
    const auto module = cache_->get_or_compile(req.source, toolchain, &info);
    const KernelFn fn = module->kernel(kernel_symbol());

    // Bind the client's grids in the order it sent them (kernel plan
    // order); sizes must be internally consistent.
    std::vector<double*> pointers;
    pointers.reserve(req.grids.size());
    ExecuteResponse out;
    out.grids = req.grids;
    for (auto& blob : out.grids) {
      std::uint64_t points = 1;
      for (const auto e : blob.extents) {
        points *= static_cast<std::uint64_t>(std::max<std::int64_t>(0, e));
      }
      if (points != blob.data.size()) {
        throw InvalidArgument("grid '" + blob.name + "' claims " +
                              std::to_string(points) + " points but carries " +
                              std::to_string(blob.data.size()) + " values");
      }
      pointers.push_back(blob.data.data());
    }
    const double start = trace::now_us();
    const std::uint32_t sweeps = std::max<std::uint32_t>(1, req.sweeps);
    for (std::uint32_t s = 0; s < sweeps; ++s) {
      fn(pointers.data(), req.params.data());
    }
    out.run_seconds = (trace::now_us() - start) / 1e6;
    out.ok = true;
    out.cache_hit = !info.compiled;
    resp = std::move(out);
    span.counter("sweeps", static_cast<double>(sweeps));
    collector.increment("service.executes");
  } catch (const std::exception& e) {
    resp = ExecuteResponse{};
    resp.ok = false;
    resp.error = e.what();
    collector.increment("service.execute_failures");
  }
  send_message(fd, resp);
}

void CompileService::handle_status(int fd) {
  StatusResponse resp;
  resp.protocol_version = kWireVersion;
  resp.pid = static_cast<std::uint64_t>(getpid());
  resp.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  resp.cache_dir = cache_->directory();
  resp.cache_max_bytes = cache_->max_bytes();
  const auto cs = cache_->stats();
  resp.cache_disk_bytes = cs.disk_bytes;
  resp.memory_hits = cs.memory_hits;
  resp.disk_hits = cs.disk_hits;
  resp.compiles = cs.compiles;
  resp.coalesced = cs.coalesced;
  resp.evictions = cs.evictions;
  resp.swept_stale = cs.swept_stale;
  resp.pinned_keys = cs.pinned_keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    resp.requests = counters_.requests;
    resp.rejections = counters_.rejections;
    resp.protocol_errors = counters_.protocol_errors;
    resp.active_clients = counters_.active_clients;
    resp.peak_clients = counters_.peak_clients;
  }
  send_message(fd, resp);
}

}  // namespace snowflake::service
