#pragma once
// Trace and metrics exporters.
//
// chrome_trace_json() renders the collector's spans as Chrome trace-event
// JSON ("X" complete events, microsecond timestamps) loadable in
// chrome://tracing and https://ui.perfetto.dev.  metrics_text() is the
// flat human-readable dump: global counters (JIT cache hits/misses,
// compiler invocations, ...) followed by one roofline-annotated line per
// kernel profile.  validate_trace_json() is a dependency-free JSON syntax
// checker used by the tests and tools/check_trace so the export format
// cannot silently rot.

#include <string>

namespace snowflake::trace {

/// Render all recorded spans as a Chrome trace-event JSON document.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path` (logs a warning on I/O failure).
void write_chrome_trace(const std::string& path);

/// Flat text dump: counters, then per-kernel runtime profiles annotated
/// with achieved GB/s and % of the registered STREAM roofline.
std::string metrics_text();

/// Write metrics_text() to `path`, or to stderr when `path` is "-".
void write_metrics(const std::string& path);

/// Strict-enough JSON syntax check (objects, arrays, strings, numbers,
/// literals) plus a structural check that a "traceEvents" array is
/// present.  On failure returns false and fills `*error` when non-null.
bool validate_trace_json(const std::string& json, std::string* error = nullptr);

}  // namespace snowflake::trace
