#pragma once
// Per-kernel runtime profiles: every CompiledKernel::run() feeds an entry
// here (invocations, wall seconds, modeled device seconds, and — when the
// PMU is available — hardware counter deltas) keyed by the kernel's
// human-readable label, backend, and compile-options salt.  The backend
// attaches the static cost model (DRAM bytes and flops per run, from
// roofline/traffic) at compile time, so the profile can report achieved
// GB/s two ways: modeled (static bytes / wall time) and measured (LLC
// misses x cache line size / wall time), the Figure 5 model-vs-machine
// cross-check.
//
// Accumulation is always on (one uncontended mutex lock per kernel run,
// noise next to any grid sweep); only span recording is gated by
// trace::enabled().  Consumers: trace::metrics_text(), the "Profile"
// section of report::explain_group, the $SNOWFLAKE_PERF_DB ledger
// (trace/history.hpp), and $SNOWFLAKE_METRICS.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/counters.hpp"

namespace snowflake::trace {

struct KernelProfileData {
  std::string label;    // kernel identity, e.g. "bc_x+gsrb_red+... @66x66x66"
  std::string backend;  // producing backend name
  std::string options_salt;  // hex hash of the CompileOptions that built it
  double bytes_per_run = 0.0;  // static model; 0 = unknown (e.g. reference)
  double flops_per_run = 0.0;
  std::uint64_t invocations = 0;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;  // simulated-device backends only

  // Hardware counter deltas summed over the runs that had valid readings
  // (counter_runs of them, with counter_wall_seconds of wall time); all
  // zero when the PMU is unavailable.
  std::uint64_t counter_runs = 0;
  double counter_wall_seconds = 0.0;
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = 0.0;
  double stalled_cycles = 0.0;

  /// Achieved DRAM bandwidth over all runs per the static traffic model
  /// (0 when unknown/untimed).
  double achieved_bytes_per_s() const;
  /// Achieved flop rate over all runs (0 when unknown/untimed).
  double achieved_flops_per_s() const;

  /// Measured DRAM bytes per run ~= LLC misses x cache line size (0 when
  /// the PMU was unavailable).  An approximation: it misses write-allocate
  /// traffic that hits in cache and counts speculative fills, but lands
  /// within tens of percent of the compulsory-traffic model for streaming
  /// kernels — exactly the cross-check Figure 5 wants.
  double measured_bytes_per_run() const;
  /// Measured DRAM bandwidth over the counted runs (0 without the PMU).
  double measured_bytes_per_s() const;
  /// Instructions per cycle over the counted runs (0 without the PMU).
  double ipc() const;
  /// Fraction of cycles stalled in the backend (0 without the PMU).
  double stall_fraction() const;
};

/// Pointer-stable accumulator handed to a compiled kernel.
class KernelProfile {
public:
  /// Record one run.  `counters` is the per-run delta; invalid deltas
  /// (PMU unavailable) leave the measured fields untouched.
  void record_run(double wall_seconds, double modeled_seconds,
                  const CounterValues& counters = CounterValues{});
  KernelProfileData snapshot() const;

private:
  friend class ProfileRegistry;
  KernelProfile() = default;
  mutable std::mutex mu_;
  KernelProfileData data_;
};

/// Process-wide registry of kernel profiles.
class ProfileRegistry {
public:
  static ProfileRegistry& instance();

  /// Fetch (or create) the profile for a kernel.  On creation the static
  /// cost model is stored; repeat compiles of the same label+backend+salt
  /// share one entry, so recompilation does not reset observed runs.
  KernelProfile& kernel(const std::string& label, const std::string& backend,
                        double bytes_per_run, double flops_per_run,
                        const std::string& options_salt = "");

  std::vector<KernelProfileData> snapshot() const;

  /// Total runs recorded across all profiles (cheap change detector for
  /// the ledger's flush-vs-exit dedup).
  std::uint64_t total_invocations() const;

  /// Measured STREAM bandwidth (bytes/s) used to annotate profiles with a
  /// %-of-roofline figure; 0 = not measured.
  void set_reference_bandwidth(double bytes_per_s);
  double reference_bandwidth() const;

  /// Drop all profiles (tests).  The reference bandwidth is kept.
  void clear();

private:
  ProfileRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<KernelProfile>> profiles_;
  double reference_bw_ = 0.0;
};

}  // namespace snowflake::trace
