#pragma once
// Per-kernel runtime profiles: every CompiledKernel::run() feeds an entry
// here (invocations, wall seconds, modeled device seconds) keyed by the
// kernel's human-readable label and backend.  The backend attaches the
// static cost model (DRAM bytes and flops per run, from roofline/traffic)
// at compile time, so the profile can report achieved GB/s and — when a
// measured STREAM bandwidth has been registered — the fraction of the
// roofline actually reached.
//
// Accumulation is always on (one uncontended mutex lock per kernel run,
// noise next to any grid sweep); only span recording is gated by
// trace::enabled().  Consumers: trace::metrics_text(), the "Profile"
// section of report::explain_group, and $SNOWFLAKE_METRICS.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snowflake::trace {

struct KernelProfileData {
  std::string label;    // kernel identity, e.g. "bc_x+gsrb_red+... @66x66x66"
  std::string backend;  // producing backend name
  double bytes_per_run = 0.0;  // static model; 0 = unknown (e.g. reference)
  double flops_per_run = 0.0;
  std::uint64_t invocations = 0;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;  // simulated-device backends only

  /// Achieved DRAM bandwidth over all runs (0 when unknown/untimed).
  double achieved_bytes_per_s() const;
  /// Achieved flop rate over all runs (0 when unknown/untimed).
  double achieved_flops_per_s() const;
};

/// Pointer-stable accumulator handed to a compiled kernel.
class KernelProfile {
public:
  void record_run(double wall_seconds, double modeled_seconds);
  KernelProfileData snapshot() const;

private:
  friend class ProfileRegistry;
  KernelProfile() = default;
  mutable std::mutex mu_;
  KernelProfileData data_;
};

/// Process-wide registry of kernel profiles.
class ProfileRegistry {
public:
  static ProfileRegistry& instance();

  /// Fetch (or create) the profile for a kernel.  On creation the static
  /// cost model is stored; repeat compiles of the same label+backend
  /// share one entry, so recompilation does not reset observed runs.
  KernelProfile& kernel(const std::string& label, const std::string& backend,
                        double bytes_per_run, double flops_per_run);

  std::vector<KernelProfileData> snapshot() const;

  /// Measured STREAM bandwidth (bytes/s) used to annotate profiles with a
  /// %-of-roofline figure; 0 = not measured.
  void set_reference_bandwidth(double bytes_per_s);
  double reference_bandwidth() const;

  /// Drop all profiles (tests).  The reference bandwidth is kept.
  void clear();

private:
  ProfileRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<KernelProfile>> profiles_;
  double reference_bw_ = 0.0;
};

}  // namespace snowflake::trace
