#include "trace/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "trace/history.hpp"
#include "trace/profile.hpp"

namespace snowflake::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

/// Per-thread state: dense thread number and the stack of open span ids
/// (spans are lexically scoped, so LIFO per thread holds by construction).
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid = next.fetch_add(1);
  return tid;
}

thread_local std::vector<std::uint64_t> t_open_spans;

/// Exit-time outputs, set by env vars or enable_* calls.
struct ExitActions {
  std::mutex mu;
  std::string trace_path;   // empty = no trace file
  std::string metrics_path; // empty = no dump; "-" = stderr
};

ExitActions& exit_actions() {
  static ExitActions actions;
  return actions;
}

/// Reads $SNOWFLAKE_TRACE / $SNOWFLAKE_METRICS at static-initialization
/// time and flushes the requested outputs at static-destruction time.
/// The constructor touches the collector and profile registry first so
/// they outlive this object (destroyed after it, constructed before its
/// construction completes).
struct EnvInit {
  EnvInit() {
    TraceCollector::instance();
    ProfileRegistry::instance();
    // Probe the hardware counter group now, before any OpenMP runtime has
    // spawned worker threads: perf_event inherit only covers threads
    // created after the events are opened.
    CounterGroup::instance();
    if (const char* p = std::getenv("SNOWFLAKE_TRACE"); p != nullptr && *p) {
      enable_trace_file(p);
    }
    if (const char* m = std::getenv("SNOWFLAKE_METRICS"); m != nullptr && *m &&
        std::strcmp(m, "0") != 0) {
      std::lock_guard<std::mutex> lock(exit_actions().mu);
      exit_actions().metrics_path = std::strcmp(m, "1") == 0 ? "-" : m;
    }
  }
  ~EnvInit() { flush(); }
};

EnvInit g_env_init;

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void enable_trace_file(std::string path) {
  {
    std::lock_guard<std::mutex> lock(exit_actions().mu);
    exit_actions().trace_path = std::move(path);
  }
  set_enabled(true);
}

void enable_metrics_dump() {
  std::lock_guard<std::mutex> lock(exit_actions().mu);
  exit_actions().metrics_path = "-";
}

void flush() {
  std::string trace_path, metrics_path;
  {
    std::lock_guard<std::mutex> lock(exit_actions().mu);
    trace_path = exit_actions().trace_path;
    metrics_path = exit_actions().metrics_path;
  }
  if (!trace_path.empty()) write_chrome_trace(trace_path);
  if (!metrics_path.empty()) write_metrics(metrics_path);
  append_process_profiles();  // $SNOWFLAKE_PERF_DB; no-op when unset/stale
}

double now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

std::uint64_t TraceCollector::begin(std::string name, std::string category) {
  const double start = now_us();
  const std::uint32_t tid = this_thread_id();
  const std::uint64_t parent = t_open_spans.empty() ? 0 : t_open_spans.back();
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    SpanRecord rec;
    rec.id = id;
    rec.parent = parent;
    rec.name = std::move(name);
    rec.category = std::move(category);
    rec.start_us = start;
    rec.tid = tid;
    spans_.push_back(std::move(rec));
  }
  t_open_spans.push_back(id);
  return id;
}

void TraceCollector::end(std::uint64_t id,
                         std::vector<std::pair<std::string, double>> counters) {
  const double end_us = now_us();
  if (!t_open_spans.empty() && t_open_spans.back() == id) t_open_spans.pop_back();
  std::lock_guard<std::mutex> lock(mu_);
  // Spans close in near-LIFO order, so scanning backwards is O(1) in the
  // common case.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id == id) {
      it->dur_us = end_us - it->start_us;
      it->counters = std::move(counters);
      return;
    }
  }
}

void TraceCollector::increment(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<SpanRecord> TraceCollector::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, double> TraceCollector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t TraceCollector::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  counters_.clear();
}

Span::Span(const char* name, const char* category) {
  if (enabled()) id_ = TraceCollector::instance().begin(name, category);
}

Span::Span(const std::string& name, const char* category) {
  if (enabled()) id_ = TraceCollector::instance().begin(name, category);
}

Span::Span(std::string&& name, const char* category) {
  if (enabled()) {
    id_ = TraceCollector::instance().begin(std::move(name), category);
  }
}

Span::~Span() {
  if (id_ != 0) TraceCollector::instance().end(id_, std::move(counters_));
}

void Span::counter(const char* name, double value) {
  if (id_ != 0) counters_.emplace_back(name, value);
}

}  // namespace snowflake::trace
