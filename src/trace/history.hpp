#pragma once
// Persistent performance ledger: an append-only JSON-lines file (one flat
// object per line, schema "snowflake-perf-v1") accumulating measured
// kernel performance across process lifetimes.  Entries are keyed by
// (kernel key hash, machine fingerprint id, backend, compile-options
// salt) so the same kernel on the same machine forms a comparable time
// series; tools/snowreport renders trends from it and tools/check_bench
// --history gates fresh runs against the rolling median instead of a
// single fixture file.
//
// Two entry kinds share the schema:
//   kind=kernel  one line per kernel profile with runs, appended at
//                process exit (and by trace::flush()) when
//                $SNOWFLAKE_PERF_DB names the ledger file.  `seconds` is
//                per-run wall time; counter fields are per-run averages.
//   kind=bench   one line per bench --json row (JsonReport appends them
//                alongside the report file).  `seconds` is the row's
//                best-of-N.
//
// Atomicity: appends are staged into one memory buffer of whole lines and
// committed with a single write(2) on an O_APPEND descriptor, the append
// analogue of the KernelCache tmp+rename publish — concurrent writers
// (two benches sharing one ledger) interleave at line granularity only,
// never mid-line, so every line always parses.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/profile.hpp"

namespace snowflake::trace {

/// One parsed ledger line: flat string and number fields.
struct LedgerEntry {
  std::map<std::string, std::string> text;
  std::map<std::string, double> num;

  const std::string& str(const std::string& key) const;
  double number(const std::string& key, double dflt = 0.0) const;
};

/// Append-side handle on a ledger file.
class PerfLedger {
public:
  explicit PerfLedger(std::string path);

  const std::string& path() const { return path_; }

  /// Append whole JSON lines (no trailing newline needed) in one atomic
  /// write.  Returns false (and fills *error) on I/O failure.
  bool append(const std::vector<std::string>& json_lines,
              std::string* error = nullptr);

  /// Parse a ledger file into entries (file order = append order).
  /// Unparseable lines are counted in *skipped (when non-null) and
  /// dropped, so a torn tail never hides the rest of the history.
  static bool load(const std::string& path, std::vector<LedgerEntry>* out,
                   std::string* error = nullptr, int* skipped = nullptr);

private:
  std::string path_;
};

/// Parse one flat JSON object line into *out (strings and numbers only —
/// the ledger schema is flat by construction).  Returns false on
/// malformed input.
bool parse_ledger_line(const std::string& line, LedgerEntry* out);

/// $SNOWFLAKE_PERF_DB, or "" when the ledger is disabled.
std::string perf_db_path();

/// Render one kernel profile as a kind=kernel ledger line (includes the
/// machine fingerprint and the current roofline reference bandwidth).
std::string ledger_line(const KernelProfileData& profile);

/// Render one bench row as a kind=bench ledger line.
std::string bench_ledger_line(const std::string& label, double seconds,
                              double gbps, double roofline_pct);

/// Append every profile with recorded runs to $SNOWFLAKE_PERF_DB.  No-op
/// when the env var is unset or when nothing ran since the last append
/// (so trace::flush() followed by process exit writes once, not twice).
void append_process_profiles();

/// Median of `values` (0 when empty).  Callers pass the trailing window.
double median(std::vector<double> values);

}  // namespace snowflake::trace
