#pragma once
// Hardware performance counters via perf_event_open(2): cycles,
// instructions, last-level-cache misses, and stalled backend cycles,
// sampled around every CompiledKernel::run() and folded into the kernel's
// runtime profile as measured-vs-modeled fields (measured DRAM bytes ~=
// LLC misses x cache line size, cross-checked against the static traffic
// model).
//
// The probe runs once, at first use: each event is opened as its own fd
// (inherit=1 so OpenMP worker threads spawned later are counted,
// exclude_kernel/hv so no privilege is needed) and scaled by its
// enabled/running times when the kernel multiplexes the PMU.  When the
// cycle counter cannot be opened at all — containers, VMs without a
// virtualized PMU, perf_event_paranoid, seccomp — the whole group reports
// unavailable() and every consumer silently falls back to wall-clock-only
// numbers.  SNOWFLAKE_NO_PMU=1 forces the fallback (CI exercises it).

#include <string>

namespace snowflake::trace {

/// One cumulative (or delta) counter reading.  All values are scaled for
/// PMU multiplexing; a field is 0 when its event could not be opened.
struct CounterValues {
  double cycles = 0.0;
  double instructions = 0.0;
  double llc_misses = 0.0;
  double stalled_cycles = 0.0;
  bool valid = false;  // false = counters unavailable, ignore the fields

  /// Delta of two cumulative readings (valid only when both are).
  CounterValues operator-(const CounterValues& start) const;
};

/// The process-wide counter group.  Constructible directly for tests
/// (re-runs the probe, honouring the environment at construction time);
/// everything else uses instance().
class CounterGroup {
public:
  /// Env var that forces the PMU-unavailable fallback when set non-empty.
  static constexpr const char* kDisableEnv = "SNOWFLAKE_NO_PMU";

  CounterGroup();
  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  static CounterGroup& instance();

  /// True when at least the cycle counter opened.
  bool available() const { return available_; }

  /// Why the probe failed ("" when available()).
  const std::string& unavailable_reason() const { return reason_; }

  /// Cumulative scaled readings since construction; .valid=false (all
  /// zeros) when unavailable — callers need no separate availability
  /// check around read()/subtract.
  CounterValues read() const;

private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
  bool available_ = false;
  std::string reason_;
};

}  // namespace snowflake::trace
