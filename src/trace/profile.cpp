#include "trace/profile.hpp"

#include "support/fingerprint.hpp"

namespace snowflake::trace {

double KernelProfileData::achieved_bytes_per_s() const {
  if (wall_seconds <= 0.0 || bytes_per_run <= 0.0) return 0.0;
  return bytes_per_run * static_cast<double>(invocations) / wall_seconds;
}

double KernelProfileData::achieved_flops_per_s() const {
  if (wall_seconds <= 0.0 || flops_per_run <= 0.0) return 0.0;
  return flops_per_run * static_cast<double>(invocations) / wall_seconds;
}

double KernelProfileData::measured_bytes_per_run() const {
  if (counter_runs == 0 || llc_misses <= 0.0) return 0.0;
  return llc_misses * static_cast<double>(cache_line_bytes()) /
         static_cast<double>(counter_runs);
}

double KernelProfileData::measured_bytes_per_s() const {
  if (counter_wall_seconds <= 0.0 || llc_misses <= 0.0) return 0.0;
  return llc_misses * static_cast<double>(cache_line_bytes()) /
         counter_wall_seconds;
}

double KernelProfileData::ipc() const {
  if (cycles <= 0.0 || instructions <= 0.0) return 0.0;
  return instructions / cycles;
}

double KernelProfileData::stall_fraction() const {
  if (cycles <= 0.0 || stalled_cycles <= 0.0) return 0.0;
  return stalled_cycles / cycles;
}

void KernelProfile::record_run(double wall_seconds, double modeled_seconds,
                               const CounterValues& counters) {
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.invocations;
  data_.wall_seconds += wall_seconds;
  data_.modeled_seconds += modeled_seconds;
  if (counters.valid) {
    ++data_.counter_runs;
    data_.counter_wall_seconds += wall_seconds;
    data_.cycles += counters.cycles;
    data_.instructions += counters.instructions;
    data_.llc_misses += counters.llc_misses;
    data_.stalled_cycles += counters.stalled_cycles;
  }
}

KernelProfileData KernelProfile::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

ProfileRegistry& ProfileRegistry::instance() {
  static ProfileRegistry registry;
  return registry;
}

KernelProfile& ProfileRegistry::kernel(const std::string& label,
                                       const std::string& backend,
                                       double bytes_per_run,
                                       double flops_per_run,
                                       const std::string& options_salt) {
  const std::string key = label + "\x1f" + backend + "\x1f" + options_salt;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = profiles_[key];
  if (slot == nullptr) {
    slot.reset(new KernelProfile());
    slot->data_.label = label;
    slot->data_.backend = backend;
    slot->data_.options_salt = options_salt;
    slot->data_.bytes_per_run = bytes_per_run;
    slot->data_.flops_per_run = flops_per_run;
  }
  return *slot;
}

std::vector<KernelProfileData> ProfileRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KernelProfileData> out;
  out.reserve(profiles_.size());
  for (const auto& [key, profile] : profiles_) out.push_back(profile->snapshot());
  return out;
}

std::uint64_t ProfileRegistry::total_invocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, profile] : profiles_) {
    total += profile->snapshot().invocations;
  }
  return total;
}

void ProfileRegistry::set_reference_bandwidth(double bytes_per_s) {
  std::lock_guard<std::mutex> lock(mu_);
  reference_bw_ = bytes_per_s;
}

double ProfileRegistry::reference_bandwidth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reference_bw_;
}

void ProfileRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
}

}  // namespace snowflake::trace
