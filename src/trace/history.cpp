#include "trace/history.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>

#include "support/fingerprint.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/string_util.hpp"

namespace snowflake::trace {

namespace {

const std::string kEmpty;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void field(std::string& out, const char* key, const std::string& value) {
  out += out.empty() ? "{\"" : ",\"";
  out += key;
  out += "\":\"";
  out += escape(value);
  out += '"';
}

void field(std::string& out, const char* key, double value) {
  out += out.empty() ? "{\"" : ",\"";
  out += key;
  out += "\":";
  // Locale-independent shortest round-trip (see support/string_util.hpp):
  // printf %g under a comma-decimal global locale breaks the reload.
  out += format_double_compact(value);
}

/// Common head of every ledger line: schema, kind, timestamp, machine.
std::string line_head(const char* kind) {
  std::string out;
  field(out, "schema", std::string("snowflake-perf-v1"));
  field(out, "kind", std::string(kind));
  field(out, "ts", static_cast<double>(std::time(nullptr)));
  field(out, "machine", fingerprint().id);
  return out;
}

}  // namespace

const std::string& LedgerEntry::str(const std::string& key) const {
  const auto it = text.find(key);
  return it == text.end() ? kEmpty : it->second;
}

double LedgerEntry::number(const std::string& key, double dflt) const {
  const auto it = num.find(key);
  return it == num.end() ? dflt : it->second;
}

bool parse_ledger_line(const std::string& line, LedgerEntry* out) {
  // Flat object scanner: {"key":"string"|number, ...}.  The ledger never
  // nests, so this stays dependency-free like the other repo parsers.
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };
  auto parse_string = [&](std::string* s) {
    if (pos >= line.size() || line[pos] != '"') return false;
    ++pos;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
      *s += line[pos++];
    }
    if (pos >= line.size()) return false;
    ++pos;  // closing quote
    return true;
  };
  skip_ws();
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_ws();
  if (pos < line.size() && line[pos] == '}') return true;
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_ws();
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    skip_ws();
    if (pos >= line.size()) return false;
    if (line[pos] == '"') {
      std::string value;
      if (!parse_string(&value)) return false;
      out->text[key] = std::move(value);
    } else {
      double value = 0.0;
      const char* begin = line.c_str() + pos;
      const char* end = parse_double(begin, line.c_str() + line.size(), &value);
      if (end == begin) return false;
      out->num[key] = value;
      pos = static_cast<size_t>(end - line.c_str());
    }
    skip_ws();
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < line.size() && line[pos] == '}') return true;
    return false;
  }
}

PerfLedger::PerfLedger(std::string path) : path_(std::move(path)) {}

bool PerfLedger::append(const std::vector<std::string>& json_lines,
                        std::string* error) {
  if (json_lines.empty()) return true;
  std::string batch;
  for (const auto& line : json_lines) {
    batch += line;
    batch += '\n';
  }
  // One O_APPEND write(2) for the whole batch: the kernel serializes
  // appends per inode, so concurrent processes interleave at batch
  // granularity — a reader never sees a torn line.
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open ledger '" + path_ + "': " + std::strerror(errno);
    }
    return false;
  }
  size_t written = 0;
  bool ok = true;
  while (written < batch.size()) {
    const ssize_t n =
        ::write(fd, batch.data() + written, batch.size() - written);
    if (n <= 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "short write to ledger '" + path_ + "': " +
                 std::strerror(errno);
      }
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return ok;
}

bool PerfLedger::load(const std::string& path, std::vector<LedgerEntry>* out,
                      std::string* error, int* skipped) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open ledger '" + path + "'";
    return false;
  }
  int bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    LedgerEntry entry;
    if (parse_ledger_line(line, &entry) &&
        entry.str("schema") == "snowflake-perf-v1") {
      out->push_back(std::move(entry));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return true;
}

std::string perf_db_path() {
  const char* env = std::getenv("SNOWFLAKE_PERF_DB");
  return env != nullptr && *env ? std::string(env) : std::string();
}

std::string ledger_line(const KernelProfileData& p) {
  std::string out = line_head("kernel");
  field(out, "label", p.label);
  field(out, "backend", p.backend);
  field(out, "options", p.options_salt);
  // The ledger key: what snowreport and check_bench group a time series
  // by.  Hashes the kernel identity (label covers stencil names + shape),
  // the backend, and the options salt; the machine id is a separate field.
  field(out, "key",
        hash_hex(fnv1a64(p.label + "\x1e" + p.backend + "\x1e" +
                         p.options_salt)));
  const double runs = static_cast<double>(p.invocations);
  field(out, "invocations", runs);
  field(out, "seconds", runs > 0 ? p.wall_seconds / runs : 0.0);
  field(out, "modeled_bytes", p.bytes_per_run);
  field(out, "flops", p.flops_per_run);
  field(out, "gbps", p.achieved_bytes_per_s() / 1e9);
  const double roof = ProfileRegistry::instance().reference_bandwidth();
  field(out, "roofline_pct",
        roof > 0 ? 100.0 * p.achieved_bytes_per_s() / roof : 0.0);
  field(out, "counters", p.counter_runs > 0 ? 1.0 : 0.0);
  if (p.counter_runs > 0) {
    const double cruns = static_cast<double>(p.counter_runs);
    field(out, "measured_bytes", p.measured_bytes_per_run());
    field(out, "measured_gbps", p.measured_bytes_per_s() / 1e9);
    field(out, "cycles", p.cycles / cruns);
    field(out, "instructions", p.instructions / cruns);
    field(out, "llc_misses", p.llc_misses / cruns);
    field(out, "stalled_cycles", p.stalled_cycles / cruns);
  }
  out += '}';
  return out;
}

std::string bench_ledger_line(const std::string& label, double seconds,
                              double gbps, double roofline_pct) {
  std::string out = line_head("bench");
  field(out, "label", label);
  field(out, "backend", std::string("bench"));
  field(out, "key", hash_hex(fnv1a64(label + "\x1e" + "bench")));
  field(out, "seconds", seconds);
  field(out, "gbps", gbps);
  field(out, "roofline_pct", roofline_pct);
  out += '}';
  return out;
}

void append_process_profiles() {
  const std::string path = perf_db_path();
  if (path.empty()) return;
  // flush() + exit must not double-write identical history: remember how
  // many runs had been recorded at the last append and skip when nothing
  // new happened.
  static std::mutex mu;
  static std::uint64_t last_total = ~std::uint64_t{0};
  std::lock_guard<std::mutex> lock(mu);
  const std::uint64_t total = ProfileRegistry::instance().total_invocations();
  if (total == last_total) return;
  std::vector<std::string> lines;
  for (const auto& p : ProfileRegistry::instance().snapshot()) {
    if (p.invocations == 0) continue;
    lines.push_back(ledger_line(p));
  }
  if (lines.empty()) return;
  std::string error;
  PerfLedger ledger(path);
  if (!ledger.append(lines, &error)) {
    SF_LOG_WARN("perf ledger append failed: " << error);
    return;
  }
  last_total = total;
  SF_LOG_DEBUG("appended " << lines.size() << " profile(s) to perf ledger "
                           << path);
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace snowflake::trace
