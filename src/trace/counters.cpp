#include "trace/counters.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "support/logging.hpp"

namespace snowflake::trace {

CounterValues CounterValues::operator-(const CounterValues& start) const {
  CounterValues d;
  d.valid = valid && start.valid;
  if (!d.valid) return d;
  d.cycles = cycles - start.cycles;
  d.instructions = instructions - start.instructions;
  d.llc_misses = llc_misses - start.llc_misses;
  d.stalled_cycles = stalled_cycles - start.stalled_cycles;
  return d;
}

#if defined(__linux__)

namespace {

constexpr std::uint64_t kConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,  // last-level cache misses
    PERF_COUNT_HW_STALLED_CYCLES_BACKEND,
};

int open_event(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.inherit = 1;  // count OpenMP worker threads spawned after the probe
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // inherit forbids PERF_FORMAT_GROUP, so each event is its own fd and
  // carries its own multiplexing times.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

/// Read one fd's {value, time_enabled, time_running} and scale for
/// multiplexing.  Returns 0 on any read problem.
double read_scaled(int fd) {
  if (fd < 0) return 0.0;
  std::uint64_t buf[3] = {0, 0, 0};
  if (::read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
    return 0.0;
  }
  if (buf[2] == 0) return 0.0;  // never scheduled
  return static_cast<double>(buf[0]) *
         (static_cast<double>(buf[1]) / static_cast<double>(buf[2]));
}

}  // namespace

CounterGroup::CounterGroup() {
  if (const char* off = std::getenv(kDisableEnv); off != nullptr && *off &&
      std::strcmp(off, "0") != 0) {
    reason_ = "disabled by SNOWFLAKE_NO_PMU";
    return;
  }
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = open_event(kConfigs[i]);
    if (i == 0 && fds_[0] < 0) {
      // No cycle counter, no PMU: report why once and fall back.
      reason_ = std::string("perf_event_open(cycles): ") + std::strerror(errno);
      SF_LOG_INFO("hardware counters unavailable (" << reason_
                  << "); profiles fall back to wall-clock only");
      return;
    }
  }
  available_ = true;
  SF_LOG_DEBUG("hardware counter group open (cycles"
               << (fds_[1] >= 0 ? ", instructions" : "")
               << (fds_[2] >= 0 ? ", llc-misses" : "")
               << (fds_[3] >= 0 ? ", stalled-backend" : "") << ")");
}

CounterGroup::~CounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

CounterValues CounterGroup::read() const {
  CounterValues v;
  if (!available_) return v;
  v.cycles = read_scaled(fds_[0]);
  v.instructions = read_scaled(fds_[1]);
  v.llc_misses = read_scaled(fds_[2]);
  v.stalled_cycles = read_scaled(fds_[3]);
  v.valid = true;
  return v;
}

#else  // !__linux__

CounterGroup::CounterGroup() {
  reason_ = "perf_event_open is Linux-only";
}

CounterGroup::~CounterGroup() = default;

CounterValues CounterGroup::read() const { return CounterValues{}; }

#endif

CounterGroup& CounterGroup::instance() {
  static CounterGroup group;
  return group;
}

}  // namespace snowflake::trace
