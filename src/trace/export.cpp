#include "trace/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hpp"
#include "support/string_util.hpp"
#include "trace/counters.hpp"
#include "trace/profile.hpp"
#include "trace/trace.hpp"

namespace snowflake::trace {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Locale-independent fixed notation: printf %f under a comma-decimal
  // global locale would emit invalid JSON.
  out += format_double_fixed(v, 3);
}

}  // namespace

std::string chrome_trace_json() {
  const std::vector<SpanRecord> spans = TraceCollector::instance().spans();
  const double now = now_us();

  std::string out;
  out.reserve(spans.size() * 160 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.category.empty() ? "default" : span.category);
    out += ",\"ph\":\"X\",\"ts\":";
    append_number(out, span.start_us);
    out += ",\"dur\":";
    // A span still open at export time (e.g. the process is exiting inside
    // it) is clamped to "until now" rather than dropped.
    append_number(out, span.dur_us >= 0.0 ? span.dur_us : now - span.start_us);
    out += ",\"pid\":1,\"tid\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u", span.tid);
    out += buf;
    if (!span.counters.empty() || span.parent != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (span.parent != 0) {
        out += "\"parent_span\":";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, span.parent);
        out += buf;
        first_arg = false;
      }
      for (const auto& [name, value] : span.counters) {
        if (!first_arg) out += ',';
        first_arg = false;
        append_json_string(out, name);
        out += ':';
        append_number(out, value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SF_LOG_WARN("cannot write trace file '" << path << "'");
    return;
  }
  out << chrome_trace_json();
  SF_LOG_INFO("wrote " << TraceCollector::instance().span_count()
                       << " trace spans to " << path);
}

std::string metrics_text() {
  std::ostringstream os;
  os << "== snowflake metrics ==\n";

  const auto& pmu = CounterGroup::instance();
  if (pmu.available()) {
    os << "hardware counters: available (cycles, instructions, llc-misses, "
          "stalled-backend)\n";
  } else {
    os << "hardware counters: unavailable (" << pmu.unavailable_reason()
       << ")\n";
  }

  const auto counters = TraceCollector::instance().counters();
  os << "counters (" << counters.size() << "):\n";
  for (const auto& [name, value] : counters) {
    os << "  " << name << " = " << value << "\n";
  }

  const auto profiles = ProfileRegistry::instance().snapshot();
  const double roof = ProfileRegistry::instance().reference_bandwidth();
  os << "kernels (" << profiles.size() << "):\n";
  for (const auto& p : profiles) {
    os << "  [" << p.backend << "] " << p.label << ": " << p.invocations
       << " runs";
    if (p.invocations == 0) {
      os << " (compiled, never run)\n";
      continue;
    }
    os << ", " << p.wall_seconds << " s wall ("
       << p.wall_seconds / static_cast<double>(p.invocations) * 1e3
       << " ms/run)";
    if (p.modeled_seconds > 0.0) os << ", " << p.modeled_seconds << " s modeled";
    if (const double bw = p.achieved_bytes_per_s(); bw > 0.0) {
      os << ", " << bw / 1e9 << " GB/s modeled";
      if (roof > 0.0) os << " (" << 100.0 * bw / roof << "% of roofline)";
    }
    if (const double fl = p.achieved_flops_per_s(); fl > 0.0) {
      os << ", " << fl / 1e9 << " Gflop/s";
    }
    // Measured-vs-modeled cross-check: LLC-miss DRAM bytes next to the
    // static traffic model for the same runs.
    if (p.counter_runs > 0) {
      os << ", measured " << p.measured_bytes_per_s() / 1e9 << " GB/s ("
         << static_cast<long long>(p.measured_bytes_per_run())
         << " B/run vs model "
         << static_cast<long long>(p.bytes_per_run) << "), ipc " << p.ipc()
         << ", stalled " << 100.0 * p.stall_fraction() << "%";
    }
    os << "\n";
  }
  if (roof > 0.0) {
    os << "roofline reference bandwidth: " << roof / 1e9 << " GB/s\n";
  }
  return os.str();
}

void write_metrics(const std::string& path) {
  const std::string text = metrics_text();
  if (path == "-") {
    std::fputs(text.c_str(), stderr);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SF_LOG_WARN("cannot write metrics file '" << path << "'");
    return;
  }
  out << text;
}

// --- minimal JSON syntax checker ------------------------------------------

namespace {

struct JsonScanner {
  const std::string& s;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  bool value() {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    const char c = s[pos];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  bool literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (s.compare(pos, len, word) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool number() {
    const size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' || s[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("empty number");
    return true;
  }

  bool string() {
    ++pos;  // opening quote
    while (pos < s.size()) {
      const char c = s[pos];
      if (c == '\\') {
        pos += 2;
        continue;
      }
      if (c == '"') {
        ++pos;
        return true;
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos >= s.size() || s[pos] != '"') return fail("expected object key");
      if (!string()) return false;
      skip_ws();
      if (pos >= s.size() || s[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool validate_trace_json(const std::string& json, std::string* error) {
  JsonScanner scanner{json, 0, {}};
  if (!scanner.value()) {
    if (error != nullptr) *error = scanner.error;
    return false;
  }
  scanner.skip_ws();
  if (scanner.pos != json.size()) {
    if (error != nullptr) *error = "trailing garbage after JSON document";
    return false;
  }
  if (json.find("\"traceEvents\"") == std::string::npos) {
    if (error != nullptr) *error = "missing \"traceEvents\" array";
    return false;
  }
  return true;
}

}  // namespace snowflake::trace
