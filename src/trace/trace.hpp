#pragma once
// Process-wide tracing: RAII spans with nesting and thread attribution,
// recorded into a lock-protected in-memory collector, plus named global
// counters.  This is the observability backbone behind the paper's Figure 5
// workflow — the platform expert can watch what the micro-compilers and the
// runtime actually did, not just what the static analysis promised.
//
// Activation:
//   SNOWFLAKE_TRACE=out.json   enable tracing; write a Chrome trace-event
//                              JSON (chrome://tracing / Perfetto) at exit.
//   SNOWFLAKE_METRICS=1        dump the flat metrics text to stderr at exit
//                              (any other non-empty value is a file path).
//   trace::set_enabled(true)   programmatic activation (tests, tools).
//
// Cost when off: every Span construction is a single relaxed atomic load;
// no strings are built, nothing is locked, nothing is recorded.  See
// docs/observability.md for the span taxonomy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace snowflake::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True when span recording is active.  Relaxed: callers only use it to
/// skip work, never for synchronization.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn span recording on/off programmatically.
void set_enabled(bool on);

/// Enable tracing and write the Chrome trace JSON to `path` at process
/// exit (the same mechanism $SNOWFLAKE_TRACE uses).
void enable_trace_file(std::string path);

/// Dump the flat metrics text to stderr at process exit (the same
/// mechanism $SNOWFLAKE_METRICS uses).
void enable_metrics_dump();

/// Write every registered output now, mid-run: the Chrome trace file, the
/// metrics dump, and the $SNOWFLAKE_PERF_DB ledger append.  The exit-time
/// writers still run (the trace/metrics files are simply rewritten with
/// more spans; the ledger append is skipped unless new runs happened), so
/// a long job can checkpoint its observability output and lose nothing if
/// it later dies on a signal.  No-op for outputs that were never enabled.
void flush();

/// Monotonic microseconds since the process trace epoch.
double now_us();

/// One finished (or still-open) span as recorded by the collector.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = top-level
  std::string name;
  std::string category;
  double start_us = 0.0;
  double dur_us = -1.0;  // < 0 while still open
  std::uint32_t tid = 0;  // dense per-process thread number (0 = first)
  std::vector<std::pair<std::string, double>> counters;
};

/// Lock-protected in-memory span + counter store (process-wide singleton).
class TraceCollector {
public:
  static TraceCollector& instance();

  /// Begin a span; returns its id.  Parent is the innermost open span on
  /// the calling thread.
  std::uint64_t begin(std::string name, std::string category);

  /// Close span `id`, attaching `counters` to it.
  void end(std::uint64_t id,
           std::vector<std::pair<std::string, double>> counters);

  /// Add `delta` to the named global counter (creates it at 0).  Always
  /// available, independent of span recording.
  void increment(const std::string& name, double delta = 1.0);

  /// Snapshots (copies, safe to inspect while tracing continues).
  std::vector<SpanRecord> spans() const;
  std::map<std::string, double> counters() const;
  std::size_t span_count() const;

  /// Drop all recorded spans and counters (tests).
  void clear();

private:
  TraceCollector() = default;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, double> counters_;
  std::uint64_t next_id_ = 1;
};

/// RAII span.  Inactive (a single relaxed load, no allocation) when
/// tracing is off at construction time.  Not copyable or movable: spans
/// delimit a lexical scope on one thread.
class Span {
public:
  /// `name` is copied only when tracing is on; for dynamic names build the
  /// string under an `enabled()` check:
  ///   trace::Span s(trace::enabled() ? "run:" + label : std::string(), "run");
  Span(const char* name, const char* category = "");
  Span(const std::string& name, const char* category = "");
  Span(std::string&& name, const char* category = "");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a named value to this span (shows up under "args" in the
  /// Chrome trace).  No-op when the span is inactive.
  void counter(const char* name, double value);

  bool active() const { return id_ != 0; }

private:
  std::uint64_t id_ = 0;  // 0 = inactive
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace snowflake::trace
