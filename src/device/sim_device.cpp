#include "device/sim_device.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace snowflake {

DeviceSpec DeviceSpec::k20c() {
  DeviceSpec spec;
  spec.name = "K20c (modeled)";
  spec.bandwidth_bytes_per_s = 127e9;  // paper: ERT bandwidth ~127 GB/s
  spec.peak_flops = 1.17e12;           // DP peak
  spec.compute_units = 13;             // SMX count
  spec.launch_overhead_s = 8e-6;       // typical CUDA/OpenCL launch latency
  spec.workgroup_cost_s = 0.4e-6;      // per-workgroup scheduling cost
  return spec;
}

DeviceSpec DeviceSpec::host(double measured_bandwidth_bytes_per_s, int threads) {
  DeviceSpec spec;
  spec.name = "host (modeled)";
  spec.bandwidth_bytes_per_s = measured_bandwidth_bytes_per_s;
  spec.peak_flops = 8e9 * threads;  // nominal; CPU stencils are BW-bound
  spec.compute_units = std::max(1, threads);
  spec.launch_overhead_s = 1e-6;
  spec.workgroup_cost_s = 0.2e-6;
  return spec;
}

SimDevice::SimDevice(DeviceSpec spec) : spec_(std::move(spec)) {
  SF_REQUIRE(spec_.bandwidth_bytes_per_s > 0, "device bandwidth must be > 0");
  SF_REQUIRE(spec_.peak_flops > 0, "device peak flops must be > 0");
  SF_REQUIRE(spec_.compute_units >= 1, "device needs >= 1 compute unit");
}

double SimDevice::dispatch_seconds(const DispatchStats& stats) const {
  const double eff = std::clamp(stats.efficiency, 0.01, 1.0);
  const double mem_time =
      stats.bytes / (spec_.bandwidth_bytes_per_s * eff);
  const double flop_time = stats.flops / spec_.peak_flops;
  const double sched_time =
      static_cast<double>((stats.workgroups + spec_.compute_units - 1) /
                          spec_.compute_units) *
      spec_.workgroup_cost_s;
  return spec_.launch_overhead_s +
         std::max({mem_time, flop_time, sched_time});
}

}  // namespace snowflake
