#pragma once
// Simulated OpenCL-class accelerator.
//
// SUBSTITUTION (see DESIGN.md): the paper evaluates its OpenCL backend on
// an NVIDIA K20c.  No GPU exists in this environment, so the OpenCL-style
// backend executes its NDRange work-groups *functionally* on the host
// (preserving and testing the generated-code semantics) while this device
// model supplies the *timing*: an analytic roofline-plus-overheads model
// parameterized to the K20c the paper used.  Every number derived from it
// is labeled "modeled" in benchmark output.
//
// Timing model per kernel dispatch:
//   t = launch_overhead
//     + max(bytes / (bandwidth * efficiency),
//           flops / peak_flops,
//           ceil(workgroups / compute_units) * workgroup_cost)
// where `efficiency` captures coalescing quality of the dispatch (strided
// innermost accesses and skinny tiles waste bus width).

#include <cstdint>
#include <string>

namespace snowflake {

struct DeviceSpec {
  std::string name;
  double bandwidth_bytes_per_s = 0.0;  // global memory streaming bandwidth
  double peak_flops = 0.0;             // double-precision
  int compute_units = 1;
  double launch_overhead_s = 0.0;      // per kernel dispatch
  double workgroup_cost_s = 0.0;       // scheduling cost per work-group

  /// NVIDIA K20c as characterized in the paper: 127 GB/s Empirical
  /// Roofline Toolkit bandwidth; 1.17 DP TFLOP/s; 13 SMX units.
  static DeviceSpec k20c();

  /// A host-like device for cross-checking the model against CPU runs.
  static DeviceSpec host(double measured_bandwidth_bytes_per_s, int threads);
};

/// What one kernel dispatch did (filled by the oclsim backend).
struct DispatchStats {
  std::int64_t workgroups = 0;
  std::int64_t points = 0;
  double bytes = 0.0;
  double flops = 0.0;
  /// Memory-coalescing efficiency in (0, 1]; 1 = perfectly streamed.
  double efficiency = 1.0;
};

class SimDevice {
public:
  explicit SimDevice(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  /// Modeled wall-clock seconds of one dispatch.
  double dispatch_seconds(const DispatchStats& stats) const;

private:
  DeviceSpec spec_;
};

}  // namespace snowflake
