#include "analysis/dependence.hpp"

#include "domain/domain_algebra.hpp"

namespace snowflake {

Dependence stencil_dependence(const Stencil& earlier, const Stencil& later,
                              const ShapeMap& shapes) {
  const ResolvedUnion dom_e = resolved_domain(earlier, shapes);
  const ResolvedUnion dom_l = resolved_domain(later, shapes);
  const auto acc_e = accesses_of(earlier);
  const auto acc_l = accesses_of(later);

  Dependence dep;
  for (const auto& a : acc_e) {
    for (const auto& b : acc_l) {
      if (a.grid != b.grid) continue;
      if (!a.is_write && !b.is_write) continue;  // read-read never conflicts
      if (dep.raw && dep.war && dep.waw) return dep;
      // A reduction's scalar result grid lives outside the anchored
      // iteration space, so its geometric write region is meaningless —
      // any shared write-involving access to it is a dependence.
      if ((earlier.is_reduction() && a.grid == earlier.output()) ||
          (later.is_reduction() && b.grid == later.output())) {
        if (a.is_write && b.is_write) {
          dep.waw = true;
        } else if (a.is_write) {
          dep.raw = true;
        } else {
          dep.war = true;
        }
        continue;
      }
      const ResolvedUnion ra = access_region(a, dom_e);
      const ResolvedUnion rb = access_region(b, dom_l);
      if (unions_disjoint(ra, rb)) continue;
      if (a.is_write && b.is_write) {
        dep.waw = true;
      } else if (a.is_write) {
        dep.raw = true;
      } else {
        dep.war = true;
      }
    }
  }
  return dep;
}

bool stencils_dependent(const Stencil& earlier, const Stencil& later,
                        const ShapeMap& shapes) {
  return stencil_dependence(earlier, later, shapes).any();
}

bool point_parallel_safe(const Stencil& stencil, const ShapeMap& shapes) {
  // Reductions carry an accumulator across every iteration: never
  // point-parallel (OpenMP backends use a reduction clause instead).
  if (stencil.is_reduction()) return false;
  if (!stencil.is_in_place()) return true;
  const ResolvedUnion domain = resolved_domain(stencil, shapes);
  for (const auto& access : accesses_of(stencil)) {
    if (access.is_write || access.grid != stencil.output()) continue;
    // Reading the iteration point itself is not loop-carried.
    if (access.map.is_identity()) continue;
    const ResolvedUnion region = access_region(access, domain);
    // A pure offset o != 0 reading inside the write region means some other
    // iteration's output is consumed; non-identity general maps are treated
    // conservatively the same way.
    if (!unions_disjoint(region, domain)) return false;
  }
  return true;
}

bool union_rects_independent(const Stencil& stencil, const ShapeMap& shapes) {
  // Cross-rect combination of a reduction is ordered (deterministic
  // accumulation), so its rects are never scheduled independently.
  if (stencil.is_reduction()) return false;
  const ResolvedUnion domain = resolved_domain(stencil, shapes);
  const auto& rects = domain.rects();
  if (rects.size() <= 1) return true;

  // Self-reads of the output grid through non-identity maps.
  std::vector<Access> self_reads;
  for (const auto& access : accesses_of(stencil)) {
    if (!access.is_write && access.grid == stencil.output() &&
        !access.map.is_identity()) {
      self_reads.push_back(access);
    }
  }

  for (size_t i = 0; i < rects.size(); ++i) {
    const ResolvedUnion wi(std::vector<ResolvedRect>{rects[i]});
    for (size_t j = 0; j < rects.size(); ++j) {
      if (i == j) continue;
      const ResolvedUnion wj(std::vector<ResolvedRect>{rects[j]});
      if (!unions_disjoint(wi, wj)) return false;  // WAW between rects
      for (const auto& access : self_reads) {
        if (!unions_disjoint(wi, access_region(access, wj))) return false;
      }
    }
  }
  return true;
}

}  // namespace snowflake
