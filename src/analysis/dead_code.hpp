#pragma once
// Dead-stencil elimination and legal reordering (paper §III: "can also be
// used for eliminating dead stencils and reordering computations"; §VII
// plans both — we implement them).

#include <set>
#include <string>
#include <vector>

#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

/// Liveness of each stencil given the grids whose final contents matter.
/// A stencil is live if any part of what it writes can reach a live output:
/// a backward sweep marks a stencil live when its output grid is in the
/// live set, then adds its inputs.  Conservative at grid granularity (no
/// partial-region killing).
std::vector<bool> live_stencils(const StencilGroup& group,
                                const std::set<std::string>& live_outputs);

/// Group with dead stencils removed.
StencilGroup eliminate_dead_stencils(const StencilGroup& group,
                                     const std::set<std::string>& live_outputs);

/// Is swapping adjacent stencils i and i+1 observationally legal?
bool can_swap_adjacent(const StencilGroup& group, size_t i, const ShapeMap& shapes);

/// Stable reorder that sinks each stencil as early as dependences permit
/// (a canonical order that maximizes wave sizes for the greedy scheduler).
StencilGroup reorder_for_waves(const StencilGroup& group, const ShapeMap& shapes);

}  // namespace snowflake
