#include "analysis/access.hpp"

#include "domain/domain_algebra.hpp"
#include "support/error.hpp"

namespace snowflake {

std::vector<Access> accesses_of(const Stencil& stencil) {
  std::vector<Access> out;
  out.push_back(Access{stencil.output(), IndexMap::identity(stencil.rank()),
                       /*is_write=*/true});
  for (const auto* r : collect_reads(stencil.expr())) {
    // Deduplicate structurally identical reads (common: the centre point
    // appears many times in an expression).
    bool seen = false;
    for (const auto& a : out) {
      if (!a.is_write && a.grid == r->grid() && a.map == r->map()) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(Access{r->grid(), r->map(), /*is_write=*/false});
  }
  return out;
}

ResolvedUnion access_region(const Access& access, const ResolvedUnion& domain) {
  const int rank = domain.rank();
  SF_REQUIRE(access.map.rank() == rank, "access_region rank mismatch");
  Index num(static_cast<size_t>(rank)), off(static_cast<size_t>(rank)),
      den(static_cast<size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    num[static_cast<size_t>(d)] = access.map.dim(d).num;
    off[static_cast<size_t>(d)] = access.map.dim(d).off;
    den[static_cast<size_t>(d)] = access.map.dim(d).den;
  }
  std::vector<ResolvedRect> rects;
  rects.reserve(domain.rects().size());
  for (const auto& rect : domain.rects()) {
    rects.push_back(affine_image(rect, num, off, den));
  }
  return ResolvedUnion(std::move(rects));
}

ResolvedUnion resolved_domain(const Stencil& stencil, const ShapeMap& shapes) {
  // Reductions write a one-cell grid, so their iteration domain is anchored
  // on the full-size grid named by the ReduceExpr instead of the output.
  const std::string& anchor =
      stencil.is_reduction() ? stencil.reduction().anchor() : stencil.output();
  auto it = shapes.find(anchor);
  if (it == shapes.end()) {
    throw LookupError("no shape binding for " +
                      std::string(stencil.is_reduction() ? "anchor" : "output") +
                      " grid '" + anchor + "'");
  }
  return stencil.domain().resolve(it->second);
}

}  // namespace snowflake
