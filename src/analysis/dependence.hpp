#pragma once
// Pairwise and self dependence tests over finite domains (paper Section III).
//
// Two stencils are dependent when one's write region intersects the other's
// read or write region on the same grid (RAW, WAR, WAW).  Regions are exact
// unions of strided rects, and intersection is the CRT/Diophantine test in
// domain_algebra — so boundary-vs-interior and red-vs-black independence is
// *proved*, not approximated.  This finite-domain exactness is the paper's
// differentiator from Halide's infinite-domain interval analysis.

#include "analysis/access.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

/// Kinds of dependence found between an earlier and a later stencil.
struct Dependence {
  bool raw = false;  // later reads what earlier writes
  bool war = false;  // later writes what earlier reads
  bool waw = false;  // both write a common point
  bool any() const { return raw || war || waw; }
};

/// Exact dependence between `earlier` and `later` under concrete shapes.
Dependence stencil_dependence(const Stencil& earlier, const Stencil& later,
                              const ShapeMap& shapes);

/// True if some point of the earlier's write region is read or written by
/// the later stencil.
bool stencils_dependent(const Stencil& earlier, const Stencil& later,
                        const ShapeMap& shapes);

/// Can every point of the stencil's domain be updated concurrently?
/// True for out-of-place stencils whose output is not read, and for
/// in-place stencils that only read their output at the iteration point
/// itself (identity map) or at points provably outside the write region
/// (e.g. a red sweep reading black neighbours).  Reads through non-identity
/// maps that land inside the write region are conservatively unsafe.
bool point_parallel_safe(const Stencil& stencil, const ShapeMap& shapes);

/// For an in-place stencil over a DomainUnion executed rect-by-rect: does
/// rect r2's read region include points rect r1 writes (r1 before r2)?
/// When false for all pairs, the member rects may also run concurrently.
bool union_rects_independent(const Stencil& stencil, const ShapeMap& shapes);

}  // namespace snowflake
