#include "analysis/dag.hpp"

#include <sstream>

#include "support/error.hpp"

namespace snowflake {

DependenceDag::DependenceDag(const StencilGroup& group, const ShapeMap& shapes)
    : n_(group.size()) {
  dep_.assign(n_, std::vector<bool>(n_, false));
  preds_.assign(n_, {});
  succs_.assign(n_, {});
  for (size_t later = 0; later < n_; ++later) {
    for (size_t earlier = 0; earlier < later; ++earlier) {
      if (stencils_dependent(group[earlier], group[later], shapes)) {
        dep_[later][earlier] = true;
        preds_[later].push_back(earlier);
        succs_[earlier].push_back(later);
      }
    }
  }
}

bool DependenceDag::depends(size_t later, size_t earlier) const {
  SF_REQUIRE(later < n_ && earlier < n_, "DependenceDag index out of range");
  return dep_[later][earlier];
}

const std::vector<size_t>& DependenceDag::preds(size_t i) const {
  SF_REQUIRE(i < n_, "DependenceDag index out of range");
  return preds_[i];
}

const std::vector<size_t>& DependenceDag::succs(size_t i) const {
  SF_REQUIRE(i < n_, "DependenceDag index out of range");
  return succs_[i];
}

bool DependenceDag::independent(size_t i, size_t j) const {
  if (i == j) return false;
  if (i > j) std::swap(i, j);
  return !depends(j, i);
}

std::string DependenceDag::to_dot(const StencilGroup& group) const {
  std::ostringstream os;
  os << "digraph stencil_deps {\n";
  for (size_t i = 0; i < n_; ++i) {
    os << "  s" << i << " [label=\"" << i << ": " << group[i].name() << "\"];\n";
  }
  for (size_t later = 0; later < n_; ++later) {
    for (size_t earlier : preds_[later]) {
      os << "  s" << earlier << " -> s" << later << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

namespace {

Schedule make_schedule(const StencilGroup& group, const ShapeMap& shapes,
                       std::vector<Wave> waves) {
  Schedule out;
  out.waves = std::move(waves);
  out.point_parallel.reserve(group.size());
  out.rects_independent.reserve(group.size());
  for (const auto& s : group.stencils()) {
    out.point_parallel.push_back(point_parallel_safe(s, shapes));
    out.rects_independent.push_back(union_rects_independent(s, shapes));
  }
  return out;
}

}  // namespace

Schedule greedy_schedule(const StencilGroup& group, const ShapeMap& shapes) {
  const DependenceDag dag(group, shapes);
  std::vector<Wave> waves;
  Wave current;
  for (size_t i = 0; i < group.size(); ++i) {
    // A reduction ends the point-parallel region: it always runs in a wave
    // of its own, with barriers on both sides.
    bool blocked = group[i].is_reduction() ||
                   (!current.stencils.empty() &&
                    group[current.stencils.back()].is_reduction());
    for (size_t member : current.stencils) {
      if (blocked) break;
      if (dag.depends(i, member)) blocked = true;
    }
    if (blocked && !current.stencils.empty()) {
      waves.push_back(std::move(current));
      current = Wave{};
    }
    current.stencils.push_back(i);
  }
  if (!current.stencils.empty()) waves.push_back(std::move(current));
  return make_schedule(group, shapes, std::move(waves));
}

Schedule barrier_per_stencil_schedule(const StencilGroup& group,
                                      const ShapeMap& shapes) {
  std::vector<Wave> waves;
  waves.reserve(group.size());
  for (size_t i = 0; i < group.size(); ++i) waves.push_back(Wave{{i}});
  return make_schedule(group, shapes, std::move(waves));
}

}  // namespace snowflake
