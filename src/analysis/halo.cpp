#include "analysis/halo.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "support/error.hpp"

namespace snowflake {

std::vector<Index> SweepHalo::stage_margins(int depth) const {
  SF_REQUIRE(depth >= 1, "stage_margins requires depth >= 1");
  const size_t waves = wave_radius.size();
  const size_t stages = static_cast<size_t>(depth) * waves;
  const size_t rank = box.size();
  std::vector<Index> margins(stages, Index(rank, 0));
  // margin[j] = sum of radii of all *later* stages; suffix accumulation.
  Index suffix(rank, 0);
  for (size_t j = stages; j-- > 0;) {
    margins[j] = suffix;
    const Index& r = wave_radius[j % waves];
    for (size_t d = 0; d < rank; ++d) suffix[d] += r[d];
  }
  return margins;
}

Index SweepHalo::total_halo(int depth) const {
  SF_REQUIRE(depth >= 1, "total_halo requires depth >= 1");
  Index h(box.size(), 0);
  for (size_t d = 0; d < h.size(); ++d) {
    h[d] = static_cast<std::int64_t>(depth) * cycle_radius[d];
  }
  return h;
}

SweepHalo analyze_sweep_halo(const StencilGroup& group, const ShapeMap& shapes,
                             const Schedule& schedule) {
  SweepHalo out;
  if (group.empty()) {
    out.reason = "group is empty";
    return out;
  }
  SF_REQUIRE(schedule.point_parallel.size() == group.size() &&
                 schedule.rects_independent.size() == group.size(),
             "schedule does not match group");

  const int rank = group[0].rank();
  for (const auto& s : group.stencils()) {
    if (s.rank() != rank) {
      out.reason = "stencils have mixed ranks";
      return out;
    }
  }

  // Checked before the written-shape rule so a reduction-bearing group
  // reports the real obstruction (its one-cell result grid would trip the
  // shape check first and hide it).
  for (size_t i = 0; i < group.size(); ++i) {
    if (group[i].is_reduction()) {
      out.reason = "stencil '" + group[i].name() +
                   "' is a " + reduce_op_name(group[i].reduction().op()) +
                   " reduction: its scalar result is a whole-domain "
                   "synchronization point, so sweeps cannot be fused across "
                   "it (time tiling refused)";
      return out;
    }
  }

  // The written grids must share one shape: they are copied into per-tile
  // scratch buffers with a common tiling of that box.
  std::set<std::string> written;
  for (const auto& s : group.stencils()) written.insert(s.output());
  out.written.assign(written.begin(), written.end());
  out.box = shapes.at(out.written.front());
  for (const auto& g : out.written) {
    if (shapes.at(g) != out.box) {
      out.reason = "written grids '" + out.written.front() + "' and '" + g +
                   "' have different shapes";
      return out;
    }
  }
  if (static_cast<int>(out.box.size()) != rank) {
    out.reason = "written grid rank differs from stencil rank";
    return out;
  }

  for (size_t i = 0; i < group.size(); ++i) {
    if (!schedule.point_parallel[i]) {
      out.reason = "stencil '" + group[i].name() +
                   "' is not point-parallel (in-place dependence chain has "
                   "no bounded per-sweep halo)";
      return out;
    }
    if (!schedule.rects_independent[i]) {
      out.reason = "stencil '" + group[i].name() +
                   "' has order-dependent union rects (values flow within "
                   "one wave, outside the per-wave margin model)";
      return out;
    }
  }

  // Per-wave read radius onto written grids.  Reads of read-only grids are
  // free (their values never change during the fused run); reads of written
  // grids must be pure offsets so the dependence distance is constant.
  out.wave_radius.assign(schedule.waves.size(), Index(rank, 0));
  out.cycle_radius.assign(static_cast<size_t>(rank), 0);
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    for (size_t si : schedule.waves[w].stencils) {
      const Stencil& s = group[si];
      for (const GridReadExpr* read : collect_reads(s.expr())) {
        if (written.find(read->grid()) == written.end()) continue;
        for (int d = 0; d < rank; ++d) {
          const DimMap& m = read->map().dim(d);
          if (!m.is_pure_offset()) {
            out.reason = "stencil '" + s.name() + "' reads written grid '" +
                         read->grid() + "' through a non-offset index map";
            return out;
          }
          out.wave_radius[w][static_cast<size_t>(d)] =
              std::max(out.wave_radius[w][static_cast<size_t>(d)],
                       std::abs(m.off));
        }
      }
    }
  }
  for (const Index& r : out.wave_radius) {
    for (int d = 0; d < rank; ++d) {
      out.cycle_radius[static_cast<size_t>(d)] += r[static_cast<size_t>(d)];
    }
  }

  out.legal = true;
  return out;
}

}  // namespace snowflake
