#pragma once
// Cross-sweep halo analysis for temporal blocking (time tiling).
//
// Fusing k consecutive applications of a StencilGroup into one traversal of
// overlapped tiles is legal only when the dependence footprint of every
// sweep is a bounded halo: each tile then redundantly computes a shrinking
// margin so tiles stay independent across all k sweeps.  This module
// extends the per-sweep dependence machinery (Diophantine point-parallel
// flags, wave schedule) across sweep iterations:
//
//   * every stencil must be point-parallel — an in-place stencil that reads
//     inside its own write region (lexicographic Gauss-Seidel) carries an
//     unbounded same-sweep dependence chain, so no finite halo covers it;
//   * rects of a multi-rect stencil must be order-independent, otherwise
//     values flow between rects *within* one wave and the per-wave margin
//     accounting below does not apply;
//   * every grid the group writes must share one shape (the tiled box) and
//     may only be read through pure-offset index maps — a scaled or
//     rank-changing read of a written grid has no constant per-sweep
//     distance;
//   * grids the group only reads are unconstrained (their values are fixed
//     for the whole fused run).
//
// Under those conditions the dependence distance of schedule wave w onto
// earlier-written values is wave_radius[w] (the max |offset| of its reads
// of written grids, per dimension), and a tile that is computed with margin
// sum-of-later-radii at each stage produces exactly the sequential values
// on its owned points — see codegen/transform/time_tiling.hpp for the
// induction.

#include <string>
#include <vector>

#include "analysis/dag.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

/// Result of the cross-sweep halo analysis of one (group, shapes, schedule).
struct SweepHalo {
  bool legal = false;
  std::string reason;  // set when !legal: why time tiling must fall back

  /// Common shape of every written grid — the box the tiles partition.
  Index box;
  /// Sorted names of the grids the group writes (tile-private copies).
  std::vector<std::string> written;
  /// Per schedule wave: max |read offset| per dim onto written grids.
  std::vector<Index> wave_radius;
  /// Halo growth of one full group application (sum of wave radii).
  Index cycle_radius;

  /// Margins of the flattened stage sequence for `depth` fused
  /// applications: stage j of the depth * wave_radius.size() stages
  /// computes the tile expanded by stage_margins(depth)[j] per dim.
  /// Margins shrink to zero at the last stage.
  std::vector<Index> stage_margins(int depth) const;

  /// Copy-in halo per dim: the widest region any fused stage reads,
  /// i.e. stage 0's margin plus its own radius = depth * cycle_radius.
  Index total_halo(int depth) const;
};

/// Analyze the cross-sweep halo structure of `group` under `schedule`
/// (whose waves/flags must come from the same group + shapes).  Never
/// throws for unsupported groups — returns legal = false with a reason.
SweepHalo analyze_sweep_halo(const StencilGroup& group, const ShapeMap& shapes,
                             const Schedule& schedule);

}  // namespace snowflake
