#pragma once
// Memory-access extraction: which regions of which grids a stencil touches.
//
// Every access is (grid, index map, read/write).  A stencil writes its
// output through the identity map over its domain and reads each GridRead's
// map-image of the domain.  Regions are computed exactly with the domain
// algebra (affine images of strided rects are strided rects).

#include <string>
#include <vector>

#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

struct Access {
  std::string grid;
  IndexMap map;
  bool is_write = false;
};

/// All accesses of a stencil: one write (output, identity map) plus one
/// read per distinct GridRead.
std::vector<Access> accesses_of(const Stencil& stencil);

/// The set of points of `access.grid` touched when the stencil's resolved
/// domain is `domain`: the affine image of every rect under the map.
ResolvedUnion access_region(const Access& access, const ResolvedUnion& domain);

/// Resolve a stencil's domain against the shapes (helper: resolves against
/// the output grid's shape).
ResolvedUnion resolved_domain(const Stencil& stencil, const ShapeMap& shapes);

}  // namespace snowflake
