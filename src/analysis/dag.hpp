#pragma once
// Dependence DAG and barrier scheduling for StencilGroups (paper §IV-A).
//
// The OpenMP micro-compiler runs stencils of a group as tasks and inserts a
// barrier only when the next stencil depends on one already in the current
// wave — the paper's greedy grouping.  The DAG itself also supports the
// reordering and dead-stencil analyses.

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/stencil.hpp"
#include "ir/validate.hpp"

namespace snowflake {

/// Exact pairwise dependence structure of a group under concrete shapes.
class DependenceDag {
public:
  DependenceDag(const StencilGroup& group, const ShapeMap& shapes);

  size_t size() const { return n_; }

  /// Does stencil `later` (index) depend on stencil `earlier` (index)?
  bool depends(size_t later, size_t earlier) const;

  /// Direct predecessors (earlier stencils it depends on), ascending.
  const std::vector<size_t>& preds(size_t i) const;

  /// Direct successors, ascending.
  const std::vector<size_t>& succs(size_t i) const;

  /// Can stencils i and j be swapped / run concurrently (no dependence in
  /// either direction)?  i, j in original program order.
  bool independent(size_t i, size_t j) const;

  /// Graphviz dot rendering (for docs / debugging).
  std::string to_dot(const StencilGroup& group) const;

private:
  size_t n_;
  std::vector<std::vector<bool>> dep_;  // dep_[later][earlier]
  std::vector<std::vector<size_t>> preds_;
  std::vector<std::vector<size_t>> succs_;
};

/// One barrier-free batch of concurrently runnable stencils.
struct Wave {
  std::vector<size_t> stencils;  // indices into the group, program order
};

/// A full schedule: waves separated by barriers, plus per-stencil
/// point-parallelism flags (can the backend parallelize within it?).
struct Schedule {
  std::vector<Wave> waves;
  std::vector<bool> point_parallel;      // indexed by stencil
  std::vector<bool> rects_independent;   // union members may interleave
};

/// The paper's greedy wave grouping: scan in program order, close the
/// current wave when the next stencil depends on a member of it.
Schedule greedy_schedule(const StencilGroup& group, const ShapeMap& shapes);

/// Barrier after every stencil (the naive baseline used by ablation A5).
Schedule barrier_per_stencil_schedule(const StencilGroup& group,
                                      const ShapeMap& shapes);

}  // namespace snowflake
