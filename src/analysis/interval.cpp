#include "analysis/interval.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace snowflake {

namespace {

struct Box {
  Index lo;
  Index hi;  // inclusive
  bool empty = true;
};

/// Per-dimension hull of a union (the interval abstraction).
Box hull_of(const ResolvedUnion& u) {
  Box box;
  for (const auto& rect : u.rects()) {
    if (rect.empty()) continue;
    if (box.empty) {
      box.lo.assign(static_cast<size_t>(rect.rank()), 0);
      box.hi.assign(static_cast<size_t>(rect.rank()), 0);
      for (int d = 0; d < rect.rank(); ++d) {
        box.lo[static_cast<size_t>(d)] = rect.range(d).lo;
        box.hi[static_cast<size_t>(d)] = rect.range(d).last();
      }
      box.empty = false;
      continue;
    }
    for (int d = 0; d < rect.rank(); ++d) {
      box.lo[static_cast<size_t>(d)] =
          std::min(box.lo[static_cast<size_t>(d)], rect.range(d).lo);
      box.hi[static_cast<size_t>(d)] =
          std::max(box.hi[static_cast<size_t>(d)], rect.range(d).last());
    }
  }
  return box;
}

bool boxes_overlap(const Box& a, const Box& b) {
  if (a.empty || b.empty) return false;
  SF_ASSERT(a.lo.size() == b.lo.size(), "interval rank mismatch");
  for (size_t d = 0; d < a.lo.size(); ++d) {
    if (a.hi[d] < b.lo[d] || b.hi[d] < a.lo[d]) return false;
  }
  return true;
}

}  // namespace

bool intervals_may_conflict(const ResolvedUnion& a, const ResolvedUnion& b) {
  return boxes_overlap(hull_of(a), hull_of(b));
}

bool stencils_dependent_interval(const Stencil& earlier, const Stencil& later,
                                 const ShapeMap& shapes) {
  const ResolvedUnion dom_e = resolved_domain(earlier, shapes);
  const ResolvedUnion dom_l = resolved_domain(later, shapes);
  for (const auto& a : accesses_of(earlier)) {
    for (const auto& b : accesses_of(later)) {
      if (a.grid != b.grid) continue;
      if (!a.is_write && !b.is_write) continue;
      // Shared accesses to a reduction's scalar result conflict without
      // geometry (see stencil_dependence).
      if ((earlier.is_reduction() && a.grid == earlier.output()) ||
          (later.is_reduction() && b.grid == later.output())) {
        return true;
      }
      if (intervals_may_conflict(access_region(a, dom_e),
                                 access_region(b, dom_l))) {
        return true;
      }
    }
  }
  return false;
}

bool point_parallel_safe_interval(const Stencil& stencil, const ShapeMap& shapes) {
  if (stencil.is_reduction()) return false;
  if (!stencil.is_in_place()) return true;
  const ResolvedUnion domain = resolved_domain(stencil, shapes);
  for (const auto& access : accesses_of(stencil)) {
    if (access.is_write || access.grid != stencil.output()) continue;
    if (access.map.is_identity()) continue;
    if (intervals_may_conflict(access_region(access, domain), domain)) {
      return false;
    }
  }
  return true;
}

Schedule greedy_schedule_interval(const StencilGroup& group,
                                  const ShapeMap& shapes) {
  // Same greedy rule as greedy_schedule, with the coarse dependence test.
  std::vector<Wave> waves;
  Wave current;
  for (size_t i = 0; i < group.size(); ++i) {
    bool blocked = group[i].is_reduction() ||
                   (!current.stencils.empty() &&
                    group[current.stencils.back()].is_reduction());
    for (size_t member : current.stencils) {
      if (blocked) break;
      if (stencils_dependent_interval(group[member], group[i], shapes)) {
        blocked = true;
      }
    }
    if (blocked && !current.stencils.empty()) {
      waves.push_back(std::move(current));
      current = Wave{};
    }
    current.stencils.push_back(i);
  }
  if (!current.stencils.empty()) waves.push_back(std::move(current));

  Schedule out;
  out.waves = std::move(waves);
  for (const auto& s : group.stencils()) {
    out.point_parallel.push_back(point_parallel_safe_interval(s, shapes));
    out.rects_independent.push_back(union_rects_independent_interval(s, shapes));
  }
  return out;
}

bool union_rects_independent_interval(const Stencil& stencil,
                                      const ShapeMap& shapes) {
  if (stencil.is_reduction()) return false;
  const ResolvedUnion domain = resolved_domain(stencil, shapes);
  const auto& rects = domain.rects();
  if (rects.size() <= 1) return true;
  std::vector<Access> self_reads;
  for (const auto& access : accesses_of(stencil)) {
    if (!access.is_write && access.grid == stencil.output() &&
        !access.map.is_identity()) {
      self_reads.push_back(access);
    }
  }
  for (size_t i = 0; i < rects.size(); ++i) {
    const ResolvedUnion wi(std::vector<ResolvedRect>{rects[i]});
    for (size_t j = 0; j < rects.size(); ++j) {
      if (i == j) continue;
      const ResolvedUnion wj(std::vector<ResolvedRect>{rects[j]});
      if (intervals_may_conflict(wi, wj)) return false;
      for (const auto& access : self_reads) {
        if (intervals_may_conflict(wi, access_region(access, wj))) return false;
      }
    }
  }
  return true;
}

}  // namespace snowflake
