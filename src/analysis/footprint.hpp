#pragma once
// Per-wave communication footprint of a scheduled StencilGroup.
//
// A distributed backend that partitions the outermost dimension needs to
// know, before each barrier wave, which grids must have fresh boundary
// layers and how deep those layers are.  Both questions are answered by
// the same dependence information the scheduler already uses:
//
//   * a grid needs an exchange before wave w only if some stencil of wave
//     w reads it through a nonzero dim-0 offset (offset-0 reads stay
//     inside the reader's owned slab), AND an earlier wave of the group
//     has written it since the last global distribution — grids no wave
//     writes (coefficients, rhs) keep the boundary layers the initial
//     scatter installed and never need re-copying;
//   * the required depth is the largest |dim-0 offset| any wave-w stencil
//     reads that grid through, which is at most the group halo but often
//     smaller per grid and per wave.
//
// The analysis is exact for the pure-offset programs the distributed
// backend accepts (every read is a constant translate), and conservative
// only in ignoring *which rows* of the slab boundary a wave's domain
// touches — it prunes by grid and depth, not by sub-row extent.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dag.hpp"
#include "ir/stencil.hpp"

namespace snowflake {

/// Exchange requirement of one grid before one wave.
struct WaveGridDepth {
  std::string grid;
  std::int64_t depth = 0;  // max |dim-0 read offset| of the wave's reads
};

/// Communication footprint of every wave of a schedule.  waves[0] is
/// always empty: the first wave is served by the initial distribution.
struct CommFootprint {
  std::vector<std::vector<WaveGridDepth>> waves;

  /// Largest depth across all waves (0 when nothing is exchanged).
  std::int64_t max_depth() const;
};

/// Compute the footprint of `group` under `schedule` (which must come
/// from the same group).  Requires pure-offset reads; reads through
/// non-offset maps make the whole analysis throw InvalidArgument, which
/// matches the scope check of the backends that call it.
///
/// With `prune` false, every grid of the group is listed before every
/// wave past the first at the full group halo depth — the legacy
/// copy-everything behaviour, kept as an ablation baseline.
CommFootprint comm_footprint(const StencilGroup& group,
                             const Schedule& schedule, bool prune);

}  // namespace snowflake
