#pragma once
// Per-wave communication footprint of a scheduled StencilGroup.
//
// A distributed backend that partitions the grid into Cartesian blocks
// needs to know, before each barrier wave, which grids must have fresh
// boundary layers, on which faces, and how deep.  All of it is answered
// by the same dependence information the scheduler already uses:
//
//   * a grid needs an exchange before wave w only if some stencil of wave
//     w reads it through a nonzero offset (offset-0 reads stay inside the
//     reader's owned block), AND an earlier wave of the group has written
//     it since the last global distribution — grids no wave writes
//     (coefficients, rhs) keep the boundary layers the initial scatter
//     installed and never need re-copying;
//   * the required depth is per signed axis direction: the largest |o_a|
//     of any wave-w read offset pointing through that face — at most the
//     group halo but often smaller per grid, per wave, and per face;
//   * an edge/corner neighbour (a diagonal pattern delta in {-1,0,1}^d)
//     is needed only if some single read offset points through *all* of
//     delta's nonzero directions at once.  A star stencil (axis-aligned
//     offsets only) provably needs no corner messages; a 9-point box
//     stencil does.
//
// The analysis keeps the full deduplicated read-offset set per grid per
// wave, so the comm planner can ask both questions (`needs_pattern`,
// `pattern_depth`) exactly rather than from a scalar depth.  It is exact
// for the pure-offset programs the distributed backend accepts, and
// conservative only in ignoring *which rows* of the block boundary a
// wave's domain touches.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dag.hpp"
#include "ir/stencil.hpp"

namespace snowflake {

/// Exchange requirement of one grid before one wave.
struct WaveGridDepth {
  std::string grid;
  /// Max per-axis |read offset| of the wave's reads (scalar summary).
  std::int64_t depth = 0;
  /// Deduplicated read-offset vectors of the wave (one entry per distinct
  /// offset; rank == grid rank).  Everything per-face derives from these.
  std::vector<Index> offsets;

  /// Depth required through the (axis, sign) face: max |o_axis| over
  /// offsets with sign(o_axis) == sign.  sign is -1 (low face) or +1.
  std::int64_t face_depth(size_t axis, int sign) const;

  /// True if the neighbour pattern `delta` (components in {-1,0,+1}, not
  /// all zero) is read through: some single offset points through every
  /// nonzero direction of delta simultaneously.
  bool needs_pattern(const Index& delta) const;

  /// Per-axis message depth of pattern `delta`: for axes in delta's
  /// support, max |o_a| over the offsets compatible with delta; zero
  /// elsewhere.  Meaningful only when needs_pattern(delta).
  Index pattern_depth(const Index& delta) const;
};

/// Communication footprint of every wave of a schedule.  waves[0] is
/// always empty: the first wave is served by the initial distribution.
struct CommFootprint {
  std::vector<std::vector<WaveGridDepth>> waves;

  /// Largest depth across all waves (0 when nothing is exchanged).
  std::int64_t max_depth() const;
};

/// Compute the footprint of `group` under `schedule` (which must come
/// from the same group).  Requires pure-offset reads; reads through
/// non-offset maps make the whole analysis throw InvalidArgument, which
/// matches the scope check of the backends that call it.
///
/// With `prune` false, every grid of the group is listed before every
/// wave past the first at the full group halo depth in every direction
/// including all diagonals (the offset set becomes the 2^rank halo-corner
/// vectors, whose per-face projections imply every pattern at full
/// depth) — the legacy copy-everything behaviour, kept as an ablation
/// baseline.
CommFootprint comm_footprint(const StencilGroup& group,
                             const Schedule& schedule, bool prune);

}  // namespace snowflake
