#include "analysis/footprint.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace snowflake {

std::int64_t CommFootprint::max_depth() const {
  std::int64_t depth = 0;
  for (const auto& wave : waves) {
    for (const auto& wg : wave) depth = std::max(depth, wg.depth);
  }
  return depth;
}

CommFootprint comm_footprint(const StencilGroup& group,
                             const Schedule& schedule, bool prune) {
  CommFootprint fp;
  fp.waves.resize(schedule.waves.size());

  // Group-wide halo depth (for the unpruned baseline) and the per-wave,
  // per-grid read depths.
  std::int64_t group_halo = 0;
  std::vector<std::map<std::string, std::int64_t>> read_depth(
      schedule.waves.size());
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    for (size_t s : schedule.waves[w].stencils) {
      for (const auto* r : collect_reads(group[s].expr())) {
        SF_REQUIRE(r->map().is_pure_offset(),
                   "comm footprint requires pure-offset reads (stencil '" +
                       group[s].name() + "' uses " + r->map().to_string() +
                       ")");
        const std::int64_t off = std::abs(r->map().dim(0).off);
        group_halo = std::max(group_halo, off);
        auto& depth = read_depth[w][r->grid()];
        depth = std::max(depth, off);
      }
    }
  }

  if (!prune) {
    // Legacy baseline: every grid of the group, full halo, every wave
    // past the first.
    if (group_halo > 0) {
      for (size_t w = 1; w < schedule.waves.size(); ++w) {
        for (const auto& g : group.grids()) {
          fp.waves[w].push_back(WaveGridDepth{g, group_halo});
        }
      }
    }
    return fp;
  }

  // Pruned: written-before set grows wave by wave; a grid is exchanged
  // only when a stale boundary layer could actually be read.
  std::set<std::string> written;
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    if (w > 0) {
      for (const auto& [grid, depth] : read_depth[w]) {
        if (depth > 0 && written.count(grid) != 0) {
          fp.waves[w].push_back(WaveGridDepth{grid, depth});
        }
      }
    }
    for (size_t s : schedule.waves[w].stencils) {
      written.insert(group[s].output());
    }
  }
  return fp;
}

}  // namespace snowflake
