#include "analysis/footprint.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "support/error.hpp"

namespace snowflake {

namespace {

int sign_of(std::int64_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

/// True when offset `o` points through every nonzero direction of `delta`.
bool compatible(const Index& o, const Index& delta) {
  for (size_t a = 0; a < delta.size(); ++a) {
    if (delta[a] != 0 && sign_of(o[a]) != static_cast<int>(delta[a])) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::int64_t WaveGridDepth::face_depth(size_t axis, int sign) const {
  std::int64_t d = 0;
  for (const Index& o : offsets) {
    if (axis < o.size() && sign_of(o[axis]) == sign) {
      d = std::max(d, std::abs(o[axis]));
    }
  }
  return d;
}

bool WaveGridDepth::needs_pattern(const Index& delta) const {
  for (const Index& o : offsets) {
    if (compatible(o, delta)) return true;
  }
  return false;
}

Index WaveGridDepth::pattern_depth(const Index& delta) const {
  Index d(delta.size(), 0);
  for (const Index& o : offsets) {
    if (!compatible(o, delta)) continue;
    for (size_t a = 0; a < delta.size(); ++a) {
      if (delta[a] != 0) d[a] = std::max(d[a], std::abs(o[a]));
    }
  }
  return d;
}

std::int64_t CommFootprint::max_depth() const {
  std::int64_t depth = 0;
  for (const auto& wave : waves) {
    for (const auto& wg : wave) depth = std::max(depth, wg.depth);
  }
  return depth;
}

CommFootprint comm_footprint(const StencilGroup& group,
                             const Schedule& schedule, bool prune) {
  CommFootprint fp;
  fp.waves.resize(schedule.waves.size());
  const size_t rank =
      group.size() > 0 ? static_cast<size_t>(group[0].rank()) : 0;

  // Group-wide halo depth (for the unpruned baseline) and the per-wave,
  // per-grid deduplicated read-offset sets.
  std::int64_t group_halo = 0;
  std::vector<std::map<std::string, std::set<Index>>> read_offs(
      schedule.waves.size());
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    for (size_t s : schedule.waves[w].stencils) {
      for (const auto* r : collect_reads(group[s].expr())) {
        SF_REQUIRE(r->map().is_pure_offset(),
                   "comm footprint requires pure-offset reads (stencil '" +
                       group[s].name() + "' uses " + r->map().to_string() +
                       ")");
        Index off(static_cast<size_t>(r->map().rank()), 0);
        for (size_t d = 0; d < off.size(); ++d) {
          off[d] = r->map().dim(static_cast<int>(d)).off;
          group_halo = std::max(group_halo, std::abs(off[d]));
        }
        read_offs[w][r->grid()].insert(std::move(off));
      }
    }
  }

  if (!prune) {
    // Legacy baseline: every grid of the group, full halo in every
    // direction including all diagonals, every wave past the first.  The
    // 2^rank halo-corner vectors imply every neighbour pattern at the
    // full group-halo depth.
    if (group_halo > 0) {
      std::vector<Index> corners;
      const size_t n = size_t{1} << rank;
      for (size_t mask = 0; mask < n; ++mask) {
        Index c(rank, 0);
        for (size_t a = 0; a < rank; ++a) {
          c[a] = ((mask >> a) & 1) != 0 ? group_halo : -group_halo;
        }
        corners.push_back(std::move(c));
      }
      for (size_t w = 1; w < schedule.waves.size(); ++w) {
        for (const auto& g : group.grids()) {
          fp.waves[w].push_back(WaveGridDepth{g, group_halo, corners});
        }
      }
    }
    return fp;
  }

  // Pruned: written-before set grows wave by wave; a grid is exchanged
  // only when a stale boundary layer could actually be read.
  std::set<std::string> written;
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    if (w > 0) {
      for (const auto& [grid, offs] : read_offs[w]) {
        if (written.count(grid) == 0) continue;
        WaveGridDepth wg;
        wg.grid = grid;
        for (const Index& o : offs) {
          std::int64_t mag = 0;
          for (std::int64_t c : o) mag = std::max(mag, std::abs(c));
          if (mag == 0) continue;  // offset-0 reads never leave the block
          wg.depth = std::max(wg.depth, mag);
          wg.offsets.push_back(o);
        }
        if (wg.depth > 0) fp.waves[w].push_back(std::move(wg));
      }
    }
    for (size_t s : schedule.waves[w].stencils) {
      written.insert(group[s].output());
    }
  }
  return fp;
}

}  // namespace snowflake
