#include "analysis/dead_code.hpp"

#include "analysis/dag.hpp"
#include "support/error.hpp"

namespace snowflake {

std::vector<bool> live_stencils(const StencilGroup& group,
                                const std::set<std::string>& live_outputs) {
  std::vector<bool> live(group.size(), false);
  std::set<std::string> needed = live_outputs;
  // Backward: the last writer of a needed grid is live; its inputs become
  // needed.  An overwritten-then-rewritten grid keeps earlier writers live
  // only while some later live stencil still reads them — grid-granular, so
  // any earlier write to a still-needed grid stays live (a full-overwrite
  // kill analysis would need region subtraction; see DESIGN.md).
  for (size_t idx = group.size(); idx-- > 0;) {
    const Stencil& s = group[idx];
    if (needed.count(s.output()) == 0) continue;
    live[idx] = true;
    for (const auto& g : s.inputs()) needed.insert(g);
  }
  return live;
}

StencilGroup eliminate_dead_stencils(const StencilGroup& group,
                                     const std::set<std::string>& live_outputs) {
  const auto live = live_stencils(group, live_outputs);
  StencilGroup out;
  for (size_t i = 0; i < group.size(); ++i) {
    if (live[i]) out.append(group[i]);
  }
  return out;
}

bool can_swap_adjacent(const StencilGroup& group, size_t i, const ShapeMap& shapes) {
  SF_REQUIRE(i + 1 < group.size(), "can_swap_adjacent index out of range");
  return !stencils_dependent(group[i], group[i + 1], shapes);
}

StencilGroup reorder_for_waves(const StencilGroup& group, const ShapeMap& shapes) {
  const DependenceDag dag(group, shapes);
  // Level-order list scheduling: each round emits every stencil whose
  // predecessors were emitted in *earlier* rounds (ties keep program
  // order), so independent chain heads batch into one wave.
  std::vector<bool> emitted(group.size(), false);
  StencilGroup out;
  size_t remaining = group.size();
  while (remaining > 0) {
    std::vector<size_t> round;
    for (size_t i = 0; i < group.size(); ++i) {
      if (emitted[i]) continue;
      bool ready = true;
      for (size_t p : dag.preds(i)) {
        if (!emitted[p]) {
          ready = false;
          break;
        }
      }
      if (ready) round.push_back(i);
    }
    SF_ASSERT(!round.empty(),
              "reorder_for_waves: dependence cycle (impossible for a DAG)");
    for (size_t i : round) {
      out.append(group[i]);
      emitted[i] = true;
      --remaining;
    }
  }
  return out;
}

}  // namespace snowflake
