#include "analysis/diophantine.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "domain/domain_algebra.hpp"
#include "support/error.hpp"
#include "support/int_math.hpp"

namespace snowflake {

std::optional<DiophantineSolution> solve_linear_diophantine(std::int64_t a,
                                                            std::int64_t b,
                                                            std::int64_t c) {
  if (a == 0 && b == 0) {
    if (c != 0) return std::nullopt;
    return DiophantineSolution{0, 0, 0, 0};
  }
  const ExtGcd eg = ext_gcd(a, b);
  if (c % eg.g != 0) return std::nullopt;
  const std::int64_t scale = c / eg.g;
  return DiophantineSolution{eg.x * scale, eg.y * scale, b / eg.g, -a / eg.g};
}

std::optional<std::int64_t> solve_congruence(std::int64_t a, std::int64_t c,
                                             std::int64_t m) {
  SF_REQUIRE(m >= 1, "solve_congruence modulus must be >= 1");
  // a*x ≡ c (mod m)  <=>  a*x - m*y = c for some y.
  auto sol = solve_linear_diophantine(a, -m, c);
  if (!sol) return std::nullopt;
  if (sol->step_x == 0) {
    // a == 0 (mod handled): x unconstrained; smallest non-negative is 0 when
    // the equation holds at all.
    return std::int64_t{0};
  }
  return mod_floor(sol->x0, sol->step_x);
}

namespace {

/// The value set {coef*x + offset : x in range} as a ResolvedRange.
/// Returns an empty range when `range` is empty.
ResolvedRange affine_progression(std::int64_t coef, std::int64_t offset,
                                 const ResolvedRange& range) {
  if (range.empty()) return ResolvedRange{0, 0, 1};
  if (coef == 0) return ResolvedRange{offset, offset + 1, 1};
  const std::int64_t n = range.count();
  const std::int64_t a_val = coef * range.lo + offset;
  const std::int64_t b_val = coef * range.last() + offset;
  const std::int64_t lo = std::min(a_val, b_val);
  const std::int64_t hi = std::max(a_val, b_val);
  std::int64_t stride = std::abs(coef) * range.stride;
  if (n == 1) stride = 1;
  return ResolvedRange{lo, hi + 1, stride};
}

}  // namespace

std::int64_t poly_eval(const Polynomial& p, std::int64_t x) {
  // Horner with __int128 accumulation, saturated back to int64 (analysis
  // only compares signs and equality with 0, so saturation is safe).
  __int128 acc = 0;
  for (size_t i = p.size(); i-- > 0;) {
    acc = acc * x + p[i];
    if (acc > std::numeric_limits<std::int64_t>::max()) {
      acc = std::numeric_limits<std::int64_t>::max();
    }
    if (acc < std::numeric_limits<std::int64_t>::min()) {
      acc = std::numeric_limits<std::int64_t>::min();
    }
  }
  return static_cast<std::int64_t>(acc);
}

namespace {

Polynomial derivative(const Polynomial& p) {
  Polynomial d;
  for (size_t i = 1; i < p.size(); ++i) {
    d.push_back(static_cast<std::int64_t>(i) * p[i]);
  }
  if (d.empty()) d.push_back(0);
  return d;
}

int degree_of(const Polynomial& p) {
  for (size_t i = p.size(); i-- > 0;) {
    if (p[i] != 0) return static_cast<int>(i);
  }
  return 0;
}

int sign_of(std::int64_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

/// Integer points a in [lo, hi) where f's sign at a differs from its sign
/// at a+1 (counting 0 as its own sign) — i.e. where f crosses or touches
/// zero.  Recursion: the flips of f' partition [lo, hi] into segments on
/// which f is strictly monotone over the reals, so each segment holds at
/// most one flip of f, found by binary search.
std::vector<std::int64_t> sign_flips(const Polynomial& f, std::int64_t lo,
                                     std::int64_t hi) {
  std::vector<std::int64_t> out;
  if (lo >= hi) return out;
  if (degree_of(f) == 0) return out;  // constant sign
  std::vector<std::int64_t> cuts{lo, hi};
  for (std::int64_t c : sign_flips(derivative(f), lo, hi)) {
    cuts.push_back(c);
    cuts.push_back(c + 1);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    std::int64_t a = cuts[i], b = cuts[i + 1];
    const int sa = sign_of(poly_eval(f, a));
    const int sb = sign_of(poly_eval(f, b));
    if (sa == sb && sa != 0) continue;
    // Binary search for the flip point (f monotone on [a, b]).
    while (a + 1 < b) {
      const std::int64_t mid = a + (b - a) / 2;
      if (sign_of(poly_eval(f, mid)) == sa) {
        a = mid;
      } else {
        b = mid;
      }
    }
    out.push_back(a);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// All integer roots of p in [lo, hi].
std::vector<std::int64_t> integer_roots(const Polynomial& p, std::int64_t lo,
                                        std::int64_t hi) {
  std::vector<std::int64_t> roots;
  if (lo > hi) return roots;
  if (degree_of(p) == 0) {
    // Constant: everywhere-zero (lo as witness) or rootless.
    if (poly_eval(p, lo) == 0) roots.push_back(lo);
    return roots;
  }
  // A root is an endpoint of a sign flip (or sits exactly at one).
  for (std::int64_t a : sign_flips(p, lo, hi)) {
    if (poly_eval(p, a) == 0) roots.push_back(a);
    if (a + 1 <= hi && poly_eval(p, a + 1) == 0) roots.push_back(a + 1);
  }
  if (poly_eval(p, lo) == 0) roots.push_back(lo);
  if (poly_eval(p, hi) == 0) roots.push_back(hi);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

}  // namespace

bool poly_has_root_in(const Polynomial& p, const ResolvedRange& xs) {
  SF_REQUIRE(!p.empty(), "poly_has_root_in: empty polynomial");
  SF_REQUIRE(degree_of(p) <= 8, "poly_has_root_in supports degree <= 8");
  if (xs.empty()) return false;
  for (std::int64_t r : integer_roots(p, xs.lo, xs.last())) {
    if (xs.contains(r)) return true;
  }
  // Degenerate everywhere-zero constant handled by integer_roots witness.
  return false;
}

bool polys_intersect_in(const Polynomial& p, const ResolvedRange& xs,
                        const Polynomial& q, const ResolvedRange& ys) {
  if (xs.empty() || ys.empty()) return false;
  constexpr std::int64_t kSubstitutionBudget = 4096;
  // Substitute over the smaller range: p(x) = q(y0) is a root problem.
  const ResolvedRange& outer = xs.count() <= ys.count() ? xs : ys;
  const Polynomial& outer_poly = xs.count() <= ys.count() ? p : q;
  const ResolvedRange& inner = xs.count() <= ys.count() ? ys : xs;
  const Polynomial& inner_poly = xs.count() <= ys.count() ? q : p;
  if (outer.count() > kSubstitutionBudget) return true;  // may-conflict
  for (std::int64_t v = outer.lo; v < outer.hi; v += outer.stride) {
    Polynomial shifted = inner_poly;
    shifted[0] -= poly_eval(outer_poly, v);
    if (poly_has_root_in(shifted, inner)) return true;
  }
  return false;
}

bool has_solution_in(std::int64_t a, std::int64_t b, std::int64_t c,
                     const ResolvedRange& xs, const ResolvedRange& ys) {
  // a*x + b*y = c has an in-range solution iff the value sets {a*x} and
  // {c - b*y} intersect.  Both are arithmetic progressions, so the finite-
  // domain Diophantine question becomes a CRT range intersection.
  const ResolvedRange lhs = affine_progression(a, 0, xs);
  const ResolvedRange rhs = affine_progression(-b, c, ys);
  return intersect_ranges(lhs, rhs).has_value();
}

}  // namespace snowflake
