#pragma once
// Linear Diophantine equation machinery (paper Section III).
//
// Stencil dependence questions reduce, dimension by dimension, to: do two
// integer affine progressions share a point?  Writing the accessed index of
// iteration x as (a1*x + b1) and of iteration y as (a2*y + b2) with x, y
// ranging over strided finite intervals, a conflict exists iff the linear
// Diophantine equation a1*x - a2*y = b2 - b1 has a solution with both
// variables in range.  The general solution comes from the extended
// Euclidean algorithm; finiteness of the domain turns "has a solution" into
// interval arithmetic on the solution's one-parameter family.  The paper
// restricts the language to the affine/polynomial fragment where this is
// decidable (avoiding the MRDP undecidability of general Diophantine
// systems); we implement the affine fragment, which covers every stencil in
// the evaluation.

#include <cstdint>
#include <optional>

#include "domain/resolved.hpp"

namespace snowflake {

/// General solution of a*x + b*y = c: (x0 + k*step_x, y0 + k*step_y).
struct DiophantineSolution {
  std::int64_t x0 = 0;
  std::int64_t y0 = 0;
  std::int64_t step_x = 0;  // = b / gcd(a,b)
  std::int64_t step_y = 0;  // = -a / gcd(a,b)
};

/// Solve a*x + b*y = c over the integers; nullopt when unsolvable.
/// Degenerate cases: a == b == 0 is solvable iff c == 0 (any x, y).
std::optional<DiophantineSolution> solve_linear_diophantine(std::int64_t a,
                                                            std::int64_t b,
                                                            std::int64_t c);

/// Smallest non-negative x with a*x ≡ c (mod m), m >= 1; nullopt when
/// unsolvable.
std::optional<std::int64_t> solve_congruence(std::int64_t a, std::int64_t c,
                                             std::int64_t m);

/// Does a*x + b*y = c admit a solution with x in xs and y in ys?
/// xs/ys are strided finite ranges (the resolved iteration ranges).
bool has_solution_in(std::int64_t a, std::int64_t b, std::int64_t c,
                     const ResolvedRange& xs, const ResolvedRange& ys);

// --- Polynomial fragment ----------------------------------------------------
//
// The paper §III: "We allow the usage of polynomial indexing ... affine and
// polynomial Diophantine equations can be solved or shown to be
// unsatisfiable".  Over *finite* domains the quadratic case reduces to
// integer root extraction — decidable without touching the MRDP wall.

/// A univariate integer polynomial c0 + c1*x + c2*x^2 + ... (degree =
/// coefficients.size() - 1).
using Polynomial = std::vector<std::int64_t>;

/// Evaluate p at x.
std::int64_t poly_eval(const Polynomial& p, std::int64_t x);

/// Does p(x) == 0 admit a solution with x in xs?  Exact: monotone-segment
/// isolation (segments bounded by the recursively-computed critical points
/// of p) followed by binary search per segment — O(degree * log(range))
/// integer evaluations, no enumeration.  Degree is capped at 8 (far above
/// any stencil indexing polynomial).
bool poly_has_root_in(const Polynomial& p, const ResolvedRange& xs);

/// Do p(x) == q(y) meet with x in xs, y in ys?  Sound for dependence
/// testing: exact when either range is small enough to substitute
/// (finite-domain reduction to poly_has_root_in); otherwise returns true
/// (may-conflict) — over-approximation never hides a real dependence.
bool polys_intersect_in(const Polynomial& p, const ResolvedRange& xs,
                        const Polynomial& q, const ResolvedRange& ys);

}  // namespace snowflake
