#pragma once
// Interval (bounding-box) dependence analysis — the strawman the paper
// argues against.
//
// Halide-style analyses approximate every access region by its bounding
// interval per dimension and treat grids as effectively infinite; two
// stencils conflict whenever their boxes overlap on a common grid.  That
// loses exactly the structure scientific stencils live on: a Dirichlet
// edge writing ghost row 0 *overlaps the bounding box* of an interior
// stencil's reads (rows 0..N-1) even though the paper's finite-domain
// Diophantine analysis proves the strided/offset point sets disjoint
// (§III: "boundary conditions ... do not create false dependencies which
// infinite-domain analyses such as Halide's interval analysis would
// flag").
//
// This module implements that coarser analysis honestly so the claim is
// *measurable*: tests and the A7 ablation count the parallelism each
// analysis recovers on the same programs.

#include "analysis/dag.hpp"
#include "analysis/dependence.hpp"

namespace snowflake {

/// Bounding-interval conflict test: do the per-dimension [lo, hi] hulls of
/// the two access regions intersect?  (Strides and congruences ignored —
/// the information interval analysis discards.)
bool intervals_may_conflict(const ResolvedUnion& a, const ResolvedUnion& b);

/// Interval-analysis version of stencil dependence: conflicts whenever
/// bounding boxes of a write and another access overlap on the same grid.
bool stencils_dependent_interval(const Stencil& earlier, const Stencil& later,
                                 const ShapeMap& shapes);

/// Interval-analysis version of in-place point-parallel safety: any
/// non-identity self-read whose hull overlaps the write hull is unsafe
/// (which flags every colored in-place sweep).
bool point_parallel_safe_interval(const Stencil& stencil, const ShapeMap& shapes);

/// Interval version of union_rects_independent (hull checks only).
bool union_rects_independent_interval(const Stencil& stencil,
                                      const ShapeMap& shapes);

/// Greedy wave schedule computed with interval dependence — directly
/// comparable to greedy_schedule().
Schedule greedy_schedule_interval(const StencilGroup& group,
                                  const ShapeMap& shapes);

}  // namespace snowflake
