#pragma once
// Persistent autotuning database: an append-only JSON-lines file (schema
// "snowflake-tune-v1") under $SNOWFLAKE_TUNE_DB accumulating candidate
// timings across process lifetimes, so tuning converges fleet-wide
// instead of being re-paid per process.
//
// Entries are keyed by (group structural hash, backend, machine
// fingerprint, shape class).  The shape class buckets every grid extent
// at floor(log2(extent)) — e.g. "r2|5.5|5.5" for two 32..63^2 grids — so
// shapes with the same memory-hierarchy behaviour share one key, and
// "neighbouring" classes (every bucket within +-1) can seed pruned
// sweeps (tuner.hpp's warm-start tiers).
//
// Four line kinds share the schema:
//   kind=timing     one candidate measurement of a full or pruned sweep
//   kind=best       the sweep's winner (the last best line per key wins)
//   kind=debt       a near-miss served from a neighbouring class; records
//                   the exact shapes/params so the unseen shape class can
//                   be refined later (Tuner::refine_pending, snowtune)
//   kind=debt_done  a completed refinement (debt minus debt_done > 0
//                   means the queue entry is still open)
//
// Atomicity matches the PR 6 perf ledger: every sweep's lines go out in
// one O_APPEND write(2) batch, and the loader tolerates torn/garbage
// lines by skipping them.

#include <map>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "ir/validate.hpp"

namespace snowflake::tune {

/// $SNOWFLAKE_TUNE_DB, or "" when the store is disabled.
std::string tune_db_path();

/// Shape class of a grid set: "r<rank>|" then per grid (name order) the
/// "."-joined per-dim log2 buckets, grids joined by "|".
std::string shape_class(const ShapeMap& shapes);

/// True when two shape classes have identical structure, every bucket
/// differs by at most 1, and they are not equal (the near-miss predicate).
bool neighbouring_shape_class(const std::string& a, const std::string& b);

/// Compact "k=v;..."-encoded CompileOptions; decode round-trips every
/// field the tuner's candidate space uses.  decode returns false on
/// malformed or unknown-key input (the caller falls back to a full sweep).
std::string encode_options(const CompileOptions& o);
bool decode_options(const std::string& s, CompileOptions* out);

/// Schedule-space distance: the number of differing feature coordinates
/// (tile, fusion toggles, schedule, time-tile depth, addr, simd, simd
/// rows, wavefront).  Pruned sweeps keep candidates at distance <= 1 from
/// a stored best.
int options_distance(const CompileOptions& a, const CompileOptions& b);

struct TuneKey {
  std::string group;    // 16-hex StencilGroup::structural_hash()
  std::string backend;  // backend name, e.g. "openmp"
  std::string machine;  // fingerprint().id (timings never cross machines)
  std::string shape;    // shape_class()

  /// "\x1f"-joined map key (the same convention as snowreport grouping).
  std::string str() const;
};

/// One stored candidate measurement.
struct StoredTiming {
  std::string cand;  // candidate label
  std::string opts;  // encode_options()
  double seconds = 0.0;
};

/// Everything known about one key: accumulated timings plus the latest
/// recorded best.
struct KeyRecord {
  TuneKey key;
  std::string names;  // "+"-joined stencil names (group rebuild signature)
  std::string label;  // kernel_label of the tuned kernel
  std::vector<StoredTiming> timings;  // file order
  std::string best_cand;
  std::string best_opts;
  double best_seconds = 0.0;
  double ts = 0.0;  // timestamp of the winning best line
};

/// One tuning-debt queue entry (aggregated over debt/debt_done lines).
struct DebtRecord {
  TuneKey key;
  std::string names;
  std::string shapes;  // encode_shapes() — exact extents for refinement
  std::string params;  // encode_params()
  int rank = 0;
  int open = 0;  // debt lines minus debt_done lines; > 0 = still queued
};

struct TuneDb {
  std::map<std::string, KeyRecord> records;  // TuneKey::str() -> record
  std::map<std::string, DebtRecord> debts;
  int skipped = 0;  // unparseable lines tolerated by the loader
};

/// Append/load handle on the tune database file.
class TuneStore {
public:
  /// Empty path disables the store (append/load become no-ops).
  explicit TuneStore(std::string path = tune_db_path());

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Render one line of each kind (no trailing newline).
  static std::string timing_line(const TuneKey& key, const std::string& names,
                                 const std::string& label,
                                 const std::string& cand,
                                 const CompileOptions& opts, double seconds);
  static std::string best_line(const TuneKey& key, const std::string& names,
                               const std::string& label,
                               const std::string& cand,
                               const CompileOptions& opts, double seconds);
  static std::string debt_line(const TuneKey& key, const std::string& names,
                               int rank, const std::string& shapes,
                               const std::string& params);
  static std::string debt_done_line(const TuneKey& key);

  /// Append whole lines in one atomic O_APPEND write(2) batch.
  bool append(const std::vector<std::string>& lines,
              std::string* error = nullptr) const;

  /// Parse the database (missing file = empty db, success).  Torn or
  /// foreign lines are counted in out->skipped and dropped.
  bool load(TuneDb* out, std::string* error = nullptr) const;

  /// Shape/param round-trips for debt records: "x=6x6,out=6x6" and
  /// "h2inv=1.5" (shortest round-trip values, locale-independent).
  static std::string encode_shapes(const ShapeMap& shapes);
  static bool decode_shapes(const std::string& s, ShapeMap* out);
  static std::string encode_params(const ParamMap& params);
  static bool decode_params(const std::string& s, ParamMap* out);

private:
  std::string path_;
};

}  // namespace snowflake::tune
