#include "tune/store.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "support/string_util.hpp"
#include "trace/history.hpp"

namespace snowflake::tune {

namespace {

const char* kSchema = "snowflake-tune-v1";

// Same flat-JSON emission helpers as the perf ledger (trace/history.cpp):
// the two files share the line grammar, so trace::parse_ledger_line reads
// both.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void field(std::string& out, const char* key, const std::string& value) {
  out += out.empty() ? "{\"" : ",\"";
  out += key;
  out += "\":\"";
  out += escape(value);
  out += '"';
}

void field(std::string& out, const char* key, double value) {
  out += out.empty() ? "{\"" : ",\"";
  out += key;
  out += "\":";
  // Locale-independent shortest round-trip: printf %g under a comma-decimal
  // global locale emits "3,2e-07", which the reload cannot parse.
  out += format_double_compact(value);
}

/// Common head: schema, kind, timestamp, then the full key.
std::string line_head(const char* kind, const TuneKey& key) {
  std::string out;
  field(out, "schema", std::string(kSchema));
  field(out, "kind", std::string(kind));
  field(out, "ts", static_cast<double>(std::time(nullptr)));
  field(out, "machine", key.machine);
  field(out, "group", key.group);
  field(out, "backend", key.backend);
  field(out, "shape", key.shape);
  return out;
}

std::string encode_index(const Index& v) {
  std::string s;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) s += 'x';
    s += std::to_string(v[i]);
  }
  return s;
}

bool decode_index(const std::string& s, Index* out) {
  out->clear();
  if (s.empty()) return true;
  size_t pos = 0;
  while (pos < s.size()) {
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str() + pos, &end, 10);
    if (end == s.c_str() + pos) return false;
    out->push_back(v);
    pos = static_cast<size_t>(end - s.c_str());
    if (pos < s.size()) {
      if (s[pos] != 'x') return false;
      ++pos;
    }
  }
  return true;
}

std::int64_t log2_bucket(std::int64_t extent) {
  std::int64_t b = 0;
  while (extent > 1) {
    extent >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

std::string tune_db_path() {
  const char* env = std::getenv("SNOWFLAKE_TUNE_DB");
  return env != nullptr && *env ? std::string(env) : std::string();
}

std::string shape_class(const ShapeMap& shapes) {
  size_t rank = 0;
  for (const auto& [name, shape] : shapes) {
    rank = std::max(rank, shape.size());
  }
  std::string out = "r" + std::to_string(rank);
  for (const auto& [name, shape] : shapes) {
    out += '|';
    for (size_t d = 0; d < shape.size(); ++d) {
      if (d) out += '.';
      out += std::to_string(log2_bucket(std::max<std::int64_t>(1, shape[d])));
    }
  }
  return out;
}

bool neighbouring_shape_class(const std::string& a, const std::string& b) {
  if (a == b || a.empty() || b.empty()) return false;
  // Identical structure: same rank token, same grid/dim counts; every
  // bucket within +-1.
  size_t i = 0, j = 0;
  auto token = [](const std::string& s, size_t* pos) -> std::string {
    size_t start = *pos;
    while (*pos < s.size() && s[*pos] != '|' && s[*pos] != '.') ++(*pos);
    std::string t = s.substr(start, *pos - start);
    return t;
  };
  // Leading "r<rank>" token must match exactly.
  const std::string ra = token(a, &i), rb = token(b, &j);
  if (ra != rb) return false;
  while (i < a.size() || j < b.size()) {
    if (i >= a.size() || j >= b.size()) return false;  // length mismatch
    if (a[i] != b[j]) return false;  // separator structure mismatch
    ++i;
    ++j;
    const std::string ta = token(a, &i), tb = token(b, &j);
    if (ta.empty() || tb.empty()) return false;
    const long va = std::strtol(ta.c_str(), nullptr, 10);
    const long vb = std::strtol(tb.c_str(), nullptr, 10);
    if (va > vb + 1 || vb > va + 1) return false;
  }
  return true;
}

std::string encode_options(const CompileOptions& o) {
  std::string s;
  auto kv = [&](const char* k, const std::string& v) {
    if (!s.empty()) s += ';';
    s += k;
    s += '=';
    s += v;
  };
  kv("tile", encode_index(o.tile));
  kv("fc", o.fuse_colors ? "1" : "0");
  kv("fs", o.fuse_stencils ? "1" : "0");
  kv("simd", o.simd ? "1" : "0");
  kv("sched",
     o.schedule == CompileOptions::Schedule::ParallelFor ? "for" : "tasks");
  kv("grain", std::to_string(o.task_grain));
  kv("bar", o.barrier_per_stencil ? "1" : "0");
  kv("ana",
     o.analysis == CompileOptions::Analysis::Interval ? "int" : "dio");
  kv("tt", std::to_string(o.time_tile));
  kv("addr", o.addr_opt ? "1" : "0");
  kv("wf", o.wavefront ? "1" : "0");
  kv("sr", o.simd_rows ? "1" : "0");
  kv("wg", encode_index(o.workgroup));
  kv("dr", std::to_string(o.dist_ranks));
  kv("do", o.dist_overlap ? "1" : "0");
  kv("dp", o.dist_prune ? "1" : "0");
  kv("dg", encode_index(o.dist_grid));
  kv("dpl", o.dist_pipeline ? "1" : "0");
  kv("dred", o.det_reduce ? "1" : "0");
  return s;
}

bool decode_options(const std::string& s, CompileOptions* out) {
  *out = CompileOptions{};
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string k = s.substr(pos, eq - pos);
    size_t end = s.find(';', eq + 1);
    if (end == std::string::npos) end = s.size();
    const std::string v = s.substr(eq + 1, end - eq - 1);
    pos = end + (end < s.size() ? 1 : 0);

    auto flag = [&](bool* b) { *b = v == "1"; return v == "0" || v == "1"; };
    bool ok = true;
    if (k == "tile") ok = decode_index(v, &out->tile);
    else if (k == "fc") ok = flag(&out->fuse_colors);
    else if (k == "fs") ok = flag(&out->fuse_stencils);
    else if (k == "simd") ok = flag(&out->simd);
    else if (k == "sched") {
      if (v == "for") out->schedule = CompileOptions::Schedule::ParallelFor;
      else if (v == "tasks") out->schedule = CompileOptions::Schedule::Tasks;
      else ok = false;
    } else if (k == "grain") out->task_grain = std::atoll(v.c_str());
    else if (k == "bar") ok = flag(&out->barrier_per_stencil);
    else if (k == "ana") {
      if (v == "int") out->analysis = CompileOptions::Analysis::Interval;
      else if (v == "dio") out->analysis = CompileOptions::Analysis::Diophantine;
      else ok = false;
    } else if (k == "tt") out->time_tile = std::atoi(v.c_str());
    else if (k == "addr") ok = flag(&out->addr_opt);
    else if (k == "wf") ok = flag(&out->wavefront);
    else if (k == "sr") ok = flag(&out->simd_rows);
    else if (k == "wg") ok = decode_index(v, &out->workgroup);
    else if (k == "dr") out->dist_ranks = std::atoi(v.c_str());
    else if (k == "do") ok = flag(&out->dist_overlap);
    else if (k == "dp") ok = flag(&out->dist_prune);
    else if (k == "dg") ok = decode_index(v, &out->dist_grid);
    else if (k == "dpl") ok = flag(&out->dist_pipeline);
    else if (k == "dred") ok = flag(&out->det_reduce);
    else ok = false;  // unknown key: likely a future schema, full sweep
    if (!ok) return false;
  }
  return true;
}

int options_distance(const CompileOptions& a, const CompileOptions& b) {
  int d = 0;
  d += a.tile != b.tile;
  d += a.fuse_colors != b.fuse_colors;
  d += a.fuse_stencils != b.fuse_stencils;
  d += a.simd != b.simd;
  d += a.simd_rows != b.simd_rows;
  d += a.schedule != b.schedule;
  d += a.time_tile != b.time_tile;
  d += a.addr_opt != b.addr_opt;
  d += a.wavefront != b.wavefront;
  d += a.dist_grid != b.dist_grid;
  d += a.dist_pipeline != b.dist_pipeline;
  d += a.det_reduce != b.det_reduce;
  return d;
}

std::string TuneKey::str() const {
  return group + '\x1f' + backend + '\x1f' + machine + '\x1f' + shape;
}

TuneStore::TuneStore(std::string path) : path_(std::move(path)) {}

std::string TuneStore::timing_line(const TuneKey& key,
                                   const std::string& names,
                                   const std::string& label,
                                   const std::string& cand,
                                   const CompileOptions& opts,
                                   double seconds) {
  std::string out = line_head("timing", key);
  field(out, "names", names);
  field(out, "label", label);
  field(out, "cand", cand);
  field(out, "opts", encode_options(opts));
  field(out, "seconds", seconds);
  out += '}';
  return out;
}

std::string TuneStore::best_line(const TuneKey& key, const std::string& names,
                                 const std::string& label,
                                 const std::string& cand,
                                 const CompileOptions& opts, double seconds) {
  std::string out = line_head("best", key);
  field(out, "names", names);
  field(out, "label", label);
  field(out, "cand", cand);
  field(out, "opts", encode_options(opts));
  field(out, "seconds", seconds);
  out += '}';
  return out;
}

std::string TuneStore::debt_line(const TuneKey& key, const std::string& names,
                                 int rank, const std::string& shapes,
                                 const std::string& params) {
  std::string out = line_head("debt", key);
  field(out, "names", names);
  field(out, "rank", static_cast<double>(rank));
  field(out, "shapes", shapes);
  field(out, "params", params);
  out += '}';
  return out;
}

std::string TuneStore::debt_done_line(const TuneKey& key) {
  std::string out = line_head("debt_done", key);
  out += '}';
  return out;
}

bool TuneStore::append(const std::vector<std::string>& lines,
                       std::string* error) const {
  if (!enabled() || lines.empty()) return true;
  // The perf ledger's appender already implements the single O_APPEND
  // write(2) batch + EINTR loop; reuse it verbatim.
  return trace::PerfLedger(path_).append(lines, error);
}

bool TuneStore::load(TuneDb* out, std::string* error) const {
  if (!enabled()) return true;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return true;  // no database yet: every lookup is a cold miss
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    trace::LedgerEntry e;
    if (!trace::parse_ledger_line(line, &e) || e.str("schema") != kSchema) {
      ++out->skipped;
      continue;
    }
    TuneKey key{e.str("group"), e.str("backend"), e.str("machine"),
                e.str("shape")};
    const std::string ks = key.str();
    const std::string& kind = e.str("kind");
    if (kind == "timing" || kind == "best") {
      KeyRecord& rec = out->records[ks];
      rec.key = key;
      if (!e.str("names").empty()) rec.names = e.str("names");
      if (!e.str("label").empty()) rec.label = e.str("label");
      if (kind == "timing") {
        rec.timings.push_back(
            StoredTiming{e.str("cand"), e.str("opts"), e.number("seconds")});
      } else {
        rec.best_cand = e.str("cand");
        rec.best_opts = e.str("opts");
        rec.best_seconds = e.number("seconds");
        rec.ts = e.number("ts");
      }
    } else if (kind == "debt") {
      DebtRecord& debt = out->debts[ks];
      debt.key = key;
      debt.names = e.str("names");
      debt.shapes = e.str("shapes");
      debt.params = e.str("params");
      debt.rank = static_cast<int>(e.number("rank"));
      ++debt.open;
    } else if (kind == "debt_done") {
      const auto it = out->debts.find(ks);
      if (it != out->debts.end()) --it->second.open;
    } else {
      ++out->skipped;
    }
  }
  (void)error;
  return true;
}

std::string TuneStore::encode_shapes(const ShapeMap& shapes) {
  std::string s;
  for (const auto& [name, shape] : shapes) {
    if (!s.empty()) s += ',';
    s += name + '=' + encode_index(shape);
  }
  return s;
}

bool TuneStore::decode_shapes(const std::string& s, ShapeMap* out) {
  out->clear();
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    size_t end = s.find(',', eq + 1);
    if (end == std::string::npos) end = s.size();
    Index shape;
    if (!decode_index(s.substr(eq + 1, end - eq - 1), &shape)) return false;
    (*out)[s.substr(pos, eq - pos)] = std::move(shape);
    pos = end + (end < s.size() ? 1 : 0);
  }
  return true;
}

std::string TuneStore::encode_params(const ParamMap& params) {
  std::string s;
  for (const auto& [name, value] : params) {
    if (!s.empty()) s += ',';
    s += name + '=' + format_double_compact(value);
  }
  return s;
}

bool TuneStore::decode_params(const std::string& s, ParamMap* out) {
  out->clear();
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    size_t end = s.find(',', eq + 1);
    if (end == std::string::npos) end = s.size();
    const std::string v = s.substr(eq + 1, end - eq - 1);
    double value = 0.0;
    if (!parse_double(v, &value)) return false;
    (*out)[s.substr(pos, eq - pos)] = value;
    pos = end + (end < s.size() ? 1 : 0);
  }
  return true;
}

}  // namespace snowflake::tune
