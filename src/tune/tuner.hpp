#pragma once
// Compile-option autotuner (paper §IV-A: tiling "allows the user to specify
// a tiling size when compiling the stencil, and provides a method of
// tuning tiling sizes" — this is that method, automated).
//
// Compiles the group once per candidate, times each with the standard
// warm-up/best-of protocol, and returns the fastest options.  With
// $SNOWFLAKE_TUNE_DB set, results persist in the tune store (store.hpp)
// and tune() becomes a three-tier warm-start path:
//
//   exact hit   same (group, backend, machine, shape class) was tuned
//               before: the stored best returns instantly — zero
//               candidate compiles, zero timing reps.
//   near miss   a neighbouring shape class has a best: only that best
//               plus its schedule-space neighbours (options_distance
//               <= 1) are re-validated, and the unseen shape class is
//               enqueued as tuning debt for later full refinement.
//   cold miss   the full sweep runs and every timing (not just the
//               winner) is recorded, so future prunes have gradients.
//
// The tiers emit tuner.store_{hit,near,miss} trace counters and tune:*
// spans.  refine_pending() opportunistically pays open debts (full sweep
// at the debted shape, closing the queue entry); tools/snowtune calls it
// across processes, and $SNOWFLAKE_TUNE_REFINE_AT_EXIT=1 schedules it at
// process exit.

#include <functional>
#include <string>
#include <vector>

#include "backend/backend.hpp"

namespace snowflake {

struct TuneCandidate {
  std::string label;
  CompileOptions options;
};

struct TuneTiming {
  std::string label;
  /// Best-of-reps seconds *per group application*: a time-tiled kernel's
  /// run time is divided by its fused_sweeps() so depths compare fairly.
  double seconds = 0.0;
};

struct TuneResult {
  TuneCandidate best;
  std::vector<TuneTiming> timings;  // in candidate order
};

class Tuner {
public:
  /// `now` returns monotonic seconds; injectable for deterministic tests.
  explicit Tuner(std::function<double()> now = {});

  /// Time every candidate and return the fastest (or a stored result —
  /// see the tier description above).  Grid contents are snapshotted
  /// before the timing loop and restored afterwards, so callers may tune
  /// in place on live data.  Candidates are compiled concurrently up
  /// front (one forked host compiler each); the warmup/best-of timing
  /// loop runs serially after every compilation finished, so
  /// measurements are undisturbed.
  TuneResult tune(const StencilGroup& group, GridSet& grids,
                  const ParamMap& params, const std::string& backend,
                  const std::vector<TuneCandidate>& candidates,
                  int warmup = 1, int reps = 3) const;

  /// Run the full candidate sweep unconditionally and record it under the
  /// exact key, closing any open debt for it: the refinement primitive
  /// behind refine_pending() and tools/snowtune.
  TuneResult refine(const StencilGroup& group, GridSet& grids,
                    const ParamMap& params, const std::string& backend,
                    const std::vector<TuneCandidate>& candidates,
                    int warmup = 1, int reps = 3) const;

  /// Pay open tuning debts whose groups this process has tuned before
  /// (every tune() call registers its request): rebuild grids at the
  /// debted shapes, run the full sweep, record, close the debt.  Returns
  /// the number of debts refined.  No-op without $SNOWFLAKE_TUNE_DB.
  int refine_pending() const;

private:
  TuneResult sweep(const StencilGroup& group, GridSet& grids,
                   const ParamMap& params, const std::string& backend,
                   const std::vector<TuneCandidate>& candidates, int warmup,
                   int reps) const;

  std::function<double()> now_;
};

/// Standard sweep for a rank-d kernel: untiled plus cubic tiles
/// {4, 8, 16, 32}^d, each with and without multicolor fusion (task
/// scheduling); parallel-for scheduling with and without fusion;
/// time-tile depths {2, 4} x spatial tiles {16, 32}^d; wavefront
/// time-tiling (CompileOptions::wavefront) at depths {2, 4}, slab width
/// 16; explicit-SIMD rows (CompileOptions::simd_rows) with and without
/// fusion; and the address-arithmetic pass disabled (with and without
/// fusion).  When `extents` is given (the tuned grids' box), tile edges
/// clamp to it and candidates whose clamped options collide (same
/// options_salt) dedup to the first — a 4^d grid no longer compiles
/// 8/16/32-wide tiles that degenerate to the same kernel.
std::vector<TuneCandidate> default_tile_candidates(int rank,
                                                   const Index& extents = {});

/// Candidate space for the distsim backend at a fixed rank count:
/// decomposition shape (dim-0 slabs, the surface-minimizing
/// auto-factorization, and in 2D+ the transposed slab) crossed with the
/// pipelined schedule vs its BSP ablation, plus a no-overlap comparator.
/// Deduped by options_salt like default_tile_candidates.
std::vector<TuneCandidate> default_dist_candidates(int rank,
                                                   const Index& extents,
                                                   int ranks);

}  // namespace snowflake
