#pragma once
// Compile-option autotuner (paper §IV-A: tiling "allows the user to specify
// a tiling size when compiling the stencil, and provides a method of
// tuning tiling sizes" — this is that method, automated).
//
// Compiles the group once per candidate, times each with the standard
// warm-up/best-of protocol, and returns the fastest options.  The JIT
// cache makes re-tuning cheap across runs.

#include <functional>
#include <string>
#include <vector>

#include "backend/backend.hpp"

namespace snowflake {

struct TuneCandidate {
  std::string label;
  CompileOptions options;
};

struct TuneTiming {
  std::string label;
  /// Best-of-reps seconds *per group application*: a time-tiled kernel's
  /// run time is divided by its fused_sweeps() so depths compare fairly.
  double seconds = 0.0;
};

struct TuneResult {
  TuneCandidate best;
  std::vector<TuneTiming> timings;  // in candidate order
};

class Tuner {
public:
  /// `now` returns monotonic seconds; injectable for deterministic tests.
  explicit Tuner(std::function<double()> now = {});

  /// Time every candidate and return the fastest.  `grids` contents are
  /// mutated by the trial runs (callers benchmark on scratch data).
  /// Candidates are compiled concurrently up front (one forked host
  /// compiler each); the warmup/best-of timing loop runs serially after
  /// every compilation finished, so measurements are undisturbed.
  TuneResult tune(const StencilGroup& group, GridSet& grids,
                  const ParamMap& params, const std::string& backend,
                  const std::vector<TuneCandidate>& candidates,
                  int warmup = 1, int reps = 3) const;

private:
  std::function<double()> now_;
};

/// Standard sweep for a rank-d kernel: untiled plus cubic tiles
/// {4, 8, 16, 32}^d, each with and without multicolor fusion (task
/// scheduling); parallel-for scheduling with and without fusion;
/// time-tile depths {2, 4} x spatial tiles {16, 32}^d; and the
/// address-arithmetic pass disabled (with and without fusion).
std::vector<TuneCandidate> default_tile_candidates(int rank);

}  // namespace snowflake
