#include "tune/tuner.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace snowflake {

namespace {
double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Tuner::Tuner(std::function<double()> now)
    : now_(now ? std::move(now) : steady_now) {}

TuneResult Tuner::tune(const StencilGroup& group, GridSet& grids,
                       const ParamMap& params, const std::string& backend,
                       const std::vector<TuneCandidate>& candidates,
                       int warmup, int reps) const {
  SF_REQUIRE(!candidates.empty(), "tune requires at least one candidate");
  SF_REQUIRE(reps >= 1, "tune requires reps >= 1");

  // Compile every candidate up front, concurrently: the JIT toolchain
  // forks one host-compiler process per module, so candidate compilations
  // overlap almost perfectly (the kernel cache admits one compile per key
  // and shares the result).  Timing below stays strictly serial so the
  // measurement protocol is unchanged.
  std::vector<std::unique_ptr<CompiledKernel>> kernels(candidates.size());
  std::vector<std::exception_ptr> errors(candidates.size());
  {
    std::atomic<size_t> next{0};
    const size_t workers = std::min(
        candidates.size(),
        static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency())));
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < candidates.size();
           i = next.fetch_add(1)) {
        try {
          kernels[i] = compile(group, grids, backend, candidates[i].options);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
    }
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  TuneResult result;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < candidates.size(); ++c) {
    const TuneCandidate& candidate = candidates[c];
    const auto& kernel = kernels[c];
    for (int i = 0; i < warmup; ++i) kernel->run(grids, params);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      const double start = now_();
      kernel->run(grids, params);
      const double dt = now_() - start;
      if (dt < best) best = dt;
    }
    // A time-tiled kernel performs several sweeps per run; compare all
    // candidates on per-sweep cost.
    best /= kernel->fused_sweeps();
    SF_LOG_INFO("tune: " << candidate.label << " -> " << best << " s");
    result.timings.push_back(TuneTiming{candidate.label, best});
    if (best < best_seconds) {
      best_seconds = best;
      result.best = candidate;
    }
  }
  return result;
}

std::vector<TuneCandidate> default_tile_candidates(int rank) {
  SF_REQUIRE(rank >= 1, "default_tile_candidates requires rank >= 1");
  std::vector<TuneCandidate> out;
  // Spatial sweep: untiled + cubic tiles, with/without multicolor fusion
  // (tasks, the paper's default scheduling).
  for (const bool fuse : {false, true}) {
    const std::string suffix = fuse ? "+fuse" : "";
    CompileOptions untiled;
    untiled.fuse_colors = fuse;
    out.push_back(TuneCandidate{"untiled" + suffix, untiled});
    for (std::int64_t t : {4, 8, 16, 32}) {
      CompileOptions opt;
      opt.tile = Index(static_cast<size_t>(rank), t);
      opt.fuse_colors = fuse;
      out.push_back(
          TuneCandidate{"tile" + std::to_string(t) + suffix, opt});
    }
  }
  // Scheduling style: worksharing-for comparators for the strongest
  // spatial candidates.
  for (const bool fuse : {false, true}) {
    CompileOptions opt;
    opt.schedule = CompileOptions::Schedule::ParallelFor;
    opt.fuse_colors = fuse;
    out.push_back(TuneCandidate{fuse ? "for+fuse" : "for", opt});
  }
  // Temporal blocking: fused sweep depths x spatial tile (per-sweep cost
  // is what tune() compares, so these race the candidates above fairly).
  for (const int depth : {2, 4}) {
    for (std::int64_t t : {16, 32}) {
      CompileOptions opt;
      opt.time_tile = depth;
      opt.tile = Index(static_cast<size_t>(rank), t);
      out.push_back(TuneCandidate{"tt" + std::to_string(depth) + "_tile" +
                                      std::to_string(t),
                                  opt});
    }
  }
  // Address-arithmetic A/B: the legacy re-linearized indexing, in case a
  // host compiler pessimizes the hoisted-base form on some kernel.
  for (const bool fuse : {false, true}) {
    CompileOptions opt;
    opt.addr_opt = false;
    opt.fuse_colors = fuse;
    out.push_back(TuneCandidate{fuse ? "noaddr+fuse" : "noaddr", opt});
  }
  return out;
}

}  // namespace snowflake
