#include "tune/tuner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "ir/validate.hpp"
#include "support/error.hpp"
#include "support/fingerprint.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "trace/trace.hpp"
#include "tune/store.hpp"

namespace snowflake {

namespace {

double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string group_names(const StencilGroup& group) {
  std::string s;
  for (size_t i = 0; i < group.size(); ++i) {
    if (i) s += '+';
    s += group[i].name();
  }
  return s;
}

tune::TuneKey make_key(const StencilGroup& group, const std::string& backend,
                       const ShapeMap& shapes) {
  tune::TuneKey key;
  key.group = hash_hex(group.structural_hash());
  key.backend = backend;
  key.machine = fingerprint().id;
  key.shape = tune::shape_class(shapes);
  return key;
}

/// Tune requests seen by this process, so refine_pending() can rebuild
/// the group and candidate list a debt refers to.  Keyed by
/// (group hash, backend); last request wins.
struct Registered {
  StencilGroup group;
  std::vector<TuneCandidate> candidates;
  int warmup = 1;
  int reps = 3;
};

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Registered>& registry() {
  static std::map<std::string, Registered>* reg =
      new std::map<std::string, Registered>();  // leak on purpose: atexit
                                                // refinement may run late
  return *reg;
}

void register_request(const tune::TuneKey& key, const StencilGroup& group,
                      const std::vector<TuneCandidate>& candidates, int warmup,
                      int reps) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[key.group + '\x1f' + key.backend] =
      Registered{group, candidates, warmup, reps};
}

/// Append one sweep's lines (every timing + the best + extras) in a
/// single atomic batch.
void record_sweep(const tune::TuneStore& store, const tune::TuneKey& key,
                  const std::string& names, const std::string& label,
                  const std::vector<TuneCandidate>& candidates,
                  const TuneResult& result,
                  std::vector<std::string> extra_lines = {}) {
  if (!store.enabled()) return;
  std::vector<std::string> lines;
  for (size_t c = 0; c < result.timings.size(); ++c) {
    const TuneTiming& t = result.timings[c];
    const CompileOptions& opts =
        c < candidates.size() ? candidates[c].options : CompileOptions{};
    lines.push_back(
        tune::TuneStore::timing_line(key, names, label, t.label, opts,
                                     t.seconds));
  }
  double best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& t : result.timings) {
    if (t.label == result.best.label) {
      best_seconds = std::min(best_seconds, t.seconds);
    }
  }
  lines.push_back(tune::TuneStore::best_line(
      key, names, label, result.best.label, result.best.options,
      best_seconds));
  for (auto& l : extra_lines) lines.push_back(std::move(l));
  std::string error;
  if (!store.append(lines, &error)) {
    SF_LOG_WARN("tune store append failed: " << error);
  }
}

/// Find a stored best in a shape class neighbouring `key` (same group,
/// backend and machine).  The most recently recorded neighbour wins.
const tune::KeyRecord* find_neighbour(const tune::TuneDb& db,
                                      const tune::TuneKey& key) {
  const tune::KeyRecord* found = nullptr;
  for (const auto& [ks, rec] : db.records) {
    if (rec.key.group != key.group || rec.key.backend != key.backend ||
        rec.key.machine != key.machine || rec.best_cand.empty()) {
      continue;
    }
    if (!tune::neighbouring_shape_class(rec.key.shape, key.shape)) continue;
    if (found == nullptr || rec.ts > found->ts) found = &rec;
  }
  return found;
}

void schedule_exit_refinement() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    std::atexit([] {
      const int refined = Tuner().refine_pending();
      if (refined > 0) {
        SF_LOG_INFO("tune: refined " << refined << " pending debt(s) at exit");
      }
    });
  });
}

}  // namespace

Tuner::Tuner(std::function<double()> now)
    : now_(now ? std::move(now) : steady_now) {}

TuneResult Tuner::tune(const StencilGroup& group, GridSet& grids,
                       const ParamMap& params, const std::string& backend,
                       const std::vector<TuneCandidate>& candidates,
                       int warmup, int reps) const {
  SF_REQUIRE(!candidates.empty(), "tune requires at least one candidate");
  SF_REQUIRE(reps >= 1, "tune requires reps >= 1");

  const tune::TuneStore store;
  if (!store.enabled()) {
    return sweep(group, grids, params, backend, candidates, warmup, reps);
  }

  trace::Span span("tune:" + backend, "tune");
  const ShapeMap shapes = shapes_of(grids);
  const tune::TuneKey key = make_key(group, backend, shapes);
  const std::string names = group_names(group);
  const std::string label = kernel_label(group, shapes);
  register_request(key, group, candidates, warmup, reps);
  if (const char* env = std::getenv("SNOWFLAKE_TUNE_REFINE_AT_EXIT");
      env != nullptr && *env && *env != '0') {
    schedule_exit_refinement();
  }

  tune::TuneDb db;
  store.load(&db);

  // Tier 1: exact hit — stored best for this very key, zero recompiles
  // and zero timing reps.
  if (const auto it = db.records.find(key.str());
      it != db.records.end() && !it->second.best_cand.empty()) {
    const tune::KeyRecord& rec = it->second;
    TuneResult result;
    result.best.label = rec.best_cand;
    bool have_options = false;
    for (const auto& c : candidates) {
      if (c.label == rec.best_cand) {
        result.best.options = c.options;
        have_options = true;
        break;
      }
    }
    if (!have_options) {
      have_options = tune::decode_options(rec.best_opts, &result.best.options);
    }
    if (have_options) {
      for (const auto& t : rec.timings) {
        result.timings.push_back(TuneTiming{t.cand, t.seconds});
      }
      trace::TraceCollector::instance().increment("tuner.store_hit");
      SF_LOG_INFO("tune: store hit for " << label << " -> " << rec.best_cand);
      return result;
    }
    // Undecodable stored best (foreign schema?): treat as a cold miss.
  }

  // Tier 2: near miss — a neighbouring shape class seeds a pruned
  // re-validation sweep, and the unseen shape joins the debt queue.
  if (const tune::KeyRecord* nb = find_neighbour(db, key)) {
    CompileOptions seed_opts;
    if (tune::decode_options(nb->best_opts, &seed_opts)) {
      std::vector<TuneCandidate> pruned;
      for (const auto& c : candidates) {
        if (tune::options_distance(c.options, seed_opts) <= 1) {
          pruned.push_back(c);
        }
      }
      if (!pruned.empty() && pruned.size() < candidates.size()) {
        trace::TraceCollector::instance().increment("tuner.store_near");
        SF_LOG_INFO("tune: near miss for " << label << " (neighbour "
                                           << nb->key.shape << "), sweeping "
                                           << pruned.size() << "/"
                                           << candidates.size()
                                           << " candidates");
        TuneResult result =
            sweep(group, grids, params, backend, pruned, warmup, reps);
        record_sweep(store, key, names, label, pruned, result,
                     {tune::TuneStore::debt_line(
                         key, names, static_cast<int>(group.rank()),
                         tune::TuneStore::encode_shapes(shapes),
                         tune::TuneStore::encode_params(params))});
        return result;
      }
    }
  }

  // Tier 3: cold miss — full sweep, record every timing.
  trace::TraceCollector::instance().increment("tuner.store_miss");
  TuneResult result =
      sweep(group, grids, params, backend, candidates, warmup, reps);
  record_sweep(store, key, names, label, candidates, result);
  return result;
}

TuneResult Tuner::refine(const StencilGroup& group, GridSet& grids,
                         const ParamMap& params, const std::string& backend,
                         const std::vector<TuneCandidate>& candidates,
                         int warmup, int reps) const {
  SF_REQUIRE(!candidates.empty(), "refine requires at least one candidate");
  trace::Span span("tune:refine", "tune");
  TuneResult result =
      sweep(group, grids, params, backend, candidates, warmup, reps);
  const tune::TuneStore store;
  if (store.enabled()) {
    const ShapeMap shapes = shapes_of(grids);
    const tune::TuneKey key = make_key(group, backend, shapes);
    record_sweep(store, key, group_names(group), kernel_label(group, shapes),
                 candidates, result,
                 {tune::TuneStore::debt_done_line(key)});
  }
  return result;
}

int Tuner::refine_pending() const {
  const tune::TuneStore store;
  if (!store.enabled()) return 0;
  tune::TuneDb db;
  store.load(&db);
  int refined = 0;
  for (const auto& [ks, debt] : db.debts) {
    if (debt.open <= 0) continue;
    // Timings never transfer across machines.
    if (debt.key.machine != fingerprint().id) continue;
    Registered req;
    {
      std::lock_guard<std::mutex> lock(registry_mutex());
      const auto it = registry().find(debt.key.group + '\x1f' +
                                      debt.key.backend);
      if (it == registry().end()) continue;  // group unknown to this process
      req = it->second;
    }
    ShapeMap shapes;
    ParamMap params;
    if (!tune::TuneStore::decode_shapes(debt.shapes, &shapes) ||
        shapes.empty() ||
        !tune::TuneStore::decode_params(debt.params, &params)) {
      continue;
    }
    GridSet gs;
    std::uint64_t seed = 1;
    for (const auto& [name, shape] : shapes) {
      gs.add_zeros(name, shape).fill_random(seed++, -1.0, 1.0);
    }
    refine(req.group, gs, params, debt.key.backend, req.candidates,
           req.warmup, req.reps);
    ++refined;
  }
  return refined;
}

TuneResult Tuner::sweep(const StencilGroup& group, GridSet& grids,
                        const ParamMap& params, const std::string& backend,
                        const std::vector<TuneCandidate>& candidates,
                        int warmup, int reps) const {
  trace::Span span("tune:sweep", "tune");
  // Compile every candidate up front, concurrently: the JIT toolchain
  // forks one host-compiler process per module, so candidate compilations
  // overlap almost perfectly (the kernel cache admits one compile per key
  // and shares the result).  Timing below stays strictly serial so the
  // measurement protocol is unchanged.
  std::vector<std::unique_ptr<CompiledKernel>> kernels(candidates.size());
  std::vector<std::exception_ptr> errors(candidates.size());
  {
    std::atomic<size_t> next{0};
    const size_t workers = std::min(
        candidates.size(),
        static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency())));
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < candidates.size();
           i = next.fetch_add(1)) {
        try {
          kernels[i] = compile(group, grids, backend, candidates[i].options);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
    }
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Snapshot live grid contents: trial runs mutate grids, and restoring
  // after every candidate both isolates the measurements and lets callers
  // tune in place on live data (the multigrid warm-start path).
  const std::vector<std::string> names = grids.names();
  std::vector<std::vector<double>> saved(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    const Grid& g = grids.at(names[i]);
    saved[i].assign(g.data(), g.data() + g.size());
  }
  auto restore = [&] {
    for (size_t i = 0; i < names.size(); ++i) {
      Grid& g = grids.at(names[i]);
      std::copy(saved[i].begin(), saved[i].end(), g.data());
    }
  };

  TuneResult result;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < candidates.size(); ++c) {
    const TuneCandidate& candidate = candidates[c];
    const auto& kernel = kernels[c];
    for (int i = 0; i < warmup; ++i) kernel->run(grids, params);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; ++i) {
      const double start = now_();
      kernel->run(grids, params);
      const double dt = now_() - start;
      if (dt < best) best = dt;
    }
    // A time-tiled kernel performs several sweeps per run; compare all
    // candidates on per-sweep cost.
    best /= kernel->fused_sweeps();
    SF_LOG_INFO("tune: " << candidate.label << " -> " << best << " s");
    result.timings.push_back(TuneTiming{candidate.label, best});
    if (best < best_seconds) {
      best_seconds = best;
      result.best = candidate;
    }
    restore();
  }
  return result;
}

std::vector<TuneCandidate> default_tile_candidates(int rank,
                                                   const Index& extents) {
  SF_REQUIRE(rank >= 1, "default_tile_candidates requires rank >= 1");
  std::vector<TuneCandidate> out;
  // Tile edges clamp to the actual grid extents when known: on a small
  // grid, wide tiles degenerate to the same kernel and dedup below.
  auto tile_of = [&](std::int64_t t) {
    Index tile(static_cast<size_t>(rank), t);
    for (size_t d = 0; d < tile.size(); ++d) {
      if (d < extents.size() && extents[d] > 0) {
        tile[d] = std::min(tile[d], extents[d]);
      }
    }
    return tile;
  };
  // Spatial sweep: untiled + cubic tiles, with/without multicolor fusion
  // (tasks, the paper's default scheduling).
  for (const bool fuse : {false, true}) {
    const std::string suffix = fuse ? "+fuse" : "";
    CompileOptions untiled;
    untiled.fuse_colors = fuse;
    out.push_back(TuneCandidate{"untiled" + suffix, untiled});
    for (std::int64_t t : {4, 8, 16, 32}) {
      CompileOptions opt;
      opt.tile = tile_of(t);
      opt.fuse_colors = fuse;
      out.push_back(
          TuneCandidate{"tile" + std::to_string(t) + suffix, opt});
    }
  }
  // Scheduling style: worksharing-for comparators for the strongest
  // spatial candidates.
  for (const bool fuse : {false, true}) {
    CompileOptions opt;
    opt.schedule = CompileOptions::Schedule::ParallelFor;
    opt.fuse_colors = fuse;
    out.push_back(TuneCandidate{fuse ? "for+fuse" : "for", opt});
  }
  // Temporal blocking: fused sweep depths x spatial tile (per-sweep cost
  // is what tune() compares, so these race the candidates above fairly).
  for (const int depth : {2, 4}) {
    for (std::int64_t t : {16, 32}) {
      CompileOptions opt;
      opt.time_tile = depth;
      opt.tile = tile_of(t);
      out.push_back(TuneCandidate{"tt" + std::to_string(depth) + "_tile" +
                                      std::to_string(t),
                                  opt});
    }
  }
  // Wavefront temporal blocking: the snapshot-free skewed slab sweep
  // (tile[0] is the slab width; see backend.hpp CompileOptions::wavefront).
  for (const int depth : {2, 4}) {
    CompileOptions opt;
    opt.time_tile = depth;
    opt.wavefront = true;
    opt.tile = tile_of(16);
    out.push_back(
        TuneCandidate{"wf" + std::to_string(depth) + "_tile16", opt});
  }
  // Explicit-SIMD rows: its own candidate axis (also effective on the
  // sequential backend, which compiles with -fopenmp-simd).
  for (const bool fuse : {false, true}) {
    CompileOptions opt;
    opt.simd_rows = true;
    opt.fuse_colors = fuse;
    out.push_back(TuneCandidate{fuse ? "simdrows+fuse" : "simdrows", opt});
  }
  // Address-arithmetic ablation comparators.
  for (const bool fuse : {false, true}) {
    CompileOptions opt;
    opt.addr_opt = false;
    opt.fuse_colors = fuse;
    out.push_back(TuneCandidate{fuse ? "noaddr+fuse" : "noaddr", opt});
  }
  // Drop exact-duplicate option sets (same options_salt), keeping the
  // first label: clamped tiles above can collide on small grids.
  std::set<std::string> seen;
  std::vector<TuneCandidate> unique;
  for (auto& c : out) {
    if (seen.insert(options_salt(c.options)).second) {
      unique.push_back(std::move(c));
    }
  }
  return unique;
}

std::vector<TuneCandidate> default_dist_candidates(int rank,
                                                   const Index& extents,
                                                   int ranks) {
  SF_REQUIRE(rank >= 1, "default_dist_candidates requires rank >= 1");
  SF_REQUIRE(ranks >= 1, "default_dist_candidates requires ranks >= 1");
  std::vector<TuneCandidate> out;
  const std::string r = std::to_string(ranks);
  // Decomposition shape: dim-0 slabs, the surface-minimizing
  // auto-factorization, and (in 2D+) the transposed slab — each with the
  // pipelined schedule and its BSP ablation.
  std::vector<std::pair<std::string, Index>> grids;
  {
    Index slab(static_cast<size_t>(rank), 1);
    slab[0] = ranks;
    grids.emplace_back("slab" + r, std::move(slab));
  }
  grids.emplace_back("auto" + r, Index{ranks});
  if (rank >= 2) {
    Index tslab(static_cast<size_t>(rank), 1);
    tslab[static_cast<size_t>(rank) - 1] = ranks;
    grids.emplace_back("tslab" + r, std::move(tslab));
  }
  for (auto& [label, grid] : grids) {
    for (const bool pipelined : {true, false}) {
      CompileOptions opt;
      opt.dist_grid = grid;
      opt.dist_pipeline = pipelined;
      out.push_back(TuneCandidate{label + (pipelined ? "" : "+bsp"), opt});
    }
  }
  // Overlap ablation on the auto-factorized grid.
  {
    CompileOptions opt;
    opt.dist_grid = {ranks};
    opt.dist_overlap = false;
    out.push_back(TuneCandidate{"auto" + r + "+noovl", opt});
  }
  (void)extents;
  std::set<std::string> seen;
  std::vector<TuneCandidate> unique;
  for (auto& c : out) {
    if (seen.insert(options_salt(c.options)).second) {
      unique.push_back(std::move(c));
    }
  }
  return unique;
}

}  // namespace snowflake
