#include "device/sim_device.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(SimDevice, K20cSpecMatchesPaper) {
  const DeviceSpec spec = DeviceSpec::k20c();
  EXPECT_DOUBLE_EQ(spec.bandwidth_bytes_per_s, 127e9);  // paper's ERT number
  EXPECT_EQ(spec.compute_units, 13);
}

TEST(SimDevice, BandwidthBoundDispatch) {
  const SimDevice dev(DeviceSpec::k20c());
  DispatchStats stats;
  stats.workgroups = 10000;
  stats.bytes = 127e9;  // exactly one second of traffic at full efficiency
  stats.flops = 1.0;
  stats.efficiency = 1.0;
  EXPECT_NEAR(dev.dispatch_seconds(stats), 1.0, 0.01);
}

TEST(SimDevice, EfficiencyStretchesMemoryTime) {
  const SimDevice dev(DeviceSpec::k20c());
  DispatchStats stats;
  stats.workgroups = 100;
  stats.bytes = 1e9;
  stats.efficiency = 1.0;
  const double full = dev.dispatch_seconds(stats);
  stats.efficiency = 0.5;
  EXPECT_NEAR(dev.dispatch_seconds(stats) / full, 2.0, 0.05);
}

TEST(SimDevice, LaunchOverheadFloorsSmallDispatches) {
  const SimDevice dev(DeviceSpec::k20c());
  DispatchStats stats;
  stats.workgroups = 1;
  stats.bytes = 64.0;  // one cache line
  stats.flops = 10.0;
  EXPECT_GE(dev.dispatch_seconds(stats), DeviceSpec::k20c().launch_overhead_s);
  // The overhead floor is why small multigrid levels flatten on the GPU
  // (paper Fig. 8's small-size behaviour).
  EXPECT_LT(dev.dispatch_seconds(stats),
            2.0 * DeviceSpec::k20c().launch_overhead_s);
}

TEST(SimDevice, FlopBoundWhenComputeHeavy) {
  const SimDevice dev(DeviceSpec::k20c());
  DispatchStats stats;
  stats.workgroups = 1000;
  stats.bytes = 8.0;
  stats.flops = 1.17e12;  // one second of peak DP
  EXPECT_NEAR(dev.dispatch_seconds(stats), 1.0, 0.01);
}

TEST(SimDevice, WorkgroupSchedulingCost) {
  DeviceSpec spec = DeviceSpec::k20c();
  spec.launch_overhead_s = 0.0;
  const SimDevice dev(spec);
  DispatchStats stats;
  stats.bytes = 1.0;
  stats.flops = 1.0;
  stats.workgroups = 13 * 1000;  // 1000 rounds across 13 CUs
  EXPECT_NEAR(dev.dispatch_seconds(stats), 1000 * spec.workgroup_cost_s, 1e-6);
}

TEST(SimDevice, InvalidSpecsRejected) {
  DeviceSpec spec = DeviceSpec::k20c();
  spec.bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(SimDevice{spec}, InvalidArgument);
}

TEST(SimDevice, HostPreset) {
  const DeviceSpec host = DeviceSpec::host(20e9, 4);
  EXPECT_EQ(host.compute_units, 4);
  EXPECT_DOUBLE_EQ(host.bandwidth_bytes_per_s, 20e9);
}

}  // namespace
}  // namespace snowflake
