// Tests for the snowcheck greedy minimizer: stencil/rect dropping,
// expression simplification, shape shrinking, the predicate-call budget,
// and the is_valid gate.

#include <gtest/gtest.h>

#include <string>

#include "ir/stencil_library.hpp"
#include "support/hash.hpp"
#include "verify/minimize.hpp"
#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {
namespace {

GridSpec spec(Index shape, const std::string& name) {
  return GridSpec{std::move(shape), fnv1a64(name), 0.5, 1.5};
}

/// Three stencils, three grid pairs; only "bad" matters to the predicate.
Program three_stencil_program() {
  Program p;
  for (const char* g : {"a", "b", "c", "d"}) p.grids[g] = spec({12, 12}, g);
  p.params["w"] = 0.5;
  ExprPtr blur_a = 0.25 * (read("a", {1, 0}) + read("a", {-1, 0}) +
                           read("a", {0, 1}) + read("a", {0, -1}));
  ExprPtr bad = param("w") * read("b", {1, 1}) + 0.125 * read("b", {-1, -1});
  ExprPtr blur_c = 0.5 * read("c", {0, 0}) + 0.5 * read("c", {1, 0});
  p.group.append(Stencil("fine", blur_a, "b", lib::interior(2)));
  p.group.append(Stencil("bad", bad, "c", lib::interior(2)));
  p.group.append(Stencil("tail", blur_c, "d", lib::interior(2)));
  return p;
}

bool has_stencil(const Program& p, const std::string& name) {
  for (const auto& s : p.group.stencils()) {
    if (s.name() == name) return true;
  }
  return false;
}

TEST(Minimize, DropsIrrelevantStencilsAndPrunesGrids) {
  const Program full = three_stencil_program();
  MinimizeStats stats;
  const Program out = minimize(
      full, [](const Program& c) { return has_stencil(c, "bad"); }, &stats);
  EXPECT_EQ(out.group.size(), 1u);
  EXPECT_TRUE(has_stencil(out, "bad"));
  // Grids the surviving group never touches are pruned (the predicate only
  // pins the stencil's name, so even its input reads may simplify away);
  // the output grid always survives.
  EXPECT_EQ(out.grids.count("a"), 0u);
  EXPECT_EQ(out.grids.count("d"), 0u);
  EXPECT_EQ(out.grids.count("c"), 1u);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_TRUE(is_valid(out));
}

TEST(Minimize, SimplifiesExpressionsToTheFailingRead) {
  const Program full = three_stencil_program();
  // Failure depends only on a read of "b" somewhere in the group.
  const auto still_fails = [](const Program& c) {
    for (const auto& s : c.group.stencils()) {
      if (s.inputs().count("b") > 0) return true;
    }
    return false;
  };
  ASSERT_TRUE(still_fails(full));
  const Program out = minimize(full, still_fails);
  ASSERT_TRUE(still_fails(out));
  EXPECT_EQ(out.group.size(), 1u);
  // The 2-tap "bad" expression collapses: at most one read survives, and
  // the param has been folded away.
  const auto& s = out.group.stencils()[0];
  int b_reads = 0;
  for (const auto* r : collect_reads(s.expr())) {
    if (r->grid() == "b") ++b_reads;
  }
  EXPECT_LE(b_reads, 1);
  EXPECT_TRUE(params_used(s.expr()).empty());
}

TEST(Minimize, ShrinksShapes) {
  Program p;
  p.grids["x"] = spec({24, 24}, "x");
  p.grids["y"] = spec({24, 24}, "y");
  p.group.append(Stencil("copy", 1.0 * read("x", {0, 0}), "y",
                         lib::interior(2)));
  const Program out =
      minimize(p, [](const Program& c) { return is_valid(c); });
  // Still failing (predicate is always true on valid programs), so the
  // shapes should have been walked down toward the floor.  Only the output
  // grid is guaranteed to survive — the input read may simplify away.
  ASSERT_EQ(out.grids.count("y"), 1u);
  EXPECT_LT(out.grids.at("y").shape[0], 24);
  EXPECT_GT(out.grids.at("y").shape[0], 3);
}

TEST(Minimize, ReturnsInputWhenPredicateAlreadyPasses) {
  const Program full = three_stencil_program();
  MinimizeStats stats;
  const Program out =
      minimize(full, [](const Program&) { return false; }, &stats);
  EXPECT_EQ(out.describe(), full.describe());
  EXPECT_EQ(stats.accepted, 0);
}

TEST(Minimize, RespectsPredicateCallBudget) {
  const Program full = three_stencil_program();
  MinimizeStats stats;
  minimize(
      full, [](const Program& c) { return !c.group.empty(); }, &stats,
      /*max_predicate_calls=*/10);
  // The entry still-fails check is one call on top of the shrink budget.
  EXPECT_LE(stats.predicate_calls, 11);
}

TEST(Minimize, NeverHandsThePredicateAnInvalidProgram) {
  const Program full = three_stencil_program();
  int invalid_seen = 0;
  minimize(full, [&](const Program& c) {
    if (!is_valid(c)) ++invalid_seen;
    return has_stencil(c, "bad");
  });
  EXPECT_EQ(invalid_seen, 0);
}

}  // namespace
}  // namespace snowcheck
}  // namespace snowflake
