// Tests for the snowcheck regression corpus and the reproducer emitter.
// Every checked-in entry must replay green; the two latent-bug entries
// (the PR 3 rank-1 pragma collision and the distsim thin-slab program)
// are additionally pinned by name so they cannot silently disappear.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "verify/corpus.hpp"
#include "verify/minimize.hpp"
#include "verify/repro.hpp"

namespace snowflake {
namespace snowcheck {
namespace {

TEST(Corpus, EntriesAreWellFormed) {
  const auto entries = corpus();
  ASSERT_GE(entries.size(), 5u);
  std::set<std::string> names;
  for (const auto& e : entries) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.note.empty()) << e.name;
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
    EXPECT_TRUE(is_valid(e.program)) << e.name;
  }
  // The two distilled latent bugs must stay pinned.
  EXPECT_EQ(names.count("pr3-rank1-for-simd"), 1u);
  EXPECT_EQ(names.count("distsim-thin-slab"), 1u);
}

TEST(Corpus, EveryEntryReplaysGreen) {
  for (const auto& e : corpus()) {
    const ReplayOutcome outcome = replay(e);
    EXPECT_TRUE(outcome.ok)
        << e.name << ": status " << static_cast<int>(outcome.result.status)
        << " " << outcome.result.message << " (max diff "
        << outcome.result.max_diff << ")";
  }
}

TEST(Corpus, ThinSlabEntryNowMatchesViaMultiHopExchange) {
  // PR 4 pinned this entry as a clean rejection (one-hop exchange could
  // not serve a radius-2 halo from 1-row slabs).  The owner-direct
  // multi-hop exchange makes the decomposition legal, so the entry now
  // pins the exact answer: a Rejected or Mismatch here means the deep
  // halo regressed to stale rows.
  for (const auto& e : corpus()) {
    if (e.name != "distsim-thin-slab") continue;
    ASSERT_FALSE(e.expect_rejected);
    const DiffResult r = diff_variant(e.program, e.variant);
    EXPECT_EQ(r.status, DiffStatus::Match) << r.message;
    EXPECT_LE(r.max_diff, 1e-12);
  }
}

TEST(Repro, EmitsSelfContainedSource) {
  for (const auto& e : corpus()) {
    const std::string src = emit_repro(e.program, e.variant);
    EXPECT_NE(src.find("int main()"), std::string::npos) << e.name;
    EXPECT_NE(src.find("compile(group, actual, \"" + e.variant.backend),
              std::string::npos)
        << e.name;
    EXPECT_NE(src.find("fused_sweeps()"), std::string::npos) << e.name;
    for (const auto& [grid, spec] : e.program.grids) {
      (void)spec;
      EXPECT_NE(src.find("add_zeros(\"" + grid + "\""), std::string::npos)
          << e.name << " missing grid " << grid;
    }
    for (const auto& s : e.program.group.stencils()) {
      EXPECT_NE(src.find("Stencil(\"" + s.name() + "\""), std::string::npos)
          << e.name << " missing stencil " << s.name();
    }
  }
}

TEST(Repro, RoundTripsIndexMapsAndOptions) {
  const auto entries = corpus();
  for (const auto& e : entries) {
    const std::string src = emit_repro(e.program, e.variant);
    if (e.name == "addr-multiplicative") {
      EXPECT_NE(src.find("read_mapped(\"fine\""), std::string::npos);
      EXPECT_NE(src.find("DimMap{2, -1, 1}"), std::string::npos);
    }
    if (e.name == "interp-divisive") {
      EXPECT_NE(src.find("DimMap{1, 1, 2}"), std::string::npos);
      EXPECT_NE(src.find("opt.simd = true;"), std::string::npos);
      EXPECT_NE(src.find("Schedule::ParallelFor"), std::string::npos);
    }
    if (e.name == "timetile-chain") {
      EXPECT_NE(src.find("opt.time_tile = 2;"), std::string::npos);
      EXPECT_NE(src.find("opt.tile = Index(2, 4);"), std::string::npos);
    }
    if (e.name == "distsim-thin-slab") {
      EXPECT_NE(src.find("opt.dist_ranks = 6;"), std::string::npos);
      // A repro for a distsim failure must round-trip the ablation
      // toggles too: flip them on a copy of the entry's variant.
      Variant toggled = e.variant;
      toggled.options.dist_overlap = false;
      toggled.options.dist_prune = false;
      const std::string off = emit_repro(e.program, toggled);
      EXPECT_NE(off.find("opt.dist_overlap = false;"), std::string::npos);
      EXPECT_NE(off.find("opt.dist_prune = false;"), std::string::npos);
      EXPECT_EQ(src.find("opt.dist_overlap"), std::string::npos);
    }
  }
}

TEST(Repro, MinimizedCorpusEntryStillEmits) {
  // Exercise the minimize -> emit pipeline end to end with a predicate
  // that keeps the multiplicative map alive.
  for (const auto& e : corpus()) {
    if (e.name != "addr-multiplicative") continue;
    const auto still_fails = [](const Program& c) {
      for (const auto& s : c.group.stencils()) {
        for (const auto* r : collect_reads(s.expr())) {
          for (int d = 0; d < r->map().rank(); ++d) {
            if (r->map().dim(d).num == 2) return true;
          }
        }
      }
      return false;
    };
    const Program minimized = minimize(e.program, still_fails);
    ASSERT_TRUE(still_fails(minimized));
    const std::string src = emit_repro(minimized, e.variant);
    EXPECT_NE(src.find("read_mapped"), std::string::npos);
    EXPECT_NE(src.find("int main()"), std::string::npos);
  }
}

}  // namespace
}  // namespace snowcheck
}  // namespace snowflake
