// Tests for the snowcheck program generator: determinism, validity across
// seeds, and coverage of every §2 language feature somewhere in the seed
// stream.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "verify/differ.hpp"
#include "verify/generate.hpp"
#include "verify/program.hpp"

namespace snowflake {
namespace snowcheck {
namespace {

struct Features {
  bool multi_stencil = false;
  bool multi_rect = false;
  bool strided_rect = false;
  bool pinned_dim = false;
  bool negative_bound = false;
  bool mul_map = false;       // restriction-style num == 2
  bool div_map = false;       // interpolation-style den == 2
  bool param_use = false;
  bool in_place = false;      // stencil reads its own output grid
  bool negative_offset = false;
  bool reduce_sum = false;    // sum reduction into a one-cell grid
  bool reduce_max = false;
  bool reduce_dot = false;
  bool reduce_strided = false;  // reduction over a strided multi-rect union
};

void scan_expr(const ExprPtr& expr, const std::string& output, Features* f) {
  switch (expr->kind()) {
    case ExprKind::Param:
      f->param_use = true;
      break;
    case ExprKind::GridRead: {
      const auto* r = static_cast<const GridReadExpr*>(expr.get());
      if (r->grid() == output) f->in_place = true;
      for (int d = 0; d < r->map().rank(); ++d) {
        const DimMap& m = r->map().dim(d);
        if (m.num == 2) f->mul_map = true;
        if (m.den == 2) f->div_map = true;
        if (m.off < 0) f->negative_offset = true;
      }
      break;
    }
    case ExprKind::Binary: {
      const auto* b = static_cast<const BinaryExpr*>(expr.get());
      scan_expr(b->lhs(), output, f);
      scan_expr(b->rhs(), output, f);
      break;
    }
    case ExprKind::Unary:
      scan_expr(static_cast<const UnaryExpr*>(expr.get())->operand(), output,
                f);
      break;
    case ExprKind::Reduce: {
      const auto* r = static_cast<const ReduceExpr*>(expr.get());
      if (r->op() == ReduceOp::Sum) f->reduce_sum = true;
      if (r->op() == ReduceOp::Max) f->reduce_max = true;
      if (r->op() == ReduceOp::Dot) f->reduce_dot = true;
      scan_expr(r->body(), output, f);
      break;
    }
    case ExprKind::Constant:
      break;
  }
}

void scan_program(const Program& p, Features* f) {
  if (p.group.size() > 1) f->multi_stencil = true;
  for (const auto& s : p.group.stencils()) {
    if (s.domain().rect_count() > 1) f->multi_rect = true;
    for (const auto& rect : s.domain().rects()) {
      for (const auto& dr : rect.dims()) {
        if (dr.stride > 1) f->strided_rect = true;
        if (dr.stride == 0) f->pinned_dim = true;
        if (dr.start < 0 || dr.stop < 0) f->negative_bound = true;
      }
    }
    scan_expr(s.expr(), s.output(), f);
    if (s.is_reduction() && s.domain().rect_count() > 1) {
      f->reduce_strided = true;
    }
  }
}

TEST(Generator, SameSeedSameProgram) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    const Program a = generate_program(seed);
    const Program b = generate_program(seed);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
    // The grid recipes must also materialize identically.
    GridSet ga = a.materialize();
    GridSet gb = b.materialize();
    for (const auto& [name, spec] : a.grids) {
      (void)spec;
      EXPECT_EQ(Grid::max_abs_diff(ga.at(name), gb.at(name)), 0.0)
          << "seed " << seed << " grid " << name;
    }
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  // Not a hard guarantee per pair, but across a handful of seeds at least
  // two distinct programs must appear or the generator is ignoring seeds.
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    distinct.insert(generate_program(seed).describe());
  }
  EXPECT_GT(distinct.size(), 4u);
}

TEST(Generator, AllSeedsValid) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Program p = generate_program(seed);
    EXPECT_FALSE(p.group.stencils().empty()) << "seed " << seed;
    EXPECT_TRUE(is_valid(p)) << "seed " << seed << "\n" << p.describe();
  }
}

TEST(Generator, SeedStreamCoversEveryLanguageFeature) {
  Features f;
  for (std::uint64_t seed = 1; seed <= 250; ++seed) {
    scan_program(generate_program(seed), &f);
  }
  EXPECT_TRUE(f.multi_stencil) << "no multi-stencil group generated";
  EXPECT_TRUE(f.multi_rect) << "no multi-rect DomainUnion generated";
  EXPECT_TRUE(f.strided_rect) << "no strided rect generated";
  EXPECT_TRUE(f.pinned_dim) << "no pinned (stride-0) face dim generated";
  EXPECT_TRUE(f.negative_bound) << "no grid-relative negative bound";
  EXPECT_TRUE(f.mul_map) << "no multiplicative (restriction) map";
  EXPECT_TRUE(f.div_map) << "no divisive (interpolation) map";
  EXPECT_TRUE(f.param_use) << "no scalar param use";
  EXPECT_TRUE(f.in_place) << "no in-place (multicolor) update";
  EXPECT_TRUE(f.negative_offset) << "no negative read offset";
  EXPECT_TRUE(f.reduce_sum) << "no sum reduction generated";
  EXPECT_TRUE(f.reduce_max) << "no max reduction generated";
  EXPECT_TRUE(f.reduce_dot) << "no dot reduction generated";
  EXPECT_TRUE(f.reduce_strided) << "no reduction over a strided union";
}

TEST(Generator, GeneratedProgramsRunOnReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Program p = generate_program(seed);
    GridSet grids = p.materialize();
    auto kernel = compile(p.group, grids, "reference");
    EXPECT_NO_THROW(kernel->run(grids, p.params)) << "seed " << seed;
  }
}

TEST(Generator, DifferMatchesOnGeneratedPrograms) {
  // A quick differential pass over the C backend variants; the full matrix
  // is exercised by the snowfuzz smoke ctest entry.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Program p = generate_program(seed);
    for (const DiffResult& r : diff_program(p, kDefaultTol, "c")) {
      EXPECT_FALSE(r.failed())
          << "seed " << seed << " variant " << r.variant << ": " << r.message
          << " (max diff " << r.max_diff << ")\n"
          << p.describe();
    }
  }
}

TEST(Generator, VariantMatrixCoversBackendsAndOptions) {
  const auto matrix = variant_matrix();
  bool c = false, omp_for = false, omp_tasks = false, ocl = false,
       dist = false, tiled = false, fused = false, tt = false, simd = false,
       noaddr = false;
  for (const Variant& v : matrix) {
    if (v.backend == "c") c = true;
    if (v.backend == "openmp" &&
        v.options.schedule == CompileOptions::Schedule::ParallelFor) {
      omp_for = true;
    }
    if (v.backend == "openmp" &&
        v.options.schedule == CompileOptions::Schedule::Tasks) {
      omp_tasks = true;
    }
    if (v.backend == "oclsim") ocl = true;
    if (v.backend == "distsim") dist = true;
    if (v.tile_edge > 0) tiled = true;
    if (v.options.fuse_stencils || v.options.fuse_colors) fused = true;
    if (v.options.time_tile > 1) tt = true;
    if (v.options.simd) simd = true;
    if (!v.options.addr_opt) noaddr = true;
  }
  EXPECT_TRUE(c && omp_for && omp_tasks && ocl && dist);
  EXPECT_TRUE(tiled && fused && tt && simd && noaddr);
  // Prefix filtering.
  for (const Variant& v : variants_matching("distsim")) {
    EXPECT_EQ(v.backend, "distsim");
  }
  EXPECT_EQ(variants_matching("").size(), matrix.size());
}

}  // namespace
}  // namespace snowcheck
}  // namespace snowflake
