// Wire-layer tests: generated marshalling round-trips, bounds-checked
// decode, and the framing failure modes a daemon must survive — torn
// frames, oversized lengths, version mismatches, bad magic, trailing
// garbage.

#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

namespace snowflake::service {
namespace {

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
};

TEST(Wire, CompileRequestRoundTrip) {
  CompileRequest req;
  req.client = "test-client";
  req.group_hash = "deadbeef";
  req.source = std::string("void sf_kernel() {}\n") + std::string(4096, 'x');
  req.openmp = true;
  req.extra_flags = {"-march=native", "-funroll-loops"};
  req.pin = true;

  std::string payload;
  encode(req, &payload);
  CompileRequest back;
  std::string why;
  ASSERT_TRUE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size(), &back, &why))
      << why;
  EXPECT_EQ(back.client, req.client);
  EXPECT_EQ(back.group_hash, req.group_hash);
  EXPECT_EQ(back.source, req.source);
  EXPECT_EQ(back.openmp, req.openmp);
  EXPECT_EQ(back.extra_flags, req.extra_flags);
  EXPECT_EQ(back.pin, req.pin);
}

TEST(Wire, ExecuteRequestRoundTripWithGrids) {
  ExecuteRequest req;
  req.client = "c";
  req.sweeps = 7;
  GridBlob blob;
  blob.name = "u";
  blob.extents = {3, 4};
  blob.data.resize(12);
  for (int i = 0; i < 12; ++i) blob.data[i] = i * 0.5;
  req.grids.push_back(blob);
  req.params = {1.0, -2.5};

  std::string payload;
  encode(req, &payload);
  ExecuteRequest back;
  std::string why;
  ASSERT_TRUE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size(), &back, &why))
      << why;
  ASSERT_EQ(back.grids.size(), 1u);
  EXPECT_EQ(back.grids[0].name, "u");
  EXPECT_EQ(back.grids[0].extents, (std::vector<std::int64_t>{3, 4}));
  EXPECT_EQ(back.grids[0].data, blob.data);
  EXPECT_EQ(back.params, req.params);
  EXPECT_EQ(back.sweeps, 7u);
}

TEST(Wire, StatusResponseRoundTrip) {
  StatusResponse st;
  st.protocol_version = kWireVersion;
  st.pid = 4242;
  st.uptime_seconds = 1.5;
  st.cache_dir = "/tmp/x";
  st.cache_max_bytes = 1u << 30;
  st.compiles = 3;
  st.coalesced = 9;
  st.peak_clients = 17;

  std::string payload;
  encode(st, &payload);
  StatusResponse back;
  std::string why;
  ASSERT_TRUE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size(), &back, &why))
      << why;
  EXPECT_EQ(back.pid, 4242u);
  EXPECT_EQ(back.cache_max_bytes, 1u << 30);
  EXPECT_EQ(back.coalesced, 9u);
  EXPECT_EQ(back.peak_clients, 17u);
}

TEST(Wire, DecodeRejectsTruncatedPayload) {
  CompileRequest req;
  req.source = "some source text";
  std::string payload;
  encode(req, &payload);
  for (std::size_t cut : {payload.size() - 1, payload.size() / 2,
                          std::size_t{3}, std::size_t{0}}) {
    CompileRequest back;
    std::string why;
    EXPECT_FALSE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                        cut, &back, &why))
        << "decode accepted a payload truncated to " << cut << " bytes";
  }
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  PingRequest req;
  req.nonce = 99;
  std::string payload;
  encode(req, &payload);
  payload.append("extra");
  PingRequest back;
  std::string why;
  EXPECT_FALSE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                      payload.size(), &back, &why));
  EXPECT_NE(why.find("trailing"), std::string::npos) << why;
}

TEST(Wire, DecodeRejectsAbsurdElementCount) {
  // A corrupt count field must be rejected by the count*min-size sanity
  // check, not honoured with a giant allocation.
  ExecuteRequest req;
  std::string payload;
  encode(req, &payload);
  // params count is the last u32 in the payload (empty vector): patch it.
  ASSERT_GE(payload.size(), 4u);
  const std::uint32_t absurd = 0xFFFFFFFFu;
  std::memcpy(payload.data() + payload.size() - 4, &absurd, 4);
  ExecuteRequest back;
  std::string why;
  EXPECT_FALSE(decode(reinterpret_cast<const std::uint8_t*>(payload.data()),
                      payload.size(), &back, &why));
}

TEST(Wire, FrameRoundTripOverSocket) {
  SocketPair sp;
  PingRequest req;
  req.nonce = 0xABCDEFu;
  send_message(sp.a, req);
  Frame frame;
  std::uint32_t version = 0;
  ASSERT_TRUE(read_frame(sp.b, &frame, &version));
  EXPECT_EQ(version, kWireVersion);
  EXPECT_EQ(frame.type, PingRequest::kTypeId);
  const PingRequest back = expect_message<PingRequest>(frame);
  EXPECT_EQ(back.nonce, 0xABCDEFu);
}

TEST(Wire, CleanEofReturnsFalse) {
  SocketPair sp;
  close(sp.a);
  sp.a = -1;
  Frame frame;
  EXPECT_FALSE(read_frame(sp.b, &frame));
}

TEST(Wire, TornHeaderThrows) {
  SocketPair sp;
  const char partial[6] = {'S', 'N', 'W', 'F', 1, 0};
  ASSERT_EQ(write(sp.a, partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  close(sp.a);
  sp.a = -1;
  Frame frame;
  EXPECT_THROW(read_frame(sp.b, &frame), WireError);
}

TEST(Wire, TornPayloadThrows) {
  SocketPair sp;
  // Header claims 100 payload bytes; deliver 10 then die.
  unsigned char header[16] = {'S', 'N', 'W', 'F'};
  header[4] = static_cast<unsigned char>(kWireVersion);
  header[8] = static_cast<unsigned char>(PingRequest::kTypeId);
  header[12] = 100;
  ASSERT_EQ(write(sp.a, header, sizeof header), 16);
  ASSERT_EQ(write(sp.a, "0123456789", 10), 10);
  close(sp.a);
  sp.a = -1;
  Frame frame;
  try {
    read_frame(sp.b, &frame);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos)
        << e.what();
  }
}

TEST(Wire, VersionMismatchThrowsWithCode) {
  SocketPair sp;
  unsigned char header[16] = {'S', 'N', 'W', 'F'};
  header[4] = 99;  // future version
  ASSERT_EQ(write(sp.a, header, sizeof header), 16);
  Frame frame;
  std::uint32_t version = 0;
  try {
    read_frame(sp.b, &frame, &version);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), kErrBadVersion);
    EXPECT_EQ(version, 99u);  // the peer's claim is surfaced
    EXPECT_NE(std::string(e.what()).find("v99"), std::string::npos)
        << e.what();
  }
}

TEST(Wire, OversizedFrameThrowsWithCode) {
  SocketPair sp;
  unsigned char header[16] = {'S', 'N', 'W', 'F'};
  header[4] = static_cast<unsigned char>(kWireVersion);
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header + 12, &huge, 4);
  ASSERT_EQ(write(sp.a, header, sizeof header), 16);
  Frame frame;
  try {
    read_frame(sp.b, &frame);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), kErrOversized);
  }
}

TEST(Wire, BadMagicThrows) {
  SocketPair sp;
  unsigned char header[16] = {'H', 'T', 'T', 'P'};
  ASSERT_EQ(write(sp.a, header, sizeof header), 16);
  Frame frame;
  EXPECT_THROW(read_frame(sp.b, &frame), WireError);
}

TEST(Wire, ExpectMessageSurfacesErrorReply) {
  SocketPair sp;
  ErrorReply err;
  err.code = kErrOverloaded;
  err.message = "at capacity";
  send_message(sp.a, err);
  Frame frame;
  ASSERT_TRUE(read_frame(sp.b, &frame));
  try {
    expect_message<PingResponse>(frame);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at capacity"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(kErrOverloaded)), std::string::npos)
        << what;
  }
}

TEST(Wire, MessageNamesResolve) {
  EXPECT_STREQ(message_name(CompileRequest::kTypeId), "CompileRequest");
  EXPECT_STREQ(message_name(ErrorReply::kTypeId), "ErrorReply");
  EXPECT_STREQ(message_name(0xDEAD), "unknown");
}

}  // namespace
}  // namespace snowflake::service
