// CompileService integration tests, in-process against a real Unix-domain
// socket: single-flight dedup across concurrent clients, eviction under
// pin, pin release on disconnect, admission control, malformed-frame
// handling, warm-cache restart, and wire shutdown.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "jit/module.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace fs = std::filesystem;

namespace snowflake::service {
namespace {

struct TestEnv : ::testing::Environment {
  void SetUp() override { std::signal(SIGPIPE, SIG_IGN); }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new TestEnv);  // NOLINT

std::string source_for(int i) {
  return "void sf_kernel(double** grids, const double* params) {\n"
         "  (void)params; grids[0][0] = " +
         std::to_string(i) + ".0;\n}\n";
}

/// A service on a unique socket + cache dir, torn down with the test.
struct ServiceFixture {
  explicit ServiceFixture(const std::string& tag,
                          std::uint64_t max_bytes = 0, int max_clients = 64) {
    const auto base = fs::temp_directory_path() /
                      ("sf_svc_" + tag + "_" + std::to_string(getpid()));
    fs::remove_all(base);
    fs::create_directories(base);
    root = base.string();
    ServiceConfig config;
    config.socket_path = root + "/d.sock";
    config.cache_dir = root + "/cache";
    config.cache_max_bytes = max_bytes;
    config.max_clients = max_clients;
    service = std::make_unique<CompileService>(config);
    service->start();
  }
  ~ServiceFixture() {
    if (service) service->stop();
    fs::remove_all(root);
  }
  ServiceClient client(const std::string& name = "test") {
    ClientConfig config;
    config.socket_path = service->socket_path();
    config.client_name = name;
    return ServiceClient(config);
  }
  std::string root;
  std::unique_ptr<CompileService> service;
};

/// Raw connected socket for protocol-abuse tests.
int raw_connect(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

TEST(Service, CompileHitAndLoadableArtifact) {
  ServiceFixture fx("basic");
  auto client = fx.client();
  const CompileResponse first = client.compile(source_for(1), false, {});
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_TRUE(first.compiled);
  EXPECT_GT(first.artifact_bytes, 0u);

  // The returned artifact must be loadable by the client process.
  double cell = 0.0;
  double* grid = &cell;
  double* grids[] = {grid};
  Module(first.so_path).kernel("sf_kernel")(grids, nullptr);
  EXPECT_EQ(cell, 1.0);

  const CompileResponse again = client.compile(source_for(1), false, {});
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.memory_hit);
  EXPECT_EQ(again.key, first.key);
}

TEST(Service, CompileFailureIsAnAnswerNotAHangup) {
  ServiceFixture fx("badsrc");
  auto client = fx.client();
  const CompileResponse resp = client.compile("this is not C\n", false, {});
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("JIT compilation failed"), std::string::npos)
      << resp.error;
  // The connection survives a failed compile.
  EXPECT_GT(client.ping(7), 0u);
}

TEST(Service, ConcurrentClientsSingleFlight) {
  ServiceFixture fx("dedup");
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fx, &ok, i] {
      auto client = fx.client("c" + std::to_string(i));
      const CompileResponse r = client.compile(source_for(2), false, {});
      if (r.ok && fs::exists(r.so_path)) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  const auto stats = fx.service->cache().stats();
  EXPECT_EQ(stats.compiles, 1u) << "N racing clients must compile once";
  EXPECT_EQ(stats.memory_hits + stats.disk_hits,
            static_cast<std::uint64_t>(kClients - 1));
}

TEST(Service, EvictionRespectsPins) {
  ServiceFixture fx("evict", /*max_bytes=*/1);
  auto client = fx.client();
  const CompileResponse pinned =
      client.compile(source_for(3), false, {}, /*pin=*/true);
  ASSERT_TRUE(pinned.ok) << pinned.error;
  for (int i = 4; i < 7; ++i) {
    ASSERT_TRUE(client.compile(source_for(i), false, {}).ok);
  }
  const auto stats = fx.service->cache().stats();
  EXPECT_GE(stats.evictions, 3u);
  EXPECT_TRUE(fs::exists(pinned.so_path))
      << "eviction must never unlink a pinned artifact";

  const ReleaseResponse rel = client.release(pinned.key);
  EXPECT_TRUE(rel.ok) << rel.error;
  EXPECT_FALSE(fs::exists(pinned.so_path));
  // Releasing a pin we no longer hold is refused.
  EXPECT_FALSE(client.release(pinned.key).ok);
}

TEST(Service, DisconnectReleasesPins) {
  ServiceFixture fx("pinleak");
  std::string key;
  {
    auto client = fx.client();
    const CompileResponse r =
        client.compile(source_for(8), false, {}, /*pin=*/true);
    ASSERT_TRUE(r.ok);
    key = r.key;
    EXPECT_EQ(fx.service->cache().pin_count(key), 1u);
  }
  // The daemon unpins on connection teardown (async to the destructor).
  for (int i = 0; i < 100 && fx.service->cache().pin_count(key) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.service->cache().pin_count(key), 0u)
      << "a crashed client must not leak its pins";
}

TEST(Service, RestartServesWarmCache) {
  const auto base = fs::temp_directory_path() /
                    ("sf_svc_warm_" + std::to_string(getpid()));
  fs::remove_all(base);
  ServiceConfig config;
  config.socket_path = (base / "d.sock").string();
  config.cache_dir = (base / "cache").string();
  {
    CompileService first(config);
    first.start();
    ClientConfig cc;
    cc.socket_path = first.socket_path();
    const CompileResponse r =
        ServiceClient(cc).compile(source_for(9), false, {});
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.compiled);
    first.stop();
  }
  CompileService second(config);
  second.start();
  ClientConfig cc;
  cc.socket_path = second.socket_path();
  const CompileResponse r = ServiceClient(cc).compile(source_for(9), false, {});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.disk_hit) << "restarted daemon must serve the on-disk cache";
  EXPECT_FALSE(r.compiled);
  second.stop();
  fs::remove_all(base);
}

TEST(Service, SecondDaemonOnLiveSocketRefuses) {
  ServiceFixture fx("busy");
  ServiceConfig config;
  config.socket_path = fx.service->socket_path();
  config.cache_dir = fx.root + "/cache2";
  CompileService second(config);
  EXPECT_THROW(second.start(), WireError);
  // The live daemon is unharmed.
  EXPECT_GT(fx.client().ping(1), 0u);
}

TEST(Service, AdmissionControlRejectsOverCapacity) {
  ServiceFixture fx("admit", 0, /*max_clients=*/1);
  auto first = fx.client("holder");
  EXPECT_GT(first.ping(1), 0u);  // occupies the single slot
  try {
    auto second = fx.client("rejected");
    second.ping(2);
    FAIL() << "expected the overloaded daemon to reject the second client";
  } catch (const WireError&) {
    // Depending on timing the client sees either the kErrOverloaded
    // ErrorReply or the closed connection; both surface as WireError.
  }
  for (int i = 0; i < 100 && fx.service->counters().rejections == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fx.service->counters().rejections, 1u);
  // The first client is still served.
  EXPECT_GT(first.ping(3), 0u);
}

TEST(Service, VersionMismatchGetsCleanError) {
  ServiceFixture fx("version");
  const int fd = raw_connect(fx.service->socket_path());
  unsigned char header[16] = {'S', 'N', 'W', 'F'};
  header[4] = 99;  // claim a future wire version
  header[8] = static_cast<unsigned char>(PingRequest::kTypeId);
  ASSERT_EQ(write(fd, header, sizeof header), 16);
  Frame frame;
  ASSERT_TRUE(read_frame(fd, &frame));
  ASSERT_EQ(frame.type, ErrorReply::kTypeId);
  const auto err = expect_message<ErrorReply>(frame);
  EXPECT_EQ(err.code, kErrBadVersion);
  EXPECT_NE(err.message.find("v99"), std::string::npos) << err.message;
  close(fd);
  EXPECT_GE(fx.service->counters().protocol_errors, 1u);
}

TEST(Service, OversizedFrameGetsCleanError) {
  ServiceFixture fx("oversize");
  const int fd = raw_connect(fx.service->socket_path());
  unsigned char header[16] = {'S', 'N', 'W', 'F'};
  header[4] = static_cast<unsigned char>(kWireVersion);
  header[8] = static_cast<unsigned char>(CompileRequest::kTypeId);
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header + 12, &huge, 4);
  ASSERT_EQ(write(fd, header, sizeof header), 16);
  Frame frame;
  ASSERT_TRUE(read_frame(fd, &frame));
  const auto err = expect_message<ErrorReply>(frame);
  EXPECT_EQ(err.code, kErrOversized);
  close(fd);
}

TEST(Service, UnknownTypeGetsCleanError) {
  ServiceFixture fx("unknown");
  const int fd = raw_connect(fx.service->socket_path());
  write_frame(fd, /*type=*/999, "");
  Frame frame;
  ASSERT_TRUE(read_frame(fd, &frame));
  const auto err = expect_message<ErrorReply>(frame);
  EXPECT_EQ(err.code, kErrUnknownType);
  close(fd);
}

TEST(Service, TornFrameIsSurvivable) {
  ServiceFixture fx("torn");
  {
    const int fd = raw_connect(fx.service->socket_path());
    unsigned char header[16] = {'S', 'N', 'W', 'F'};
    header[4] = static_cast<unsigned char>(kWireVersion);
    header[8] = static_cast<unsigned char>(CompileRequest::kTypeId);
    header[12] = 200;  // promise 200 payload bytes
    ASSERT_EQ(write(fd, header, sizeof header), 16);
    ASSERT_EQ(write(fd, "partial", 7), 7);
    close(fd);  // die mid-payload
  }
  // The daemon keeps serving other clients.
  EXPECT_GT(fx.client().ping(4), 0u);
  for (int i = 0; i < 100 && fx.service->counters().protocol_errors == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fx.service->counters().protocol_errors, 1u);
}

TEST(Service, ExecuteValidatesGridGeometry) {
  ServiceFixture fx("exec");
  auto client = fx.client();
  GridBlob blob;
  blob.name = "g";
  blob.extents = {4, 4};
  blob.data.resize(3);  // claims 16 points, carries 3
  const ExecuteResponse resp =
      client.execute(source_for(5), false, {}, 1, {blob}, {});
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("16"), std::string::npos) << resp.error;
}

TEST(Service, ExecuteRunsServerSide) {
  ServiceFixture fx("exec2");
  auto client = fx.client();
  GridBlob blob;
  blob.name = "g";
  blob.extents = {2, 2};
  blob.data = {0.0, 0.0, 0.0, 0.0};
  const ExecuteResponse resp =
      client.execute(source_for(6), false, {}, 3, {blob}, {});
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_EQ(resp.grids.size(), 1u);
  EXPECT_EQ(resp.grids[0].data[0], 6.0);  // kernel writes 6.0 into [0]
  EXPECT_GE(resp.run_seconds, 0.0);
}

TEST(Service, StatusReflectsActivity) {
  ServiceFixture fx("status");
  auto client = fx.client();
  ASSERT_TRUE(client.compile(source_for(7), false, {}).ok);
  const StatusResponse st = client.status();
  EXPECT_EQ(st.protocol_version, kWireVersion);
  EXPECT_EQ(st.pid, static_cast<std::uint64_t>(getpid()));
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_GE(st.requests, 2u);
  EXPECT_GE(st.active_clients, 1u);
  EXPECT_FALSE(st.cache_dir.empty());
}

TEST(Service, WireShutdownWakesWaiter) {
  ServiceFixture fx("shutdown");
  std::atomic<bool> wire_requested{false};
  std::thread waiter([&] {
    wire_requested = fx.service->wait_for_shutdown_request();
  });
  const ShutdownResponse resp = fx.client().shutdown();
  EXPECT_TRUE(resp.ok);
  waiter.join();
  EXPECT_TRUE(wire_requested.load());
  fx.service->stop();
  EXPECT_FALSE(fs::exists(fx.service->socket_path()))
      << "stop() must remove the socket file";
}

}  // namespace
}  // namespace snowflake::service
