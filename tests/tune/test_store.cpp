// Persistent tune-store tests: encoding round-trips, the shape-class
// neighbour predicate, the three warm-start tiers end to end against a
// real database file, loader tolerance of torn lines, and two-process
// append atomicity (each sweep is one O_APPEND write(2) batch).

#include "tune/store.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <clocale>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <locale>

#include "ir/stencil_library.hpp"
#include "jit/cache.hpp"
#include "trace/trace.hpp"
#include "tune/tuner.hpp"

namespace snowflake {
namespace {

using tune::TuneDb;
using tune::TuneKey;
using tune::TuneStore;

TEST(TuneStoreCodec, OptionsRoundTrip) {
  CompileOptions o;
  o.tile = {4, 8};
  o.fuse_colors = true;
  o.fuse_stencils = true;
  o.simd = true;
  o.simd_rows = true;
  o.schedule = CompileOptions::Schedule::ParallelFor;
  o.time_tile = 3;
  o.addr_opt = false;
  o.wavefront = true;
  o.dist_grid = {2, 3};
  o.dist_pipeline = false;

  CompileOptions back;
  ASSERT_TRUE(tune::decode_options(tune::encode_options(o), &back));
  // options_salt covers every knob; equal salts == equal options.
  EXPECT_EQ(options_salt(back), options_salt(o));
  EXPECT_EQ(tune::options_distance(o, back), 0);

  CompileOptions defaults;
  ASSERT_TRUE(tune::decode_options(tune::encode_options(defaults), &back));
  EXPECT_EQ(options_salt(back), options_salt(defaults));
}

TEST(TuneStoreCodec, OptionsDecodeRejectsUnknownInput) {
  CompileOptions out;
  EXPECT_FALSE(tune::decode_options("not an encoding", &out));
  // A future schema knob this build does not know -> refuse (the tuner
  // falls back to a full sweep rather than guessing).
  EXPECT_FALSE(tune::decode_options(
      tune::encode_options(CompileOptions{}) + ";zz=1", &out));
}

TEST(TuneStoreCodec, ShapesAndParamsRoundTrip) {
  const ShapeMap shapes{{"out", {6, 7}}, {"x", {6, 7}}};
  ShapeMap shapes_back;
  ASSERT_TRUE(
      TuneStore::decode_shapes(TuneStore::encode_shapes(shapes), &shapes_back));
  EXPECT_EQ(shapes_back, shapes);

  const ParamMap params{{"h2inv", 1.5}, {"w", 0.30000000000000004}};
  ParamMap params_back;
  ASSERT_TRUE(
      TuneStore::decode_params(TuneStore::encode_params(params), &params_back));
  EXPECT_EQ(params_back, params);
}

TEST(TuneStoreCodec, ShapeClassAndNeighbours) {
  EXPECT_EQ(tune::shape_class({{"x", {32, 32}}}), "r2|5.5");
  EXPECT_EQ(tune::shape_class({{"out", {10, 10}}, {"x", {6, 48}}}),
            "r2|3.3|2.5");

  EXPECT_TRUE(tune::neighbouring_shape_class("r2|3.3|3.3", "r2|2.2|2.2"));
  EXPECT_TRUE(tune::neighbouring_shape_class("r2|3.3", "r2|3.4"));
  // Equal classes are exact hits, not neighbours.
  EXPECT_FALSE(tune::neighbouring_shape_class("r2|3.3", "r2|3.3"));
  // Any bucket more than one apart is out of range.
  EXPECT_FALSE(tune::neighbouring_shape_class("r2|3.3", "r2|5.3"));
  // Structure (grid count, rank) must match exactly.
  EXPECT_FALSE(tune::neighbouring_shape_class("r2|3.3", "r2|3.3|3.3"));
  EXPECT_FALSE(tune::neighbouring_shape_class("r2|3.3", "r3|3.3.3"));
}

/// Points $SNOWFLAKE_TUNE_DB at a fresh per-test file and restores the
/// environment afterwards, so the warm-start tiers run hermetically.
class TuneStoreTiers : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("SNOWFLAKE_TUNE_DB");
    if (prev != nullptr) prev_ = prev;
    path_ = ::testing::TempDir() + "/tune_store_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
    setenv("SNOWFLAKE_TUNE_DB", path_.c_str(), 1);
  }

  void TearDown() override {
    if (prev_.empty()) {
      unsetenv("SNOWFLAKE_TUNE_DB");
    } else {
      setenv("SNOWFLAKE_TUNE_DB", prev_.c_str(), 1);
    }
    std::remove(path_.c_str());
  }

  static GridSet grids(std::int64_t n) {
    GridSet gs;
    gs.add_zeros("x", {n, n}).fill_random(1, -1.0, 1.0);
    gs.add_zeros("out", {n, n});
    return gs;
  }

  /// untiled / tile4 / tile4+fuse: distances 0/1/2 from the untiled best,
  /// so a near-miss prunes exactly one candidate class away.
  static std::vector<TuneCandidate> three_candidates() {
    std::vector<TuneCandidate> c(3);
    c[0].label = "untiled";
    c[1].label = "tile4";
    c[1].options.tile = {4, 4};
    c[2].label = "tile4+fuse";
    c[2].options.tile = {4, 4};
    c[2].options.fuse_colors = true;
    return c;
  }

  static double counter(const std::string& name) {
    const auto counters = trace::TraceCollector::instance().counters();
    const auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  }

  std::string path_;
  std::string prev_;
};

TEST_F(TuneStoreTiers, ExactHitSkipsCompilesAndTiming) {
  GridSet gs = grids(12);
  const auto candidates = three_candidates();
  size_t reads = 0;
  // A monotone scripted clock: every candidate measures the same 1.0s
  // delta, and the strictly-less comparison keeps the first -> "untiled".
  Tuner tuner([&] { return static_cast<double>(++reads); });
  const StencilGroup group(lib::cc_apply(2, "x", "out"));
  const ParamMap params{{"h2inv", 1.0}};

  const double miss0 = counter("tuner.store_miss");
  const TuneResult cold =
      tuner.tune(group, gs, params, "c", candidates, /*warmup=*/0, /*reps=*/1);
  EXPECT_EQ(counter("tuner.store_miss"), miss0 + 1.0);
  EXPECT_EQ(cold.best.label, "untiled");
  ASSERT_EQ(cold.timings.size(), candidates.size());
  const size_t cold_reads = reads;
  EXPECT_EQ(cold_reads, 2u * candidates.size());

  // Second tune of the same key: answered from the store with zero
  // kernel compiles/loads and zero timing reps (zero clock reads).
  const KernelCache::Stats before = KernelCache::instance().stats();
  const double hit0 = counter("tuner.store_hit");
  const TuneResult warm =
      tuner.tune(group, gs, params, "c", candidates, /*warmup=*/0, /*reps=*/1);
  const KernelCache::Stats after = KernelCache::instance().stats();

  EXPECT_EQ(counter("tuner.store_hit"), hit0 + 1.0);
  EXPECT_EQ(reads, cold_reads);
  EXPECT_EQ(after.compiles, before.compiles);
  EXPECT_EQ(after.disk_hits, before.disk_hits);
  EXPECT_EQ(after.memory_hits, before.memory_hits);
  EXPECT_EQ(warm.best.label, cold.best.label);
  EXPECT_EQ(options_salt(warm.best.options), options_salt(cold.best.options));
  // The stored timings replay so callers still see the sweep evidence.
  EXPECT_EQ(warm.timings.size(), cold.timings.size());

  TuneDb db;
  ASSERT_TRUE(TuneStore().load(&db));
  EXPECT_EQ(db.skipped, 0);
  ASSERT_EQ(db.records.size(), 1u);
  EXPECT_EQ(db.records.begin()->second.best_cand, "untiled");
}

TEST_F(TuneStoreTiers, NearMissPrunesAndEnqueuesDebt) {
  const StencilGroup group(lib::cc_apply(2, "x", "out"));
  const auto candidates = three_candidates();
  const ParamMap params{{"h2inv", 1.0}};
  size_t reads = 0;
  Tuner tuner([&] { return static_cast<double>(++reads); });

  // Cold at 10^2 (log2 bucket 3) seeds the store.
  GridSet big = grids(10);
  tuner.tune(group, big, params, "reference", candidates, 0, 1);

  // 6^2 (bucket 2) is a neighbouring class: the sweep keeps only the
  // candidates within options-distance 1 of the stored best, and the
  // unseen shape class joins the debt queue.
  GridSet small = grids(6);
  const double near0 = counter("tuner.store_near");
  const TuneResult near =
      tuner.tune(group, small, params, "reference", candidates, 0, 1);
  EXPECT_EQ(counter("tuner.store_near"), near0 + 1.0);
  EXPECT_EQ(near.timings.size(), 2u);  // untiled + tile4; tile4+fuse pruned
  EXPECT_LT(near.timings.size(), candidates.size());

  TuneDb db;
  ASSERT_TRUE(TuneStore().load(&db));
  ASSERT_EQ(db.debts.size(), 1u);
  const tune::DebtRecord& debt = db.debts.begin()->second;
  EXPECT_EQ(debt.open, 1);
  EXPECT_EQ(debt.rank, 2);
  ShapeMap debt_shapes;
  ASSERT_TRUE(TuneStore::decode_shapes(debt.shapes, &debt_shapes));
  EXPECT_EQ(debt_shapes.at("x"), (Index{6, 6}));

  // refine_pending() pays the debt from the in-process registry: a full
  // sweep at the debted shape, and the queue entry closes.
  EXPECT_EQ(Tuner().refine_pending(), 1);
  TuneDb refined;
  ASSERT_TRUE(TuneStore().load(&refined));
  for (const auto& [ks, d] : refined.debts) EXPECT_LE(d.open, 0);
  // The debted class now has its own stored best: the next query there
  // is an exact hit.
  const double hit0 = counter("tuner.store_hit");
  tuner.tune(group, small, params, "reference", candidates, 0, 1);
  EXPECT_EQ(counter("tuner.store_hit"), hit0 + 1.0);
}

TEST_F(TuneStoreTiers, LoaderToleratesTornAndForeignLines) {
  TuneKey key{"deadbeefdeadbeef", "c", "m0", "r2|3.3|3.3"};
  const CompileOptions opts;
  ASSERT_TRUE(TuneStore().append(
      {TuneStore::timing_line(key, "s", "l", "untiled", opts, 0.25),
       TuneStore::best_line(key, "s", "l", "untiled", opts, 0.25)}));
  {
    std::ofstream f(path_, std::ios::app);
    f << "{\"schema\":\"other-schema\",\"kind\":\"best\"}\n";
    f << "garbage not json\n";
    f << "{\"schema\":\"snowflake-tune-v1\",\"kind\":\"timing\",\"tru";  // torn
  }
  TuneDb db;
  ASSERT_TRUE(TuneStore().load(&db));
  EXPECT_EQ(db.skipped, 3);
  ASSERT_EQ(db.records.size(), 1u);
  const tune::KeyRecord& rec = db.records.at(key.str());
  EXPECT_EQ(rec.best_cand, "untiled");
  ASSERT_EQ(rec.timings.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.timings[0].seconds, 0.25);
}

/// A numpunct facet mimicking de_DE decimal commas (the container has no
/// installed comma locale to name).
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST_F(TuneStoreTiers, RoundTripsSubMicrosecondTimingsUnderCommaLocale) {
  // Force a de_DE-style global locale for the whole write/read cycle:
  // field serialization and reload must stay locale-independent, and
  // sub-microsecond timings must not be truncated to zero.
  const std::locale previous = std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimal));
  for (const char* name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) break;
  }
  struct Restore {
    std::locale prev;
    ~Restore() {
      std::setlocale(LC_NUMERIC, "C");
      std::locale::global(prev);
    }
  } restore{previous};

  TuneKey key{"feedfacefeedface", "c", "m0", "r2|3.3|3.3"};
  const CompileOptions opts;
  const double tiny = 3.2e-7;  // sub-microsecond best time
  ASSERT_TRUE(TuneStore().append(
      {TuneStore::timing_line(key, "s", "l", "untiled", opts, tiny),
       TuneStore::best_line(key, "s", "l", "untiled", opts, tiny)}));

  // The file itself must use '.'-decimals (valid cross-machine JSONL).
  {
    std::ifstream f(path_);
    std::string content((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("3.2e-07"), std::string::npos) << content;
    EXPECT_EQ(content.find("3,2"), std::string::npos) << content;
  }

  TuneDb db;
  ASSERT_TRUE(TuneStore().load(&db));
  EXPECT_EQ(db.skipped, 0);
  ASSERT_EQ(db.records.size(), 1u);
  const tune::KeyRecord& rec = db.records.at(key.str());
  ASSERT_EQ(rec.timings.size(), 1u);
  EXPECT_EQ(rec.timings[0].seconds, tiny);  // exact, not truncated
  EXPECT_EQ(rec.best_seconds, tiny);

  // Param maps with non-integral values survive the same cycle.
  const ParamMap params{{"h2inv", 1.5}, {"eps", 3.2e-7}};
  ParamMap params_back;
  ASSERT_TRUE(
      TuneStore::decode_params(TuneStore::encode_params(params), &params_back));
  EXPECT_EQ(params_back, params);
}

TEST(TuneStoreAtomicity, TwoProcessAppendBatches) {
  const std::string path = ::testing::TempDir() + "/tune_store_atomic_" +
                           std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  const TuneStore store(path);
  constexpr int kBatches = 64;
  constexpr int kTimingsPerBatch = 3;

  // Two concurrent writers, one O_APPEND write(2) per batch: the merged
  // file must contain every line intact — no interleaving, no tearing.
  auto writer = [&](const std::string& group) {
    TuneKey key{group, "c", "m0", "r2|3.3|3.3"};
    const CompileOptions opts;
    for (int b = 0; b < kBatches; ++b) {
      std::vector<std::string> lines;
      for (int t = 0; t < kTimingsPerBatch; ++t) {
        lines.push_back(TuneStore::timing_line(
            key, "s", "l", "cand" + std::to_string(t), opts, 0.5));
      }
      lines.push_back(TuneStore::best_line(key, "s", "l", "cand0", opts, 0.5));
      if (!store.append(lines)) _exit(1);
    }
    _exit(0);
  };

  const pid_t a = fork();
  ASSERT_GE(a, 0);
  if (a == 0) writer("aaaaaaaaaaaaaaaa");
  const pid_t b = fork();
  ASSERT_GE(b, 0);
  if (b == 0) writer("bbbbbbbbbbbbbbbb");
  int status = 0;
  ASSERT_EQ(waitpid(a, &status, 0), a);
  EXPECT_EQ(status, 0);
  ASSERT_EQ(waitpid(b, &status, 0), b);
  EXPECT_EQ(status, 0);

  TuneDb db;
  ASSERT_TRUE(store.load(&db));
  EXPECT_EQ(db.skipped, 0);
  ASSERT_EQ(db.records.size(), 2u);
  for (const auto& [ks, rec] : db.records) {
    EXPECT_EQ(rec.timings.size(),
              static_cast<size_t>(kBatches * kTimingsPerBatch));
    EXPECT_EQ(rec.best_cand, "cand0");
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snowflake
