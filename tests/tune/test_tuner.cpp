#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include "ir/stencil_library.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

GridSet apply_grids(std::int64_t n) {
  GridSet gs;
  gs.add_zeros("x", {n, n}).fill_random(1, -1.0, 1.0);
  gs.add_zeros("out", {n, n});
  return gs;
}

TEST(Tuner, PicksFastestWithInjectedClock) {
  // A scripted clock makes candidate timings deterministic: candidate 0
  // takes "3s" per rep, candidate 1 takes "1s", candidate 2 takes "2s".
  // Sequence per candidate: warmup (no reads)... the tuner reads the clock
  // twice per rep.  warmup=0, reps=1 -> 2 reads per candidate.
  std::vector<double> script = {0.0, 3.0,   // candidate 0
                                10.0, 11.0, // candidate 1
                                20.0, 22.0};  // candidate 2
  size_t cursor = 0;
  Tuner tuner([&] { return script.at(cursor++); });

  GridSet gs = apply_grids(10);
  std::vector<TuneCandidate> candidates(3);
  candidates[0].label = "slow";
  candidates[1].label = "fast";
  candidates[2].label = "medium";
  candidates[2].options.tile = {4, 4};

  const TuneResult result =
      tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs,
                 {{"h2inv", 1.0}}, "reference", candidates, /*warmup=*/0,
                 /*reps=*/1);
  EXPECT_EQ(result.best.label, "fast");
  ASSERT_EQ(result.timings.size(), 3u);
  EXPECT_DOUBLE_EQ(result.timings[0].seconds, 3.0);
  EXPECT_DOUBLE_EQ(result.timings[1].seconds, 1.0);
  EXPECT_DOUBLE_EQ(result.timings[2].seconds, 2.0);
}

TEST(Tuner, RealClockSmoke) {
  GridSet gs = apply_grids(18);
  const auto candidates = default_tile_candidates(2);
  Tuner tuner;
  const TuneResult result =
      tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs,
                 {{"h2inv", 1.0}}, "c", candidates, 1, 2);
  EXPECT_FALSE(result.best.label.empty());
  EXPECT_EQ(result.timings.size(), candidates.size());
  for (const auto& t : result.timings) EXPECT_GT(t.seconds, 0.0);
}

TEST(Tuner, DefaultCandidates) {
  const auto c2 = default_tile_candidates(2);
  // (untiled + 4 tile sizes) x fusion, 2 parallel-for comparators,
  // time-tile depths {2,4} x tiles {16,32}, and 2 addr-off comparators.
  EXPECT_EQ(c2.size(), 18u);
  EXPECT_EQ(c2[0].label, "untiled");
  EXPECT_TRUE(c2[0].options.tile.empty());
  EXPECT_EQ(c2[2].options.tile, (Index{8, 8}));
  EXPECT_TRUE(c2[5].options.fuse_colors);
  EXPECT_EQ(c2[10].label, "for");
  EXPECT_EQ(c2[10].options.schedule, CompileOptions::Schedule::ParallelFor);
  EXPECT_EQ(c2[12].label, "tt2_tile16");
  EXPECT_EQ(c2[12].options.time_tile, 2);
  EXPECT_EQ(c2[12].options.tile, (Index{16, 16}));
  EXPECT_EQ(c2[15].options.time_tile, 4);
  EXPECT_EQ(c2[16].label, "noaddr");
  EXPECT_FALSE(c2[16].options.addr_opt);
  EXPECT_EQ(c2[17].label, "noaddr+fuse");
  EXPECT_FALSE(c2[17].options.addr_opt);
  EXPECT_TRUE(c2[17].options.fuse_colors);
}

TEST(Tuner, RejectsEmptyCandidates) {
  GridSet gs = apply_grids(10);
  Tuner tuner;
  EXPECT_THROW(tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs, {},
                          "reference", {}),
               InvalidArgument);
}

}  // namespace
}  // namespace snowflake
