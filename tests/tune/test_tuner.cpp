#include "tune/tuner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "backend/backend.hpp"
#include "ir/stencil_library.hpp"
#include "jit/cache.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

GridSet apply_grids(std::int64_t n) {
  GridSet gs;
  gs.add_zeros("x", {n, n}).fill_random(1, -1.0, 1.0);
  gs.add_zeros("out", {n, n});
  return gs;
}

TEST(Tuner, PicksFastestWithInjectedClock) {
  // A scripted clock makes candidate timings deterministic: candidate 0
  // takes "3s" per rep, candidate 1 takes "1s", candidate 2 takes "2s".
  // Sequence per candidate: warmup (no reads)... the tuner reads the clock
  // twice per rep.  warmup=0, reps=1 -> 2 reads per candidate.
  std::vector<double> script = {0.0, 3.0,   // candidate 0
                                10.0, 11.0, // candidate 1
                                20.0, 22.0};  // candidate 2
  size_t cursor = 0;
  Tuner tuner([&] { return script.at(cursor++); });

  GridSet gs = apply_grids(10);
  std::vector<TuneCandidate> candidates(3);
  candidates[0].label = "slow";
  candidates[1].label = "fast";
  candidates[2].label = "medium";
  candidates[2].options.tile = {4, 4};

  const TuneResult result =
      tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs,
                 {{"h2inv", 1.0}}, "reference", candidates, /*warmup=*/0,
                 /*reps=*/1);
  EXPECT_EQ(result.best.label, "fast");
  ASSERT_EQ(result.timings.size(), 3u);
  EXPECT_DOUBLE_EQ(result.timings[0].seconds, 3.0);
  EXPECT_DOUBLE_EQ(result.timings[1].seconds, 1.0);
  EXPECT_DOUBLE_EQ(result.timings[2].seconds, 2.0);
}

TEST(Tuner, RealClockSmoke) {
  GridSet gs = apply_grids(18);
  const auto candidates = default_tile_candidates(2);
  Tuner tuner;
  const TuneResult result =
      tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs,
                 {{"h2inv", 1.0}}, "c", candidates, 1, 2);
  EXPECT_FALSE(result.best.label.empty());
  EXPECT_EQ(result.timings.size(), candidates.size());
  for (const auto& t : result.timings) EXPECT_GT(t.seconds, 0.0);
}

TEST(Tuner, DefaultCandidates) {
  const auto c2 = default_tile_candidates(2);
  // (untiled + 4 tile sizes) x fusion, 2 parallel-for comparators,
  // time-tile depths {2,4} x tiles {16,32}, 2 wavefront depths, 2
  // explicit-SIMD-row comparators and 2 addr-off comparators.
  ASSERT_EQ(c2.size(), 22u);
  EXPECT_EQ(c2[0].label, "untiled");
  EXPECT_TRUE(c2[0].options.tile.empty());
  EXPECT_EQ(c2[2].options.tile, (Index{8, 8}));
  EXPECT_EQ(c2[5].label, "untiled+fuse");
  EXPECT_TRUE(c2[5].options.fuse_colors);
  EXPECT_EQ(c2[10].label, "for");
  EXPECT_EQ(c2[10].options.schedule, CompileOptions::Schedule::ParallelFor);
  EXPECT_EQ(c2[12].label, "tt2_tile16");
  EXPECT_EQ(c2[12].options.time_tile, 2);
  EXPECT_EQ(c2[12].options.tile, (Index{16, 16}));
  EXPECT_EQ(c2[15].label, "tt4_tile32");
  EXPECT_EQ(c2[15].options.time_tile, 4);
  EXPECT_EQ(c2[16].label, "wf2_tile16");
  EXPECT_TRUE(c2[16].options.wavefront);
  EXPECT_EQ(c2[16].options.time_tile, 2);
  EXPECT_EQ(c2[16].options.tile, (Index{16, 16}));
  EXPECT_EQ(c2[17].label, "wf4_tile16");
  EXPECT_EQ(c2[17].options.time_tile, 4);
  EXPECT_EQ(c2[18].label, "simdrows");
  EXPECT_TRUE(c2[18].options.simd_rows);
  EXPECT_EQ(c2[19].label, "simdrows+fuse");
  EXPECT_TRUE(c2[19].options.fuse_colors);
  EXPECT_EQ(c2[20].label, "noaddr");
  EXPECT_FALSE(c2[20].options.addr_opt);
  EXPECT_EQ(c2[21].label, "noaddr+fuse");
  EXPECT_FALSE(c2[21].options.addr_opt);
  EXPECT_TRUE(c2[21].options.fuse_colors);
}

TEST(Tuner, DefaultCandidatesClampAndDedup) {
  // On an 8x8 grid the 16- and 32-wide tiles clamp to the extents and
  // collapse into the 8-wide candidates; the clamped list carries no
  // duplicate option sets.
  const auto c = default_tile_candidates(2, {8, 8});
  EXPECT_EQ(c.size(), 16u);
  std::set<std::string> salts, labels;
  for (const auto& cand : c) {
    EXPECT_TRUE(salts.insert(options_salt(cand.options)).second)
        << "duplicate options survived dedup: " << cand.label;
    labels.insert(cand.label);
    for (std::int64_t t : cand.options.tile) EXPECT_LE(t, 8);
  }
  EXPECT_TRUE(labels.count("tile8"));
  EXPECT_FALSE(labels.count("tile16"));
  EXPECT_FALSE(labels.count("tile32"));
  // First label wins within a duplicate class.
  EXPECT_TRUE(labels.count("tt2_tile16"));
  EXPECT_FALSE(labels.count("tt2_tile32"));
  EXPECT_TRUE(labels.count("wf2_tile16"));
}

TEST(Tuner, SweepRestoresGrids) {
  // Trial runs mutate the grids; the sweep snapshots before timing and
  // restores after every candidate so callers can tune on live data.
  GridSet gs = apply_grids(10);
  const Grid& x = gs.at("x");
  const Grid& out = gs.at("out");
  const std::vector<double> x0(x.data(), x.data() + x.size());
  const std::vector<double> out0(out.data(), out.data() + out.size());

  std::vector<double> script = {0.0, 1.0, 10.0, 11.0};
  size_t cursor = 0;
  Tuner tuner([&] { return script.at(cursor++); });
  std::vector<TuneCandidate> candidates(2);
  candidates[0].label = "a";
  candidates[1].label = "b";
  candidates[1].options.tile = {4, 4};
  tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs, {{"h2inv", 1.0}},
             "reference", candidates, /*warmup=*/1, /*reps=*/1);

  EXPECT_TRUE(std::equal(x0.begin(), x0.end(), x.data()));
  EXPECT_TRUE(std::equal(out0.begin(), out0.end(), out.data()));
}

TEST(Tuner, ConcurrentCompileDedup) {
  // The sweep compiles all candidates concurrently; identical option sets
  // share one kernel-cache key, so the cache admits a single compile (or
  // disk load) and every other worker takes a memory hit.
  GridSet gs = apply_grids(13);  // size unique to this test binary
  std::vector<TuneCandidate> candidates(6);
  for (size_t i = 0; i < candidates.size(); ++i) {
    candidates[i].label = "dup" + std::to_string(i);
  }
  size_t reads = 0;
  Tuner tuner([&] { return static_cast<double>(++reads); });

  const KernelCache::Stats before = KernelCache::instance().stats();
  const TuneResult result =
      tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs,
                 {{"h2inv", 1.0}}, "c", candidates, /*warmup=*/0, /*reps=*/1);
  const KernelCache::Stats after = KernelCache::instance().stats();

  EXPECT_EQ(result.timings.size(), candidates.size());
  EXPECT_EQ((after.compiles - before.compiles) +
                (after.disk_hits - before.disk_hits),
            1u);
  EXPECT_EQ(after.memory_hits - before.memory_hits, candidates.size() - 1);
}

TEST(Tuner, RejectsEmptyCandidates) {
  GridSet gs = apply_grids(10);
  Tuner tuner;
  EXPECT_THROW(tuner.tune(StencilGroup(lib::cc_apply(2, "x", "out")), gs, {},
                          "reference", {}),
               InvalidArgument);
}

}  // namespace
}  // namespace snowflake
