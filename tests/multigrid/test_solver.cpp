#include "multigrid/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace snowflake::mg {
namespace {

Solver::Config config(int rank, std::int64_t n, const std::string& backend) {
  Solver::Config cfg;
  cfg.problem.rank = rank;
  cfg.problem.n = n;
  cfg.backend = backend;
  return cfg;
}

TEST(Solver, VcycleConvergesMultigridFast2D) {
  Solver solver(config(2, 16, "reference"));
  solver.level(0).grids().at(kX).fill(0.0);
  std::vector<double> history;
  history.push_back(solver.residual_norm());
  for (int c = 0; c < 6; ++c) {
    solver.vcycle();
    history.push_back(solver.residual_norm());
  }
  // Multigrid-grade convergence: geometric-mean reduction >= 4x per cycle.
  const double total = history.front() / history.back();
  EXPECT_GT(total, std::pow(4.0, 6));
  // Monotone decrease.
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_LT(history[i], history[i - 1]);
  }
}

TEST(Solver, VcycleConverges3D) {
  Solver solver(config(3, 8, "reference"));
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 5; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), r0 * 1e-4);
}

TEST(Solver, SolutionApproachesManufacturedExact) {
  Solver solver(config(2, 16, "reference"));
  solver.level(0).grids().at(kX).fill(0.0);
  for (int c = 0; c < 12; ++c) solver.vcycle();
  // Discrete solution == u* by construction; only solver error remains.
  EXPECT_LT(solver.error_vs_exact(), 1e-8);
}

TEST(Solver, ConstantCoefficientMode) {
  Solver::Config cfg = config(2, 16, "reference");
  cfg.problem.variable_beta = false;
  Solver solver(cfg);
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 5; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), r0 * 1e-5);
}

TEST(Solver, FcycleOutperformsSingleVcycle) {
  Solver v(config(2, 16, "reference"));
  v.level(0).grids().at(kX).fill(0.0);
  v.vcycle();
  const double after_v = v.residual_norm();

  Solver f(config(2, 16, "reference"));
  f.fcycle();
  const double after_f = f.residual_norm();
  EXPECT_LT(after_f, after_v);
}

TEST(Solver, SolveStatsPopulated) {
  Solver solver(config(2, 8, "reference"));
  const SolveStats stats = solver.solve(/*cycles=*/3, /*warmup=*/0);
  EXPECT_EQ(stats.dof, 64);
  EXPECT_EQ(stats.cycles, 3);
  EXPECT_EQ(stats.residual_norms.size(), 3u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.dof_per_second, 0.0);
  EXPECT_LT(stats.residual_norms.back(), stats.residual_norms.front());
}

TEST(Solver, JitBackendMatchesReference) {
  Solver ref(config(2, 8, "reference"));
  Solver jit(config(2, 8, "c"));
  ref.level(0).grids().at(kX).fill(0.0);
  jit.level(0).grids().at(kX).fill(0.0);
  for (int c = 0; c < 3; ++c) {
    ref.vcycle();
    jit.vcycle();
  }
  const double r_ref = ref.residual_norm();
  const double r_jit = jit.residual_norm();
  EXPECT_NEAR(r_jit, r_ref, 1e-12 + 1e-9 * r_ref);
  EXPECT_LE(Level::interior_max_diff(ref.level(0).grids().at(kX),
                                     jit.level(0).grids().at(kX)),
            1e-12);
}

TEST(Solver, OpenMPBackendConverges) {
  Solver solver(config(3, 8, "openmp"));
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 4; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), r0 * 1e-3);
}

TEST(Solver, WcycleConvergesAtLeastAsFast) {
  Solver::Config vcfg = config(2, 16, "reference");
  Solver::Config wcfg = vcfg;
  wcfg.cycle_gamma = 2;
  Solver v(vcfg), w(wcfg);
  v.level(0).grids().at(kX).fill(0.0);
  w.level(0).grids().at(kX).fill(0.0);
  const double r0 = w.residual_norm();
  for (int c = 0; c < 4; ++c) {
    v.vcycle();
    w.vcycle();
  }
  EXPECT_LE(w.residual_norm(), v.residual_norm() * 1.5);
  EXPECT_LT(w.residual_norm(), 1e-4 * r0);
}

TEST(Solver, ChebyshevSmootherConverges) {
  Solver::Config cfg = config(2, 16, "reference");
  cfg.smoother = Solver::Smoother::Chebyshev;
  cfg.cheby_degree = 4;
  Solver solver(cfg);
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 6; ++c) solver.vcycle();
  // Multigrid-grade convergence with the polynomial smoother too.
  EXPECT_LT(solver.residual_norm(), 1e-5 * r0);
}

TEST(Solver, ChebyshevSmoother3DWithJit) {
  Solver::Config cfg = config(3, 8, "c");
  cfg.smoother = Solver::Smoother::Chebyshev;
  Solver solver(cfg);
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 5; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), 1e-4 * r0);
}

TEST(Solver, SolveToTolerance) {
  Solver solver(config(2, 16, "reference"));
  const int cycles = solver.solve_to_tolerance(1e-8);
  // ~15x per cycle -> 1e-8 within 7-8 cycles.
  EXPECT_GE(cycles, 4);
  EXPECT_LE(cycles, 12);
  EXPECT_THROW(solver.solve_to_tolerance(2.0), InvalidArgument);
}

TEST(Solver, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Solver(config(2, 12, "reference")), InvalidArgument);
}

TEST(Solver, RankOneHierarchyConverges) {
  // The rank-generic claim at its smallest: 1D multigrid works unchanged.
  // (Piecewise-constant prolongation is a weak pairing in 1D — expect
  // steady but modest per-cycle reduction.)
  Solver solver(config(1, 32, "reference"));
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 15; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), 1e-4 * r0);
  EXPECT_LT(solver.error_vs_exact(), 1e-3);
}

TEST(Solver, TimeTiledSmootherMatchesUntiled) {
  // The ISSUE's headline identity: the same V-cycle with a time-tiled
  // smoother (depth 2, pre/post = 2 -> one fused run per smooth phase)
  // produces the same finest solution as the per-sweep schedule, to
  // round-off.
  Solver::Config plain_cfg = config(3, 16, "openmp");
  Solver::Config fused_cfg = plain_cfg;
  fused_cfg.options.time_tile = 2;
  fused_cfg.options.tile = {8, 8, 8};
  Solver plain(plain_cfg), fused(fused_cfg);
  plain.level(0).grids().at(kX).fill(0.0);
  fused.level(0).grids().at(kX).fill(0.0);
  for (int c = 0; c < 3; ++c) {
    plain.vcycle();
    fused.vcycle();
  }
  EXPECT_LE(Level::interior_max_diff(plain.level(0).grids().at(kX),
                                     fused.level(0).grids().at(kX)),
            1e-12);
  const double r = plain.residual_norm();
  EXPECT_NEAR(fused.residual_norm(), r, 1e-12 + 1e-9 * r);
}

TEST(Solver, TimeTiledOddSmoothCountKeepsRemainder) {
  // pre_smooth = 3 with depth 2: one fused run + one single smooth must
  // equal three plain smooths.
  Solver::Config plain_cfg = config(2, 16, "c");
  plain_cfg.pre_smooth = 3;
  Solver::Config fused_cfg = plain_cfg;
  fused_cfg.options.time_tile = 2;
  fused_cfg.options.tile = {8, 8};
  Solver plain(plain_cfg), fused(fused_cfg);
  plain.level(0).grids().at(kX).fill(0.0);
  fused.level(0).grids().at(kX).fill(0.0);
  plain.vcycle();
  fused.vcycle();
  EXPECT_LE(Level::interior_max_diff(plain.level(0).grids().at(kX),
                                     fused.level(0).grids().at(kX)),
            1e-12);
}

TEST(Solver, LevelHierarchyDepth) {
  Solver solver(config(2, 32, "reference"));
  // 32 -> 16 -> 8 -> 4 -> 2.
  EXPECT_EQ(solver.num_levels(), 5u);
  EXPECT_EQ(solver.level(4).n(), 2);
}

}  // namespace
}  // namespace snowflake::mg
