#include "multigrid/operators.hpp"

#include <gtest/gtest.h>

#include "backend/reference/reference_backend.hpp"
#include "multigrid/solver.hpp"

namespace snowflake::mg {
namespace {

Solver::Config small_config(int rank, std::int64_t n) {
  Solver::Config cfg;
  cfg.problem.rank = rank;
  cfg.problem.n = n;
  cfg.backend = "reference";
  return cfg;
}

TEST(Operators, ManufacturedRhsHasZeroResidualAtExact) {
  // By construction rhs = A u*, so the residual at x = u* vanishes.
  Solver solver(small_config(2, 8));
  Level& finest = solver.level(0);
  // Reconstruct u* into x.
  ProblemSpec spec = solver.config().problem;
  fill_cell_centered(finest.grids().at(kX), finest.h(),
                     [&](const std::vector<double>& x) { return u_exact(spec, x); });
  EXPECT_LT(solver.residual_norm(), 1e-10);
}

TEST(Operators, ZeroGuessResidualEqualsRhsNorm) {
  Solver solver(small_config(2, 8));
  Level& finest = solver.level(0);
  finest.grids().at(kX).fill(0.0);
  const double res = solver.residual_norm();
  const double rhs = finest.grids().at(kRhs).norm_max();
  EXPECT_NEAR(res, rhs, 1e-12 * rhs);
}

TEST(Operators, RepeatedSmoothingConverges) {
  // A single GSRB smooth need not shrink the residual max-norm
  // monotonically, but repeated smoothing alone must converge on a small
  // problem (Gauss-Seidel is a convergent splitting).
  Solver solver(small_config(2, 8));
  solver.level(0).grids().at(kX).fill(0.0);
  const double before = solver.residual_norm();
  for (int i = 0; i < 20; ++i) solver.smooth(0);
  const double after = solver.residual_norm();
  EXPECT_LT(after, 0.2 * before);
}

TEST(Operators, LambdaIsPositive) {
  Solver solver(small_config(3, 4));
  const Grid& lam = solver.level(0).grids().at(kLambda);
  Index idx{2, 2, 2};
  EXPECT_GT(lam.at(idx), 0.0);
}

TEST(Operators, RestrictionProlongationRoundTripPreservesConstants) {
  // P^T-ish test: restrict a constant residual -> constant coarse rhs;
  // prolongate a constant coarse correction -> constant fine addition.
  Solver solver(small_config(2, 8));
  Level& fine = solver.level(0);
  Level& coarse = solver.level(1);
  fine.grids().at(kRes).fill(3.0);
  solver.restrict_residual(0);
  EXPECT_DOUBLE_EQ(coarse.grids().at(kRhs).at({1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(coarse.grids().at(kRhs).at({2, 2}), 3.0);

  fine.grids().at(kX).fill(0.0);
  coarse.grids().at(kX).fill(2.0);
  solver.prolongate_add(0);
  EXPECT_DOUBLE_EQ(fine.grids().at(kX).at({1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(fine.grids().at(kX).at({4, 3}), 2.0);
}

TEST(Operators, GroupsValidateAcrossRanks) {
  for (int rank : {2, 3}) {
    Solver solver(small_config(rank, 4));
    EXPECT_GE(solver.num_levels(), 2u);
  }
}

}  // namespace
}  // namespace snowflake::mg
