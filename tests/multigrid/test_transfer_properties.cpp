// Grid-transfer properties across backends: the algebraic identities that
// make multigrid work, verified on the compiled operators rather than on
// paper.

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/reference/reference_backend.hpp"
#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"

namespace snowflake::mg {
namespace {

struct Pair {
  GridSet gs;
  std::int64_t nc;
};

Pair make_pair(std::int64_t nc) {
  Pair p;
  p.nc = nc;
  const Index cshape{nc + 2, nc + 2};
  const Index fshape{2 * nc + 2, 2 * nc + 2};
  p.gs.add_zeros(kCoarseX, cshape);
  p.gs.add_zeros(kCoarseRhs, cshape);
  p.gs.add_zeros(kFineX, fshape);
  p.gs.add_zeros(kFineRes, fshape);
  return p;
}

TEST(Transfer, RestrictionAfterInjectionIsIdentity) {
  // R(P(c)) == c for piecewise-constant P and full-weighting R: the
  // coarse-grid correction sees exactly what it sent down.
  for (const std::string backend : {"reference", "c", "openmp"}) {
    Pair p = make_pair(6);
    p.gs.at(kCoarseX).fill_random(77, -1.0, 1.0);
    const Grid original = p.gs.at(kCoarseX);

    auto prolong = compile(lib::interpolation_pc(2, kCoarseX, kFineX, false),
                           p.gs, backend);
    prolong->run(p.gs);
    // Feed the fine field back down: alias fine_x as the restriction input.
    GridSet down;
    down.add_shared(kFineRes, p.gs.share(kFineX));
    down.add_shared(kCoarseRhs, p.gs.share(kCoarseRhs));
    auto restrict_k = compile(mg::restriction_group(2), down, backend);
    restrict_k->run(down);

    // Interior must round-trip exactly (each coarse cell averages its own
    // four injected copies).
    double err = 0.0;
    for (std::int64_t i = 1; i <= p.nc; ++i) {
      for (std::int64_t j = 1; j <= p.nc; ++j) {
        err = std::max(err, std::abs(p.gs.at(kCoarseRhs).at({i, j}) -
                                     original.at({i, j})));
      }
    }
    EXPECT_LE(err, 1e-14) << backend;
  }
}

TEST(Transfer, LinearInterpolationReproducesAffineFields) {
  // PL interpolation is exact on affine functions (given consistent
  // ghosts): fill coarse with a + b*x + c*y at cell centres and check the
  // fine samples.
  Pair p = make_pair(6);
  const double hc = 1.0 / 6.0, hf = 1.0 / 12.0;
  auto affine = [](double x, double y) { return 0.3 + 2.0 * x - 1.25 * y; };
  p.gs.at(kCoarseX).fill_with([&](const Index& i) {
    return affine((i[0] - 0.5) * hc, (i[1] - 0.5) * hc);
  });  // includes ghost cells: consistent affine extension
  run_reference(lib::interpolation_pl(2, kCoarseX, kFineX, false), p.gs);
  double err = 0.0;
  for (std::int64_t i = 1; i <= 2 * p.nc; ++i) {
    for (std::int64_t j = 1; j <= 2 * p.nc; ++j) {
      err = std::max(err, std::abs(p.gs.at(kFineX).at({i, j}) -
                                   affine((i - 0.5) * hf, (j - 0.5) * hf)));
    }
  }
  EXPECT_LE(err, 1e-13);
}

TEST(Transfer, RestrictionPreservesIntegral) {
  // Full-weighting conserves the mean: sum(coarse)*4 == sum(fine) over
  // interiors (each fine cell contributes exactly once with weight 1/4).
  Pair p = make_pair(5);
  p.gs.at(kFineRes).fill_random(123, -2.0, 2.0);
  run_reference(mg::restriction_group(2), p.gs);
  double fine_sum = 0.0, coarse_sum = 0.0;
  for (std::int64_t i = 1; i <= 2 * p.nc; ++i) {
    for (std::int64_t j = 1; j <= 2 * p.nc; ++j) {
      fine_sum += p.gs.at(kFineRes).at({i, j});
    }
  }
  for (std::int64_t i = 1; i <= p.nc; ++i) {
    for (std::int64_t j = 1; j <= p.nc; ++j) {
      coarse_sum += p.gs.at(kCoarseRhs).at({i, j});
    }
  }
  EXPECT_NEAR(coarse_sum * 4.0, fine_sum, 1e-10);
}

}  // namespace
}  // namespace snowflake::mg
