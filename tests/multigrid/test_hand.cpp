#include "multigrid/baseline/hand_solver.hpp"

#include <gtest/gtest.h>

#include "multigrid/baseline/hand_kernels.hpp"
#include "multigrid/solver.hpp"

namespace snowflake::mg {
namespace {

HandSolver::Config hand_config(std::int64_t n) {
  HandSolver::Config cfg;
  cfg.problem.rank = 3;
  cfg.problem.n = n;
  return cfg;
}

TEST(HandKernels, BcMatchesDslSemantics) {
  const std::int64_t n = 4;
  Grid x({n + 2, n + 2, n + 2});
  x.fill_random(9, -1.0, 1.0);
  Grid expect = x;
  hand::apply_bc_3d(x.data(), n);
  // Ghost = -inward on all faces.
  for (std::int64_t j = 1; j <= n; ++j) {
    for (std::int64_t k = 1; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(x.at({0, j, k}), -expect.at({1, j, k}));
      EXPECT_DOUBLE_EQ(x.at({n + 1, j, k}), -expect.at({n, j, k}));
      EXPECT_DOUBLE_EQ(x.at({j, 0, k}), -expect.at({j, 1, k}));
      EXPECT_DOUBLE_EQ(x.at({j, k, n + 1}), -expect.at({j, k, n}));
    }
  }
  // Interior untouched.
  EXPECT_DOUBLE_EQ(x.at({2, 2, 2}), expect.at({2, 2, 2}));
}

TEST(HandSolver, Converges) {
  HandSolver solver(hand_config(8));
  solver.level(0).grids().at(kX).fill(0.0);
  const double r0 = solver.residual_norm();
  for (int c = 0; c < 5; ++c) solver.vcycle();
  EXPECT_LT(solver.residual_norm(), r0 * 1e-4);
}

TEST(HandSolver, ErrorVsExactSmall) {
  HandSolver solver(hand_config(8));
  solver.level(0).grids().at(kX).fill(0.0);
  for (int c = 0; c < 10; ++c) solver.vcycle();
  EXPECT_LT(solver.error_vs_exact(), 1e-7);
}

TEST(HandSolver, MatchesDslSolverExactly) {
  // The hand kernels implement the same algorithm as the DSL operators —
  // residual histories must agree to rounding.
  HandSolver hand(hand_config(8));
  Solver::Config cfg;
  cfg.problem.rank = 3;
  cfg.problem.n = 8;
  cfg.backend = "reference";
  Solver dsl(cfg);

  hand.level(0).grids().at(kX).fill(0.0);
  dsl.level(0).grids().at(kX).fill(0.0);
  for (int c = 0; c < 3; ++c) {
    hand.vcycle();
    dsl.vcycle();
    const double rh = hand.residual_norm();
    const double rd = dsl.residual_norm();
    EXPECT_NEAR(rh, rd, 1e-12 + 1e-6 * rd) << "cycle " << c;
  }
  EXPECT_LE(Level::interior_max_diff(hand.level(0).grids().at(kX),
                                     dsl.level(0).grids().at(kX)),
            1e-10);
}

TEST(HandSolver, SolveStats) {
  HandSolver solver(hand_config(4));
  const SolveStats stats = solver.solve(2, 0);
  EXPECT_EQ(stats.dof, 64);
  EXPECT_GT(stats.dof_per_second, 0.0);
}

TEST(HandKernels, RestrictInterpMatchGridDimensions) {
  const std::int64_t nc = 2, nf = 4;
  Grid fine({nf + 2, nf + 2, nf + 2}, 1.0);
  Grid coarse({nc + 2, nc + 2, nc + 2});
  hand::restrict_fw_3d(coarse.data(), fine.data(), nc);
  EXPECT_DOUBLE_EQ(coarse.at({1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(coarse.at({2, 2, 2}), 1.0);

  Grid fine2({nf + 2, nf + 2, nf + 2});
  hand::interp_pc_add_3d(fine2.data(), coarse.data(), nc);
  EXPECT_DOUBLE_EQ(fine2.at({1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(fine2.at({4, 4, 4}), 1.0);
}

}  // namespace
}  // namespace snowflake::mg
