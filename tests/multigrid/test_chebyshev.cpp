// Chebyshev smoothing: drives the vc_chebyshev_step stencil with the
// classical three-term recurrence and verifies it beats weighted Jacobi at
// equal sweep counts — the reason HPGMG offers it as a smoother.

#include <gtest/gtest.h>

#include <cmath>

#include "backend/reference/reference_backend.hpp"
#include "ir/stencil_library.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

struct Problem {
  GridSet gs;
  std::int64_t n;
  double h2inv;
};

Problem make_problem(std::int64_t n) {
  Problem p;
  p.n = n;
  p.h2inv = static_cast<double>(n * n);
  const Index shape{n + 2, n + 2};
  for (const std::string g :
       {"x", "x_prev", "x_next", "rhs", "lambda_inv", "res"}) {
    p.gs.add_zeros(g, shape);
  }
  for (const std::string b : {"beta_x", "beta_y"}) {
    p.gs.add_zeros(b, shape).fill(1.0);
  }
  // Constant-coefficient: diag = 4*h2inv.
  p.gs.at("lambda_inv").fill(1.0 / (4.0 * p.h2inv));
  p.gs.at("rhs").fill(1.0);
  return p;
}

double residual_norm(Problem& p) {
  StencilGroup g;
  g.append(dirichlet_boundary(2, "x"));
  g.append(vc_residual(2, "x", "rhs", "res", "beta"));
  run_reference(g, p.gs, {{"h2inv", p.h2inv}});
  return p.gs.at("res").norm_max();
}

/// `sweeps` Chebyshev iterations targeting D^-1 A eigenvalues in [a, b].
void chebyshev(Problem& p, int sweeps, double a, double b) {
  const double theta = 0.5 * (b + a);
  const double delta = 0.5 * (b - a);
  const double sigma = theta / delta;
  double rho_prev = 1.0 / sigma;

  StencilGroup step;
  step.append(dirichlet_boundary(2, "x"));
  step.append(vc_chebyshev_step(2, "x", "x_prev", "rhs", "lambda_inv",
                                "x_next", "beta"));

  for (int k = 0; k < sweeps; ++k) {
    double alpha, beta_coef;
    if (k == 0) {
      alpha = 1.0 / theta;
      beta_coef = 0.0;
    } else {
      const double rho = 1.0 / (2.0 * sigma - rho_prev);
      alpha = 2.0 * rho / delta;
      beta_coef = rho * rho_prev;
      rho_prev = rho;
    }
    run_reference(step, p.gs,
                  {{"h2inv", p.h2inv},
                   {"cheby_alpha", alpha},
                   {"cheby_beta", beta_coef}});
    // Rotate: prev <- x <- next.
    std::swap(p.gs.at("x_prev"), p.gs.at("x"));
    std::swap(p.gs.at("x"), p.gs.at("x_next"));
  }
}

void jacobi(Problem& p, int sweeps) {
  StencilGroup step;
  step.append(dirichlet_boundary(2, "x"));
  step.append(Stencil("wjacobi",
                      read("x", {0, 0}) +
                          param("weight") * read("lambda_inv", {0, 0}) *
                              (read("rhs", {0, 0}) - vc_ax_expr(2, "x", "beta")),
                      "x_next", interior(2)));
  for (int k = 0; k < sweeps; ++k) {
    run_reference(step, p.gs, {{"h2inv", p.h2inv}, {"weight", 2.0 / 3.0}});
    std::swap(p.gs.at("x"), p.gs.at("x_next"));
  }
}

TEST(Chebyshev, ConvergesOnFullSpectrum) {
  // Target the whole spectrum of D^-1 A in 2D: [2sin²(πh/2)·.., ~2].
  Problem p = make_problem(8);
  const double h = 1.0 / 8;
  const double lo = std::pow(std::sin(M_PI * h / 2.0), 2) * 2.0;
  const double r0 = residual_norm(p);
  chebyshev(p, 40, lo, 2.0);
  EXPECT_LT(residual_norm(p), 1e-6 * r0);
}

TEST(Chebyshev, BeatsJacobiAtEqualSweeps) {
  const int sweeps = 30;
  Problem pc = make_problem(12);
  Problem pj = make_problem(12);
  const double h = 1.0 / 12;
  const double lo = std::pow(std::sin(M_PI * h / 2.0), 2) * 2.0;
  const double r0 = residual_norm(pc);
  chebyshev(pc, sweeps, lo, 2.0);
  jacobi(pj, sweeps);
  const double rc = residual_norm(pc);
  const double rj = residual_norm(pj);
  EXPECT_LT(rc, 0.1 * rj) << "chebyshev " << rc << " vs jacobi " << rj
                          << " (r0 " << r0 << ")";
}

TEST(Chebyshev, SmootherModeDampsHighFrequencies) {
  // Smoother usage targets only the upper half of the spectrum [1, 2];
  // a few steps must crush a high-frequency error mode.
  const std::int64_t n = 16;
  Problem p = make_problem(n);
  p.gs.at("rhs").fill(0.0);  // homogeneous: x itself is the error
  p.gs.at("x").fill_with([&](const Index& i) {
    // Checkerboard = the highest-frequency mode.
    return ((i[0] + i[1]) % 2 == 0) ? 1.0 : -1.0;
  });
  const double e0 = residual_norm(p);
  chebyshev(p, 4, 1.0, 2.0);
  EXPECT_LT(residual_norm(p), 0.05 * e0);
}

TEST(Chebyshev, StencilShapeAndGrids) {
  const Stencil s =
      vc_chebyshev_step(3, "x", "x_prev", "rhs", "lambda_inv", "x_next", "beta");
  EXPECT_FALSE(s.is_in_place());
  EXPECT_EQ(s.params(),
            (std::set<std::string>{"cheby_alpha", "cheby_beta", "h2inv"}));
  // Reads three meshes plus coefficients.
  EXPECT_EQ(s.inputs().count("x"), 1u);
  EXPECT_EQ(s.inputs().count("x_prev"), 1u);
  EXPECT_EQ(s.inputs().count("rhs"), 1u);
}

}  // namespace
}  // namespace snowflake
