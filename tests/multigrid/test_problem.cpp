#include "multigrid/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "multigrid/level.hpp"

namespace snowflake::mg {
namespace {

TEST(Problem, ExactSolutionVanishesOnBoundary) {
  ProblemSpec spec;
  spec.rank = 2;
  EXPECT_NEAR(u_exact(spec, {0.0, 0.5}), 0.0, 1e-15);
  EXPECT_NEAR(u_exact(spec, {0.5, 1.0}), 0.0, 1e-15);
  EXPECT_NEAR(u_exact(spec, {0.5, 0.5}), 1.0, 1e-15);
}

TEST(Problem, BetaPositive) {
  ProblemSpec spec;
  spec.rank = 3;
  spec.variable_beta = true;
  for (double x : {0.0, 0.1, 0.33, 0.5, 0.9}) {
    for (double y : {0.05, 0.4, 0.77}) {
      EXPECT_GT(beta(spec, {x, y, 0.2}), 0.0);
    }
  }
  spec.variable_beta = false;
  EXPECT_EQ(beta(spec, {0.3, 0.3, 0.3}), 1.0);
}

TEST(Problem, CellCenters) {
  const double h = 0.25;  // n = 4
  EXPECT_DOUBLE_EQ(cell_center(1, h), 0.125);
  EXPECT_DOUBLE_EQ(cell_center(4, h), 0.875);
  EXPECT_DOUBLE_EQ(cell_center(0, h), -0.125);  // ghost
}

TEST(Problem, FillCellCentered) {
  Grid g({6, 6});
  fill_cell_centered(g, 0.25, [](const std::vector<double>& x) {
    return x[0] + 10.0 * x[1];
  });
  EXPECT_DOUBLE_EQ(g.at({1, 1}), 0.125 + 1.25);
  EXPECT_DOUBLE_EQ(g.at({4, 2}), 0.875 + 3.75);
}

TEST(Problem, FillFaceCentered) {
  Grid g({6, 6});
  fill_face_centered(g, 0.25, 0, [](const std::vector<double>& x) {
    return x[0] * 100.0 + x[1];
  });
  // Dim 0 is at the lower face: coordinate (i-1)*h; dim 1 cell-centered.
  EXPECT_DOUBLE_EQ(g.at({1, 1}), 0.0 * 100.0 + 0.125);
  EXPECT_DOUBLE_EQ(g.at({3, 2}), 0.5 * 100.0 + 0.375);
}

TEST(Level, GeometryAndGrids) {
  ProblemSpec spec;
  spec.rank = 3;
  spec.n = 8;
  const Level level(spec, 8);
  EXPECT_EQ(level.box_shape(), (Index{10, 10, 10}));
  EXPECT_EQ(level.dof(), 512);
  EXPECT_DOUBLE_EQ(level.h(), 0.125);
  EXPECT_DOUBLE_EQ(level.h2inv(), 64.0);
  EXPECT_TRUE(level.grids().contains("x"));
  EXPECT_TRUE(level.grids().contains("beta_z"));
  EXPECT_EQ(level.grids().at("x").shape(), level.box_shape());
}

TEST(Level, BetaGridsFilledPositive) {
  ProblemSpec spec;
  spec.rank = 2;
  spec.n = 8;
  const Level level(spec, 8);
  const Grid& bx = level.grids().at("beta_x");
  double lo = 1e9, hi = -1e9;
  for (std::int64_t i = 0; i < bx.size(); ++i) {
    lo = std::min(lo, bx[i]);
    hi = std::max(hi, bx[i]);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, lo);  // actually variable
}

TEST(Level, InteriorMaxDiffIgnoresGhosts) {
  Grid a({4, 4}), b({4, 4});
  b.at({0, 0}) = 100.0;  // ghost difference ignored
  b.at({2, 2}) = 0.5;
  EXPECT_DOUBLE_EQ(Level::interior_max_diff(a, b), 0.5);
}

}  // namespace
}  // namespace snowflake::mg
