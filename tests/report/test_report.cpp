#include "report/report.hpp"

#include <gtest/gtest.h>

#include "backend/jit/jit_backend.hpp"
#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

ShapeMap smoother_shapes(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "rhs", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(Report, DependenceMatrixMarksKinds) {
  // Two independent writers of disjoint colors (interval false positive)
  // plus a consumer (real dependence).
  StencilGroup g;
  g.append(Stencil("wr_red", read("x", {0, 0}), "out",
                   lib::colored_interior(2, 0)));
  g.append(Stencil("wr_black", read("x", {0, 0}), "out",
                   lib::colored_interior(2, 1)));
  g.append(Stencil("consume", read("out", {0, 0}), "rhs", lib::interior(2)));
  ShapeMap shapes = smoother_shapes(10);
  shapes["out"] = Index{10, 10};
  const std::string matrix = dependence_matrix(g, shapes);
  EXPECT_NE(matrix.find('d'), std::string::npos);  // false positive marked
  EXPECT_NE(matrix.find('D'), std::string::npos);  // real dependence marked
  EXPECT_NE(matrix.find("wr_red"), std::string::npos);
}

TEST(Report, ExplainSmootherSections) {
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(10));
  EXPECT_NE(report.find("== Stencils =="), std::string::npos);
  EXPECT_NE(report.find("== Dependence analysis =="), std::string::npos);
  EXPECT_NE(report.find("greedy waves: 4"), std::string::npos);
  EXPECT_NE(report.find("== Lowered plan =="), std::string::npos);
  EXPECT_NE(report.find("== Traffic / flop estimates"), std::string::npos);
  EXPECT_NE(report.find("gsrb_red"), std::string::npos);
  // The interval comparison reports the lost parallelism proofs.
  EXPECT_NE(report.find("lose the parallelism proof on 2/10"),
            std::string::npos);
}

TEST(Report, SectionsToggle) {
  ReportOptions opt;
  opt.show_ir = false;
  opt.show_analysis = false;
  opt.show_traffic = false;
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(10), opt);
  EXPECT_EQ(report.find("== Stencils =="), std::string::npos);
  EXPECT_NE(report.find("== Lowered plan =="), std::string::npos);
}

TEST(Report, TransformsVisibleInPlan) {
  ReportOptions opt;
  opt.compile.fuse_colors = true;
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(12), opt);
  EXPECT_NE(report.find("outer-fused"), std::string::npos);
}

TEST(Report, ValidatesFirst) {
  const StencilGroup bad(Stencil(read("x", {-5, 0}), "out", lib::interior(2)));
  ShapeMap shapes{{"x", {8, 8}}, {"out", {8, 8}}};
  EXPECT_THROW(explain_group(bad, shapes), InvalidArgument);
}

TEST(Report, ProfileSectionShowsModeledVsMeasured) {
  // Compile and run the group so the Profile section has observed data,
  // then check it renders the model-vs-machine pair: modeled GB/s always,
  // and either measured GB/s (PMU available) or an explicit
  // "(modeled only; ...)" note on the fallback path — never silence.
  const StencilGroup group(lib::cc_apply(2, "x", "out"));
  GridSet gs;
  gs.add_zeros("x", Index{12, 12}).fill_random(7, -1.0, 1.0);
  gs.add_zeros("out", Index{12, 12});
  auto kernel = compile(group, gs, "c");
  kernel->run(gs, {{"h2inv", 4.0}});

  ShapeMap shapes{{"x", {12, 12}}, {"out", {12, 12}}};
  const std::string report = explain_group(group, shapes);
  ASSERT_NE(report.find("== Profile (observed at runtime) =="),
            std::string::npos);
  EXPECT_EQ(report.find("(no recorded runs"), std::string::npos) << report;
  EXPECT_NE(report.find("runs"), std::string::npos);
  EXPECT_NE(report.find("GB/s modeled"), std::string::npos) << report;
  const bool measured =
      report.find("GB/s measured via LLC misses") != std::string::npos;
  const bool modeled_only =
      report.find("(modeled only; hardware counters") != std::string::npos;
  EXPECT_TRUE(measured || modeled_only) << report;
  EXPECT_FALSE(measured && modeled_only) << report;
}

}  // namespace
}  // namespace snowflake
