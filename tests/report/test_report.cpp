#include "report/report.hpp"

#include <gtest/gtest.h>

#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

ShapeMap smoother_shapes(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "rhs", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(Report, DependenceMatrixMarksKinds) {
  // Two independent writers of disjoint colors (interval false positive)
  // plus a consumer (real dependence).
  StencilGroup g;
  g.append(Stencil("wr_red", read("x", {0, 0}), "out",
                   lib::colored_interior(2, 0)));
  g.append(Stencil("wr_black", read("x", {0, 0}), "out",
                   lib::colored_interior(2, 1)));
  g.append(Stencil("consume", read("out", {0, 0}), "rhs", lib::interior(2)));
  ShapeMap shapes = smoother_shapes(10);
  shapes["out"] = Index{10, 10};
  const std::string matrix = dependence_matrix(g, shapes);
  EXPECT_NE(matrix.find('d'), std::string::npos);  // false positive marked
  EXPECT_NE(matrix.find('D'), std::string::npos);  // real dependence marked
  EXPECT_NE(matrix.find("wr_red"), std::string::npos);
}

TEST(Report, ExplainSmootherSections) {
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(10));
  EXPECT_NE(report.find("== Stencils =="), std::string::npos);
  EXPECT_NE(report.find("== Dependence analysis =="), std::string::npos);
  EXPECT_NE(report.find("greedy waves: 4"), std::string::npos);
  EXPECT_NE(report.find("== Lowered plan =="), std::string::npos);
  EXPECT_NE(report.find("== Traffic / flop estimates"), std::string::npos);
  EXPECT_NE(report.find("gsrb_red"), std::string::npos);
  // The interval comparison reports the lost parallelism proofs.
  EXPECT_NE(report.find("lose the parallelism proof on 2/10"),
            std::string::npos);
}

TEST(Report, SectionsToggle) {
  ReportOptions opt;
  opt.show_ir = false;
  opt.show_analysis = false;
  opt.show_traffic = false;
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(10), opt);
  EXPECT_EQ(report.find("== Stencils =="), std::string::npos);
  EXPECT_NE(report.find("== Lowered plan =="), std::string::npos);
}

TEST(Report, TransformsVisibleInPlan) {
  ReportOptions opt;
  opt.compile.fuse_colors = true;
  const std::string report =
      explain_group(mg::gsrb_smooth_group(2), smoother_shapes(12), opt);
  EXPECT_NE(report.find("outer-fused"), std::string::npos);
}

TEST(Report, ValidatesFirst) {
  const StencilGroup bad(Stencil(read("x", {-5, 0}), "out", lib::interior(2)));
  ShapeMap shapes{{"x", {8, 8}}, {"out", {8, 8}}};
  EXPECT_THROW(explain_group(bad, shapes), InvalidArgument);
}

}  // namespace
}  // namespace snowflake
