#include "domain/rect_domain.hpp"

#include <gtest/gtest.h>

#include "domain/domain_union.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(RectDomain, ResolveAbsoluteBounds) {
  const RectDomain d({1, 2}, {5, 6}, {1, 2});
  const ResolvedRect r = d.resolve({8, 8});
  EXPECT_EQ(r.range(0), (ResolvedRange{1, 5, 1}));
  EXPECT_EQ(r.range(1), (ResolvedRange{2, 6, 2}));
}

TEST(RectDomain, ResolveRelativeBounds) {
  // (1, -1) over extent N means 1..N-1 — the paper's grid-size-relative
  // interior that works on every level.
  const RectDomain interior({1, 1}, {-1, -1});
  const ResolvedRect small = interior.resolve({6, 6});
  EXPECT_EQ(small.range(0), (ResolvedRange{1, 5, 1}));
  const ResolvedRect big = interior.resolve({130, 130});
  EXPECT_EQ(big.range(0), (ResolvedRange{1, 129, 1}));
}

TEST(RectDomain, StopZeroMeansFullExtent) {
  const RectDomain full({0}, {0});
  const ResolvedRect r = full.resolve({7});
  EXPECT_EQ(r.range(0), (ResolvedRange{0, 7, 1}));
  EXPECT_EQ(r.count(), 7);
}

TEST(RectDomain, StrideZeroIsSinglePoint) {
  // Paper Figure 4 line 17: stride (1, 0) pins the boundary row.
  const RectDomain top({1, -1}, {-1, -1}, {1, 0});
  const ResolvedRect r = top.resolve({10, 10});
  EXPECT_EQ(r.range(0), (ResolvedRange{1, 9, 1}));
  EXPECT_EQ(r.range(1), (ResolvedRange{9, 10, 1}));  // the single row N-1
  EXPECT_EQ(r.count(), 8);
}

TEST(RectDomain, NegativeStartRelative) {
  const RectDomain ghost({-1}, {0}, {0});
  const ResolvedRect r = ghost.resolve({12});
  EXPECT_EQ(r.range(0), (ResolvedRange{11, 12, 1}));
}

TEST(RectDomain, PaperRedDomainExample) {
  // Figure 4 line 11: RectDomain((1,1), (-1,-1), (2,2)).
  const RectDomain red1({1, 1}, {-1, -1}, {2, 2});
  const ResolvedRect r = red1.resolve({10, 10});
  EXPECT_EQ(r.count(), 16);  // points {1,3,5,7}^2
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({7, 7}));
  EXPECT_FALSE(r.contains({2, 1}));
  EXPECT_FALSE(r.contains({9, 1}));  // 9 >= hi
}

TEST(RectDomain, Translated) {
  const RectDomain d({1, 1}, {5, 5}, {2, 2});
  const RectDomain t = d.translated({1, 0});
  const ResolvedRect r = t.resolve({10, 10});
  EXPECT_EQ(r.range(0), (ResolvedRange{2, 6, 2}));
  EXPECT_EQ(r.range(1), (ResolvedRange{1, 5, 2}));
}

TEST(RectDomain, PlusBuildsUnion) {
  const RectDomain a({1}, {4});
  const RectDomain b({5}, {8});
  const DomainUnion u = a + b;
  EXPECT_EQ(u.rect_count(), 2u);
}

TEST(RectDomain, RankMismatchRejected) {
  EXPECT_THROW(RectDomain({1, 1}, {2}), InvalidArgument);
  EXPECT_THROW(RectDomain({1}, {2}, {1, 1}), InvalidArgument);
}

TEST(RectDomain, NegativeStrideRejected) {
  EXPECT_THROW(RectDomain({1}, {5}, {-1}), InvalidArgument);
}

TEST(RectDomain, ResolveOutOfBoundsRejected) {
  const RectDomain d({1}, {20});
  EXPECT_THROW(d.resolve({10}), InvalidArgument);
  const RectDomain neg({-20}, {-1});
  EXPECT_THROW(neg.resolve({10}), InvalidArgument);
}

TEST(RectDomain, ResolveShapeRankMismatch) {
  const RectDomain d({1}, {5});
  EXPECT_THROW(d.resolve({10, 10}), InvalidArgument);
}

}  // namespace
}  // namespace snowflake
