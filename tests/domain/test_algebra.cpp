#include "domain/domain_algebra.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace snowflake {
namespace {

// Brute-force oracle for range intersection.
std::set<std::int64_t> points_of(const ResolvedRange& r) {
  std::set<std::int64_t> out;
  for (std::int64_t x = r.lo; x < r.hi; x += r.stride) out.insert(x);
  return out;
}

TEST(IntersectRanges, DisjointByParity) {
  // Red vs black columns: same stride, offset by 1 — provably disjoint.
  const auto r = intersect_ranges({1, 9, 2}, {2, 9, 2});
  EXPECT_FALSE(r.has_value());
}

TEST(IntersectRanges, SameRange) {
  const ResolvedRange a{1, 9, 2};
  const auto r = intersect_ranges(a, a);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(points_of(*r), points_of(a));
}

TEST(IntersectRanges, CrtCombination) {
  // x ≡ 1 (mod 2) and x ≡ 2 (mod 3) -> x ≡ 5 (mod 6).
  const auto r = intersect_ranges({1, 30, 2}, {2, 30, 3});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->stride, 6);
  EXPECT_EQ(r->lo, 5);
  EXPECT_EQ(points_of(*r), (std::set<std::int64_t>{5, 11, 17, 23, 29}));
}

TEST(IntersectRanges, BoundsClipped) {
  const auto r = intersect_ranges({0, 10, 1}, {8, 20, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(points_of(*r), (std::set<std::int64_t>{8, 9}));
}

TEST(IntersectRanges, EmptyInput) {
  EXPECT_FALSE(intersect_ranges({5, 5, 1}, {0, 10, 1}).has_value());
}

TEST(IntersectRanges, ExhaustiveAgainstBruteForce) {
  // Property check over a grid of small progressions.
  for (std::int64_t lo1 = 0; lo1 < 4; ++lo1) {
    for (std::int64_t s1 = 1; s1 <= 4; ++s1) {
      for (std::int64_t lo2 = 0; lo2 < 4; ++lo2) {
        for (std::int64_t s2 = 1; s2 <= 4; ++s2) {
          const ResolvedRange a{lo1, 17, s1};
          const ResolvedRange b{lo2, 19, s2};
          std::set<std::int64_t> expect;
          for (auto x : points_of(a)) {
            if (points_of(b).count(x)) expect.insert(x);
          }
          const auto got = intersect_ranges(a, b);
          if (expect.empty()) {
            EXPECT_FALSE(got.has_value())
                << a.to_string() << " ∩ " << b.to_string();
          } else {
            ASSERT_TRUE(got.has_value())
                << a.to_string() << " ∩ " << b.to_string();
            EXPECT_EQ(points_of(*got), expect)
                << a.to_string() << " ∩ " << b.to_string();
          }
        }
      }
    }
  }
}

TEST(IntersectRects, PerDimension) {
  const ResolvedRect a({{1, 9, 2}, {0, 8, 1}});
  const ResolvedRect b({{1, 9, 2}, {4, 12, 1}});
  const auto r = intersect_rects(a, b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->range(0), (ResolvedRange{1, 9, 2}));
  EXPECT_EQ(r->range(1), (ResolvedRange{4, 8, 1}));
}

TEST(IntersectRects, DisjointInOneDim) {
  const ResolvedRect a({{1, 9, 2}, {0, 8, 1}});
  const ResolvedRect b({{2, 9, 2}, {0, 8, 1}});
  EXPECT_TRUE(rects_disjoint(a, b));
}

TEST(PairwiseDisjoint, RedBlackColors) {
  // 2D red/black decomposition: four rects, pairwise disjoint.
  const ResolvedUnion u({
      ResolvedRect({{1, 9, 2}, {1, 9, 2}}),
      ResolvedRect({{2, 9, 2}, {2, 9, 2}}),
      ResolvedRect({{1, 9, 2}, {2, 9, 2}}),
      ResolvedRect({{2, 9, 2}, {1, 9, 2}}),
  });
  EXPECT_TRUE(pairwise_disjoint(u));
}

TEST(PairwiseDisjoint, OverlapDetected) {
  const ResolvedUnion u({ResolvedRect({{0, 5, 1}}), ResolvedRect({{4, 8, 1}})});
  EXPECT_FALSE(pairwise_disjoint(u));
}

TEST(CountDistinct, InclusionExclusion) {
  // {0..4} ∪ {4..8}: 9 points minus the shared 4 counted once = 8.
  const ResolvedUnion u({ResolvedRect({{0, 5, 1}}), ResolvedRect({{4, 9, 1}})});
  EXPECT_EQ(count_distinct(u), 9);
  EXPECT_EQ(u.count_with_multiplicity(), 10);
}

TEST(CountDistinct, RedBlackCoversInterior) {
  // 2D red+black over a 8x8 interior = 64 distinct points.
  const ResolvedUnion u({
      ResolvedRect({{1, 9, 2}, {1, 9, 2}}),
      ResolvedRect({{2, 9, 2}, {2, 9, 2}}),
      ResolvedRect({{1, 9, 2}, {2, 9, 2}}),
      ResolvedRect({{2, 9, 2}, {1, 9, 2}}),
  });
  EXPECT_EQ(count_distinct(u), 64);
}

TEST(Translate, ShiftsBounds) {
  const ResolvedRect r({{1, 5, 2}});
  const ResolvedRect t = translate(r, {3});
  EXPECT_EQ(t.range(0), (ResolvedRange{4, 8, 2}));
}

TEST(AffineImage, RestrictionMap) {
  // Coarse domain 1..4, read fine at 2i-1: image = {1, 3, 5} stride 2.
  const ResolvedRect coarse({{1, 4, 1}});
  const ResolvedRect image = affine_image(coarse, {2}, {-1}, {1});
  EXPECT_EQ(image.range(0), (ResolvedRange{1, 6, 2}));
}

TEST(AffineImage, InterpolationMap) {
  // Fine odd points 1,3,5,7 read coarse (i+1)/2: image = 1..4 stride 1.
  const ResolvedRect fine_odd({{1, 8, 2}});
  const ResolvedRect image = affine_image(fine_odd, {1}, {1}, {2});
  EXPECT_EQ(image.range(0), (ResolvedRange{1, 5, 1}));
}

TEST(AffineImage, NonDivisibleRejected) {
  // Unit-stride domain divided by 2 is not exact.
  const ResolvedRect dense({{1, 8, 1}});
  EXPECT_THROW(affine_image(dense, {1}, {1}, {2}), InvalidArgument);
}

TEST(UnionsDisjoint, BoundaryVsInterior) {
  // The Halide-killer case (paper §III): a Dirichlet face at row 0 writes
  // ghosts; the interior stencil writes rows 1..N-2 — provably disjoint.
  const ResolvedUnion face({ResolvedRect({{0, 1, 1}, {1, 9, 1}})});
  const ResolvedUnion interior({ResolvedRect({{1, 9, 1}, {1, 9, 1}})});
  EXPECT_TRUE(unions_disjoint(face, interior));
}

}  // namespace
}  // namespace snowflake
