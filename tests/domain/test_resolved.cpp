#include "domain/resolved.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(ResolvedRange, CountAndLast) {
  const ResolvedRange r{1, 9, 2};
  EXPECT_EQ(r.count(), 4);  // 1, 3, 5, 7
  EXPECT_EQ(r.last(), 7);
  EXPECT_FALSE(r.empty());
}

TEST(ResolvedRange, SingleElement) {
  const ResolvedRange r{5, 6, 3};
  EXPECT_EQ(r.count(), 1);
  EXPECT_EQ(r.last(), 5);
}

TEST(ResolvedRange, Empty) {
  const ResolvedRange r{5, 5, 1};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.count(), 0);
  const ResolvedRange inverted{7, 3, 1};
  EXPECT_TRUE(inverted.empty());
}

TEST(ResolvedRange, Contains) {
  const ResolvedRange r{2, 11, 3};  // 2, 5, 8
  EXPECT_TRUE(r.contains(2));
  EXPECT_TRUE(r.contains(5));
  EXPECT_TRUE(r.contains(8));
  EXPECT_FALSE(r.contains(11));
  EXPECT_FALSE(r.contains(3));
  EXPECT_FALSE(r.contains(-1));
}

TEST(ResolvedRect, CountIsProduct) {
  const ResolvedRect rect({{0, 4, 1}, {0, 6, 2}});
  EXPECT_EQ(rect.count(), 4 * 3);
}

TEST(ResolvedRect, ForEachLexicographicAndComplete) {
  const ResolvedRect rect({{1, 4, 2}, {0, 3, 1}});  // {1,3} x {0,1,2}
  std::vector<Index> seen;
  rect.for_each([&](const Index& p) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (Index{1, 0}));
  EXPECT_EQ(seen.back(), (Index{3, 2}));
  // Lexicographic order.
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(ResolvedRect, EmptyDimMakesRectEmpty) {
  const ResolvedRect rect({{0, 4, 1}, {3, 3, 1}});
  EXPECT_TRUE(rect.empty());
  EXPECT_EQ(rect.count(), 0);
  int calls = 0;
  rect.for_each([&](const Index&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ResolvedRect, StrideOneRequiredPositive) {
  EXPECT_THROW(ResolvedRect({{0, 4, 0}}), InvalidArgument);
}

TEST(ResolvedUnion, ForEachVisitsAllRects) {
  const ResolvedUnion u({ResolvedRect({{0, 2, 1}}), ResolvedRect({{10, 12, 1}})});
  std::set<std::int64_t> seen;
  u.for_each([&](const Index& p) { seen.insert(p[0]); });
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 10, 11}));
  EXPECT_EQ(u.count_with_multiplicity(), 4);
}

TEST(ResolvedUnion, Contains) {
  const ResolvedUnion u({ResolvedRect({{0, 4, 2}}), ResolvedRect({{1, 4, 2}})});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_TRUE(u.contains({i}));
  EXPECT_FALSE(u.contains({4}));
}

TEST(ResolvedUnion, MixedRankRejected) {
  EXPECT_THROW(ResolvedUnion({ResolvedRect({{0, 2, 1}}),
                              ResolvedRect({{0, 2, 1}, {0, 2, 1}})}),
               InvalidArgument);
}

}  // namespace
}  // namespace snowflake
