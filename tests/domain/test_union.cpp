#include "domain/domain_union.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(DomainUnion, BuildWithPlus) {
  const RectDomain a({1, 1}, {-1, -1}, {2, 2});
  const RectDomain b({2, 2}, {-1, -1}, {2, 2});
  DomainUnion u = a + b;
  u = u + RectDomain({1, 2}, {-1, -1}, {2, 2});
  EXPECT_EQ(u.rect_count(), 3u);
  EXPECT_EQ(u.rank(), 2);
}

TEST(DomainUnion, ImplicitFromRect) {
  const DomainUnion u = RectDomain({0}, {4});
  EXPECT_EQ(u.rect_count(), 1u);
}

TEST(DomainUnion, ResolvePreservesOrder) {
  const DomainUnion u = RectDomain({4}, {8}) + RectDomain({0}, {4});
  const ResolvedUnion r = u.resolve({10});
  EXPECT_EQ(r.rects()[0].range(0).lo, 4);
  EXPECT_EQ(r.rects()[1].range(0).lo, 0);
}

TEST(DomainUnion, UnionOfUnions) {
  const DomainUnion a = RectDomain({0}, {2}) + RectDomain({2}, {4});
  const DomainUnion b = RectDomain({4}, {6}) + RectDomain({6}, {8});
  const DomainUnion c = a + b;
  EXPECT_EQ(c.rect_count(), 4u);
}

TEST(DomainUnion, ResolveEmptyThrows) {
  const DomainUnion u;
  EXPECT_THROW(u.resolve({4}), InvalidArgument);
}

TEST(DomainUnion, MixedRankRejected) {
  const DomainUnion u = RectDomain({0}, {4});
  EXPECT_THROW(u + RectDomain({0, 0}, {4, 4}), InvalidArgument);
}

}  // namespace
}  // namespace snowflake
