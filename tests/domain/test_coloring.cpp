// Coloring domains from the stencil library (paper Figure 3a/3b): the
// red-black parity classes and product multi-colorings partition the
// interior exactly.

#include <gtest/gtest.h>

#include <set>

#include "domain/domain_algebra.hpp"
#include "ir/stencil_library.hpp"

namespace snowflake {
namespace {

TEST(Coloring, RedBlack2DPartitionsInterior) {
  const Index shape{10, 10};
  const ResolvedUnion red = lib::colored_interior(2, 0).resolve(shape);
  const ResolvedUnion black = lib::colored_interior(2, 1).resolve(shape);
  EXPECT_TRUE(pairwise_disjoint(red));
  EXPECT_TRUE(pairwise_disjoint(black));
  EXPECT_TRUE(unions_disjoint(red, black));
  EXPECT_EQ(count_distinct(red) + count_distinct(black), 8 * 8);
}

TEST(Coloring, RedBlack2DParityCorrect) {
  const ResolvedUnion red = lib::colored_interior(2, 0).resolve({8, 8});
  red.for_each([](const Index& p) { EXPECT_EQ((p[0] + p[1]) % 2, 0); });
  const ResolvedUnion black = lib::colored_interior(2, 1).resolve({8, 8});
  black.for_each([](const Index& p) { EXPECT_EQ((p[0] + p[1]) % 2, 1); });
}

TEST(Coloring, RedBlack3DPartitionsInterior) {
  const Index shape{6, 6, 6};
  const ResolvedUnion red = lib::colored_interior(3, 0).resolve(shape);
  const ResolvedUnion black = lib::colored_interior(3, 1).resolve(shape);
  EXPECT_EQ(red.rects().size(), 4u);  // 2^(rank-1) strided rects per color
  EXPECT_EQ(black.rects().size(), 4u);
  EXPECT_TRUE(unions_disjoint(red, black));
  EXPECT_EQ(count_distinct(red) + count_distinct(black), 4 * 4 * 4);
  red.for_each([](const Index& p) { EXPECT_EQ((p[0] + p[1] + p[2]) % 2, 0); });
}

TEST(Coloring, FourColor2DPartition) {
  // Paper Figure 3b: 2x2 product coloring — each class is ONE strided rect.
  const Index shape{10, 10};
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  std::int64_t total = 0;
  for (int c = 0; c < 4; ++c) {
    const ResolvedUnion u = lib::colored_2d(2, c).resolve(shape);
    EXPECT_EQ(u.rects().size(), 1u);
    total += count_distinct(u);
    u.for_each([&](const Index& p) {
      EXPECT_TRUE(seen.insert({p[0], p[1]}).second)
          << "point visited by two colors";
    });
  }
  EXPECT_EQ(total, 8 * 8);
}

TEST(Coloring, NineColor2DPartition) {
  const Index shape{11, 11};
  std::int64_t total = 0;
  for (int c = 0; c < 9; ++c) {
    total += count_distinct(lib::colored_2d(3, c).resolve(shape));
  }
  EXPECT_EQ(total, 9 * 9);
}

TEST(Coloring, FaceDomains) {
  const Index shape{8, 8};
  const ResolvedUnion lo = lib::face(2, 0, false).resolve(shape);
  EXPECT_EQ(count_distinct(lo), 6);  // row 0, columns 1..6
  lo.for_each([](const Index& p) { EXPECT_EQ(p[0], 0); });
  const ResolvedUnion hi = lib::face(2, 0, true).resolve(shape);
  hi.for_each([](const Index& p) { EXPECT_EQ(p[0], 7); });
  // Faces never overlap the interior.
  EXPECT_TRUE(unions_disjoint(lo, lib::interior(2).resolve(shape)));
  EXPECT_TRUE(unions_disjoint(hi, lib::interior(2).resolve(shape)));
  EXPECT_TRUE(unions_disjoint(lo, hi));
}

TEST(Coloring, ColoredInteriorScalesWithGrid) {
  // The same DomainUnion object resolves correctly on every grid size —
  // the reuse property the paper's relative bounds exist for.
  const DomainUnion red = lib::colored_interior(2, 0);
  for (std::int64_t n : {4, 8, 16, 34}) {
    const Index shape{n, n};
    const std::int64_t interior_points = (n - 2) * (n - 2);
    const std::int64_t red_count = count_distinct(red.resolve(shape));
    const std::int64_t black_count =
        count_distinct(lib::colored_interior(2, 1).resolve(shape));
    EXPECT_EQ(red_count + black_count, interior_points) << "n=" << n;
  }
}

}  // namespace
}  // namespace snowflake
