// Per-face communication footprints: depth per grid per signed axis
// direction from the actual read-offset sets, diagonal-pattern detection
// (corner messages exist only when a stencil reads through a diagonal
// offset), and the unpruned corner-everything baseline.

#include "analysis/footprint.hpp"

#include <gtest/gtest.h>

#include "analysis/dag.hpp"
#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

ShapeMap shapes2(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "out", "rhs", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

/// Two-wave group: wave 0 refreshes `x` in place, wave 1 reads it through
/// `expr`.  The pruned footprint's wave 1 then carries exactly the read
/// offsets of `expr`.
StencilGroup two_wave(const ExprPtr& expr) {
  StencilGroup g;
  g.append(Stencil("touch", 1.0 * read("x", {0, 0}), "x", interior(2)));
  g.append(Stencil("apply", expr, "out", interior(2)));
  return g;
}

const WaveGridDepth& only_entry(const CommFootprint& fp, size_t wave) {
  EXPECT_LT(wave, fp.waves.size());
  EXPECT_EQ(fp.waves[wave].size(), 1u);
  return fp.waves[wave][0];
}

TEST(FaceFootprint, GsrbFaceDepthsAreOnePerDirectionNoCorners) {
  const StencilGroup group = mg::gsrb_smooth_group(2);
  const Schedule sched = greedy_schedule(group, shapes2(12));
  const CommFootprint fp = comm_footprint(group, sched, /*prune=*/true);

  ASSERT_EQ(fp.waves.size(), 4u);  // faces, red, faces, black
  for (size_t w = 1; w < fp.waves.size(); ++w) {
    const WaveGridDepth& wg = only_entry(fp, w);
    EXPECT_EQ(wg.grid, "x");
    for (size_t axis = 0; axis < 2; ++axis) {
      for (int sign : {-1, 1}) {
        EXPECT_EQ(wg.face_depth(axis, sign), 1)
            << "wave " << w << " axis " << axis << " sign " << sign;
      }
    }
    // The GSRB star never reads through a diagonal: no corner messages.
    EXPECT_FALSE(wg.needs_pattern({1, 1})) << w;
    EXPECT_FALSE(wg.needs_pattern({-1, 1})) << w;
    EXPECT_FALSE(wg.needs_pattern({1, -1})) << w;
    EXPECT_FALSE(wg.needs_pattern({-1, -1})) << w;
    // Pure-face patterns survive.
    EXPECT_TRUE(wg.needs_pattern({1, 0})) << w;
    EXPECT_TRUE(wg.needs_pattern({0, -1})) << w;
  }
}

TEST(FaceFootprint, NinePointStencilRequiresCorners) {
  ExprPtr nine = read("x", {0, 0});
  for (int i : {-1, 0, 1}) {
    for (int j : {-1, 0, 1}) {
      if (i == 0 && j == 0) continue;
      nine = nine + 0.125 * read("x", {i, j});
    }
  }
  const StencilGroup group = two_wave(nine);
  const Schedule sched = greedy_schedule(group, shapes2(10));
  const CommFootprint fp = comm_footprint(group, sched, /*prune=*/true);

  ASSERT_EQ(fp.waves.size(), 2u);
  const WaveGridDepth& wg = only_entry(fp, 1);
  EXPECT_EQ(wg.grid, "x");
  for (int i : {-1, 1}) {
    for (int j : {-1, 1}) {
      EXPECT_TRUE(wg.needs_pattern({i, j})) << i << "," << j;
      EXPECT_EQ(wg.pattern_depth({i, j}), (Index{1, 1})) << i << "," << j;
    }
  }
  EXPECT_EQ(wg.face_depth(0, -1), 1);
  EXPECT_EQ(wg.face_depth(1, 1), 1);
}

TEST(FaceFootprint, StarStencilProvablyNeedsNoCorners) {
  // Radius-2 star: deep faces, provably zero diagonal patterns.
  const ExprPtr star = read("x", {0, 0}) + 0.25 * (read("x", {-2, 0}) +
                                                   read("x", {2, 0}) +
                                                   read("x", {0, -2}) +
                                                   read("x", {0, 2}));
  StencilGroup group;
  group.append(Stencil("touch", 1.0 * read("x", {0, 0}), "x", interior(2)));
  group.append(Stencil("apply", star, "out", interior_margin(2, 2)));
  const Schedule sched = greedy_schedule(group, shapes2(10));
  const CommFootprint fp = comm_footprint(group, sched, /*prune=*/true);

  const WaveGridDepth& wg = only_entry(fp, 1);
  EXPECT_EQ(wg.depth, 2);
  for (size_t axis = 0; axis < 2; ++axis) {
    for (int sign : {-1, 1}) {
      EXPECT_EQ(wg.face_depth(axis, sign), 2);
    }
  }
  for (int i : {-1, 1}) {
    for (int j : {-1, 1}) {
      EXPECT_FALSE(wg.needs_pattern({i, j})) << i << "," << j;
    }
  }
}

TEST(FaceFootprint, AsymmetricOffsetsGivePerSignDepths) {
  // Upwind-style read set {-2, +1} in dim 0 only: the low face needs
  // depth 2, the high face depth 1, dim 1 nothing at all.
  const ExprPtr upwind =
      read("x", {0, 0}) + 0.5 * read("x", {-2, 0}) + 0.25 * read("x", {1, 0});
  StencilGroup group;
  group.append(Stencil("touch", 1.0 * read("x", {0, 0}), "x", interior(2)));
  group.append(Stencil("apply", upwind, "out", interior_margin(2, 2)));
  const Schedule sched = greedy_schedule(group, shapes2(10));
  const CommFootprint fp = comm_footprint(group, sched, /*prune=*/true);

  const WaveGridDepth& wg = only_entry(fp, 1);
  EXPECT_EQ(wg.face_depth(0, -1), 2);
  EXPECT_EQ(wg.face_depth(0, 1), 1);
  EXPECT_EQ(wg.face_depth(1, -1), 0);
  EXPECT_EQ(wg.face_depth(1, 1), 0);
  EXPECT_FALSE(wg.needs_pattern({0, 1}));
  EXPECT_TRUE(wg.needs_pattern({-1, 0}));
}

TEST(FaceFootprint, UnprunedBaselineListsCornerEverythingFootprints) {
  // The ablation baseline pretends every grid is read through every
  // pattern at the group halo: needs_pattern is true everywhere, so the
  // plan re-sends faces, edges and corners of all five smoother grids.
  const StencilGroup group = mg::gsrb_smooth_group(2);
  const Schedule sched = greedy_schedule(group, shapes2(12));
  const CommFootprint fp = comm_footprint(group, sched, /*prune=*/false);

  ASSERT_EQ(fp.waves.size(), 4u);
  EXPECT_TRUE(fp.waves[0].empty());
  ASSERT_EQ(fp.waves[1].size(), 5u);
  for (const WaveGridDepth& wg : fp.waves[1]) {
    EXPECT_TRUE(wg.needs_pattern({1, 1}));
    EXPECT_TRUE(wg.needs_pattern({-1, 0}));
    EXPECT_EQ(wg.face_depth(0, 1), wg.depth);
  }
}

}  // namespace
}  // namespace snowflake
