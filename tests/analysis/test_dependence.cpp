#include "analysis/dependence.hpp"

#include <gtest/gtest.h>

#include "ir/stencil_library.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

ShapeMap shapes2(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "y", "z", "rhs", "out", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(Dependence, RawThroughSharedGrid) {
  // y = f(x); z = g(y): RAW.
  const Stencil a(read("x", {0, 0}), "y", interior(2));
  const Stencil b(read("y", {0, 0}), "z", interior(2));
  const Dependence dep = stencil_dependence(a, b, shapes2(8));
  EXPECT_TRUE(dep.raw);
  EXPECT_FALSE(dep.war);
  EXPECT_FALSE(dep.waw);
}

TEST(Dependence, WarWhenLaterOverwritesInput) {
  const Stencil a(read("x", {0, 0}), "y", interior(2));
  const Stencil b(read("z", {0, 0}), "x", interior(2));
  const Dependence dep = stencil_dependence(a, b, shapes2(8));
  EXPECT_TRUE(dep.war);
  EXPECT_FALSE(dep.raw);
}

TEST(Dependence, WawOnSameOutput) {
  const Stencil a(constant(1.0), "out", interior(2));
  const Stencil b(constant(2.0), "out", interior(2));
  EXPECT_TRUE(stencil_dependence(a, b, shapes2(8)).waw);
}

TEST(Dependence, IndependentDisjointGrids) {
  const Stencil a(read("x", {0, 0}), "y", interior(2));
  const Stencil b(read("rhs", {0, 0}), "z", interior(2));
  EXPECT_FALSE(stencils_dependent(a, b, shapes2(8)));
}

TEST(Dependence, DisjointRegionsOfSameGridIndependent) {
  // Two stencils writing opposite faces of the same grid: the
  // finite-domain analysis proves independence (Halide's infinite-domain
  // interval analysis cannot — paper §III).
  const Stencil lo(constant(0.0), "x", face(2, 0, false));
  const Stencil hi(constant(0.0), "x", face(2, 0, true));
  EXPECT_FALSE(stencils_dependent(lo, hi, shapes2(8)));
}

TEST(Dependence, BoundaryFeedsInteriorStencil) {
  // The interior 5-point stencil reads the ghosts the face writes.
  const Stencil bc = dirichlet_face(2, "x", 0, false);
  const Stencil apply = cc_apply(2, "x", "out");
  EXPECT_TRUE(stencils_dependent(bc, apply, shapes2(8)));
}

TEST(Dependence, InteriorOnlyStencilIgnoresBoundary) {
  // A stencil whose domain stays 2 cells clear of the face never reads the
  // ghosts: provably independent.
  const Stencil bc = dirichlet_face(2, "x", 0, false);
  const Stencil inner(read("x", {-1, 0}) + read("x", {1, 0}), "out",
                      RectDomain({3, 3}, {-3, -3}));
  EXPECT_FALSE(stencils_dependent(bc, inner, shapes2(12)));
}

TEST(Dependence, RedBlackSweepsDependent) {
  const Stencil red = vc_gsrb_sweep(2, "x", "rhs", "lambda_inv", "beta", 0);
  const Stencil black = vc_gsrb_sweep(2, "x", "rhs", "lambda_inv", "beta", 1);
  const Dependence dep = stencil_dependence(red, black, shapes2(8));
  EXPECT_TRUE(dep.raw);  // black reads red's updates
}

TEST(PointParallel, OutOfPlaceAlwaysSafe) {
  EXPECT_TRUE(point_parallel_safe(cc_apply(2, "x", "out"), shapes2(8)));
  EXPECT_TRUE(point_parallel_safe(cc_jacobi(2, "x", "rhs", "lambda_inv", "out"),
                                  shapes2(8)));
}

TEST(PointParallel, GsrbColorSweepSafe) {
  // The headline analysis result: an in-place red sweep only reads black
  // neighbours, so all red points update concurrently.
  const Stencil red = vc_gsrb_sweep(2, "x", "rhs", "lambda_inv", "beta", 0);
  EXPECT_TRUE(point_parallel_safe(red, shapes2(8)));
}

TEST(PointParallel, InPlaceJacobiUnsafe) {
  // In-place smoother over the whole interior reads neighbours it also
  // writes: loop-carried.
  const Stencil s("bad", 0.25 * (read("x", {1, 0}) + read("x", {-1, 0}) +
                                 read("x", {0, 1}) + read("x", {0, -1})),
                  "x", interior(2));
  EXPECT_FALSE(point_parallel_safe(s, shapes2(8)));
}

TEST(PointParallel, CenterOnlyInPlaceSafe) {
  // x = 2*x reads only the written point: safe.
  const Stencil s("scale", 2.0 * read("x", {0, 0}), "x", interior(2));
  EXPECT_TRUE(point_parallel_safe(s, shapes2(8)));
}

TEST(UnionRects, GsrbSingleColorIndependent) {
  const Stencil red = vc_gsrb_sweep(3, "x", "rhs", "lambda_inv", "beta", 0);
  ShapeMap shapes;
  for (const std::string g :
       {"x", "rhs", "lambda_inv", "beta_x", "beta_y", "beta_z"}) {
    shapes[g] = Index{6, 6, 6};
  }
  EXPECT_TRUE(union_rects_independent(red, shapes));
}

TEST(UnionRects, RedPlusBlackAsOneStencilDependent) {
  // Writing the full red+black union as a single in-place stencil: the
  // rects interact, so they must run in order.
  const DomainUnion both = colored_interior(2, 0) + colored_interior(2, 1);
  const Stencil s("gsrb_all",
                  read("x", {0, 0}) + 0.25 * (read("x", {1, 0}) +
                                              read("x", {-1, 0}) +
                                              read("x", {0, 1}) +
                                              read("x", {0, -1})),
                  "x", both);
  EXPECT_FALSE(union_rects_independent(s, shapes2(8)));
}

TEST(Dependence, RestrictionCrossShape) {
  // residual -> restriction RAW through the fine grid.
  ShapeMap shapes{{"fine_res", {10, 10}},
                  {"coarse_rhs", {6, 6}},
                  {"x", {10, 10}},
                  {"rhs", {10, 10}},
                  {"beta_x", {10, 10}},
                  {"beta_y", {10, 10}}};
  const Stencil res = vc_residual(2, "x", "rhs", "fine_res", "beta");
  const Stencil restr = restriction_fw(2, "fine_res", "coarse_rhs");
  EXPECT_TRUE(stencils_dependent(res, restr, shapes));
}

}  // namespace
}  // namespace snowflake
