// The measurable version of the paper's §III claim: interval (Halide-
// style) analysis flags false dependencies exactly where the finite-domain
// Diophantine analysis proves independence — while never being *less*
// conservative than the exact analysis (soundness).

#include "analysis/interval.hpp"

#include <gtest/gtest.h>

#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

ShapeMap smoother_shapes(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "rhs", "out", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(Interval, HullsOverlapWherePointsDont) {
  // Red vs black columns: point-disjoint, hull-overlapping.
  const ResolvedUnion red({ResolvedRect({{1, 9, 2}})});
  const ResolvedUnion black({ResolvedRect({{2, 9, 2}})});
  EXPECT_TRUE(intervals_may_conflict(red, black));  // the false positive
}

TEST(Interval, DisjointBoxesStillProven) {
  const ResolvedUnion low({ResolvedRect({{0, 4, 1}})});
  const ResolvedUnion high({ResolvedRect({{5, 9, 1}})});
  EXPECT_FALSE(intervals_may_conflict(low, high));
}

TEST(Interval, RedBlackSweepFlaggedSequential) {
  // The exact analysis proves the in-place red sweep point-parallel; the
  // interval analysis cannot (its read hull covers its write hull).
  const Stencil red = vc_gsrb_sweep(2, "x", "rhs", "lambda_inv", "beta", 0);
  const ShapeMap shapes = smoother_shapes(10);
  EXPECT_TRUE(point_parallel_safe(red, shapes));            // exact: safe
  EXPECT_FALSE(point_parallel_safe_interval(red, shapes));  // interval: lost
}

TEST(Interval, FourColorSweepAlsoLost) {
  ShapeMap shapes{{"x", {12, 12}}, {"rhs", {12, 12}}};
  const Stencil c0 = gs4_sweep_9pt("x", "rhs", 0);
  EXPECT_TRUE(point_parallel_safe(c0, shapes));
  EXPECT_FALSE(point_parallel_safe_interval(c0, shapes));
}

TEST(Interval, OppositeFacesStillIndependent) {
  // Boxes genuinely disjoint: even interval analysis proves the two edge
  // stencils independent.
  const Stencil lo = dirichlet_face(2, "x", 0, false);
  const Stencil hi = dirichlet_face(2, "x", 0, true);
  EXPECT_FALSE(stencils_dependent_interval(lo, hi, smoother_shapes(10)));
}

TEST(Interval, InterleavedWritersFalseDependence) {
  // Paper §VI: "Finite-domain dependency analysis also lets us run
  // multiple different stencils on the interior at the same time if they
  // are non-overlapping."  Two stencils writing the red resp. black
  // points of the same output are point-disjoint (exact analysis: WAW
  // never happens) but box-overlapping (interval: serialized).
  const Stencil red_writer("wr_red", read("x", {0, 0}), "out",
                           colored_interior(2, 0));
  const Stencil black_writer("wr_black", 2.0 * read("x", {0, 0}), "out",
                             colored_interior(2, 1));
  const ShapeMap shapes = smoother_shapes(10);
  EXPECT_FALSE(stencils_dependent(red_writer, black_writer, shapes));
  EXPECT_TRUE(stencils_dependent_interval(red_writer, black_writer, shapes));
}

TEST(Interval, SoundnessNeverMissesRealDependence) {
  // Property: wherever the exact analysis finds a dependence, the interval
  // analysis must too (it may only over-approximate).
  const StencilGroup g = mg::gsrb_smooth_group(2);
  const ShapeMap shapes = smoother_shapes(10);
  for (size_t i = 0; i < g.size(); ++i) {
    for (size_t j = i + 1; j < g.size(); ++j) {
      if (stencils_dependent(g[i], g[j], shapes)) {
        EXPECT_TRUE(stencils_dependent_interval(g[i], g[j], shapes))
            << i << " -> " << j;
      }
    }
  }
}

TEST(Interval, ScheduleDegradesOnInterleavedWriters) {
  // Exact analysis: both writers share wave 0, consumer in wave 1.
  // Interval analysis: three waves (writers serialized).
  StencilGroup g;
  g.append(Stencil("wr_red", read("x", {0, 0}), "out", colored_interior(2, 0)));
  g.append(Stencil("wr_black", 2.0 * read("x", {0, 0}), "out",
                   colored_interior(2, 1)));
  g.append(Stencil("consume", read("out", {0, 0}), "rhs", interior(2)));
  const ShapeMap shapes = smoother_shapes(10);
  EXPECT_EQ(greedy_schedule(g, shapes).waves.size(), 2u);
  EXPECT_EQ(greedy_schedule_interval(g, shapes).waves.size(), 3u);
}

TEST(Interval, SmootherLosesInPlaceParallelismOnly) {
  // On the GSRB smoother the wave structure survives (its dependencies
  // are hull-visible), but every colored in-place sweep loses its
  // point-parallelism proof — the serialization the paper's analysis
  // exists to avoid.
  const StencilGroup g = mg::gsrb_smooth_group(2);
  const ShapeMap shapes = smoother_shapes(10);
  const Schedule exact = greedy_schedule(g, shapes);
  const Schedule coarse = greedy_schedule_interval(g, shapes);
  EXPECT_EQ(exact.waves.size(), coarse.waves.size());
  EXPECT_TRUE(exact.point_parallel[4]);    // red sweep: proved parallel
  EXPECT_FALSE(coarse.point_parallel[4]);  // interval: serialized
  EXPECT_TRUE(exact.point_parallel[9]);
  EXPECT_FALSE(coarse.point_parallel[9]);
}

}  // namespace
}  // namespace snowflake
