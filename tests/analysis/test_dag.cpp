#include "analysis/dag.hpp"

#include <gtest/gtest.h>

#include "ir/stencil_library.hpp"
#include "multigrid/operators.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

ShapeMap shapes2(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g :
       {"x", "y", "z", "w", "rhs", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(Dag, ChainStructure) {
  // x -> y -> z: a linear chain.
  StencilGroup g;
  g.append(Stencil(read("x", {0, 0}), "y", interior(2)));
  g.append(Stencil(read("y", {0, 0}), "z", interior(2)));
  g.append(Stencil(read("z", {0, 0}), "w", interior(2)));
  const DependenceDag dag(g, shapes2(8));
  EXPECT_TRUE(dag.depends(1, 0));
  EXPECT_TRUE(dag.depends(2, 1));
  EXPECT_FALSE(dag.depends(2, 0));  // z doesn't read x or y's inputs
  EXPECT_EQ(dag.preds(2), (std::vector<size_t>{1}));
  EXPECT_EQ(dag.succs(0), (std::vector<size_t>{1}));
}

TEST(Dag, IndependentPair) {
  StencilGroup g;
  g.append(Stencil(read("x", {0, 0}), "y", interior(2)));
  g.append(Stencil(read("x", {0, 0}), "z", interior(2)));
  const DependenceDag dag(g, shapes2(8));
  EXPECT_TRUE(dag.independent(0, 1));
}

TEST(Dag, DotOutput) {
  StencilGroup g;
  g.append(Stencil("first", read("x", {0, 0}), "y", interior(2)));
  g.append(Stencil("second", read("y", {0, 0}), "z", interior(2)));
  const DependenceDag dag(g, shapes2(8));
  const std::string dot = dag.to_dot(g);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("first"), std::string::npos);
}

TEST(GreedySchedule, IndependentStencilsShareWave) {
  StencilGroup g;
  g.append(Stencil(read("x", {0, 0}), "y", interior(2)));
  g.append(Stencil(read("x", {0, 0}), "z", interior(2)));
  g.append(Stencil(read("y", {0, 0}) + read("z", {0, 0}), "w", interior(2)));
  const Schedule s = greedy_schedule(g, shapes2(8));
  ASSERT_EQ(s.waves.size(), 2u);
  EXPECT_EQ(s.waves[0].stencils, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.waves[1].stencils, (std::vector<size_t>{2}));
}

TEST(GreedySchedule, PaperBarrierPlacement) {
  // The paper's greedy rule: "places a barrier only when the next stencil
  // depends on the stencils in the existing group."  Four boundary faces
  // batch into one wave; the red sweep forces a barrier; black another.
  const StencilGroup g = mg::gsrb_smooth_group(2);  // bc(4), red, bc(4), black
  ShapeMap shapes;
  for (const std::string name :
       {"x", "rhs", "lambda_inv", "beta_x", "beta_y"}) {
    shapes[name] = Index{10, 10};
  }
  const Schedule s = greedy_schedule(g, shapes);
  ASSERT_EQ(s.waves.size(), 4u);
  EXPECT_EQ(s.waves[0].stencils.size(), 4u);  // 4 faces together
  EXPECT_EQ(s.waves[1].stencils.size(), 1u);  // red
  EXPECT_EQ(s.waves[2].stencils.size(), 4u);  // faces again
  EXPECT_EQ(s.waves[3].stencils.size(), 1u);  // black
  // Every stencil in the smoother is point-parallel.
  for (bool p : s.point_parallel) EXPECT_TRUE(p);
}

TEST(BarrierPerStencil, OneWaveEach) {
  const StencilGroup g = lib::dirichlet_boundary(2, "x");
  const Schedule s = barrier_per_stencil_schedule(g, shapes2(8));
  EXPECT_EQ(s.waves.size(), g.size());
}

TEST(GreedySchedule, InPlaceChainAllBarriers) {
  // Repeated in-place updates of the same grid serialize completely.
  StencilGroup g;
  for (int i = 0; i < 3; ++i) {
    g.append(Stencil(2.0 * read("x", {0, 0}), "x", interior(2)));
  }
  const Schedule s = greedy_schedule(g, shapes2(8));
  EXPECT_EQ(s.waves.size(), 3u);
}

}  // namespace
}  // namespace snowflake
