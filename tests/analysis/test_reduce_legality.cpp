// Legality edges of the reduction construct: where reductions end the
// point-parallel/fusion region, what the validator refuses, and why the
// cross-sweep halo analysis rejects time tiling across one.

#include <gtest/gtest.h>

#include "analysis/dag.hpp"
#include "analysis/halo.hpp"
#include "ir/stencil_library.hpp"
#include "ir/validate.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

ShapeMap shapes2(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g : {"x", "y", "z"}) shapes[g] = Index{n, n};
  shapes["acc"] = Index{1, 1};
  return shapes;
}

/// Sum over a strided two-rect parity union with grid-relative (negative)
/// stop bounds — the reduction visits exactly the union's points.
Stencil strided_union_reduction(const std::string& in,
                                const std::string& out) {
  std::vector<RectDomain> rects;
  for (std::int64_t parity : {0, 1}) {
    rects.emplace_back(Index{1 + parity, 1}, Index{-1, -2}, Index{2, 1});
  }
  return Stencil("strided_sum", reduce_sum(read(in, {0, 0}), in), out,
                 DomainUnion(std::move(rects)));
}

TEST(ReduceLegality, StridedNegativeBoundUnionValidatesAndSchedules) {
  StencilGroup g;
  g.append(Stencil("smooth",
                   0.5 * read("x", {0, 0}) +
                       0.25 * (read("x", {1, 0}) + read("x", {-1, 0})),
                   "y", lib::interior(2)));
  g.append(strided_union_reduction("y", "acc"));
  const ShapeMap shapes = shapes2(12);
  EXPECT_NO_THROW(validate_group(g, shapes));

  const Schedule schedule = greedy_schedule(g, shapes);
  // The reduction ends the point-parallel region: it runs in its own wave
  // and is never point-parallel (the accumulator is carried).
  ASSERT_EQ(schedule.waves.size(), 2u);
  ASSERT_EQ(schedule.waves[1].stencils.size(), 1u);
  EXPECT_EQ(schedule.waves[1].stencils[0], 1u);
  EXPECT_TRUE(schedule.point_parallel[0]);
  EXPECT_FALSE(schedule.point_parallel[1]);
  // Cross-rect combination order is fixed (deterministic identity), so the
  // union rects must not be marked interleavable.
  EXPECT_FALSE(schedule.rects_independent[1]);
}

TEST(ReduceLegality, ReductionIsSingletonWaveEvenWhenIndependent) {
  // Two independent stencils normally share a wave; a reduction between
  // unrelated stencils still gets a wave of its own.
  StencilGroup g;
  g.append(Stencil("a", read("x", {0, 0}), "y", lib::interior(2)));
  g.append(Stencil("sum", reduce_sum(read("x", {0, 0}), "x"), "acc",
                   lib::interior(2)));
  g.append(Stencil("b", 2.0 * read("x", {0, 0}), "z", lib::interior(2)));
  const Schedule schedule = greedy_schedule(g, shapes2(10));
  for (size_t w = 0; w < schedule.waves.size(); ++w) {
    for (size_t s : schedule.waves[w].stencils) {
      if (g[s].is_reduction()) {
        EXPECT_EQ(schedule.waves[w].stencils.size(), 1u)
            << "reduction shares wave " << w;
      }
    }
  }
}

TEST(ReduceLegality, LaterReadOfReductionResultRejected) {
  // The scalar result cannot be consumed in the same group — the group
  // must split at the reduction boundary.
  StencilGroup g;
  g.append(Stencil("sum", reduce_sum(read("x", {0, 0}), "x"), "acc",
                   lib::interior(2)));
  g.append(Stencil("scale", read("acc", {0, 0}), "acc", lib::interior(2)));
  try {
    validate_group(g, shapes2(10));
    FAIL() << "expected validate_group to reject the later read";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("split"), std::string::npos)
        << e.what();
  }
}

TEST(ReduceLegality, LaterClobberOfReductionResultRejected) {
  StencilGroup g;
  g.append(Stencil("sum", reduce_sum(read("x", {0, 0}), "x"), "acc",
                   lib::interior(2)));
  g.append(Stencil("max", reduce_max(read("y", {0, 0}), "y"), "acc",
                   lib::interior(2)));
  EXPECT_THROW(validate_group(g, shapes2(10)), InvalidArgument);
}

TEST(ReduceLegality, HaloRefusesTimeTilingAcrossReductionWithReason) {
  StencilGroup g;
  g.append(Stencil("smooth",
                   0.5 * read("x", {0, 0}) +
                       0.25 * (read("x", {0, 1}) + read("x", {0, -1})),
                   "x", lib::interior(2)));
  g.append(Stencil("norm", reduce_sum(read("x", {0, 0}), "x"), "acc",
                   lib::interior(2)));
  const ShapeMap shapes = shapes2(12);
  const SweepHalo halo =
      analyze_sweep_halo(g, shapes, greedy_schedule(g, shapes));
  EXPECT_FALSE(halo.legal);
  // The refusal must be explained: a reduction is a whole-domain
  // synchronization point, logged so fallback is diagnosable.
  EXPECT_NE(halo.reason.find("reduction"), std::string::npos) << halo.reason;
  EXPECT_NE(halo.reason.find("time tiling refused"), std::string::npos)
      << halo.reason;
}

TEST(ReduceLegality, ValidatorRejectsMalformedReductions) {
  const ShapeMap shapes = shapes2(10);
  // Non-scalar result grid.
  EXPECT_THROW(
      validate_group(StencilGroup(Stencil(
                         "sum", reduce_sum(read("x", {0, 0}), "x"), "y",
                         lib::interior(2))),
                     shapes),
      InvalidArgument);
  // Dot body without a top-level product.
  EXPECT_THROW(
      validate_group(StencilGroup(Stencil(
                         "dot", reduce_dot(read("x", {0, 0}), "x"), "acc",
                         lib::interior(2))),
                     shapes),
      InvalidArgument);
  // Reduction body reading the result grid.
  EXPECT_THROW(
      validate_group(StencilGroup(Stencil(
                         "sum", reduce_sum(read("acc", {0, 0}), "x"), "acc",
                         lib::interior(2))),
                     shapes),
      InvalidArgument);
  // ReduceExpr below the root.
  EXPECT_THROW(
      validate_group(StencilGroup(Stencil(
                         "nested",
                         1.0 + reduce_sum(read("x", {0, 0}), "x"), "acc",
                         lib::interior(2))),
                     shapes),
      InvalidArgument);
}

}  // namespace
}  // namespace snowflake
