#include "analysis/diophantine.hpp"

#include <gtest/gtest.h>

namespace snowflake {
namespace {

TEST(Diophantine, SolvableWhenGcdDivides) {
  // 6x + 10y = 8: gcd 2 divides 8.
  const auto s = solve_linear_diophantine(6, 10, 8);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(6 * s->x0 + 10 * s->y0, 8);
  // The one-parameter family stays on the solution set.
  for (int k = -3; k <= 3; ++k) {
    EXPECT_EQ(6 * (s->x0 + k * s->step_x) + 10 * (s->y0 + k * s->step_y), 8);
  }
}

TEST(Diophantine, UnsolvableWhenGcdDoesNot) {
  EXPECT_FALSE(solve_linear_diophantine(6, 10, 7).has_value());
  EXPECT_FALSE(solve_linear_diophantine(4, 8, 2).has_value());
}

TEST(Diophantine, DegenerateBothZero) {
  EXPECT_TRUE(solve_linear_diophantine(0, 0, 0).has_value());
  EXPECT_FALSE(solve_linear_diophantine(0, 0, 5).has_value());
}

TEST(Diophantine, OneCoefficientZero) {
  const auto s = solve_linear_diophantine(0, 5, 15);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(5 * s->y0, 15);
  EXPECT_FALSE(solve_linear_diophantine(0, 5, 7).has_value());
}

TEST(Congruence, Basic) {
  // 3x ≡ 2 (mod 7): x = 3.
  const auto x = solve_congruence(3, 2, 7);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((3 * *x) % 7, 2);
  EXPECT_GE(*x, 0);
  EXPECT_LT(*x, 7);
}

TEST(Congruence, Unsolvable) {
  // 2x ≡ 1 (mod 4): gcd(2,4)=2 does not divide 1.
  EXPECT_FALSE(solve_congruence(2, 1, 4).has_value());
}

TEST(Congruence, SolvableNonCoprime) {
  // 2x ≡ 2 (mod 4): x = 1.
  const auto x = solve_congruence(2, 2, 4);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((2 * *x) % 4, 2);
}

TEST(HasSolutionIn, BruteForceAgreement) {
  // Exhaustive cross-check of the bounded solver against enumeration.
  const ResolvedRange xs{0, 9, 2};   // 0,2,4,6,8
  const ResolvedRange ys{1, 10, 3};  // 1,4,7
  for (std::int64_t a = -3; a <= 3; ++a) {
    for (std::int64_t b = -3; b <= 3; ++b) {
      for (std::int64_t c = -10; c <= 10; ++c) {
        bool expect = false;
        for (std::int64_t x = xs.lo; x < xs.hi; x += xs.stride) {
          for (std::int64_t y = ys.lo; y < ys.hi; y += ys.stride) {
            if (a * x + b * y == c) expect = true;
          }
        }
        EXPECT_EQ(has_solution_in(a, b, c, xs, ys), expect)
            << a << "x + " << b << "y = " << c;
      }
    }
  }
}

TEST(HasSolutionIn, EmptyRangeNeverSolves) {
  const ResolvedRange empty{3, 3, 1};
  const ResolvedRange some{0, 10, 1};
  EXPECT_FALSE(has_solution_in(1, 1, 2, empty, some));
  EXPECT_FALSE(has_solution_in(0, 0, 0, empty, some));
}

TEST(Polynomial, EvalHorner) {
  // 3 - 2x + x^2 at x = 4: 3 - 8 + 16 = 11.
  EXPECT_EQ(poly_eval({3, -2, 1}, 4), 11);
  EXPECT_EQ(poly_eval({5}, 100), 5);
  EXPECT_EQ(poly_eval({0, 1}, -7), -7);
}

TEST(Polynomial, QuadraticRoots) {
  // x^2 - 5x + 6 = (x-2)(x-3).
  const Polynomial p{6, -5, 1};
  EXPECT_TRUE(poly_has_root_in(p, {0, 10, 1}));
  EXPECT_TRUE(poly_has_root_in(p, {3, 4, 1}));   // just {3}
  EXPECT_FALSE(poly_has_root_in(p, {4, 10, 1})); // roots below range
  EXPECT_FALSE(poly_has_root_in(p, {0, 2, 1}));  // roots above range
}

TEST(Polynomial, StrideFiltersRoots) {
  // Roots 2 and 3; the progression {0, 2, 4, ...} contains 2 only, the
  // progression {1, 3, 5, ...} contains 3 only, {0, 4, 8} contains none.
  const Polynomial p{6, -5, 1};
  EXPECT_TRUE(poly_has_root_in(p, {0, 10, 2}));
  EXPECT_TRUE(poly_has_root_in(p, {1, 10, 2}));
  EXPECT_FALSE(poly_has_root_in(p, {0, 10, 4}));
}

TEST(Polynomial, TouchRootAndNoRealRoots) {
  // (x-2)^2 touches zero at 2; x^2 + 1 has no real roots.
  EXPECT_TRUE(poly_has_root_in({4, -4, 1}, {0, 5, 1}));
  EXPECT_FALSE(poly_has_root_in({1, 0, 1}, {-10, 10, 1}));
}

TEST(Polynomial, IrrationalRootsRejected) {
  // x^2 - 2 = 0 has no INTEGER solutions — the Diophantine distinction.
  EXPECT_FALSE(poly_has_root_in({-2, 0, 1}, {-10, 10, 1}));
}

TEST(Polynomial, CubicAndHigher) {
  // (x-1)(x-4)(x+5) = x^3 - 21x + 20.
  const Polynomial cubic{20, -21, 0, 1};
  EXPECT_TRUE(poly_has_root_in(cubic, {0, 3, 1}));    // 1
  EXPECT_TRUE(poly_has_root_in(cubic, {2, 5, 1}));    // 4
  EXPECT_TRUE(poly_has_root_in(cubic, {-6, -4, 1}));  // -5
  EXPECT_FALSE(poly_has_root_in(cubic, {5, 20, 1}));
  // Quartic with a wide rootless stretch.
  const Polynomial quartic{1, 0, 0, 0, 1};  // x^4 + 1 > 0
  EXPECT_FALSE(poly_has_root_in(quartic, {-1000, 1000, 1}));
}

TEST(Polynomial, BruteForceAgreement) {
  // Random small quadratics/cubics vs enumeration.
  std::uint64_t state = 42;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::int64_t>((state >> 33) % 9) - 4;
  };
  for (int trial = 0; trial < 200; ++trial) {
    Polynomial p{next(), next(), next(), next()};
    const ResolvedRange xs{-6, 7, 1 + (trial % 3)};
    bool expect = false;
    for (std::int64_t x = xs.lo; x < xs.hi; x += xs.stride) {
      if (poly_eval(p, x) == 0) expect = true;
    }
    EXPECT_EQ(poly_has_root_in(p, xs), expect)
        << "trial " << trial << " p = {" << p[0] << "," << p[1] << "," << p[2]
        << "," << p[3] << "}";
  }
}

TEST(Polynomial, IntersectionOfIndexPolynomials) {
  // Does x^2 (x in 1..6) meet 2y (y in 1..20)?  x=2 -> 4 = 2*2: yes.
  EXPECT_TRUE(polys_intersect_in({0, 0, 1}, {1, 7, 1}, {0, 2}, {1, 21, 1}));
  // x^2 vs odd values only: squares 1,4,9,16,25 — 1 and 9 and 25 are odd: yes.
  EXPECT_TRUE(polys_intersect_in({0, 0, 1}, {1, 6, 1}, {1, 2}, {0, 20, 1}));
  // x^2 + 1 (2,5,10,17) vs multiples of 4 in 0..40: never equal.
  EXPECT_FALSE(polys_intersect_in({1, 0, 1}, {1, 5, 1}, {0, 4}, {0, 11, 1}));
}

TEST(Polynomial, IntersectionConservativeOnHugeRanges) {
  // Over-budget ranges return may-conflict (sound for dependence tests).
  EXPECT_TRUE(polys_intersect_in({0, 0, 1}, {0, 100000, 1}, {1, 0, 1},
                                 {0, 100000, 1}));
}

TEST(HasSolutionIn, DependenceDistanceExample) {
  // Classic: i and i+1 over the same strided red domain never meet (write
  // at x, read at y+1 with x == y + 1, both red ⇒ no solution).
  const ResolvedRange red{1, 20, 2};
  EXPECT_FALSE(has_solution_in(1, -1, 1, red, red));  // x - y = 1
  EXPECT_TRUE(has_solution_in(1, -1, 2, red, red));   // x - y = 2
}

}  // namespace
}  // namespace snowflake
