#include "analysis/access.hpp"

#include <gtest/gtest.h>

#include "domain/domain_algebra.hpp"
#include "ir/stencil_library.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(Access, WriteFirstThenDedupedReads) {
  const Stencil s("s", read("x", {1}) + read("x", {1}) + read("x", {-1}),
                  "out", RectDomain({1}, {-1}));
  const auto acc = accesses_of(s);
  ASSERT_EQ(acc.size(), 3u);  // write + two distinct reads (dup removed)
  EXPECT_TRUE(acc[0].is_write);
  EXPECT_EQ(acc[0].grid, "out");
  EXPECT_TRUE(acc[0].map.is_identity());
  EXPECT_FALSE(acc[1].is_write);
}

TEST(Access, InPlaceStencilWriteAndReadSameGrid) {
  const Stencil s("s", read("x", {0}) + read("x", {1}), "x",
                  RectDomain({1}, {-1}));
  const auto acc = accesses_of(s);
  int writes = 0, x_reads = 0;
  for (const auto& a : acc) {
    if (a.is_write) ++writes;
    if (!a.is_write && a.grid == "x") ++x_reads;
  }
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(x_reads, 2);
}

TEST(Access, RegionOfOffsetRead) {
  const Access a{"x", IndexMap::offset({1}), false};
  const ResolvedUnion dom({ResolvedRect({{1, 9, 2}})});
  const ResolvedUnion region = access_region(a, dom);
  // Canonical form: hi is last+1.
  EXPECT_EQ(region.rects()[0].range(0), (ResolvedRange{2, 9, 2}));
}

TEST(Access, RegionOfRestrictionRead) {
  const Access a{"fine", IndexMap::scale({2}, {-1}), false};
  const ResolvedUnion dom({ResolvedRect({{1, 5, 1}})});  // coarse 1..4
  const ResolvedUnion region = access_region(a, dom);
  EXPECT_EQ(region.rects()[0].range(0), (ResolvedRange{1, 8, 2}));  // 1,3,5,7
}

TEST(Access, ResolvedDomainUsesOutputShape) {
  const Stencil s = lib::cc_apply(2, "x", "out");
  ShapeMap shapes{{"x", {10, 10}}, {"out", {10, 10}}};
  const ResolvedUnion dom = resolved_domain(s, shapes);
  EXPECT_EQ(count_distinct(dom), 64);
}

TEST(Access, MissingShapeThrows) {
  const Stencil s = lib::cc_apply(2, "x", "out");
  EXPECT_THROW(resolved_domain(s, ShapeMap{{"x", {10, 10}}}), LookupError);
}

}  // namespace
}  // namespace snowflake
