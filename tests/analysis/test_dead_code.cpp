#include "analysis/dead_code.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/dag.hpp"
#include "ir/stencil_library.hpp"

namespace snowflake {
namespace {

using namespace snowflake::lib;

ShapeMap shapes2(std::int64_t n) {
  ShapeMap shapes;
  for (const std::string g : {"a", "b", "c", "d", "x", "y", "z", "w"}) {
    shapes[g] = Index{n, n};
  }
  return shapes;
}

TEST(DeadCode, UnusedWriterEliminated) {
  StencilGroup g;
  g.append(Stencil("live", read("a", {0, 0}), "b", interior(2)));
  g.append(Stencil("dead", read("a", {0, 0}), "c", interior(2)));
  const auto live = live_stencils(g, {"b"});
  EXPECT_TRUE(live[0]);
  EXPECT_FALSE(live[1]);
  const StencilGroup pruned = eliminate_dead_stencils(g, {"b"});
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0].name(), "live");
}

TEST(DeadCode, TransitiveLiveness) {
  // a -> b -> c with only c live: both stages stay.
  StencilGroup g;
  g.append(Stencil(read("a", {0, 0}), "b", interior(2)));
  g.append(Stencil(read("b", {0, 0}), "c", interior(2)));
  const auto live = live_stencils(g, {"c"});
  EXPECT_TRUE(live[0]);
  EXPECT_TRUE(live[1]);
}

TEST(DeadCode, DeadChainFullyRemoved) {
  StencilGroup g;
  g.append(Stencil(read("a", {0, 0}), "x", interior(2)));
  g.append(Stencil(read("x", {0, 0}), "y", interior(2)));
  g.append(Stencil(read("a", {0, 0}), "z", interior(2)));
  const StencilGroup pruned = eliminate_dead_stencils(g, {"z"});
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0].output(), "z");
}

TEST(DeadCode, EverythingLiveWhenAllOutputsMatter) {
  StencilGroup g;
  g.append(Stencil(read("a", {0, 0}), "b", interior(2)));
  g.append(Stencil(read("a", {0, 0}), "c", interior(2)));
  const auto live = live_stencils(g, {"b", "c"});
  EXPECT_TRUE(live[0]);
  EXPECT_TRUE(live[1]);
}

TEST(Reorder, CanSwapIndependentNeighbors) {
  StencilGroup g;
  g.append(Stencil(read("a", {0, 0}), "b", interior(2)));
  g.append(Stencil(read("a", {0, 0}), "c", interior(2)));
  g.append(Stencil(read("c", {0, 0}), "d", interior(2)));
  EXPECT_TRUE(can_swap_adjacent(g, 0, shapes2(8)));    // a->b vs a->c
  EXPECT_FALSE(can_swap_adjacent(g, 1, shapes2(8)));   // a->c feeds c->d
}

TEST(Reorder, WavesImproveAfterReordering) {
  // Program order interleaves two independent chains pessimally:
  // a->x, b reads x, a2->y, b2 reads y.  Reordering lets the two heads
  // share a wave.
  StencilGroup g;
  g.append(Stencil("head1", read("a", {0, 0}), "x", interior(2)));
  g.append(Stencil("tail1", read("x", {0, 0}), "c", interior(2)));
  g.append(Stencil("head2", read("a", {0, 0}), "y", interior(2)));
  g.append(Stencil("tail2", read("y", {0, 0}), "d", interior(2)));
  const ShapeMap shapes = shapes2(8);
  // Greedy on the interleaved order: {head1} | {tail1, head2} | {tail2}.
  EXPECT_EQ(greedy_schedule(g, shapes).waves.size(), 3u);
  const StencilGroup r = reorder_for_waves(g, shapes);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(greedy_schedule(r, shapes).waves.size(), 2u);
  // Reordering preserved per-chain order.
  std::vector<std::string> names;
  for (const auto& s : r.stencils()) names.push_back(s.name());
  EXPECT_LT(std::find(names.begin(), names.end(), "head1"),
            std::find(names.begin(), names.end(), "tail1"));
  EXPECT_LT(std::find(names.begin(), names.end(), "head2"),
            std::find(names.begin(), names.end(), "tail2"));
}

}  // namespace
}  // namespace snowflake
