#include "grid/layout.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(Layout, RowMajorStrides) {
  const Layout layout({4, 5, 6});
  EXPECT_EQ(layout.rank(), 3);
  EXPECT_EQ(layout.size(), 120);
  EXPECT_EQ(layout.strides(), (Index{30, 6, 1}));
}

TEST(Layout, OffsetAndUnflattenInverse) {
  const Layout layout({3, 4, 5});
  std::int64_t flat = 0;
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      for (std::int64_t k = 0; k < 5; ++k) {
        EXPECT_EQ(layout.offset({i, j, k}), flat);
        EXPECT_EQ(layout.unflatten(flat), (Index{i, j, k}));
        ++flat;
      }
    }
  }
}

TEST(Layout, LastDimContiguous) {
  const Layout layout({7, 9});
  EXPECT_EQ(layout.offset({2, 3}) + 1, layout.offset({2, 4}));
}

TEST(Layout, Contains) {
  const Layout layout({2, 3});
  EXPECT_TRUE(layout.contains({0, 0}));
  EXPECT_TRUE(layout.contains({1, 2}));
  EXPECT_FALSE(layout.contains({2, 0}));
  EXPECT_FALSE(layout.contains({0, 3}));
  EXPECT_FALSE(layout.contains({-1, 0}));
  EXPECT_FALSE(layout.contains({0}));  // rank mismatch
}

TEST(Layout, Rank1) {
  const Layout layout({10});
  EXPECT_EQ(layout.size(), 10);
  EXPECT_EQ(layout.offset({7}), 7);
}

TEST(Layout, RejectsBadShapes) {
  EXPECT_THROW(Layout({0}), InvalidArgument);
  EXPECT_THROW(Layout({4, -1}), InvalidArgument);
  EXPECT_THROW(Layout(Index{}), InvalidArgument);
}

TEST(Layout, Equality) {
  EXPECT_EQ(Layout({2, 3}), Layout({2, 3}));
  EXPECT_FALSE(Layout({2, 3}) == Layout({3, 2}));
}

}  // namespace
}  // namespace snowflake
