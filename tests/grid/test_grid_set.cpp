#include "grid/grid_set.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(GridSet, AddAndLookup) {
  GridSet gs;
  gs.add_zeros("mesh", {4, 4});
  gs.add("rhs", Grid({4, 4}, 1.0));
  EXPECT_TRUE(gs.contains("mesh"));
  EXPECT_EQ(gs.at("rhs").sum(), 16.0);
  EXPECT_THROW(gs.at("nope"), LookupError);
}

TEST(GridSet, NamesSorted) {
  GridSet gs;
  gs.add_zeros("zeta", {2});
  gs.add_zeros("alpha", {2});
  gs.add_zeros("mu", {2});
  EXPECT_EQ(gs.names(), (std::vector<std::string>{"alpha", "mu", "zeta"}));
}

TEST(GridSet, ReplaceOnAdd) {
  GridSet gs;
  gs.add("g", Grid({2}, 1.0));
  gs.add("g", Grid({3}, 2.0));
  EXPECT_EQ(gs.at("g").size(), 3);
  EXPECT_EQ(gs.size(), 1u);
}

TEST(GridSet, Remove) {
  GridSet gs;
  gs.add_zeros("g", {2});
  gs.remove("g");
  EXPECT_FALSE(gs.contains("g"));
  EXPECT_THROW(gs.remove("g"), LookupError);
}

TEST(GridSet, SharedStorageAcrossSets) {
  GridSet fine, pair;
  fine.add_zeros("res", {6, 6});
  pair.add_shared("fine_res", fine.share("res"));
  pair.at("fine_res").at({2, 2}) = 9.0;
  EXPECT_EQ(fine.at("res").at({2, 2}), 9.0);
  EXPECT_EQ(fine.at("res").data(), pair.at("fine_res").data());
}

TEST(GridSet, ShareUnknownThrows) {
  const GridSet gs;
  EXPECT_THROW(gs.share("missing"), LookupError);
}

TEST(GridSet, EmptyNameRejected) {
  GridSet gs;
  EXPECT_THROW(gs.add_zeros("", {2}), InvalidArgument);
}

}  // namespace
}  // namespace snowflake
