#include "grid/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(Grid, ZeroInitialized) {
  const Grid g({3, 3, 3});
  for (std::int64_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 0.0);
}

TEST(Grid, FillValueConstructor) {
  const Grid g({4, 4}, 2.5);
  EXPECT_EQ(g.sum(), 2.5 * 16);
}

TEST(Grid, AtAccess) {
  Grid g({2, 3});
  g.at({1, 2}) = 7.0;
  EXPECT_EQ(g.at({1, 2}), 7.0);
  EXPECT_EQ(g[g.layout().offset({1, 2})], 7.0);
  EXPECT_THROW(g.at({2, 0}), InvalidArgument);
}

TEST(Grid, FillWithFunction) {
  Grid g({3, 4});
  g.fill_with([](const Index& i) { return static_cast<double>(10 * i[0] + i[1]); });
  EXPECT_EQ(g.at({0, 0}), 0.0);
  EXPECT_EQ(g.at({2, 3}), 23.0);
  EXPECT_EQ(g.at({1, 2}), 12.0);
}

TEST(Grid, FillRandomDeterministic) {
  Grid a({8, 8}), b({8, 8});
  a.fill_random(42, -1.0, 1.0);
  b.fill_random(42, -1.0, 1.0);
  EXPECT_TRUE(Grid::all_close(a, b, 0.0));
  b.fill_random(43, -1.0, 1.0);
  EXPECT_FALSE(Grid::all_close(a, b, 1e-9));
}

TEST(Grid, FillRandomRange) {
  Grid g({100});
  g.fill_random(7, 2.0, 3.0);
  for (std::int64_t i = 0; i < g.size(); ++i) {
    EXPECT_GE(g[i], 2.0);
    EXPECT_LT(g[i], 3.0);
  }
}

TEST(Grid, Norms) {
  Grid g({2, 2});
  g.at({0, 0}) = 3.0;
  g.at({1, 1}) = -4.0;
  EXPECT_DOUBLE_EQ(g.norm_l2(), 5.0);
  EXPECT_DOUBLE_EQ(g.norm_max(), 4.0);
  EXPECT_DOUBLE_EQ(g.sum(), -1.0);
}

TEST(Grid, CopySemantics) {
  Grid a({4, 4});
  a.fill_random(1);
  Grid b = a;
  EXPECT_NE(a.data(), b.data());
  EXPECT_TRUE(Grid::all_close(a, b, 0.0));
  b[0] += 1.0;
  EXPECT_FALSE(Grid::all_close(a, b, 0.5));
}

TEST(Grid, MoveSemantics) {
  Grid a({4, 4}, 1.0);
  const double* p = a.data();
  Grid b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(Grid, MaxAbsDiff) {
  Grid a({3}), b({3});
  a.at({1}) = 1.0;
  b.at({1}) = 1.5;
  EXPECT_DOUBLE_EQ(Grid::max_abs_diff(a, b), 0.5);
  EXPECT_THROW(Grid::max_abs_diff(a, Grid({4})), InvalidArgument);
}

TEST(Grid, AlignedStorage) {
  const Grid g({5, 7});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(g.data()) % 64, 0u);
}

}  // namespace
}  // namespace snowflake
