#include "grid/grid_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "support/error.hpp"

namespace snowflake {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(GridIo, RawRoundTripExact) {
  Grid g({5, 7, 3});
  g.fill_random(11, -10.0, 10.0);
  const std::string path = temp_path("sf_grid.bin");
  io::write_raw(g, path);
  const Grid back = io::read_raw(path);
  EXPECT_EQ(back.shape(), g.shape());
  EXPECT_TRUE(Grid::all_close(g, back, 0.0));  // bit-exact
  fs::remove(path);
}

TEST(GridIo, RawRejectsGarbage) {
  const std::string path = temp_path("sf_not_a_grid.bin");
  {
    std::ofstream out(path);
    out << "hello world, definitely not a grid";
  }
  EXPECT_THROW(io::read_raw(path), Error);
  fs::remove(path);
  EXPECT_THROW(io::read_raw("/nonexistent/grid.bin"), Error);
}

TEST(GridIo, RawRejectsTruncated) {
  Grid g({4, 4});
  g.fill(1.0);
  const std::string path = temp_path("sf_grid_trunc.bin");
  io::write_raw(g, path);
  fs::resize_file(path, fs::file_size(path) - 16);
  EXPECT_THROW(io::read_raw(path), Error);
  fs::remove(path);
}

TEST(GridIo, CsvLayout) {
  Grid g({2, 3});
  g.fill_with([](const Index& i) { return static_cast<double>(10 * i[0] + i[1]); });
  const std::string path = temp_path("sf_grid.csv");
  io::write_csv(g, path);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "0,1,2");
  EXPECT_EQ(line2, "10,11,12");
  fs::remove(path);
  EXPECT_THROW(io::write_csv(Grid({2, 2, 2}), path), InvalidArgument);
}

TEST(GridIo, VtkHeader) {
  Grid g({4, 6});  // rows=4 (y), cols=6 (x)
  g.fill(1.5);
  const std::string path = temp_path("sf_grid.vtk");
  io::write_vtk(g, path, "temperature");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DIMENSIONS 6 4 1"), std::string::npos);
  EXPECT_NE(content.find("SCALARS temperature double 1"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 24"), std::string::npos);
  fs::remove(path);
}

TEST(GridIo, VtkRejectsBadInputs) {
  EXPECT_THROW(io::write_vtk(Grid({2, 2, 2, 2}), temp_path("x.vtk")),
               InvalidArgument);
  EXPECT_THROW(io::write_vtk(Grid({4}), temp_path("x.vtk"), "bad name"),
               InvalidArgument);
}

}  // namespace
}  // namespace snowflake
