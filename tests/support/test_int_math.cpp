#include "support/int_math.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace snowflake {
namespace {

TEST(ExtGcd, BasicIdentity) {
  for (std::int64_t a : {-48, -7, 0, 1, 12, 35, 270}) {
    for (std::int64_t b : {-30, -1, 0, 2, 18, 192}) {
      const ExtGcd eg = ext_gcd(a, b);
      EXPECT_EQ(a * eg.x + b * eg.y, eg.g) << "a=" << a << " b=" << b;
      EXPECT_GE(eg.g, 0);
      if (a != 0) {
        EXPECT_EQ(a % eg.g, 0);
      }
      if (b != 0) {
        EXPECT_EQ(b % eg.g, 0);
      }
    }
  }
}

TEST(ExtGcd, ZeroZero) {
  const ExtGcd eg = ext_gcd(0, 0);
  EXPECT_EQ(eg.g, 0);
}

TEST(ExtGcd, KnownValues) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(17, 5), 1);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(7, 0), 7);
}

TEST(Lcm, Values) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(2, 2), 2);
  EXPECT_EQ(lcm(0, 5), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
  EXPECT_EQ(lcm(7, 13), 91);
}

TEST(FloorDiv, RoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(CeilDiv, RoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(1, 8), 1);
  EXPECT_EQ(ceil_div(0, 8), 0);
}

TEST(ModFloor, AlwaysNonNegative) {
  EXPECT_EQ(mod_floor(7, 3), 1);
  EXPECT_EQ(mod_floor(-7, 3), 2);
  EXPECT_EQ(mod_floor(-1, 5), 4);
  EXPECT_EQ(mod_floor(10, -3), 1);
  EXPECT_EQ(mod_floor(-10, -3), 2);
  for (std::int64_t a = -20; a <= 20; ++a) {
    for (std::int64_t b : {1, 2, 3, 7}) {
      const std::int64_t m = mod_floor(a, b);
      EXPECT_GE(m, 0);
      EXPECT_LT(m, b);
      EXPECT_EQ((a - m) % b, 0);
    }
  }
}

TEST(FloorDiv, DivByZeroThrows) {
  EXPECT_THROW(floor_div(1, 0), InvalidArgument);
  EXPECT_THROW(ceil_div(1, 0), InvalidArgument);
  EXPECT_THROW(mod_floor(1, 0), InvalidArgument);
}

}  // namespace
}  // namespace snowflake
