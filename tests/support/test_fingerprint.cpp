// Machine fingerprint: the identity every perf-ledger entry is keyed by.
// These tests pin the contract the ledger depends on — the id is a stable
// 16-hex-digit hash of the hardware-description fields, and the measured
// STREAM bandwidth stays out of it (it jitters run to run).

#include "support/fingerprint.hpp"

#include <gtest/gtest.h>

#include <cctype>

namespace snowflake {
namespace {

TEST(FingerprintTest, FieldsArePopulated) {
  const MachineFingerprint& fp = fingerprint();
  EXPECT_FALSE(fp.cpu_model.empty());
  EXPECT_GT(fp.cores, 0);
  EXPECT_GT(fp.cache_line_bytes, 0);
}

TEST(FingerprintTest, IdIsSixteenHexDigits) {
  const std::string& id = fingerprint().id;
  ASSERT_EQ(id.size(), 16u);
  for (char c : id) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)))
        << "non-hex character '" << c << "' in id " << id;
  }
}

TEST(FingerprintTest, StableAcrossCalls) {
  const std::string first = fingerprint().id;
  EXPECT_EQ(fingerprint().id, first);
  EXPECT_EQ(&fingerprint(), &fingerprint());
}

TEST(FingerprintTest, MeasuredBandwidthDoesNotChangeId) {
  const std::string before = fingerprint().id;
  const double saved = fingerprint().stream_bytes_per_s;
  set_measured_bandwidth(12.5e9);
  EXPECT_DOUBLE_EQ(fingerprint().stream_bytes_per_s, 12.5e9);
  EXPECT_EQ(fingerprint().id, before);
  set_measured_bandwidth(saved);
}

TEST(FingerprintTest, CacheLineHelperMatchesFingerprint) {
  EXPECT_EQ(cache_line_bytes(), fingerprint().cache_line_bytes);
}

}  // namespace
}  // namespace snowflake
