// Path-resolution tests: the cache-directory fallback chain (a daemonized
// process with a scrubbed environment must land on a deterministic
// per-user directory, not an empty string) and byte-size parsing.

#include "support/paths.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <optional>
#include <string>

namespace snowflake {
namespace {

/// Save/restore one environment variable across a test body.
class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
    unsetenv(name);
  }
  ~EnvGuard() {
    if (saved_) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(Paths, ParseByteSize) {
  std::uint64_t bytes = 0;
  EXPECT_TRUE(parse_byte_size("123", &bytes));
  EXPECT_EQ(bytes, 123u);
  EXPECT_TRUE(parse_byte_size("4k", &bytes));
  EXPECT_EQ(bytes, 4096u);
  EXPECT_TRUE(parse_byte_size("4K", &bytes));
  EXPECT_EQ(bytes, 4096u);
  EXPECT_TRUE(parse_byte_size("2m", &bytes));
  EXPECT_EQ(bytes, 2u * 1024 * 1024);
  EXPECT_TRUE(parse_byte_size("1G", &bytes));
  EXPECT_EQ(bytes, 1024u * 1024 * 1024);
  EXPECT_TRUE(parse_byte_size("0", &bytes));
  EXPECT_EQ(bytes, 0u);

  EXPECT_FALSE(parse_byte_size("", &bytes));
  EXPECT_FALSE(parse_byte_size("k", &bytes));
  EXPECT_FALSE(parse_byte_size("12q", &bytes));
  EXPECT_FALSE(parse_byte_size("12kb", &bytes));
  EXPECT_FALSE(parse_byte_size("banana", &bytes));
  EXPECT_FALSE(parse_byte_size("123", nullptr));
}

TEST(Paths, StateDirFallbackIsPerUser) {
  const std::string dir = state_dir_fallback();
  EXPECT_EQ(dir, "/tmp/snowflake-" +
                     std::to_string(static_cast<long>(getuid())));
}

TEST(Paths, CacheDirResolutionChain) {
  EnvGuard g1("SNOWFLAKE_CACHE_DIR");
  EnvGuard g2("XDG_CACHE_HOME");
  EnvGuard g3("HOME");

  setenv("SNOWFLAKE_CACHE_DIR", "/explicit/cache", 1);
  setenv("XDG_CACHE_HOME", "/xdg", 1);
  setenv("HOME", "/home/sf", 1);
  EXPECT_EQ(resolve_cache_dir(), "/explicit/cache");

  unsetenv("SNOWFLAKE_CACHE_DIR");
  EXPECT_EQ(resolve_cache_dir(), "/xdg/snowflake");

  unsetenv("XDG_CACHE_HOME");
  EXPECT_EQ(resolve_cache_dir(), "/home/sf/.cache/snowflake");

  // The scrubbed-daemon-environment case: every variable unset (empty
  // counts as unset) must land on the deterministic per-user fallback.
  setenv("HOME", "", 1);
  EXPECT_EQ(resolve_cache_dir(), state_dir_fallback());
}

TEST(Paths, DefaultServiceSocket) {
  EnvGuard g0("SNOWFLAKE_SOCKET");
  EnvGuard g1("SNOWFLAKE_CACHE_DIR");
  EnvGuard g2("XDG_CACHE_HOME");
  EnvGuard g3("HOME");

  setenv("SNOWFLAKE_SOCKET", "/run/sf.sock", 1);
  EXPECT_EQ(default_service_socket(), "/run/sf.sock");

  unsetenv("SNOWFLAKE_SOCKET");
  setenv("SNOWFLAKE_CACHE_DIR", "/explicit/cache", 1);
  EXPECT_EQ(default_service_socket(), "/explicit/cache/snowflaked.sock");
}

}  // namespace
}  // namespace snowflake
