#include "support/hash.hpp"

#include <gtest/gtest.h>

namespace snowflake {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, DiffersOnContent) {
  EXPECT_NE(fnv1a64("kernel-a"), fnv1a64("kernel-b"));
}

TEST(HashStream, OrderSensitive) {
  HashStream a, b;
  a.add("x").add("y");
  b.add("y").add("x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, BoundarySensitive) {
  // "ab"+"c" must differ from "a"+"bc" (separator byte).
  HashStream a, b;
  a.add("ab").add("c");
  b.add("a").add("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, NumericTypes) {
  HashStream a, b;
  a.add(std::int64_t{1});
  b.add(1.0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashStream, Deterministic) {
  HashStream a, b;
  a.add("stencil").add(std::int64_t{42}).add(3.25);
  b.add("stencil").add(std::int64_t{42}).add(3.25);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(HashHex, Format) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(hash_hex(~0ull), "ffffffffffffffff");
}

}  // namespace
}  // namespace snowflake
