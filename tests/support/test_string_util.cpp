#include "support/string_util.hpp"

#include <gtest/gtest.h>

#include "support/logging.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <locale>

namespace snowflake {
namespace {

/// A numpunct facet that mimics de_DE decimal commas.  The container only
/// ships the C/POSIX locales, so the comma-locale regression tests install
/// this facet globally instead of relying on an installed de_DE.UTF-8.
struct CommaDecimal : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// RAII guard: force a comma-decimal global C++ locale (and try the C
/// library locale too, when an installed locale provides one).
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() : previous_(std::locale::global(std::locale(
                           std::locale::classic(), new CommaDecimal))) {
    // Best effort: a real comma C locale also flips printf/strtod.
    for (const char* name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) break;
    }
  }
  ~CommaLocaleGuard() {
    std::setlocale(LC_NUMERIC, "C");
    std::locale::global(previous_);
  }

 private:
  std::locale previous_;
};

TEST(Join, Basic) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(FormatTuple, Basic) {
  EXPECT_EQ(format_tuple({}), "()");
  EXPECT_EQ(format_tuple({1}), "(1)");
  EXPECT_EQ(format_tuple({1, -2, 3}), "(1, -2, 3)");
}

TEST(FormatDouble, RoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 2.0 / 3.0, 1e-300, 6.02e23, 0.1}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(FormatDouble, AlwaysParsesAsDouble) {
  // Integral values must carry a decimal point for C codegen.
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(-2.0), "-2.0");
  EXPECT_NE(format_double(1e100).find('e'), std::string::npos);
}

TEST(FormatDoubleCompact, ShortestRoundTrip) {
  for (double v : {0.0, 1.0, -1.5, 2.0 / 3.0, 1e-300, 6.02e23, 0.1, 3.2e-7}) {
    double back = 0.0;
    ASSERT_TRUE(parse_double(format_double_compact(v), &back));
    EXPECT_EQ(back, v);
  }
  // Shortest form: 0.1 is "0.1", not a 17-digit expansion.
  EXPECT_EQ(format_double_compact(0.1), "0.1");
}

TEST(ParseDouble, StrtodContract) {
  double v = 0.0;
  EXPECT_TRUE(parse_double(std::string("3.2e-07"), &v));
  EXPECT_EQ(v, 3.2e-7);
  EXPECT_TRUE(parse_double(std::string("-0.5"), &v));
  EXPECT_EQ(v, -0.5);
  EXPECT_TRUE(parse_double(std::string("+1.25"), &v));
  EXPECT_EQ(v, 1.25);
  // Overflow clamps, underflow flushes — strtod parity.
  EXPECT_TRUE(parse_double(std::string("1e999"), &v));
  EXPECT_EQ(v, HUGE_VAL);
  EXPECT_TRUE(parse_double(std::string("-1e999"), &v));
  EXPECT_EQ(v, -HUGE_VAL);
  EXPECT_TRUE(parse_double(std::string("1e-999"), &v));
  EXPECT_EQ(v, 0.0);
  // Trailing garbage or empty input fails the whole-string overload.
  EXPECT_FALSE(parse_double(std::string("1.5x"), &v));
  EXPECT_FALSE(parse_double(std::string(""), &v));
  EXPECT_FALSE(parse_double(std::string("abc"), &v));
}

TEST(ParseDouble, PrefixOverloadStopsAtDelimiter) {
  const std::string line = "seconds=3.2e-07,count=4";
  double v = 0.0;
  const char* begin = line.c_str() + 8;
  const char* end = line.c_str() + line.size();
  const char* stop = parse_double(begin, end, &v);
  EXPECT_EQ(v, 3.2e-7);
  EXPECT_EQ(*stop, ',');
}

TEST(FormatDoubleCompact, LocaleIndependent) {
  CommaLocaleGuard guard;
  // Sub-microsecond timings must keep their '.' and full precision even
  // when the global locale says ','.
  EXPECT_EQ(format_double_compact(3.2e-7), "3.2e-07");
  EXPECT_EQ(format_double_compact(0.5), "0.5");
  double v = 0.0;
  ASSERT_TRUE(parse_double(std::string("3.2e-07"), &v));
  EXPECT_EQ(v, 3.2e-7);
  ASSERT_TRUE(parse_double(std::string("0.5"), &v));
  EXPECT_EQ(v, 0.5);
  // format_double (codegen literals) holds too.
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(0.5), "0.5");
}

TEST(FormatDoubleFixed, LocaleIndependentJsonFields) {
  CommaLocaleGuard guard;
  EXPECT_EQ(format_double_fixed(1234.5, 3), "1234.500");
  EXPECT_EQ(format_double_fixed(0.25, 3), "0.250");
}

TEST(IsIdentifier, Accepts) {
  EXPECT_TRUE(is_identifier("mesh"));
  EXPECT_TRUE(is_identifier("beta_x"));
  EXPECT_TRUE(is_identifier("_tmp2"));
}

TEST(Logging, LevelsToggle) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  set_log_level(before);
}

TEST(IsIdentifier, Rejects) {
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("2mesh"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
  EXPECT_FALSE(is_identifier("grid[0]"));
}

}  // namespace
}  // namespace snowflake
