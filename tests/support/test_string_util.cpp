#include "support/string_util.hpp"

#include <gtest/gtest.h>

#include "support/logging.hpp"

#include <cstdlib>

namespace snowflake {
namespace {

TEST(Join, Basic) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(FormatTuple, Basic) {
  EXPECT_EQ(format_tuple({}), "()");
  EXPECT_EQ(format_tuple({1}), "(1)");
  EXPECT_EQ(format_tuple({1, -2, 3}), "(1, -2, 3)");
}

TEST(FormatDouble, RoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 2.0 / 3.0, 1e-300, 6.02e23, 0.1}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(FormatDouble, AlwaysParsesAsDouble) {
  // Integral values must carry a decimal point for C codegen.
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(-2.0), "-2.0");
  EXPECT_NE(format_double(1e100).find('e'), std::string::npos);
}

TEST(IsIdentifier, Accepts) {
  EXPECT_TRUE(is_identifier("mesh"));
  EXPECT_TRUE(is_identifier("beta_x"));
  EXPECT_TRUE(is_identifier("_tmp2"));
}

TEST(Logging, LevelsToggle) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  set_log_level(before);
}

TEST(IsIdentifier, Rejects) {
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("2mesh"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
  EXPECT_FALSE(is_identifier("grid[0]"));
}

}  // namespace
}  // namespace snowflake
