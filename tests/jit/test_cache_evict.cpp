// KernelCache capacity policy: byte-capped LRU eviction that never touches
// pinned or in-flight entries, stale-staging sweep at open, and the
// ArtifactInfo provenance the compile service serves to clients.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "jit/cache.hpp"
#include "support/paths.hpp"

namespace fs = std::filesystem;

namespace snowflake {
namespace {

std::string fresh_dir(const std::string& tag) {
  const auto dir = fs::temp_directory_path() /
                   ("sf_evict_" + tag + "_" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string source_for(int i) {
  return "void sf_kernel(double** grids, const double* params) {\n"
         "  (void)params; grids[0][0] = " +
         std::to_string(i) + ".0;\n}\n";
}

/// On-disk footprint of one compiled entry (machine-dependent), measured
/// once so the capacity tests can size their caps in "artifacts".
std::uint64_t probe_artifact_bytes() {
  static const std::uint64_t bytes = [] {
    const std::string dir = fresh_dir("probe");
    KernelCache cache(dir);
    ArtifactInfo info;
    cache.get_or_compile(source_for(9999), Toolchain(), &info);
    fs::remove_all(dir);
    return info.bytes;
  }();
  return bytes;
}

TEST(CacheEvict, EvictsLeastRecentlyUsedWhenOverCapacity) {
  const std::uint64_t one = probe_artifact_bytes();
  CacheConfig config;
  config.directory = fresh_dir("lru");
  config.max_bytes = one * 2 + one / 2;  // room for two entries, not three
  KernelCache cache(config);
  const Toolchain tc;

  const std::string key_a = KernelCache::key_for(source_for(1), tc);
  const std::string key_b = KernelCache::key_for(source_for(2), tc);
  const std::string key_c = KernelCache::key_for(source_for(3), tc);
  cache.get_or_compile(source_for(1), tc);
  cache.get_or_compile(source_for(2), tc);
  cache.get_or_compile(source_for(1), tc);  // touch A: B becomes LRU
  cache.get_or_compile(source_for(3), tc);  // over cap -> evict B

  EXPECT_TRUE(fs::exists(fs::path(config.directory) / (key_a + ".so")));
  EXPECT_FALSE(fs::exists(fs::path(config.directory) / (key_b + ".so")));
  EXPECT_FALSE(fs::exists(fs::path(config.directory) / (key_b + ".src")));
  EXPECT_TRUE(fs::exists(fs::path(config.directory) / (key_c + ".so")));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GT(stats.evicted_bytes, 0u);
  EXPECT_LE(stats.disk_bytes, config.max_bytes);
  fs::remove_all(config.directory);
}

TEST(CacheEvict, PinnedEntriesSurviveAnyPressure) {
  CacheConfig config;
  config.directory = fresh_dir("pin");
  config.max_bytes = 1;  // everything unpinned is evicted immediately
  KernelCache cache(config);
  const Toolchain tc;

  const std::string key_a = KernelCache::key_for(source_for(10), tc);
  cache.pin(key_a);  // pinning an unknown key protects it from birth
  cache.get_or_compile(source_for(10), tc);
  cache.get_or_compile(source_for(11), tc);
  cache.get_or_compile(source_for(12), tc);

  // The pinned artifact is intact despite a 1-byte cap; the fillers went.
  EXPECT_TRUE(fs::exists(fs::path(config.directory) / (key_a + ".so")));
  EXPECT_GE(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().pinned_keys, 1u);
  EXPECT_EQ(cache.pin_count(key_a), 1u);

  // Dropping the last pin lets the over-cap cache reclaim it.
  EXPECT_TRUE(cache.unpin(key_a));
  EXPECT_FALSE(fs::exists(fs::path(config.directory) / (key_a + ".so")));
  EXPECT_EQ(cache.stats().pinned_keys, 0u);
  EXPECT_FALSE(cache.unpin(key_a));  // double-unpin reports false
  fs::remove_all(config.directory);
}

TEST(CacheEvict, PinsAreCounted) {
  KernelCache cache(fresh_dir("pincount"));
  cache.pin("k");
  cache.pin("k");
  EXPECT_EQ(cache.pin_count("k"), 2u);
  EXPECT_TRUE(cache.unpin("k"));
  EXPECT_EQ(cache.pin_count("k"), 1u);
  EXPECT_TRUE(cache.unpin("k"));
  EXPECT_EQ(cache.pin_count("k"), 0u);
  fs::remove_all(cache.directory());
}

TEST(CacheEvict, SweepsStaleStagingFilesAtOpen) {
  const std::string dir = fresh_dir("sweep");

  // A staging file from a provably dead pid (fork a child and reap it).
  const pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(dead, &status, 0), dead);
  const std::string dead_file =
      dir + "/aaaa.so.tmp." + std::to_string(dead) + ".0";
  const std::string live_file =
      dir + "/bbbb.so.tmp." + std::to_string(getpid()) + ".3";
  const std::string odd_file = dir + "/junk.tmp.notapid";
  for (const auto& path : {dead_file, live_file, odd_file}) {
    std::ofstream out(path);
    out << "staging";
  }

  KernelCache cache(dir);
  EXPECT_EQ(cache.stats().swept_stale, 1u);
  EXPECT_FALSE(fs::exists(dead_file)) << "dead-pid staging file kept";
  EXPECT_TRUE(fs::exists(live_file)) << "live-pid staging file removed";
  EXPECT_TRUE(fs::exists(odd_file)) << "non-staging file removed";
  fs::remove_all(dir);
}

TEST(CacheEvict, SweepCanBeDisabled) {
  const std::string dir = fresh_dir("nosweep");
  const std::string stale = dir + "/cccc.so.tmp.999999999.0";
  {
    std::ofstream out(stale);
    out << "staging";
  }
  CacheConfig config;
  config.directory = dir;
  config.sweep_stale = false;
  KernelCache cache(config);
  EXPECT_EQ(cache.stats().swept_stale, 0u);
  EXPECT_TRUE(fs::exists(stale));
  fs::remove_all(dir);
}

TEST(CacheEvict, ArtifactInfoReportsProvenance) {
  const std::string dir = fresh_dir("info");
  const Toolchain tc;
  ArtifactInfo info;
  {
    KernelCache cache(dir);
    cache.get_or_compile(source_for(42), tc, &info);
    EXPECT_TRUE(info.compiled);
    EXPECT_FALSE(info.memory_hit);
    EXPECT_FALSE(info.disk_hit);
    EXPECT_EQ(info.key, KernelCache::key_for(source_for(42), tc));
    EXPECT_TRUE(fs::exists(info.so_path));
    EXPECT_GT(info.bytes, 0u);
    EXPECT_GT(info.compile_seconds, 0.0);

    cache.get_or_compile(source_for(42), tc, &info);
    EXPECT_TRUE(info.memory_hit);
    EXPECT_FALSE(info.compiled);
  }
  // A fresh instance over the same directory serves from disk and indexes
  // the pre-existing bytes for its capacity accounting.
  KernelCache warm(dir);
  EXPECT_GT(warm.stats().disk_bytes, 0u);
  warm.get_or_compile(source_for(42), tc, &info);
  EXPECT_TRUE(info.disk_hit);
  EXPECT_FALSE(info.compiled);
  fs::remove_all(dir);
}

TEST(CacheEvict, SingleFlightCoalescesConcurrentMisses) {
  KernelCache cache(fresh_dir("flight"));
  const Toolchain tc;
  const std::string source = source_for(77);
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] { cache.get_or_compile(source, tc); });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 1u) << "cold key compiled more than once";
  EXPECT_EQ(stats.memory_hits + stats.disk_hits, 5u);
  fs::remove_all(cache.directory());
}

TEST(CacheEvict, MaxBytesFromEnvironment) {
  setenv("SNOWFLAKE_CACHE_MAX_BYTES", "64k", 1);
  {
    KernelCache cache(fresh_dir("envcap"));
    EXPECT_EQ(cache.max_bytes(), 64u * 1024);
    fs::remove_all(cache.directory());
  }
  setenv("SNOWFLAKE_CACHE_MAX_BYTES", "banana", 1);
  {
    KernelCache cache(fresh_dir("envbad"));
    EXPECT_EQ(cache.max_bytes(), 0u) << "malformed cap must mean unlimited";
    fs::remove_all(cache.directory());
  }
  unsetenv("SNOWFLAKE_CACHE_MAX_BYTES");
  CacheConfig config;
  config.directory = fresh_dir("cfgcap");
  config.max_bytes = 12345;
  KernelCache cache(config);
  EXPECT_EQ(cache.max_bytes(), 12345u);  // explicit config beats the env
  fs::remove_all(config.directory);
}

}  // namespace
}  // namespace snowflake
