#include "jit/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace snowflake {
namespace {

namespace fs = std::filesystem;

class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Per-test directory: ctest runs each TEST_F as its own process, often
    // in parallel, so a shared directory would let one test's cleanup yank
    // files out from under another's in-flight compile.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sf_cache_test_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

const char* kSource =
    "void sf_kernel(double** grids, const double* params) {\n"
    "  (void)params; grids[0][0] += 1.0;\n"
    "}\n";

TEST_F(CacheTest, CompileThenMemoryHit) {
  KernelCache cache(dir_);
  const Toolchain tc;
  auto m1 = cache.get_or_compile(kSource, tc);
  EXPECT_EQ(cache.stats().compiles, 1u);
  auto m2 = cache.get_or_compile(kSource, tc);
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().compiles, 1u);
}

TEST_F(CacheTest, DiskHitAcrossCacheInstances) {
  const Toolchain tc;
  {
    KernelCache first(dir_);
    first.get_or_compile(kSource, tc);
    EXPECT_EQ(first.stats().compiles, 1u);
  }
  KernelCache second(dir_);
  second.get_or_compile(kSource, tc);
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(second.stats().compiles, 0u);
}

TEST_F(CacheTest, HashCollisionForcesRecompile) {
  // The disk key is a 64-bit FNV hash; a collision would hand a stale .so
  // to a different kernel.  The cache guards against it by storing the
  // exact source next to the .so and comparing on every disk lookup.
  // Simulate a collision: keep the stored .so but rewrite the saved .src
  // so it no longer matches what the key claims to cache.
  const Toolchain tc;
  {
    KernelCache first(dir_);
    first.get_or_compile(kSource, tc);
    ASSERT_EQ(first.stats().compiles, 1u);
  }
  fs::path src_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".src") src_path = entry.path();
  }
  ASSERT_FALSE(src_path.empty()) << "cache did not store the source";
  {
    std::ofstream out(src_path, std::ios::binary);
    out << "/* some other kernel that hashed to the same key */\n";
  }

  KernelCache second(dir_);
  second.get_or_compile(kSource, tc);
  EXPECT_EQ(second.stats().disk_hits, 0u) << "served a colliding .so";
  EXPECT_EQ(second.stats().compiles, 1u);
  // The recompile repairs the entry: the stored source matches again and
  // the next instance gets a clean disk hit.
  KernelCache third(dir_);
  third.get_or_compile(kSource, tc);
  EXPECT_EQ(third.stats().disk_hits, 1u);
  EXPECT_EQ(third.stats().compiles, 0u);
}

TEST_F(CacheTest, DifferentSourceDifferentEntry) {
  KernelCache cache(dir_);
  const Toolchain tc;
  auto a = cache.get_or_compile(kSource, tc);
  auto b = cache.get_or_compile(
      "void sf_kernel(double** grids, const double* params) {\n"
      "  (void)params; grids[0][0] += 2.0;\n"
      "}\n",
      tc);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST_F(CacheTest, FlagsPartOfKey) {
  KernelCache cache(dir_);
  ToolchainConfig omp_cfg;
  omp_cfg.openmp = true;
  auto a = cache.get_or_compile(kSource, Toolchain{});
  auto b = cache.get_or_compile(kSource, Toolchain{omp_cfg});
  EXPECT_NE(a.get(), b.get());
}

TEST_F(CacheTest, TwoInstancesSharingOneDirectoryPublishAtomically) {
  // Two KernelCache instances over one SNOWFLAKE_CACHE_DIR model two
  // concurrent processes: their in-flight bookkeeping is private, so both
  // may compile the same key at once.  Entries are published via rename(2)
  // (.src before .so), so neither instance may ever dlopen a torn shared
  // object; every loaded kernel must be callable and correct.
  KernelCache a(dir_);
  KernelCache b(dir_);
  const Toolchain tc;
  constexpr int kKernels = 6;
  auto source_for = [](int i) {
    return "void sf_kernel(double** grids, const double* params) {\n"
           "  (void)params; grids[0][0] += " +
           std::to_string(i + 1) + ".0;\n}\n";
  };
  std::vector<std::string> errors_a, errors_b;
  auto worker = [&](KernelCache& cache, std::vector<std::string>& errors) {
    for (int i = 0; i < kKernels; ++i) {
      try {
        auto module = cache.get_or_compile(source_for(i), tc);
        double cell = 0.0;
        double* grids[] = {&cell};
        module->kernel("sf_kernel")(grids, nullptr);
        if (cell != i + 1.0) {
          errors.push_back("kernel " + std::to_string(i) + " computed " +
                           std::to_string(cell));
        }
      } catch (const std::exception& e) {
        errors.push_back(e.what());
      }
    }
  };
  std::thread ta([&] { worker(a, errors_a); });
  std::thread tb([&] { worker(b, errors_b); });
  ta.join();
  tb.join();
  EXPECT_TRUE(errors_a.empty()) << errors_a.front();
  EXPECT_TRUE(errors_b.empty()) << errors_b.front();
  // No staging leftovers: every .tmp file was renamed or cleaned up.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "staging file left behind: " << entry.path();
  }
  // Both instances ended with a usable entry per kernel.
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.compiles + sa.disk_hits, static_cast<std::uint64_t>(kKernels));
  EXPECT_EQ(sb.compiles + sb.disk_hits, static_cast<std::uint64_t>(kKernels));
}

TEST_F(CacheTest, LoadedModuleIsCallable) {
  KernelCache cache(dir_);
  auto module = cache.get_or_compile(kSource, Toolchain{});
  double cell = 1.0;
  double* grids[] = {&cell};
  module->kernel("sf_kernel")(grids, nullptr);
  EXPECT_EQ(cell, 2.0);
}

}  // namespace
}  // namespace snowflake
