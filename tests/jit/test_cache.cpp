#include "jit/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace snowflake {
namespace {

namespace fs = std::filesystem;

class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "sf_cache_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

const char* kSource =
    "void sf_kernel(double** grids, const double* params) {\n"
    "  (void)params; grids[0][0] += 1.0;\n"
    "}\n";

TEST_F(CacheTest, CompileThenMemoryHit) {
  KernelCache cache(dir_);
  const Toolchain tc;
  auto m1 = cache.get_or_compile(kSource, tc);
  EXPECT_EQ(cache.stats().compiles, 1u);
  auto m2 = cache.get_or_compile(kSource, tc);
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().compiles, 1u);
}

TEST_F(CacheTest, DiskHitAcrossCacheInstances) {
  const Toolchain tc;
  {
    KernelCache first(dir_);
    first.get_or_compile(kSource, tc);
    EXPECT_EQ(first.stats().compiles, 1u);
  }
  KernelCache second(dir_);
  second.get_or_compile(kSource, tc);
  EXPECT_EQ(second.stats().disk_hits, 1u);
  EXPECT_EQ(second.stats().compiles, 0u);
}

TEST_F(CacheTest, HashCollisionForcesRecompile) {
  // The disk key is a 64-bit FNV hash; a collision would hand a stale .so
  // to a different kernel.  The cache guards against it by storing the
  // exact source next to the .so and comparing on every disk lookup.
  // Simulate a collision: keep the stored .so but rewrite the saved .src
  // so it no longer matches what the key claims to cache.
  const Toolchain tc;
  {
    KernelCache first(dir_);
    first.get_or_compile(kSource, tc);
    ASSERT_EQ(first.stats().compiles, 1u);
  }
  fs::path src_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".src") src_path = entry.path();
  }
  ASSERT_FALSE(src_path.empty()) << "cache did not store the source";
  {
    std::ofstream out(src_path, std::ios::binary);
    out << "/* some other kernel that hashed to the same key */\n";
  }

  KernelCache second(dir_);
  second.get_or_compile(kSource, tc);
  EXPECT_EQ(second.stats().disk_hits, 0u) << "served a colliding .so";
  EXPECT_EQ(second.stats().compiles, 1u);
  // The recompile repairs the entry: the stored source matches again and
  // the next instance gets a clean disk hit.
  KernelCache third(dir_);
  third.get_or_compile(kSource, tc);
  EXPECT_EQ(third.stats().disk_hits, 1u);
  EXPECT_EQ(third.stats().compiles, 0u);
}

TEST_F(CacheTest, DifferentSourceDifferentEntry) {
  KernelCache cache(dir_);
  const Toolchain tc;
  auto a = cache.get_or_compile(kSource, tc);
  auto b = cache.get_or_compile(
      "void sf_kernel(double** grids, const double* params) {\n"
      "  (void)params; grids[0][0] += 2.0;\n"
      "}\n",
      tc);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST_F(CacheTest, FlagsPartOfKey) {
  KernelCache cache(dir_);
  ToolchainConfig omp_cfg;
  omp_cfg.openmp = true;
  auto a = cache.get_or_compile(kSource, Toolchain{});
  auto b = cache.get_or_compile(kSource, Toolchain{omp_cfg});
  EXPECT_NE(a.get(), b.get());
}

TEST_F(CacheTest, LoadedModuleIsCallable) {
  KernelCache cache(dir_);
  auto module = cache.get_or_compile(kSource, Toolchain{});
  double cell = 1.0;
  double* grids[] = {&cell};
  module->kernel("sf_kernel")(grids, nullptr);
  EXPECT_EQ(cell, 2.0);
}

}  // namespace
}  // namespace snowflake
