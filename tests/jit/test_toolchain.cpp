#include "jit/toolchain.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "jit/module.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

std::string temp_so_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Toolchain, DiscoversACompiler) {
  const Toolchain tc;
  ASSERT_TRUE(tc.available()) << "tests require a host C compiler";
  EXPECT_FALSE(tc.compiler().empty());
}

TEST(Toolchain, FingerprintMentionsFlags) {
  ToolchainConfig cfg;
  cfg.openmp = true;
  const Toolchain tc(cfg);
  EXPECT_NE(tc.flags_fingerprint().find("-fopenmp"), std::string::npos);
  EXPECT_NE(tc.flags_fingerprint().find("-O3"), std::string::npos);
  const Toolchain plain;
  EXPECT_EQ(plain.flags_fingerprint().find("-fopenmp"), std::string::npos);
}

TEST(Toolchain, CompileLoadCall) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_toolchain.so");
  tc.compile_shared_object(
      "void sf_kernel(double** grids, const double* params) {\n"
      "  (void)params; grids[0][0] = 42.0;\n"
      "}\n",
      so);
  const Module module(so);
  double cell = 0.0;
  double* grid = &cell;
  double* grids[] = {grid};
  module.kernel("sf_kernel")(grids, nullptr);
  EXPECT_EQ(cell, 42.0);
  std::filesystem::remove(so);
}

TEST(Toolchain, CompileErrorCarriesDiagnostics) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_toolchain_bad.so");
  try {
    tc.compile_shared_object("this is not C\n", so);
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("JIT compilation failed"),
              std::string::npos);
  }
}

TEST(Toolchain, MissingCompilerThrows) {
  ToolchainConfig cfg;
  cfg.compiler = "/nonexistent/definitely_not_cc";
  const Toolchain tc(cfg);
  EXPECT_TRUE(tc.available());  // configured explicitly
  EXPECT_THROW(
      tc.compile_shared_object("int x;", temp_so_path("sf_nope.so")),
      ToolchainError);
}

TEST(Module, MissingSymbolThrows) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_symbols.so");
  tc.compile_shared_object("int sf_something = 1;\n", so);
  const Module module(so);
  EXPECT_THROW(module.kernel("sf_kernel"), ToolchainError);
  std::filesystem::remove(so);
}

TEST(Module, OpenBogusPathThrows) {
  EXPECT_THROW(Module("/nonexistent/lib.so"), ToolchainError);
}

}  // namespace
}  // namespace snowflake
