#include "jit/toolchain.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "jit/module.hpp"
#include "support/error.hpp"

namespace snowflake {
namespace {

std::string temp_so_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Toolchain, DiscoversACompiler) {
  const Toolchain tc;
  ASSERT_TRUE(tc.available()) << "tests require a host C compiler";
  EXPECT_FALSE(tc.compiler().empty());
}

TEST(Toolchain, FingerprintMentionsFlags) {
  ToolchainConfig cfg;
  cfg.openmp = true;
  const Toolchain tc(cfg);
  EXPECT_NE(tc.flags_fingerprint().find("-fopenmp"), std::string::npos);
  EXPECT_NE(tc.flags_fingerprint().find("-O3"), std::string::npos);
  const Toolchain plain;
  EXPECT_EQ(plain.flags_fingerprint().find("-fopenmp"), std::string::npos);
}

TEST(Toolchain, CompileLoadCall) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_toolchain.so");
  tc.compile_shared_object(
      "void sf_kernel(double** grids, const double* params) {\n"
      "  (void)params; grids[0][0] = 42.0;\n"
      "}\n",
      so);
  const Module module(so);
  double cell = 0.0;
  double* grid = &cell;
  double* grids[] = {grid};
  module.kernel("sf_kernel")(grids, nullptr);
  EXPECT_EQ(cell, 42.0);
  std::filesystem::remove(so);
}

TEST(Toolchain, CompileErrorCarriesDiagnostics) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_toolchain_bad.so");
  try {
    tc.compile_shared_object("this is not C\n", so);
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("JIT compilation failed"), std::string::npos);
    // The wait status is decoded: a compiler exiting 1 reads "exit code 1",
    // never the raw wait-status encoding ("status 256").
    EXPECT_NE(what.find("exit code 1"), std::string::npos) << what;
    EXPECT_EQ(what.find("status 256"), std::string::npos) << what;
  }
}

TEST(Toolchain, WaitStatusDecoding) {
  // Linux wait-status encoding: exit code in the high byte, terminating
  // signal in the low bits.
  EXPECT_EQ(describe_wait_status(1 << 8), "exit code 1");
  EXPECT_EQ(describe_wait_status(127 << 8), "exit code 127");
  EXPECT_EQ(describe_wait_status(0), "exit code 0");
  EXPECT_EQ(describe_wait_status(9), "killed by signal 9");
  EXPECT_EQ(describe_wait_status(11), "killed by signal 11");
}

TEST(Toolchain, SignalDeathReportedDistinctly) {
  // A "compiler" that kills itself must be reported as a signal death, not
  // as a bogus huge exit code.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string script = (dir / "sf_sigkill_cc.sh").string();
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nkill -KILL $$\n";
  }
  std::filesystem::permissions(script,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  ToolchainConfig cfg;
  cfg.compiler = script;
  const Toolchain tc(cfg);
  try {
    tc.compile_shared_object("int x;\n", temp_so_path("sf_sig.so"));
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    const std::string what = e.what();
    // Either the script itself dies by SIGKILL (shell execs it) or the
    // shell reports 128+9 = 137; both must decode readably.
    EXPECT_TRUE(what.find("killed by signal 9") != std::string::npos ||
                what.find("exit code 137") != std::string::npos)
        << what;
  }
  std::filesystem::remove(script);
}

TEST(Toolchain, MissingCompilerThrows) {
  ToolchainConfig cfg;
  cfg.compiler = "/nonexistent/definitely_not_cc";
  const Toolchain tc(cfg);
  EXPECT_TRUE(tc.available());  // configured explicitly
  EXPECT_THROW(
      tc.compile_shared_object("int x;", temp_so_path("sf_nope.so")),
      ToolchainError);
}

TEST(Module, MissingSymbolThrows) {
  const Toolchain tc;
  const std::string so = temp_so_path("sf_test_symbols.so");
  tc.compile_shared_object("int sf_something = 1;\n", so);
  const Module module(so);
  EXPECT_THROW(module.kernel("sf_kernel"), ToolchainError);
  std::filesystem::remove(so);
}

TEST(Module, OpenBogusPathThrows) {
  EXPECT_THROW(Module("/nonexistent/lib.so"), ToolchainError);
}

TEST(RunHostCommand, CapturesBothStreams) {
  const CommandResult r =
      run_host_command("echo to-stdout; echo to-stderr 1>&2", 30.0);
  EXPECT_FALSE(r.spawn_failed);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(describe_wait_status(r.wait_status), "exit code 0");
  EXPECT_NE(r.output.find("to-stdout"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("to-stderr"), std::string::npos) << r.output;
}

TEST(RunHostCommand, PipeFloodDoesNotDeadlock) {
  // A child spewing far more than a pipe buffer (64 KiB) on BOTH streams
  // must be drained live.  The pre-poll implementation read output only
  // after waiting, so a flood like this wedged parent and child forever.
  const auto start = std::chrono::steady_clock::now();
  const CommandResult r = run_host_command(
      "yes flood | head -c 2000000; yes flood | head -c 2000000 1>&2", 60.0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(r.timed_out);
  EXPECT_GE(r.output.size(), 4000000u);
  EXPECT_LT(elapsed, 30.0) << "pipe flood took suspiciously long";
}

TEST(RunHostCommand, TimeoutKillsHungChild) {
  const auto start = std::chrono::steady_clock::now();
  const CommandResult r = run_host_command("sleep 600", 0.2);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed, 30.0) << "timeout did not kill the child promptly";
}

TEST(RunHostCommand, TimeoutKillsWholeProcessGroup) {
  // A compiler that forks helpers must not leave them holding the pipe
  // open after the timeout: the process GROUP gets the SIGKILL.
  const auto start = std::chrono::steady_clock::now();
  const CommandResult r =
      run_host_command("(sleep 600 &); sleep 600", 0.2);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed, 30.0);
}

TEST(Toolchain, HungCompilerTimesOut) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string script = (dir / "sf_hung_cc.sh").string();
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nsleep 600\n";
  }
  std::filesystem::permissions(script,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  ToolchainConfig cfg;
  cfg.compiler = script;
  cfg.timeout_seconds = 0.2;
  const Toolchain tc(cfg);
  const auto start = std::chrono::steady_clock::now();
  try {
    tc.compile_shared_object("int x;\n", temp_so_path("sf_hung.so"));
    FAIL() << "expected ToolchainError";
  } catch (const ToolchainError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 30.0);
  std::filesystem::remove(script);
}

TEST(Toolchain, TimeoutFromEnvironment) {
  setenv("SNOWFLAKE_CC_TIMEOUT", "42.5", 1);
  EXPECT_DOUBLE_EQ(Toolchain().timeout_seconds(), 42.5);
  setenv("SNOWFLAKE_CC_TIMEOUT", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(Toolchain().timeout_seconds(), 600.0);  // warned default
  unsetenv("SNOWFLAKE_CC_TIMEOUT");
  EXPECT_DOUBLE_EQ(Toolchain().timeout_seconds(), 600.0);
  ToolchainConfig cfg;
  cfg.timeout_seconds = 7.0;  // explicit config beats the environment
  setenv("SNOWFLAKE_CC_TIMEOUT", "1", 1);
  EXPECT_DOUBLE_EQ(Toolchain(cfg).timeout_seconds(), 7.0);
  unsetenv("SNOWFLAKE_CC_TIMEOUT");
}

}  // namespace
}  // namespace snowflake
